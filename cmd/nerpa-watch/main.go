// Command nerpa-watch streams a derived relation from a running
// nerpa-controller: it subscribes over the controller's -sub-addr
// endpoint, prints the initial snapshot, then follows the incremental
// deltas with their originating transaction IDs. If the controller
// evicts it as a slow consumer, it resubscribes and resumes from a
// fresh snapshot.
//
//	nerpa-watch -addr 127.0.0.1:7659 Flood
//	nerpa-watch -addr 127.0.0.1:7659 -filter 1=10 InVlan
//	nerpa-watch -addr 127.0.0.1:7659 -list
//
// -filter restricts the stream server-side to rows whose column (by
// zero-based index) equals a scalar: numbers and true/false compare
// against int/bit/bool columns, anything else as a string.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/subscribe"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7659", "controller subscription address (-sub-addr)")
	list := flag.Bool("list", false, "list subscribable relations and exit")
	filterSpec := flag.String("filter", "", "comma-separated col=value equality filters (e.g. 0=5,2=eth0)")
	asJSON := flag.Bool("json", false, "emit one JSON object per line instead of the human form")
	keepalive := flag.Duration("keepalive", 10*time.Second, "echo-heartbeat interval; 3 misses fail the connection (0 = off)")
	flag.Parse()

	cl, err := subscribe.Dial(*addr)
	if err != nil {
		log.Fatalf("nerpa-watch: connecting to %s: %v", *addr, err)
	}
	defer cl.Close()
	if *keepalive > 0 {
		cl.Conn().StartKeepalive(*keepalive, 3)
	}

	if *list {
		rels, err := cl.Relations()
		if err != nil {
			log.Fatalf("nerpa-watch: listing relations: %v", err)
		}
		for _, r := range rels {
			fmt.Println(r)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "nerpa-watch: exactly one relation required (or -list); see -h")
		os.Exit(2)
	}
	relation := flag.Arg(0)
	filter, err := parseFilter(*filterSpec)
	if err != nil {
		log.Fatalf("nerpa-watch: %v", err)
	}

	// The watch loop: each pass subscribes (a fresh snapshot), then
	// follows deltas until the stream ends. Eviction — the controller
	// dropped us for falling behind — loops back into a resubscribe;
	// anything else (connection loss, unsubscribe) is terminal.
	for {
		sub, err := cl.Subscribe(relation, filter)
		if err != nil {
			log.Fatalf("nerpa-watch: subscribing to %s: %v", relation, err)
		}
		printSnapshot(sub, *asJSON)
		for u := range sub.Updates {
			printUpdate(relation, u, *asJSON)
		}
		evicted, reason := sub.Evicted()
		if !evicted {
			if err := cl.Conn().Err(); err != nil {
				log.Fatalf("nerpa-watch: connection lost: %v", err)
			}
			return
		}
		log.Printf("nerpa-watch: evicted (%s); resubscribing for a fresh snapshot", reason)
	}
}

// parseFilter converts "0=5,2=eth0" into the client filter map.
func parseFilter(spec string) (map[int]any, error) {
	if spec == "" {
		return nil, nil
	}
	filter := make(map[int]any)
	for _, part := range strings.Split(spec, ",") {
		col, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad filter %q: want col=value", part)
		}
		idx, err := strconv.Atoi(col)
		if err != nil || idx < 0 {
			return nil, fmt.Errorf("bad filter column %q: want a non-negative index", col)
		}
		filter[idx] = parseScalar(val)
	}
	return filter, nil
}

// parseScalar maps a CLI literal onto the matching JSON scalar.
func parseScalar(s string) any {
	if n, err := strconv.ParseFloat(s, 64); err == nil {
		return n
	}
	if b, err := strconv.ParseBool(s); err == nil {
		return b
	}
	return s
}

func printSnapshot(sub *subscribe.Subscription, asJSON bool) {
	if asJSON {
		emit(map[string]any{
			"snapshot": true, "relation": sub.Relation,
			"txn": sub.Txn, "rows": sub.Rows,
		})
		return
	}
	log.Printf("nerpa-watch: %s snapshot at txn %d (%d rows)",
		sub.Relation, sub.Txn, len(sub.Rows))
	for _, c := range sub.Rows {
		fmt.Printf("  %s\n", renderChange(c))
	}
}

func printUpdate(relation string, u subscribe.Update, asJSON bool) {
	if asJSON {
		emit(map[string]any{"relation": relation, "txn": u.Txn, "changes": u.Changes})
		return
	}
	for _, c := range u.Changes {
		fmt.Printf("txn %-6d %s  %s\n", u.Txn, relation, renderChange(c))
	}
}

// renderChange formats one weighted row: +[...] inserts, -[...]
// deletes, with the multiplicity spelled out when it exceeds one.
func renderChange(c subscribe.Change) string {
	row, _ := json.Marshal(c.Row)
	switch {
	case c.W == 1:
		return "+" + string(row)
	case c.W == -1:
		return "-" + string(row)
	case c.W >= 0:
		return fmt.Sprintf("+%d×%s", c.W, row)
	default:
		return fmt.Sprintf("-%d×%s", -c.W, row)
	}
}

func emit(v any) {
	b, _ := json.Marshal(v)
	fmt.Println(string(b))
}
