// Command nerpa-top is the fleet observability aggregator: it polls
// the obs endpoints of a running Nerpa deployment (ovsdb-server,
// nerpa-controller, snvs-switch), stitches each process's trace
// fragments into end-to-end transaction timelines, estimates
// per-member clock skew, and serves the fused view on /fleet,
// /fleet/traces and /fleet/metrics.
//
//	nerpa-top -targets db=127.0.0.1:7640,ctl=127.0.0.1:7641,sw=127.0.0.1:7642 \
//	    [-addr 127.0.0.1:7700] [-interval 2s] [-stale-after 6s]
//
// With -once it polls once, prints the member table (or, with -txn,
// one stitched timeline) to stdout, and exits — the scriptable form.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/obs/fleet"
)

func main() {
	targets := flag.String("targets", "", "comma-separated obs endpoints to poll, each addr or name=addr (required)")
	addr := flag.String("addr", "127.0.0.1:7700", "serve /fleet, /fleet/traces and /fleet/metrics on this address")
	interval := flag.Duration("interval", 2*time.Second, "poll interval")
	staleAfter := flag.Duration("stale-after", 0, "mark a member stale after this long without a successful scrape (0 = 3×interval)")
	once := flag.Bool("once", false, "poll once, print the fleet table to stdout, and exit")
	txn := flag.Uint64("txn", 0, "with -once: print this transaction's stitched timeline instead of the table")
	flag.Parse()

	if *targets == "" {
		fmt.Fprintln(os.Stderr, "nerpa-top: -targets is required (e.g. -targets db=127.0.0.1:7640,sw=127.0.0.1:7642)")
		os.Exit(2)
	}
	agg, err := fleet.New(fleet.Config{
		Targets:    strings.Split(*targets, ","),
		Interval:   *interval,
		StaleAfter: *staleAfter,
	})
	if err != nil {
		log.Fatalf("nerpa-top: %v", err)
	}

	if *once {
		agg.PollOnce()
		if *txn != 0 {
			tr, ok := agg.Trace(*txn)
			if !ok {
				fmt.Fprintf(os.Stderr, "nerpa-top: no trace for txn %d on any member\n", *txn)
				os.Exit(1)
			}
			fmt.Print(fleet.TraceText(tr))
			return
		}
		fmt.Print(agg.Status().Text())
		return
	}

	agg.Start()
	defer agg.Close()
	log.Printf("nerpa-top: polling %d target(s) every %v; fleet view on http://%s/fleet", len(strings.Split(*targets, ",")), *interval, *addr)
	if err := agg.Serve(*addr); err != nil {
		log.Fatalf("nerpa-top: %v", err)
	}
}
