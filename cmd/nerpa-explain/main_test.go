package main

import (
	"strings"
	"testing"
)

func TestRenderTree(t *testing.T) {
	res := &explainResult{
		Relation: "in_vlan",
		Key:      "vlan.port=1",
		Entry: &explainEntry{
			Table: "in_vlan", Device: "snvs0", Matches: "vlan.port=1",
			Action: "SetVlan", Relation: "InVlan", Record: "(1, 10)",
			TxnID: 3, Source: "ovsdb",
		},
		Tree: &explainNode{
			Relation: "InVlan", Record: "(1, 10)", Kind: "derived",
			Rule: `InVlan(..) :- Port(..)`, Alternatives: 1,
			Children: []*explainNode{
				{Relation: "Port", Record: `("u", "p1", 1, 10, "access")`, Kind: "input", TxnID: 3},
				{Relation: "Hidden", Record: "(7)", Kind: "unknown"},
			},
		},
	}
	var sb strings.Builder
	render(&sb, res)
	out := sb.String()

	for _, want := range []string{
		"table in_vlan on snvs0: vlan.port=1 -> SetVlan",
		"pushed from InVlan(1, 10) by txn 3 (ovsdb)",
		"InVlan(1, 10)  [rule: InVlan(..) :- Port(..); +1 alternative derivation(s)]",
		`├── Port("u", "p1", 1, 10, "access")  [input, txn 3]`,
		"└── Hidden(7)  [provenance unavailable]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q\n%s", want, out)
		}
	}
}

func TestRenderNesting(t *testing.T) {
	res := &explainResult{
		Tree: &explainNode{
			Relation: "Reach", Record: "(1, 3)", Kind: "derived", Rule: "Reach(..) :- Reach(..), Edge(..)",
			Children: []*explainNode{
				{Relation: "Reach", Record: "(1, 2)", Kind: "derived", Rule: "Reach(..) :- Edge(..)",
					Children: []*explainNode{
						{Relation: "Edge", Record: "(1, 2)", Kind: "input"},
					}},
				{Relation: "Edge", Record: "(2, 3)", Kind: "input", Truncated: true},
			},
		},
	}
	var sb strings.Builder
	render(&sb, res)
	out := sb.String()

	// The inner input sits under the first (non-last) child, so its line
	// carries the continuation bar; the last child uses the corner.
	for _, want := range []string{
		"├── Reach(1, 2)",
		"│   └── Edge(1, 2)  [input]",
		"└── Edge(2, 3)  [input]  [truncated]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q\n%s", want, out)
		}
	}
}
