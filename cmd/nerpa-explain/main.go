// Command nerpa-explain asks a running process's observability endpoint
// "why is this entry in the switch?" and pretty-prints the answer: the
// pushed table entry (if the query named a P4 table), the rule chain
// that derived its source fact, and the management-plane rows — with
// their originating transaction IDs — at the leaves.
//
//	nerpa-explain -addr 127.0.0.1:8080 -relation in_vlan
//	nerpa-explain -addr 127.0.0.1:8080 -relation in_vlan -key 'vlan.port=1'
//	nerpa-explain -addr 127.0.0.1:8080 -relation InVlan -key '(1, 10)' -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
)

// explainNode mirrors engine.ExplainNode's JSON.
type explainNode struct {
	Relation     string         `json:"relation"`
	Record       string         `json:"record"`
	Kind         string         `json:"kind"`
	Rule         string         `json:"rule,omitempty"`
	Stratum      int            `json:"stratum,omitempty"`
	TxnID        uint64         `json:"txn_id,omitempty"`
	Alternatives int            `json:"alternatives,omitempty"`
	Truncated    bool           `json:"truncated,omitempty"`
	Children     []*explainNode `json:"children,omitempty"`
}

// explainEntry mirrors core.EntryOrigin's JSON.
type explainEntry struct {
	Table    string `json:"table"`
	Device   string `json:"device,omitempty"`
	Matches  string `json:"matches"`
	Action   string `json:"action"`
	Relation string `json:"relation"`
	Record   string `json:"record"`
	TxnID    uint64 `json:"txn_id,omitempty"`
	Source   string `json:"source,omitempty"`
}

// explainResult mirrors core.ExplainResult's JSON.
type explainResult struct {
	Relation string        `json:"relation"`
	Key      string        `json:"key,omitempty"`
	Entry    *explainEntry `json:"entry,omitempty"`
	Tree     *explainNode  `json:"tree"`
}

// render pretty-prints one explain result as an indented derivation
// tree.
func render(w io.Writer, res *explainResult) {
	if e := res.Entry; e != nil {
		dev := ""
		if e.Device != "" {
			dev = " on " + e.Device
		}
		fmt.Fprintf(w, "table %s%s: %s -> %s\n", e.Table, dev, e.Matches, e.Action)
		fmt.Fprintf(w, "  pushed from %s%s by txn %d (%s)\n", e.Relation, e.Record, e.TxnID, e.Source)
	}
	if res.Tree != nil {
		renderNode(w, res.Tree, "", "")
	}
}

// renderNode prints n at the given indentation and recurses into its
// children with box-drawing connectors.
func renderNode(w io.Writer, n *explainNode, connector, childPrefix string) {
	var note string
	switch n.Kind {
	case "input":
		if n.TxnID != 0 {
			note = fmt.Sprintf("  [input, txn %d]", n.TxnID)
		} else {
			note = "  [input]"
		}
	case "unknown":
		note = "  [provenance unavailable]"
	case "cycle":
		note = "  [cycle]"
	default:
		var parts []string
		if n.Rule != "" {
			parts = append(parts, "rule: "+n.Rule)
		}
		if n.Alternatives > 0 {
			parts = append(parts, fmt.Sprintf("+%d alternative derivation(s)", n.Alternatives))
		}
		if len(parts) > 0 {
			note = "  [" + strings.Join(parts, "; ") + "]"
		}
	}
	if n.Truncated {
		note += "  [truncated]"
	}
	fmt.Fprintf(w, "%s%s%s%s\n", connector, n.Relation, n.Record, note)
	for i, ch := range n.Children {
		conn, prefix := childPrefix+"├── ", childPrefix+"│   "
		if i == len(n.Children)-1 {
			conn, prefix = childPrefix+"└── ", childPrefix+"    "
		}
		renderNode(w, ch, conn, prefix)
	}
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "observability address of the target process (-obs-addr)")
	relation := flag.String("relation", "", "P4 table, derived relation, or input relation to explain (required)")
	key := flag.String("key", "", "entry match rendering or record rendering (optional when unique)")
	depth := flag.Int("depth", 0, "maximum derivation tree depth (0 = server default)")
	nodes := flag.Int("nodes", 0, "maximum derivation tree nodes (0 = server default)")
	rawJSON := flag.Bool("json", false, "print the raw JSON response instead of the tree")
	flag.Parse()
	if *relation == "" {
		flag.Usage()
		os.Exit(2)
	}

	q := url.Values{"relation": {*relation}}
	if *key != "" {
		q.Set("key", *key)
	}
	if *depth > 0 {
		q.Set("depth", strconv.Itoa(*depth))
	}
	if *nodes > 0 {
		q.Set("nodes", strconv.Itoa(*nodes))
	}
	u := "http://" + *addr + "/debug/explain?" + q.Encode()
	resp, err := http.Get(u)
	if err != nil {
		log.Fatalf("nerpa-explain: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatalf("nerpa-explain: reading response: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("nerpa-explain: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	if *rawJSON {
		os.Stdout.Write(body)
		return
	}
	var res explainResult
	if err := json.Unmarshal(body, &res); err != nil {
		log.Fatalf("nerpa-explain: decoding response: %v", err)
	}
	render(os.Stdout, &res)
}
