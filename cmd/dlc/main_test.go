package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dl"
	"repro/internal/dl/engine"
	"repro/internal/dl/value"
)

const testProg = `
input relation R(s: string, n: int, b: bit<8>, f: bool)
output relation O(s: string)
O(s) :- R(s, _, _, true).
`

func testProgram(t *testing.T) *dl.Program {
	t.Helper()
	prog, err := dl.Compile(testProg)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestSplitArgs(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{`1, 2, 3`, []string{"1", "2", "3"}},
		{`"a,b", 2`, []string{`"a,b"`, "2"}},
		{`"esc\"aped", x`, []string{`"esc\"aped"`, "x"}},
		{``, nil},
		{`solo`, []string{"solo"}},
	}
	for _, c := range cases {
		got, err := splitArgs(c.in)
		if err != nil {
			t.Errorf("splitArgs(%q): %v", c.in, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("splitArgs(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("splitArgs(%q)[%d] = %q, want %q", c.in, i, got[i], c.want[i])
			}
		}
	}
	if _, err := splitArgs(`"unterminated`); err == nil {
		t.Errorf("unterminated string accepted")
	}
}

func TestParseUpdate(t *testing.T) {
	prog := testProgram(t)
	up, err := parseUpdate(prog, `insert R("hello", -4, 0xff, true)`)
	if err != nil {
		t.Fatalf("parseUpdate: %v", err)
	}
	if !up.Insert || up.Relation != "R" {
		t.Fatalf("update = %+v", up)
	}
	want := value.Record{value.String("hello"), value.Int(-4), value.Bit(255), value.Bool(true)}
	if !up.Rec.Equal(want) {
		t.Fatalf("record = %v, want %v", up.Rec, want)
	}
	up, err = parseUpdate(prog, `delete R(bare, 1, 2, false)`)
	if err != nil {
		t.Fatalf("parseUpdate delete: %v", err)
	}
	if up.Insert || up.Rec[0].Str() != "bare" {
		t.Fatalf("delete update = %+v", up)
	}
	bad := []string{
		`insert Nope(1)`,
		`insert R(1)`,                      // arity
		`insert R("s", notanint, 2, true)`, // type
		`insert R("s", 1, 300, true)`,      // bit overflow
		`insert R("s", 1, 2, maybe)`,       // bool
		`insert R "s", 1, 2, true`,         // syntax
	}
	for _, line := range bad {
		if _, err := parseUpdate(prog, line); err == nil {
			t.Errorf("parseUpdate(%q) succeeded", line)
		}
	}
}

func TestReplSession(t *testing.T) {
	prog := testProgram(t)
	rt, err := prog.NewRuntime(engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	session := `relations
insert R("a", 1, 2, true)
insert R("b", 1, 2, false)
commit
dump O
delete R("a", 1, 2, true)
commit
dump O
bogus command
quit
`
	var out bytes.Buffer
	repl(prog, rt, strings.NewReader(session), &out)
	text := out.String()
	for _, want := range []string{
		`input relation R`,
		`staged (1 pending`,
		`+ O("a")`,
		`O("a")` + "\n(1 records)",
		`- O("a")`,
		`(0 records)`,
		"commands:",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("session output missing %q:\n%s", want, text)
		}
	}
}
