// Command dlc compiles programs in the Datalog dialect and, with -i,
// drives them interactively: stage insertions and deletions, commit
// transactions, and watch the incremental output deltas.
//
//	dlc program.dl            # compile and type-check
//	dlc -i program.dl         # interactive session
//
// Interactive commands:
//
//	insert Rel(value, ...)    stage an insertion
//	delete Rel(value, ...)    stage a deletion
//	commit                    apply the staged transaction
//	dump Rel                  print a relation's contents
//	relations                 list relations
//	quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/dl"
	"repro/internal/dl/engine"
	"repro/internal/dl/typecheck"
	"repro/internal/dl/value"
)

func main() {
	interactive := flag.Bool("i", false, "start an interactive session after compiling")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dlc [-i] program.dl")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatalf("reading program: %v", err)
	}
	prog, err := dl.Compile(string(src))
	if err != nil {
		log.Fatalf("compile error: %v", err)
	}
	fmt.Fprintf(os.Stderr, "dlc: %s compiles (%d relations, %d rules)\n",
		flag.Arg(0), len(prog.Checked.Relations), len(prog.Checked.Rules))
	if !*interactive {
		return
	}
	rt, err := prog.NewRuntime(engine.Options{})
	if err != nil {
		log.Fatalf("runtime: %v", err)
	}
	repl(prog, rt, os.Stdin, os.Stdout)
}

func repl(prog *dl.Program, rt *engine.Runtime, in io.Reader, out io.Writer) {
	scanner := bufio.NewScanner(in)
	var staged []engine.Update
	fmt.Fprint(out, "> ")
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "//"):
		case line == "quit" || line == "exit":
			return
		case line == "relations":
			for _, name := range rt.Relations() {
				rel := prog.Relation(name)
				cols := make([]string, len(rel.Cols))
				for i, c := range rel.Cols {
					cols[i] = fmt.Sprintf("%s: %s", c.Name, c.Type)
				}
				fmt.Fprintf(out, "%s relation %s(%s)\n", rel.Role, name, strings.Join(cols, ", "))
			}
		case line == "commit":
			delta, err := rt.Apply(staged)
			staged = nil
			if err != nil {
				fmt.Fprintf(out, "error: %v\n", err)
				break
			}
			if len(delta) == 0 {
				fmt.Fprintln(out, "no output changes")
			}
			for rel, z := range delta {
				for _, e := range z.Entries() {
					sign := "+"
					if e.Weight < 0 {
						sign = "-"
					}
					fmt.Fprintf(out, "%s %s%s\n", sign, rel, e.Rec)
				}
			}
		case strings.HasPrefix(line, "dump "):
			name := strings.TrimSpace(strings.TrimPrefix(line, "dump "))
			recs, err := rt.Contents(name)
			if err != nil {
				fmt.Fprintf(out, "error: %v\n", err)
				break
			}
			for _, r := range recs {
				fmt.Fprintf(out, "%s%s\n", name, r)
			}
			fmt.Fprintf(out, "(%d records)\n", len(recs))
		case strings.HasPrefix(line, "insert ") || strings.HasPrefix(line, "delete "):
			up, err := parseUpdate(prog, line)
			if err != nil {
				fmt.Fprintf(out, "error: %v\n", err)
				break
			}
			staged = append(staged, up)
			fmt.Fprintf(out, "staged (%d pending; 'commit' to apply)\n", len(staged))
		default:
			fmt.Fprintln(out, "commands: insert Rel(v, ...) | delete Rel(v, ...) | commit | dump Rel | relations | quit")
		}
		fmt.Fprint(out, "> ")
	}
}

// parseUpdate parses "insert Rel(v1, v2, ...)" using the relation's column
// types to interpret the values.
func parseUpdate(prog *dl.Program, line string) (engine.Update, error) {
	insert := strings.HasPrefix(line, "insert ")
	rest := strings.TrimSpace(line[len("insert "):])
	open := strings.Index(rest, "(")
	if open < 0 || !strings.HasSuffix(rest, ")") {
		return engine.Update{}, fmt.Errorf("expected Rel(value, ...)")
	}
	relName := strings.TrimSpace(rest[:open])
	rel := prog.Relation(relName)
	if rel == nil {
		return engine.Update{}, fmt.Errorf("unknown relation %q", relName)
	}
	args, err := splitArgs(rest[open+1 : len(rest)-1])
	if err != nil {
		return engine.Update{}, err
	}
	if len(args) != len(rel.Cols) {
		return engine.Update{}, fmt.Errorf("relation %s has %d columns, got %d",
			relName, len(rel.Cols), len(args))
	}
	rec := make(value.Record, len(args))
	for i, a := range args {
		v, err := parseValue(a, rel.Cols[i])
		if err != nil {
			return engine.Update{}, fmt.Errorf("argument %d: %w", i+1, err)
		}
		rec[i] = v
	}
	return engine.Update{Relation: relName, Rec: rec, Insert: insert}, nil
}

// splitArgs splits a comma-separated argument list, honoring quotes.
func splitArgs(s string) ([]string, error) {
	var out []string
	var cur strings.Builder
	inStr := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inStr:
			cur.WriteByte(c)
			if c == '\\' && i+1 < len(s) {
				i++
				cur.WriteByte(s[i])
			} else if c == '"' {
				inStr = false
			}
		case c == '"':
			inStr = true
			cur.WriteByte(c)
		case c == ',':
			out = append(out, strings.TrimSpace(cur.String()))
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if inStr {
		return nil, fmt.Errorf("unterminated string")
	}
	if t := strings.TrimSpace(cur.String()); t != "" || len(out) > 0 {
		out = append(out, t)
	}
	return out, nil
}

func parseValue(s string, col typecheck.Column) (value.Value, error) {
	switch col.Type.Kind {
	case value.TBool:
		switch s {
		case "true":
			return value.Bool(true), nil
		case "false":
			return value.Bool(false), nil
		}
		return value.Value{}, fmt.Errorf("%q is not a bool", s)
	case value.TInt:
		n, err := strconv.ParseInt(s, 0, 64)
		if err != nil {
			return value.Value{}, fmt.Errorf("%q is not an int", s)
		}
		return value.Int(n), nil
	case value.TBit:
		n, err := strconv.ParseUint(s, 0, 64)
		if err != nil {
			return value.Value{}, fmt.Errorf("%q is not a bit<%d>", s, col.Type.Width)
		}
		if value.MaskBits(n, col.Type.Width) != n {
			return value.Value{}, fmt.Errorf("%d overflows bit<%d>", n, col.Type.Width)
		}
		return value.Bit(n), nil
	case value.TString:
		if strings.HasPrefix(s, `"`) {
			unq, err := strconv.Unquote(s)
			if err != nil {
				return value.Value{}, fmt.Errorf("bad string %s", s)
			}
			return value.String(unq), nil
		}
		return value.String(s), nil
	default:
		return value.Value{}, fmt.Errorf("column type %s not supported interactively", col.Type)
	}
}
