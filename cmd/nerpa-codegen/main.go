// Command nerpa-codegen generates control-plane relation declarations
// from the other two planes (the paper's Fig. 5 tooling): input relations
// from an OVSDB schema, output relations and digest inputs from a P4
// program.
//
//	nerpa-codegen [-schema file.ovsschema] [-p4 file.p4] [-rules rules.dl]
//
// Without flags it generates from the built-in snvs artifacts. With
// -rules it additionally compiles the generated declarations together
// with the given rules and reports type errors (the unified cross-plane
// check).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/codegen"
	"repro/internal/ovsdb"
	"repro/internal/p4"
	"repro/internal/snvs"
)

func main() {
	schemaPath := flag.String("schema", "", ".ovsschema file (default: built-in snvs schema)")
	p4Path := flag.String("p4", "", "P4 subset program (default: built-in snvs.p4)")
	rulesPath := flag.String("rules", "", "rules to type-check against the generated declarations")
	flag.Parse()

	var schema *ovsdb.DatabaseSchema
	var err error
	if *schemaPath != "" {
		data, rerr := os.ReadFile(*schemaPath)
		if rerr != nil {
			log.Fatalf("reading schema: %v", rerr)
		}
		schema, err = ovsdb.ParseSchema(data)
	} else {
		schema, err = snvs.Schema()
	}
	if err != nil {
		log.Fatalf("parsing schema: %v", err)
	}

	var prog *p4.Program
	if *p4Path != "" {
		src, rerr := os.ReadFile(*p4Path)
		if rerr != nil {
			log.Fatalf("reading program: %v", rerr)
		}
		prog, err = p4.ParseProgram("pipeline", string(src))
		if err != nil {
			log.Fatalf("parsing program: %v", err)
		}
	} else {
		prog = snvs.Pipeline()
	}
	info, err := p4.BuildP4Info(prog)
	if err != nil {
		log.Fatalf("building p4info: %v", err)
	}

	gen, err := codegen.Generate(schema, info, codegen.Options{WithMulticast: true})
	if err != nil {
		log.Fatalf("codegen: %v", err)
	}
	fmt.Print(gen.Decls)

	if *rulesPath != "" {
		rules, err := os.ReadFile(*rulesPath)
		if err != nil {
			log.Fatalf("reading rules: %v", err)
		}
		if _, err := gen.CompileWith(string(rules)); err != nil {
			log.Fatalf("cross-plane type check failed: %v", err)
		}
		fmt.Fprintln(os.Stderr, "nerpa-codegen: cross-plane type check passed")
	}
}
