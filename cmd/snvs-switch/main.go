// Command snvs-switch runs the behavioral software switch (the BMv2
// stand-in) and serves its P4Runtime-style control API.
//
//	snvs-switch -p4rt 127.0.0.1:9559 [-p4 program.p4] [-name sw0]
//
// With -p4 it executes the given P4-subset program; without, the built-in
// snvs pipeline. Packets can be injected through the control API's
// packet-out; in-process deployments (examples, benchmarks) attach hosts
// through a switchsim.Fabric instead.
package main

import (
	"errors"
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/p4"
	"repro/internal/snvs"
	"repro/internal/switchsim"
)

// drainDelay is how long /readyz answers 503 "draining" before the
// listener actually closes, so load balancers stop routing first.
const drainDelay = 200 * time.Millisecond

func main() {
	addr := flag.String("p4rt", "127.0.0.1:9559", "P4Runtime TCP listen address")
	p4Path := flag.String("p4", "", "P4 subset program file (default: built-in snvs.p4)")
	name := flag.String("name", "snvs0", "switch name")
	obsAddr := flag.String("obs-addr", "", "serve /metrics, /debug/traces, /debug/events and pprof on this address (off when empty)")
	obsEvents := flag.Int("obs-events", 0, "flight-recorder event ring capacity (0 = default, negative = disable events)")
	obsInstance := flag.String("obs-instance", "", "fleet-unique instance ID stamped on obs responses (default: the plane name)")
	obsSlowBudget := flag.Duration("obs-slow-budget", 0, "pin transactions whose stages exceed this duration to /debug/incidents (0 = off)")
	obsHistoryInterval := flag.Duration("obs-history-interval", time.Second, "metrics-history sampling interval (0 = off)")
	keepalive := flag.Duration("keepalive", 0, "echo-heartbeat interval on accepted connections; 3 misses fail one (0 = off)")
	flag.Parse()

	var prog *p4.Program
	if *p4Path != "" {
		src, err := os.ReadFile(*p4Path)
		if err != nil {
			log.Fatalf("reading program: %v", err)
		}
		prog, err = p4.ParseProgram(*name, string(src))
		if err != nil {
			log.Fatalf("parsing program: %v", err)
		}
	} else {
		prog = snvs.Pipeline()
	}

	sw, err := switchsim.New(*name, switchsim.Config{Program: prog})
	if err != nil {
		log.Fatalf("creating switch: %v", err)
	}
	if *keepalive > 0 {
		sw.SetKeepalive(*keepalive, 3)
	}
	var observer *obs.Observer
	if *obsAddr != "" {
		observer = obs.NewObserverWith(obs.ObserverConfig{EventCapacity: *obsEvents})
		observer.SetIdentity("switchsim", *obsInstance)
		if *obsSlowBudget > 0 {
			observer.SetSlowBudget(obs.AllBudget(*obsSlowBudget))
		}
		sw.SetObs(observer)
		if *obsHistoryInterval > 0 {
			observer.StartHistory(*obsHistoryInterval)
		}
		// Ready once the pipeline is loaded, which New already did.
		observer.SetReady(true)
		go func() {
			if err := observer.ListenAndServe(*obsAddr); err != nil {
				log.Fatalf("obs server: %v", err)
			}
		}()
		log.Printf("snvs-switch: observability on http://%s/metrics", *obsAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Printf("snvs-switch: signal received, draining")
		observer.SetDraining()
		time.Sleep(drainDelay)
		sw.Close()
	}()

	log.Printf("snvs-switch: %s running %q, p4rt on %s", *name, prog.Name, *addr)
	if err := sw.ListenAndServe(*addr); err != nil && !errors.Is(err, net.ErrClosed) {
		log.Fatalf("serve: %v", err)
	}
	log.Printf("snvs-switch: stopped")
}
