// Command snvs-switch runs the behavioral software switch (the BMv2
// stand-in) and serves its P4Runtime-style control API.
//
//	snvs-switch -p4rt 127.0.0.1:9559 [-p4 program.p4] [-name sw0]
//
// With -p4 it executes the given P4-subset program; without, the built-in
// snvs pipeline. Packets can be injected through the control API's
// packet-out; in-process deployments (examples, benchmarks) attach hosts
// through a switchsim.Fabric instead.
package main

import (
	"flag"
	"log"
	"os"

	"repro/internal/obs"
	"repro/internal/p4"
	"repro/internal/snvs"
	"repro/internal/switchsim"
)

func main() {
	addr := flag.String("p4rt", "127.0.0.1:9559", "P4Runtime TCP listen address")
	p4Path := flag.String("p4", "", "P4 subset program file (default: built-in snvs.p4)")
	name := flag.String("name", "snvs0", "switch name")
	obsAddr := flag.String("obs-addr", "", "serve /metrics, /debug/traces and pprof on this address (off when empty)")
	flag.Parse()

	var prog *p4.Program
	if *p4Path != "" {
		src, err := os.ReadFile(*p4Path)
		if err != nil {
			log.Fatalf("reading program: %v", err)
		}
		prog, err = p4.ParseProgram(*name, string(src))
		if err != nil {
			log.Fatalf("parsing program: %v", err)
		}
	} else {
		prog = snvs.Pipeline()
	}

	sw, err := switchsim.New(*name, switchsim.Config{Program: prog})
	if err != nil {
		log.Fatalf("creating switch: %v", err)
	}
	if *obsAddr != "" {
		observer := obs.NewObserver()
		sw.SetObs(observer.Reg())
		// Ready once the pipeline is loaded, which New already did.
		observer.SetReady(true)
		go func() {
			if err := observer.ListenAndServe(*obsAddr); err != nil {
				log.Fatalf("obs server: %v", err)
			}
		}()
		log.Printf("snvs-switch: observability on http://%s/metrics", *obsAddr)
	}
	log.Printf("snvs-switch: %s running %q, p4rt on %s", *name, prog.Name, *addr)
	if err := sw.ListenAndServe(*addr); err != nil {
		log.Fatalf("serve: %v", err)
	}
}
