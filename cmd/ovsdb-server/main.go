// Command ovsdb-server hosts an OVSDB management-plane database over TCP.
//
// With -schema it serves a database for the given .ovsschema file;
// without, it serves the built-in snvs schema.
//
//	ovsdb-server -addr 127.0.0.1:6640 [-schema file.ovsschema]
package main

import (
	"errors"
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/ovsdb"
	"repro/internal/ovsdb/wal"
	"repro/internal/snvs"
)

// drainDelay is how long /readyz answers 503 "draining" before the
// listener actually closes, so load balancers stop routing first.
const drainDelay = 200 * time.Millisecond

func main() {
	addr := flag.String("addr", "127.0.0.1:6640", "TCP listen address")
	schemaPath := flag.String("schema", "", ".ovsschema file (default: built-in snvs schema)")
	obsAddr := flag.String("obs-addr", "", "serve /metrics, /debug/traces, /debug/events and pprof on this address (off when empty)")
	obsEvents := flag.Int("obs-events", 0, "flight-recorder event ring capacity (0 = default, negative = disable events)")
	obsInstance := flag.String("obs-instance", "", "fleet-unique instance ID stamped on obs responses (default: the plane name)")
	obsSlowBudget := flag.Duration("obs-slow-budget", 0, "pin transactions whose stages exceed this duration to /debug/incidents (0 = off)")
	obsHistoryInterval := flag.Duration("obs-history-interval", time.Second, "metrics-history sampling interval (0 = off)")
	keepalive := flag.Duration("keepalive", 0, "echo-heartbeat interval on accepted connections; 3 misses fail one (0 = off)")
	walDir := flag.String("wal-dir", "", "write-ahead-log directory: commits become durable and state survives restarts (empty = memory-only)")
	walFsync := flag.String("wal-fsync", wal.FsyncCommit, "WAL durability policy: commit (group fsync per commit batch) or off (OS-buffered)")
	snapshotEvery := flag.Int("snapshot-every", 0, "WAL records between snapshot compactions (0 = default 8192, negative = never)")
	flag.Parse()

	var schema *ovsdb.DatabaseSchema
	var err error
	if *schemaPath != "" {
		data, rerr := os.ReadFile(*schemaPath)
		if rerr != nil {
			log.Fatalf("reading schema: %v", rerr)
		}
		schema, err = ovsdb.ParseSchema(data)
	} else {
		schema, err = snvs.Schema()
	}
	if err != nil {
		log.Fatalf("parsing schema: %v", err)
	}

	db := ovsdb.NewDatabase(schema)
	var observer *obs.Observer
	if *obsAddr != "" {
		observer = obs.NewObserverWith(obs.ObserverConfig{EventCapacity: *obsEvents})
		observer.SetIdentity("ovsdb", *obsInstance)
		if *obsSlowBudget > 0 {
			observer.SetSlowBudget(obs.AllBudget(*obsSlowBudget))
		}
		db.SetObs(observer)
		if *obsHistoryInterval > 0 {
			observer.StartHistory(*obsHistoryInterval)
		}
		// The server is ready as soon as its listener accepts: the database
		// is in-memory and fully initialized before serving starts.
		observer.SetReady(true)
		go func() {
			if err := observer.ListenAndServe(*obsAddr); err != nil {
				log.Fatalf("obs server: %v", err)
			}
		}()
		log.Printf("ovsdb-server: observability on http://%s/metrics", *obsAddr)
	}

	// Open the WAL after the observer exists so recovery and appends are
	// instrumented. Recovery replays the snapshot plus the log tail into
	// the empty database and seeds its txn counter before serving starts.
	var walLog *wal.Log
	if *walDir != "" {
		l, recovered, werr := wal.Open(wal.Options{
			Dir:           *walDir,
			Fsync:         *walFsync,
			SnapshotEvery: *snapshotEvery,
			Obs:           observer,
		})
		if werr != nil {
			log.Fatalf("opening wal: %v", werr)
		}
		if rerr := db.Restore(recovered); rerr != nil {
			log.Fatalf("restoring from wal: %v", rerr)
		}
		db.AttachWAL(l)
		walLog = l
		log.Printf("ovsdb-server: wal %s recovered to txn %d (%d tail records)",
			*walDir, recovered.LastTxn, len(recovered.Tail))
	}

	srv := ovsdb.NewServer(db)
	if *keepalive > 0 {
		srv.SetKeepalive(*keepalive, 3)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Printf("ovsdb-server: signal received, draining")
		observer.SetDraining()
		time.Sleep(drainDelay)
		srv.Close()
	}()

	log.Printf("ovsdb-server: serving database %q on %s", schema.Name, *addr)
	if err := srv.ListenAndServe(*addr); err != nil && !errors.Is(err, net.ErrClosed) {
		log.Fatalf("serve: %v", err)
	}
	if walLog != nil {
		if err := walLog.Close(); err != nil {
			log.Printf("ovsdb-server: wal close: %v", err)
		}
	}
	log.Printf("ovsdb-server: stopped")
}
