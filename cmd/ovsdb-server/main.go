// Command ovsdb-server hosts an OVSDB management-plane database over TCP.
//
// With -schema it serves a database for the given .ovsschema file;
// without, it serves the built-in snvs schema.
//
//	ovsdb-server -addr 127.0.0.1:6640 [-schema file.ovsschema]
package main

import (
	"flag"
	"log"
	"os"

	"repro/internal/obs"
	"repro/internal/ovsdb"
	"repro/internal/snvs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6640", "TCP listen address")
	schemaPath := flag.String("schema", "", ".ovsschema file (default: built-in snvs schema)")
	obsAddr := flag.String("obs-addr", "", "serve /metrics, /debug/traces and pprof on this address (off when empty)")
	flag.Parse()

	var schema *ovsdb.DatabaseSchema
	var err error
	if *schemaPath != "" {
		data, rerr := os.ReadFile(*schemaPath)
		if rerr != nil {
			log.Fatalf("reading schema: %v", rerr)
		}
		schema, err = ovsdb.ParseSchema(data)
	} else {
		schema, err = snvs.Schema()
	}
	if err != nil {
		log.Fatalf("parsing schema: %v", err)
	}

	db := ovsdb.NewDatabase(schema)
	if *obsAddr != "" {
		observer := obs.NewObserver()
		db.SetObs(observer.Reg(), observer.Tr())
		// The server is ready as soon as its listener accepts: the database
		// is in-memory and fully initialized before serving starts.
		observer.SetReady(true)
		go func() {
			if err := observer.ListenAndServe(*obsAddr); err != nil {
				log.Fatalf("obs server: %v", err)
			}
		}()
		log.Printf("ovsdb-server: observability on http://%s/metrics", *obsAddr)
	}
	srv := ovsdb.NewServer(db)
	log.Printf("ovsdb-server: serving database %q on %s", schema.Name, *addr)
	if err := srv.ListenAndServe(*addr); err != nil {
		log.Fatalf("serve: %v", err)
	}
}
