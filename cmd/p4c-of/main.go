// Command p4c-of compiles a P4 subset program onto an OpenFlow-style
// pipeline (the paper's p4c-of component) and prints the table layout and
// miss flows in an ovs-ofctl-like format.
//
//	p4c-of [-p4 program.p4]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/p4"
	"repro/internal/p4of"
	"repro/internal/snvs"
)

func main() {
	p4Path := flag.String("p4", "", "P4 subset program (default: built-in snvs.p4)")
	flag.Parse()

	var prog *p4.Program
	if *p4Path != "" {
		src, err := os.ReadFile(*p4Path)
		if err != nil {
			log.Fatalf("reading program: %v", err)
		}
		prog, err = p4.ParseProgram("pipeline", string(src))
		if err != nil {
			log.Fatalf("parsing program: %v", err)
		}
	} else {
		prog = snvs.Pipeline()
	}

	pl, err := p4of.Compile(prog)
	if err != nil {
		log.Fatalf("p4c-of: %v", err)
	}
	fmt.Printf("// program %q compiled to %d OpenFlow tables\n", pl.Program, len(pl.Tables))
	for _, ct := range pl.Tables {
		guard := strings.Join(ct.Guard, ",")
		if guard == "" {
			guard = "*"
		}
		next := "end"
		if ct.Next >= 0 {
			next = fmt.Sprintf("table %d", ct.Next)
		}
		fmt.Printf("// table %2d: %-16s guard=%-28s then %s\n", ct.ID, ct.Name, guard, next)
	}
	fmt.Println("// miss flows (controller entries add higher-priority flows):")
	var flows []p4of.Flow
	for _, ct := range pl.Tables {
		miss, err := pl.MissFlow(ct.Name)
		if err != nil {
			log.Fatal(err)
		}
		if miss != nil {
			flows = append(flows, *miss)
		}
	}
	fmt.Print(p4of.Render(flows))
}
