// Command nerpa-bench regenerates the paper's tables and figures
// (see DESIGN.md for the experiment index and EXPERIMENTS.md for
// paper-vs-measured results).
//
//	nerpa-bench -exp all            # everything at paper scale
//	nerpa-bench -exp ports -n 2000  # T1, the §4.3 2000-port measurement
//	nerpa-bench -exp lb|incr|label|label-dense|fig3|loc
//	nerpa-bench -exp parallel -workers 1,2,4,8   # writes BENCH_parallel.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/obs"
)

func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad -workers element %q", f)
		}
		out = append(out, w)
	}
	return out, nil
}

func main() {
	exp := flag.String("exp", "all", "experiment: ports, lb, incr, label, label-dense, fig3, loc, parallel, provenance, obs-overhead, reconnect, throughput, recovery, fanout, all")
	n := flag.Int("n", 2000, "ports for -exp ports")
	vips := flag.Int("vips", 50, "load balancers for -exp lb")
	backends := flag.Int("backends", 500, "backends per load balancer for -exp lb")
	changes := flag.Int("changes", 50, "changes for -exp incr")
	nodes := flag.Int("nodes", 20000, "nodes for -exp label")
	churn := flag.Int("churn", 100, "link events for -exp label")
	workers := flag.String("workers", "1,2,4,8", "comma-separated worker counts for -exp parallel")
	parallelOut := flag.String("parallel-out", "BENCH_parallel.json", "machine-readable output for -exp parallel")
	provOut := flag.String("provenance-out", "BENCH_provenance.json", "machine-readable output for -exp provenance")
	obsTxns := flag.Int("obs-txns", 300, "transactions per mode for -exp obs-overhead")
	obsOut := flag.String("obs-overhead-out", "BENCH_obs_overhead.json", "machine-readable output for -exp obs-overhead")
	reconnectPorts := flag.String("reconnect-ports", "50,250,1000", "comma-separated port counts for -exp reconnect")
	reconnectRestarts := flag.Int("reconnect-restarts", 5, "switch restarts per size for -exp reconnect")
	reconnectOut := flag.String("reconnect-out", "BENCH_reconnect.json", "machine-readable output for -exp reconnect")
	tpWorkers := flag.Int("throughput-workers", 16, "concurrent OVSDB clients for -exp throughput")
	tpTxns := flag.Int("throughput-txns", 2000, "measured transactions per worker for -exp throughput")
	tpOut := flag.String("throughput-out", "BENCH_throughput.json", "machine-readable output for -exp throughput")
	recoveryTxns := flag.Int("recovery-txns", 4000, "WAL commits for -exp recovery cold-restart measurement")
	recoveryGap := flag.Int("recovery-gap", 50, "commits missed during the outage for -exp recovery")
	recoveryOut := flag.String("recovery-out", "BENCH_recovery.json", "machine-readable output for -exp recovery")
	fanoutSubs := flag.Int("fanout-subs", 10000, "concurrent subscriptions for -exp fanout")
	fanoutConns := flag.Int("fanout-conns", 200, "client connections carrying the subscriptions for -exp fanout")
	fanoutChurn := flag.Int("fanout-churn", 256, "port-churn commits driving the fan-out for -exp fanout")
	fanoutOut := flag.String("fanout-out", "BENCH_fanout.json", "machine-readable output for -exp fanout")
	flag.Parse()

	run := func(name string, f func() (fmt.Stringer, error)) {
		res, err := f()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println(res)
	}

	any := false
	want := func(name string) bool {
		if *exp == "all" || *exp == name {
			any = true
			return true
		}
		return false
	}

	if want("fig3") {
		run("fig3", func() (fmt.Stringer, error) { return bench.RunFig3(), nil })
	}
	if want("ports") {
		run("ports", func() (fmt.Stringer, error) { return bench.RunPortScale(*n) })
	}
	if want("loc") {
		run("loc", func() (fmt.Stringer, error) { return bench.RunLOC() })
	}
	if want("lb") {
		run("lb", func() (fmt.Stringer, error) { return bench.RunLoadBalancer(*vips, *backends) })
	}
	if want("incr") {
		run("incr", func() (fmt.Stringer, error) {
			return bench.RunIncrVsRecompute([]int{100, 500, 2000, 8000}, *changes)
		})
	}
	if want("label") {
		run("label", func() (fmt.Stringer, error) { return bench.RunLabeling(*nodes, 0, *churn) })
	}
	if want("parallel") {
		run("parallel", func() (fmt.Stringer, error) {
			ws, err := parseWorkers(*workers)
			if err != nil {
				return nil, err
			}
			res, err := bench.RunParallelScaling(1000, 32, 20, ws, obs.NewRegistry())
			if err != nil {
				return nil, err
			}
			data, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				return nil, err
			}
			if err := os.WriteFile(*parallelOut, append(data, '\n'), 0o644); err != nil {
				return nil, err
			}
			fmt.Printf("wrote %s\n", *parallelOut)
			return res, nil
		})
	}
	if want("provenance") {
		run("provenance", func() (fmt.Stringer, error) {
			res, err := bench.RunProvenance(1000, 32, 200)
			if err != nil {
				return nil, err
			}
			data, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				return nil, err
			}
			if err := os.WriteFile(*provOut, append(data, '\n'), 0o644); err != nil {
				return nil, err
			}
			fmt.Printf("wrote %s\n", *provOut)
			return res, nil
		})
	}
	if want("obs-overhead") {
		run("obs-overhead", func() (fmt.Stringer, error) {
			res, err := bench.RunObsOverhead(*obsTxns)
			if err != nil {
				return nil, err
			}
			data, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				return nil, err
			}
			if err := os.WriteFile(*obsOut, append(data, '\n'), 0o644); err != nil {
				return nil, err
			}
			fmt.Printf("wrote %s\n", *obsOut)
			return res, nil
		})
	}
	if want("reconnect") {
		run("reconnect", func() (fmt.Stringer, error) {
			sizes, err := parseWorkers(*reconnectPorts)
			if err != nil {
				return nil, fmt.Errorf("bad -reconnect-ports: %w", err)
			}
			res, err := bench.RunReconnect(sizes, *reconnectRestarts)
			if err != nil {
				return nil, err
			}
			data, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				return nil, err
			}
			if err := os.WriteFile(*reconnectOut, append(data, '\n'), 0o644); err != nil {
				return nil, err
			}
			fmt.Printf("wrote %s\n", *reconnectOut)
			return res, nil
		})
	}
	if want("throughput") {
		run("throughput", func() (fmt.Stringer, error) {
			res, err := bench.RunThroughput(*tpWorkers, *tpTxns)
			if err != nil {
				return nil, err
			}
			data, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				return nil, err
			}
			if err := os.WriteFile(*tpOut, append(data, '\n'), 0o644); err != nil {
				return nil, err
			}
			fmt.Printf("wrote %s\n", *tpOut)
			return res, nil
		})
	}
	if want("recovery") {
		run("recovery", func() (fmt.Stringer, error) {
			res, err := bench.RunRecovery(*recoveryTxns, *recoveryGap)
			if err != nil {
				return nil, err
			}
			data, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				return nil, err
			}
			if err := os.WriteFile(*recoveryOut, append(data, '\n'), 0o644); err != nil {
				return nil, err
			}
			fmt.Printf("wrote %s\n", *recoveryOut)
			return res, nil
		})
	}
	if want("fanout") {
		run("fanout", func() (fmt.Stringer, error) {
			res, err := bench.RunFanout(bench.FanoutConfig{
				Subscribers: *fanoutSubs,
				Conns:       *fanoutConns,
				ChurnTxns:   *fanoutChurn,
			})
			if err != nil {
				return nil, err
			}
			data, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				return nil, err
			}
			if err := os.WriteFile(*fanoutOut, append(data, '\n'), 0o644); err != nil {
				return nil, err
			}
			fmt.Printf("wrote %s\n", *fanoutOut)
			return res, nil
		})
	}
	if want("label-dense") || *exp == "all" {
		run("label-dense", func() (fmt.Stringer, error) {
			// The documented adversarial case; kept small because every
			// deletion cascades across the whole reachable set.
			return bench.RunLabelingDense(1000, 3000, 20)
		})
	}
	if !any {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}
