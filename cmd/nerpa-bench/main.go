// Command nerpa-bench regenerates the paper's tables and figures
// (see DESIGN.md for the experiment index and EXPERIMENTS.md for
// paper-vs-measured results).
//
//	nerpa-bench -exp all            # everything at paper scale
//	nerpa-bench -exp ports -n 2000  # T1, the §4.3 2000-port measurement
//	nerpa-bench -exp lb|incr|label|label-dense|fig3|loc
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment: ports, lb, incr, label, label-dense, fig3, loc, all")
	n := flag.Int("n", 2000, "ports for -exp ports")
	vips := flag.Int("vips", 50, "load balancers for -exp lb")
	backends := flag.Int("backends", 500, "backends per load balancer for -exp lb")
	changes := flag.Int("changes", 50, "changes for -exp incr")
	nodes := flag.Int("nodes", 20000, "nodes for -exp label")
	churn := flag.Int("churn", 100, "link events for -exp label")
	flag.Parse()

	run := func(name string, f func() (fmt.Stringer, error)) {
		res, err := f()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println(res)
	}

	any := false
	want := func(name string) bool {
		if *exp == "all" || *exp == name {
			any = true
			return true
		}
		return false
	}

	if want("fig3") {
		run("fig3", func() (fmt.Stringer, error) { return bench.RunFig3(), nil })
	}
	if want("ports") {
		run("ports", func() (fmt.Stringer, error) { return bench.RunPortScale(*n) })
	}
	if want("loc") {
		run("loc", func() (fmt.Stringer, error) { return bench.RunLOC() })
	}
	if want("lb") {
		run("lb", func() (fmt.Stringer, error) { return bench.RunLoadBalancer(*vips, *backends) })
	}
	if want("incr") {
		run("incr", func() (fmt.Stringer, error) {
			return bench.RunIncrVsRecompute([]int{100, 500, 2000, 8000}, *changes)
		})
	}
	if want("label") {
		run("label", func() (fmt.Stringer, error) { return bench.RunLabeling(*nodes, 0, *churn) })
	}
	if want("label-dense") || *exp == "all" {
		run("label-dense", func() (fmt.Stringer, error) {
			// The documented adversarial case; kept small because every
			// deletion cascades across the whole reachable set.
			return bench.RunLabelingDense(1000, 3000, 20)
		})
	}
	if !any {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}
