// Command nerpa-controller runs the full-stack SDN controller: it
// connects to the management plane (OVSDB) and one or more data planes
// (P4Runtime), generates and type-checks the cross-plane program, and
// synchronizes state incrementally until interrupted.
//
//	nerpa-controller -ovsdb 127.0.0.1:6640 -db snvs \
//	    -p4rt 127.0.0.1:9559[,more...] [-rules rules.dl] [-v]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/ovsdb"
	"repro/internal/p4rt"
	"repro/internal/snvs"
	"repro/internal/subscribe"
)

// drainDelay is how long /readyz answers 503 "draining" before the
// controller actually stops, so load balancers stop routing first.
const drainDelay = 200 * time.Millisecond

func main() {
	ovsdbAddr := flag.String("ovsdb", "127.0.0.1:6640", "OVSDB server address")
	dbName := flag.String("db", "snvs", "database name")
	p4rtAddrs := flag.String("p4rt", "127.0.0.1:9559", "comma-separated P4Runtime addresses")
	rulesPath := flag.String("rules", "", "control-plane rules file (default: built-in snvs rules)")
	obsAddr := flag.String("obs-addr", "", "serve /metrics, /debug/traces, /debug/events and pprof on this address (off when empty)")
	subAddr := flag.String("sub-addr", "", "serve derived-relation subscriptions (nerpa-watch clients) on this address (off when empty)")
	subQueue := flag.Int("sub-queue", 0, "per-subscriber pending-update queue; a full queue evicts the subscriber (0 = default 256)")
	subWriteLimit := flag.Int("sub-write-limit", 0, "per-subscriber-connection JSON-RPC write-queue cap (0 = default 4096, negative = unlimited)")
	obsEvents := flag.Int("obs-events", 0, "flight-recorder event ring capacity (0 = default, negative = disable events)")
	obsInstance := flag.String("obs-instance", "", "fleet-unique instance ID stamped on obs responses (default: the plane name)")
	obsSlowBudget := flag.Duration("obs-slow-budget", 0, "pin transactions whose stages exceed this duration to /debug/incidents (0 = off)")
	obsHistoryInterval := flag.Duration("obs-history-interval", time.Second, "metrics-history sampling interval (0 = off)")
	obsProfile := flag.Bool("obs-profile", true, "continuous workload profiler: per-rule cost attribution (/debug/rules, dl_rule_*) and memory accounting (/debug/memory, dl_mem_*)")
	reconnectBackoff := flag.Duration("reconnect-backoff", 5*time.Second, "maximum redial backoff after a connection drops (0 = exit on disconnect)")
	rpcTimeout := flag.Duration("rpc-timeout", 30*time.Second, "per-RPC deadline on OVSDB and P4Runtime calls (0 = none)")
	keepalive := flag.Duration("keepalive", 10*time.Second, "echo-heartbeat interval on every connection; 3 misses fail it (0 = off)")
	coalesceTxns := flag.Int("coalesce-max-txns", 1, "merge up to this many queued OVSDB commits into one engine transaction (<=1 disables coalescing)")
	coalesceUpdates := flag.Int("coalesce-max-updates", 0, "flush a merged batch once it carries this many input updates (0 = default 1024)")
	coalesceWindow := flag.Duration("coalesce-window", 0, "wait up to this long for further commits before applying a partial batch (0 = merge only already-queued commits)")
	verbose := flag.Bool("v", false, "log every applied transaction")
	flag.Parse()

	var observer *obs.Observer
	if *obsAddr != "" {
		observer = obs.NewObserverWith(obs.ObserverConfig{EventCapacity: *obsEvents})
		observer.SetIdentity("controller", *obsInstance)
		if *obsSlowBudget > 0 {
			observer.SetSlowBudget(obs.AllBudget(*obsSlowBudget))
		}
		if *obsHistoryInterval > 0 {
			observer.StartHistory(*obsHistoryInterval)
		}
		go func() {
			if err := observer.ListenAndServe(*obsAddr); err != nil {
				log.Fatalf("obs server: %v", err)
			}
		}()
		log.Printf("nerpa-controller: observability on http://%s/metrics", *obsAddr)
	}

	rules := snvs.Rules
	if *rulesPath != "" {
		data, err := os.ReadFile(*rulesPath)
		if err != nil {
			log.Fatalf("reading rules: %v", err)
		}
		rules = string(data)
	}

	// Connections self-heal unless -reconnect-backoff is 0: they redial
	// with jittered exponential backoff, re-establish monitors and
	// sessions, and resynchronize state, so a bounced ovsdb-server or
	// switch is an outage, not a controller restart.
	var mp core.ManagementPlane
	if *reconnectBackoff > 0 {
		rmp, err := ovsdb.DialResilient(ovsdb.ResilientConfig{
			Addr:              *ovsdbAddr,
			BackoffMax:        *reconnectBackoff,
			CallTimeout:       *rpcTimeout,
			KeepaliveInterval: *keepalive,
			KeepaliveMisses:   3,
			Obs:               observer,
		})
		if err != nil {
			log.Fatalf("connecting to OVSDB at %s: %v", *ovsdbAddr, err)
		}
		defer rmp.Close()
		mp = rmp
	} else {
		c, err := ovsdb.Dial(*ovsdbAddr)
		if err != nil {
			log.Fatalf("connecting to OVSDB at %s: %v", *ovsdbAddr, err)
		}
		c.SetCallTimeout(*rpcTimeout)
		if *keepalive > 0 {
			c.StartKeepalive(*keepalive, 3)
		}
		defer c.Close()
		mp = c
	}

	var devices []core.DataPlane
	var rclients []*p4rt.ResilientClient
	for i, addr := range strings.Split(*p4rtAddrs, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		if *reconnectBackoff > 0 {
			// core.New names devices dev0, dev1, ... in argument order;
			// the reconnect hook below resyncs by that name.
			rc, err := p4rt.DialResilient(p4rt.ResilientConfig{
				Addr:              addr,
				Target:            fmt.Sprintf("dev%d", i),
				BackoffMax:        *reconnectBackoff,
				CallTimeout:       *rpcTimeout,
				KeepaliveInterval: *keepalive,
				KeepaliveMisses:   3,
				Obs:               observer,
			})
			if err != nil {
				log.Fatalf("connecting to data plane at %s: %v", addr, err)
			}
			defer rc.Close()
			rclients = append(rclients, rc)
			devices = append(devices, rc)
			continue
		}
		dp, err := p4rt.Dial(addr)
		if err != nil {
			log.Fatalf("connecting to data plane at %s: %v", addr, err)
		}
		dp.SetCallTimeout(*rpcTimeout)
		if *keepalive > 0 {
			dp.StartKeepalive(*keepalive, 3)
		}
		defer dp.Close()
		dp.SetObs(observer, addr)
		devices = append(devices, dp)
	}

	cfg := core.Config{
		Rules: rules, Database: *dbName, Obs: observer,
		CoalesceMaxTxns:    *coalesceTxns,
		CoalesceMaxUpdates: *coalesceUpdates,
		CoalesceWindow:     *coalesceWindow,
		Profile:            *obsProfile,
	}
	var subSvc *subscribe.Service
	if *subAddr != "" {
		subSvc = subscribe.New(subscribe.Config{
			QueueLen:   *subQueue,
			WriteLimit: *subWriteLimit,
			Obs:        observer,
		})
		defer subSvc.Close()
		cfg.OnDelta = subSvc.Publish
	}
	if *verbose {
		cfg.OnTxn = func(st core.TxnStats) {
			log.Printf("txn source=%s inputs=%d outputs=%d engine=%v push=%v",
				st.Source, st.InputUpdates, st.OutputChanges, st.EngineTime, st.PushTime)
		}
	}
	ctrl, err := core.New(cfg, mp, devices...)
	if err != nil {
		log.Fatalf("starting controller: %v", err)
	}
	// When a device session is re-established, reconcile its tables
	// against the controller's desired state before republishing it.
	for i, rc := range rclients {
		id := fmt.Sprintf("dev%d", i)
		rc := rc
		rc.OnReconnect(func(cl *p4rt.Client) error { return ctrl.Resync(id, cl) })
	}
	if subSvc != nil {
		subSvc.SetCatalog(ctrl.OutputRelations())
		ln, err := net.Listen("tcp", *subAddr)
		if err != nil {
			log.Fatalf("subscription listener on %s: %v", *subAddr, err)
		}
		defer ln.Close()
		go func() {
			if err := subSvc.Serve(ln); err != nil {
				log.Fatalf("subscription server: %v", err)
			}
		}()
		log.Printf("nerpa-controller: serving derived-relation subscriptions on %s", *subAddr)
	}
	log.Printf("nerpa-controller: managing %q across %d data plane(s)", *dbName, len(devices))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-sig:
		log.Printf("nerpa-controller: signal received, draining")
		observer.SetDraining()
		time.Sleep(drainDelay)
		ctrl.Stop()
	case <-ctrl.Done():
		if err := ctrl.Err(); err != nil {
			log.Fatalf("controller failed: %v", err)
		}
	}
}
