// Command nerpa-controller runs the full-stack SDN controller: it
// connects to the management plane (OVSDB) and one or more data planes
// (P4Runtime), generates and type-checks the cross-plane program, and
// synchronizes state incrementally until interrupted.
//
//	nerpa-controller -ovsdb 127.0.0.1:6640 -db snvs \
//	    -p4rt 127.0.0.1:9559[,more...] [-rules rules.dl] [-v]
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/ovsdb"
	"repro/internal/p4rt"
	"repro/internal/snvs"
)

func main() {
	ovsdbAddr := flag.String("ovsdb", "127.0.0.1:6640", "OVSDB server address")
	dbName := flag.String("db", "snvs", "database name")
	p4rtAddrs := flag.String("p4rt", "127.0.0.1:9559", "comma-separated P4Runtime addresses")
	rulesPath := flag.String("rules", "", "control-plane rules file (default: built-in snvs rules)")
	obsAddr := flag.String("obs-addr", "", "serve /metrics, /debug/traces and pprof on this address (off when empty)")
	verbose := flag.Bool("v", false, "log every applied transaction")
	flag.Parse()

	var observer *obs.Observer
	if *obsAddr != "" {
		observer = obs.NewObserver()
		go func() {
			if err := observer.ListenAndServe(*obsAddr); err != nil {
				log.Fatalf("obs server: %v", err)
			}
		}()
		log.Printf("nerpa-controller: observability on http://%s/metrics", *obsAddr)
	}

	rules := snvs.Rules
	if *rulesPath != "" {
		data, err := os.ReadFile(*rulesPath)
		if err != nil {
			log.Fatalf("reading rules: %v", err)
		}
		rules = string(data)
	}

	mp, err := ovsdb.Dial(*ovsdbAddr)
	if err != nil {
		log.Fatalf("connecting to OVSDB at %s: %v", *ovsdbAddr, err)
	}
	defer mp.Close()

	var devices []core.DataPlane
	for _, addr := range strings.Split(*p4rtAddrs, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		dp, err := p4rt.Dial(addr)
		if err != nil {
			log.Fatalf("connecting to data plane at %s: %v", addr, err)
		}
		defer dp.Close()
		dp.SetObs(observer.Reg(), addr)
		devices = append(devices, dp)
	}

	cfg := core.Config{Rules: rules, Database: *dbName, Obs: observer}
	if *verbose {
		cfg.OnTxn = func(st core.TxnStats) {
			log.Printf("txn source=%s inputs=%d outputs=%d engine=%v push=%v",
				st.Source, st.InputUpdates, st.OutputChanges, st.EngineTime, st.PushTime)
		}
	}
	ctrl, err := core.New(cfg, mp, devices...)
	if err != nil {
		log.Fatalf("starting controller: %v", err)
	}
	log.Printf("nerpa-controller: managing %q across %d data plane(s)", *dbName, len(devices))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	select {
	case <-sig:
		log.Printf("nerpa-controller: interrupted, stopping")
		ctrl.Stop()
	case <-ctrl.Done():
		if err := ctrl.Err(); err != nil {
			log.Fatalf("controller failed: %v", err)
		}
	}
}
