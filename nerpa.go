// Package nerpa is the public facade of this repository: a from-scratch
// Go reproduction of "Full-Stack SDN" (Sur, Pfaff, Ryzhyk, Budiu —
// HotNets '22), the Nerpa programming framework in which the management,
// control, and data planes of a network are programmed and type-checked
// together, with an automatically incremental control plane.
//
// The facade re-exports the pieces a downstream user composes:
//
//   - CompileRules / codegen: build a cross-plane program from an OVSDB
//     schema, a P4 pipeline, and hand-written Datalog rules;
//   - NewController: run the synchronization loop against a management
//     plane and data planes;
//   - the substrate packages (internal/ovsdb, internal/p4, internal/
//     switchsim, internal/dl) for assembling deployments and tests.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory, and EXPERIMENTS.md for the paper-vs-measured evaluation.
package nerpa

import (
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/dl"
	"repro/internal/dl/engine"
	"repro/internal/ovsdb"
	"repro/internal/p4"
)

// Program is a compiled control-plane program.
type Program = dl.Program

// Controller is a running full-stack controller.
type Controller = core.Controller

// ControllerConfig configures NewController.
type ControllerConfig = core.Config

// Generated holds generated declarations and cross-plane bindings.
type Generated = codegen.Generated

// CompileRules compiles a standalone control-plane program (no generated
// declarations). For cross-plane programs use Generate + CompileWith.
func CompileRules(src string) (*Program, error) { return dl.Compile(src) }

// Generate produces control-plane declarations and bindings from a
// management-plane schema and a data-plane pipeline (either may be nil).
func Generate(schema *ovsdb.DatabaseSchema, info *p4.P4Info) (*Generated, error) {
	return codegen.Generate(schema, info, codegen.Options{WithMulticast: true})
}

// NewController builds and starts the full-stack controller.
func NewController(cfg ControllerConfig, mp core.ManagementPlane, devices ...core.DataPlane) (*Controller, error) {
	return core.New(cfg, mp, devices...)
}

// NewRuntime instantiates an incremental runtime for a compiled program.
func NewRuntime(p *Program) (*engine.Runtime, error) {
	return p.NewRuntime(engine.Options{})
}

// ParseSchema parses an OVSDB schema document.
func ParseSchema(data []byte) (*ovsdb.DatabaseSchema, error) { return ovsdb.ParseSchema(data) }

// ParseP4 parses a P4-subset program.
func ParseP4(name, src string) (*p4.Program, error) { return p4.ParseProgram(name, src) }
