package baseline

import (
	"repro/internal/p4"
	"repro/internal/p4rt"
)

// LB models one load balancer: a VIP fronting a set of backends (the
// workload of the paper's §2.2 OVN load-balancer benchmark).
type LB struct {
	ID       int
	VIP      uint32
	Backends []LBBackend
}

// LBBackend is one backend of a load balancer.
type LBBackend struct {
	IP   uint32
	Port uint16
}

// LBEntries is the imperative (hand-written C-style) translation of load
// balancer configuration into data-plane entries: one VIP entry selecting
// a group, one bucket entry per backend. Non-incremental: callers
// recompute the full set on every change and Diff.
func LBEntries(lbs []LB) *EntrySet {
	es := NewEntrySet()
	for _, lb := range lbs {
		gid := uint64(lb.ID % 65536)
		es.add(p4rt.TableEntry{
			Table:   "lb_vip",
			Matches: []p4.FieldMatch{{Value: uint64(lb.VIP)}},
			Action:  "lb_group", Params: []uint64{gid},
		})
		for i, b := range lb.Backends {
			es.add(p4rt.TableEntry{
				Table: "lb_backend",
				Matches: []p4.FieldMatch{
					{Value: gid}, {Value: uint64(i % 65536)},
				},
				Action: "dnat", Params: []uint64{uint64(b.IP), uint64(b.Port)},
			})
		}
	}
	return es
}

// LBRules is the equivalent declarative control-plane program fed to the
// incremental engine in the §2.2 comparison benchmark.
const LBRules = `
input relation Vip(id: int, vip: bit<32>)
input relation Backend(lb: int, idx: int, ip: bit<32>, port: bit<16>)
output relation LbVip(vip: bit<32>, gid: bit<16>)
output relation LbBackend(gid: bit<16>, bucket: bit<16>, ip: bit<32>, port: bit<16>)
LbVip(v, g) :- Vip(id, v), var g = (id % 65536) as bit<16>.
LbBackend(g, b, ip, p) :- Backend(lb, idx, ip, p), Vip(lb, _),
                          var g = (lb % 65536) as bit<16>,
                          var b = (idx % 65536) as bit<16>.
`
