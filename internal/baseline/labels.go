package baseline

// ComputeLabels is the full-recompute implementation of the paper's §1
// example: propagate labels from GivenLabel along Edge until fixpoint.
// This is the "tens of lines" non-incremental version a Java programmer
// would write; the incremental equivalent is the two-rule Datalog program
// (see internal/bench). Every call recomputes from scratch.
func ComputeLabels(given map[string][]string, edges [][2]string) map[string]map[string]bool {
	adj := make(map[string][]string, len(edges))
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
	}
	labels := make(map[string]map[string]bool)
	mark := func(node, label string) bool {
		m := labels[node]
		if m == nil {
			m = make(map[string]bool)
			labels[node] = m
		}
		if m[label] {
			return false
		}
		m[label] = true
		return true
	}
	// BFS per (seed, label).
	type work struct{ node, label string }
	var queue []work
	for node, ls := range given {
		for _, l := range ls {
			if mark(node, l) {
				queue = append(queue, work{node, l})
			}
		}
	}
	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		for _, next := range adj[w.node] {
			if mark(next, w.label) {
				queue = append(queue, work{next, w.label})
			}
		}
	}
	return labels
}

// CountLabels returns the total number of (node, label) pairs.
func CountLabels(labels map[string]map[string]bool) int {
	n := 0
	for _, m := range labels {
		n += len(m)
	}
	return n
}
