// Package baseline implements the conventional controllers the paper's
// evaluation compares against:
//
//   - an imperative, non-incremental snvs controller ("recompute the whole
//     network on every change and diff", the strategy §2.1 argues does not
//     scale);
//   - an imperative load-balancer controller (the §2.2 worst-case
//     comparison where automatic incrementality costs extra CPU and RAM);
//   - a full-recompute reachability labeler (§1's "tens of lines" version);
//   - an OpenFlow-fragment-style controller whose per-feature code emits
//     flow fragments scattered across tables (Fig. 3's sprawl model).
package baseline

import (
	"fmt"
	"sort"

	"repro/internal/p4"
	"repro/internal/p4rt"
)

// PortCfg mirrors one row of the snvs Port table.
type PortCfg struct {
	Name   string
	Num    uint16
	Trunk  bool
	Tag    uint16   // access VLAN
	Trunks []uint16 // trunk VLANs
}

// MirrorCfg mirrors one row of the Mirror table.
type MirrorCfg struct {
	SrcPort, DstPort uint16
}

// StaticMacCfg mirrors one row of the StaticMac table.
type StaticMacCfg struct {
	Mac  uint64
	Vlan uint16
	Port uint16
}

// AclCfg mirrors one row of the Acl table.
type AclCfg struct {
	SrcMac uint64
	Deny   bool
}

// LearnedMac is one MAC-learning event.
type LearnedMac struct {
	Mac  uint64
	Vlan uint16
	Port uint16
}

// SNVSState is the controller's full view of configuration and learned
// state.
type SNVSState struct {
	Ports        map[string]PortCfg
	Mirrors      []MirrorCfg
	StaticMacs   []StaticMacCfg
	Acls         []AclCfg
	Learned      []LearnedMac
	FloodUnknown bool
}

// NewSNVSState returns an empty state.
func NewSNVSState() *SNVSState {
	return &SNVSState{Ports: make(map[string]PortCfg)}
}

// EntrySet is a desired data-plane state: table entries keyed by identity
// plus multicast groups.
type EntrySet struct {
	Entries map[string]p4rt.TableEntry
	Mcast   map[uint16][]uint16
}

// NewEntrySet returns an empty set.
func NewEntrySet() *EntrySet {
	return &EntrySet{
		Entries: make(map[string]p4rt.TableEntry),
		Mcast:   make(map[uint16][]uint16),
	}
}

func (es *EntrySet) add(e p4rt.TableEntry) {
	es.Entries[entryID(&e)] = e
}

func entryID(e *p4rt.TableEntry) string {
	id := e.Table
	for _, m := range e.Matches {
		id += fmt.Sprintf("/%x:%x:%d:%t", m.Value, m.Mask, m.PrefixLen, m.Wildcard)
	}
	return id
}

// DesiredEntries recomputes the complete data-plane state from scratch —
// the imperative controller's strategy. The code below is what the paper
// calls the conventional approach: every feature hand-translated into
// table entries, with the full recomputation re-run on any change.
func (s *SNVSState) DesiredEntries() *EntrySet {
	es := NewEntrySet()

	// Feature: VLAN assignment + admission control.
	vlanPorts := make(map[uint16][]uint16) // vlan -> member ports
	vlanOK := make(map[[2]uint16]bool)
	for _, p := range s.Ports {
		if !p.Trunk {
			es.add(p4rt.TableEntry{
				Table:   "in_vlan",
				Matches: []p4.FieldMatch{{Value: uint64(p.Num)}},
				Action:  "set_vlan", Params: []uint64{uint64(p.Tag)},
			})
			vlanOK[[2]uint16{p.Num, p.Tag}] = true
			vlanPorts[p.Tag] = append(vlanPorts[p.Tag], p.Num)
			es.add(p4rt.TableEntry{
				Table:   "strip_tag",
				Matches: []p4.FieldMatch{{Value: uint64(p.Num)}},
				Action:  "pop_tag",
			})
		} else {
			for _, v := range p.Trunks {
				vlanOK[[2]uint16{p.Num, v}] = true
				vlanPorts[v] = append(vlanPorts[v], p.Num)
			}
			es.add(p4rt.TableEntry{
				Table:   "add_tag",
				Matches: []p4.FieldMatch{{Value: uint64(p.Num)}},
				Action:  "push_tag",
			})
		}
	}
	for pv := range vlanOK {
		es.add(p4rt.TableEntry{
			Table:   "vlan_ok",
			Matches: []p4.FieldMatch{{Value: uint64(pv[0])}, {Value: uint64(pv[1])}},
			Action:  "vlan_allow",
		})
	}

	// Feature: flooding (per-VLAN multicast groups).
	if s.FloodUnknown {
		for vlan, ports := range vlanPorts {
			group := vlan + 4096
			es.add(p4rt.TableEntry{
				Table:   "flood",
				Matches: []p4.FieldMatch{{Value: uint64(vlan)}},
				Action:  "set_mcast", Params: []uint64{uint64(group)},
			})
			sorted := append([]uint16(nil), ports...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			es.Mcast[group] = dedupPorts(sorted)
		}
	}

	// Feature: MAC learning + static MACs.
	addMac := func(vlan uint16, mac uint64, port uint16) {
		if !vlanOK[[2]uint16{port, vlan}] {
			return // stale learn for a VLAN the port no longer carries
		}
		es.add(p4rt.TableEntry{
			Table:   "dmac",
			Matches: []p4.FieldMatch{{Value: uint64(vlan)}, {Value: mac}},
			Action:  "forward", Params: []uint64{uint64(port)},
		})
		es.add(p4rt.TableEntry{
			Table:   "smac",
			Matches: []p4.FieldMatch{{Value: uint64(vlan)}, {Value: mac}},
			Action:  "known",
		})
	}
	for _, l := range s.Learned {
		addMac(l.Vlan, l.Mac, l.Port)
	}
	for _, m := range s.StaticMacs {
		es.add(p4rt.TableEntry{
			Table:   "dmac",
			Matches: []p4.FieldMatch{{Value: uint64(m.Vlan)}, {Value: m.Mac}},
			Action:  "forward", Params: []uint64{uint64(m.Port)},
		})
		es.add(p4rt.TableEntry{
			Table:   "smac",
			Matches: []p4.FieldMatch{{Value: uint64(m.Vlan)}, {Value: m.Mac}},
			Action:  "known",
		})
	}

	// Feature: ingress mirroring.
	for _, m := range s.Mirrors {
		es.add(p4rt.TableEntry{
			Table:   "mirror_ingress",
			Matches: []p4.FieldMatch{{Value: uint64(m.SrcPort)}},
			Action:  "clone_to", Params: []uint64{uint64(m.DstPort)},
		})
	}

	// Feature: source-MAC ACL.
	for _, a := range s.Acls {
		if a.Deny {
			es.add(p4rt.TableEntry{
				Table:   "acl_src",
				Matches: []p4.FieldMatch{{Value: a.SrcMac}},
				Action:  "acl_deny",
			})
		}
	}
	return es
}

func dedupPorts(sorted []uint16) []uint16 {
	out := sorted[:0]
	for i, p := range sorted {
		if i == 0 || sorted[i-1] != p {
			out = append(out, p)
		}
	}
	return out
}

// Diff computes the updates transforming the installed state old into new.
// Deletes precede inserts, matching the controller's push ordering.
func Diff(old, new *EntrySet) []p4rt.Update {
	var dels, ins []p4rt.Update
	for id, e := range old.Entries {
		if _, ok := new.Entries[id]; !ok {
			ins2 := e
			dels = append(dels, p4rt.DeleteEntry(ins2))
		}
	}
	for id, e := range new.Entries {
		oldE, ok := old.Entries[id]
		if !ok {
			ins = append(ins, p4rt.InsertEntry(e))
		} else if !entryEqual(&oldE, &e) {
			dels = append(dels, p4rt.DeleteEntry(oldE))
			ins = append(ins, p4rt.InsertEntry(e))
		}
	}
	updates := append(dels, ins...)
	groups := make(map[uint16]bool)
	for g := range old.Mcast {
		groups[g] = true
	}
	for g := range new.Mcast {
		groups[g] = true
	}
	for g := range groups {
		if !portsEqual(old.Mcast[g], new.Mcast[g]) {
			updates = append(updates, p4rt.SetMulticast(g, new.Mcast[g]))
		}
	}
	return updates
}

func entryEqual(a, b *p4rt.TableEntry) bool {
	if a.Table != b.Table || a.Action != b.Action || a.Priority != b.Priority ||
		len(a.Params) != len(b.Params) || len(a.Matches) != len(b.Matches) {
		return false
	}
	for i := range a.Params {
		if a.Params[i] != b.Params[i] {
			return false
		}
	}
	for i := range a.Matches {
		if a.Matches[i] != b.Matches[i] {
			return false
		}
	}
	return true
}

func portsEqual(a, b []uint16) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
