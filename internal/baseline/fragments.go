package baseline

import (
	_ "embed"
	"fmt"
	"sort"
	"strings"
)

// This file is the Fig. 3 growth model: an OpenFlow-style controller in
// which every network feature is implemented by imperative code that
// scatters flow-rule fragments across the pipeline's tables. The paper
// measured OVN's controller growing this way over five years; offline we
// reproduce the *mechanism* — features 1..k enabled, controller LoC and
// fragment counts measured from the real implementation below — and show
// both curves grow at a similar rate while the declarative equivalents
// stay an order of magnitude smaller.
//
// Feature implementations are delimited by "feature:<name> begin/end"
// markers; FeatureLoC counts the lines between them in this very file.

//go:embed fragments.go
var fragmentsSource string

// Flow is one OpenFlow-style flow rule fragment.
type Flow struct {
	Table    int
	Priority int
	Match    string
	Actions  string
}

// FlowState is the configuration the fragment controller compiles.
type FlowState struct {
	*SNVSState
	QosDSCP     map[uint16]uint8  // port → DSCP marking
	ArpProxy    map[uint32]uint64 // IP → MAC for proxy ARP
	RateLimited map[uint16]bool   // ports with policing
}

// NewFlowState wraps an SNVSState.
func NewFlowState(s *SNVSState) *FlowState {
	return &FlowState{
		SNVSState:   s,
		QosDSCP:     make(map[uint16]uint8),
		ArpProxy:    make(map[uint32]uint64),
		RateLimited: make(map[uint16]bool),
	}
}

// FeatureFunc compiles one feature's slice of the configuration into
// flow fragments.
type FeatureFunc func(st *FlowState, emit func(Flow))

// Feature is one entry of the catalog.
type Feature struct {
	Name        string
	Imperative  FeatureFunc
	Declarative string // equivalent rules in the Datalog dialect
}

// feature:vlan-access begin
func featVlanAccess(st *FlowState, emit func(Flow)) {
	for _, p := range st.Ports {
		if p.Trunk {
			continue
		}
		emit(Flow{Table: 0, Priority: 100,
			Match:   fmt.Sprintf("in_port=%d,vlan_tci=0", p.Num),
			Actions: fmt.Sprintf("set_field:%d->vlan_vid,resubmit(,1)", p.Tag)})
		emit(Flow{Table: 0, Priority: 90,
			Match:   fmt.Sprintf("in_port=%d", p.Num),
			Actions: "drop"})
		emit(Flow{Table: 9, Priority: 100,
			Match:   fmt.Sprintf("reg1=%d", p.Num),
			Actions: "strip_vlan,output:reg1"})
	}
}

// feature:vlan-access end

// feature:vlan-trunk begin
func featVlanTrunk(st *FlowState, emit func(Flow)) {
	for _, p := range st.Ports {
		if !p.Trunk {
			continue
		}
		for _, v := range p.Trunks {
			emit(Flow{Table: 0, Priority: 100,
				Match:   fmt.Sprintf("in_port=%d,dl_vlan=%d", p.Num, v),
				Actions: "resubmit(,1)"})
		}
		emit(Flow{Table: 0, Priority: 95,
			Match:   fmt.Sprintf("in_port=%d,vlan_tci=0", p.Num),
			Actions: "drop"})
		emit(Flow{Table: 0, Priority: 80,
			Match:   fmt.Sprintf("in_port=%d", p.Num),
			Actions: "drop"})
		emit(Flow{Table: 9, Priority: 90,
			Match:   fmt.Sprintf("reg1=%d", p.Num),
			Actions: "output:reg1"})
	}
}

// feature:vlan-trunk end

// feature:flooding begin
func featFlooding(st *FlowState, emit func(Flow)) {
	if !st.FloodUnknown {
		return
	}
	vlanPorts := make(map[uint16][]uint16)
	for _, p := range st.Ports {
		if p.Trunk {
			for _, v := range p.Trunks {
				vlanPorts[v] = append(vlanPorts[v], p.Num)
			}
		} else {
			vlanPorts[p.Tag] = append(vlanPorts[p.Tag], p.Num)
		}
	}
	for v, ports := range vlanPorts {
		sort.Slice(ports, func(i, j int) bool { return ports[i] < ports[j] })
		outs := make([]string, len(ports))
		for i, p := range ports {
			outs[i] = fmt.Sprintf("output:%d", p)
		}
		emit(Flow{Table: 3, Priority: 10,
			Match:   fmt.Sprintf("dl_vlan=%d", v),
			Actions: strings.Join(outs, ",")})
	}
}

// feature:flooding end

// feature:mac-learning begin
func featMacLearning(st *FlowState, emit func(Flow)) {
	emit(Flow{Table: 2, Priority: 1, Match: "*",
		Actions: "controller(reason=no_match),resubmit(,3)"})
	for _, l := range st.Learned {
		emit(Flow{Table: 2, Priority: 100,
			Match:   fmt.Sprintf("dl_vlan=%d,dl_src=%012x", l.Vlan, l.Mac),
			Actions: "resubmit(,3)"})
		emit(Flow{Table: 3, Priority: 100,
			Match:   fmt.Sprintf("dl_vlan=%d,dl_dst=%012x", l.Vlan, l.Mac),
			Actions: fmt.Sprintf("load:%d->reg1,resubmit(,9)", l.Port)})
	}
}

// feature:mac-learning end

// feature:static-macs begin
func featStaticMacs(st *FlowState, emit func(Flow)) {
	for _, m := range st.StaticMacs {
		emit(Flow{Table: 3, Priority: 110,
			Match:   fmt.Sprintf("dl_vlan=%d,dl_dst=%012x", m.Vlan, m.Mac),
			Actions: fmt.Sprintf("load:%d->reg1,resubmit(,9)", m.Port)})
		emit(Flow{Table: 2, Priority: 110,
			Match:   fmt.Sprintf("dl_vlan=%d,dl_src=%012x", m.Vlan, m.Mac),
			Actions: "resubmit(,3)"})
	}
}

// feature:static-macs end

// feature:mirroring begin
func featMirroring(st *FlowState, emit func(Flow)) {
	for _, m := range st.Mirrors {
		emit(Flow{Table: 0, Priority: 200,
			Match:   fmt.Sprintf("in_port=%d", m.SrcPort),
			Actions: fmt.Sprintf("clone(output:%d),resubmit(,1)", m.DstPort)})
	}
}

// feature:mirroring end

// feature:acl begin
func featAcl(st *FlowState, emit func(Flow)) {
	for _, a := range st.Acls {
		if a.Deny {
			emit(Flow{Table: 1, Priority: 100,
				Match:   fmt.Sprintf("dl_src=%012x", a.SrcMac),
				Actions: "drop"})
		}
	}
	emit(Flow{Table: 1, Priority: 1, Match: "*", Actions: "resubmit(,2)"})
}

// feature:acl end

// feature:arp-responder begin
func featArpResponder(st *FlowState, emit func(Flow)) {
	for ip, mac := range st.ArpProxy {
		emit(Flow{Table: 1, Priority: 150,
			Match: fmt.Sprintf("arp,arp_op=1,arp_tpa=%d.%d.%d.%d",
				byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip)),
			Actions: fmt.Sprintf(
				"move:arp_sha->arp_tha,set_field:%012x->arp_sha,set_field:2->arp_op,in_port", mac)})
	}
}

// feature:arp-responder end

// feature:qos-marking begin
func featQosMarking(st *FlowState, emit func(Flow)) {
	for port, dscp := range st.QosDSCP {
		emit(Flow{Table: 1, Priority: 60,
			Match:   fmt.Sprintf("in_port=%d,ip", port),
			Actions: fmt.Sprintf("set_field:%d->ip_dscp,resubmit(,2)", dscp)})
	}
}

// feature:qos-marking end

// feature:policing begin
func featPolicing(st *FlowState, emit func(Flow)) {
	meter := 1
	for port := range st.RateLimited {
		emit(Flow{Table: 0, Priority: 150,
			Match:   fmt.Sprintf("in_port=%d", port),
			Actions: fmt.Sprintf("meter:%d,resubmit(,1)", meter)})
		meter++
	}
}

// feature:policing end

// feature:lldp-trap begin
func featLldpTrap(st *FlowState, emit func(Flow)) {
	emit(Flow{Table: 0, Priority: 300,
		Match: "dl_type=0x88cc", Actions: "controller(reason=lldp)"})
}

// feature:lldp-trap end

// feature:dhcp-relay begin
func featDhcpRelay(st *FlowState, emit func(Flow)) {
	emit(Flow{Table: 1, Priority: 140,
		Match: "udp,tp_dst=67", Actions: "controller(reason=dhcp)"})
	emit(Flow{Table: 1, Priority: 140,
		Match: "udp,tp_dst=68", Actions: "controller(reason=dhcp)"})
}

// feature:dhcp-relay end

// Catalog returns the feature catalog in growth order (the order features
// were "added to the product over time").
func Catalog() []Feature {
	return []Feature{
		{"vlan-access", featVlanAccess,
			"InVlan(p, t) :- Port(_, _, p, t, \"access\").\nVlanOk(p, t) :- Port(_, _, p, t, \"access\").\nStripTag(p) :- Port(_, _, p, _, \"access\").\n"},
		{"vlan-trunk", featVlanTrunk,
			"VlanOk(p, v) :- Port(u, _, p, _, \"trunk\"), Port_Trunks(u, v).\nAddTag(p) :- Port(_, _, p, _, \"trunk\").\n"},
		{"flooding", featFlooding,
			"Flood(v, g) :- VlanOk(_, v), SwitchCfg(_, true, _), var g = vgroup(v).\nMulticastGroup(g, p) :- VlanOk(p, v), var g = vgroup(v).\n"},
		{"mac-learning", featMacLearning,
			"Dmac(v, m, p) :- Learn(m, v, p), VlanOk(p, v).\nSmac(v, m) :- Learn(m, v, p), VlanOk(p, v).\n"},
		{"static-macs", featStaticMacs,
			"Dmac(v, m, p) :- StaticMac(_, m, p, v).\nSmac(v, m) :- StaticMac(_, m, _, v).\n"},
		{"mirroring", featMirroring,
			"MirrorIngress(sp, dp) :- Mirror(_, dp, sp).\n"},
		{"acl", featAcl,
			"AclSrc(m) :- Acl(_, true, m).\n"},
		{"arp-responder", featArpResponder,
			"ArpReply(ip, mac) :- ArpProxy(_, ip, mac).\n"},
		{"qos-marking", featQosMarking,
			"QosMark(p, d) :- Qos(_, d, p).\n"},
		{"policing", featPolicing,
			"Police(p, meter) :- RateLimit(_, meter, p).\n"},
		{"lldp-trap", featLldpTrap,
			"LldpTrap(true).\n"},
		{"dhcp-relay", featDhcpRelay,
			"DhcpTrap(67).\nDhcpTrap(68).\n"},
	}
}

// FragmentController compiles configuration into flows using the first n
// features of the catalog.
type FragmentController struct {
	features []Feature
}

// NewFragmentController enables the first n catalog features (n <= 0
// enables all).
func NewFragmentController(n int) *FragmentController {
	cat := Catalog()
	if n <= 0 || n > len(cat) {
		n = len(cat)
	}
	return &FragmentController{features: cat[:n]}
}

// Flows compiles the state into the full flow table (non-incremental).
func (fc *FragmentController) Flows(st *FlowState) []Flow {
	var out []Flow
	for _, f := range fc.features {
		f.Imperative(st, func(fl Flow) { out = append(out, fl) })
	}
	return out
}

// FragmentSites counts the distinct flow-emission templates of the first
// n features: the static "emit(Flow{" sites scattered through the
// implementation, the quantity Fig. 3 tracks.
func FragmentSites(n int) int {
	cat := Catalog()
	if n <= 0 || n > len(cat) {
		n = len(cat)
	}
	total := 0
	for _, f := range cat[:n] {
		total += strings.Count(featureSource(f.Name), "emit(Flow{")
	}
	return total
}

// FeatureLoC measures the real source lines of the first n feature
// implementations in this file.
func FeatureLoC(n int) int {
	cat := Catalog()
	if n <= 0 || n > len(cat) {
		n = len(cat)
	}
	total := 0
	for _, f := range cat[:n] {
		total += countLines(featureSource(f.Name))
	}
	return total
}

// DeclarativeLoC measures the rule lines of the first n features'
// declarative equivalents.
func DeclarativeLoC(n int) int {
	cat := Catalog()
	if n <= 0 || n > len(cat) {
		n = len(cat)
	}
	total := 0
	for _, f := range cat[:n] {
		total += countLines(f.Declarative)
	}
	return total
}

// featureSource extracts a feature's implementation between its markers.
func featureSource(name string) string {
	begin := "// feature:" + name + " begin"
	end := "// feature:" + name + " end"
	i := strings.Index(fragmentsSource, begin)
	j := strings.Index(fragmentsSource, end)
	if i < 0 || j < 0 || j < i {
		return ""
	}
	return fragmentsSource[i+len(begin) : j]
}

func countLines(s string) int {
	n := 0
	for _, line := range strings.Split(s, "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}
