package baseline

import (
	"testing"

	"repro/internal/p4rt"
)

func sampleState() *SNVSState {
	s := NewSNVSState()
	s.FloodUnknown = true
	s.Ports["p1"] = PortCfg{Name: "p1", Num: 1, Tag: 10}
	s.Ports["p2"] = PortCfg{Name: "p2", Num: 2, Tag: 10}
	s.Ports["p3"] = PortCfg{Name: "p3", Num: 3, Trunk: true, Trunks: []uint16{10, 20}}
	s.Learned = []LearnedMac{{Mac: 0xaa01, Vlan: 10, Port: 1}}
	s.StaticMacs = []StaticMacCfg{{Mac: 0xcc04, Vlan: 10, Port: 2}}
	s.Mirrors = []MirrorCfg{{SrcPort: 1, DstPort: 4}}
	s.Acls = []AclCfg{{SrcMac: 0xdead, Deny: true}}
	return s
}

func countTable(es *EntrySet, table string) int {
	n := 0
	for _, e := range es.Entries {
		if e.Table == table {
			n++
		}
	}
	return n
}

func TestDesiredEntriesShape(t *testing.T) {
	es := sampleState().DesiredEntries()
	want := map[string]int{
		"in_vlan":        2, // two access ports
		"vlan_ok":        4, // (1,10) (2,10) (3,10) (3,20)
		"flood":          2, // vlans 10, 20
		"dmac":           2, // learned + static
		"smac":           2,
		"mirror_ingress": 1,
		"acl_src":        1,
		"strip_tag":      2,
		"add_tag":        1,
	}
	for table, n := range want {
		if got := countTable(es, table); got != n {
			t.Errorf("table %s: %d entries, want %d", table, got, n)
		}
	}
	if len(es.Mcast[4096+10]) != 3 || len(es.Mcast[4096+20]) != 1 {
		t.Errorf("mcast groups = %v", es.Mcast)
	}
}

func TestDesiredMatchesIncrementalSemantics(t *testing.T) {
	// A stale learn (VLAN the port no longer carries) is excluded, just as
	// the Datalog join with VlanOk excludes it.
	s := sampleState()
	s.Learned = append(s.Learned, LearnedMac{Mac: 0xbb, Vlan: 30, Port: 1})
	es := s.DesiredEntries()
	if got := countTable(es, "dmac"); got != 2 {
		t.Errorf("stale learn not filtered: dmac = %d", got)
	}
}

func TestDiff(t *testing.T) {
	s := sampleState()
	before := s.DesiredEntries()
	// No change: empty diff.
	if ups := Diff(before, s.DesiredEntries()); len(ups) != 0 {
		t.Fatalf("idempotent diff has %d updates", len(ups))
	}
	// Remove a port: entries retract.
	delete(s.Ports, "p2")
	after := s.DesiredEntries()
	ups := Diff(before, after)
	if len(ups) == 0 {
		t.Fatalf("port removal produced no updates")
	}
	dels, ins := 0, 0
	for _, u := range ups {
		if u.Entry != nil {
			if u.Type == p4rt.UpdateDelete {
				dels++
			} else {
				ins++
			}
		}
	}
	// p2's in_vlan, vlan_ok, strip_tag, and the static mac (port 2 left
	// VLAN 10? no - static stays since vlan_ok(2,10) vanished).
	if dels == 0 {
		t.Fatalf("no deletions in diff: %+v", ups)
	}
	if ins != 0 {
		t.Fatalf("unexpected insertions: %d", ins)
	}
	// Applying the diff to 'before' must yield 'after'.
	applied := NewEntrySet()
	for id, e := range before.Entries {
		applied.Entries[id] = e
	}
	for _, u := range ups {
		if u.Entry == nil {
			continue
		}
		if u.Type == p4rt.UpdateDelete {
			delete(applied.Entries, entryID(u.Entry))
		} else {
			applied.Entries[entryID(u.Entry)] = *u.Entry
		}
	}
	if len(applied.Entries) != len(after.Entries) {
		t.Fatalf("diff application: %d entries, want %d", len(applied.Entries), len(after.Entries))
	}
}

func TestComputeLabels(t *testing.T) {
	labels := ComputeLabels(
		map[string][]string{"a": {"L"}},
		[][2]string{{"a", "b"}, {"b", "c"}, {"c", "a"}, {"x", "y"}},
	)
	for _, n := range []string{"a", "b", "c"} {
		if !labels[n]["L"] {
			t.Errorf("node %s missing label", n)
		}
	}
	if labels["x"] != nil || labels["y"] != nil {
		t.Errorf("unreachable nodes labeled")
	}
	if CountLabels(labels) != 3 {
		t.Errorf("CountLabels = %d", CountLabels(labels))
	}
}

func TestLBEntries(t *testing.T) {
	lbs := []LB{
		{ID: 1, VIP: 0x0a000001, Backends: []LBBackend{{IP: 1, Port: 80}, {IP: 2, Port: 80}}},
		{ID: 2, VIP: 0x0a000002, Backends: []LBBackend{{IP: 3, Port: 443}}},
	}
	es := LBEntries(lbs)
	if countTable(es, "lb_vip") != 2 || countTable(es, "lb_backend") != 3 {
		t.Fatalf("lb entries: vip=%d backend=%d",
			countTable(es, "lb_vip"), countTable(es, "lb_backend"))
	}
}

func TestFragmentControllerGrowth(t *testing.T) {
	st := NewFlowState(sampleState())
	st.ArpProxy[0x0a000001] = 0xaa
	st.QosDSCP[1] = 46
	st.RateLimited[2] = true

	prevFlows, prevSites, prevLoC := 0, 0, 0
	for n := 1; n <= len(Catalog()); n++ {
		fc := NewFragmentController(n)
		flows := len(fc.Flows(st))
		sites := FragmentSites(n)
		loc := FeatureLoC(n)
		if flows < prevFlows || sites <= prevSites-1 || loc <= prevLoC {
			t.Fatalf("growth not monotone at n=%d: flows=%d sites=%d loc=%d", n, flows, sites, loc)
		}
		prevFlows, prevSites, prevLoC = flows, sites, loc
	}
	// Fig 3's claim: fragments scatter through a large imperative
	// codebase; the declarative equivalent is much smaller.
	n := len(Catalog())
	if FeatureLoC(n) < 5*DeclarativeLoC(n) {
		t.Errorf("imperative LoC %d not >> declarative LoC %d",
			FeatureLoC(n), DeclarativeLoC(n))
	}
	if FragmentSites(n) < 15 {
		t.Errorf("fragment sites = %d, expected a substantial count", FragmentSites(n))
	}
}

func TestFeatureSourceMarkers(t *testing.T) {
	for _, f := range Catalog() {
		if featureSource(f.Name) == "" {
			t.Errorf("feature %s has no source markers", f.Name)
		}
	}
}
