package baseline

import (
	_ "embed"
	"strings"
)

// Embedded sources let the evaluation measure the real size of the
// baseline implementations (§4.3's lines-of-code comparison).

//go:embed labels.go
var labelsSource string

//go:embed snvs.go
var snvsSource string

//go:embed lb.go
var lbSource string

// LabelsLoC is the measured size of the full-recompute labeling code.
func LabelsLoC() int { return codeLines(extractFunc(labelsSource, "func ComputeLabels")) }

// SNVSImperativeLoC is the measured size of the imperative snvs
// controller (state types + full recomputation + diff).
func SNVSImperativeLoC() int { return codeLines(snvsSource) }

// LBImperativeLoC is the measured size of the imperative load-balancer
// translation.
func LBImperativeLoC() int { return codeLines(extractFunc(lbSource, "func LBEntries")) }

// extractFunc returns the source of one top-level function (from its
// signature to the closing brace at column zero).
func extractFunc(src, sig string) string {
	i := strings.Index(src, sig)
	if i < 0 {
		return ""
	}
	j := strings.Index(src[i:], "\n}")
	if j < 0 {
		return src[i:]
	}
	return src[i : i+j+2]
}

// codeLines counts non-blank, non-comment-only lines.
func codeLines(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "//") {
			continue
		}
		n++
	}
	return n
}
