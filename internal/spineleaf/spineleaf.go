// Package spineleaf is the paper's §4.1 generalization made concrete:
// one controller managing two *classes* of devices, each running its own
// P4 program — leaf switches (hosts attach here) and a spine
// interconnecting them. Leaf relations are per-device, so the rules
// compute different forwarding entries for each leaf switch from the
// shared management-plane tables.
package spineleaf

import (
	"repro/internal/ovsdb"
	"repro/internal/p4"
)

// UplinkPort is the leaf port wired to the spine on every leaf.
const UplinkPort = 10

// FloodGroup is the multicast group used for unknown destinations.
const FloodGroup = 1

// SchemaJSON is the management-plane schema: hosts and leaves.
const SchemaJSON = `{
  "name": "spineleaf",
  "version": "1.0.0",
  "tables": {
    "Host": {
      "columns": {
        "mac": {"type": "integer"},
        "leaf": {"type": "string"},
        "port": {"type": "integer"}
      },
      "indexes": [["mac"]],
      "isRoot": true
    },
    "Leaf": {
      "columns": {
        "name": {"type": "string"},
        "spine_port": {"type": "integer"}
      },
      "indexes": [["name"]],
      "isRoot": true
    }
  }
}`

// Schema parses the management-plane schema.
func Schema() (*ovsdb.DatabaseSchema, error) {
	return ovsdb.ParseSchema([]byte(SchemaJSON))
}

// LeafP4 is the leaf switches' data plane.
const LeafP4 = `
// leaf.p4 — forward known MACs, flood unknowns to the VLAN-less fabric.
header ethernet { bit<48> dst; bit<48> src; bit<16> etype; }
parser { state start { extract(ethernet); transition accept; } }
control Ingress {
    action forward(bit<16> port) { output(port); }
    action flood() { multicast(1); }
    table dmac {
        key = { ethernet.dst: exact; }
        actions = { forward; }
        default_action = flood;
    }
    apply { dmac.apply(); }
}
deparser { emit(ethernet); }
`

// SpineP4 is the spine's data plane: a different program (different table
// and action names) for a different device class.
const SpineP4 = `
// spine.p4 — steer toward the destination's leaf, flood unknowns.
header ethernet { bit<48> dst; bit<48> src; bit<16> etype; }
parser { state start { extract(ethernet); transition accept; } }
control Ingress {
    action steer(bit<16> port) { output(port); }
    action flood_fabric() { multicast(1); }
    table fwd {
        key = { ethernet.dst: exact; }
        actions = { steer; }
        default_action = flood_fabric;
    }
    apply { fwd.apply(); }
}
deparser { emit(ethernet); }
`

// LeafPipeline parses the leaf program.
func LeafPipeline() *p4.Program {
	prog, err := p4.ParseProgram("leaf", LeafP4)
	if err != nil {
		panic(err)
	}
	return prog
}

// SpinePipeline parses the spine program.
func SpinePipeline() *p4.Program {
	prog, err := p4.ParseProgram("spine", SpineP4)
	if err != nil {
		panic(err)
	}
	return prog
}

// Rules is the control plane spanning both classes. Relation names carry
// the class prefix; leaf relations carry a leading device column.
const Rules = `
// A host's own leaf forwards its MAC to the host port; every other leaf
// forwards it to the uplink.
LeafDmac(l, m as bit<48>, p as bit<16>) :- Host(_, l, m, p).
LeafDmac(l2, m as bit<48>, 10) :- Host(_, l, m, _), Leaf(_, l2, _), l2 != l.

// The spine steers each MAC toward its leaf's spine port.
SpineFwd(m as bit<48>, sp as bit<16>) :- Host(_, l, m, _), Leaf(_, l, sp).

// Flooding: each leaf floods to its local host ports plus the uplink; the
// spine floods to every leaf.
LeafMulticastGroup(l, 1, p as bit<16>) :- Host(_, l, _, p).
LeafMulticastGroup(l, 1, 10) :- Leaf(_, l, _).
SpineMulticastGroup(1, sp as bit<16>) :- Leaf(_, _, sp).
`
