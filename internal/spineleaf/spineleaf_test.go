package spineleaf

import (
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ovsdb"
	"repro/internal/p4"
	"repro/internal/p4rt"
	"repro/internal/packet"
	"repro/internal/switchsim"
)

func TestPipelinesParse(t *testing.T) {
	if err := LeafPipeline().Validate(); err != nil {
		t.Fatalf("leaf: %v", err)
	}
	if err := SpinePipeline().Validate(); err != nil {
		t.Fatalf("spine: %v", err)
	}
	if LeafPipeline().Name == SpinePipeline().Name {
		t.Fatalf("classes must run distinct programs")
	}
}

// topo is a 2-leaf, 1-spine deployment over real TCP with attached hosts.
type topo struct {
	t      *testing.T
	db     *ovsdb.Client
	leaf1  *switchsim.Switch
	leaf2  *switchsim.Switch
	spine  *switchsim.Switch
	ctrl   *core.Controller
	h1, h2 *switchsim.Host
}

func startTopo(t *testing.T) *topo {
	t.Helper()
	schema, err := Schema()
	if err != nil {
		t.Fatal(err)
	}
	db := ovsdb.NewDatabase(schema)
	srv := ovsdb.NewServer(db)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(srv.Close)

	mkSwitch := func(name string, prog *p4.Program) (*switchsim.Switch, *p4rt.Client) {
		sw, err := switchsim.New(name, switchsim.Config{Program: prog})
		if err != nil {
			t.Fatal(err)
		}
		swLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go sw.Serve(swLn)
		t.Cleanup(sw.Close)
		client, err := p4rt.Dial(swLn.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { client.Close() })
		return sw, client
	}
	leaf1, c1 := mkSwitch("leaf1", LeafPipeline())
	leaf2, c2 := mkSwitch("leaf2", LeafPipeline())
	spine, cs := mkSwitch("spine", SpinePipeline())

	fabric := switchsim.NewFabric()
	for _, sw := range []*switchsim.Switch{leaf1, leaf2, spine} {
		if err := fabric.AddSwitch(sw); err != nil {
			t.Fatal(err)
		}
	}
	h1, err := fabric.AttachHost("h1", "leaf1", 1)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := fabric.AttachHost("h2", "leaf2", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := fabric.LinkSwitches("leaf1", UplinkPort, "spine", 1); err != nil {
		t.Fatal(err)
	}
	if err := fabric.LinkSwitches("leaf2", UplinkPort, "spine", 2); err != nil {
		t.Fatal(err)
	}

	dbc, err := ovsdb.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dbc.Close() })
	ctrl, err := core.NewWithClasses(core.Config{
		Rules:    Rules,
		Database: "spineleaf",
	}, dbc, []core.DeviceClass{
		{Name: "Leaf", PerDevice: true, Devices: []core.Device{
			{ID: "leaf1", DP: c1}, {ID: "leaf2", DP: c2},
		}},
		{Name: "Spine", Devices: []core.Device{{ID: "spine", DP: cs}}},
	})
	if err != nil {
		t.Fatalf("NewWithClasses: %v", err)
	}
	t.Cleanup(ctrl.Stop)
	return &topo{t: t, db: dbc, leaf1: leaf1, leaf2: leaf2, spine: spine,
		ctrl: ctrl, h1: h1, h2: h2}
}

func (tp *topo) transact(ops ...ovsdb.Operation) {
	tp.t.Helper()
	if _, err := tp.db.TransactErr("spineleaf", ops...); err != nil {
		tp.t.Fatal(err)
	}
}

func (tp *topo) waitEntries(sw *switchsim.Switch, table string, want int) {
	tp.t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for sw.Runtime().EntryCount(table) != want {
		if err := tp.ctrl.Err(); err != nil {
			tp.t.Fatalf("controller: %v", err)
		}
		if time.Now().After(deadline) {
			tp.t.Fatalf("%s.%s has %d entries, want %d",
				sw.Name(), table, sw.Runtime().EntryCount(table), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func frame(dst, src packet.MAC) []byte {
	e := packet.Ethernet{Dst: dst, Src: src, EtherType: 0x1234}
	return append(e.Append(nil), 0xca, 0xfe)
}

func TestSpineLeafForwarding(t *testing.T) {
	tp := startTopo(t)
	tp.transact(
		ovsdb.OpInsert("Leaf", map[string]ovsdb.Value{"name": "leaf1", "spine_port": int64(1)}),
		ovsdb.OpInsert("Leaf", map[string]ovsdb.Value{"name": "leaf2", "spine_port": int64(2)}),
		ovsdb.OpInsert("Host", map[string]ovsdb.Value{"mac": int64(0xaa01), "leaf": "leaf1", "port": int64(1)}),
		ovsdb.OpInsert("Host", map[string]ovsdb.Value{"mac": int64(0xaa02), "leaf": "leaf2", "port": int64(1)}),
	)
	// Each leaf gets 2 dmac entries (its local host + the remote via
	// uplink); the spine steers both MACs.
	tp.waitEntries(tp.leaf1, "dmac", 2)
	tp.waitEntries(tp.leaf2, "dmac", 2)
	tp.waitEntries(tp.spine, "fwd", 2)

	// Per-device divergence: leaf1 sends 0xaa01 to a host port, leaf2
	// sends it to the uplink.
	find := func(sw *switchsim.Switch, mac uint64) uint64 {
		entries, err := sw.Runtime().Entries("dmac")
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.Matches[0].Value == mac {
				return e.Params[0]
			}
		}
		t.Fatalf("%s: no dmac entry for %x", sw.Name(), mac)
		return 0
	}
	if p := find(tp.leaf1, 0xaa01); p != 1 {
		t.Errorf("leaf1 sends aa01 to port %d, want 1 (local)", p)
	}
	if p := find(tp.leaf2, 0xaa01); p != UplinkPort {
		t.Errorf("leaf2 sends aa01 to port %d, want uplink %d", p, UplinkPort)
	}

	// End-to-end unicast across the fabric: h1 -> h2 crosses leaf1, the
	// spine, and leaf2.
	if err := tp.h1.Send(frame(0xaa02, 0xaa01)); err != nil {
		t.Fatal(err)
	}
	if tp.h2.ReceivedCount() != 1 {
		t.Fatalf("h2 received %d frames", tp.h2.ReceivedCount())
	}
	tp.h2.Received()

	// Unknown destination floods across the whole fabric exactly once.
	if err := tp.h1.Send(frame(0xdddd, 0xaa01)); err != nil {
		t.Fatal(err)
	}
	if tp.h2.ReceivedCount() != 1 {
		t.Fatalf("flooded frame count at h2 = %d", tp.h2.ReceivedCount())
	}
	tp.h2.Received()

	// Removing a host retracts its entries everywhere.
	tp.transact(ovsdb.OpDelete("Host", ovsdb.Cond("mac", "==", int64(0xaa02))))
	tp.waitEntries(tp.leaf1, "dmac", 1)
	tp.waitEntries(tp.leaf2, "dmac", 1)
	tp.waitEntries(tp.spine, "fwd", 1)
	if err := tp.ctrl.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestClassValidation(t *testing.T) {
	schema, err := Schema()
	if err != nil {
		t.Fatal(err)
	}
	_ = schema
	// Unknown device targeted by rules surfaces as a push error.
	// (Covered implicitly: startTopo uses ids matching the Leaf table; a
	// mismatch is exercised here.)
	tp := startTopo(t)
	tp.transact(
		ovsdb.OpInsert("Leaf", map[string]ovsdb.Value{"name": "leaf9", "spine_port": int64(7)}),
		ovsdb.OpInsert("Host", map[string]ovsdb.Value{"mac": int64(0xbb), "leaf": "leaf9", "port": int64(1)}),
	)
	deadline := time.Now().Add(5 * time.Second)
	for tp.ctrl.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatalf("rules targeting unknown device did not surface an error")
		}
		time.Sleep(time.Millisecond)
	}
}
