package p4rt

import (
	"errors"
	"io"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/obs"
	"repro/internal/p4"
)

func dialResilientT(t *testing.T, addr string, o *obs.Observer) (*ResilientClient, *faultnet.Dialer) {
	t.Helper()
	d := faultnet.NewDialer()
	r, err := DialResilient(ResilientConfig{
		Addr:       addr,
		Dial:       func(a string) (io.ReadWriteCloser, error) { return d.Dial(a) },
		BackoffMin: 2 * time.Millisecond,
		BackoffMax: 20 * time.Millisecond,
		Obs:        o,
		Target:     "sw0",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r, d
}

func waitP4Connected(t *testing.T, r *ResilientClient) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !r.Connected() {
		if time.Now().After(deadline) {
			t.Fatalf("client never reconnected")
		}
		time.Sleep(time.Millisecond)
	}
}

// waitP4Disconnected blocks until the supervisor has noticed the drop
// (Connected flips false), so a following waitP4Connected observes the
// NEXT session rather than the dying one.
func waitP4Disconnected(t *testing.T, r *ResilientClient) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for r.Connected() {
		if time.Now().After(deadline) {
			t.Fatalf("drop never noticed")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestResilientReconnectRunsHookAndHeals(t *testing.T) {
	dev := &fakeDevice{info: &p4.P4Info{Program: "fake"}}
	srv, addr := startServer(t, dev)
	_ = srv
	o := obs.NewObserver()
	r, d := dialResilientT(t, addr, o)

	var hookRuns atomic.Int64
	r.OnReconnect(func(c *Client) error {
		// The hook sees a usable client: reconciliation reads device state.
		if _, err := c.ReadTable("t"); err != nil {
			return err
		}
		hookRuns.Add(1)
		return nil
	})
	if err := r.Write(InsertEntry(TableEntry{Table: "t", Action: "a"})); err != nil {
		t.Fatalf("write: %v", err)
	}

	d.KillAll()
	// Writes during the outage report ErrUnavailable, not a fatal error.
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := r.Write(InsertEntry(TableEntry{Table: "t", Action: "b"}))
		if err == nil {
			break // healed
		}
		if !errors.Is(err, ErrUnavailable) {
			t.Fatalf("write during outage = %v, want ErrUnavailable", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("never healed")
		}
		time.Sleep(time.Millisecond)
	}
	if hookRuns.Load() < 1 {
		t.Fatalf("OnReconnect hook never ran")
	}
	if reasons := o.DegradedReasons(); len(reasons) != 0 {
		t.Fatalf("still degraded after heal: %v", reasons)
	}
	var snap strings.Builder
	o.Reg().WritePrometheus(&snap)
	if !strings.Contains(snap.String(), `p4rt_reconnects_total{target="sw0"} 1`) {
		t.Fatalf("reconnect counter missing:\n%s", snap.String())
	}
	select {
	case <-r.Done():
		t.Fatalf("resilient client died on a transient drop")
	default:
	}
}

func TestResilientHookFailureRetries(t *testing.T) {
	dev := &fakeDevice{info: &p4.P4Info{Program: "fake"}}
	_, addr := startServer(t, dev)
	r, d := dialResilientT(t, addr, nil)

	var calls atomic.Int64
	r.OnReconnect(func(c *Client) error {
		if calls.Add(1) < 3 {
			return errors.New("reconciliation failed; retry")
		}
		return nil
	})
	d.KillAll()
	waitP4Disconnected(t, r)
	waitP4Connected(t, r)
	if n := calls.Load(); n != 3 {
		t.Fatalf("hook ran %d times, want 3 (failures must retry the redial)", n)
	}
}

func TestResilientReArmsDigestHandler(t *testing.T) {
	dev := &fakeDevice{info: &p4.P4Info{Program: "fake"}}
	srv, addr := startServer(t, dev)
	r, d := dialResilientT(t, addr, nil)

	var mu sync.Mutex
	var got []uint64
	r.OnDigest(func(dl DigestList) {
		mu.Lock()
		got = append(got, dl.ListID)
		mu.Unlock()
	})
	d.KillAll()
	waitP4Disconnected(t, r)
	waitP4Connected(t, r)
	// Give the server a beat to register the fresh connection's stream.
	time.Sleep(5 * time.Millisecond)
	srv.NotifyDigest(DigestList{Digest: "mac", ListID: 42})
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("digest handler not re-armed after reconnect")
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if got[0] != 42 {
		t.Fatalf("digest list id = %d, want 42", got[0])
	}
}

// TestDigestAckFailureSurfaced is the regression test for the silently
// ignored digest-ack Notify error: when the connection dies before the
// auto-ack goes out, the failure must land in the write-error counter and
// the flight recorder instead of vanishing.
func TestDigestAckFailureSurfaced(t *testing.T) {
	dev := &fakeDevice{info: &p4.P4Info{Program: "fake"}}
	srv, addr := startServer(t, dev)
	o := obs.NewObserver()
	c := dialT(t, addr)
	c.SetObs(o, "sw0")

	acked := make(chan struct{})
	c.OnDigest(func(dl DigestList) {
		// Kill the connection from inside the handler: the auto-ack that
		// follows must fail to send.
		c.Close()
		close(acked)
	})
	srv.NotifyDigest(DigestList{Digest: "mac", ListID: 7})
	select {
	case <-acked:
	case <-time.After(5 * time.Second):
		t.Fatalf("digest never delivered")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		var snap strings.Builder
		o.Reg().WritePrometheus(&snap)
		if strings.Contains(snap.String(), `p4rt_write_errors_total{target="sw0"} 1`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ack failure not counted:\n%s", snap.String())
		}
		time.Sleep(time.Millisecond)
	}
	var events strings.Builder
	o.Rec().WriteNDJSON(&events, obs.EventFilter{Plane: "p4rt", Kind: "digest.ack_failed"})
	if !strings.Contains(events.String(), "digest.ack_failed") {
		t.Fatalf("digest.ack_failed event missing:\n%s", events.String())
	}
}

func TestResilientGoroutinesTerminateOnClose(t *testing.T) {
	dev := &fakeDevice{info: &p4.P4Info{Program: "fake"}}
	_, addr := startServer(t, dev)
	time.Sleep(5 * time.Millisecond)
	base := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		d := faultnet.NewDialer()
		r, err := DialResilient(ResilientConfig{
			Addr:       addr,
			Dial:       func(a string) (io.ReadWriteCloser, error) { return d.Dial(a) },
			BackoffMin: 2 * time.Millisecond,
			BackoffMax: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		d.KillAll()
		waitP4Disconnected(t, r)
		waitP4Connected(t, r) // exercise the redial loop before closing
		r.Close()
		select {
		case <-r.Done():
		case <-time.After(time.Second):
			t.Fatalf("Done not closed after Close")
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d (base %d)\n%s", runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
