// Package p4rt implements a P4Runtime-style control API for programmable
// data planes: pipeline introspection (P4Info), table entry Write/Read,
// multicast group programming, and a bidirectional stream carrying digests
// (data plane → controller, with acknowledgements) and packet-out
// (controller → data plane).
//
// The original P4Runtime runs over gRPC; here the same message surface
// runs over the repository's JSON-RPC transport (the RPC substrate is not
// load-bearing for any of the paper's claims).
package p4rt

import (
	"repro/internal/p4"
)

// TableEntry is the wire form of one table entry.
type TableEntry struct {
	Table    string          `json:"table"`
	Matches  []p4.FieldMatch `json:"matches"`
	Priority int             `json:"priority,omitempty"`
	Action   string          `json:"action"`
	Params   []uint64        `json:"params,omitempty"`
}

// MulticastGroup is the wire form of a multicast group entry.
type MulticastGroup struct {
	Group uint16   `json:"group"`
	Ports []uint16 `json:"ports"`
}

// Update types.
const (
	UpdateInsert = "insert"
	UpdateModify = "modify"
	UpdateDelete = "delete"
)

// Update is one element of a Write request.
type Update struct {
	Type      string          `json:"type"`
	Entry     *TableEntry     `json:"entry,omitempty"`
	Multicast *MulticastGroup `json:"multicast,omitempty"`
}

// InsertEntry builds an insert update for a table entry.
func InsertEntry(e TableEntry) Update { return Update{Type: UpdateInsert, Entry: &e} }

// ModifyEntry builds a modify update for a table entry.
func ModifyEntry(e TableEntry) Update { return Update{Type: UpdateModify, Entry: &e} }

// DeleteEntry builds a delete update for a table entry.
func DeleteEntry(e TableEntry) Update { return Update{Type: UpdateDelete, Entry: &e} }

// SetMulticast builds an update installing a multicast group (empty ports
// deletes the group).
func SetMulticast(group uint16, ports []uint16) Update {
	return Update{Type: UpdateInsert, Multicast: &MulticastGroup{Group: group, Ports: ports}}
}

// DigestList is a batch of digest messages streamed to the controller.
type DigestList struct {
	Digest   string     `json:"digest"`
	ListID   uint64     `json:"list_id"`
	Messages [][]uint64 `json:"messages"`
	// Txn is the last management-plane transaction the switch had applied
	// when the digest was emitted (0 = unknown / none yet). It attributes
	// data-plane learning to the configuration generation it ran under.
	// Optional on the wire: decoders that predate it ignore the field.
	Txn uint64 `json:"txn,omitempty"`
}

// WriteRequest is the extended wire form of the write RPC, carrying the
// originating management-plane transaction alongside the updates. The
// legacy form is a bare JSON array of updates; servers accept both (the
// same backward-compatibility trick as the optional third element of the
// OVSDB update notification), and clients only emit the extended form
// when they have a transaction to attach.
type WriteRequest struct {
	Txn     uint64   `json:"txn,omitempty"`
	Updates []Update `json:"updates"`
}

// TxnDevice is optionally implemented by devices that can attribute a
// write to its originating management-plane transaction (switchsim does:
// it stamps write.apply events and records the switch-applied trace
// stage). Servers fall back to Device.Write when it is absent or when
// the write carries no transaction.
type TxnDevice interface {
	WriteTxn(txn uint64, updates []Update) error
}

// PacketIn is a data-plane-to-controller packet notification.
type PacketIn struct {
	Port uint16 `json:"port"`
	Data []byte `json:"data"`
}

// PacketOut is a controller-to-data-plane packet injection.
type PacketOut struct {
	Port uint16 `json:"port"`
	Data []byte `json:"data"`
}

// CounterReader is optionally implemented by devices exposing per-table
// hit/miss counters (P4Runtime direct counters).
type CounterReader interface {
	Counters(table string) (p4.TableCounters, bool)
}

// Device is the data plane a Server exposes. switchsim.Switch implements
// it.
type Device interface {
	// P4Info describes the running pipeline.
	P4Info() *p4.P4Info
	// Write applies updates atomically: either all succeed or none are
	// applied.
	Write(updates []Update) error
	// ReadTable snapshots a table's entries.
	ReadTable(table string) ([]TableEntry, error)
	// PacketOut injects a packet into the pipeline's egress on a port.
	PacketOut(port uint16, data []byte) error
	// AckDigest acknowledges receipt of a digest list.
	AckDigest(listID uint64)
}
