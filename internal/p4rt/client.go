package p4rt

import (
	"encoding/json"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/jsonrpc"
	"repro/internal/obs"
	"repro/internal/p4"
)

// Client is the controller side of the p4rt protocol.
type Client struct {
	conn *jsonrpc.Conn

	mu         sync.Mutex
	onDigest   func(DigestList)
	onPacketIn func(PacketIn)
	autoAck    bool

	// Write-path instruments (nil-safe; zero overhead when unset).
	mWriteSecs    *obs.Histogram
	mWrites       *obs.Counter
	mWriteErrors  *obs.Counter
	mInflight     *obs.Gauge
	mWriteUpdates *obs.Histogram
	rec           *obs.Recorder
	target        string
	obsOn         bool
}

// Dial connects to a p4rt server over TCP.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(nc), nil
}

// NewClient wraps an established byte stream.
func NewClient(rwc io.ReadWriteCloser) *Client {
	c := &Client{autoAck: true}
	c.conn = jsonrpc.NewConn(rwc, jsonrpc.HandlerFunc(c.handle))
	return c
}

// Close tears down the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Done is closed when the connection fails or is closed.
func (c *Client) Done() <-chan struct{} { return c.conn.Done() }

// OnDigest installs the digest stream handler. Unless auto-acking is
// disabled, each list is acknowledged after the handler returns.
func (c *Client) OnDigest(f func(DigestList)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onDigest = f
}

// OnPacketIn installs the packet-in handler.
func (c *Client) OnPacketIn(f func(PacketIn)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onPacketIn = f
}

// SetAutoAck controls automatic digest acknowledgement (default on).
func (c *Client) SetAutoAck(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.autoAck = on
}

func (c *Client) handle(_ *jsonrpc.Conn, method string, params json.RawMessage) (any, *jsonrpc.RPCError) {
	switch method {
	case "echo":
		// Answer server-side keepalive probes.
		var v any
		_ = json.Unmarshal(params, &v)
		if v == nil {
			v = []any{}
		}
		return v, nil
	case "digest":
		var dl DigestList
		if err := json.Unmarshal(params, &dl); err != nil {
			return nil, &jsonrpc.RPCError{Code: "bad params", Details: err.Error()}
		}
		c.mu.Lock()
		handler := c.onDigest
		ack := c.autoAck
		c.mu.Unlock()
		c.rec.Append(obs.Ev("p4rt", "digest.recv").WithTxn(dl.Txn).WithDevice(c.target).
			F("list_id", int64(dl.ListID)).
			F("messages", int64(len(dl.Messages))))
		if handler != nil {
			handler(dl)
		}
		if ack {
			if err := c.conn.Notify("digest_ack", dl.ListID); err != nil {
				// A lost ack means the switch will retransmit the digest
				// list; surface the failed write instead of dropping it on
				// the floor so operators can see acks going missing.
				c.mWriteErrors.Inc()
				c.rec.Append(obs.Ev("p4rt", "digest.ack_failed").WithDevice(c.target).
					F("list_id", int64(dl.ListID)))
			}
		}
		return nil, nil
	case "packet_in":
		var pi PacketIn
		if err := json.Unmarshal(params, &pi); err != nil {
			return nil, &jsonrpc.RPCError{Code: "bad params", Details: err.Error()}
		}
		c.mu.Lock()
		handler := c.onPacketIn
		c.mu.Unlock()
		if handler != nil {
			handler(pi)
		}
		return nil, nil
	default:
		return nil, &jsonrpc.RPCError{Code: "unknown method", Details: method}
	}
}

// GetP4Info fetches the running pipeline's description.
func (c *Client) GetP4Info() (*p4.P4Info, error) {
	var info p4.P4Info
	if err := c.conn.Call("get_p4info", []any{}, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// SetObs registers the client's write-path metrics in o's registry,
// labelled with target (the device this client controls), and attaches
// the flight recorder. Call before issuing writes; a nil observer
// leaves the client uninstrumented.
func (c *Client) SetObs(o *obs.Observer, target string) {
	reg := o.Reg()
	if reg == nil {
		return
	}
	c.rec = o.Rec()
	c.target = target
	lbl := obs.L("target", target)
	c.mWriteSecs = reg.Histogram("p4rt_write_seconds",
		"Write RPC latency.", nil, lbl)
	c.mWrites = reg.Counter("p4rt_writes_total",
		"Write RPCs issued.", lbl)
	c.mWriteErrors = reg.Counter("p4rt_write_errors_total",
		"Write RPCs that failed.", lbl)
	c.mInflight = reg.Gauge("p4rt_writes_inflight",
		"Write RPCs currently awaiting a response.", lbl)
	c.mWriteUpdates = reg.Histogram("p4rt_write_updates",
		"Updates per write RPC.", obs.SizeBuckets, lbl)
	c.obsOn = true
}

// Write applies updates atomically on the device.
func (c *Client) Write(updates ...Update) error {
	return c.WriteTxn(0, updates...)
}

// WriteTxn is Write with the originating management-plane transaction
// attached as optional wire metadata, so the device can stamp its apply
// events and extend the transaction's trace with a switch-applied stage.
// A zero txn sends the legacy bare-array form, byte-identical to what
// pre-txn clients emit — safe against old servers.
func (c *Client) WriteTxn(txn uint64, updates ...Update) error {
	var params any = updates
	if txn != 0 {
		params = WriteRequest{Txn: txn, Updates: updates}
	}
	var out map[string]any
	if !c.obsOn {
		return c.conn.Call("write", params, &out)
	}
	c.mInflight.Add(1)
	t0 := time.Now()
	err := c.conn.Call("write", params, &out)
	elapsed := time.Since(t0)
	c.mWriteSecs.ObserveDuration(elapsed)
	c.mInflight.Add(-1)
	c.mWrites.Inc()
	c.mWriteUpdates.Observe(float64(len(updates)))
	failed := int64(0)
	if err != nil {
		c.mWriteErrors.Inc()
		failed = 1
	}
	c.rec.Append(obs.Ev("p4rt", "rpc.write").WithTxn(txn).WithDevice(c.target).
		F("updates", int64(len(updates))).
		F("rpc_us", elapsed.Microseconds()).
		F("failed", failed))
	return err
}

// ReadTable snapshots a table's entries.
func (c *Client) ReadTable(table string) ([]TableEntry, error) {
	var entries []TableEntry
	if err := c.conn.Call("read", table, &entries); err != nil {
		return nil, err
	}
	return entries, nil
}

// PacketOut injects a packet on a port.
func (c *Client) PacketOut(port uint16, data []byte) error {
	var out map[string]any
	return c.conn.Call("packet_out", PacketOut{Port: port, Data: data}, &out)
}

// ReadCounters reads a table's hit/miss counters.
func (c *Client) ReadCounters(table string) (p4.TableCounters, error) {
	var out p4.TableCounters
	if err := c.conn.Call("read_counters", table, &out); err != nil {
		return out, err
	}
	return out, nil
}

// AckDigest acknowledges a digest list explicitly (with auto-ack off).
func (c *Client) AckDigest(listID uint64) error {
	return c.conn.Notify("digest_ack", listID)
}

// Echo round-trips a keepalive probe.
func (c *Client) Echo() error {
	var out any
	return c.conn.Call("echo", []any{"ping"}, &out)
}

// SetCallTimeout bounds every RPC issued on this connection (0 = none).
func (c *Client) SetCallTimeout(d time.Duration) { c.conn.SetCallTimeout(d) }

// StartKeepalive begins echo heartbeats on the connection: misses
// consecutive failures fail it (see jsonrpc.Conn.StartKeepalive).
func (c *Client) StartKeepalive(interval time.Duration, misses int) {
	c.conn.StartKeepalive(interval, misses)
}
