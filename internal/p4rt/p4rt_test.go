package p4rt

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/p4"
)

// fakeDevice records every call so the tests can assert the wire protocol
// end to end without a full switch simulator behind it.
type fakeDevice struct {
	mu       sync.Mutex
	info     *p4.P4Info
	writes   [][]Update
	packets  []PacketOut
	acks     []uint64
	failNext bool
	counters map[string]p4.TableCounters
}

func (d *fakeDevice) P4Info() *p4.P4Info { return d.info }

func (d *fakeDevice) Write(updates []Update) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failNext {
		d.failNext = false
		return errors.New("injected write failure")
	}
	d.writes = append(d.writes, updates)
	return nil
}

func (d *fakeDevice) ReadTable(table string) ([]TableEntry, error) {
	if table == "ghost" {
		return nil, errors.New("no such table")
	}
	return []TableEntry{{Table: table, Action: "fwd", Params: []uint64{7}}}, nil
}

func (d *fakeDevice) PacketOut(port uint16, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.packets = append(d.packets, PacketOut{Port: port, Data: data})
	return nil
}

func (d *fakeDevice) AckDigest(listID uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.acks = append(d.acks, listID)
}

// Counters implements the optional CounterReader extension.
func (d *fakeDevice) Counters(table string) (p4.TableCounters, bool) {
	c, ok := d.counters[table]
	return c, ok
}

func startServer(t *testing.T, dev Device) (*Server, string) {
	t.Helper()
	srv := NewServer(dev)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(srv.Close)
	return srv, ln.Addr().String()
}

func dialT(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func (d *fakeDevice) lastWrite() []Update {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.writes) == 0 {
		return nil
	}
	return d.writes[len(d.writes)-1]
}

func TestClientServerRoundTrip(t *testing.T) {
	dev := &fakeDevice{
		info: &p4.P4Info{Program: "fake"},
		counters: map[string]p4.TableCounters{
			"t": {Hits: 3, Misses: 1},
		},
	}
	_, addr := startServer(t, dev)
	c := dialT(t, addr)

	info, err := c.GetP4Info()
	if err != nil || info.Program != "fake" {
		t.Fatalf("GetP4Info = %+v, %v", info, err)
	}

	// Write carries every update shape over the wire intact.
	entry := TableEntry{
		Table:   "t",
		Matches: []p4.FieldMatch{{Value: 0xfeed, PrefixLen: 24, Mask: 0xff, Wildcard: false}},
		Action:  "fwd", Params: []uint64{9}, Priority: 5,
	}
	if err := c.Write(
		InsertEntry(entry),
		ModifyEntry(entry),
		DeleteEntry(entry),
		SetMulticast(4096, []uint16{1, 2, 3}),
	); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got := dev.lastWrite()
	if len(got) != 4 {
		t.Fatalf("device saw %d updates", len(got))
	}
	if got[0].Type != UpdateInsert || got[1].Type != UpdateModify || got[2].Type != UpdateDelete {
		t.Fatalf("update types = %v %v %v", got[0].Type, got[1].Type, got[2].Type)
	}
	if e := got[1].Entry; e == nil || e.Table != "t" || e.Priority != 5 ||
		len(e.Matches) != 1 || e.Matches[0].Value != 0xfeed ||
		e.Matches[0].PrefixLen != 24 || e.Matches[0].Mask != 0xff {
		t.Fatalf("entry mangled in transit: %+v", got[1].Entry)
	}
	if g := got[3].Multicast; g == nil || g.Group != 4096 || len(g.Ports) != 3 {
		t.Fatalf("multicast mangled: %+v", got[3].Multicast)
	}

	entries, err := c.ReadTable("t")
	if err != nil || len(entries) != 1 || entries[0].Params[0] != 7 {
		t.Fatalf("ReadTable = %+v, %v", entries, err)
	}

	if err := c.PacketOut(4, []byte{0xde, 0xad}); err != nil {
		t.Fatalf("PacketOut: %v", err)
	}
	waitCond(t, func() bool {
		dev.mu.Lock()
		defer dev.mu.Unlock()
		return len(dev.packets) == 1
	})
	dev.mu.Lock()
	po := dev.packets[0]
	dev.mu.Unlock()
	if po.Port != 4 || len(po.Data) != 2 || po.Data[0] != 0xde {
		t.Fatalf("packet out mangled: %+v", po)
	}

	counters, err := c.ReadCounters("t")
	if err != nil || counters.Hits != 3 || counters.Misses != 1 {
		t.Fatalf("ReadCounters = %+v, %v", counters, err)
	}
}

func TestServerErrorPaths(t *testing.T) {
	dev := &fakeDevice{info: &p4.P4Info{Program: "fake"}}
	_, addr := startServer(t, dev)
	c := dialT(t, addr)

	dev.failNext = true
	err := c.Write(InsertEntry(TableEntry{Table: "t"}))
	if err == nil || !strings.Contains(err.Error(), "injected write failure") {
		t.Fatalf("Write err = %v", err)
	}
	if _, err := c.ReadTable("ghost"); err == nil {
		t.Fatal("ReadTable(ghost) succeeded")
	}
	// The fake has a counters map but no entry for this table.
	if _, err := c.ReadCounters("ghost"); err == nil {
		t.Fatal("ReadCounters(ghost) succeeded")
	}
}

// noCounterDevice wraps a fakeDevice but does NOT implement CounterReader.
type noCounterDevice struct{ d *fakeDevice }

func (n *noCounterDevice) P4Info() *p4.P4Info                       { return n.d.P4Info() }
func (n *noCounterDevice) Write(u []Update) error                   { return n.d.Write(u) }
func (n *noCounterDevice) ReadTable(t string) ([]TableEntry, error) { return n.d.ReadTable(t) }
func (n *noCounterDevice) PacketOut(p uint16, b []byte) error       { return n.d.PacketOut(p, b) }
func (n *noCounterDevice) AckDigest(id uint64)                      { n.d.AckDigest(id) }

func TestReadCountersUnimplemented(t *testing.T) {
	dev := &noCounterDevice{d: &fakeDevice{info: &p4.P4Info{Program: "bare"}}}
	_, addr := startServer(t, dev)
	c := dialT(t, addr)
	_, err := c.ReadCounters("t")
	if err == nil || !strings.Contains(err.Error(), "unimplemented") {
		t.Fatalf("ReadCounters on bare device = %v", err)
	}
}

func TestDigestAutoAck(t *testing.T) {
	dev := &fakeDevice{info: &p4.P4Info{Program: "fake"}}
	srv, addr := startServer(t, dev)
	c := dialT(t, addr)

	var mu sync.Mutex
	var got []DigestList
	c.OnDigest(func(dl DigestList) {
		mu.Lock()
		got = append(got, dl)
		mu.Unlock()
	})
	srv.NotifyDigest(DigestList{Digest: "learn", ListID: 42,
		Messages: [][]uint64{{1, 2}, {3, 4}}})
	waitCond(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 1
	})
	mu.Lock()
	dl := got[0]
	mu.Unlock()
	if dl.Digest != "learn" || len(dl.Messages) != 2 || dl.Messages[1][1] != 4 {
		t.Fatalf("digest mangled: %+v", dl)
	}
	// Auto-ack is on by default: the device sees the ack without any
	// explicit AckDigest call.
	waitCond(t, func() bool {
		dev.mu.Lock()
		defer dev.mu.Unlock()
		return len(dev.acks) == 1 && dev.acks[0] == 42
	})
}

func TestDigestManualAck(t *testing.T) {
	dev := &fakeDevice{info: &p4.P4Info{Program: "fake"}}
	srv, addr := startServer(t, dev)
	c := dialT(t, addr)
	c.SetAutoAck(false)

	seen := make(chan uint64, 1)
	c.OnDigest(func(dl DigestList) { seen <- dl.ListID })
	srv.NotifyDigest(DigestList{Digest: "learn", ListID: 7})
	select {
	case id := <-seen:
		if id != 7 {
			t.Fatalf("list id = %d", id)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("digest never delivered")
	}
	// No ack yet.
	time.Sleep(10 * time.Millisecond)
	dev.mu.Lock()
	n := len(dev.acks)
	dev.mu.Unlock()
	if n != 0 {
		t.Fatal("auto-ack fired despite SetAutoAck(false)")
	}
	if err := c.AckDigest(7); err != nil {
		t.Fatal(err)
	}
	waitCond(t, func() bool {
		dev.mu.Lock()
		defer dev.mu.Unlock()
		return len(dev.acks) == 1 && dev.acks[0] == 7
	})
}

func TestPacketInDelivery(t *testing.T) {
	dev := &fakeDevice{info: &p4.P4Info{Program: "fake"}}
	srv, addr := startServer(t, dev)
	c := dialT(t, addr)

	seen := make(chan PacketIn, 1)
	c.OnPacketIn(func(pi PacketIn) { seen <- pi })
	srv.NotifyPacketIn(PacketIn{Port: 3, Data: []byte{1, 2, 3}})
	select {
	case pi := <-seen:
		if pi.Port != 3 || len(pi.Data) != 3 {
			t.Fatalf("packet-in mangled: %+v", pi)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("packet-in never delivered")
	}
}

func TestNotifyFansOutToAllControllers(t *testing.T) {
	dev := &fakeDevice{info: &p4.P4Info{Program: "fake"}}
	srv, addr := startServer(t, dev)
	c1 := dialT(t, addr)
	c2 := dialT(t, addr)
	c1.SetAutoAck(false)
	c2.SetAutoAck(false)

	var n sync.WaitGroup
	n.Add(2)
	for _, c := range []*Client{c1, c2} {
		once := sync.Once{}
		c.OnDigest(func(DigestList) { once.Do(n.Done) })
	}
	// A completed RPC round-trip guarantees the server has accepted and
	// registered the connection (Dial alone does not).
	for _, c := range []*Client{c1, c2} {
		if _, err := c.GetP4Info(); err != nil {
			t.Fatal(err)
		}
	}
	srv.NotifyDigest(DigestList{Digest: "learn", ListID: 1})
	done := make(chan struct{})
	go func() { n.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("digest not fanned out to both controllers")
	}
}

func TestClientDoneOnServerClose(t *testing.T) {
	dev := &fakeDevice{info: &p4.P4Info{Program: "fake"}}
	srv, addr := startServer(t, dev)
	c := dialT(t, addr)
	srv.Close()
	select {
	case <-c.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("client Done not signalled after server close")
	}
}

func waitCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never satisfied")
		}
		time.Sleep(time.Millisecond)
	}
}

// fakeTxnDevice is a fakeDevice that also implements TxnDevice,
// recording which transaction each attributed write arrived under.
type fakeTxnDevice struct {
	fakeDevice
	txns []uint64
}

func (d *fakeTxnDevice) WriteTxn(txn uint64, updates []Update) error {
	d.mu.Lock()
	d.txns = append(d.txns, txn)
	d.mu.Unlock()
	return d.Write(updates)
}

// TestWriteTxnWireForms pins the write RPC's two wire forms: WriteTxn
// with a nonzero txn sends the extended WriteRequest object and lands on
// the device's WriteTxn; txn 0 (and plain Write) sends the legacy bare
// array and lands on Write, byte-compatible with old clients.
func TestWriteTxnWireForms(t *testing.T) {
	dev := &fakeTxnDevice{fakeDevice: fakeDevice{info: &p4.P4Info{Program: "fake"}}}
	_, addr := startServer(t, dev)
	c := dialT(t, addr)

	upd := InsertEntry(TableEntry{Table: "t", Action: "fwd", Params: []uint64{1}})
	if err := c.WriteTxn(42, upd); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteTxn(0, upd); err != nil { // degrades to the legacy array
		t.Fatal(err)
	}
	if err := c.Write(upd); err != nil {
		t.Fatal(err)
	}
	dev.mu.Lock()
	writes, txns := len(dev.writes), append([]uint64(nil), dev.txns...)
	dev.mu.Unlock()
	if writes != 3 {
		t.Fatalf("device saw %d writes, want 3", writes)
	}
	if len(txns) != 1 || txns[0] != 42 {
		t.Fatalf("attributed txns = %v, want [42]", txns)
	}
}

// TestWriteTxnLegacyDevice checks the server-side fallback: a device
// without the TxnDevice extension still receives txn-stamped writes
// through plain Write, so new controllers interoperate with old
// switches.
func TestWriteTxnLegacyDevice(t *testing.T) {
	dev := &fakeDevice{info: &p4.P4Info{Program: "fake"}}
	_, addr := startServer(t, dev)
	c := dialT(t, addr)

	upd := InsertEntry(TableEntry{Table: "t", Action: "fwd", Params: []uint64{1}})
	if err := c.WriteTxn(42, upd); err != nil {
		t.Fatal(err)
	}
	dev.mu.Lock()
	writes := len(dev.writes)
	dev.mu.Unlock()
	if writes != 1 {
		t.Fatalf("legacy device saw %d writes, want 1", writes)
	}
}

// TestWriteRequestDecodeForms drives the server's params discrimination
// directly with raw JSON: object params decode as WriteRequest, array
// params as a bare update list, and leading whitespace doesn't confuse
// the sniff.
func TestWriteRequestDecodeForms(t *testing.T) {
	for _, tc := range []struct {
		raw  string
		want bool
	}{
		{`{"txn":7,"updates":[]}`, true},
		{`  {"txn":7}`, true},
		{"\n\t[]", false},
		{`[{"type":"insert"}]`, false},
		{``, false},
	} {
		if got := isJSONObject([]byte(tc.raw)); got != tc.want {
			t.Errorf("isJSONObject(%q) = %v, want %v", tc.raw, got, tc.want)
		}
	}
}

// TestDigestTxnRoundTrip checks the digest txn watermark survives the
// notify wire format, and that a zero txn is omitted entirely (old-field
// compatibility).
func TestDigestTxnRoundTrip(t *testing.T) {
	dev := &fakeDevice{info: &p4.P4Info{Program: "fake"}}
	srv, addr := startServer(t, dev)
	c := dialT(t, addr)

	seen := make(chan DigestList, 2)
	c.OnDigest(func(dl DigestList) { seen <- dl })
	srv.NotifyDigest(DigestList{Digest: "learn", ListID: 1, Txn: 99})
	srv.NotifyDigest(DigestList{Digest: "learn", ListID: 2})
	for i := 0; i < 2; i++ {
		select {
		case dl := <-seen:
			want := uint64(0)
			if dl.ListID == 1 {
				want = 99
			}
			if dl.Txn != want {
				t.Fatalf("digest %d txn = %d, want %d", dl.ListID, dl.Txn, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("digest never delivered")
		}
	}
}
