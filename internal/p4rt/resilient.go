package p4rt

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/jsonrpc"
	"repro/internal/obs"
	"repro/internal/p4"
)

// ErrUnavailable marks RPCs that failed because the device connection is
// down (or died mid-call). Callers that supervise their own resync — the
// controller — treat it as "the device will be reconciled on reconnect"
// rather than a fatal push error.
var ErrUnavailable = errors.New("p4rt: device unavailable")

// ErrClosed is returned by RPCs issued after Close.
var ErrClosed = errors.New("p4rt: client closed")

// ResilientConfig configures a self-healing p4rt client.
type ResilientConfig struct {
	// Addr is the switch address passed to Dial on every (re)connection.
	Addr string
	// Dial establishes the byte stream; nil selects TCP.
	Dial func(addr string) (io.ReadWriteCloser, error)
	// BackoffMin/BackoffMax bound the jittered exponential redial backoff
	// (defaults 50ms and 5s).
	BackoffMin time.Duration
	BackoffMax time.Duration
	// CallTimeout bounds every RPC on every connection (0 = none).
	CallTimeout time.Duration
	// KeepaliveInterval enables echo heartbeats (0 = disabled);
	// KeepaliveMisses consecutive failures fail the connection.
	KeepaliveInterval time.Duration
	KeepaliveMisses   int
	// Obs receives p4rt_reconnects_total / p4rt_disconnected (labelled
	// with Target) and the conn.drop / conn.redial events, plus the
	// degraded-readiness flag while the device is down.
	Obs *obs.Observer
	// Target is the device id: it labels the metrics, the flight-recorder
	// events, and the degraded key ("p4rt:<target>").
	Target string
}

// ResilientClient wraps Client with automatic redial. On connection loss
// it redials with jittered exponential backoff, re-arms the digest and
// packet-in handlers, then runs the OnReconnect hook (the controller's
// state reconciliation) before publishing the session — so by the time
// Write succeeds again, the device's tables have been diffed against the
// desired state and healed.
//
// Done() fires only on Close, never on transient connection loss.
type ResilientClient struct {
	cfg ResilientConfig

	mu          sync.Mutex
	cur         *Client
	closed      bool
	missed      int // RPC attempts rejected while no session was published
	onDigest    func(DigestList)
	onPacketIn  func(PacketIn)
	onReconnect func(*Client) error

	done      chan struct{}
	closeOnce sync.Once

	mReconnects   *obs.Counter
	gDisconnected *obs.Gauge
	rec           *obs.Recorder
}

// DialResilient connects to the switch and starts the supervision loop.
// The initial dial fails fast; only established sessions self-heal.
func DialResilient(cfg ResilientConfig) (*ResilientClient, error) {
	if cfg.Target == "" {
		cfg.Target = cfg.Addr
	}
	r := &ResilientClient{cfg: cfg, done: make(chan struct{})}
	reg := cfg.Obs.Reg()
	lbl := obs.L("target", cfg.Target)
	r.mReconnects = reg.Counter("p4rt_reconnects_total",
		"Successful p4rt session re-establishments after connection loss.", lbl)
	r.gDisconnected = reg.Gauge("p4rt_disconnected",
		"1 while this device's connection is down and redialing, else 0.", lbl)
	r.rec = cfg.Obs.Rec()
	c, err := r.connect()
	if err != nil {
		return nil, err
	}
	r.cur = c
	go r.supervise()
	return r, nil
}

func (r *ResilientClient) degradedKey() string { return "p4rt:" + r.cfg.Target }

func (r *ResilientClient) connect() (*Client, error) {
	dial := r.cfg.Dial
	if dial == nil {
		dial = func(addr string) (io.ReadWriteCloser, error) { return net.Dial("tcp", addr) }
	}
	rwc, err := dial(r.cfg.Addr)
	if err != nil {
		return nil, err
	}
	c := NewClient(rwc)
	if r.cfg.CallTimeout > 0 {
		c.SetCallTimeout(r.cfg.CallTimeout)
	}
	if r.cfg.KeepaliveInterval > 0 {
		c.StartKeepalive(r.cfg.KeepaliveInterval, r.cfg.KeepaliveMisses)
	}
	if r.cfg.Obs != nil {
		c.SetObs(r.cfg.Obs, r.cfg.Target)
	}
	r.mu.Lock()
	od, op := r.onDigest, r.onPacketIn
	r.mu.Unlock()
	if od != nil {
		c.OnDigest(od)
	}
	if op != nil {
		c.OnPacketIn(op)
	}
	return c, nil
}

// client returns the live connection or the reason there is none.
func (r *ResilientClient) client() (*Client, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClosed
	}
	if r.cur == nil {
		// Count the rejected attempt: the caller will not retry it, so if
		// a reconciliation is in flight it must run once more afterwards
		// to cover whatever this call would have written.
		r.missed++
		return nil, fmt.Errorf("%w: redialing %s", ErrUnavailable, r.cfg.Addr)
	}
	return r.cur, nil
}

// Close permanently shuts the client down.
func (r *ResilientClient) Close() error {
	r.mu.Lock()
	r.closed = true
	c := r.cur
	r.cur = nil
	r.mu.Unlock()
	r.closeOnce.Do(func() { close(r.done) })
	if c != nil {
		return c.Close()
	}
	return nil
}

// Done fires when the client is closed (not on transient disconnects).
func (r *ResilientClient) Done() <-chan struct{} { return r.done }

// Connected reports whether a live session is currently established.
func (r *ResilientClient) Connected() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cur != nil && !r.closed
}

// OnReconnect installs the post-redial reconciliation hook. It runs with
// the fresh (not yet published) client after handlers are re-armed; an
// error fails the attempt and the redial loop retries. The controller
// uses it to diff the device's actual table state against its desired
// state and re-push only the difference.
func (r *ResilientClient) OnReconnect(f func(*Client) error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onReconnect = f
}

// OnDigest installs the digest handler (re-armed on every reconnection).
func (r *ResilientClient) OnDigest(f func(DigestList)) {
	r.mu.Lock()
	r.onDigest = f
	c := r.cur
	r.mu.Unlock()
	if c != nil {
		c.OnDigest(f)
	}
}

// OnPacketIn installs the packet-in handler (re-armed on reconnection).
func (r *ResilientClient) OnPacketIn(f func(PacketIn)) {
	r.mu.Lock()
	r.onPacketIn = f
	c := r.cur
	r.mu.Unlock()
	if c != nil {
		c.OnPacketIn(f)
	}
}

// unavailableOn maps transport-level failures to ErrUnavailable while
// passing the switch's own RPC errors (bad update, unknown table — real
// failures a resync will not cure) through unchanged.
func unavailableOn(err error) error {
	if err == nil {
		return nil
	}
	var rpcErr *jsonrpc.RPCError
	if errors.As(err, &rpcErr) {
		return err
	}
	return fmt.Errorf("%w: %v", ErrUnavailable, err)
}

// GetP4Info fetches the running pipeline's description.
func (r *ResilientClient) GetP4Info() (*p4.P4Info, error) {
	c, err := r.client()
	if err != nil {
		return nil, err
	}
	info, err := c.GetP4Info()
	return info, unavailableOn(err)
}

// Write applies updates atomically on the device. While the device is
// down (or if the connection dies mid-call) the error wraps
// ErrUnavailable; reconciliation on reconnect is then responsible for
// convergence.
func (r *ResilientClient) Write(updates ...Update) error {
	return r.WriteTxn(0, updates...)
}

// WriteTxn is Write with the originating transaction attached as
// optional wire metadata (see Client.WriteTxn).
func (r *ResilientClient) WriteTxn(txn uint64, updates ...Update) error {
	c, err := r.client()
	if err != nil {
		return err
	}
	return unavailableOn(c.WriteTxn(txn, updates...))
}

// ReadTable snapshots a table's entries.
func (r *ResilientClient) ReadTable(table string) ([]TableEntry, error) {
	c, err := r.client()
	if err != nil {
		return nil, err
	}
	entries, err := c.ReadTable(table)
	return entries, unavailableOn(err)
}

// ReadCounters reads a table's hit/miss counters.
func (r *ResilientClient) ReadCounters(table string) (p4.TableCounters, error) {
	c, err := r.client()
	if err != nil {
		return p4.TableCounters{}, err
	}
	out, err := c.ReadCounters(table)
	return out, unavailableOn(err)
}

// PacketOut injects a packet on a port.
func (r *ResilientClient) PacketOut(port uint16, data []byte) error {
	c, err := r.client()
	if err != nil {
		return err
	}
	return unavailableOn(c.PacketOut(port, data))
}

// supervise watches the live connection and heals it on failure.
func (r *ResilientClient) supervise() {
	for {
		r.mu.Lock()
		c := r.cur
		r.mu.Unlock()
		if c == nil {
			return
		}
		select {
		case <-c.Done():
		case <-r.done:
			return
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return
		}
		r.cur = nil
		r.mu.Unlock()
		r.gDisconnected.Set(1)
		r.cfg.Obs.SetDegraded(r.degradedKey(), "connection lost; reconnecting")
		r.rec.Append(obs.Ev("p4rt", "conn.drop").WithDevice(r.cfg.Target))
		if !r.redial() {
			return
		}
	}
}

// redial reconnects with jittered exponential backoff until it succeeds
// (true) or the client is closed (false). Success requires the
// OnReconnect reconciliation to complete, so a published session is
// always a converged one.
func (r *ResilientClient) redial() bool {
	backoff := r.cfg.BackoffMin
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	maxb := r.cfg.BackoffMax
	if maxb <= 0 {
		maxb = 5 * time.Second
	}
	attempts := 0
	for {
		wait := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1))
		select {
		case <-r.done:
			return false
		case <-time.After(wait):
		}
		attempts++
		c, err := r.connect()
		if err == nil {
			hook := func(*Client) error { return nil }
			r.mu.Lock()
			if r.onReconnect != nil {
				hook = r.onReconnect
			}
			r.missed = 0
			r.mu.Unlock()
			if err = hook(c); err == nil {
				r.mu.Lock()
				if r.closed {
					r.mu.Unlock()
					c.Close()
					return false
				}
				r.cur = c
				r.mu.Unlock()
				// Writes attempted while the hook was reconciling failed
				// fast with ErrUnavailable and their callers will not retry
				// them — the state they carried exists only on the desired
				// side. Reconcile again until a pass completes with no
				// write having been missed, so the published session is
				// converged with everything enqueued during the heal.
				for {
					r.mu.Lock()
					missed := r.missed
					r.missed = 0
					r.mu.Unlock()
					if missed == 0 {
						break
					}
					if err = hook(c); err != nil {
						break
					}
				}
				if err == nil {
					r.mReconnects.Inc()
					r.gDisconnected.Set(0)
					r.cfg.Obs.ClearDegraded(r.degradedKey())
					r.rec.Append(obs.Ev("p4rt", "conn.redial").WithDevice(r.cfg.Target).
						F("attempts", int64(attempts)))
					return true
				}
				// The catch-up reconciliation failed: unpublish the session
				// and fall through to another redial attempt.
				r.mu.Lock()
				if r.cur == c {
					r.cur = nil
				}
				r.mu.Unlock()
			}
			c.Close()
		}
		if backoff < maxb {
			backoff *= 2
			if backoff > maxb {
				backoff = maxb
			}
		}
	}
}
