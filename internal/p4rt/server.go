package p4rt

import (
	"encoding/json"
	"net"
	"sync"
	"time"

	"repro/internal/jsonrpc"
)

// Server exposes a Device over the p4rt protocol. All connected clients
// receive digest and packet-in notifications (the prototype has a single
// controller; primary/backup arbitration is out of scope).
type Server struct {
	dev Device

	mu        sync.Mutex
	listeners map[net.Listener]bool
	conns     map[*jsonrpc.Conn]bool
	closed    bool

	// kaInterval/kaMisses, when set, start echo keepalives on every
	// accepted connection so half-open controllers are reaped.
	kaInterval time.Duration
	kaMisses   int
}

// SetKeepalive makes every subsequently accepted connection probe its
// peer with echo heartbeats: misses consecutive failures fail the
// connection. Call before Serve; 0 disables.
func (s *Server) SetKeepalive(interval time.Duration, misses int) {
	s.mu.Lock()
	s.kaInterval, s.kaMisses = interval, misses
	s.mu.Unlock()
}

// NewServer creates a server for the device.
func NewServer(dev Device) *Server {
	return &Server{
		dev:       dev,
		listeners: make(map[net.Listener]bool),
		conns:     make(map[*jsonrpc.Conn]bool),
	}
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return net.ErrClosed
	}
	s.listeners[ln] = true
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			return err
		}
		s.addConn(nc)
	}
}

// ListenAndServe listens on a TCP address and serves it.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Close stops listeners and connections.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	for ln := range s.listeners {
		ln.Close()
	}
	conns := make([]*jsonrpc.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

func (s *Server) addConn(nc net.Conn) {
	conn := jsonrpc.NewConn(nc, jsonrpc.HandlerFunc(s.handle))
	s.mu.Lock()
	s.conns[conn] = true
	ka, misses := s.kaInterval, s.kaMisses
	s.mu.Unlock()
	if ka > 0 {
		conn.StartKeepalive(ka, misses)
	}
	go func() {
		<-conn.Done()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
}

// NotifyDigest pushes a digest list to every connected controller.
func (s *Server) NotifyDigest(dl DigestList) {
	s.mu.Lock()
	conns := make([]*jsonrpc.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.Notify("digest", dl)
	}
}

// NotifyPacketIn pushes a packet-in to every connected controller.
func (s *Server) NotifyPacketIn(pi PacketIn) {
	s.mu.Lock()
	conns := make([]*jsonrpc.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.Notify("packet_in", pi)
	}
}

// isJSONObject reports whether raw's first non-space byte opens an
// object (the extended WriteRequest form) rather than an array.
func isJSONObject(raw json.RawMessage) bool {
	for _, b := range raw {
		switch b {
		case ' ', '\t', '\n', '\r':
			continue
		case '{':
			return true
		default:
			return false
		}
	}
	return false
}

func (s *Server) handle(_ *jsonrpc.Conn, method string, params json.RawMessage) (any, *jsonrpc.RPCError) {
	switch method {
	case "echo":
		// Keepalive probe: echo the params back.
		var v any
		_ = json.Unmarshal(params, &v)
		if v == nil {
			v = []any{}
		}
		return v, nil
	case "get_p4info":
		return s.dev.P4Info(), nil
	case "write":
		// Two wire forms: the legacy bare update array, and the extended
		// WriteRequest object carrying the originating transaction (see
		// p4rt.WriteRequest). Old clients keep sending arrays; both land
		// on the same device.
		var updates []Update
		var txn uint64
		if isJSONObject(params) {
			var req WriteRequest
			if err := json.Unmarshal(params, &req); err != nil {
				return nil, &jsonrpc.RPCError{Code: "bad params", Details: err.Error()}
			}
			updates, txn = req.Updates, req.Txn
		} else if err := json.Unmarshal(params, &updates); err != nil {
			return nil, &jsonrpc.RPCError{Code: "bad params", Details: err.Error()}
		}
		var err error
		if td, ok := s.dev.(TxnDevice); ok && txn != 0 {
			err = td.WriteTxn(txn, updates)
		} else {
			err = s.dev.Write(updates)
		}
		if err != nil {
			return nil, &jsonrpc.RPCError{Code: "write failed", Details: err.Error()}
		}
		return map[string]any{}, nil
	case "read":
		var table string
		if err := json.Unmarshal(params, &table); err != nil {
			return nil, &jsonrpc.RPCError{Code: "bad params", Details: "read expects a table name"}
		}
		entries, err := s.dev.ReadTable(table)
		if err != nil {
			return nil, &jsonrpc.RPCError{Code: "read failed", Details: err.Error()}
		}
		return entries, nil
	case "packet_out":
		var po PacketOut
		if err := json.Unmarshal(params, &po); err != nil {
			return nil, &jsonrpc.RPCError{Code: "bad params", Details: err.Error()}
		}
		if err := s.dev.PacketOut(po.Port, po.Data); err != nil {
			return nil, &jsonrpc.RPCError{Code: "packet_out failed", Details: err.Error()}
		}
		return map[string]any{}, nil
	case "read_counters":
		var table string
		if err := json.Unmarshal(params, &table); err != nil {
			return nil, &jsonrpc.RPCError{Code: "bad params", Details: "read_counters expects a table name"}
		}
		cr, ok := s.dev.(CounterReader)
		if !ok {
			return nil, &jsonrpc.RPCError{Code: "unimplemented", Details: "device has no counters"}
		}
		c, ok := cr.Counters(table)
		if !ok {
			return nil, &jsonrpc.RPCError{Code: "read failed", Details: "unknown table " + table}
		}
		return c, nil
	case "digest_ack":
		var listID uint64
		if err := json.Unmarshal(params, &listID); err != nil {
			return nil, &jsonrpc.RPCError{Code: "bad params", Details: err.Error()}
		}
		s.dev.AckDigest(listID)
		return nil, nil
	default:
		return nil, &jsonrpc.RPCError{Code: "unknown method", Details: method}
	}
}
