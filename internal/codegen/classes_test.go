package codegen

import (
	"strings"
	"testing"

	"repro/internal/dl/value"
)

func TestGenerateWithPrefixAndPerDevice(t *testing.T) {
	info := fig5Pipeline(t)
	g, err := Generate(nil, info, Options{
		WithMulticast: true, Prefix: "Leaf", PerDevice: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	wants := []string{
		"output relation LeafInVlan(device: string, standard_metadata_ingress_port: bit<16>, vid: bit<12>)",
		"input relation LeafMacLearn(device: string, mac: bit<48>, port: bit<16>)",
		"output relation LeafMulticastGroup(device: string, group: bit<16>, port: bit<16>)",
	}
	for _, w := range wants {
		if !strings.Contains(g.Decls, w) {
			t.Errorf("missing %q in:\n%s", w, g.Decls)
		}
	}
	if g.MulticastName != "LeafMulticastGroup" {
		t.Errorf("MulticastName = %q", g.MulticastName)
	}
	// The generated program verifies against itself.
	if _, err := g.CompileWith(""); err != nil {
		t.Fatalf("CompileWith: %v", err)
	}

	// Entry conversion strips the device column and reports the device.
	b := g.Outputs["LeafInVlan"]
	if b == nil || !b.PerDevice {
		t.Fatalf("binding = %+v", b)
	}
	rec := value.Record{value.String("leaf7"), value.Bit(3), value.Bit(10)}
	if dev := b.Device(rec); dev != "leaf7" {
		t.Errorf("Device = %q", dev)
	}
	e, err := b.EntryFromRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if e.Table != "in_vlan" || e.Matches[0].Value != 3 || e.Params[0] != 10 {
		t.Errorf("entry = %+v", e)
	}
	// A record missing the device column is rejected.
	if _, err := b.EntryFromRecord(value.Record{value.Bit(3), value.Bit(10)}); err == nil {
		t.Errorf("device-less record accepted")
	}

	// Digest conversion prepends the device.
	d := g.Digests["LeafMacLearn"]
	drec, err := d.DigestRecordFrom("leaf7", []uint64{0xaa, 4})
	if err != nil {
		t.Fatal(err)
	}
	if drec[0].Str() != "leaf7" || drec[1].Bit() != 0xaa {
		t.Errorf("digest record = %v", drec)
	}

	// Multicast conversion.
	dev, grp, port, err := MulticastDeviceFromRecord(value.Record{
		value.String("leaf7"), value.Bit(9), value.Bit(2),
	})
	if err != nil || dev != "leaf7" || grp != 9 || port != 2 {
		t.Errorf("mcast = %s/%d/%d, %v", dev, grp, port, err)
	}
	if _, _, _, err := MulticastDeviceFromRecord(value.Record{value.Bit(1), value.Bit(2), value.Bit(3)}); err == nil {
		t.Errorf("bad mcast record accepted")
	}
}

func TestGenerateTwoClassesNoCollision(t *testing.T) {
	info := fig5Pipeline(t)
	a, err := Generate(nil, info, Options{WithMulticast: true, Prefix: "Leaf"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(nil, info, Options{WithMulticast: true, Prefix: "Spine"})
	if err != nil {
		t.Fatal(err)
	}
	// The same pipeline generated under two prefixes compiles as one
	// program: no relation collisions.
	prog, err := a.CompileWith(b.Decls)
	if err != nil {
		t.Fatalf("combined compile: %v", err)
	}
	if err := b.Verify(prog); err != nil {
		t.Fatalf("second class verify: %v", err)
	}
	if prog.Relation("LeafInVlan") == nil || prog.Relation("SpineInVlan") == nil {
		t.Fatalf("class relations missing")
	}
}
