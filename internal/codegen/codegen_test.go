package codegen

import (
	"strings"
	"testing"

	"repro/internal/dl/value"
	"repro/internal/ovsdb"
	"repro/internal/p4"
	"repro/internal/p4rt"
)

// fig5Schema mirrors Fig. 5(b) of the paper: an OVSDB Port table.
const fig5Schema = `{
  "name": "snvs",
  "tables": {
    "Port": {
      "columns": {
        "name": {"type": "string"},
        "port_num": {"type": "integer"},
        "tag": {"type": {"key": "integer", "min": 0, "max": 1}},
        "trunks": {"type": {"key": "integer", "min": 0, "max": "unlimited"}},
        "options": {"type": {"key": "string", "value": "string", "min": 0, "max": "unlimited"}}
      },
      "isRoot": true
    }
  }
}`

// fig5Pipeline mirrors Fig. 5(a): an InVlan match-action table plus a MAC
// learning digest.
func fig5Pipeline(t *testing.T) *p4.P4Info {
	t.Helper()
	prog := &p4.Program{
		Name: "snvs",
		Headers: []*p4.HeaderType{
			{Name: "ethernet", Fields: []p4.HeaderField{
				{Name: "dst", Bits: 48}, {Name: "src", Bits: 48}, {Name: "etype", Bits: 16},
			}},
		},
		Metadata: []p4.MetaField{{Name: "vlan", Bits: 12}},
		Parser:   []*p4.ParserState{{Name: "start", Extract: "ethernet", Next: "accept"}},
		Actions: []*p4.Action{
			{Name: "set_vlan", Params: []p4.ActionParam{{Name: "vid", Bits: 12}}, Body: []p4.Stmt{
				&p4.SetField{Ref: p4.FieldRef{Header: p4.MetaHeader, Field: "vlan"}, Expr: &p4.ParamExpr{Index: 0}},
			}},
			{Name: "forward", Params: []p4.ActionParam{{Name: "port", Bits: 16}}, Body: []p4.Stmt{
				&p4.Output{Port: &p4.ParamExpr{Index: 0}},
			}},
			{Name: "acl_allow"},
			{Name: "acl_deny", Body: []p4.Stmt{&p4.Drop{}}},
			{Name: "nop"},
		},
		Tables: []*p4.Table{
			{Name: "in_vlan",
				Keys:    []p4.TableKey{{Ref: p4.FieldRef{Header: p4.StdMetaHeader, Field: p4.FieldIngress}, Match: p4.MatchExact}},
				Actions: []string{"set_vlan"}},
			{Name: "fwd",
				Keys: []p4.TableKey{
					{Ref: p4.FieldRef{Header: p4.MetaHeader, Field: "vlan"}, Match: p4.MatchExact},
					{Ref: p4.FieldRef{Header: "ethernet", Field: "dst"}, Match: p4.MatchExact},
				},
				Actions: []string{"forward", "nop"}},
			{Name: "acl",
				Keys: []p4.TableKey{
					{Ref: p4.FieldRef{Header: "ethernet", Field: "src"}, Match: p4.MatchTernary},
				},
				Actions: []string{"acl_allow", "acl_deny"}},
		},
		Digests: []*p4.Digest{{Name: "mac_learn", Fields: []p4.DigestField{
			{Name: "mac", Bits: 48}, {Name: "port", Bits: 16},
		}}},
		Ingress: &p4.Control{Name: "ingress", Apply: []p4.ControlStmt{
			&p4.ApplyTable{Table: "in_vlan"},
			&p4.ApplyTable{Table: "fwd"},
			&p4.ApplyTable{Table: "acl"},
		}},
		Deparser: []string{"ethernet"},
	}
	info, err := p4.BuildP4Info(prog)
	if err != nil {
		t.Fatalf("BuildP4Info: %v", err)
	}
	return info
}

func generate(t *testing.T) *Generated {
	t.Helper()
	schema, err := ovsdb.ParseSchema([]byte(fig5Schema))
	if err != nil {
		t.Fatalf("ParseSchema: %v", err)
	}
	g, err := Generate(schema, fig5Pipeline(t), Options{WithMulticast: true})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return g
}

func TestGeneratedDeclarationsFig5(t *testing.T) {
	g := generate(t)
	// Fig 5(b): the OVSDB table becomes an input relation.
	wantDecls := []string{
		"input relation Port(_uuid: string, name: string, port_num: int)",
		"input relation Port_Tag(_uuid: string, elem: int)",
		"input relation Port_Trunks(_uuid: string, elem: int)",
		"input relation Port_Options(_uuid: string, key: string, value: string)",
		// Fig 5(a): the P4 table becomes an output relation.
		"output relation InVlan(standard_metadata_ingress_port: bit<16>, vid: bit<12>)",
		"input relation MacLearn(mac: bit<48>, port: bit<16>)",
		"output relation MulticastGroup(group: bit<16>, port: bit<16>)",
		// Multi-action table: one relation per action, nop skipped.
		"output relation Fwd(meta_vlan: bit<12>, ethernet_dst: bit<48>, port: bit<16>)",
		// Ternary table gains mask and priority columns.
		"output relation AclAclAllow(ethernet_src: bit<48>, ethernet_src_mask: bit<48>, priority: int)",
		"output relation AclAclDeny(ethernet_src: bit<48>, ethernet_src_mask: bit<48>, priority: int)",
	}
	for _, want := range wantDecls {
		if !strings.Contains(g.Decls, want) {
			t.Errorf("generated declarations missing %q\n---\n%s", want, g.Decls)
		}
	}
}

func TestGeneratedProgramCompilesAndVerifies(t *testing.T) {
	g := generate(t)
	rules := `
	// Fig 5(c): the hand-written rule computing InVlan from Port.
	InVlan(p as bit<16>, v as bit<12>) :- Port(u, _, p), Port_Tag(u, v).
	Fwd(vlan, mac, port as bit<16>) :- MacLearn(mac, port9), InVlan(port9, vlan), var port = port9 as int.
	`
	prog, err := g.CompileWith(rules)
	if err != nil {
		t.Fatalf("CompileWith: %v", err)
	}
	if prog.Relation("InVlan") == nil {
		t.Fatalf("compiled program lacks InVlan")
	}
}

func TestVerifyCatchesDrift(t *testing.T) {
	g := generate(t)
	// A program that redeclares InVlan with the wrong type must fail the
	// cross-plane check even though it compiles.
	bad := strings.Replace(g.Decls,
		"output relation InVlan(standard_metadata_ingress_port: bit<16>, vid: bit<12>)",
		"output relation InVlan(standard_metadata_ingress_port: bit<16>, vid: bit<13>)", 1)
	if bad == g.Decls {
		t.Fatalf("test setup: InVlan declaration not found")
	}
	gBad := *g
	gBad.Decls = bad
	if _, err := gBad.CompileWith(""); err == nil ||
		!strings.Contains(err.Error(), "InVlan") {
		t.Fatalf("type drift not caught: %v", err)
	}
	// Missing relation is caught too.
	gMissing := *g
	gMissing.Decls = strings.Replace(g.Decls,
		"input relation MacLearn(mac: bit<48>, port: bit<16>)", "", 1)
	if _, err := gMissing.CompileWith(""); err == nil ||
		!strings.Contains(err.Error(), "MacLearn") {
		t.Fatalf("missing relation not caught: %v", err)
	}
}

func TestRowRecordConversion(t *testing.T) {
	g := generate(t)
	b := g.Inputs["Port"]
	if b == nil {
		t.Fatalf("no Port binding")
	}
	row := ovsdb.Row{
		"name":     "eth0",
		"port_num": int64(4),
		"tag":      ovsdb.NewSet(int64(10)),
		"trunks":   ovsdb.NewSet(int64(1), int64(2)),
		"options":  ovsdb.NewMap([2]ovsdb.Atom{"k", "v"}),
	}
	rec, err := b.RowRecord("uuid-1", row)
	if err != nil {
		t.Fatalf("RowRecord: %v", err)
	}
	if rec[0].Str() != "uuid-1" || rec[1].Str() != "eth0" || rec[2].Int() != 4 {
		t.Fatalf("record = %v", rec)
	}
	// Optional scalar column missing entirely -> zero value.
	rec2, err := b.RowRecord("uuid-2", ovsdb.Row{})
	if err != nil {
		t.Fatalf("RowRecord(empty): %v", err)
	}
	if rec2[1].Str() != "" || rec2[2].Int() != 0 {
		t.Fatalf("zero record = %v", rec2)
	}
	aux := g.Aux["Port_Trunks"]
	recs, err := aux.ElementRecords("uuid-1", row)
	if err != nil || len(recs) != 2 {
		t.Fatalf("ElementRecords = %v, %v", recs, err)
	}
	if recs[0][0].Str() != "uuid-1" || recs[0][1].Int() != 1 {
		t.Fatalf("element record = %v", recs[0])
	}
	mapAux := g.Aux["Port_Options"]
	mrecs, err := mapAux.ElementRecords("uuid-1", row)
	if err != nil || len(mrecs) != 1 || mrecs[0][1].Str() != "k" || mrecs[0][2].Str() != "v" {
		t.Fatalf("map element records = %v, %v", mrecs, err)
	}
}

func TestEntryFromRecord(t *testing.T) {
	g := generate(t)
	fwd := g.Outputs["Fwd"]
	rec := value.Record{value.Bit(7), value.Bit(0xaabb), value.Bit(3)}
	e, err := fwd.EntryFromRecord(rec)
	if err != nil {
		t.Fatalf("EntryFromRecord: %v", err)
	}
	want := p4rt.TableEntry{
		Table:   "fwd",
		Action:  "forward",
		Matches: []p4.FieldMatch{{Value: 7}, {Value: 0xaabb}},
		Params:  []uint64{3},
	}
	if e.Table != want.Table || e.Action != want.Action ||
		len(e.Matches) != 2 || e.Matches[0].Value != 7 || e.Params[0] != 3 {
		t.Fatalf("entry = %+v", e)
	}
	// Ternary with priority.
	acl := g.Outputs["AclAclDeny"]
	arec := value.Record{value.Bit(0xff), value.Bit(0xff00), value.Int(10)}
	ae, err := acl.EntryFromRecord(arec)
	if err != nil {
		t.Fatalf("acl EntryFromRecord: %v", err)
	}
	if ae.Matches[0].Mask != 0xff00 || ae.Priority != 10 {
		t.Fatalf("acl entry = %+v", ae)
	}
	// Arity errors.
	if _, err := fwd.EntryFromRecord(rec[:2]); err == nil {
		t.Errorf("short record accepted")
	}
	if _, err := fwd.EntryFromRecord(append(rec.Clone(), value.Bit(1))); err == nil {
		t.Errorf("long record accepted")
	}
}

func TestDigestRecord(t *testing.T) {
	g := generate(t)
	b := g.Digests["MacLearn"]
	rec, err := b.DigestRecord([]uint64{0xaabbccddeeff, 3})
	if err != nil {
		t.Fatalf("DigestRecord: %v", err)
	}
	if rec[0].Bit() != 0xaabbccddeeff || rec[1].Bit() != 3 {
		t.Fatalf("digest record = %v", rec)
	}
	if _, err := b.DigestRecord([]uint64{1}); err == nil {
		t.Errorf("wrong arity accepted")
	}
	if _, err := b.DigestRecord([]uint64{1, 1 << 17}); err == nil {
		t.Errorf("overflowing field accepted")
	}
}

func TestMulticastFromRecord(t *testing.T) {
	group, port, err := MulticastFromRecord(value.Record{value.Bit(9), value.Bit(4)})
	if err != nil || group != 9 || port != 4 {
		t.Fatalf("MulticastFromRecord = %d, %d, %v", group, port, err)
	}
	if _, _, err := MulticastFromRecord(value.Record{value.Bit(1)}); err == nil {
		t.Errorf("bad record accepted")
	}
}

func TestGenerateUnsupportedType(t *testing.T) {
	schema, err := ovsdb.ParseSchema([]byte(`{
	  "name": "X", "tables": {"T": {"columns": {"r": {"type": "real"}}}}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(schema, nil, Options{}); err == nil ||
		!strings.Contains(err.Error(), "real") {
		t.Fatalf("real column accepted: %v", err)
	}
}

func TestCamel(t *testing.T) {
	cases := map[string]string{
		"in_vlan": "InVlan", "fwd": "Fwd", "Port": "Port",
		"mac_learn": "MacLearn", "a_b_c": "ABC",
	}
	for in, want := range cases {
		if got := camel(in); got != want {
			t.Errorf("camel(%q) = %q, want %q", in, got, want)
		}
	}
}
