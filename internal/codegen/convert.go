package codegen

import (
	"fmt"

	"repro/internal/dl/value"
	"repro/internal/ovsdb"
	"repro/internal/p4"
	"repro/internal/p4rt"
)

// These conversion helpers are the generated-equivalent "glue code" the
// paper's tooling replaces: typed data movement between the planes with no
// hand-written marshaling.

// atomToValue converts an OVSDB atom to a control-plane value of the
// expected type.
func atomToValue(a ovsdb.Atom, want *value.Type) (value.Value, error) {
	switch v := a.(type) {
	case int64:
		if want.Kind == value.TInt {
			return value.Int(v), nil
		}
	case bool:
		if want.Kind == value.TBool {
			return value.Bool(v), nil
		}
	case string:
		if want.Kind == value.TString {
			return value.String(v), nil
		}
	case ovsdb.UUID:
		if want.Kind == value.TString {
			return value.String(string(v)), nil
		}
	}
	return value.Value{}, fmt.Errorf("codegen: OVSDB atom %v (%T) does not convert to %s", a, a, want)
}

// scalarOf unwraps optional scalar columns arriving as singleton sets.
func scalarOf(v ovsdb.Value, want *value.Type) (value.Value, error) {
	if set, ok := v.(*ovsdb.Set); ok {
		switch len(set.Atoms) {
		case 1:
			return atomToValue(set.Atoms[0], want)
		case 0:
			return want.ZeroValue(), nil
		default:
			return value.Value{}, fmt.Errorf("codegen: set of %d atoms in scalar position", len(set.Atoms))
		}
	}
	return atomToValue(v, want)
}

// RowRecord converts an OVSDB row to the input relation's record.
// Missing columns take their zero value (monitors may project columns).
func (b *InputTableBinding) RowRecord(uuid string, row ovsdb.Row) (value.Record, error) {
	rec := make(value.Record, 1+len(b.Columns))
	rec[0] = value.String(uuid)
	for i, col := range b.Columns {
		want := b.Types[i]
		raw, ok := row[col]
		if !ok {
			rec[1+i] = want.ZeroValue()
			continue
		}
		v, err := scalarOf(raw, want)
		if err != nil {
			return nil, fmt.Errorf("codegen: %s.%s: %w", b.Table, col, err)
		}
		rec[1+i] = v
	}
	return rec, nil
}

// ElementRecords converts a set- or map-valued column of a row to the
// auxiliary relation's records, one per element.
func (b *AuxColumnBinding) ElementRecords(uuid string, row ovsdb.Row) ([]value.Record, error) {
	raw, ok := row[b.Column]
	if !ok {
		return nil, nil
	}
	var out []value.Record
	switch v := raw.(type) {
	case *ovsdb.Set:
		if b.IsMap {
			return nil, fmt.Errorf("codegen: %s.%s: set value for map column", b.Table, b.Column)
		}
		for _, a := range v.Atoms {
			ev, err := atomToValue(a, b.KeyType)
			if err != nil {
				return nil, err
			}
			out = append(out, value.Record{value.String(uuid), ev})
		}
	case *ovsdb.Map:
		if !b.IsMap {
			return nil, fmt.Errorf("codegen: %s.%s: map value for set column", b.Table, b.Column)
		}
		for _, p := range v.Pairs {
			kv, err := atomToValue(p[0], b.KeyType)
			if err != nil {
				return nil, err
			}
			vv, err := atomToValue(p[1], b.ValType)
			if err != nil {
				return nil, err
			}
			out = append(out, value.Record{value.String(uuid), kv, vv})
		}
	default:
		// A bare atom is a singleton set.
		if b.IsMap {
			return nil, fmt.Errorf("codegen: %s.%s: atom value for map column", b.Table, b.Column)
		}
		ev, err := atomToValue(raw, b.KeyType)
		if err != nil {
			return nil, err
		}
		out = append(out, value.Record{value.String(uuid), ev})
	}
	return out, nil
}

// Device returns the target device id of a per-device record ("" when the
// binding is not per-device).
func (b *OutputTableBinding) Device(rec value.Record) string {
	if !b.PerDevice || len(rec) == 0 {
		return ""
	}
	return rec[0].Str()
}

// EntryFromRecord converts an output relation record to a table entry
// (skipping the leading device column of per-device bindings).
func (b *OutputTableBinding) EntryFromRecord(rec value.Record) (p4rt.TableEntry, error) {
	e := p4rt.TableEntry{Table: b.Table, Action: b.Action}
	pos := 0
	if b.PerDevice {
		if len(rec) == 0 || rec[0].Kind() != value.KindString {
			return e, fmt.Errorf("codegen: record for %s lacks a device column", b.Relation)
		}
		pos = 1
	}
	next := func() (value.Value, error) {
		if pos >= len(rec) {
			return value.Value{}, fmt.Errorf("codegen: record too short for relation %s", b.Relation)
		}
		v := rec[pos]
		pos++
		return v, nil
	}
	for _, k := range b.Keys {
		v, err := next()
		if err != nil {
			return e, err
		}
		fm := p4.FieldMatch{Value: v.Bit()}
		switch k.Match {
		case p4.MatchLPM:
			pl, err := next()
			if err != nil {
				return e, err
			}
			fm.PrefixLen = int(pl.Int())
		case p4.MatchTernary:
			m, err := next()
			if err != nil {
				return e, err
			}
			fm.Mask = m.Bit()
		case p4.MatchOptional:
			w, err := next()
			if err != nil {
				return e, err
			}
			fm.Wildcard = w.Bool()
		}
		e.Matches = append(e.Matches, fm)
	}
	for range b.Params {
		v, err := next()
		if err != nil {
			return e, err
		}
		e.Params = append(e.Params, v.Bit())
	}
	if b.HasPriority {
		v, err := next()
		if err != nil {
			return e, err
		}
		e.Priority = int(v.Int())
	}
	if pos != len(rec) {
		return e, fmt.Errorf("codegen: record for %s has %d extra fields", b.Relation, len(rec)-pos)
	}
	return e, nil
}

// DigestRecord converts a digest message to the input relation's record
// (non-per-device bindings).
func (b *DigestBinding) DigestRecord(fields []uint64) (value.Record, error) {
	return b.DigestRecordFrom("", fields)
}

// DigestRecordFrom converts a digest message arriving from the given
// device to the input relation's record.
func (b *DigestBinding) DigestRecordFrom(device string, fields []uint64) (value.Record, error) {
	if len(fields) != len(b.Bits) {
		return nil, fmt.Errorf("codegen: digest %s has %d fields, got %d", b.Digest, len(b.Bits), len(fields))
	}
	rec := make(value.Record, 0, len(fields)+1)
	if b.PerDevice {
		rec = append(rec, value.String(device))
	}
	for i, f := range fields {
		if value.MaskBits(f, b.Bits[i]) != f {
			return nil, fmt.Errorf("codegen: digest %s field %d overflows bit<%d>", b.Digest, i, b.Bits[i])
		}
		rec = append(rec, value.Bit(f))
	}
	return rec, nil
}

// MulticastFromRecord converts a MulticastGroup record to (group, port).
func MulticastFromRecord(rec value.Record) (group uint16, port uint16, err error) {
	if len(rec) != 2 {
		return 0, 0, fmt.Errorf("codegen: MulticastGroup record has %d fields", len(rec))
	}
	return uint16(rec[0].Bit()), uint16(rec[1].Bit()), nil
}

// MulticastDeviceFromRecord converts a per-device MulticastGroup record to
// (device, group, port).
func MulticastDeviceFromRecord(rec value.Record) (device string, group, port uint16, err error) {
	if len(rec) != 3 || rec[0].Kind() != value.KindString {
		return "", 0, 0, fmt.Errorf("codegen: per-device MulticastGroup record has wrong shape: %v", rec)
	}
	return rec[0].Str(), uint16(rec[1].Bit()), uint16(rec[2].Bit()), nil
}
