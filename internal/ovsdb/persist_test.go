package ovsdb

import (
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/ovsdb/wal"
)

// walDB opens a WAL in dir and wires it to a fresh test database,
// restoring whatever the directory already holds.
func walDB(t *testing.T, dir string) (*Database, *wal.Log, *wal.Recovered) {
	t.Helper()
	db := newTestDB(t)
	l, recovered, err := wal.Open(wal.Options{Dir: dir, Fsync: wal.FsyncOff})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	if err := db.Restore(recovered); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	db.AttachWAL(l)
	return db, l, recovered
}

// tableJSON renders every row of a table (keyed by UUID, _uuid elided)
// as canonical JSON for byte-level comparison across restarts.
func tableJSON(t *testing.T, db *Database, table string) map[string]string {
	t.Helper()
	out := make(map[string]string)
	for _, r := range mustTransact(t, db, OpSelect(table))[0].Rows {
		ref, _ := r["_uuid"].([]any)
		if len(ref) != 2 {
			t.Fatalf("row without _uuid: %v", r)
		}
		id, _ := ref[1].(string)
		delete(r, "_uuid")
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		out[id] = string(b)
	}
	return out
}

// TestWALRestoreRoundTrip commits inserts, updates, and deletes through
// a WAL-attached database and asserts a second database restored from
// the same directory reaches the identical state and transaction ID.
func TestWALRestoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, l, _ := walDB(t, dir)
	for i := 0; i < 10; i++ {
		mustTransact(t, db, OpInsert("Port", map[string]Value{
			"name":    fmt.Sprintf("p%d", i),
			"number":  int64(i),
			"enabled": true,
		}))
	}
	mustTransact(t, db,
		OpUpdate("Port", map[string]Value{"enabled": false}, Cond("name", "==", "p3")),
		OpDelete("Port", Cond("name", "==", "p7")),
		OpInsert("Bridge", map[string]Value{"name": "br0"}))
	want := tableJSON(t, db, "Port")
	wantBridges := tableJSON(t, db, "Bridge")
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	db2, l2, recovered := walDB(t, dir)
	defer l2.Close()
	if recovered.LastTxn != 11 {
		t.Errorf("recovered LastTxn %d, want 11", recovered.LastTxn)
	}
	got := tableJSON(t, db2, "Port")
	if len(got) != len(want) {
		t.Fatalf("restored %d Port rows, want %d", len(got), len(want))
	}
	for id, w := range want {
		if got[id] != w {
			t.Errorf("row %s diverged:\n want %s\n  got %s", id, w, got[id])
		}
	}
	gotBridges := tableJSON(t, db2, "Bridge")
	if len(gotBridges) != len(wantBridges) {
		t.Fatalf("restored %d Bridge rows, want %d", len(gotBridges), len(wantBridges))
	}
	for id, w := range wantBridges {
		if gotBridges[id] != w {
			t.Errorf("bridge %s diverged:\n want %s\n  got %s", id, w, gotBridges[id])
		}
	}

	// Restored indexes work: a duplicate indexed name must still be
	// rejected, and an indexed lookup must find the restored row.
	res := db2.Transact([]Operation{OpInsert("Port", map[string]Value{"name": "p0", "number": int64(99)})})
	if res[0].Error == "" {
		t.Error("restored index accepted a duplicate name")
	}
	if rows := mustTransact(t, db2, OpSelect("Port", Cond("name", "==", "p3")))[0].Rows; len(rows) != 1 {
		t.Errorf("indexed select found %d rows, want 1", len(rows))
	}
}

// TestWALTxnSeeding asserts the transaction counter continues above the
// recovered log instead of restarting at 1 — the property that keeps
// monitor cursors and event attribution unambiguous across restarts.
func TestWALTxnSeeding(t *testing.T) {
	dir := t.TempDir()
	db, l, _ := walDB(t, dir)
	for i := 0; i < 5; i++ {
		mustTransact(t, db, OpInsert("Port", map[string]Value{"name": fmt.Sprintf("p%d", i)}))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	db2, l2, recovered := walDB(t, dir)
	defer l2.Close()
	if recovered.LastTxn != 5 {
		t.Fatalf("recovered LastTxn %d, want 5", recovered.LastTxn)
	}
	txns := make(chan uint64, 1)
	m, _, err := db2.AddMonitor(map[string]*MonitorRequest{"Port": {}}, func(txn uint64, tu TableUpdates) {
		txns <- txn
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Cancel()
	mustTransact(t, db2, OpInsert("Port", map[string]Value{"name": "p5"}))
	if got := <-txns; got != 6 {
		t.Errorf("first post-restore commit got txn %d, want 6", got)
	}
}

// TestRestoreRequiresEmptyDatabase: restoring over live state would
// silently merge two histories.
func TestRestoreRequiresEmptyDatabase(t *testing.T) {
	db := newTestDB(t)
	mustTransact(t, db, OpInsert("Port", map[string]Value{"name": "p0"}))
	err := db.Restore(&wal.Recovered{Snapshot: &wal.Snapshot{}})
	if err == nil {
		t.Fatal("Restore on a non-empty database succeeded")
	}
}

// TestMonitorGapReplay drives the cursor protocol directly against the
// database: a monitor registered with a covered cursor receives exactly
// the missed commits; an evicted cursor falls back to a full snapshot.
func TestMonitorGapReplay(t *testing.T) {
	db := newTestDB(t)
	for i := 0; i < 4; i++ {
		mustTransact(t, db, OpInsert("Port", map[string]Value{"name": fmt.Sprintf("p%d", i), "number": int64(i)}))
	}

	// Cursor at the current head: no commits missed, empty gap.
	m, found, lastTxn, gap, initial, err := db.AddMonitorSince(
		map[string]*MonitorRequest{"Port": {}}, 4, func(uint64, TableUpdates) {})
	if err != nil {
		t.Fatal(err)
	}
	if !found || lastTxn != 4 || len(gap) != 0 || initial != nil {
		t.Fatalf("head cursor: found=%v lastTxn=%d gap=%d initial=%v", found, lastTxn, len(gap), initial)
	}
	m.Cancel()

	// Miss three commits (one update, one delete, one insert), then
	// resume from txn 4: the gap must carry exactly txns 5..7 with the
	// right shapes.
	mustTransact(t, db,
		OpUpdate("Port", map[string]Value{"number": int64(100)}, Cond("name", "==", "p0")))
	mustTransact(t, db, OpDelete("Port", Cond("name", "==", "p1")))
	mustTransact(t, db, OpInsert("Port", map[string]Value{"name": "p4", "number": int64(4)}))

	m, found, lastTxn, gap, initial, err = db.AddMonitorSince(
		map[string]*MonitorRequest{"Port": {}}, 4, func(uint64, TableUpdates) {})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Cancel()
	if !found || lastTxn != 7 || initial != nil {
		t.Fatalf("gap cursor: found=%v lastTxn=%d initial=%v", found, lastTxn, initial)
	}
	if len(gap) != 3 {
		t.Fatalf("gap has %d updates, want 3: %+v", len(gap), gap)
	}
	for i, g := range gap {
		if g.Txn != uint64(5+i) {
			t.Errorf("gap[%d].Txn = %d, want %d", i, g.Txn, 5+i)
		}
		if len(g.Updates["Port"]) != 1 {
			t.Errorf("gap[%d] carries %d rows, want 1", i, len(g.Updates["Port"]))
		}
	}
	for id, ru := range gap[0].Updates["Port"] {
		if ru.New == nil || ru.Old == nil {
			t.Errorf("update row %s: old=%v new=%v, want modify shape", id, ru.Old, ru.New)
		}
	}
	for id, ru := range gap[1].Updates["Port"] {
		if ru.New != nil || ru.Old == nil {
			t.Errorf("delete row %s: old=%v new=%v, want delete shape", id, ru.Old, ru.New)
		}
	}
	for id, ru := range gap[2].Updates["Port"] {
		if ru.New == nil || ru.Old != nil {
			t.Errorf("insert row %s: old=%v new=%v, want insert shape", id, ru.Old, ru.New)
		}
	}
}

// TestMonitorGapEviction shrinks the window below the outstanding gap:
// the cursor must miss (full snapshot fallback) instead of replaying a
// hole-ridden history.
func TestMonitorGapEviction(t *testing.T) {
	db := newTestDB(t)
	db.SetGapWindow(2)
	for i := 0; i < 6; i++ {
		mustTransact(t, db, OpInsert("Port", map[string]Value{"name": fmt.Sprintf("p%d", i)}))
	}
	// Cursor at txn 1: txns 2..4 were evicted (window holds 5,6).
	m, found, lastTxn, gap, initial, err := db.AddMonitorSince(
		map[string]*MonitorRequest{"Port": {}}, 1, func(uint64, TableUpdates) {})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Cancel()
	if found {
		t.Fatalf("evicted cursor replayed a gap: %+v", gap)
	}
	if lastTxn != 6 {
		t.Errorf("lastTxn %d, want 6", lastTxn)
	}
	if len(initial["Port"]) != 6 {
		t.Errorf("fallback snapshot has %d rows, want 6", len(initial["Port"]))
	}

	// A still-covered cursor works with the shrunk window.
	m2, found2, _, gap2, _, err := db.AddMonitorSince(
		map[string]*MonitorRequest{"Port": {}}, 5, func(uint64, TableUpdates) {})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Cancel()
	if !found2 || len(gap2) != 1 || gap2[0].Txn != 6 {
		t.Errorf("covered cursor: found=%v gap=%+v, want txn 6 only", found2, gap2)
	}

	// Disabling the window entirely forces the fallback even at head-1.
	db2 := newTestDB(t)
	db2.SetGapWindow(-1)
	mustTransact(t, db2, OpInsert("Port", map[string]Value{"name": "x"}))
	_, found3, _, _, _, err := db2.AddMonitorSince(
		map[string]*MonitorRequest{"Port": {}}, 0, func(uint64, TableUpdates) {})
	if err != nil {
		t.Fatal(err)
	}
	if found3 {
		t.Error("disabled window still replayed a gap")
	}
}

// TestWALSnapshotCompactionRestore pushes enough commits through a tiny
// SnapshotEvery that the database-side capture path runs, then restores
// from the compacted directory.
func TestWALSnapshotCompactionRestore(t *testing.T) {
	dir := t.TempDir()
	db := newTestDB(t)
	l, recovered, err := wal.Open(wal.Options{Dir: dir, Fsync: wal.FsyncOff, SnapshotEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Restore(recovered); err != nil {
		t.Fatal(err)
	}
	db.AttachWAL(l)
	const n = 30
	for i := 0; i < n; i++ {
		mustTransact(t, db, OpInsert("Port", map[string]Value{"name": fmt.Sprintf("p%d", i), "number": int64(i)}))
	}
	mustTransact(t, db, OpUpdate("Port", map[string]Value{"enabled": true}, Cond("name", "==", "p0")))
	want := tableJSON(t, db, "Port")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	db2, l2, recovered2 := walDB(t, dir)
	defer l2.Close()
	if recovered2.Snapshot.Txn == 0 {
		t.Error("no snapshot was compacted")
	}
	if recovered2.LastTxn != n+1 {
		t.Errorf("recovered LastTxn %d, want %d", recovered2.LastTxn, n+1)
	}
	got := tableJSON(t, db2, "Port")
	if len(got) != len(want) {
		t.Fatalf("restored %d rows, want %d", len(got), len(want))
	}
	for id, w := range want {
		if got[id] != w {
			t.Errorf("row %s diverged:\n want %s\n  got %s", id, w, got[id])
		}
	}
}
