package ovsdb

import (
	"encoding/json"
	"testing"
)

const mutSchema = `{
  "name": "Mut",
  "tables": {
    "T": {
      "columns": {
        "name": {"type": "string"},
        "count": {"type": "integer"},
        "weight": {"type": "real"},
        "nums": {"type": {"key": "integer", "min": 0, "max": "unlimited"}},
        "opts": {"type": {"key": "string", "value": "string", "min": 0, "max": "unlimited"}},
        "few": {"type": {"key": "integer", "min": 0, "max": 2}}
      }
    }
  }
}`

func newMutDB(t *testing.T) *Database {
	t.Helper()
	schema, err := ParseSchema([]byte(mutSchema))
	if err != nil {
		t.Fatal(err)
	}
	return NewDatabase(schema)
}

func selectOne(t *testing.T, db *Database) map[string]any {
	t.Helper()
	res := db.Transact([]Operation{OpSelect("T")})
	if res[0].Error != "" || len(res[0].Rows) != 1 {
		t.Fatalf("select: %+v", res[0])
	}
	return res[0].Rows[0]
}

func TestMutateArithmetic(t *testing.T) {
	db := newMutDB(t)
	mustTransact(t, db, OpInsert("T", map[string]Value{
		"name": "x", "count": int64(10), "weight": 2.5,
		"nums": NewSet(int64(2), int64(4)),
	}))
	where := Cond("name", "==", "x")
	cases := []struct {
		mutator string
		arg     int64
		want    int64
	}{
		{"-=", 3, 7},
		{"*=", 4, 28},
		{"/=", 2, 14},
		{"%=", 5, 4},
	}
	for _, c := range cases {
		mustTransact(t, db, OpMutate("T", [][3]json.RawMessage{
			Mutation("count", c.mutator, c.arg),
		}, where))
		row := selectOne(t, db)
		if row["count"] != int64(c.want) && row["count"] != float64(c.want) {
			// The select path returns JSON-ready values; both encodings
			// carry the same number.
			t.Fatalf("%s: count = %v, want %d", c.mutator, row["count"], c.want)
		}
	}
	// Real column arithmetic.
	mustTransact(t, db, OpMutate("T", [][3]json.RawMessage{
		Mutation("weight", "*=", int64(2)),
	}, where))
	if row := selectOne(t, db); row["weight"] != 5.0 {
		t.Fatalf("weight = %v", row["weight"])
	}
	// Set-valued arithmetic mutates every element.
	mustTransact(t, db, OpMutate("T", [][3]json.RawMessage{
		Mutation("nums", "+=", int64(10)),
	}, where))
	res := db.Transact([]Operation{OpSelect("T", Cond("nums", "includes", NewSet(int64(12), int64(14))))})
	if len(res[0].Rows) != 1 {
		t.Fatalf("set arithmetic lost: %+v", res[0])
	}
}

func TestMutateErrors(t *testing.T) {
	db := newMutDB(t)
	mustTransact(t, db, OpInsert("T", map[string]Value{"name": "x", "count": int64(1)}))
	where := Cond("name", "==", "x")
	bad := [][3]json.RawMessage{
		Mutation("count", "/=", int64(0)),
		Mutation("count", "%=", int64(0)),
		Mutation("name", "+=", int64(1)),
		Mutation("name", "insert", "y"),
		Mutation("count", "frob", int64(1)),
		Mutation("weight", "%=", 1.0),
	}
	for i, m := range bad {
		res := db.Transact([]Operation{OpMutate("T", [][3]json.RawMessage{m}, where)})
		if res[0].Error == "" {
			t.Errorf("mutation %d succeeded", i)
		}
	}
	// Cardinality violation via insert into a max-2 set.
	res := db.Transact([]Operation{OpMutate("T", [][3]json.RawMessage{
		Mutation("few", "insert", NewSet(int64(1), int64(2), int64(3))),
	}, where)})
	if res[0].Error == "" {
		t.Errorf("cardinality violation accepted")
	}
}

func TestMapMutations(t *testing.T) {
	db := newMutDB(t)
	mustTransact(t, db, OpInsert("T", map[string]Value{
		"name": "x",
		"opts": NewMap([2]Atom{"a", "1"}, [2]Atom{"b", "2"}),
	}))
	where := Cond("name", "==", "x")
	// Map insert does not replace existing keys.
	mustTransact(t, db, OpMutate("T", [][3]json.RawMessage{
		Mutation("opts", "insert", NewMap([2]Atom{"a", "other"}, [2]Atom{"c", "3"})),
	}, where))
	res := db.Transact([]Operation{OpSelect("T",
		Cond("opts", "includes", NewMap([2]Atom{"a", "1"}, [2]Atom{"c", "3"})))})
	if len(res[0].Rows) != 1 {
		t.Fatalf("map insert semantics wrong: %+v", res[0])
	}
	// Delete by key set.
	mustTransact(t, db, OpMutate("T", [][3]json.RawMessage{
		Mutation("opts", "delete", NewSet("a")),
	}, where))
	res = db.Transact([]Operation{OpSelect("T", Cond("opts", "excludes", NewMap([2]Atom{"a", "1"})))})
	if len(res[0].Rows) != 1 {
		t.Fatalf("map key delete failed")
	}
	// Delete by exact pair only removes matching pairs.
	mustTransact(t, db, OpMutate("T", [][3]json.RawMessage{
		Mutation("opts", "delete", NewMap([2]Atom{"b", "wrong"})),
	}, where))
	res = db.Transact([]Operation{OpSelect("T", Cond("opts", "includes", NewMap([2]Atom{"b", "2"})))})
	if len(res[0].Rows) != 1 {
		t.Fatalf("pair delete removed a non-matching pair")
	}
	mustTransact(t, db, OpMutate("T", [][3]json.RawMessage{
		Mutation("opts", "delete", NewMap([2]Atom{"b", "2"})),
	}, where))
	res = db.Transact([]Operation{OpSelect("T", Cond("opts", "includes", NewMap([2]Atom{"b", "2"})))})
	if len(res[0].Rows) != 0 {
		t.Fatalf("pair delete failed")
	}
}

func TestIncludesExcludesScalars(t *testing.T) {
	db := newMutDB(t)
	mustTransact(t, db, OpInsert("T", map[string]Value{"name": "x", "count": int64(5)}))
	res := db.Transact([]Operation{OpSelect("T", Cond("count", "includes", int64(5)))})
	if len(res[0].Rows) != 1 {
		t.Fatalf("scalar includes failed")
	}
	res = db.Transact([]Operation{OpSelect("T", Cond("count", "excludes", int64(4)))})
	if len(res[0].Rows) != 1 {
		t.Fatalf("scalar excludes failed")
	}
	// Relational operators on non-numeric columns are rejected.
	res = db.Transact([]Operation{OpSelect("T", Cond("name", "<", "zzz"))})
	if res[0].Error == "" {
		t.Fatalf("relational condition on string accepted")
	}
	// Unknown operator.
	res = db.Transact([]Operation{OpSelect("T", Cond("count", "~~", int64(1)))})
	if res[0].Error == "" {
		t.Fatalf("unknown operator accepted")
	}
}

func TestDatabaseGet(t *testing.T) {
	db := newMutDB(t)
	res := mustTransact(t, db, OpInsert("T", map[string]Value{"name": "g"}))
	id := UUID(res[0].UUID.([]any)[1].(string))
	row, ok := db.Get("T", id)
	if !ok || row["name"] != "g" {
		t.Fatalf("Get = %v, %v", row, ok)
	}
	if _, ok := db.Get("T", "nonexistent"); ok {
		t.Errorf("Get(nonexistent) succeeded")
	}
	if _, ok := db.Get("Nope", id); ok {
		t.Errorf("Get on unknown table succeeded")
	}
}

func TestSelectColumnsProjection(t *testing.T) {
	db := newMutDB(t)
	mustTransact(t, db, OpInsert("T", map[string]Value{"name": "p", "count": int64(9)}))
	res := db.Transact([]Operation{{
		Op: "select", Table: "T", Columns: []string{"name", "_uuid"},
	}})
	if res[0].Error != "" || len(res[0].Rows) != 1 {
		t.Fatalf("select: %+v", res[0])
	}
	row := res[0].Rows[0]
	if _, has := row["count"]; has {
		t.Errorf("projection leaked column: %v", row)
	}
	if _, has := row["_uuid"]; !has {
		t.Errorf("projection lost _uuid")
	}
	if row["name"] != "p" {
		t.Errorf("projection row = %v", row)
	}
}
