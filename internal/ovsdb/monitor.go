package ovsdb

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// MonitorSelect controls which kinds of changes a monitor receives.
// The zero value selects everything (matching RFC 7047 defaults).
type MonitorSelect struct {
	Initial *bool `json:"initial,omitempty"`
	Insert  *bool `json:"insert,omitempty"`
	Delete  *bool `json:"delete,omitempty"`
	Modify  *bool `json:"modify,omitempty"`
}

func selOn(b *bool) bool { return b == nil || *b }

// MonitorRequest selects the columns and change kinds for one table.
type MonitorRequest struct {
	Columns []string       `json:"columns,omitempty"`
	Select  *MonitorSelect `json:"select,omitempty"`
}

func (mr *MonitorRequest) wants(kind string) bool {
	if mr.Select == nil {
		return true
	}
	switch kind {
	case "initial":
		return selOn(mr.Select.Initial)
	case "insert":
		return selOn(mr.Select.Insert)
	case "delete":
		return selOn(mr.Select.Delete)
	default:
		return selOn(mr.Select.Modify)
	}
}

// RowUpdate is one row's change in a monitor notification (RFC 7047 §4.1.6).
type RowUpdate struct {
	Old map[string]any `json:"old,omitempty"`
	New map[string]any `json:"new,omitempty"`
}

// TableUpdate maps row UUIDs to their updates.
type TableUpdate map[string]RowUpdate

// TableUpdates maps table names to their updates.
type TableUpdates map[string]TableUpdate

// Monitor is a registered change subscriber. Notifications are delivered
// in commit order on a dedicated goroutine via the callback passed to
// AddMonitor. The txn argument is the ID minted at commit (0 for events
// with no originating transaction), letting subscribers correlate
// updates with traced transactions.
type Monitor struct {
	db       *Database
	requests map[string]*MonitorRequest
	notify   func(txn uint64, tu TableUpdates)

	mu     sync.Mutex
	queue  []queuedUpdate
	wake   chan struct{}
	closed bool
}

// queuedUpdate is one committed transaction's rendered updates awaiting
// delivery, stamped with the commit time so delivery can report fan-out
// lag.
type queuedUpdate struct {
	txn    uint64
	commit time.Time
	tu     TableUpdates
}

// AddMonitor registers a monitor over the given tables and returns it
// along with the initial contents (rows as inserts) for tables whose
// select includes initial. notify is called sequentially, in commit order.
func (db *Database) AddMonitor(requests map[string]*MonitorRequest, notify func(txn uint64, tu TableUpdates)) (*Monitor, TableUpdates, error) {
	m, _, _, _, initial, err := db.AddMonitorSince(requests, NoCursor, notify)
	return m, initial, err
}

// NoCursor, passed to AddMonitorSince as since, requests a full initial
// snapshot unconditionally; the returned lastTxn seeds the caller's
// cursor for later resumptions.
const NoCursor = ^uint64(0)

// GapUpdate is one replayed transaction in a monitor cursor reply.
type GapUpdate struct {
	Txn     uint64       `json:"txn"`
	Updates TableUpdates `json:"updates"`
}

// AddMonitorSince is AddMonitor with a transaction cursor: since is the
// last transaction the caller has already seen. When the gap-replay
// window still covers every change-commit after since, found is true
// and gap carries those commits as ordinary per-transaction deltas —
// the caller resumes without a snapshot. Otherwise (cursor compacted
// away, cursor ahead of this server's history, or since == NoCursor)
// found is false and initial is the usual full snapshot.
//
// lastTxn is the newest committed transaction at registration. The gap
// covers (since, lastTxn] and live notifications cover strictly later
// commits — both computed under the commit lock, so no transaction is
// ever dropped or delivered twice across the boundary.
func (db *Database) AddMonitorSince(requests map[string]*MonitorRequest, since uint64, notify func(txn uint64, tu TableUpdates)) (m *Monitor, found bool, lastTxn uint64, gap []GapUpdate, initial TableUpdates, err error) {
	for table, req := range requests {
		ts := db.schema.Tables[table]
		if ts == nil {
			return nil, false, 0, nil, nil, &MonitorError{Table: table, Reason: "unknown table"}
		}
		for _, col := range req.Columns {
			if _, ok := ts.Columns[col]; !ok {
				return nil, false, 0, nil, nil, &MonitorError{Table: table, Reason: "unknown column " + col}
			}
		}
	}
	m = &Monitor{
		db:       db,
		requests: requests,
		notify:   notify,
		wake:     make(chan struct{}, 1),
	}
	db.mu.Lock()
	lastTxn = db.txnSeq
	// pending collects the gap's retained commits for rendering after
	// the lock is released: a large replay (up to the whole window) must
	// not stall commits and other registrations behind per-row JSON
	// rendering. The changeRef elements are copied out — ring eviction
	// zeroes and recycles the buffers — but the Row images they point at
	// are copy-on-write, so they stay stable off the lock.
	var pending []gapEntry
	if since != NoCursor && since <= lastTxn && since >= db.winFloor {
		found = true
		for i := 0; i < db.winCount; i++ {
			e := &db.win[(db.winHead+i)%len(db.win)]
			if e.txn <= since {
				continue
			}
			cp := make([]changeRef, len(e.changes))
			copy(cp, e.changes)
			pending = append(pending, gapEntry{txn: e.txn, changes: cp})
		}
		db.mGapReplays.Inc()
	} else {
		initial = make(TableUpdates)
		for table, req := range requests {
			if !req.wants("initial") {
				continue
			}
			ts := db.schema.Tables[table]
			tu := make(TableUpdate)
			for id, row := range db.tables[table] {
				tu[string(id)] = RowUpdate{New: projectRow(ts, row, req.Columns)}
			}
			if len(tu) > 0 {
				initial[table] = tu
			}
		}
		if since != NoCursor {
			db.mGapMisses.Inc()
		}
	}
	db.monMu.Lock()
	db.monitors[m] = true
	db.monMu.Unlock()
	db.mu.Unlock()
	if found {
		// Render off the lock; only schema (immutable) and the copied
		// rows are touched. Live commits after lastTxn are already
		// enqueuing to the monitor, but delivery starts below, so gap
		// entries still precede every live update.
		gap = []GapUpdate{}
		for i := range pending {
			if tu := m.render(db, changesAsMap(pending[i].changes)); len(tu) > 0 {
				gap = append(gap, GapUpdate{Txn: pending[i].txn, Updates: tu})
			}
		}
	}
	go m.run()
	return m, found, lastTxn, gap, initial, nil
}

// MonitorError reports an invalid monitor request.
type MonitorError struct {
	Table  string
	Reason string
}

func (e *MonitorError) Error() string { return "ovsdb: monitor " + e.Table + ": " + e.Reason }

// Cancel unregisters the monitor and stops its delivery goroutine.
func (m *Monitor) Cancel() {
	m.db.monMu.Lock()
	delete(m.db.monitors, m)
	m.db.monMu.Unlock()
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

func (m *Monitor) enqueue(qu queuedUpdate) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.queue = append(m.queue, qu)
	m.mu.Unlock()
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

func (m *Monitor) run() {
	for {
		m.mu.Lock()
		for len(m.queue) == 0 {
			closed := m.closed
			m.mu.Unlock()
			if closed {
				return
			}
			<-m.wake
			m.mu.Lock()
		}
		batch := m.queue
		m.queue = nil
		m.mu.Unlock()
		for _, qu := range batch {
			delivered := time.Now()
			lag := delivered.Sub(qu.commit)
			m.db.mMonitorLag.ObserveDuration(lag)
			m.db.mMonitorSends.Inc()
			m.db.tracer.Record(qu.txn, "ovsdb", obs.Stage{
				Name:  "monitor",
				Start: qu.commit,
				End:   delivered,
			})
			m.db.rec.Append(obs.Ev("ovsdb", "monitor.deliver").WithTxn(qu.txn).At(delivered).
				F("tables", int64(len(qu.tu))).
				F("lag_us", lag.Microseconds()))
			if m.db.obs.BudgetExceeded("monitor", lag) {
				m.db.obs.PinIncident("monitor", qu.txn, "ovsdb", lag, nil)
			}
			m.notify(qu.txn, qu.tu)
		}
	}
}

// projectRow renders the requested columns of a row to JSON form.
// A nil column list means all columns.
func projectRow(ts *TableSchema, row Row, columns []string) map[string]any {
	out := make(map[string]any, len(row))
	if columns == nil {
		for col, v := range row {
			out[col] = ValueToJSON(v)
		}
		return out
	}
	for _, col := range columns {
		if v, ok := row[col]; ok {
			out[col] = ValueToJSON(v)
		}
	}
	return out
}

// notifyMonitors fans a committed transaction's changes out to monitors.
// Called with db.mu held (commit order therefore equals enqueue order);
// delivery happens asynchronously on each monitor's goroutine.
func (db *Database) notifyMonitors(txn uint64, commit time.Time, changes map[string]map[UUID]*rowChange) {
	db.monMu.Lock()
	defer db.monMu.Unlock()
	for m := range db.monitors {
		tu := m.render(db, changes)
		if len(tu) > 0 {
			m.enqueue(queuedUpdate{txn: txn, commit: commit, tu: tu})
		}
	}
}

func (m *Monitor) render(db *Database, changes map[string]map[UUID]*rowChange) TableUpdates {
	out := make(TableUpdates)
	for table, rows := range changes {
		if len(rows) == 0 {
			continue // retained scratch entry (see txn.effectiveChanges)
		}
		req := m.requests[table]
		if req == nil {
			continue
		}
		ts := db.schema.Tables[table]
		tu := make(TableUpdate)
		for id, c := range rows {
			switch {
			case c.old == nil && c.new != nil:
				if req.wants("insert") {
					tu[string(id)] = RowUpdate{New: projectRow(ts, c.new, req.Columns)}
				}
			case c.old != nil && c.new == nil:
				if req.wants("delete") {
					tu[string(id)] = RowUpdate{Old: projectRow(ts, c.old, req.Columns)}
				}
			default:
				if !req.wants("modify") {
					continue
				}
				// Old carries only the columns that actually changed (and
				// are selected); New carries all selected columns.
				oldChanged := make(map[string]any)
				cols := req.Columns
				if cols == nil {
					for col := range c.old {
						cols = append(cols, col)
					}
				}
				for _, col := range cols {
					ov, nv := c.old[col], c.new[col]
					if !ValueEqual(ov, nv) {
						oldChanged[col] = ValueToJSON(ov)
					}
				}
				if len(oldChanged) == 0 {
					continue // no selected column changed
				}
				tu[string(id)] = RowUpdate{Old: oldChanged, New: projectRow(ts, c.new, req.Columns)}
			}
		}
		if len(tu) > 0 {
			out[table] = tu
		}
	}
	return out
}
