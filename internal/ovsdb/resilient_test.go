package ovsdb

import (
	"encoding/json"
	"io"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/jsonrpc"
	"repro/internal/obs"
)

// TestMonitorTxnUnregistersOnBadInitialReply is the regression test for
// the monitor-registration leak: when the server's initial monitor reply
// fails to decode, the callback must be unregistered so the same id can
// be monitored again (pre-fix this reported a spurious duplicate).
func TestMonitorTxnUnregistersOnBadInitialReply(t *testing.T) {
	a, b := net.Pipe()
	var calls int // touched only on the server conn's read loop
	srv := jsonrpc.NewConn(b, jsonrpc.HandlerFunc(func(_ *jsonrpc.Conn, method string, _ json.RawMessage) (any, *jsonrpc.RPCError) {
		if method != "monitor" {
			return nil, &jsonrpc.RPCError{Code: "unknown method", Details: method}
		}
		calls++
		if calls == 1 {
			// An array is not a TableUpdates object: the client's decode of
			// the initial reply fails after the RPC itself succeeded.
			return []any{1, 2, 3}, nil
		}
		return map[string]any{}, nil
	}))
	defer srv.Close()
	c := NewClient(a)
	defer c.Close()

	cb := func(uint64, TableUpdates) {}
	if _, err := c.MonitorTxn("db", "m1", nil, cb); err == nil {
		t.Fatalf("garbage initial reply decoded successfully")
	}
	if _, err := c.MonitorTxn("db", "m1", nil, cb); err != nil {
		t.Fatalf("re-monitor after failed decode: %v (registration leaked?)", err)
	}
}

// txnCollector gathers txn-aware monitor updates.
type txnCollector struct {
	mu      sync.Mutex
	updates []TableUpdates
}

func (c *txnCollector) add(_ uint64, tu TableUpdates) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.updates = append(c.updates, tu)
}

func (c *txnCollector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.updates)
}

func (c *txnCollector) waitFor(t *testing.T, n int) []TableUpdates {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		if len(c.updates) >= n {
			out := append([]TableUpdates{}, c.updates...)
			c.mu.Unlock()
			return out
		}
		c.mu.Unlock()
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d updates (have %d)", n, c.count())
		}
		time.Sleep(time.Millisecond)
	}
}

// startResilient boots a server plus a resilient client dialing through a
// fault-injecting dialer, with a direct (unkillable) client for mutations.
func startResilient(t *testing.T, o *obs.Observer) (*ResilientClient, *Client, *faultnet.Dialer) {
	t.Helper()
	schema, err := ParseSchema([]byte(testSchema))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(NewDatabase(schema))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(srv.Close)

	d := faultnet.NewDialer()
	r, err := DialResilient(ResilientConfig{
		Addr:       ln.Addr().String(),
		Dial:       func(addr string) (io.ReadWriteCloser, error) { return d.Dial(addr) },
		BackoffMin: 2 * time.Millisecond,
		BackoffMax: 20 * time.Millisecond,
		Obs:        o,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	direct, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { direct.Close() })
	return r, direct, d
}

func portMonitorReqs() map[string]*MonitorRequest {
	return map[string]*MonitorRequest{
		"Port": {Columns: []string{"name", "number"}},
	}
}

func waitConnected(t *testing.T, r *ResilientClient) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !r.Connected() {
		if time.Now().After(deadline) {
			t.Fatalf("client never reconnected")
		}
		time.Sleep(time.Millisecond)
	}
}

// waitDisconnected blocks until the supervisor has noticed the drop, so
// a following waitConnected observes the next session, not the dying one.
func waitDisconnected(t *testing.T, r *ResilientClient) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for r.Connected() {
		if time.Now().After(deadline) {
			t.Fatalf("drop never noticed")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestResilientResyncDeliversOutageDiff(t *testing.T) {
	o := obs.NewObserver()
	r, direct, d := startResilient(t, o)
	var col txnCollector
	if _, err := r.MonitorTxn("TestDB", "m", portMonitorReqs(), col.add); err != nil {
		t.Fatalf("MonitorTxn: %v", err)
	}
	if _, err := direct.TransactErr("TestDB",
		OpInsert("Port", map[string]Value{"name": "eth0", "number": int64(1)})); err != nil {
		t.Fatal(err)
	}
	col.waitFor(t, 1)

	// Sever the client's connection and mutate the database while it is
	// down: delete eth0, add eth1.
	d.KillAll()
	if _, err := direct.TransactErr("TestDB",
		OpDelete("Port", Cond("name", "==", "eth0")),
		OpInsert("Port", map[string]Value{"name": "eth1", "number": int64(2)}),
	); err != nil {
		t.Fatal(err)
	}

	// The resync diff must arrive as exactly one synthetic update carrying
	// the delete of eth0 and the insert of eth1.
	ups := col.waitFor(t, 2)
	tu := ups[1]["Port"]
	if len(tu) != 2 {
		t.Fatalf("resync update = %v, want 2 row updates", ups[1])
	}
	var sawDel, sawIns bool
	for _, ru := range tu {
		switch {
		case ru.New == nil && ru.Old != nil && ru.Old["name"] == "eth0":
			sawDel = true
		case ru.Old == nil && ru.New != nil && ru.New["name"] == "eth1":
			sawIns = true
		}
	}
	if !sawDel || !sawIns {
		t.Fatalf("resync diff missing changes: del=%v ins=%v (%v)", sawDel, sawIns, tu)
	}

	// Live updates keep flowing on the healed session.
	if _, err := r.TransactErr("TestDB",
		OpInsert("Port", map[string]Value{"name": "eth2", "number": int64(3)})); err != nil {
		t.Fatalf("transact on healed client: %v", err)
	}
	col.waitFor(t, 3)

	if reasons := o.DegradedReasons(); len(reasons) != 0 {
		t.Fatalf("still degraded after recovery: %v", reasons)
	}
	var snap strings.Builder
	o.Reg().WritePrometheus(&snap)
	if !strings.Contains(snap.String(), "ovsdb_reconnects_total 1") {
		t.Fatalf("reconnect counter missing:\n%s", snap.String())
	}
}

func TestResilientResyncNoSpuriousDeltas(t *testing.T) {
	r, direct, d := startResilient(t, nil)
	var col txnCollector
	if _, err := r.MonitorTxn("TestDB", "m", portMonitorReqs(), col.add); err != nil {
		t.Fatalf("MonitorTxn: %v", err)
	}
	if _, err := direct.TransactErr("TestDB",
		OpInsert("Port", map[string]Value{"name": "eth0", "number": int64(1)})); err != nil {
		t.Fatal(err)
	}
	col.waitFor(t, 1)

	// Nothing changes during the outage: the subscriber must see no
	// synthetic update at all, not a no-op one.
	d.KillAll()
	waitDisconnected(t, r)
	waitConnected(t, r)
	time.Sleep(20 * time.Millisecond)
	if n := col.count(); n != 1 {
		t.Fatalf("unchanged state produced %d extra updates", n-1)
	}

	// A change made after the heal arrives exactly once.
	if _, err := direct.TransactErr("TestDB",
		OpUpdate("Port", map[string]Value{"number": int64(9)}, Cond("name", "==", "eth0"))); err != nil {
		t.Fatal(err)
	}
	ups := col.waitFor(t, 2)
	ru := ups[1]["Port"]
	if len(ru) != 1 {
		t.Fatalf("post-heal update = %v", ups[1])
	}
}

func TestResilientSurvivesRepeatedKills(t *testing.T) {
	r, direct, d := startResilient(t, nil)
	var col txnCollector
	if _, err := r.MonitorTxn("TestDB", "m", portMonitorReqs(), col.add); err != nil {
		t.Fatalf("MonitorTxn: %v", err)
	}
	want := 0
	for i := 0; i < 3; i++ {
		d.KillAll()
		if _, err := direct.TransactErr("TestDB",
			OpInsert("Port", map[string]Value{"name": "p" + string(rune('a'+i)), "number": int64(i)})); err != nil {
			t.Fatal(err)
		}
		want++
		col.waitFor(t, want) // each outage's change arrives via resync
		waitConnected(t, r)
		time.Sleep(2 * time.Millisecond) // let the healed session settle
	}
	select {
	case <-r.Done():
		t.Fatalf("resilient client died: transient drops must not close it")
	default:
	}
}

func TestResilientGoroutinesTerminateOnClose(t *testing.T) {
	// One shared server; the baseline is measured after it is up so only
	// the resilient clients' own goroutines (supervise, redial, conn
	// loops) are under test.
	schema, err := ParseSchema([]byte(testSchema))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(NewDatabase(schema))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(srv.Close)
	time.Sleep(5 * time.Millisecond)
	base := runtime.NumGoroutine()

	for i := 0; i < 5; i++ {
		d := faultnet.NewDialer()
		r, err := DialResilient(ResilientConfig{
			Addr:       ln.Addr().String(),
			Dial:       func(addr string) (io.ReadWriteCloser, error) { return d.Dial(addr) },
			BackoffMin: 2 * time.Millisecond,
			BackoffMax: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		var col txnCollector
		if _, err := r.MonitorTxn("TestDB", "m", portMonitorReqs(), col.add); err != nil {
			t.Fatal(err)
		}
		d.KillAll()
		waitDisconnected(t, r)
		waitConnected(t, r) // exercise the redial loop before closing
		r.Close()
		select {
		case <-r.Done():
		case <-time.After(time.Second):
			t.Fatalf("Done not closed after Close")
		}
	}
	// Server-side conn goroutines die when their client closes; everything
	// must drain back to near the post-server baseline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d (base %d)\n%s", runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestResilientDropsSupersededConnectionUpdates is the regression test
// for stale delivery after resync: an update still queued in a dead
// connection's delivery goroutine carries an older monitor generation
// and must be dropped, not applied to the cache or forwarded to the
// subscriber out of order.
func TestResilientDropsSupersededConnectionUpdates(t *testing.T) {
	r, direct, d := startResilient(t, nil)
	var col txnCollector
	if _, err := r.MonitorTxn("TestDB", "m", portMonitorReqs(), col.add); err != nil {
		t.Fatalf("MonitorTxn: %v", err)
	}
	if _, err := direct.TransactErr("TestDB",
		OpInsert("Port", map[string]Value{"name": "eth0", "number": int64(1)})); err != nil {
		t.Fatal(err)
	}
	col.waitFor(t, 1)

	// A callback bound to generation 0 predates the current registration
	// (generation 1): the update must vanish without a trace.
	r.deliver(0, 42, TableUpdates{"Port": {
		"00000000-dead-beef-0000-000000000000": RowUpdate{New: map[string]any{"name": "stale", "number": int64(9)}},
	}})
	if n := col.count(); n != 1 {
		t.Fatalf("superseded-generation update forwarded (%d updates)", n)
	}

	// The cache was not poisoned: an outage with no state change still
	// produces no synthetic update, and a real change arrives exactly once.
	d.KillAll()
	waitDisconnected(t, r)
	waitConnected(t, r)
	time.Sleep(20 * time.Millisecond)
	if n := col.count(); n != 1 {
		t.Fatalf("stale update leaked into the resync diff (%d updates)", n)
	}
	if _, err := direct.TransactErr("TestDB",
		OpInsert("Port", map[string]Value{"name": "eth1", "number": int64(2)})); err != nil {
		t.Fatal(err)
	}
	ups := col.waitFor(t, 2)
	for _, ru := range ups[1]["Port"] {
		if ru.New != nil && ru.New["name"] == "stale" {
			t.Fatalf("stale row image surfaced after reconnect: %v", ups[1])
		}
	}
}
