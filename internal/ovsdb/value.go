// Package ovsdb implements the management plane: an OVSDB-style (RFC 7047)
// transactional database with typed schemas, a JSON-RPC wire protocol, and
// monitor-based change streaming — the property the paper relies on to
// drive the control plane ("it can stream a database's ongoing series of
// changes, grouped into transactions, to a subscriber").
package ovsdb

import (
	"crypto/rand"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// UUID is a canonically formatted RFC 4122 UUID string.
type UUID string

// NewUUID returns a fresh random (version 4) UUID.
func NewUUID() UUID {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("ovsdb: no entropy: " + err.Error())
	}
	b[6] = b[6]&0x0f | 0x40
	b[8] = b[8]&0x3f | 0x80
	// Hand-rolled hex: this sits on the insert hot path, where
	// fmt.Sprintf costs several allocations per ID.
	const hexdigits = "0123456789abcdef"
	var out [36]byte
	j := 0
	for i, v := range b {
		switch i {
		case 4, 6, 8, 10:
			out[j] = '-'
			j++
		}
		out[j] = hexdigits[v>>4]
		out[j+1] = hexdigits[v&0x0f]
		j += 2
	}
	return UUID(out[:])
}

// ZeroUUID is the all-zero UUID used as the default for uuid columns.
const ZeroUUID = UUID("00000000-0000-0000-0000-000000000000")

// Atom is a scalar OVSDB value: int64, float64, bool, string, or UUID.
type Atom any

// Set is an OVSDB set value (unordered, no duplicates). The atoms are kept
// sorted by their canonical key for deterministic output.
type Set struct {
	Atoms []Atom
}

// Map is an OVSDB map value. Pairs are kept sorted by key.
type Map struct {
	Pairs [][2]Atom
}

// Value is an OVSDB column value: an Atom, *Set, or *Map.
type Value any

// atomKey returns a canonical ordering/identity key for an atom.
func atomKey(a Atom) string {
	switch v := a.(type) {
	case int64:
		return fmt.Sprintf("i%020d", uint64(v)+1<<63)
	case float64:
		return fmt.Sprintf("r%v", v)
	case bool:
		if v {
			return "b1"
		}
		return "b0"
	case string:
		return "s" + v
	case UUID:
		return "u" + string(v)
	case namedUUID:
		return "n" + string(v)
	default:
		panic(fmt.Sprintf("ovsdb: bad atom type %T", a))
	}
}

// atomEqual reports equality of two atoms.
func atomEqual(a, b Atom) bool { return atomKey(a) == atomKey(b) }

// NewSet builds a set, deduplicating and sorting its atoms.
func NewSet(atoms ...Atom) *Set {
	seen := make(map[string]bool, len(atoms))
	out := make([]Atom, 0, len(atoms))
	for _, a := range atoms {
		k := atomKey(a)
		if !seen[k] {
			seen[k] = true
			out = append(out, a)
		}
	}
	sortAtoms(out)
	return &Set{Atoms: out}
}

func sortAtoms(atoms []Atom) {
	sort.Slice(atoms, func(i, j int) bool { return atomKey(atoms[i]) < atomKey(atoms[j]) })
}

// Contains reports whether the set holds the atom.
func (s *Set) Contains(a Atom) bool {
	k := atomKey(a)
	for _, x := range s.Atoms {
		if atomKey(x) == k {
			return true
		}
	}
	return false
}

// NewMap builds a map value from key/value pairs, keeping the last value
// for duplicate keys and sorting by key.
func NewMap(pairs ...[2]Atom) *Map {
	byKey := make(map[string][2]Atom, len(pairs))
	for _, p := range pairs {
		byKey[atomKey(p[0])] = p
	}
	out := make([][2]Atom, 0, len(byKey))
	for _, p := range byKey {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return atomKey(out[i][0]) < atomKey(out[j][0]) })
	return &Map{Pairs: out}
}

// Get returns the value stored under key, if any.
func (m *Map) Get(key Atom) (Atom, bool) {
	k := atomKey(key)
	for _, p := range m.Pairs {
		if atomKey(p[0]) == k {
			return p[1], true
		}
	}
	return nil, false
}

// valueKey returns a canonical identity key for any Value.
func valueKey(v Value) string {
	switch v := v.(type) {
	case *Set:
		var sb strings.Builder
		sb.WriteString("S{")
		for _, a := range v.Atoms {
			sb.WriteString(atomKey(a))
			sb.WriteByte(';')
		}
		sb.WriteByte('}')
		return sb.String()
	case *Map:
		var sb strings.Builder
		sb.WriteString("M{")
		for _, p := range v.Pairs {
			sb.WriteString(atomKey(p[0]))
			sb.WriteByte('=')
			sb.WriteString(atomKey(p[1]))
			sb.WriteByte(';')
		}
		sb.WriteByte('}')
		return sb.String()
	default:
		return atomKey(v)
	}
}

// ValueEqual reports deep equality of two OVSDB values.
func ValueEqual(a, b Value) bool { return valueKey(a) == valueKey(b) }

// atomToJSON converts an atom to its RFC 7047 JSON form.
func atomToJSON(a Atom) any {
	switch v := a.(type) {
	case UUID:
		return []any{"uuid", string(v)}
	case namedUUID:
		return []any{"named-uuid", string(v)}
	default:
		return a
	}
}

// emptySetJSON is the shared JSON form of the empty set. JSON-form
// values are read-only by convention (they are either marshaled to the
// wire or converted back into Values), so one instance serves every
// defaulted column.
var emptySetJSON = []any{"set", []any{}}

// ValueToJSON converts a Value to its RFC 7047 JSON form.
func ValueToJSON(v Value) any {
	switch v := v.(type) {
	case *Set:
		if len(v.Atoms) == 1 {
			return atomToJSON(v.Atoms[0])
		}
		if len(v.Atoms) == 0 {
			return emptySetJSON
		}
		elems := make([]any, len(v.Atoms))
		for i, a := range v.Atoms {
			elems[i] = atomToJSON(a)
		}
		return []any{"set", elems}
	case *Map:
		pairs := make([]any, len(v.Pairs))
		for i, p := range v.Pairs {
			pairs[i] = []any{atomToJSON(p[0]), atomToJSON(p[1])}
		}
		return []any{"map", pairs}
	default:
		return atomToJSON(v)
	}
}

// atomFromJSON parses a JSON value as an atom of the given base type.
func atomFromJSON(raw any, base string) (Atom, error) {
	switch base {
	case "integer":
		// Accept both wire forms (json.Number, float64) and in-process Go
		// values (int64, int) so operation builders can pass typed values.
		switch n := raw.(type) {
		case json.Number:
			i, err := n.Int64()
			if err != nil {
				return nil, fmt.Errorf("ovsdb: %q is not an integer", n)
			}
			return i, nil
		case float64:
			return int64(n), nil
		case int64:
			return n, nil
		case int:
			return int64(n), nil
		}
	case "real":
		switch n := raw.(type) {
		case json.Number:
			f, err := n.Float64()
			if err != nil {
				return nil, fmt.Errorf("ovsdb: %q is not a number", n)
			}
			return f, nil
		case float64:
			return n, nil
		case int64:
			return float64(n), nil
		case int:
			return float64(n), nil
		}
	case "boolean":
		if b, ok := raw.(bool); ok {
			return b, nil
		}
	case "string":
		if s, ok := raw.(string); ok {
			return s, nil
		}
	case "uuid":
		if pair, ok := raw.([]any); ok && len(pair) == 2 {
			tag, _ := pair[0].(string)
			id, idOK := pair[1].(string)
			if (tag == "uuid" || tag == "named-uuid") && idOK {
				if tag == "named-uuid" {
					return namedUUID(id), nil
				}
				return UUID(id), nil
			}
		}
	default:
		return nil, fmt.Errorf("ovsdb: unknown base type %q", base)
	}
	return nil, fmt.Errorf("ovsdb: JSON value %v is not a valid %s", raw, base)
}

// namedUUID marks a not-yet-resolved named UUID reference inside a
// transaction. It must never escape a committed row.
type namedUUID string

// ValueFromJSON parses a JSON value (already decoded with json.Number) as
// a value of the given column type.
func ValueFromJSON(raw any, ct *ColumnType) (Value, error) {
	// Sets and maps arrive as ["set", [...]] / ["map", [...]]; a singleton
	// set may arrive as a bare atom.
	if arr, ok := raw.([]any); ok && len(arr) == 2 {
		if tag, _ := arr[0].(string); tag == "set" || tag == "map" {
			elems, ok := arr[1].([]any)
			if !ok {
				return nil, fmt.Errorf("ovsdb: malformed %s payload", tag)
			}
			switch tag {
			case "set":
				if len(elems) == 0 {
					return defaultEmptySet, nil // shared: values are copy-on-write
				}
				atoms := make([]Atom, 0, len(elems))
				for _, e := range elems {
					a, err := atomFromJSON(e, ct.Key.Type)
					if err != nil {
						return nil, err
					}
					atoms = append(atoms, a)
				}
				return NewSet(atoms...), nil
			case "map":
				if ct.Value == nil {
					return nil, fmt.Errorf("ovsdb: map value for non-map column")
				}
				pairs := make([][2]Atom, 0, len(elems))
				for _, e := range elems {
					kv, ok := e.([]any)
					if !ok || len(kv) != 2 {
						return nil, fmt.Errorf("ovsdb: malformed map pair %v", e)
					}
					k, err := atomFromJSON(kv[0], ct.Key.Type)
					if err != nil {
						return nil, err
					}
					v, err := atomFromJSON(kv[1], ct.Value.Type)
					if err != nil {
						return nil, err
					}
					pairs = append(pairs, [2]Atom{k, v})
				}
				return NewMap(pairs...), nil
			}
		}
	}
	atom, err := atomFromJSON(raw, ct.Key.Type)
	if err != nil {
		return nil, err
	}
	if ct.IsScalar() {
		return atom, nil
	}
	if ct.Value != nil {
		return nil, fmt.Errorf("ovsdb: atom given for map column")
	}
	return NewSet(atom), nil
}
