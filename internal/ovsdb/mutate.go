package ovsdb

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// condition is a parsed where clause: [column, op, value].
type condition struct {
	column string
	op     string
	value  Value
	isUUID bool
}

func parseConditions(tx *txn, ts *TableSchema, where [][3]json.RawMessage) ([]condition, error) {
	conds := make([]condition, 0, len(where))
	for _, w := range where {
		var col, op string
		if err := json.Unmarshal(w[0], &col); err != nil {
			return nil, fmt.Errorf("bad condition column: %w", err)
		}
		if err := json.Unmarshal(w[1], &op); err != nil {
			return nil, fmt.Errorf("bad condition operator: %w", err)
		}
		var ct *ColumnType
		if col == "_uuid" {
			ct = &ColumnType{Key: BaseType{Type: "uuid"}, Min: 1, Max: 1}
		} else {
			cs := ts.Columns[col]
			if cs == nil {
				return nil, fmt.Errorf("unknown column %q in condition", col)
			}
			ct = &cs.Type
		}
		raw, err := decodeRawJSON(w[2])
		if err != nil {
			return nil, err
		}
		v, err := ValueFromJSON(raw, ct)
		if err != nil {
			return nil, fmt.Errorf("condition on %q: %w", col, err)
		}
		// Resolve named UUIDs in conditions (same-transaction references).
		if tx != nil {
			v = resolveValueNamed(tx, v)
		}
		conds = append(conds, condition{column: col, op: op, value: v, isUUID: col == "_uuid"})
	}
	return conds, nil
}

func resolveValueNamed(tx *txn, v Value) Value {
	resolve := func(a Atom) Atom {
		if n, ok := a.(namedUUID); ok {
			if real, found := tx.named[string(n)]; found {
				return real
			}
		}
		return a
	}
	switch v := v.(type) {
	case *Set:
		atoms := make([]Atom, len(v.Atoms))
		for i, a := range v.Atoms {
			atoms[i] = resolve(a)
		}
		return NewSet(atoms...)
	case *Map:
		pairs := make([][2]Atom, len(v.Pairs))
		for i, p := range v.Pairs {
			pairs[i] = [2]Atom{resolve(p[0]), resolve(p[1])}
		}
		return NewMap(pairs...)
	default:
		return resolve(v)
	}
}

func decodeRawJSON(raw json.RawMessage) (any, error) {
	// Scalar fastpaths: conditions and mutations are overwhelmingly
	// strings, numbers, and booleans, which decode without the
	// reader+decoder allocations of the general path below.
	if b := bytes.TrimSpace(raw); len(b) > 0 {
		switch b[0] {
		case '"':
			var s string
			if err := json.Unmarshal(b, &s); err == nil {
				return s, nil
			}
		case 't':
			if bytes.Equal(b, []byte("true")) {
				return true, nil
			}
		case 'f':
			if bytes.Equal(b, []byte("false")) {
				return false, nil
			}
		default:
			if (b[0] == '-' || b[0] >= '0' && b[0] <= '9') && json.Valid(b) && isJSONNumber(b) {
				return json.Number(b), nil
			}
		}
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, fmt.Errorf("bad JSON value: %w", err)
	}
	return v, nil
}

// isJSONNumber reports whether b consists solely of number characters
// (combined with json.Valid, this identifies a bare JSON number).
func isJSONNumber(b []byte) bool {
	for _, c := range b {
		switch {
		case c >= '0' && c <= '9':
		case c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E':
		default:
			return false
		}
	}
	return true
}

func (c *condition) matches(id UUID, row Row) (bool, error) {
	var actual Value
	if c.isUUID {
		actual = id
	} else {
		actual = row[c.column]
	}
	switch c.op {
	case "==":
		return ValueEqual(actual, normalizeScalarSet(actual, c.value)), nil
	case "!=":
		return !ValueEqual(actual, normalizeScalarSet(actual, c.value)), nil
	case "<", "<=", ">", ">=":
		av, aok := numeric(actual)
		bv, bok := numeric(c.value)
		if !aok || !bok {
			return false, fmt.Errorf("relational condition on non-numeric column %q", c.column)
		}
		switch c.op {
		case "<":
			return av < bv, nil
		case "<=":
			return av <= bv, nil
		case ">":
			return av > bv, nil
		default:
			return av >= bv, nil
		}
	case "includes":
		return includes(actual, c.value), nil
	case "excludes":
		return !includes(actual, c.value), nil
	default:
		return false, fmt.Errorf("unknown condition operator %q", c.op)
	}
}

// normalizeScalarSet lets a bare atom condition match a singleton-set
// column and vice versa, mirroring the JSON encoding ambiguity.
func normalizeScalarSet(actual, cond Value) Value {
	if _, ok := actual.(*Set); ok {
		if _, isSet := cond.(*Set); !isSet {
			if _, isMap := cond.(*Map); !isMap {
				return NewSet(cond)
			}
		}
	}
	return cond
}

func numeric(v Value) (float64, bool) {
	switch n := v.(type) {
	case int64:
		return float64(n), true
	case float64:
		return n, true
	case *Set:
		if len(n.Atoms) == 1 {
			return numeric(n.Atoms[0])
		}
	}
	return 0, false
}

// includes implements the "includes" condition: every element of the
// condition value is present in the actual value.
func includes(actual, cond Value) bool {
	switch av := actual.(type) {
	case *Set:
		condAtoms := atomsOf(cond)
		for _, c := range condAtoms {
			if !av.Contains(c) {
				return false
			}
		}
		return true
	case *Map:
		cm, ok := cond.(*Map)
		if !ok {
			return false
		}
		for _, p := range cm.Pairs {
			got, found := av.Get(p[0])
			if !found || !atomEqual(got, p[1]) {
				return false
			}
		}
		return true
	default:
		return ValueEqual(actual, cond)
	}
}

func atomsOf(v Value) []Atom {
	if s, ok := v.(*Set); ok {
		return s.Atoms
	}
	return []Atom{v}
}

func (db *Database) opMutate(tx *txn, op *Operation) OpResult {
	ts, table, err := db.tableSchema(op.Table)
	if err != nil {
		return OpResult{Error: "unknown table", Details: err.Error()}
	}
	ids, err := db.matchRows(tx, op.Table, ts, table, op.Where)
	if err != nil {
		return OpResult{Error: "constraint violation", Details: err.Error()}
	}
	type parsedMut struct {
		column  string
		mutator string
		value   Value
		cs      *ColumnSchema
	}
	muts := make([]parsedMut, 0, len(op.Mutations))
	for _, m := range op.Mutations {
		var col, mutator string
		if err := json.Unmarshal(m[0], &col); err != nil {
			return OpResult{Error: "constraint violation", Details: "bad mutation column"}
		}
		if err := json.Unmarshal(m[1], &mutator); err != nil {
			return OpResult{Error: "constraint violation", Details: "bad mutator"}
		}
		cs := ts.Columns[col]
		if cs == nil {
			return OpResult{Error: "constraint violation", Details: fmt.Sprintf("unknown column %q", col)}
		}
		if !cs.Mutable {
			return OpResult{Error: "constraint violation", Details: fmt.Sprintf("column %q is immutable", col)}
		}
		raw, err := decodeRawJSON(m[2])
		if err != nil {
			return OpResult{Error: "constraint violation", Details: err.Error()}
		}
		// Argument typing depends on the mutator: arithmetic mutators take
		// one scalar (applied to each element of set columns); map
		// "delete" accepts a set of keys as well as exact pairs.
		argType := &cs.Type
		switch mutator {
		case "+=", "-=", "*=", "/=", "%=":
			argType = &ColumnType{Key: cs.Type.Key, Min: 1, Max: 1}
		}
		v, verr := ValueFromJSON(raw, argType)
		if verr != nil && cs.Type.IsMap() && mutator == "delete" {
			keyType := ColumnType{Key: cs.Type.Key, Min: 0, Max: Unlimited}
			v, verr = ValueFromJSON(raw, &keyType)
		}
		if verr != nil {
			return OpResult{Error: "constraint violation", Details: verr.Error()}
		}
		if tx != nil {
			v = resolveValueNamed(tx, v)
		}
		muts = append(muts, parsedMut{column: col, mutator: mutator, value: v, cs: cs})
	}
	for _, id := range ids {
		tx.change(op.Table, id)
		row := table[id].clone()
		for _, m := range muts {
			nv, err := mutateValue(row[m.column], m.mutator, m.value)
			if err != nil {
				return OpResult{Error: "constraint violation",
					Details: fmt.Sprintf("column %q: %v", m.column, err)}
			}
			if err := m.cs.Type.CheckValue(nv); err != nil {
				return OpResult{Error: "constraint violation", Details: err.Error()}
			}
			row[m.column] = nv
		}
		if err := db.reindexRow(op.Table, ts, id, table[id], row); err != nil {
			return OpResult{Error: "constraint violation", Details: err.Error()}
		}
		table[id] = row
	}
	return OpResult{Count: len(ids)}
}

func mutateValue(cur Value, mutator string, arg Value) (Value, error) {
	switch mutator {
	case "+=", "-=", "*=", "/=", "%=":
		return mutateArith(cur, mutator, arg)
	case "insert":
		switch c := cur.(type) {
		case *Set:
			return NewSet(append(append([]Atom{}, c.Atoms...), atomsOf(arg)...)...), nil
		case *Map:
			am, ok := arg.(*Map)
			if !ok {
				return nil, fmt.Errorf("insert of non-map into map")
			}
			// RFC 7047: insert does not replace existing keys.
			pairs := append([][2]Atom{}, c.Pairs...)
			for _, p := range am.Pairs {
				if _, exists := c.Get(p[0]); !exists {
					pairs = append(pairs, p)
				}
			}
			return NewMap(pairs...), nil
		default:
			return nil, fmt.Errorf("insert into scalar column")
		}
	case "delete":
		switch c := cur.(type) {
		case *Set:
			drop := make(map[string]bool)
			for _, a := range atomsOf(arg) {
				drop[atomKey(a)] = true
			}
			var kept []Atom
			for _, a := range c.Atoms {
				if !drop[atomKey(a)] {
					kept = append(kept, a)
				}
			}
			return NewSet(kept...), nil
		case *Map:
			var kept [][2]Atom
			switch am := arg.(type) {
			case *Map:
				for _, p := range c.Pairs {
					if v, found := am.Get(p[0]); found && atomEqual(v, p[1]) {
						continue
					}
					kept = append(kept, p)
				}
			default:
				drop := make(map[string]bool)
				for _, a := range atomsOf(arg) {
					drop[atomKey(a)] = true
				}
				for _, p := range c.Pairs {
					if !drop[atomKey(p[0])] {
						kept = append(kept, p)
					}
				}
			}
			return NewMap(kept...), nil
		default:
			return nil, fmt.Errorf("delete from scalar column")
		}
	default:
		return nil, fmt.Errorf("unknown mutator %q", mutator)
	}
}

func mutateArith(cur Value, mutator string, arg Value) (Value, error) {
	applyInt := func(a, b int64) (int64, error) {
		switch mutator {
		case "+=":
			return a + b, nil
		case "-=":
			return a - b, nil
		case "*=":
			return a * b, nil
		case "/=":
			if b == 0 {
				return 0, fmt.Errorf("division by zero")
			}
			return a / b, nil
		default:
			if b == 0 {
				return 0, fmt.Errorf("modulo by zero")
			}
			return a % b, nil
		}
	}
	applyReal := func(a, b float64) (float64, error) {
		switch mutator {
		case "+=":
			return a + b, nil
		case "-=":
			return a - b, nil
		case "*=":
			return a * b, nil
		case "/=":
			if b == 0 {
				return 0, fmt.Errorf("division by zero")
			}
			return a / b, nil
		default:
			return 0, fmt.Errorf("%%= on real column")
		}
	}
	switch c := cur.(type) {
	case int64:
		b, ok := arg.(int64)
		if !ok {
			return nil, fmt.Errorf("arithmetic mutation needs an integer argument")
		}
		return applyInt(c, b)
	case float64:
		b, ok := numeric(arg)
		if !ok {
			return nil, fmt.Errorf("arithmetic mutation needs a numeric argument")
		}
		return applyReal(c, b)
	case *Set:
		// Mutate every element.
		atoms := make([]Atom, len(c.Atoms))
		for i, a := range c.Atoms {
			nv, err := mutateArith(a, mutator, arg)
			if err != nil {
				return nil, err
			}
			atoms[i] = nv
		}
		return NewSet(atoms...), nil
	default:
		return nil, fmt.Errorf("arithmetic mutation on non-numeric column")
	}
}
