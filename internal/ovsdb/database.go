package ovsdb

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/ovsdb/wal"
)

// Row is one table row: column name → value. The _uuid pseudo-column is
// stored separately as the row key.
type Row map[string]Value

// clone returns a shallow copy (values are immutable by convention).
func (r Row) clone() Row {
	out := make(Row, len(r))
	for k, v := range r {
		out[k] = v
	}
	return out
}

// Database is an in-memory OVSDB database instance guarded by a mutex.
// Transactions are atomic: on error every modified row is rolled back.
type Database struct {
	mu     sync.Mutex
	schema *DatabaseSchema
	tables map[string]map[UUID]Row
	// idx enforces schema "indexes" uniqueness in O(1): per table, one
	// map per declared index from the index-columns key to the row UUID.
	// Maintained eagerly; rebuilt from the table on transaction rollback.
	idx map[string][]map[string]UUID

	// txnPool recycles per-transaction scratch (see txn).
	txnPool sync.Pool

	monMu    sync.Mutex
	monitors map[*Monitor]bool

	// txnSeq mints transaction IDs under db.mu, so IDs are monotonic in
	// commit order. ID 0 is reserved for "no transaction". Restore seeds
	// it from the recovered log so IDs stay monotonic across restarts.
	txnSeq uint64

	// Durability (see persist.go). wal is nil for a memory-only
	// database; walDead latches the first WAL failure (the database
	// keeps serving but reports itself degraded).
	wal     *wal.Log
	walDead bool

	// Gap-replay window for monitor cursor resumption: a ring of the
	// last winCap change-commits plus the floor below which history has
	// been dropped. freeBufs recycles evicted entries' change buffers.
	win      []gapEntry
	winHead  int
	winCount int
	winCap   int
	winFloor uint64
	freeBufs [][]changeRef

	// Observability (all nil-safe; zero overhead when unset).
	obs            *obs.Observer
	tracer         *obs.Tracer
	rec            *obs.Recorder
	mTxnTotal      *obs.Counter
	mTxnErrors     *obs.Counter
	mCommitSeconds *obs.Histogram
	mMonitorLag    *obs.Histogram
	mMonitorSends  *obs.Counter
	mGapReplays    *obs.Counter
	mGapMisses     *obs.Counter
}

// NewDatabase creates an empty database for the schema.
func NewDatabase(schema *DatabaseSchema) *Database {
	db := &Database{
		schema:   schema,
		tables:   make(map[string]map[UUID]Row, len(schema.Tables)),
		idx:      make(map[string][]map[string]UUID, len(schema.Tables)),
		monitors: make(map[*Monitor]bool),
	}
	for name, ts := range schema.Tables {
		db.tables[name] = make(map[UUID]Row)
		maps := make([]map[string]UUID, len(ts.Indexes))
		for i := range maps {
			maps[i] = make(map[string]UUID)
		}
		db.idx[name] = maps
	}
	return db
}

// indexKeyOf computes the key of row under one declared index.
func indexKeyOf(cols []string, row Row) string {
	k := ""
	for _, c := range cols {
		k += valueKey(row[c]) + "\x00"
	}
	return k
}

// reindexRow validates and applies the index-map changes for one row
// transition (oldRow nil on insert, newRow nil on delete).
func (db *Database) reindexRow(table string, ts *TableSchema, id UUID, oldRow, newRow Row) error {
	maps := db.idx[table]
	for i, cols := range ts.Indexes {
		var oldKey, newKey string
		if oldRow != nil {
			oldKey = indexKeyOf(cols, oldRow)
		}
		if newRow != nil {
			newKey = indexKeyOf(cols, newRow)
		}
		if oldRow != nil && newRow != nil && oldKey == newKey {
			continue
		}
		if newRow != nil {
			if other, exists := maps[i][newKey]; exists && other != id {
				return fmt.Errorf("duplicate value for index %v (row %s)", cols, other)
			}
		}
		if oldRow != nil {
			delete(maps[i], oldKey)
		}
		if newRow != nil {
			maps[i][newKey] = id
		}
	}
	return nil
}

// rebuildIndexes reconstructs a table's index maps from its rows (used
// after rollback).
func (db *Database) rebuildIndexes(table string) {
	ts := db.schema.Tables[table]
	maps := make([]map[string]UUID, len(ts.Indexes))
	for i := range maps {
		maps[i] = make(map[string]UUID)
	}
	for id, row := range db.tables[table] {
		for i, cols := range ts.Indexes {
			maps[i][indexKeyOf(cols, row)] = id
		}
	}
	db.idx[table] = maps
}

// Schema returns the database schema.
func (db *Database) Schema() *DatabaseSchema { return db.schema }

// SetObs attaches an observer to the database. A nil observer (the
// default) degrades every instrument, the flight recorder and the
// history to no-ops. Call before serving transactions.
func (db *Database) SetObs(o *obs.Observer) {
	db.obs = o
	db.tracer = o.Tr()
	db.rec = o.Rec()
	reg := o.Reg()
	db.mTxnTotal = reg.Counter("ovsdb_txn_total",
		"Committed OVSDB transactions.")
	db.mTxnErrors = reg.Counter("ovsdb_txn_errors_total",
		"OVSDB transactions aborted by an operation error.")
	db.mCommitSeconds = reg.Histogram("ovsdb_commit_seconds",
		"OVSDB transaction commit latency.", nil)
	db.mMonitorLag = reg.Histogram("ovsdb_monitor_lag_seconds",
		"Delay between commit and monitor callback delivery.", nil)
	db.mMonitorSends = reg.Counter("ovsdb_monitor_updates_total",
		"Monitor update notifications delivered.")
	db.mGapReplays = reg.Counter("ovsdb_monitor_gap_replays_total",
		"Monitor registrations resumed by gap replay from a txn cursor.")
	db.mGapMisses = reg.Counter("ovsdb_monitor_gap_misses_total",
		"Monitor cursor resumptions that fell back to a full snapshot.")
	o.TrackRate(obs.SeriesCommits, func() float64 { return float64(db.mTxnTotal.Value()) })
	o.TrackHistogramAvg(obs.SeriesMonitorLag, db.mMonitorLag)
	o.TrackHistogramAvg("ovsdb_commit_seconds", db.mCommitSeconds)
}

// LastTxnID returns the most recently minted transaction ID (0 if no
// transaction has committed).
func (db *Database) LastTxnID() uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.txnSeq
}

// Operation is one element of a transact request (RFC 7047 §5.2).
type Operation struct {
	Op        string               `json:"op"`
	Table     string               `json:"table,omitempty"`
	Row       map[string]any       `json:"row,omitempty"`
	Rows      []map[string]any     `json:"rows,omitempty"`
	Where     [][3]json.RawMessage `json:"where,omitempty"`
	Columns   []string             `json:"columns,omitempty"`
	Mutations [][3]json.RawMessage `json:"mutations,omitempty"`
	UUIDName  string               `json:"uuid-name,omitempty"`
	Until     string               `json:"until,omitempty"`
	Timeout   int                  `json:"timeout,omitempty"`
	Comment   string               `json:"comment,omitempty"`
}

// OpResult is the result of one operation.
type OpResult struct {
	Count   int              `json:"count,omitempty"`
	UUID    any              `json:"uuid,omitempty"`
	Rows    []map[string]any `json:"rows,omitempty"`
	Error   string           `json:"error,omitempty"`
	Details string           `json:"details,omitempty"`
}

// rowChange records a row's before/after images for rollback and monitor
// notification.
type rowChange struct {
	old Row // nil for insert
	new Row // nil for delete
}

// txn tracks one in-flight transaction. Instances and their interior
// maps are pooled: commits dominate the management plane's hot path,
// and the per-transaction bookkeeping (change maps, row-change records,
// the effective-changes snapshot) otherwise allocates on every commit.
type txn struct {
	db      *Database
	changes map[string]map[UUID]*rowChange
	named   map[string]UUID // named-uuid → real uuid
	// eff is effectiveChanges' reusable output map.
	eff map[string]map[UUID]*rowChange
	// rcs/rci are a fixed row-change scratch; transactions touching
	// more rows spill to individual heap allocations. The array is
	// never reallocated while pointers into it are live.
	rcs [64]rowChange
	rci int
}

// txnPool is per-database (not package-global): retained change-map
// keys are table names, which are only meaningful against one schema.
func newTxn(db *Database) *txn {
	if tx, ok := db.txnPool.Get().(*txn); ok {
		tx.db = db
		return tx
	}
	return &txn{
		db:      db,
		changes: make(map[string]map[UUID]*rowChange),
		named:   make(map[string]UUID),
		eff:     make(map[string]map[UUID]*rowChange),
	}
}

// release returns the transaction's scratch to the pool. Inner change
// maps are cleared but retained (keyed by table), so steady-state
// commits against the same tables stop allocating maps entirely. Safe
// once no row-change pointers are referenced — i.e. after monitor
// rendering, which copies what it needs.
func (tx *txn) release() {
	db := tx.db
	tx.db = nil
	for _, m := range tx.changes {
		clear(m)
	}
	for _, m := range tx.eff {
		clear(m)
	}
	clear(tx.named)
	tx.rci = 0
	db.txnPool.Put(tx)
}

func (tx *txn) newRowChange() *rowChange {
	if tx.rci < len(tx.rcs) {
		c := &tx.rcs[tx.rci]
		tx.rci++
		*c = rowChange{}
		return c
	}
	return &rowChange{}
}

func (tx *txn) change(table string, id UUID) *rowChange {
	m := tx.changes[table]
	if m == nil {
		m = make(map[UUID]*rowChange)
		tx.changes[table] = m
	}
	c := m[id]
	if c == nil {
		c = tx.newRowChange()
		if cur, ok := tx.db.tables[table][id]; ok {
			// Rows are copy-on-write (every writer clones before
			// modifying), so the before-image can share the stored row.
			c.old = cur
		}
		m[id] = c
	}
	return c
}

// Transact executes the operations atomically. The returned slice has one
// result per operation; if an operation fails, its result carries the
// error, later operations are not executed, and all changes are rolled
// back (per RFC 7047, the whole transaction is aborted).
func (db *Database) Transact(ops []Operation) []OpResult {
	start := time.Now()
	db.mu.Lock()

	tx := newTxn(db)
	results := make([]OpResult, 0, len(ops))
	failed := -1
	for i, op := range ops {
		res := db.applyOp(tx, &op)
		results = append(results, res)
		if res.Error != "" {
			failed = i
			break
		}
	}
	if failed >= 0 {
		// Roll back in-place modifications and rebuild the touched
		// tables' index maps.
		for table, rows := range tx.changes {
			if len(rows) == 0 {
				continue // retained scratch entry from a pooled reuse
			}
			for id, c := range rows {
				if c.old == nil {
					delete(db.tables[table], id)
				} else {
					db.tables[table][id] = c.old
				}
			}
			db.rebuildIndexes(table)
		}
		for len(results) < len(ops) {
			results = append(results, OpResult{})
		}
		db.mu.Unlock()
		tx.release()
		db.mTxnErrors.Inc()
		db.rec.Append(obs.Ev("ovsdb", "txn.abort").
			F("ops", int64(len(ops))).F("failed_op", int64(failed)))
		return results
	}
	// Resolve named UUIDs that leaked into stored rows.
	if err := tx.resolveNamed(); err != nil {
		// Treat as a constraint violation on the whole transaction.
		for table, rows := range tx.changes {
			if len(rows) == 0 {
				continue // retained scratch entry from a pooled reuse
			}
			for id, c := range rows {
				if c.old == nil {
					delete(db.tables[table], id)
				} else {
					db.tables[table][id] = c.old
				}
			}
			db.rebuildIndexes(table)
		}
		db.mu.Unlock()
		tx.release()
		db.mTxnErrors.Inc()
		db.rec.Append(obs.Ev("ovsdb", "txn.abort").F("ops", int64(len(ops))))
		return []OpResult{{Error: "constraint violation", Details: err.Error()}}
	}
	// Snapshot the effective changes and enqueue monitor notifications
	// before releasing the database lock, so monitors observe commits in
	// order. Delivery itself is asynchronous (per-monitor goroutines).
	// The txn ID is minted here, under db.mu, so IDs are monotonic in
	// commit order and monitors can correlate updates to transactions.
	db.txnSeq++
	txnID := db.txnSeq
	commit := time.Now()
	changes, changedTables := tx.effectiveChanges()
	var walTicket <-chan error
	if changedTables > 0 {
		// One pooled flat snapshot of the effective changes feeds both
		// the WAL appender and the gap-replay window (see persist.go).
		flat := db.captureChanges(changes)
		if db.wal != nil && !db.walDead {
			walTicket = db.walAppendLocked(txnID, flat)
		}
		db.notifyMonitors(txnID, commit, changes)
		db.appendGapLocked(txnID, flat)
	}
	db.mu.Unlock()
	// Monitor rendering (above, synchronous) copied everything it
	// needs, so the transaction scratch can be recycled.
	tx.release()
	if walTicket != nil {
		// Wait out the group fsync after releasing db.mu, so concurrent
		// commits batch behind one sync instead of serializing on it.
		if err := <-walTicket; err != nil {
			db.walFail(err)
		}
	}
	db.mTxnTotal.Inc()
	db.mCommitSeconds.ObserveDuration(commit.Sub(start))
	db.rec.Append(obs.Ev("ovsdb", "txn.commit").WithTxn(txnID).At(commit).
		F("ops", int64(len(ops))).
		F("changed_tables", int64(changedTables)).
		F("commit_us", commit.Sub(start).Microseconds()))
	if db.tracer != nil {
		db.tracer.Record(txnID, "ovsdb", obs.Stage{
			Name:  "commit",
			Start: start,
			End:   commit,
			Attrs: map[string]int64{"ops": int64(len(ops)), "changed_tables": int64(changedTables)},
		})
	}
	return results
}

// effectiveChanges drops no-op changes (rows restored to their original
// value within the transaction).
// The returned map is the transaction's reusable scratch: it may carry
// entries for previously-touched tables whose inner maps are empty, so
// callers use the returned count (tables with at least one change)
// rather than len() of the map.
func (tx *txn) effectiveChanges() (map[string]map[UUID]*rowChange, int) {
	out := tx.eff
	changedTables := 0
	for table, rows := range tx.changes {
		n := 0
		for id, c := range rows {
			if cur, ok := tx.db.tables[table][id]; ok {
				c.new = cur // copy-on-write rows: safe to share
			} else {
				c.new = nil
			}
			if c.old == nil && c.new == nil {
				continue // inserted and deleted within the txn
			}
			if c.old != nil && c.new != nil && rowsEqual(c.old, c.new) {
				continue
			}
			m := out[table]
			if m == nil {
				m = make(map[UUID]*rowChange)
				out[table] = m
			}
			m[id] = c
			n++
		}
		if n > 0 {
			changedTables++
		}
	}
	return out, changedTables
}

func rowsEqual(a, b Row) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		w, ok := b[k]
		if !ok || !ValueEqual(v, w) {
			return false
		}
	}
	return true
}

// resolveNamed rewrites namedUUID placeholders in stored rows to the real
// UUIDs allocated by their inserts.
func (tx *txn) resolveNamed() error {
	if len(tx.named) == 0 {
		return nil
	}
	var err error
	resolveAtom := func(a Atom) Atom {
		if n, ok := a.(namedUUID); ok {
			real, found := tx.named[string(n)]
			if !found {
				err = fmt.Errorf("unknown named-uuid %q", string(n))
				return a
			}
			return real
		}
		return a
	}
	for table, rows := range tx.changes {
		for id := range rows {
			row, ok := tx.db.tables[table][id]
			if !ok {
				continue
			}
			for col, v := range row {
				switch v := v.(type) {
				case *Set:
					atoms := make([]Atom, len(v.Atoms))
					for i, a := range v.Atoms {
						atoms[i] = resolveAtom(a)
					}
					row[col] = NewSet(atoms...)
				case *Map:
					pairs := make([][2]Atom, len(v.Pairs))
					for i, p := range v.Pairs {
						pairs[i] = [2]Atom{resolveAtom(p[0]), resolveAtom(p[1])}
					}
					row[col] = NewMap(pairs...)
				default:
					row[col] = resolveAtom(v)
				}
			}
		}
	}
	return err
}

func (db *Database) applyOp(tx *txn, op *Operation) OpResult {
	switch op.Op {
	case "insert":
		return db.opInsert(tx, op)
	case "select":
		return db.opSelect(op)
	case "update":
		return db.opUpdate(tx, op)
	case "mutate":
		return db.opMutate(tx, op)
	case "delete":
		return db.opDelete(tx, op)
	case "wait":
		return db.opWait(op)
	case "comment":
		return OpResult{}
	case "abort":
		return OpResult{Error: "aborted", Details: "aborted by request"}
	default:
		return OpResult{Error: "unknown operation", Details: op.Op}
	}
}

func (db *Database) tableSchema(name string) (*TableSchema, map[UUID]Row, error) {
	ts := db.schema.Tables[name]
	if ts == nil {
		return nil, nil, fmt.Errorf("no table %q", name)
	}
	return ts, db.tables[name], nil
}

// parseRow converts a JSON row object into typed column values.
func parseRow(ts *TableSchema, raw map[string]any) (Row, error) {
	row := make(Row, len(raw))
	for col, rv := range raw {
		cs := ts.Columns[col]
		if cs == nil {
			return nil, fmt.Errorf("unknown column %q", col)
		}
		v, err := ValueFromJSON(rv, &cs.Type)
		if err != nil {
			return nil, fmt.Errorf("column %q: %w", col, err)
		}
		if err := cs.Type.CheckValue(v); err != nil {
			return nil, fmt.Errorf("column %q: %w", col, err)
		}
		row[col] = v
	}
	return row, nil
}

func (db *Database) opInsert(tx *txn, op *Operation) OpResult {
	ts, table, err := db.tableSchema(op.Table)
	if err != nil {
		return OpResult{Error: "unknown table", Details: err.Error()}
	}
	row, err := parseRow(ts, op.Row)
	if err != nil {
		return OpResult{Error: "constraint violation", Details: err.Error()}
	}
	// Fill defaults.
	for col, cs := range ts.Columns {
		if _, ok := row[col]; !ok {
			row[col] = cs.Type.DefaultValue()
		}
	}
	if ts.MaxRows > 0 && len(table) >= ts.MaxRows {
		return OpResult{Error: "constraint violation",
			Details: fmt.Sprintf("table %q is full (maxRows %d)", op.Table, ts.MaxRows)}
	}
	id := NewUUID()
	if err := db.reindexRow(op.Table, ts, id, nil, row); err != nil {
		return OpResult{Error: "constraint violation", Details: err.Error()}
	}
	if op.UUIDName != "" {
		if _, dup := tx.named[op.UUIDName]; dup {
			return OpResult{Error: "duplicate uuid-name", Details: op.UUIDName}
		}
		tx.named[op.UUIDName] = id
	}
	tx.change(op.Table, id) // records old == nil
	table[id] = row
	return OpResult{UUID: []any{"uuid", string(id)}}
}

// matchRows returns the UUIDs of rows satisfying all where clauses, sorted
// for determinism.
func (db *Database) matchRows(tx *txn, name string, ts *TableSchema, table map[UUID]Row, where [][3]json.RawMessage) ([]UUID, error) {
	conds, err := parseConditions(tx, ts, where)
	if err != nil {
		return nil, err
	}
	// Fastpath: a lone equality condition on a declared single-column
	// index resolves through the index map the database already
	// maintains for uniqueness — O(1) instead of a table scan. Scalar
	// columns only, so the index key matches the condition value's key
	// without set/atom normalization.
	if len(conds) == 1 && conds[0].op == "==" && !conds[0].isUUID {
		c := &conds[0]
		if cs := ts.Columns[c.column]; cs != nil && cs.Type.Min == 1 && cs.Type.Max == 1 {
			if _, isSet := c.value.(*Set); !isSet {
				for i, cols := range ts.Indexes {
					if len(cols) != 1 || cols[0] != c.column {
						continue
					}
					id, ok := db.idx[name][i][valueKey(c.value)+"\x00"]
					if !ok {
						return nil, nil
					}
					if _, live := table[id]; !live {
						return nil, nil
					}
					return []UUID{id}, nil
				}
			}
		}
	}
	var out []UUID
	for id, row := range table {
		ok := true
		for _, c := range conds {
			m, err := c.matches(id, row)
			if err != nil {
				return nil, err
			}
			if !m {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

func (db *Database) opSelect(op *Operation) OpResult {
	ts, table, err := db.tableSchema(op.Table)
	if err != nil {
		return OpResult{Error: "unknown table", Details: err.Error()}
	}
	ids, err := db.matchRows(nil, op.Table, ts, table, op.Where)
	if err != nil {
		return OpResult{Error: "constraint violation", Details: err.Error()}
	}
	rows := make([]map[string]any, 0, len(ids))
	for _, id := range ids {
		rows = append(rows, rowToJSON(ts, id, table[id], op.Columns))
	}
	return OpResult{Rows: rows}
}

func (db *Database) opUpdate(tx *txn, op *Operation) OpResult {
	ts, table, err := db.tableSchema(op.Table)
	if err != nil {
		return OpResult{Error: "unknown table", Details: err.Error()}
	}
	newVals, err := parseRow(ts, op.Row)
	if err != nil {
		return OpResult{Error: "constraint violation", Details: err.Error()}
	}
	for col := range newVals {
		if !ts.Columns[col].Mutable {
			return OpResult{Error: "constraint violation",
				Details: fmt.Sprintf("column %q is immutable", col)}
		}
	}
	ids, err := db.matchRows(tx, op.Table, ts, table, op.Where)
	if err != nil {
		return OpResult{Error: "constraint violation", Details: err.Error()}
	}
	for _, id := range ids {
		tx.change(op.Table, id)
		row := table[id].clone()
		for col, v := range newVals {
			row[col] = v
		}
		if err := db.reindexRow(op.Table, ts, id, table[id], row); err != nil {
			return OpResult{Error: "constraint violation", Details: err.Error()}
		}
		table[id] = row
	}
	return OpResult{Count: len(ids)}
}

func (db *Database) opDelete(tx *txn, op *Operation) OpResult {
	ts, table, err := db.tableSchema(op.Table)
	if err != nil {
		return OpResult{Error: "unknown table", Details: err.Error()}
	}
	ids, err := db.matchRows(tx, op.Table, ts, table, op.Where)
	if err != nil {
		return OpResult{Error: "constraint violation", Details: err.Error()}
	}
	for _, id := range ids {
		tx.change(op.Table, id)
		if err := db.reindexRow(op.Table, ts, id, table[id], nil); err != nil {
			return OpResult{Error: "constraint violation", Details: err.Error()}
		}
		delete(table, id)
	}
	return OpResult{Count: len(ids)}
}

func (db *Database) opWait(op *Operation) OpResult {
	ts, table, err := db.tableSchema(op.Table)
	if err != nil {
		return OpResult{Error: "unknown table", Details: err.Error()}
	}
	ids, err := db.matchRows(nil, op.Table, ts, table, op.Where)
	if err != nil {
		return OpResult{Error: "constraint violation", Details: err.Error()}
	}
	cols := op.Columns
	if cols == nil {
		for c := range ts.Columns {
			cols = append(cols, c)
		}
	}
	// Project matched rows onto the requested columns.
	got := make([]Row, 0, len(ids))
	for _, id := range ids {
		proj := make(Row, len(cols))
		for _, c := range cols {
			proj[c] = table[id][c]
		}
		got = append(got, proj)
	}
	want := make([]Row, 0, len(op.Rows))
	for _, raw := range op.Rows {
		row, err := parseRow(ts, raw)
		if err != nil {
			return OpResult{Error: "constraint violation", Details: err.Error()}
		}
		want = append(want, row)
	}
	equal := rowMultisetEqual(got, want)
	switch op.Until {
	case "==":
		if !equal {
			return OpResult{Error: "timed out", Details: "rows do not match"}
		}
	case "!=":
		if equal {
			return OpResult{Error: "timed out", Details: "rows match"}
		}
	default:
		return OpResult{Error: "constraint violation", Details: "until must be == or !="}
	}
	return OpResult{}
}

func rowMultisetEqual(a, b []Row) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(r Row) string {
		cols := make([]string, 0, len(r))
		for c := range r {
			cols = append(cols, c)
		}
		sort.Strings(cols)
		s := ""
		for _, c := range cols {
			s += c + "=" + valueKey(r[c]) + ";"
		}
		return s
	}
	counts := make(map[string]int, len(a))
	for _, r := range a {
		counts[key(r)]++
	}
	for _, r := range b {
		counts[key(r)]--
	}
	for _, n := range counts {
		if n != 0 {
			return false
		}
	}
	return true
}

// rowToJSON renders a row (with _uuid) as a JSON object, optionally
// projected onto columns.
func rowToJSON(ts *TableSchema, id UUID, row Row, columns []string) map[string]any {
	out := make(map[string]any)
	if columns == nil {
		out["_uuid"] = []any{"uuid", string(id)}
		for col, v := range row {
			out[col] = ValueToJSON(v)
		}
		return out
	}
	for _, col := range columns {
		if col == "_uuid" {
			out["_uuid"] = []any{"uuid", string(id)}
			continue
		}
		if v, ok := row[col]; ok {
			out[col] = ValueToJSON(v)
		}
	}
	return out
}

// Get returns a copy of a row by UUID (primarily for tests and tooling).
func (db *Database) Get(table string, id UUID) (Row, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[table]
	if !ok {
		return nil, false
	}
	row, ok := t[id]
	if !ok {
		return nil, false
	}
	return row.clone(), true
}

// RowCount returns the number of rows in a table.
func (db *Database) RowCount(table string) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.tables[table])
}
