package ovsdb

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/jsonrpc"
)

// Client is an OVSDB protocol client: transactions, schema introspection,
// and monitors with ordered update delivery.
type Client struct {
	conn *jsonrpc.Conn

	mu       sync.Mutex
	monitors map[string]func(uint64, TableUpdates)
	// updates queues decoded update notifications for the delivery
	// goroutine (see deliverUpdates); upWake signals a non-empty queue.
	updates []clientUpdate
	upWake  chan struct{}
}

// clientUpdate is one decoded update notification awaiting delivery.
type clientUpdate struct {
	monID string
	txn   uint64
	tu    TableUpdates
}

// Dial connects to an OVSDB server over TCP.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(nc), nil
}

// NewClient wraps an established byte stream.
func NewClient(rwc io.ReadWriteCloser) *Client {
	c := &Client{
		monitors: make(map[string]func(uint64, TableUpdates)),
		upWake:   make(chan struct{}, 1),
	}
	c.conn = jsonrpc.NewConn(rwc, jsonrpc.HandlerFunc(c.handle))
	go c.deliverUpdates()
	return c
}

// Close tears down the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Done is closed when the connection fails or is closed.
func (c *Client) Done() <-chan struct{} { return c.conn.Done() }

func (c *Client) handle(_ *jsonrpc.Conn, method string, params json.RawMessage) (any, *jsonrpc.RPCError) {
	switch method {
	case "echo":
		var v any
		_ = json.Unmarshal(params, &v)
		if v == nil {
			v = []any{}
		}
		return v, nil
	case "update":
		var raw []json.RawMessage
		if err := json.Unmarshal(params, &raw); err != nil || len(raw) < 2 {
			return nil, &jsonrpc.RPCError{Code: "bad params", Details: "update expects [id, updates]"}
		}
		monID := canonicalJSON(raw[0])
		var tu TableUpdates
		dec := json.NewDecoder(bytes.NewReader(raw[1]))
		dec.UseNumber()
		if err := dec.Decode(&tu); err != nil {
			return nil, &jsonrpc.RPCError{Code: "bad params", Details: err.Error()}
		}
		// Optional third element: the server-minted txn ID (this repo's
		// extension for cross-plane tracing). Absent or malformed → 0.
		var txn uint64
		if len(raw) >= 3 {
			_ = json.Unmarshal(raw[2], &txn)
		}
		// Queue for the delivery goroutine rather than calling the
		// callback here: handlers run on the connection's read loop, so
		// a callback that blocked on (or issued) an RPC on this same
		// connection would deadlock against its own reply.
		c.mu.Lock()
		c.updates = append(c.updates, clientUpdate{monID: monID, txn: txn, tu: tu})
		c.mu.Unlock()
		select {
		case c.upWake <- struct{}{}:
		default:
		}
		return nil, nil
	default:
		return nil, &jsonrpc.RPCError{Code: "unknown method", Details: method}
	}
}

// deliverUpdates forwards queued update notifications to their monitor
// callbacks in arrival (= commit) order, off the read loop. The
// resilient client's gap-replay resync relies on this: it holds its
// delivery lock while awaiting the monitor RPC reply, and an early live
// update must park here — not on the read loop — for the reply to be
// read at all.
func (c *Client) deliverUpdates() {
	for {
		c.mu.Lock()
		batch := c.updates
		c.updates = nil
		c.mu.Unlock()
		if len(batch) == 0 {
			select {
			case <-c.upWake:
				continue
			case <-c.conn.Done():
				// Final drain of anything queued before the connection died.
				c.mu.Lock()
				batch = c.updates
				c.updates = nil
				c.mu.Unlock()
				if len(batch) == 0 {
					return
				}
			}
		}
		for i := range batch {
			c.mu.Lock()
			cb := c.monitors[batch[i].monID]
			c.mu.Unlock()
			if cb != nil {
				cb(batch[i].txn, batch[i].tu)
			}
		}
	}
}

// ListDbs returns the names of the hosted databases.
func (c *Client) ListDbs() ([]string, error) {
	var out []string
	if err := c.conn.Call("list_dbs", []any{}, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// GetSchema fetches and parses a database schema.
func (c *Client) GetSchema(db string) (*DatabaseSchema, error) {
	var raw json.RawMessage
	if err := c.conn.Call("get_schema", []any{db}, &raw); err != nil {
		return nil, err
	}
	return ParseSchema(raw)
}

// Echo round-trips a keepalive.
func (c *Client) Echo() error {
	var out any
	return c.conn.Call("echo", []any{"ping"}, &out)
}

// SetCallTimeout bounds every RPC issued on this connection (0 = none).
func (c *Client) SetCallTimeout(d time.Duration) { c.conn.SetCallTimeout(d) }

// StartKeepalive begins echo heartbeats on the connection: misses
// consecutive failures fail it (see jsonrpc.Conn.StartKeepalive).
func (c *Client) StartKeepalive(interval time.Duration, misses int) {
	c.conn.StartKeepalive(interval, misses)
}

// Transact runs operations against the named database and parses the
// per-operation results.
func (c *Client) Transact(db string, ops ...Operation) ([]OpResult, error) {
	params := make([]any, 0, len(ops)+1)
	params = append(params, db)
	for i := range ops {
		params = append(params, &ops[i])
	}
	var raw []json.RawMessage
	if err := c.conn.Call("transact", params, &raw); err != nil {
		return nil, err
	}
	results := make([]OpResult, len(raw))
	for i, r := range raw {
		res, err := parseOpResult(r)
		if err != nil {
			return nil, err
		}
		results[i] = res
	}
	return results, nil
}

// TransactErr is like Transact but turns any per-operation error into a Go
// error.
func (c *Client) TransactErr(db string, ops ...Operation) ([]OpResult, error) {
	results, err := c.Transact(db, ops...)
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		if r.Error != "" {
			return results, fmt.Errorf("ovsdb: operation %d failed: %s (%s)", i, r.Error, r.Details)
		}
	}
	return results, nil
}

func parseOpResult(raw json.RawMessage) (OpResult, error) {
	var m struct {
		Count   *int             `json:"count"`
		UUID    []any            `json:"uuid"`
		Rows    []map[string]any `json:"rows"`
		Error   string           `json:"error"`
		Details string           `json:"details"`
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	if err := dec.Decode(&m); err != nil {
		return OpResult{}, fmt.Errorf("ovsdb: bad operation result: %w", err)
	}
	res := OpResult{Rows: m.Rows, Error: m.Error, Details: m.Details}
	if m.Count != nil {
		res.Count = *m.Count
	}
	if len(m.UUID) == 2 {
		if s, ok := m.UUID[1].(string); ok {
			res.UUID = UUID(s)
		}
	}
	return res, nil
}

// Monitor registers a monitor and returns the initial contents. Updates
// are delivered to cb in commit order on the connection's read loop; cb
// must not block on calls back into this client.
func (c *Client) Monitor(db string, id any, requests map[string]*MonitorRequest, cb func(TableUpdates)) (TableUpdates, error) {
	return c.MonitorTxn(db, id, requests, func(_ uint64, tu TableUpdates) { cb(tu) })
}

// MonitorTxn is Monitor with transaction-aware delivery: cb additionally
// receives the txn ID the server minted at commit (0 when the server does
// not send one), enabling cross-plane trace correlation.
func (c *Client) MonitorTxn(db string, id any, requests map[string]*MonitorRequest, cb func(uint64, TableUpdates)) (TableUpdates, error) {
	idRaw, err := json.Marshal(id)
	if err != nil {
		return nil, err
	}
	monID := canonicalJSON(idRaw)
	c.mu.Lock()
	if _, dup := c.monitors[monID]; dup {
		c.mu.Unlock()
		return nil, fmt.Errorf("ovsdb: duplicate monitor id %s", monID)
	}
	c.monitors[monID] = cb
	c.mu.Unlock()

	var raw json.RawMessage
	if err := c.conn.Call("monitor", []any{db, id, requests}, &raw); err != nil {
		c.mu.Lock()
		delete(c.monitors, monID)
		c.mu.Unlock()
		return nil, err
	}
	var initial TableUpdates
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	if err := dec.Decode(&initial); err != nil {
		// Unregister on this failure path too: leaving the callback behind
		// would make every later monitor with the same id report a spurious
		// duplicate (and leak the closure for the connection's lifetime).
		c.mu.Lock()
		delete(c.monitors, monID)
		c.mu.Unlock()
		return nil, fmt.Errorf("ovsdb: bad initial monitor reply: %w", err)
	}
	return initial, nil
}

// MonitorSince is MonitorTxn with a transaction cursor (this repo's
// durability extension). since is the last transaction the caller has
// seen, NoCursor for none. When the server still retains every commit
// after since, found is true and gap carries them as per-transaction
// deltas; otherwise found is false and initial is a full snapshot.
// Either way lastTxn is the caller's new cursor. Live updates beyond
// lastTxn are delivered to cb as usual.
func (c *Client) MonitorSince(db string, id any, requests map[string]*MonitorRequest, since uint64, cb func(uint64, TableUpdates)) (found bool, lastTxn uint64, initial TableUpdates, gap []GapUpdate, err error) {
	idRaw, err := json.Marshal(id)
	if err != nil {
		return false, 0, nil, nil, err
	}
	monID := canonicalJSON(idRaw)
	c.mu.Lock()
	if _, dup := c.monitors[monID]; dup {
		c.mu.Unlock()
		return false, 0, nil, nil, fmt.Errorf("ovsdb: duplicate monitor id %s", monID)
	}
	c.monitors[monID] = cb
	c.mu.Unlock()
	// Every error path must unregister the callback (see MonitorTxn).
	fail := func(err error) (bool, uint64, TableUpdates, []GapUpdate, error) {
		c.mu.Lock()
		delete(c.monitors, monID)
		c.mu.Unlock()
		return false, 0, nil, nil, err
	}
	var raw []json.RawMessage
	if err := c.conn.Call("monitor", []any{db, id, requests, since}, &raw); err != nil {
		return fail(err)
	}
	if len(raw) != 3 {
		return fail(fmt.Errorf("ovsdb: bad cursor monitor reply: %d elements", len(raw)))
	}
	if err := json.Unmarshal(raw[0], &found); err != nil {
		return fail(fmt.Errorf("ovsdb: bad cursor monitor reply: %w", err))
	}
	if err := json.Unmarshal(raw[1], &lastTxn); err != nil {
		return fail(fmt.Errorf("ovsdb: bad cursor monitor reply: %w", err))
	}
	dec := json.NewDecoder(bytes.NewReader(raw[2]))
	dec.UseNumber()
	if found {
		gap = []GapUpdate{}
		if err := dec.Decode(&gap); err != nil {
			return fail(fmt.Errorf("ovsdb: bad monitor gap reply: %w", err))
		}
	} else if err := dec.Decode(&initial); err != nil {
		return fail(fmt.Errorf("ovsdb: bad initial monitor reply: %w", err))
	}
	return found, lastTxn, initial, gap, nil
}

// MonitorCancel cancels a previously registered monitor.
func (c *Client) MonitorCancel(id any) error {
	idRaw, err := json.Marshal(id)
	if err != nil {
		return err
	}
	monID := canonicalJSON(idRaw)
	c.mu.Lock()
	delete(c.monitors, monID)
	c.mu.Unlock()
	var out any
	return c.conn.Call("monitor_cancel", []any{id}, &out)
}

// --- Operation builders ---

// mustRaw marshals v, panicking on failure (values are always
// marshallable).
func mustRaw(v any) json.RawMessage {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}

// Cond builds a where clause [column, op, value] from a typed Value.
func Cond(column, op string, v Value) [3]json.RawMessage {
	return [3]json.RawMessage{mustRaw(column), mustRaw(op), mustRaw(ValueToJSON(v))}
}

// Mutation builds a mutation [column, mutator, value] from a typed Value.
func Mutation(column, mutator string, v Value) [3]json.RawMessage {
	return [3]json.RawMessage{mustRaw(column), mustRaw(mutator), mustRaw(ValueToJSON(v))}
}

// JSONRow converts typed column values to a JSON row object.
func JSONRow(row map[string]Value) map[string]any {
	out := make(map[string]any, len(row))
	for col, v := range row {
		out[col] = ValueToJSON(v)
	}
	return out
}

// OpInsert builds an insert operation.
func OpInsert(table string, row map[string]Value) Operation {
	return Operation{Op: "insert", Table: table, Row: JSONRow(row)}
}

// OpInsertNamed builds an insert with a named UUID usable later in the
// same transaction.
func OpInsertNamed(table, uuidName string, row map[string]Value) Operation {
	return Operation{Op: "insert", Table: table, Row: JSONRow(row), UUIDName: uuidName}
}

// OpSelect builds a select operation.
func OpSelect(table string, where ...[3]json.RawMessage) Operation {
	return Operation{Op: "select", Table: table, Where: where}
}

// OpUpdate builds an update operation.
func OpUpdate(table string, row map[string]Value, where ...[3]json.RawMessage) Operation {
	return Operation{Op: "update", Table: table, Row: JSONRow(row), Where: where}
}

// OpDelete builds a delete operation.
func OpDelete(table string, where ...[3]json.RawMessage) Operation {
	return Operation{Op: "delete", Table: table, Where: where}
}

// OpMutate builds a mutate operation.
func OpMutate(table string, mutations [][3]json.RawMessage, where ...[3]json.RawMessage) Operation {
	return Operation{Op: "mutate", Table: table, Mutations: mutations, Where: where}
}

// RowFromJSON converts a JSON row object (as found in monitor updates and
// select results) back to typed column values. Unknown columns (including
// _uuid) are skipped unless listed in the table schema.
func RowFromJSON(ts *TableSchema, obj map[string]any) (Row, error) {
	row := make(Row, len(obj))
	for col, rv := range obj {
		cs := ts.Columns[col]
		if cs == nil {
			continue
		}
		v, err := ValueFromJSON(rv, &cs.Type)
		if err != nil {
			return nil, fmt.Errorf("ovsdb: column %q: %w", col, err)
		}
		row[col] = v
	}
	return row, nil
}
