package ovsdb

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// BaseType is the type of an atom: integer, real, boolean, string, or uuid.
type BaseType struct {
	Type string
	// Enum restricts string/integer columns to a fixed set of values.
	Enum *Set
}

// ColumnType is the full type of a column per RFC 7047 §3.2.
type ColumnType struct {
	Key   BaseType
	Value *BaseType // non-nil for map columns
	Min   int       // 0 or 1
	Max   int       // >= 1, or Unlimited
}

// Unlimited is the Max value for unbounded sets and maps.
const Unlimited = -1

// IsScalar reports whether the column holds exactly one atom.
func (ct *ColumnType) IsScalar() bool {
	return ct.Value == nil && ct.Min == 1 && ct.Max == 1
}

// IsMap reports whether the column holds a map.
func (ct *ColumnType) IsMap() bool { return ct.Value != nil }

// ColumnSchema describes one column.
type ColumnSchema struct {
	Type      ColumnType
	Ephemeral bool
	Mutable   bool
}

// TableSchema describes one table.
type TableSchema struct {
	Columns map[string]*ColumnSchema
	MaxRows int
	IsRoot  bool
	// Indexes lists column sets whose values must be unique per row.
	Indexes [][]string
}

// DatabaseSchema is a parsed OVSDB schema.
type DatabaseSchema struct {
	Name    string
	Version string
	Tables  map[string]*TableSchema
}

// rawSchema mirrors the JSON schema format (.ovsschema files).
type rawSchema struct {
	Name    string              `json:"name"`
	Version string              `json:"version"`
	Tables  map[string]rawTable `json:"tables"`
}

type rawTable struct {
	Columns map[string]rawColumn `json:"columns"`
	MaxRows int                  `json:"maxRows"`
	IsRoot  bool                 `json:"isRoot"`
	Indexes [][]string           `json:"indexes"`
}

type rawColumn struct {
	Type      json.RawMessage `json:"type"`
	Ephemeral bool            `json:"ephemeral"`
	Mutable   *bool           `json:"mutable"`
}

type rawType struct {
	Key   json.RawMessage `json:"key"`
	Value json.RawMessage `json:"value"`
	Min   json.RawMessage `json:"min"`
	Max   json.RawMessage `json:"max"`
}

type rawBase struct {
	Type string          `json:"type"`
	Enum json.RawMessage `json:"enum"`
}

// ParseSchema parses an OVSDB schema document (.ovsschema JSON).
func ParseSchema(data []byte) (*DatabaseSchema, error) {
	var raw rawSchema
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("ovsdb: bad schema JSON: %w", err)
	}
	if raw.Name == "" {
		return nil, fmt.Errorf("ovsdb: schema has no name")
	}
	ds := &DatabaseSchema{
		Name:    raw.Name,
		Version: raw.Version,
		Tables:  make(map[string]*TableSchema, len(raw.Tables)),
	}
	for tname, tr := range raw.Tables {
		if len(tr.Columns) == 0 {
			return nil, fmt.Errorf("ovsdb: table %q has no columns", tname)
		}
		ts := &TableSchema{
			Columns: make(map[string]*ColumnSchema, len(tr.Columns)),
			MaxRows: tr.MaxRows,
			IsRoot:  tr.IsRoot,
			Indexes: tr.Indexes,
		}
		for cname, cr := range tr.Columns {
			if cname == "_uuid" || cname == "_version" {
				return nil, fmt.Errorf("ovsdb: table %q declares reserved column %q", tname, cname)
			}
			ct, err := parseColumnType(cr.Type)
			if err != nil {
				return nil, fmt.Errorf("ovsdb: table %q column %q: %w", tname, cname, err)
			}
			cs := &ColumnSchema{Type: *ct, Ephemeral: cr.Ephemeral, Mutable: true}
			if cr.Mutable != nil {
				cs.Mutable = *cr.Mutable
			}
			ts.Columns[cname] = cs
		}
		for _, idx := range tr.Indexes {
			for _, col := range idx {
				if _, ok := ts.Columns[col]; !ok {
					return nil, fmt.Errorf("ovsdb: table %q index references unknown column %q", tname, col)
				}
			}
		}
		ds.Tables[tname] = ts
	}
	return ds, nil
}

func parseColumnType(raw json.RawMessage) (*ColumnType, error) {
	if len(raw) == 0 {
		return nil, fmt.Errorf("missing type")
	}
	// A type may be a plain string ("integer") or a full object.
	var s string
	if err := json.Unmarshal(raw, &s); err == nil {
		if !validBase(s) {
			return nil, fmt.Errorf("unknown atomic type %q", s)
		}
		return &ColumnType{Key: BaseType{Type: s}, Min: 1, Max: 1}, nil
	}
	var rt rawType
	if err := json.Unmarshal(raw, &rt); err != nil {
		return nil, fmt.Errorf("bad type: %w", err)
	}
	key, err := parseBase(rt.Key)
	if err != nil {
		return nil, fmt.Errorf("key: %w", err)
	}
	ct := &ColumnType{Key: *key, Min: 1, Max: 1}
	if rt.Value != nil {
		val, err := parseBase(rt.Value)
		if err != nil {
			return nil, fmt.Errorf("value: %w", err)
		}
		ct.Value = val
	}
	if rt.Min != nil {
		var m int
		if err := json.Unmarshal(rt.Min, &m); err != nil || m < 0 || m > 1 {
			return nil, fmt.Errorf("bad min %s", rt.Min)
		}
		ct.Min = m
	}
	if rt.Max != nil {
		var m int
		if err := json.Unmarshal(rt.Max, &m); err == nil {
			if m < 1 {
				return nil, fmt.Errorf("bad max %d", m)
			}
			ct.Max = m
		} else {
			var s string
			if err := json.Unmarshal(rt.Max, &s); err != nil || s != "unlimited" {
				return nil, fmt.Errorf("bad max %s", rt.Max)
			}
			ct.Max = Unlimited
		}
	}
	if ct.Max != Unlimited && ct.Max < ct.Min {
		return nil, fmt.Errorf("max %d < min %d", ct.Max, ct.Min)
	}
	return ct, nil
}

func parseBase(raw json.RawMessage) (*BaseType, error) {
	if len(raw) == 0 {
		return nil, fmt.Errorf("missing base type")
	}
	var s string
	if err := json.Unmarshal(raw, &s); err == nil {
		if !validBase(s) {
			return nil, fmt.Errorf("unknown atomic type %q", s)
		}
		return &BaseType{Type: s}, nil
	}
	var rb rawBase
	if err := json.Unmarshal(raw, &rb); err != nil {
		return nil, fmt.Errorf("bad base type: %w", err)
	}
	if !validBase(rb.Type) {
		return nil, fmt.Errorf("unknown atomic type %q", rb.Type)
	}
	bt := &BaseType{Type: rb.Type}
	if rb.Enum != nil {
		dec := json.NewDecoder(bytes.NewReader(rb.Enum))
		dec.UseNumber()
		var ev any
		if err := dec.Decode(&ev); err != nil {
			return nil, fmt.Errorf("bad enum: %w", err)
		}
		v, err := ValueFromJSON(ev, &ColumnType{Key: BaseType{Type: rb.Type}, Min: 0, Max: Unlimited})
		if err != nil {
			return nil, fmt.Errorf("bad enum: %w", err)
		}
		set, ok := v.(*Set)
		if !ok {
			set = NewSet(v)
		}
		bt.Enum = set
	}
	return bt, nil
}

func validBase(s string) bool {
	switch s {
	case "integer", "real", "boolean", "string", "uuid":
		return true
	}
	return false
}

// DefaultValue returns the value a column takes when an insert omits it.
// Shared empty-collection defaults. Values are copy-on-write everywhere
// (mutateValue and the update path build fresh collections instead of
// modifying in place), so every defaulted column can reference the same
// empty set or map.
var (
	defaultEmptySet = NewSet()
	defaultEmptyMap = NewMap()
)

func (ct *ColumnType) DefaultValue() Value {
	if ct.IsMap() {
		return defaultEmptyMap
	}
	if ct.IsScalar() {
		switch ct.Key.Type {
		case "integer":
			return int64(0)
		case "real":
			return float64(0)
		case "boolean":
			return false
		case "string":
			return ""
		case "uuid":
			return ZeroUUID
		}
	}
	return defaultEmptySet
}

// CheckValue validates a value against the column type, including
// cardinality and enum constraints.
func (ct *ColumnType) CheckValue(v Value) error {
	checkAtom := func(a Atom, bt *BaseType) error {
		want := bt.Type
		ok := false
		switch a.(type) {
		case int64:
			ok = want == "integer"
		case float64:
			ok = want == "real"
		case bool:
			ok = want == "boolean"
		case string:
			ok = want == "string"
		case UUID, namedUUID:
			ok = want == "uuid"
		}
		if !ok {
			return fmt.Errorf("ovsdb: %v is not a valid %s", a, want)
		}
		if bt.Enum != nil {
			if _, isNamed := a.(namedUUID); !isNamed && !bt.Enum.Contains(a) {
				return fmt.Errorf("ovsdb: %v is not among the enum values", a)
			}
		}
		return nil
	}
	switch v := v.(type) {
	case *Set:
		if ct.IsMap() {
			return fmt.Errorf("ovsdb: set value for map column")
		}
		if err := ct.checkCardinality(len(v.Atoms)); err != nil {
			return err
		}
		for _, a := range v.Atoms {
			if err := checkAtom(a, &ct.Key); err != nil {
				return err
			}
		}
		return nil
	case *Map:
		if !ct.IsMap() {
			return fmt.Errorf("ovsdb: map value for non-map column")
		}
		if err := ct.checkCardinality(len(v.Pairs)); err != nil {
			return err
		}
		for _, p := range v.Pairs {
			if err := checkAtom(p[0], &ct.Key); err != nil {
				return err
			}
			if err := checkAtom(p[1], ct.Value); err != nil {
				return err
			}
		}
		return nil
	default:
		if ct.IsMap() {
			return fmt.Errorf("ovsdb: atom value for map column")
		}
		if !ct.IsScalar() && ct.Max != 1 {
			// A bare atom is acceptable for a set column (singleton set),
			// mirroring the JSON encoding.
			return checkAtom(v, &ct.Key)
		}
		return checkAtom(v, &ct.Key)
	}
}

func (ct *ColumnType) checkCardinality(n int) error {
	if n < ct.Min {
		return fmt.Errorf("ovsdb: %d elements, need at least %d", n, ct.Min)
	}
	if ct.Max != Unlimited && n > ct.Max {
		return fmt.Errorf("ovsdb: %d elements, allowed at most %d", n, ct.Max)
	}
	return nil
}
