package ovsdb

import (
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ErrDisconnected is returned by RPCs issued while the resilient client
// has no live connection (it is redialing in the background).
var ErrDisconnected = errors.New("ovsdb: disconnected")

// ErrClosed is returned by RPCs issued after Close.
var ErrClosed = errors.New("ovsdb: client closed")

// ResilientConfig configures a self-healing OVSDB client.
type ResilientConfig struct {
	// Addr is the server address passed to Dial on every (re)connection.
	Addr string
	// Dial establishes the byte stream; nil selects TCP. Tests substitute
	// fault-injecting dialers here.
	Dial func(addr string) (io.ReadWriteCloser, error)
	// BackoffMin/BackoffMax bound the exponential redial backoff
	// (defaults 50ms and 5s). Each wait is jittered to half-to-full of
	// the current backoff so a fleet of controllers does not redial in
	// lockstep after a server restart.
	BackoffMin time.Duration
	BackoffMax time.Duration
	// CallTimeout bounds every RPC on every connection (0 = no deadline).
	CallTimeout time.Duration
	// KeepaliveInterval enables echo heartbeats on every connection
	// (0 = disabled); KeepaliveMisses heartbeat failures in a row fail
	// the connection (minimum 1).
	KeepaliveInterval time.Duration
	KeepaliveMisses   int
	// Obs receives ovsdb_reconnects_total / ovsdb_disconnected and the
	// conn.drop / conn.redial / conn.resync events; the client also
	// flags itself in the observer's degraded set while down. nil
	// disables all instrumentation.
	Obs *obs.Observer
	// Name keys this connection in the observer's degraded set
	// (default "ovsdb").
	Name string
}

// monState is the monitor the resilient client re-establishes after every
// reconnection, plus the row cache the resync diff runs against. The
// cache mirrors exactly what the server has told us: projected New rows
// from the initial snapshot and every subsequent update.
type monState struct {
	db       string
	id       any
	requests map[string]*MonitorRequest
	cb       func(uint64, TableUpdates)
	// cache is table → row UUID → projected row (wire JSON form).
	cache map[string]map[string]map[string]any
	// lastTxn is the resumption cursor: the newest transaction the
	// cache reflects. Reconnection passes it as the monitor's since so
	// a server retaining the gap replays only the missed commits.
	lastTxn uint64
}

// ResilientClient wraps Client with automatic redial and monitor
// re-establishment. On connection loss it redials with jittered
// exponential backoff, re-issues the monitor, diffs the fresh snapshot
// against the cached row state, and delivers the difference to the
// monitor callback as synthetic updates — so a subscriber that survives
// the outage converges to the server's current state without replaying
// it from scratch and without seeing phantom changes for unchanged rows.
//
// Done() fires only on Close, never on transient connection loss: the
// whole point is that subscribers outlive individual connections.
type ResilientClient struct {
	cfg ResilientConfig

	mu     sync.Mutex
	cur    *Client
	closed bool

	// monMu serializes monitor registration, cache mutation, and
	// callback delivery, so synthetic resync updates and live updates
	// never interleave out of order. monGen counts monitor
	// registrations: each connection's delivery callback is bound to the
	// generation it was registered under, so updates still queued from a
	// dead connection are dropped instead of being applied after a
	// resync has already advanced the cache past them.
	monMu  sync.Mutex
	mon    *monState
	monGen uint64

	done      chan struct{}
	closeOnce sync.Once

	mReconnects   *obs.Counter
	gDisconnected *obs.Gauge
	mGapReplays   *obs.Counter
	mSnapResyncs  *obs.Counter
	rec           *obs.Recorder

	// Resync-path counts mirrored outside obs so tests and tooling can
	// assert how reconnections resynchronized.
	nGapReplays  atomic.Uint64
	nSnapResyncs atomic.Uint64
}

// DialResilient connects to the server and starts the supervision loop.
// The initial dial fails fast (a misconfigured address should not retry
// forever); only established sessions self-heal.
func DialResilient(cfg ResilientConfig) (*ResilientClient, error) {
	r := &ResilientClient{cfg: cfg, done: make(chan struct{})}
	reg := cfg.Obs.Reg()
	r.mReconnects = reg.Counter("ovsdb_reconnects_total",
		"Successful OVSDB session re-establishments after connection loss.")
	r.gDisconnected = reg.Gauge("ovsdb_disconnected",
		"1 while the OVSDB connection is down and redialing, else 0.")
	r.mGapReplays = reg.Counter("ovsdb_gap_replays_total",
		"Reconnections resumed by monitor gap replay (cursor within the retained window).")
	r.mSnapResyncs = reg.Counter("ovsdb_snapshot_resyncs_total",
		"Reconnections that fell back to a full snapshot-diff resync.")
	r.rec = cfg.Obs.Rec()
	c, err := r.connect()
	if err != nil {
		return nil, err
	}
	r.cur = c
	go r.supervise()
	return r, nil
}

func (r *ResilientClient) name() string {
	if r.cfg.Name != "" {
		return r.cfg.Name
	}
	return "ovsdb"
}

func (r *ResilientClient) connect() (*Client, error) {
	dial := r.cfg.Dial
	if dial == nil {
		dial = func(addr string) (io.ReadWriteCloser, error) { return net.Dial("tcp", addr) }
	}
	rwc, err := dial(r.cfg.Addr)
	if err != nil {
		return nil, err
	}
	c := NewClient(rwc)
	if r.cfg.CallTimeout > 0 {
		c.conn.SetCallTimeout(r.cfg.CallTimeout)
	}
	if r.cfg.KeepaliveInterval > 0 {
		c.conn.StartKeepalive(r.cfg.KeepaliveInterval, r.cfg.KeepaliveMisses)
	}
	return c, nil
}

// client returns the live connection or the reason there is none.
func (r *ResilientClient) client() (*Client, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClosed
	}
	if r.cur == nil {
		return nil, ErrDisconnected
	}
	return r.cur, nil
}

// Close permanently shuts the client down; the redial loop stops and
// Done() fires.
func (r *ResilientClient) Close() error {
	r.mu.Lock()
	r.closed = true
	c := r.cur
	r.cur = nil
	r.mu.Unlock()
	r.closeOnce.Do(func() { close(r.done) })
	if c != nil {
		return c.Close()
	}
	return nil
}

// Done fires when the client is closed (not on transient disconnects).
func (r *ResilientClient) Done() <-chan struct{} { return r.done }

// Connected reports whether a live connection is currently established.
func (r *ResilientClient) Connected() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cur != nil && !r.closed
}

// --- RPC passthroughs (valid only while connected) ---

// ListDbs returns the names of the hosted databases.
func (r *ResilientClient) ListDbs() ([]string, error) {
	c, err := r.client()
	if err != nil {
		return nil, err
	}
	return c.ListDbs()
}

// GetSchema fetches and parses a database schema.
func (r *ResilientClient) GetSchema(db string) (*DatabaseSchema, error) {
	c, err := r.client()
	if err != nil {
		return nil, err
	}
	return c.GetSchema(db)
}

// Echo round-trips a keepalive on the current connection.
func (r *ResilientClient) Echo() error {
	c, err := r.client()
	if err != nil {
		return err
	}
	return c.Echo()
}

// Transact runs operations against the named database.
func (r *ResilientClient) Transact(db string, ops ...Operation) ([]OpResult, error) {
	c, err := r.client()
	if err != nil {
		return nil, err
	}
	return c.Transact(db, ops...)
}

// TransactErr is Transact with per-operation errors folded into the
// returned error.
func (r *ResilientClient) TransactErr(db string, ops ...Operation) ([]OpResult, error) {
	c, err := r.client()
	if err != nil {
		return nil, err
	}
	return c.TransactErr(db, ops...)
}

// --- Monitor with resync ---

// Monitor registers the client's single self-healing monitor (see
// MonitorTxn).
func (r *ResilientClient) Monitor(db string, id any, requests map[string]*MonitorRequest, cb func(TableUpdates)) (TableUpdates, error) {
	return r.MonitorTxn(db, id, requests, func(_ uint64, tu TableUpdates) { cb(tu) })
}

// MonitorTxn registers the client's single self-healing monitor: it is
// re-established after every reconnection, with the difference between
// the fresh snapshot and the last observed state delivered to cb as one
// synthetic update (txn 0). Updates — live and synthetic — are delivered
// strictly serialized.
func (r *ResilientClient) MonitorTxn(db string, id any, requests map[string]*MonitorRequest, cb func(uint64, TableUpdates)) (TableUpdates, error) {
	c, err := r.client()
	if err != nil {
		return nil, err
	}
	r.monMu.Lock()
	defer r.monMu.Unlock()
	if r.mon != nil {
		return nil, errors.New("ovsdb: resilient client supports a single monitor")
	}
	// NoCursor: a first registration wants the full snapshot; the reply's
	// lastTxn seeds the resumption cursor for later reconnections.
	r.monGen++
	_, lastTxn, initial, _, err := c.MonitorSince(db, id, requests, NoCursor, r.bind(r.monGen))
	if err != nil {
		return nil, err
	}
	r.mon = &monState{db: db, id: id, requests: requests, cb: cb, cache: cacheOf(initial), lastTxn: lastTxn}
	return initial, nil
}

// bind returns the delivery callback for one underlying connection,
// tied to the monitor generation it was registered under.
func (r *ResilientClient) bind(gen uint64) func(uint64, TableUpdates) {
	return func(txn uint64, tu TableUpdates) { r.deliver(gen, txn, tu) }
}

// deliver is the callback registered on every underlying connection: it
// folds the update into the row cache and forwards it, all under monMu
// so resync diffs see a consistent cache. Updates from a superseded
// generation — queued in a dead connection's delivery goroutine while a
// resync held monMu — are dropped: the resync that bumped the
// generation already covered them, and applying them late would roll
// the cache back to stale row images and replay txns out of order.
func (r *ResilientClient) deliver(gen, txn uint64, tu TableUpdates) {
	r.monMu.Lock()
	defer r.monMu.Unlock()
	if r.mon == nil || gen != r.monGen {
		return
	}
	r.mon.apply(tu)
	if txn > r.mon.lastTxn {
		r.mon.lastTxn = txn
	}
	r.mon.cb(txn, tu)
}

// ResyncStats reports how completed reconnections resynchronized the
// monitor: by replaying only the missed commits from the server's gap
// window, or by falling back to a full snapshot diff.
func (r *ResilientClient) ResyncStats() (gapReplays, snapshotResyncs uint64) {
	return r.nGapReplays.Load(), r.nSnapResyncs.Load()
}

// cacheOf seeds a row cache from an initial snapshot.
func cacheOf(initial TableUpdates) map[string]map[string]map[string]any {
	cache := make(map[string]map[string]map[string]any, len(initial))
	for table, tu := range initial {
		rows := make(map[string]map[string]any, len(tu))
		for uuid, ru := range tu {
			if ru.New != nil {
				rows[uuid] = ru.New
			}
		}
		cache[table] = rows
	}
	return cache
}

// apply folds one update into the cache. New carries the full selected
// row for inserts and modifies, so it replaces wholesale; a nil New is a
// delete.
func (m *monState) apply(tu TableUpdates) {
	for table, rows := range tu {
		cached := m.cache[table]
		if cached == nil {
			cached = make(map[string]map[string]any)
			m.cache[table] = cached
		}
		for uuid, ru := range rows {
			if ru.New != nil {
				cached[uuid] = ru.New
			} else {
				delete(cached, uuid)
			}
		}
	}
}

// rowEqual compares two wire-form rows structurally. Both sides were
// decoded from server JSON (numbers as json.Number), so marshaling is a
// faithful canonical form.
func rowEqual(a, b map[string]any) bool {
	ab, err1 := json.Marshal(a)
	bb, err2 := json.Marshal(b)
	return err1 == nil && err2 == nil && string(ab) == string(bb)
}

// diff computes the synthetic update turning the cached state into
// fresh, then replaces the cache with fresh. Deletes carry the full old
// row and modifies carry the full old row in Old (not just changed
// columns) — subscribers reconstructing old rows by overlaying Old onto
// New therefore see exactly the cached row.
func (m *monState) diff(fresh TableUpdates) TableUpdates {
	next := cacheOf(fresh)
	out := make(TableUpdates)
	tables := make(map[string]bool, len(m.cache)+len(next))
	for t := range m.cache {
		tables[t] = true
	}
	for t := range next {
		tables[t] = true
	}
	for t := range tables {
		oldRows, newRows := m.cache[t], next[t]
		tu := make(TableUpdate)
		for uuid, oldRow := range oldRows {
			newRow, ok := newRows[uuid]
			switch {
			case !ok:
				tu[uuid] = RowUpdate{Old: oldRow}
			case !rowEqual(oldRow, newRow):
				tu[uuid] = RowUpdate{Old: oldRow, New: newRow}
			}
		}
		for uuid, newRow := range newRows {
			if _, ok := oldRows[uuid]; !ok {
				tu[uuid] = RowUpdate{New: newRow}
			}
		}
		if len(tu) > 0 {
			out[t] = tu
		}
	}
	m.cache = next
	return out
}

// resync re-establishes the monitor on a fresh connection and delivers
// whatever the subscriber missed during the outage. Called before the
// connection is published, so RPC users never see a half-resynced
// session.
//
// The monitor is re-issued with the cursor of the last observed
// transaction. A server still retaining that point in its gap-replay
// window answers with only the missed commits, delivered here as
// ordinary per-transaction updates — resync work proportional to the
// outage, not to database size. When the cursor has been compacted away
// (or the server lost unsynced history), the reply is a full snapshot
// and the PR 5 snapshot-diff path takes over: the difference against
// the cached state goes out as one synthetic update (txn 0).
//
// Holding monMu while awaiting the monitor reply is safe: live updates
// arriving early park in the client's delivery goroutine, not on the
// connection's read loop.
func (r *ResilientClient) resync(c *Client) error {
	r.monMu.Lock()
	defer r.monMu.Unlock()
	if r.mon == nil {
		return nil
	}
	// Registering under a new generation invalidates the dead
	// connection's callback: anything it still has queued is covered by
	// this resync and must not be re-applied after it.
	r.monGen++
	found, lastTxn, fresh, gap, err := c.MonitorSince(r.mon.db, r.mon.id, r.mon.requests, r.mon.lastTxn, r.bind(r.monGen))
	if err != nil {
		return err
	}
	if found {
		rows := 0
		for _, g := range gap {
			for _, tu := range g.Updates {
				rows += len(tu)
			}
			r.mon.apply(g.Updates)
			if g.Txn > r.mon.lastTxn {
				r.mon.lastTxn = g.Txn
			}
			r.mon.cb(g.Txn, g.Updates)
		}
		if lastTxn > r.mon.lastTxn {
			r.mon.lastTxn = lastTxn
		}
		r.mGapReplays.Inc()
		r.nGapReplays.Add(1)
		r.rec.Append(obs.Ev("ovsdb", "conn.resync").
			F("gap", 1).
			F("txns", int64(len(gap))).
			F("rows", int64(rows)))
		return nil
	}
	diff := r.mon.diff(fresh)
	r.mon.lastTxn = lastTxn
	rows := 0
	for _, tu := range diff {
		rows += len(tu)
	}
	r.mSnapResyncs.Inc()
	r.nSnapResyncs.Add(1)
	r.rec.Append(obs.Ev("ovsdb", "conn.resync").
		F("gap", 0).
		F("tables", int64(len(diff))).
		F("rows", int64(rows)))
	if len(diff) > 0 {
		r.mon.cb(0, diff)
	}
	return nil
}

// supervise watches the live connection and heals it on failure.
func (r *ResilientClient) supervise() {
	for {
		r.mu.Lock()
		c := r.cur
		r.mu.Unlock()
		if c == nil {
			return // closed during redial
		}
		select {
		case <-c.Done():
		case <-r.done:
			return
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return
		}
		r.cur = nil
		r.mu.Unlock()
		r.gDisconnected.Set(1)
		r.cfg.Obs.SetDegraded(r.name(), "connection lost; reconnecting")
		r.rec.Append(obs.Ev("ovsdb", "conn.drop"))
		if !r.redial() {
			return
		}
	}
}

// redial reconnects with jittered exponential backoff until it succeeds
// (returning true) or the client is closed (false). Success means the
// monitor is re-established and resynced, not merely that TCP connected.
func (r *ResilientClient) redial() bool {
	backoff := r.cfg.BackoffMin
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	maxb := r.cfg.BackoffMax
	if maxb <= 0 {
		maxb = 5 * time.Second
	}
	attempts := 0
	for {
		// Jitter to [backoff/2, backoff): concurrent clients spread out.
		wait := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1))
		select {
		case <-r.done:
			return false
		case <-time.After(wait):
		}
		attempts++
		c, err := r.connect()
		if err == nil {
			if err = r.resync(c); err == nil {
				r.mu.Lock()
				if r.closed {
					r.mu.Unlock()
					c.Close()
					return false
				}
				r.cur = c
				r.mu.Unlock()
				r.mReconnects.Inc()
				r.gDisconnected.Set(0)
				r.cfg.Obs.ClearDegraded(r.name())
				r.rec.Append(obs.Ev("ovsdb", "conn.redial").
					F("attempts", int64(attempts)))
				return true
			}
			c.Close()
		}
		if backoff < maxb {
			backoff *= 2
			if backoff > maxb {
				backoff = maxb
			}
		}
	}
}
