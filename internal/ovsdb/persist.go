package ovsdb

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/obs"
	"repro/internal/ovsdb/wal"
)

// This file wires the database to its durability subsystem
// (internal/ovsdb/wal) and maintains the gap-replay window that backs
// monitor cursor resumption (AddMonitorSince).
//
// Per committed transaction the database captures one flat snapshot of
// the effective row changes — []changeRef — consumed by two readers:
// the WAL appender (rendered to a wire-form record) and the gap-replay
// window (retained verbatim). The snapshot buffers are pooled: the ring
// recycles the buffer of each entry it evicts, so steady-state commits
// reuse storage instead of allocating per commit.

// changeRef is one row transition in a committed transaction. The Row
// images are copy-on-write (writers clone before modifying), so holding
// them in the window pins memory but never observes later mutation.
type changeRef struct {
	table string
	id    UUID
	old   Row // nil for insert
	new   Row // nil for delete
}

// gapEntry is one committed transaction retained for gap replay.
type gapEntry struct {
	txn     uint64
	changes []changeRef
}

// defaultGapWindow is how many change-commits the database retains for
// monitor cursor resumption when SetGapWindow was not called.
const defaultGapWindow = 4096

var jsonNull = json.RawMessage("null")

// AttachWAL makes every subsequent committed transaction durable
// through l. Call at boot, after Restore and before serving: the log's
// last transaction must match the database's counter, or appends will
// be rejected as non-monotonic.
func (db *Database) AttachWAL(l *wal.Log) {
	db.mu.Lock()
	db.wal = l
	db.mu.Unlock()
}

// SetGapWindow bounds the number of change-commits retained for monitor
// cursor resumption (0 restores the default, negative disables the
// window). Call before serving transactions.
func (db *Database) SetGapWindow(n int) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if n < 0 {
		n = -1
	}
	db.winCap = n
}

// takeChangeBuf returns a recycled flat-change buffer, or nil (callers
// append, so a nil slice is a valid empty buffer). Called under db.mu.
func (db *Database) takeChangeBuf() []changeRef {
	if n := len(db.freeBufs); n > 0 {
		b := db.freeBufs[n-1]
		db.freeBufs = db.freeBufs[:n-1]
		return b
	}
	return nil
}

// recycleChangeBuf returns a buffer to the pool, dropping its row
// references so recycled storage does not pin evicted rows.
func (db *Database) recycleChangeBuf(buf []changeRef) {
	if cap(buf) == 0 || len(db.freeBufs) >= 4 {
		return
	}
	for i := range buf {
		buf[i] = changeRef{}
	}
	db.freeBufs = append(db.freeBufs, buf[:0])
}

// captureChanges flattens a commit's effective changes into the pooled
// flat form shared by the WAL appender and the gap window. Called under
// db.mu; the rowChange pointers are pooled transaction scratch, so the
// images are copied out here, before tx.release.
func (db *Database) captureChanges(changes map[string]map[UUID]*rowChange) []changeRef {
	flat := db.takeChangeBuf()
	for table, rows := range changes {
		for id, c := range rows {
			flat = append(flat, changeRef{table: table, id: id, old: c.old, new: c.new})
		}
	}
	return flat
}

// appendGapLocked retains one commit in the gap-replay ring, taking
// ownership of flat. Called under db.mu in commit order. winFloor
// tracks the newest dropped transaction: every change-commit with a
// higher txn is retained, which is exactly the cursor-coverage
// condition AddMonitorSince checks.
func (db *Database) appendGapLocked(txn uint64, flat []changeRef) {
	capn := db.winCap
	if capn == 0 {
		capn = defaultGapWindow
	}
	if capn < 0 {
		db.winFloor = txn
		db.recycleChangeBuf(flat)
		return
	}
	if db.win == nil {
		db.win = make([]gapEntry, capn)
	}
	if db.winCount == len(db.win) {
		ev := &db.win[db.winHead]
		db.winFloor = ev.txn
		db.recycleChangeBuf(ev.changes)
		*ev = gapEntry{}
		db.winHead = (db.winHead + 1) % len(db.win)
		db.winCount--
	}
	db.win[(db.winHead+db.winCount)%len(db.win)] = gapEntry{txn: txn, changes: flat}
	db.winCount++
}

// changesAsMap rebuilds the render-shaped change map from a retained
// gap entry. Resync-only path; allocation is acceptable here.
func changesAsMap(flat []changeRef) map[string]map[UUID]*rowChange {
	out := make(map[string]map[UUID]*rowChange)
	for i := range flat {
		c := &flat[i]
		m := out[c.table]
		if m == nil {
			m = make(map[UUID]*rowChange)
			out[c.table] = m
		}
		m[c.id] = &rowChange{old: c.old, new: c.new}
	}
	return out
}

// walAppendLocked renders the commit as a wire-form WAL record and
// enqueues it. Called under db.mu, in commit order; the caller waits on
// the returned durability ticket after releasing the lock, so group
// commit batches concurrent transactions behind one fsync.
func (db *Database) walAppendLocked(txnID uint64, flat []changeRef) <-chan error {
	rec := &wal.Record{Txn: txnID, Tables: make(map[string]map[string]json.RawMessage)}
	for i := range flat {
		c := &flat[i]
		t := rec.Tables[c.table]
		if t == nil {
			t = make(map[string]json.RawMessage)
			rec.Tables[c.table] = t
		}
		if c.new == nil {
			t[string(c.id)] = jsonNull
			continue
		}
		b, err := json.Marshal(projectRow(db.schema.Tables[c.table], c.new, nil))
		if err != nil {
			// Row values are always marshallable; a failure here is a
			// WAL fault, reported through the ticket like any other.
			done := make(chan error, 1)
			done <- fmt.Errorf("ovsdb: encoding row %s/%s for wal: %w", c.table, c.id, err)
			return done
		}
		t[string(c.id)] = b
	}
	ticket, wantSnapshot := db.wal.Append(rec)
	if wantSnapshot {
		db.captureSnapshotLocked(txnID)
	}
	return ticket
}

// captureSnapshotLocked hands the log a compaction job whose render
// closure sees the database exactly as of txnID: a per-table shallow
// copy of the row maps taken under db.mu (rows themselves are
// copy-on-write, so sharing them is safe). Rendering to JSON happens on
// the log's goroutines, off the commit path.
func (db *Database) captureSnapshotLocked(txnID uint64) {
	tables := make(map[string]map[UUID]Row, len(db.tables))
	for t, rows := range db.tables {
		cp := make(map[UUID]Row, len(rows))
		for id, row := range rows {
			cp[id] = row
		}
		tables[t] = cp
	}
	schema := db.schema
	db.wal.CompactAsync(func() (*wal.Snapshot, error) {
		s := &wal.Snapshot{Txn: txnID, Tables: make(map[string]map[string]json.RawMessage, len(tables))}
		for t, rows := range tables {
			ts := schema.Tables[t]
			out := make(map[string]json.RawMessage, len(rows))
			for id, row := range rows {
				b, err := json.Marshal(projectRow(ts, row, nil))
				if err != nil {
					return nil, fmt.Errorf("ovsdb: encoding row %s/%s for snapshot: %w", t, id, err)
				}
				out[string(id)] = b
			}
			s.Tables[t] = out
		}
		return s, nil
	})
}

// walFail latches the first WAL failure. The database keeps serving
// from memory — losing durability must not take the management plane
// down with it — but reports itself degraded and stops appending.
func (db *Database) walFail(err error) {
	db.mu.Lock()
	if db.walDead {
		db.mu.Unlock()
		return
	}
	db.walDead = true
	db.mu.Unlock()
	db.obs.SetDegraded("ovsdb-wal", "wal failed: "+err.Error())
	db.rec.Append(obs.Ev("ovsdb", "wal.fail"))
}

// WALHealthy reports whether an attached log is still accepting
// appends (true when no log is attached).
func (db *Database) WALHealthy() bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	return !db.walDead
}

// Restore loads recovered WAL state into an empty database: the
// snapshot rows, then the log tail replayed in commit order (which also
// seeds the gap-replay window, so clients whose cursor predates the
// crash can still resume by replay), and finally the transaction
// counter — txn IDs stay monotonic across restarts and trace or
// provenance attribution never aliases. Call once at boot, before
// AttachWAL and before serving.
func (db *Database) Restore(recov *wal.Recovered) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.txnSeq != 0 {
		return fmt.Errorf("ovsdb: restore into a database that already committed transactions")
	}
	for table, rows := range recov.Snapshot.Tables {
		ts := db.schema.Tables[table]
		if ts == nil {
			return fmt.Errorf("ovsdb: recovered snapshot references unknown table %q", table)
		}
		for id, raw := range rows {
			row, err := decodeWireRow(ts, raw)
			if err != nil {
				return fmt.Errorf("ovsdb: snapshot row %s/%s: %w", table, id, err)
			}
			if row != nil {
				db.tables[table][UUID(id)] = row
			}
		}
	}
	db.winFloor = recov.Snapshot.Txn
	for _, rec := range recov.Tail {
		flat := db.takeChangeBuf()
		for table, rows := range rec.Tables {
			ts := db.schema.Tables[table]
			if ts == nil {
				return fmt.Errorf("ovsdb: recovered txn %d references unknown table %q", rec.Txn, table)
			}
			for id, raw := range rows {
				uid := UUID(id)
				old := db.tables[table][uid]
				row, err := decodeWireRow(ts, raw)
				if err != nil {
					return fmt.Errorf("ovsdb: recovered txn %d row %s/%s: %w", rec.Txn, table, id, err)
				}
				if row == nil {
					delete(db.tables[table], uid)
				} else {
					db.tables[table][uid] = row
				}
				flat = append(flat, changeRef{table: table, id: uid, old: old, new: row})
			}
		}
		db.appendGapLocked(rec.Txn, flat)
	}
	for table := range db.tables {
		db.rebuildIndexes(table)
	}
	db.txnSeq = recov.LastTxn
	return nil
}

// decodeWireRow parses a WAL row image back into typed column values;
// a JSON null (the delete marker) returns (nil, nil). Columns the image
// omits get schema defaults, guarding replay of logs written before a
// column was added.
func decodeWireRow(ts *TableSchema, raw json.RawMessage) (Row, error) {
	trimmed := bytes.TrimSpace(raw)
	if string(trimmed) == "null" {
		return nil, nil
	}
	var obj map[string]any
	dec := json.NewDecoder(bytes.NewReader(trimmed))
	dec.UseNumber()
	if err := dec.Decode(&obj); err != nil {
		return nil, err
	}
	row, err := RowFromJSON(ts, obj)
	if err != nil {
		return nil, err
	}
	for col, cs := range ts.Columns {
		if _, ok := row[col]; !ok {
			row[col] = cs.Type.DefaultValue()
		}
	}
	return row, nil
}
