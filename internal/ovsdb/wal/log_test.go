package wal

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func rowRecord(txn uint64, table, id, name string) *Record {
	return &Record{
		Txn: txn,
		Tables: map[string]map[string]json.RawMessage{
			table: {id: json.RawMessage(fmt.Sprintf(`{"name":%q}`, name))},
		},
	}
}

func mustAppend(t *testing.T, l *Log, rec *Record) bool {
	t.Helper()
	ticket, wantSnap := l.Append(rec)
	if err := <-ticket; err != nil {
		t.Fatalf("append txn %d: %v", rec.Txn, err)
	}
	return wantSnap
}

func TestLogAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, recovered, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if recovered.LastTxn != 0 || len(recovered.Tail) != 0 || recovered.Truncated {
		t.Fatalf("fresh dir recovered %+v", recovered)
	}
	const n = 25
	for i := 1; i <= n; i++ {
		mustAppend(t, l, rowRecord(uint64(i), "Port", fmt.Sprintf("row-%d", i), fmt.Sprintf("p%d", i)))
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	l2, rec2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec2.LastTxn != n {
		t.Errorf("recovered LastTxn %d, want %d", rec2.LastTxn, n)
	}
	if len(rec2.Tail) != n {
		t.Fatalf("recovered %d tail records, want %d", len(rec2.Tail), n)
	}
	if rec2.Truncated || rec2.DroppedBytes != 0 {
		t.Errorf("clean log reported truncation: %+v", rec2)
	}
	for i, r := range rec2.Tail {
		want := uint64(i + 1)
		if r.Txn != want {
			t.Errorf("tail[%d].Txn = %d, want %d", i, r.Txn, want)
		}
		raw := r.Tables["Port"][fmt.Sprintf("row-%d", want)]
		if !strings.Contains(string(raw), fmt.Sprintf(`"p%d"`, want)) {
			t.Errorf("tail[%d] row payload %s", i, raw)
		}
	}
	// Appending resumes above the recovered txn.
	mustAppend(t, l2, rowRecord(n+1, "Port", "row-x", "px"))
}

// TestLogTornTail crashes mid-write (simulated by appending half a frame
// to the active segment) and asserts recovery drops exactly the torn
// suffix, truncates it from disk, and keeps everything before it.
func TestLogTornTail(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		mustAppend(t, l, rowRecord(uint64(i), "Port", fmt.Sprintf("row-%d", i), fmt.Sprintf("p%d", i)))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v (%v)", segs, err)
	}
	seg := segs[len(segs)-1]
	frame, err := AppendRecord(nil, rowRecord(6, "Port", "row-6", "p6"))
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := frame[:len(frame)-3]
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, rec2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("recovery refused a torn tail: %v", err)
	}
	if !rec2.Truncated || rec2.DroppedBytes != len(torn) {
		t.Errorf("Truncated=%v DroppedBytes=%d, want true/%d", rec2.Truncated, rec2.DroppedBytes, len(torn))
	}
	if rec2.LastTxn != 5 || len(rec2.Tail) != 5 {
		t.Errorf("recovered txn %d with %d records, want 5/5", rec2.LastTxn, len(rec2.Tail))
	}
	// The torn suffix is gone from disk: appending and re-recovering is
	// clean.
	mustAppend(t, l2, rowRecord(6, "Port", "row-6", "p6"))
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec3, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if rec3.Truncated || rec3.LastTxn != 6 {
		t.Errorf("third open: Truncated=%v LastTxn=%d, want clean/6", rec3.Truncated, rec3.LastTxn)
	}
}

// TestLogMidChainCorruption plants a bit flip in a non-final segment:
// that is real data loss, not a torn tail, and recovery must refuse to
// open rather than silently drop committed transactions.
func TestLogMidChainCorruption(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, txns ...uint64) {
		var buf []byte
		var err error
		for _, txn := range txns {
			buf, err = AppendRecord(buf, rowRecord(txn, "Port", fmt.Sprintf("row-%d", txn), "p"))
			if err != nil {
				t.Fatal(err)
			}
		}
		if err := os.WriteFile(filepath.Join(dir, name), buf, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(segName(1), 1, 2)
	write(segName(3), 3, 4)

	// Sanity: the hand-built chain recovers.
	l, rec, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if rec.LastTxn != 4 || len(rec.Tail) != 4 {
		t.Fatalf("hand-built chain recovered %+v", rec)
	}
	l.Close()

	data, err := os.ReadFile(filepath.Join(dir, segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	data[frameHeader+2] ^= 0xff // payload of the first record
	if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(Options{Dir: dir}); err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-chain corruption: got %v, want ErrCorrupt", err)
	}
}

// TestLogSnapshotCompaction drives enough appends through a small
// SnapshotEvery to trigger compaction and asserts the snapshot file
// covers the state, superseded segments are deleted, and recovery is
// snapshot + short tail rather than a full replay.
func TestLogSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir, SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	snapshots := 0
	for i := 1; i <= n; i++ {
		rec := rowRecord(uint64(i), "Port", fmt.Sprintf("row-%d", i), fmt.Sprintf("p%d", i))
		ticket, wantSnap := l.Append(rec)
		if wantSnap {
			snapshots++
			txn := rec.Txn
			l.CompactAsync(func() (*Snapshot, error) {
				// Render a state image equivalent to replaying 1..txn.
				tables := map[string]map[string]json.RawMessage{"Port": {}}
				for j := uint64(1); j <= txn; j++ {
					tables["Port"][fmt.Sprintf("row-%d", j)] =
						json.RawMessage(fmt.Sprintf(`{"name":"p%d"}`, j))
				}
				return &Snapshot{Txn: txn, Tables: tables}, nil
			})
		}
		if err := <-ticket; err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if snapshots == 0 {
		t.Fatal("SnapshotEvery=4 never requested a snapshot over 10 appends")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	snaps, _ := filepath.Glob(filepath.Join(dir, snapPrefix+"*"+snapSuffix))
	if len(snaps) != 1 {
		t.Fatalf("want exactly one retained snapshot, got %v", snaps)
	}
	_, rec2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Snapshot.Txn == 0 {
		t.Error("recovery ignored the snapshot")
	}
	if rec2.LastTxn != n {
		t.Errorf("recovered LastTxn %d, want %d", rec2.LastTxn, n)
	}
	if got := len(rec2.Tail); got >= n {
		t.Errorf("recovered %d tail records; compaction should have covered most of %d", got, n)
	}
	// Snapshot + tail must reproduce all n rows.
	total := len(rec2.Snapshot.Tables["Port"])
	for _, r := range rec2.Tail {
		total += len(r.Tables["Port"])
	}
	if total != n {
		t.Errorf("snapshot(%d rows) + tail = %d rows, want %d", len(rec2.Snapshot.Tables["Port"]), total, n)
	}
}

// TestLogAppendOrdering rejects non-monotonic transaction IDs and
// appends after close.
func TestLogAppendOrdering(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, rowRecord(5, "Port", "row-5", "p5"))
	ticket, _ := l.Append(rowRecord(5, "Port", "row-5", "p5"))
	if err := <-ticket; err == nil {
		t.Error("duplicate txn accepted")
	}
	ticket, _ = l.Append(rowRecord(4, "Port", "row-4", "p4"))
	if err := <-ticket; err == nil {
		t.Error("regressing txn accepted")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	ticket, _ = l.Append(rowRecord(6, "Port", "row-6", "p6"))
	if err := <-ticket; err == nil {
		t.Error("append after close accepted")
	}
}

// TestLogGroupCommit pushes many appends through FsyncCommit from one
// committer (commit order is the caller's contract) while tickets are
// awaited concurrently: every acknowledged record must survive recovery,
// and the appender's fsync count shows how the batch sharing went
// (logged, not asserted — batching degree is timing-dependent).
func TestLogGroupCommit(t *testing.T) {
	dir := t.TempDir()
	observer := obs.NewObserver()
	l, _, err := Open(Options{Dir: dir, Fsync: FsyncCommit, Obs: observer})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 1; i <= n; i++ {
		ticket, _ := l.Append(rowRecord(uint64(i), "Port", fmt.Sprintf("row-%d", i), "p"))
		wg.Add(1)
		go func(i int, ticket <-chan error) {
			defer wg.Done()
			errs[i-1] = <-ticket
		}(i, ticket)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("append %d: %v", i+1, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	fsyncs := observer.Reg().Counter("ovsdb_wal_fsyncs_total", "").Value()
	if fsyncs == 0 {
		t.Error("FsyncCommit recorded zero fsyncs")
	}
	t.Logf("group commit: %d records, %d fsyncs", n, fsyncs)
	_, rec, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if rec.LastTxn != n || len(rec.Tail) != n {
		t.Errorf("recovered %d/%d, want %d acknowledged records", rec.LastTxn, len(rec.Tail), n)
	}
}

// TestLogMidBatchFailureResolvesAllTickets hand-builds one drained
// appender batch of [record, snapshot job, record] over a sabotaged
// segment file: the first flush fails, and every ticket in the batch —
// including the records queued after the failure point — must resolve
// with the latched error instead of hanging its Transact caller.
func TestLogMidBatchFailureResolvesAllTickets(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	mustAppend(t, l, rowRecord(1, "Port", "row-1", "p1"))

	frame2, err := AppendRecord(nil, rowRecord(2, "Port", "row-2", "p2"))
	if err != nil {
		t.Fatal(err)
	}
	frame3, err := AppendRecord(nil, rowRecord(3, "Port", "row-3", "p3"))
	if err != nil {
		t.Fatal(err)
	}
	done2 := make(chan error, 1)
	done3 := make(chan error, 1)
	l.mu.Lock()
	l.seg.Close() // the batch's first write fails
	l.queue = append(l.queue,
		item{frame: frame2, txn: 2, done: done2},
		item{snap: func() (*Snapshot, error) { return &Snapshot{Txn: 2}, nil }},
		item{frame: frame3, txn: 3, done: done3},
	)
	l.lastTxn = 3
	l.mu.Unlock()
	select {
	case l.wake <- struct{}{}:
	default:
	}

	for name, ch := range map[string]chan error{"before failure": done2, "after failure": done3} {
		select {
		case err := <-ch:
			if err == nil {
				t.Errorf("record %s acknowledged despite the failed batch", name)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("ticket of record %s never resolved", name)
		}
	}
	if l.Err() == nil {
		t.Error("batch failure did not latch")
	}
	ticket, _ := l.Append(rowRecord(4, "Port", "row-4", "p4"))
	if err := <-ticket; err == nil {
		t.Error("append after latched failure accepted")
	}
}

// TestLogCorruptSnapshotRecovery covers both sides of the fallback
// continuity check: when the newest snapshot is unreadable but the full
// segment chain survives, recovery replays it; when compaction has
// already deleted the covering segments, recovery must refuse rather
// than silently report an almost-empty database as success.
func TestLogCorruptSnapshotRecovery(t *testing.T) {
	// Safe fallback: corrupt snapshot, but segments cover from txn 1.
	dir := t.TempDir()
	var buf []byte
	var err error
	for txn := uint64(1); txn <= 4; txn++ {
		buf, err = AppendRecord(buf, rowRecord(txn, "Port", fmt.Sprintf("row-%d", txn), "p"))
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, segName(1)), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, snapName(3)), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, rec, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("covered fallback refused: %v", err)
	}
	if rec.LastTxn != 4 || len(rec.Tail) != 4 {
		t.Errorf("covered fallback recovered %d/%d, want 4/4", rec.LastTxn, len(rec.Tail))
	}
	l.Close()

	// Unsafe fallback: a real compaction deletes the covered segments,
	// then the surviving snapshot rots.
	dir2 := t.TempDir()
	l2, _, err := Open(Options{Dir: dir2, SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		recd := rowRecord(uint64(i), "Port", fmt.Sprintf("row-%d", i), "p")
		ticket, wantSnap := l2.Append(recd)
		if wantSnap {
			txn := recd.Txn
			l2.CompactAsync(func() (*Snapshot, error) {
				return &Snapshot{Txn: txn, Tables: map[string]map[string]json.RawMessage{
					"Port": {"row-1": json.RawMessage(`{"name":"p"}`)},
				}}, nil
			})
		}
		if err := <-ticket; err != nil {
			t.Fatal(err)
		}
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	snaps, _ := filepath.Glob(filepath.Join(dir2, snapPrefix+"*"+snapSuffix))
	if len(snaps) != 1 {
		t.Fatalf("want one snapshot after compaction, got %v", snaps)
	}
	data, err := os.ReadFile(snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(snaps[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(Options{Dir: dir2}); err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("uncovered fallback after compaction: got %v, want ErrCorrupt", err)
	}
}

// TestLogFreshnessGaugesAndReadyDetail covers the durability-freshness
// surface: the recovery-duration gauge, the scrape-time snapshot-age
// gauge, the anchor refresh on compaction and on recovery from an
// existing snapshot file, and the stale-snapshot line in the healthy
// /readyz body.
func TestLogFreshnessGaugesAndReadyDetail(t *testing.T) {
	dir := t.TempDir()
	o := obs.NewObserver()
	o.SetReady(true)
	l, _, err := Open(Options{Dir: dir, SnapshotEvery: -1, SnapshotStaleAfter: time.Nanosecond, Obs: o})
	if err != nil {
		t.Fatal(err)
	}

	snap := o.Reg().Snapshot()
	if v, ok := snap["ovsdb_wal_recovery_duration_seconds"]; !ok || v < 0 {
		t.Fatalf("recovery duration gauge missing or negative: %v (%v)", v, ok)
	}
	if age, ok := snap["ovsdb_wal_last_snapshot_age_seconds"]; !ok || age < 0 || age > 60 {
		t.Fatalf("fresh dir snapshot age = %v (%v), want ~0", age, ok)
	}

	// With a nanosecond staleness budget the healthy readiness body
	// carries the WAL detail line without flipping to 503.
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 4096)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz = %s, want 200 (stale snapshot must not flip readiness)", resp.Status)
	}
	if text := string(body[:n]); !strings.HasPrefix(text, "ready\n") || !strings.Contains(text, "wal: last snapshot") {
		t.Fatalf("/readyz body missing WAL staleness detail:\n%s", text)
	}

	// Compaction refreshes the freshness anchor.
	before := l.snapAnchor.Load()
	mustAppend(t, l, rowRecord(1, "Port", "row-1", "p1"))
	l.CompactAsync(func() (*Snapshot, error) {
		return &Snapshot{Txn: 1, Tables: map[string]map[string]json.RawMessage{
			"Port": {"row-1": json.RawMessage(`{"name":"p1"}`)},
		}}, nil
	})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if after := l.snapAnchor.Load(); after <= before {
		t.Fatalf("snapshot anchor not refreshed by compaction: before=%d after=%d", before, after)
	}

	// Reopening anchors freshness at the snapshot file's mtime, not the
	// open instant.
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(filepath.Join(dir, snapName(1)), old, old); err != nil {
		t.Fatal(err)
	}
	o2 := obs.NewObserver()
	l2, _, err := Open(Options{Dir: dir, Obs: o2})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if age := o2.Reg().Snapshot()["ovsdb_wal_last_snapshot_age_seconds"]; age < 3500 || age > 3700 {
		t.Fatalf("reopened snapshot age = %vs, want ~3600s (the file's mtime)", age)
	}
}
