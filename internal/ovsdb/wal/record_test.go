package wal

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"testing"
	"unicode/utf8"
)

func sampleRecord(txn uint64) *Record {
	return &Record{
		Txn: txn,
		Tables: map[string]map[string]json.RawMessage{
			"Port": {
				"11111111-0000-0000-0000-000000000001": json.RawMessage(`{"name":"p0","number":1}`),
				"11111111-0000-0000-0000-000000000002": json.RawMessage(`null`),
			},
			"Bridge": {
				"22222222-0000-0000-0000-000000000001": json.RawMessage(`{"name":"br0"}`),
			},
		},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	cases := []*Record{
		sampleRecord(1),
		{Txn: 0, Tables: map[string]map[string]json.RawMessage{}},
		{Txn: 1<<64 - 1, Tables: map[string]map[string]json.RawMessage{"T": {}}},
	}
	var buf []byte
	for _, rec := range cases {
		var err error
		if buf, err = AppendRecord(buf, rec); err != nil {
			t.Fatalf("AppendRecord(txn %d): %v", rec.Txn, err)
		}
	}
	off := 0
	for _, want := range cases {
		got, n, err := DecodeRecord(buf[off:])
		if err != nil {
			t.Fatalf("DecodeRecord at %d: %v", off, err)
		}
		if got.Txn != want.Txn {
			t.Errorf("txn %d != %d", got.Txn, want.Txn)
		}
		if !recordTablesEqual(got, want) {
			t.Errorf("tables diverged for txn %d:\n got %v\nwant %v", want.Txn, got.Tables, want.Tables)
		}
		off += n
	}
	if off != len(buf) {
		t.Errorf("decoded %d of %d bytes", off, len(buf))
	}
}

// recordTablesEqual compares semantically: a nil and an empty table map
// are the same state, and raw JSON compares after normalization.
func recordTablesEqual(a, b *Record) bool {
	norm := func(r *Record) map[string]map[string]any {
		out := make(map[string]map[string]any)
		for table, rows := range r.Tables {
			m := make(map[string]any)
			for id, raw := range rows {
				var v any
				json.Unmarshal(raw, &v)
				m[id] = v
			}
			out[table] = m
		}
		return out
	}
	return reflect.DeepEqual(norm(a), norm(b))
}

// TestRecordCRCRejection flips every single byte of an encoded frame and
// asserts the decoder never returns a record built from damaged bytes:
// payload or CRC damage is ErrCorrupt; length-field damage is either
// corruption or a frame that (now) runs past the buffer.
func TestRecordCRCRejection(t *testing.T) {
	frame, err := AppendRecord(nil, sampleRecord(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range frame {
		mut := bytes.Clone(frame)
		mut[i] ^= 0xff
		_, _, derr := DecodeRecord(mut)
		if derr == nil {
			t.Fatalf("byte %d flipped: decode succeeded", i)
		}
		if i >= 4 && !errors.Is(derr, ErrCorrupt) {
			t.Errorf("byte %d flipped: got %v, want ErrCorrupt", i, derr)
		}
		if i < 4 && !errors.Is(derr, ErrCorrupt) && !errors.Is(derr, ErrTruncated) {
			t.Errorf("length byte %d flipped: got %v", i, derr)
		}
	}
}

// TestRecordTornWrite truncates the frame at every possible point and
// asserts each prefix reads as a torn tail (ErrTruncated) — the signal
// recovery uses to stop replay without declaring corruption.
func TestRecordTornWrite(t *testing.T) {
	frame, err := AppendRecord(nil, sampleRecord(3))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(frame); cut++ {
		_, _, derr := DecodeRecord(frame[:cut])
		if !errors.Is(derr, ErrTruncated) {
			t.Fatalf("prefix of %d/%d bytes: got %v, want ErrTruncated", cut, len(frame), derr)
		}
	}
}

// TestSnapshotRoundTrip exercises the snapshot frame, including its
// no-trailing-bytes rule.
func TestSnapshotRoundTrip(t *testing.T) {
	snap := &Snapshot{
		Txn: 42,
		Tables: map[string]map[string]json.RawMessage{
			"Port": {"11111111-0000-0000-0000-000000000001": json.RawMessage(`{"name":"p0"}`)},
		},
	}
	data, err := encodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Txn != 42 || len(got.Tables["Port"]) != 1 {
		t.Errorf("snapshot diverged: %+v", got)
	}
	if _, err := decodeSnapshot(append(bytes.Clone(data), 'x')); !errors.Is(err, ErrCorrupt) {
		t.Errorf("trailing byte: got %v, want ErrCorrupt", err)
	}
	if _, err := decodeSnapshot(data[:len(data)-1]); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated snapshot: got %v, want ErrTruncated", err)
	}
}

// FuzzRecordRoundTrip builds a record from fuzzed parts and asserts
// encode→decode is the identity.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add(uint64(1), "Port", "row-1", []byte(`"v"`), false)
	f.Add(uint64(1<<63), "T", "", []byte(`{"k":[1,2]}`), true)
	f.Add(uint64(0), "", "id", []byte(`0`), false)
	f.Fuzz(func(t *testing.T, txn uint64, table, id string, val []byte, del bool) {
		if !utf8.ValidString(table) || !utf8.ValidString(id) {
			// JSON object keys must be UTF-8 (encoding replaces invalid
			// bytes, breaking identity); real keys are UUIDs and table
			// names, always ASCII.
			t.Skip()
		}
		raw := json.RawMessage(`null`)
		if !del {
			if !json.Valid(val) {
				// Arbitrary bytes become a JSON string so every fuzz input
				// makes a well-formed record.
				enc, _ := json.Marshal(string(val))
				raw = json.RawMessage(enc)
			} else {
				raw = json.RawMessage(val)
			}
		}
		rec := &Record{Txn: txn, Tables: map[string]map[string]json.RawMessage{table: {id: raw}}}
		frame, err := AppendRecord(nil, rec)
		if err != nil {
			t.Fatalf("AppendRecord: %v", err)
		}
		got, n, err := DecodeRecord(frame)
		if err != nil {
			t.Fatalf("DecodeRecord: %v", err)
		}
		if n != len(frame) {
			t.Fatalf("consumed %d of %d bytes", n, len(frame))
		}
		if got.Txn != txn || !recordTablesEqual(got, rec) {
			t.Fatalf("round trip diverged: got %+v, want %+v", got, rec)
		}
	})
}

// FuzzDecodeRecord throws arbitrary bytes at the decoder: it must never
// panic, never over-consume, and only ever fail with the two sentinel
// error classes recovery is written against.
func FuzzDecodeRecord(f *testing.F) {
	frame, _ := AppendRecord(nil, sampleRecord(9))
	f.Add(frame)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})
	f.Add(frame[:frameHeader])
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeRecord(data)
		if err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("unexpected error class: %v", err)
			}
			if rec != nil || n != 0 {
				t.Fatalf("failed decode returned rec=%v n=%d", rec, n)
			}
			return
		}
		if n < frameHeader || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// A decoded record re-encodes to a frame that decodes to the
		// same record (the payload may differ in JSON key order).
		frame, aerr := AppendRecord(nil, rec)
		if aerr != nil {
			t.Fatalf("re-encode: %v", aerr)
		}
		again, _, derr := DecodeRecord(frame)
		if derr != nil {
			t.Fatalf("re-decode: %v", derr)
		}
		if again.Txn != rec.Txn || !recordTablesEqual(again, rec) {
			t.Fatalf("re-encode diverged: %+v vs %+v", again, rec)
		}
	})
}
