// Package wal is the management plane's durability subsystem: an
// append-only transaction log with CRC-framed records, group-commit
// fsync batching, periodic snapshot compaction, and crash-recovery
// replay. The database appends one record per committed transaction;
// on restart the latest snapshot plus the log tail reconstruct the
// exact committed state and the transaction-ID counter.
//
// The package is deliberately schema-blind: rows travel as raw JSON in
// their RFC 7047 wire form, so the log format survives schema evolution
// and the package depends only on the standard library and internal/obs.
package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
)

// Record is one committed transaction's effective row changes: per
// table, per row UUID, the row's full new image in RFC 7047 JSON form —
// or JSON null for a delete. Replaying records in txn order onto the
// snapshot state reproduces the database exactly (row images, not
// logical operations, so replay is deterministic even though inserts
// mint random UUIDs).
type Record struct {
	Txn    uint64                                `json:"txn"`
	Tables map[string]map[string]json.RawMessage `json:"tables"`
}

// Frame layout: a fixed header followed by the JSON payload.
//
//	[4] little-endian payload length
//	[4] little-endian CRC-32C (Castagnoli) of the payload
//	[n] payload
//
// The CRC covers only the payload; a torn header is detected by the
// buffer running out, a torn or bit-flipped payload by the CRC.
const frameHeader = 8

// maxRecordSize bounds a single record so a corrupted length field
// cannot drive recovery into a multi-gigabyte allocation.
const maxRecordSize = 1 << 28

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrTruncated reports a frame that extends past the end of the buffer:
// the tail of a log whose final write was torn by a crash. Recovery
// treats it as the end of the usable log, not as corruption.
var ErrTruncated = errors.New("wal: truncated record")

// ErrCorrupt reports a frame whose payload fails its CRC or whose
// header is structurally impossible. Recovery stops replay at the first
// corrupt frame and drops everything after it.
var ErrCorrupt = errors.New("wal: corrupt record")

// AppendRecord encodes rec and appends its frame to buf, returning the
// extended buffer.
func AppendRecord(buf []byte, rec *Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return buf, fmt.Errorf("wal: encoding record txn %d: %w", rec.Txn, err)
	}
	return appendFrame(buf, payload), nil
}

// appendFrame frames an already-encoded payload.
func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// DecodeRecord decodes the first frame in data, returning the record
// and the number of bytes consumed. A frame that runs past the buffer
// returns ErrTruncated; a CRC mismatch or undecodable payload returns
// ErrCorrupt.
func DecodeRecord(data []byte) (*Record, int, error) {
	payload, n, err := decodeFrame(data)
	if err != nil {
		return nil, 0, err
	}
	rec := &Record{}
	if err := json.Unmarshal(payload, rec); err != nil {
		return nil, 0, fmt.Errorf("%w: bad payload: %v", ErrCorrupt, err)
	}
	return rec, n, nil
}

// decodeFrame validates and extracts the first frame's payload.
func decodeFrame(data []byte) ([]byte, int, error) {
	if len(data) < frameHeader {
		return nil, 0, ErrTruncated
	}
	size := binary.LittleEndian.Uint32(data[0:4])
	if size > maxRecordSize {
		return nil, 0, fmt.Errorf("%w: implausible record size %d", ErrCorrupt, size)
	}
	if len(data) < frameHeader+int(size) {
		return nil, 0, ErrTruncated
	}
	payload := data[frameHeader : frameHeader+int(size)]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(data[4:8]) {
		return nil, 0, ErrCorrupt
	}
	return payload, frameHeader + int(size), nil
}

// Snapshot is a full-database image at one transaction: per table, per
// row UUID, the row in RFC 7047 JSON form. Snapshot files hold a single
// frame whose payload is the JSON encoding of this struct, so the same
// CRC validation protects both log records and snapshots.
type Snapshot struct {
	Txn    uint64                                `json:"txn"`
	Tables map[string]map[string]json.RawMessage `json:"tables"`
}

// encodeSnapshot frames a snapshot for its file.
func encodeSnapshot(s *Snapshot) ([]byte, error) {
	payload, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("wal: encoding snapshot txn %d: %w", s.Txn, err)
	}
	return appendFrame(nil, payload), nil
}

// decodeSnapshot validates and decodes a snapshot file's contents.
func decodeSnapshot(data []byte) (*Snapshot, error) {
	payload, n, err := decodeFrame(data)
	if err != nil {
		return nil, err
	}
	if n != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes after snapshot frame", ErrCorrupt, len(data)-n)
	}
	s := &Snapshot{}
	if err := json.Unmarshal(payload, s); err != nil {
		return nil, fmt.Errorf("%w: bad snapshot payload: %v", ErrCorrupt, err)
	}
	return s, nil
}
