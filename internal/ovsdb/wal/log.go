package wal

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Fsync policies for committed records.
const (
	// FsyncCommit (the default) makes Append's ticket resolve only after
	// the record is fsynced. Concurrent commits share one fsync (group
	// commit): the appender drains every queued record, writes them with
	// a single Write, syncs once, and acknowledges the whole batch.
	FsyncCommit = "commit"
	// FsyncOff acknowledges records once they are written to the OS; a
	// machine crash can lose the unsynced suffix (a process crash cannot).
	// Snapshots and rotations are always fsynced regardless of policy.
	FsyncOff = "off"
)

// Options configures a log.
type Options struct {
	// Dir holds the segment and snapshot files; created if absent.
	Dir string
	// Fsync is FsyncCommit (default) or FsyncOff.
	Fsync string
	// SnapshotEvery is the number of appended records between snapshot
	// compactions (default 8192; negative disables automatic snapshots).
	SnapshotEvery int
	// SnapshotStaleAfter is the last-snapshot age beyond which the log
	// surfaces a staleness line in the observer's healthy /readyz detail
	// (default 15m; negative disables the detail line). The
	// ovsdb_wal_last_snapshot_age_seconds gauge reports the age
	// regardless.
	SnapshotStaleAfter time.Duration
	// Obs receives ovsdb_wal_* metrics and wal.* flight-recorder events;
	// nil disables all instrumentation.
	Obs *obs.Observer
}

// Recovered is the state reconstructed by Open.
type Recovered struct {
	// Snapshot is the newest durable snapshot (empty, txn 0, when the
	// directory holds none). Tail records apply on top of it.
	Snapshot *Snapshot
	// Tail holds the log records with txn > Snapshot.Txn, in commit
	// order. The caller replays them to reach the final state and to
	// seed its monitor gap-replay window.
	Tail []*Record
	// LastTxn is the highest transaction ID in the recovered state; the
	// database seeds its txn counter from it so IDs stay monotonic
	// across restarts.
	LastTxn uint64
	// Truncated reports that a torn or corrupt tail was dropped from the
	// final segment (the expected aftermath of a crash mid-write).
	Truncated bool
	// DroppedBytes counts the bytes discarded with that tail.
	DroppedBytes int
}

const (
	segPrefix  = "seg-"
	segSuffix  = ".wal"
	snapPrefix = "snap-"
	snapSuffix = ".snap"
	tmpSuffix  = ".tmp"
)

func segName(start uint64) string { return fmt.Sprintf("%s%016x%s", segPrefix, start, segSuffix) }
func snapName(txn uint64) string  { return fmt.Sprintf("%s%016x%s", snapPrefix, txn, snapSuffix) }
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 16, 64)
	return n, err == nil
}

// item is one unit of ordered appender work: a framed record awaiting
// write+fsync, or a snapshot job captured at a rotation point.
type item struct {
	frame []byte
	txn   uint64
	done  chan error
	// snap, when non-nil, marks a snapshot job: rotate the segment at
	// this point in the order, then compact in the background. The
	// closure renders the database image captured at enqueue time.
	snap func() (*Snapshot, error)
}

// Log is an open write-ahead log. Appends are acknowledged through
// tickets so the database can release its commit lock before waiting
// out the group fsync; a single appender goroutine preserves commit
// order on disk.
type Log struct {
	opts Options
	dir  *os.File // held open for directory fsyncs

	mu       sync.Mutex
	queue    []item
	wake     chan struct{}
	closing  bool
	failErr  error // latched first write/sync error; fails all later appends
	appended int   // records since the last snapshot trigger
	snapBusy bool  // a snapshot is queued or compacting
	lastTxn  uint64

	seg      *os.File
	segStart uint64
	wbuf     []byte

	stopped chan struct{}
	snapWG  sync.WaitGroup

	// snapAnchor is when the durable image was last refreshed (unix
	// nanos): the newest snapshot file's mtime at recovery, open time
	// when the directory held none, then each compaction's completion.
	// ovsdb_wal_last_snapshot_age_seconds derives from it at scrape time.
	snapAnchor atomic.Int64

	rec           *obs.Recorder
	mAppends      *obs.Counter
	mAppendBytes  *obs.Counter
	mFsyncs       *obs.Counter
	mFsyncSeconds *obs.Histogram
	mSnapshots    *obs.Counter
	mSnapSeconds  *obs.Histogram
	mErrors       *obs.Counter
}

// Open recovers the directory's durable state and opens the log for
// appending. The returned Recovered carries the newest snapshot, the
// replayable tail, and the last transaction ID; the caller restores its
// database from it before appending new records.
func Open(opts Options) (*Log, *Recovered, error) {
	if opts.Fsync == "" {
		opts.Fsync = FsyncCommit
	}
	if opts.Fsync != FsyncCommit && opts.Fsync != FsyncOff {
		return nil, nil, fmt.Errorf("wal: unknown fsync policy %q", opts.Fsync)
	}
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = 8192
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, err
	}
	l := &Log{
		opts:    opts,
		wake:    make(chan struct{}, 1),
		stopped: make(chan struct{}),
	}
	reg := opts.Obs.Reg()
	l.rec = opts.Obs.Rec()
	l.mAppends = reg.Counter("ovsdb_wal_appends_total", "WAL records appended.")
	l.mAppendBytes = reg.Counter("ovsdb_wal_append_bytes_total", "WAL bytes appended (framed records).")
	l.mFsyncs = reg.Counter("ovsdb_wal_fsyncs_total", "WAL segment fsync calls (group commits).")
	l.mFsyncSeconds = reg.Histogram("ovsdb_wal_fsync_seconds", "WAL group-commit fsync latency.", nil)
	l.mSnapshots = reg.Counter("ovsdb_wal_snapshots_total", "WAL snapshot compactions completed.")
	l.mSnapSeconds = reg.Histogram("ovsdb_wal_snapshot_seconds", "WAL snapshot compaction latency.", nil)
	l.mErrors = reg.Counter("ovsdb_wal_errors_total", "WAL write, fsync, or compaction failures.")

	start := time.Now()
	recovered, err := l.recover()
	if err != nil {
		return nil, nil, err
	}
	dir, err := os.Open(opts.Dir)
	if err != nil {
		return nil, nil, err
	}
	l.dir = dir
	l.lastTxn = recovered.LastTxn
	l.snapAnchor.Store(l.recoveredSnapshotTime(recovered).UnixNano())
	reg.Gauge("ovsdb_wal_recovery_duration_seconds",
		"How long the last startup recovery (snapshot load plus tail replay) took.").
		Set(time.Since(start).Seconds())
	reg.GaugeFunc("ovsdb_wal_last_snapshot_age_seconds",
		"Seconds since the durable image was last compacted into a snapshot (since open when none exists yet).",
		func() float64 { return time.Since(time.Unix(0, l.snapAnchor.Load())).Seconds() })
	staleAfter := opts.SnapshotStaleAfter
	if staleAfter == 0 {
		staleAfter = 15 * time.Minute
	}
	if staleAfter > 0 {
		opts.Obs.AddReadyDetail(func() string {
			age := time.Since(time.Unix(0, l.snapAnchor.Load()))
			if age <= staleAfter {
				return ""
			}
			return fmt.Sprintf("wal: last snapshot %s old (stale after %s)",
				age.Round(time.Second), staleAfter)
		})
	}
	go l.run()
	l.rec.Append(obs.Ev("ovsdb", "wal.recover").
		F("last_txn", int64(recovered.LastTxn)).
		F("tail_records", int64(len(recovered.Tail))).
		F("dropped_bytes", int64(recovered.DroppedBytes)).
		F("recover_us", time.Since(start).Microseconds()))
	return l, recovered, nil
}

// recoveredSnapshotTime anchors snapshot freshness at open: the newest
// snapshot file's mtime, or now when the directory holds none (a fresh
// log's "image" is as old as the log itself).
func (l *Log) recoveredSnapshotTime(recovered *Recovered) time.Time {
	if recovered.Snapshot != nil && recovered.Snapshot.Txn != 0 {
		if fi, err := os.Stat(filepath.Join(l.opts.Dir, snapName(recovered.Snapshot.Txn))); err == nil {
			return fi.ModTime()
		}
	}
	return time.Now()
}

// recover loads the newest valid snapshot, replays every later record,
// truncates a torn tail, and leaves the last segment open for appending.
func (l *Log) recover() (*Recovered, error) {
	entries, err := os.ReadDir(l.opts.Dir)
	if err != nil {
		return nil, err
	}
	var snaps, segs []uint64
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, tmpSuffix) {
			os.Remove(filepath.Join(l.opts.Dir, name)) // interrupted snapshot write
			continue
		}
		if n, ok := parseSeq(name, snapPrefix, snapSuffix); ok {
			snaps = append(snaps, n)
		} else if n, ok := parseSeq(name, segPrefix, segSuffix); ok {
			segs = append(segs, n)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] > snaps[j] })
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })

	// Newest validating snapshot wins. Falling back past an unreadable
	// snapshot is only safe while the segments covering it still exist
	// (the window before compaction deletes them), so a fallback is
	// cross-checked against segment coverage below.
	recoveredSnap := &Snapshot{Tables: make(map[string]map[string]json.RawMessage)}
	snapFellBack := false
	for _, txn := range snaps {
		data, err := os.ReadFile(filepath.Join(l.opts.Dir, snapName(txn)))
		if err != nil {
			snapFellBack = true
			continue
		}
		s, err := decodeSnapshot(data)
		if err != nil || s.Txn != txn {
			snapFellBack = true
			continue
		}
		recoveredSnap = s
		break
	}
	if snapFellBack {
		// The newest snapshot exists but failed validation. Once its
		// compaction has deleted the segments it superseded, the fallback
		// (an older snapshot, or the empty zero state) plus the surviving
		// segments no longer reproduce the database — recovering anyway
		// would silently discard nearly all committed state while
		// reporting success. Only accept the fallback when the oldest
		// surviving segment starts at or before the transaction right
		// after it, i.e. replay from the fallback has no hole.
		if len(segs) == 0 || segs[0] > recoveredSnap.Txn+1 {
			oldest := uint64(0)
			if len(segs) > 0 {
				oldest = segs[0]
			}
			return nil, fmt.Errorf("%w: newest snapshot unreadable and surviving segments (oldest start %d) do not cover fallback snapshot txn %d; refusing to recover with silent data loss",
				ErrCorrupt, oldest, recoveredSnap.Txn)
		}
	}

	rec := &Recovered{Snapshot: recoveredSnap, LastTxn: recoveredSnap.Txn}
	for i, start := range segs {
		path := filepath.Join(l.opts.Dir, segName(start))
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		off := 0
		for off < len(data) {
			r, n, derr := DecodeRecord(data[off:])
			if derr != nil {
				if i != len(segs)-1 {
					// A hole in the middle of the chain is real corruption,
					// not a torn final write: refuse to silently lose it.
					return nil, fmt.Errorf("wal: segment %s corrupt at offset %d: %w", path, off, derr)
				}
				rec.Truncated = true
				rec.DroppedBytes = len(data) - off
				if terr := os.Truncate(path, int64(off)); terr != nil {
					return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", path, terr)
				}
				break
			}
			off += n
			if r.Txn <= rec.LastTxn {
				continue // covered by the snapshot (or a duplicate)
			}
			rec.Tail = append(rec.Tail, r)
			rec.LastTxn = r.Txn
		}
	}

	// Continue appending to the last segment, or start the chain.
	segStart := rec.LastTxn + 1
	if len(segs) > 0 {
		segStart = segs[len(segs)-1]
	}
	f, err := os.OpenFile(filepath.Join(l.opts.Dir, segName(segStart)),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	l.seg = f
	l.segStart = segStart
	return rec, nil
}

// Append enqueues one record, in call order, for durable write. It is
// the caller's job to call Append in commit order (the database does so
// under its commit lock). The returned ticket resolves once the record
// reaches the configured durability (written + group-fsynced under
// FsyncCommit); wantSnapshot asks the caller to capture a database
// image and pass it to CompactAsync — returned at most once per
// SnapshotEvery records and never while a compaction is in flight.
func (l *Log) Append(rec *Record) (ticket <-chan error, wantSnapshot bool) {
	frame, err := AppendRecord(nil, rec)
	done := make(chan error, 1)
	l.mu.Lock()
	if l.failErr != nil || l.closing {
		ferr := l.failErr
		l.mu.Unlock()
		if ferr == nil {
			ferr = errors.New("wal: log closed")
		}
		done <- ferr
		return done, false
	}
	if err != nil {
		l.mu.Unlock()
		done <- err
		return done, false
	}
	if rec.Txn <= l.lastTxn {
		l.mu.Unlock()
		done <- fmt.Errorf("wal: non-monotonic append: txn %d after %d", rec.Txn, l.lastTxn)
		return done, false
	}
	l.lastTxn = rec.Txn
	l.queue = append(l.queue, item{frame: frame, txn: rec.Txn, done: done})
	l.appended++
	if l.opts.SnapshotEvery > 0 && l.appended >= l.opts.SnapshotEvery && !l.snapBusy {
		l.appended = 0
		l.snapBusy = true
		wantSnapshot = true
	}
	l.mu.Unlock()
	select {
	case l.wake <- struct{}{}:
	default:
	}
	return done, wantSnapshot
}

// CompactAsync enqueues a snapshot compaction at the current point in
// the append order. render runs on the appender (off the commit path)
// and must return the database image as of the moment Append returned
// wantSnapshot — the database guarantees this by capturing a shallow
// copy of its copy-on-write tables under the same lock as that Append.
func (l *Log) CompactAsync(render func() (*Snapshot, error)) {
	l.mu.Lock()
	if l.failErr != nil || l.closing {
		l.snapBusy = false
		l.mu.Unlock()
		return
	}
	l.queue = append(l.queue, item{snap: render})
	l.mu.Unlock()
	select {
	case l.wake <- struct{}{}:
	default:
	}
}

// Err returns the latched failure, if any. A failed log stops accepting
// appends; the database keeps serving from memory but reports itself
// degraded.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failErr
}

// Close drains queued records, waits for any in-flight compaction, and
// closes the files.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closing {
		l.mu.Unlock()
		<-l.stopped
		return l.Err()
	}
	l.closing = true
	l.mu.Unlock()
	select {
	case l.wake <- struct{}{}:
	default:
	}
	<-l.stopped
	l.snapWG.Wait()
	err := l.Err()
	if l.seg != nil {
		l.seg.Close()
	}
	if l.dir != nil {
		l.dir.Close()
	}
	return err
}

// fail latches err, failing the given batch and all future appends.
func (l *Log) fail(err error, batch []item) {
	l.mErrors.Inc()
	l.mu.Lock()
	if l.failErr == nil {
		l.failErr = err
	}
	pending := l.queue
	l.queue = nil
	l.mu.Unlock()
	for _, it := range append(batch, pending...) {
		if it.done != nil {
			it.done <- err
		}
	}
}

// run is the appender: it drains the queue in order, group-writes and
// group-fsyncs record batches, and hands snapshot jobs to the compactor
// after rotating the active segment.
func (l *Log) run() {
	defer close(l.stopped)
	for {
		l.mu.Lock()
		for len(l.queue) == 0 {
			if l.closing || l.failErr != nil {
				l.mu.Unlock()
				if l.seg != nil && l.opts.Fsync == FsyncCommit {
					l.seg.Sync()
				}
				return
			}
			l.mu.Unlock()
			<-l.wake
			l.mu.Lock()
		}
		batch := l.queue
		l.queue = nil
		l.mu.Unlock()

		// Write maximal runs of records with one Write + one fsync, and
		// handle snapshot jobs at their exact position in the order.
		var run []item
		flush := func() bool {
			if len(run) == 0 {
				return true
			}
			l.wbuf = l.wbuf[:0]
			for _, it := range run {
				l.wbuf = append(l.wbuf, it.frame...)
			}
			if _, err := l.seg.Write(l.wbuf); err != nil {
				l.fail(fmt.Errorf("wal: write: %w", err), run)
				return false
			}
			if l.opts.Fsync == FsyncCommit {
				s := time.Now()
				if err := l.seg.Sync(); err != nil {
					l.fail(fmt.Errorf("wal: fsync: %w", err), run)
					return false
				}
				l.mFsyncs.Inc()
				l.mFsyncSeconds.ObserveDuration(time.Since(s))
			}
			l.mAppends.Add(uint64(len(run)))
			l.mAppendBytes.Add(uint64(len(l.wbuf)))
			l.rec.Append(obs.Ev("ovsdb", "wal.append").Debug().
				F("records", int64(len(run))).
				F("bytes", int64(len(l.wbuf))))
			for _, it := range run {
				it.done <- nil
			}
			run = run[:0]
			return true
		}
		ok := true
		for i := 0; i < len(batch); i++ {
			it := batch[i]
			if it.snap == nil {
				run = append(run, it)
				continue
			}
			if ok = flush(); ok {
				ok = l.rotateAndCompact(it.snap)
			}
			if !ok {
				// flush/rotate latched the failure and resolved the
				// current run plus l.queue — but not the rest of this
				// drained batch. Fail those tickets too, or their
				// Transact callers block forever on a dead log.
				err := l.Err()
				for _, rest := range batch[i+1:] {
					if rest.done != nil {
						rest.done <- err
					}
				}
				break
			}
		}
		if ok {
			flush()
		}
	}
}

// rotateAndCompact seals the active segment at the current position,
// opens the next one, and compacts in the background: records appended
// after the rotation land in the new segment, so the snapshot plus that
// segment always reproduce the database.
func (l *Log) rotateAndCompact(render func() (*Snapshot, error)) bool {
	// Everything up to the snapshot point must be durable before any
	// compaction may delete the segments that used to carry it.
	if err := l.seg.Sync(); err != nil {
		l.fail(fmt.Errorf("wal: fsync before rotation: %w", err), nil)
		return false
	}
	l.mu.Lock()
	nextStart := l.lastTxn + 1
	l.mu.Unlock()
	f, err := os.OpenFile(filepath.Join(l.opts.Dir, segName(nextStart)),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		l.fail(fmt.Errorf("wal: rotating segment: %w", err), nil)
		return false
	}
	if err := l.dir.Sync(); err != nil {
		l.fail(fmt.Errorf("wal: fsync dir: %w", err), nil)
		f.Close()
		return false
	}
	old := l.seg
	oldStart := l.segStart
	l.seg = f
	l.segStart = nextStart
	old.Close()

	l.snapWG.Add(1)
	go func() {
		defer l.snapWG.Done()
		start := time.Now()
		err := l.writeSnapshot(render, oldStart)
		l.mu.Lock()
		l.snapBusy = false
		l.mu.Unlock()
		if err != nil {
			// A failed compaction loses no data: the previous snapshot
			// and the intact segment chain still cover everything. Count
			// it and retry at the next trigger.
			l.mErrors.Inc()
			l.rec.Append(obs.Ev("ovsdb", "wal.snapshot").
				F("failed", 1).
				F("elapsed_us", time.Since(start).Microseconds()))
			return
		}
		l.mSnapshots.Inc()
		l.mSnapSeconds.ObserveDuration(time.Since(start))
	}()
	return true
}

// writeSnapshot renders and durably writes the snapshot, then deletes
// the segments and snapshots it supersedes.
func (l *Log) writeSnapshot(render func() (*Snapshot, error), coveredStart uint64) error {
	snap, err := render()
	if err != nil {
		return err
	}
	data, err := encodeSnapshot(snap)
	if err != nil {
		return err
	}
	final := filepath.Join(l.opts.Dir, snapName(snap.Txn))
	tmp := final + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	if err := l.dir.Sync(); err != nil {
		return err
	}
	// The snapshot is durable: truncate the log by deleting every
	// segment that started at or before it, and retire older snapshots.
	entries, err := os.ReadDir(l.opts.Dir)
	if err != nil {
		return err
	}
	removedSegs := 0
	for _, e := range entries {
		name := e.Name()
		if n, ok := parseSeq(name, segPrefix, segSuffix); ok && n <= coveredStart {
			if os.Remove(filepath.Join(l.opts.Dir, name)) == nil {
				removedSegs++
			}
		}
		if n, ok := parseSeq(name, snapPrefix, snapSuffix); ok && n < snap.Txn {
			os.Remove(filepath.Join(l.opts.Dir, name))
		}
	}
	l.snapAnchor.Store(time.Now().UnixNano())
	l.rec.Append(obs.Ev("ovsdb", "wal.snapshot").
		F("txn", int64(snap.Txn)).
		F("bytes", int64(len(data))).
		F("segments_removed", int64(removedSegs)))
	return nil
}
