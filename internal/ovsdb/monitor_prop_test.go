package ovsdb

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// mirror reconstructs a table's rows from monitor updates, the way the
// controller does. The property: after any sequence of transactions, the
// mirror converges to exactly the table's contents.
type mirror struct {
	mu   sync.Mutex
	rows map[string]map[string]any // uuid → row (JSON form)
	seen int
}

func (m *mirror) apply(tu TableUpdates) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for uuid, ru := range tu["Port"] {
		switch {
		case ru.New != nil && ru.Old == nil: // insert
			m.rows[uuid] = ru.New
		case ru.New == nil && ru.Old != nil: // delete
			delete(m.rows, uuid)
		default: // modify: New carries all selected columns
			m.rows[uuid] = ru.New
		}
	}
	m.seen++
}

func TestPropMonitorMirrorsTable(t *testing.T) {
	db := newTestDB(t)
	m := &mirror{rows: make(map[string]map[string]any)}
	_, initial, err := db.AddMonitor(map[string]*MonitorRequest{
		"Port": {Columns: []string{"name", "number", "enabled"}},
	}, func(_ uint64, tu TableUpdates) { m.apply(tu) })
	if err != nil {
		t.Fatal(err)
	}
	m.apply(initial)

	r := rand.New(rand.NewSource(11))
	names := make([]string, 0, 40)
	txns := 0
	for i := 0; i < 300; i++ {
		switch op := r.Intn(10); {
		case op < 5 || len(names) == 0: // insert
			name := fmt.Sprintf("p%d", i)
			res := db.Transact([]Operation{OpInsert("Port", map[string]Value{
				"name": name, "number": int64(r.Intn(100)),
			})})
			if res[0].Error != "" {
				t.Fatalf("insert: %+v", res[0])
			}
			names = append(names, name)
			txns++
		case op < 8: // update
			name := names[r.Intn(len(names))]
			res := db.Transact([]Operation{OpUpdate("Port", map[string]Value{
				"number": int64(r.Intn(100)), "enabled": r.Intn(2) == 0,
			}, Cond("name", "==", name))})
			if res[0].Error != "" {
				t.Fatalf("update: %+v", res[0])
			}
			if res[0].Count > 0 {
				txns++
			}
		default: // delete
			j := r.Intn(len(names))
			name := names[j]
			res := db.Transact([]Operation{OpDelete("Port", Cond("name", "==", name))})
			if res[0].Error != "" {
				t.Fatalf("delete: %+v", res[0])
			}
			if res[0].Count > 0 {
				txns++
			}
			names = append(names[:j], names[j+1:]...)
		}
	}
	// An update that changes nothing produces no notification, so wait
	// only for row-count convergence plus a settle period.
	deadline := time.Now().Add(5 * time.Second)
	for {
		m.mu.Lock()
		converged := len(m.rows) == db.RowCount("Port")
		m.mu.Unlock()
		if converged {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("mirror has %d rows, table has %d", len(m.rows), db.RowCount("Port"))
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // drain any trailing modifies

	// Deep-compare the mirror against a select.
	res := db.Transact([]Operation{OpSelect("Port")})
	if res[0].Error != "" {
		t.Fatal(res[0].Error)
	}
	ts := db.Schema().Tables["Port"]
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(res[0].Rows) != len(m.rows) {
		t.Fatalf("mirror %d rows, select %d", len(m.rows), len(res[0].Rows))
	}
	for _, sel := range res[0].Rows {
		uuid := sel["_uuid"].([]any)[1].(string)
		mrow, ok := m.rows[uuid]
		if !ok {
			t.Fatalf("mirror missing row %s", uuid)
		}
		// Compare the monitored columns through typed values.
		selTyped, err := RowFromJSON(ts, sel)
		if err != nil {
			t.Fatal(err)
		}
		mTyped, err := RowFromJSON(ts, jsonNumberize(t, mrow))
		if err != nil {
			t.Fatal(err)
		}
		for _, col := range []string{"name", "number", "enabled"} {
			if !ValueEqual(selTyped[col], mTyped[col]) {
				t.Fatalf("row %s column %s: mirror %v, table %v",
					uuid, col, mTyped[col], selTyped[col])
			}
		}
	}
}

// jsonNumberize round-trips a JSON object so numbers become json.Number,
// matching what a wire client would hold.
func jsonNumberize(t *testing.T, obj map[string]any) map[string]any {
	t.Helper()
	out := make(map[string]any, len(obj))
	for k, v := range obj {
		rt := jsonRoundTrip(t, v)
		out[k] = rt
	}
	return out
}
