package ovsdb

import (
	"encoding/json"
	"strings"
	"testing"
)

const testSchema = `{
  "name": "TestDB",
  "version": "1.0.0",
  "tables": {
    "Port": {
      "columns": {
        "name": {"type": "string"},
        "number": {"type": "integer"},
        "enabled": {"type": "boolean"},
        "trunks": {"type": {"key": "integer", "min": 0, "max": "unlimited"}},
        "options": {"type": {"key": "string", "value": "string", "min": 0, "max": "unlimited"}},
        "peer": {"type": {"key": "uuid", "min": 0, "max": 1}}
      },
      "indexes": [["name"]],
      "isRoot": true
    },
    "Bridge": {
      "columns": {
        "name": {"type": "string"},
        "ports": {"type": {"key": "uuid", "min": 0, "max": "unlimited"}}
      },
      "isRoot": true
    }
  }
}`

func newTestDB(t *testing.T) *Database {
	t.Helper()
	schema, err := ParseSchema([]byte(testSchema))
	if err != nil {
		t.Fatalf("ParseSchema: %v", err)
	}
	return NewDatabase(schema)
}

func mustTransact(t *testing.T, db *Database, ops ...Operation) []OpResult {
	t.Helper()
	results := db.Transact(ops)
	for i, r := range results {
		if r.Error != "" {
			t.Fatalf("op %d failed: %s (%s)", i, r.Error, r.Details)
		}
	}
	return results
}

func TestParseSchemaShapes(t *testing.T) {
	db := newTestDB(t)
	ts := db.Schema().Tables["Port"]
	if ts == nil {
		t.Fatal("Port table missing")
	}
	if !ts.Columns["name"].Type.IsScalar() {
		t.Errorf("name should be scalar")
	}
	tr := ts.Columns["trunks"].Type
	if tr.IsScalar() || tr.IsMap() || tr.Max != Unlimited || tr.Min != 0 {
		t.Errorf("trunks type parsed wrong: %+v", tr)
	}
	if !ts.Columns["options"].Type.IsMap() {
		t.Errorf("options should be a map")
	}
}

func TestParseSchemaErrors(t *testing.T) {
	bad := map[string]string{
		"no name":      `{"tables":{"T":{"columns":{"c":{"type":"string"}}}}}`,
		"no columns":   `{"name":"X","tables":{"T":{"columns":{}}}}`,
		"reserved col": `{"name":"X","tables":{"T":{"columns":{"_uuid":{"type":"uuid"}}}}}`,
		"bad type":     `{"name":"X","tables":{"T":{"columns":{"c":{"type":"blob"}}}}}`,
		"bad index":    `{"name":"X","tables":{"T":{"columns":{"c":{"type":"string"}},"indexes":[["nope"]]}}}`,
		"min gt max":   `{"name":"X","tables":{"T":{"columns":{"c":{"type":{"key":"integer","min":1,"max":0}}}}}}`,
		"not json":     `{`,
	}
	for name, src := range bad {
		if _, err := ParseSchema([]byte(src)); err == nil {
			t.Errorf("%s: ParseSchema succeeded", name)
		}
	}
}

func TestInsertAndSelect(t *testing.T) {
	db := newTestDB(t)
	res := mustTransact(t, db, OpInsert("Port", map[string]Value{
		"name":    "eth0",
		"number":  int64(1),
		"enabled": true,
		"trunks":  NewSet(int64(10), int64(20)),
		"options": NewMap([2]Atom{"speed", "fast"}),
	}))
	id, ok := res[0].UUID.([]any)
	if !ok || len(id) != 2 {
		t.Fatalf("insert result uuid = %v", res[0].UUID)
	}
	sel := mustTransact(t, db, OpSelect("Port", Cond("name", "==", "eth0")))
	if len(sel[0].Rows) != 1 {
		t.Fatalf("select returned %d rows", len(sel[0].Rows))
	}
	row := sel[0].Rows[0]
	if row["number"] != int64(1) && row["number"] != float64(1) {
		t.Errorf("number = %v (%T)", row["number"], row["number"])
	}
	// Defaults: unset column "peer" must be an empty set.
	if _, ok := row["peer"]; !ok {
		t.Errorf("peer default missing: %v", row)
	}
}

func TestInsertDefaultsAndUnknownColumn(t *testing.T) {
	db := newTestDB(t)
	res := db.Transact([]Operation{{Op: "insert", Table: "Port",
		Row: map[string]any{"nope": 1}}})
	if res[0].Error == "" {
		t.Fatalf("insert with unknown column succeeded")
	}
	res = db.Transact([]Operation{{Op: "insert", Table: "Port", Row: map[string]any{}}})
	if res[0].Error != "" {
		t.Fatalf("insert with all defaults failed: %v", res[0])
	}
}

func TestIndexUniqueness(t *testing.T) {
	db := newTestDB(t)
	mustTransact(t, db, OpInsert("Port", map[string]Value{"name": "dup"}))
	res := db.Transact([]Operation{OpInsert("Port", map[string]Value{"name": "dup"})})
	if res[0].Error != "constraint violation" {
		t.Fatalf("duplicate index insert = %+v", res[0])
	}
	if db.RowCount("Port") != 1 {
		t.Errorf("row count = %d after failed insert", db.RowCount("Port"))
	}
}

func TestUpdateAndDelete(t *testing.T) {
	db := newTestDB(t)
	mustTransact(t, db,
		OpInsert("Port", map[string]Value{"name": "a", "number": int64(1)}),
		OpInsert("Port", map[string]Value{"name": "b", "number": int64(2)}),
	)
	res := mustTransact(t, db, OpUpdate("Port",
		map[string]Value{"enabled": true}, Cond("number", ">", int64(1))))
	if res[0].Count != 1 {
		t.Fatalf("update count = %d", res[0].Count)
	}
	sel := mustTransact(t, db, OpSelect("Port", Cond("enabled", "==", true)))
	if len(sel[0].Rows) != 1 || sel[0].Rows[0]["name"] != "b" {
		t.Fatalf("updated rows = %v", sel[0].Rows)
	}
	res = mustTransact(t, db, OpDelete("Port", Cond("name", "==", "a")))
	if res[0].Count != 1 || db.RowCount("Port") != 1 {
		t.Fatalf("delete count = %d, rows = %d", res[0].Count, db.RowCount("Port"))
	}
	// Delete with no where deletes everything.
	res = mustTransact(t, db, OpDelete("Port"))
	if res[0].Count != 1 || db.RowCount("Port") != 0 {
		t.Fatalf("delete all failed: %+v", res[0])
	}
}

func TestMutateSetAndMap(t *testing.T) {
	db := newTestDB(t)
	mustTransact(t, db, OpInsert("Port", map[string]Value{
		"name": "p", "number": int64(5), "trunks": NewSet(int64(1)),
	}))
	mustTransact(t, db, OpMutate("Port", [][3]json.RawMessage{
		Mutation("trunks", "insert", NewSet(int64(2), int64(3))),
		Mutation("number", "+=", int64(10)),
		Mutation("options", "insert", NewMap([2]Atom{"k", "v"})),
	}, Cond("name", "==", "p")))
	sel := mustTransact(t, db, OpSelect("Port"))
	row := sel[0].Rows[0]
	trunks := row["trunks"].([]any)
	if trunks[0] != "set" {
		t.Fatalf("trunks = %v", row["trunks"])
	}
	if n := len(trunks[1].([]any)); n != 3 {
		t.Fatalf("trunks has %d elements", n)
	}
	mustTransact(t, db, OpMutate("Port", [][3]json.RawMessage{
		Mutation("trunks", "delete", NewSet(int64(2))),
	}, Cond("name", "==", "p")))
	sel = mustTransact(t, db, OpSelect("Port", Cond("trunks", "includes", NewSet(int64(2)))))
	if len(sel[0].Rows) != 0 {
		t.Fatalf("deleted trunk still present")
	}
	sel = mustTransact(t, db, OpSelect("Port", Cond("number", "==", int64(15))))
	if len(sel[0].Rows) != 1 {
		t.Fatalf("+= mutation lost")
	}
}

func TestTransactionRollback(t *testing.T) {
	db := newTestDB(t)
	mustTransact(t, db, OpInsert("Port", map[string]Value{"name": "keep", "number": int64(1)}))
	// Second op fails (duplicate index): the first op must roll back.
	res := db.Transact([]Operation{
		OpUpdate("Port", map[string]Value{"number": int64(99)}),
		OpInsert("Port", map[string]Value{"name": "keep"}),
	})
	if res[1].Error == "" {
		t.Fatalf("expected failure on duplicate insert")
	}
	sel := mustTransact(t, db, OpSelect("Port"))
	if sel[0].Rows[0]["number"] != int64(1) && sel[0].Rows[0]["number"] != float64(1) {
		t.Fatalf("update was not rolled back: %v", sel[0].Rows[0])
	}
}

func TestAbortRollsBack(t *testing.T) {
	db := newTestDB(t)
	res := db.Transact([]Operation{
		OpInsert("Port", map[string]Value{"name": "x"}),
		{Op: "abort"},
	})
	if res[1].Error != "aborted" {
		t.Fatalf("abort result = %+v", res[1])
	}
	if db.RowCount("Port") != 0 {
		t.Fatalf("abort did not roll back")
	}
}

func TestNamedUUID(t *testing.T) {
	db := newTestDB(t)
	mustTransact(t, db,
		OpInsertNamed("Port", "myport", map[string]Value{"name": "p1"}),
		Operation{Op: "insert", Table: "Bridge", Row: map[string]any{
			"name":  "br0",
			"ports": []any{"set", []any{[]any{"named-uuid", "myport"}}},
		}},
	)
	sel := mustTransact(t, db,
		OpSelect("Port", Cond("name", "==", "p1")),
		OpSelect("Bridge"),
	)
	portUUID := sel[0].Rows[0]["_uuid"].([]any)[1].(string)
	ports := sel[1].Rows[0]["ports"].([]any)
	// Singleton sets serialize as the bare atom.
	if ports[0] != "uuid" || ports[1].(string) != portUUID {
		t.Fatalf("bridge ports = %v, want uuid %s", ports, portUUID)
	}
}

func TestWaitOp(t *testing.T) {
	db := newTestDB(t)
	mustTransact(t, db, OpInsert("Port", map[string]Value{"name": "w", "number": int64(3)}))
	// until == with matching rows succeeds.
	res := db.Transact([]Operation{{
		Op: "wait", Table: "Port", Until: "==",
		Where:   [][3]json.RawMessage{Cond("name", "==", "w")},
		Columns: []string{"number"},
		Rows:    []map[string]any{{"number": 3}},
	}})
	if res[0].Error != "" {
		t.Fatalf("wait == failed: %+v", res[0])
	}
	// until == with mismatching rows fails the transaction.
	res = db.Transact([]Operation{{
		Op: "wait", Table: "Port", Until: "==",
		Where:   [][3]json.RawMessage{Cond("name", "==", "w")},
		Columns: []string{"number"},
		Rows:    []map[string]any{{"number": 4}},
	}})
	if res[0].Error != "timed out" {
		t.Fatalf("wait mismatch = %+v", res[0])
	}
}

func TestSelectByUUIDAndRelops(t *testing.T) {
	db := newTestDB(t)
	res := mustTransact(t, db, OpInsert("Port", map[string]Value{"name": "u", "number": int64(7)}))
	id := UUID(res[0].UUID.([]any)[1].(string))
	sel := mustTransact(t, db, OpSelect("Port", Cond("_uuid", "==", id)))
	if len(sel[0].Rows) != 1 {
		t.Fatalf("select by uuid found %d rows", len(sel[0].Rows))
	}
	sel = mustTransact(t, db, OpSelect("Port", Cond("number", "<=", int64(7)),
		Cond("number", ">", int64(6))))
	if len(sel[0].Rows) != 1 {
		t.Fatalf("relational select found %d rows", len(sel[0].Rows))
	}
}

func TestUnknownTableAndOp(t *testing.T) {
	db := newTestDB(t)
	res := db.Transact([]Operation{{Op: "insert", Table: "Nope"}})
	if res[0].Error != "unknown table" {
		t.Fatalf("unknown table = %+v", res[0])
	}
	res = db.Transact([]Operation{{Op: "frobnicate"}})
	if res[0].Error != "unknown operation" {
		t.Fatalf("unknown op = %+v", res[0])
	}
}

func TestValueJSONRoundTrip(t *testing.T) {
	ct := &ColumnType{Key: BaseType{Type: "integer"}, Min: 0, Max: Unlimited}
	orig := NewSet(int64(3), int64(1), int64(2))
	j := ValueToJSON(orig)
	back, err := ValueFromJSON(jsonRoundTrip(t, j), ct)
	if err != nil {
		t.Fatalf("ValueFromJSON: %v", err)
	}
	if !ValueEqual(orig, back) {
		t.Fatalf("set round trip: %v != %v", orig, back)
	}
	mct := &ColumnType{Key: BaseType{Type: "string"}, Value: &BaseType{Type: "uuid"}, Min: 0, Max: Unlimited}
	u := NewUUID()
	om := NewMap([2]Atom{"a", u})
	back, err = ValueFromJSON(jsonRoundTrip(t, ValueToJSON(om)), mct)
	if err != nil {
		t.Fatalf("map ValueFromJSON: %v", err)
	}
	if !ValueEqual(om, back) {
		t.Fatalf("map round trip: %v != %v", om, back)
	}
}

// jsonRoundTrip forces a value through encoding/json the way the wire does.
func jsonRoundTrip(t *testing.T, v any) any {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	out, err := decodeRawJSON(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return out
}

func TestUUIDFormat(t *testing.T) {
	u := NewUUID()
	if len(string(u)) != 36 || strings.Count(string(u), "-") != 4 {
		t.Fatalf("UUID format: %s", u)
	}
	if NewUUID() == NewUUID() {
		t.Fatalf("UUIDs collide")
	}
}

func TestEnumConstraint(t *testing.T) {
	schema, err := ParseSchema([]byte(`{
	  "name": "E",
	  "tables": {"T": {"columns": {
	    "kind": {"type": {"key": {"type": "string", "enum": ["set", ["a", "b"]]}}}
	  }}}
	}`))
	if err != nil {
		t.Fatalf("ParseSchema: %v", err)
	}
	db := NewDatabase(schema)
	res := db.Transact([]Operation{OpInsert("T", map[string]Value{"kind": "a"})})
	if res[0].Error != "" {
		t.Fatalf("enum value rejected: %+v", res[0])
	}
	res = db.Transact([]Operation{OpInsert("T", map[string]Value{"kind": "z"})})
	if res[0].Error == "" {
		t.Fatalf("non-enum value accepted")
	}
}
