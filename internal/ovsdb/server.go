package ovsdb

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/jsonrpc"
	"repro/internal/obs"
)

// Server exposes one or more databases over the OVSDB JSON-RPC protocol:
// list_dbs, get_schema, transact, monitor, monitor_cancel, and echo.
type Server struct {
	mu  sync.Mutex
	dbs map[string]*Database

	lnMu      sync.Mutex
	listeners map[net.Listener]bool
	conns     map[*jsonrpc.Conn]bool
	closed    bool

	// kaInterval/kaMisses, when set, start echo keepalives on every
	// accepted connection so half-open clients are reaped.
	kaInterval time.Duration
	kaMisses   int

	// wrLimit caps each accepted connection's JSON-RPC write queue
	// (0 = default, <0 = unlimited); see SetWriteLimit.
	wrLimit int
	// overflowBase accumulates departed connections' overflow counts so
	// the jsonrpc_write_overflows_total reading stays monotonic.
	overflowBase uint64
}

// defaultWriteLimit bounds an accepted connection's write queue unless
// SetWriteLimit overrides it. Monitor fan-out (handleMonitor) enqueues
// every committed transaction into each monitoring client's queue, so
// a stalled monitor previously grew server memory without bound; at
// the cap the connection fails, and the resilient client redials and
// resyncs (the PR-5 reconnection path).
const defaultWriteLimit = 16384

// SetKeepalive makes every subsequently accepted connection probe its
// peer with echo heartbeats: misses consecutive failures fail the
// connection. Call before Serve; 0 disables.
func (s *Server) SetKeepalive(interval time.Duration, misses int) {
	s.lnMu.Lock()
	s.kaInterval, s.kaMisses = interval, misses
	s.lnMu.Unlock()
}

// SetWriteLimit caps the JSON-RPC write queue of every subsequently
// accepted connection; overflow fails the connection (the client's
// reconnect-and-resync path recovers). 0 restores the default
// (16384); negative disables the cap. Call before Serve.
func (s *Server) SetWriteLimit(limit int) {
	s.lnMu.Lock()
	s.wrLimit = limit
	s.lnMu.Unlock()
}

// SetObs registers the server's jsonrpc queue instrumentation (depth
// gauge and overflow counter, labeled server="ovsdb") with the given
// observer. Nil-safe.
func (s *Server) SetObs(o *obs.Observer) {
	reg := o.Reg()
	reg.GaugeFunc("jsonrpc_write_queue_depth",
		"Messages queued in JSON-RPC write queues.", func() float64 {
			s.lnMu.Lock()
			defer s.lnMu.Unlock()
			n := 0
			for c := range s.conns {
				n += c.WriteQueueLen()
			}
			return float64(n)
		}, obs.L("server", "ovsdb"))
	reg.CounterFunc("jsonrpc_write_overflows_total",
		"Sends rejected by the JSON-RPC write-queue cap.", func() uint64 {
			s.lnMu.Lock()
			defer s.lnMu.Unlock()
			n := s.overflowBase
			for c := range s.conns {
				n += c.WriteOverflows()
			}
			return n
		}, obs.L("server", "ovsdb"))
}

// NewServer creates a server hosting the given databases.
func NewServer(dbs ...*Database) *Server {
	s := &Server{
		dbs:       make(map[string]*Database),
		listeners: make(map[net.Listener]bool),
		conns:     make(map[*jsonrpc.Conn]bool),
	}
	for _, db := range dbs {
		s.dbs[db.Schema().Name] = db
	}
	return s
}

// Database returns the named hosted database, or nil.
func (s *Server) Database(name string) *Database {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dbs[name]
}

// Serve accepts connections on ln until the listener is closed. It always
// returns a non-nil error (net.ErrClosed after Close).
func (s *Server) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	if s.closed {
		s.lnMu.Unlock()
		ln.Close()
		return net.ErrClosed
	}
	s.listeners[ln] = true
	s.lnMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		s.serveConn(conn)
	}
}

// ListenAndServe listens on a TCP address and serves it.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Close stops all listeners and connections.
func (s *Server) Close() {
	s.lnMu.Lock()
	s.closed = true
	for ln := range s.listeners {
		ln.Close()
	}
	conns := make([]*jsonrpc.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.lnMu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// serveConn wires one client connection. The connection is published into
// the handler state before its loops start, so request handling never
// observes a half-built serverConn.
func (s *Server) serveConn(nc net.Conn) {
	sc := &serverConn{server: s, monitors: make(map[string]*Monitor)}
	conn := jsonrpc.NewConnPending(nc)
	sc.conn = conn
	s.lnMu.Lock()
	limit := s.wrLimit
	s.lnMu.Unlock()
	if limit == 0 {
		limit = defaultWriteLimit
	}
	if limit > 0 {
		conn.SetWriteLimit(limit, jsonrpc.FailConn)
	}
	conn.Start(sc)
	s.lnMu.Lock()
	s.conns[conn] = true
	ka, misses := s.kaInterval, s.kaMisses
	s.lnMu.Unlock()
	if ka > 0 {
		conn.StartKeepalive(ka, misses)
	}
	go func() {
		<-conn.Done()
		sc.teardown()
		s.lnMu.Lock()
		delete(s.conns, conn)
		s.overflowBase += conn.WriteOverflows()
		s.lnMu.Unlock()
	}()
}

// serverConn is the per-connection protocol state.
type serverConn struct {
	server *Server
	conn   *jsonrpc.Conn

	mu       sync.Mutex
	monitors map[string]*Monitor // keyed by canonical monitor-id JSON
}

func (sc *serverConn) teardown() {
	sc.mu.Lock()
	mons := make([]*Monitor, 0, len(sc.monitors))
	for _, m := range sc.monitors {
		mons = append(mons, m)
	}
	sc.monitors = make(map[string]*Monitor)
	sc.mu.Unlock()
	for _, m := range mons {
		m.Cancel()
	}
}

func rpcErr(code, details string) *jsonrpc.RPCError {
	return &jsonrpc.RPCError{Code: code, Details: details}
}

// Handle dispatches one OVSDB method.
func (sc *serverConn) Handle(_ *jsonrpc.Conn, method string, params json.RawMessage) (any, *jsonrpc.RPCError) {
	switch method {
	case "echo":
		var v any
		if len(params) > 0 {
			if err := json.Unmarshal(params, &v); err != nil {
				return nil, rpcErr("bad params", err.Error())
			}
		}
		if v == nil {
			v = []any{}
		}
		return v, nil
	case "list_dbs":
		sc.server.mu.Lock()
		names := make([]string, 0, len(sc.server.dbs))
		for name := range sc.server.dbs {
			names = append(names, name)
		}
		sc.server.mu.Unlock()
		return names, nil
	case "get_schema":
		var p []string
		if err := json.Unmarshal(params, &p); err != nil || len(p) != 1 {
			return nil, rpcErr("bad params", "get_schema expects [db-name]")
		}
		db := sc.server.Database(p[0])
		if db == nil {
			return nil, rpcErr("unknown database", p[0])
		}
		return schemaToJSON(db.Schema()), nil
	case "transact":
		return sc.handleTransact(params)
	case "monitor":
		return sc.handleMonitor(params)
	case "monitor_cancel":
		return sc.handleMonitorCancel(params)
	default:
		return nil, rpcErr("unknown method", method)
	}
}

func (sc *serverConn) handleTransact(params json.RawMessage) (any, *jsonrpc.RPCError) {
	var raw []json.RawMessage
	if err := json.Unmarshal(params, &raw); err != nil || len(raw) < 1 {
		return nil, rpcErr("bad params", "transact expects [db-name, op...]")
	}
	var dbName string
	if err := json.Unmarshal(raw[0], &dbName); err != nil {
		return nil, rpcErr("bad params", "db-name must be a string")
	}
	db := sc.server.Database(dbName)
	if db == nil {
		return nil, rpcErr("unknown database", dbName)
	}
	ops := make([]Operation, 0, len(raw)-1)
	for _, r := range raw[1:] {
		var op Operation
		if err := json.Unmarshal(r, &op); err != nil {
			return nil, rpcErr("bad params", fmt.Sprintf("bad operation: %v", err))
		}
		ops = append(ops, op)
	}
	results := db.Transact(ops)
	out := make([]any, len(results))
	for i, r := range results {
		out[i] = opResultToJSON(&r)
	}
	return out, nil
}

// opResultToJSON renders an OpResult without omitting meaningful zeroes.
func opResultToJSON(r *OpResult) map[string]any {
	m := make(map[string]any)
	if r.Error != "" {
		m["error"] = r.Error
		if r.Details != "" {
			m["details"] = r.Details
		}
		return m
	}
	if r.UUID != nil {
		m["uuid"] = r.UUID
	}
	if r.Rows != nil {
		m["rows"] = r.Rows
	}
	if r.UUID == nil && r.Rows == nil {
		m["count"] = r.Count
	}
	return m
}

func (sc *serverConn) handleMonitor(params json.RawMessage) (any, *jsonrpc.RPCError) {
	var raw []json.RawMessage
	if err := json.Unmarshal(params, &raw); err != nil || len(raw) < 3 || len(raw) > 4 {
		return nil, rpcErr("bad params", "monitor expects [db-name, id, requests] or [db-name, id, requests, since]")
	}
	// Optional fourth element (this repo's durability extension): a txn
	// cursor. Its presence also changes the reply shape to
	// [found, last-txn, gap-or-initial] so the client learns its new
	// cursor; three-element requests keep the RFC 7047 reply.
	since, hasSince := NoCursor, false
	if len(raw) == 4 {
		if err := json.Unmarshal(raw[3], &since); err != nil {
			return nil, rpcErr("bad params", "since must be a transaction id")
		}
		hasSince = true
	}
	var dbName string
	if err := json.Unmarshal(raw[0], &dbName); err != nil {
		return nil, rpcErr("bad params", "db-name must be a string")
	}
	db := sc.server.Database(dbName)
	if db == nil {
		return nil, rpcErr("unknown database", dbName)
	}
	monID := canonicalJSON(raw[1])
	var rawReqs map[string]json.RawMessage
	if err := json.Unmarshal(raw[2], &rawReqs); err != nil {
		return nil, rpcErr("bad params", "monitor requests must be an object")
	}
	requests := make(map[string]*MonitorRequest, len(rawReqs))
	for table, rr := range rawReqs {
		req, err := parseMonitorRequest(rr)
		if err != nil {
			return nil, rpcErr("bad params", fmt.Sprintf("table %s: %v", table, err))
		}
		requests[table] = req
	}
	sc.mu.Lock()
	if _, dup := sc.monitors[monID]; dup {
		sc.mu.Unlock()
		return nil, rpcErr("duplicate monitor id", monID)
	}
	sc.mu.Unlock()

	idCopy := append(json.RawMessage{}, raw[1]...)
	// The txn ID rides as an optional third element of the update
	// notification so clients can correlate updates with traced
	// transactions; RFC 7047 clients that expect two elements should
	// ignore extras.
	mon, found, lastTxn, gap, initial, err := db.AddMonitorSince(requests, since, func(txn uint64, tu TableUpdates) {
		sc.conn.Notify("update", []any{json.RawMessage(idCopy), tu, txn})
	})
	if err != nil {
		return nil, rpcErr("bad request", err.Error())
	}
	sc.mu.Lock()
	sc.monitors[monID] = mon
	sc.mu.Unlock()
	if !hasSince {
		return initial, nil
	}
	if found {
		return []any{true, lastTxn, gap}, nil
	}
	return []any{false, lastTxn, initial}, nil
}

// parseMonitorRequest accepts an object or an array of objects (RFC 7047
// allows both); arrays are merged: column union, select OR.
func parseMonitorRequest(raw json.RawMessage) (*MonitorRequest, error) {
	var one MonitorRequest
	if err := json.Unmarshal(raw, &one); err == nil {
		return &one, nil
	}
	var many []MonitorRequest
	if err := json.Unmarshal(raw, &many); err != nil {
		return nil, fmt.Errorf("malformed monitor request")
	}
	if len(many) == 0 {
		return &MonitorRequest{}, nil
	}
	merged := many[0]
	for _, r := range many[1:] {
		merged.Columns = append(merged.Columns, r.Columns...)
	}
	return &merged, nil
}

func (sc *serverConn) handleMonitorCancel(params json.RawMessage) (any, *jsonrpc.RPCError) {
	var raw []json.RawMessage
	if err := json.Unmarshal(params, &raw); err != nil || len(raw) != 1 {
		return nil, rpcErr("bad params", "monitor_cancel expects [id]")
	}
	monID := canonicalJSON(raw[0])
	sc.mu.Lock()
	mon := sc.monitors[monID]
	delete(sc.monitors, monID)
	sc.mu.Unlock()
	if mon == nil {
		return nil, rpcErr("unknown monitor", monID)
	}
	mon.Cancel()
	return map[string]any{}, nil
}

// canonicalJSON normalizes a JSON value for use as a map key.
func canonicalJSON(raw json.RawMessage) string {
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		return string(raw)
	}
	out, err := json.Marshal(v)
	if err != nil {
		return string(raw)
	}
	return string(out)
}

// schemaToJSON renders a schema in .ovsschema form.
func schemaToJSON(ds *DatabaseSchema) map[string]any {
	tables := make(map[string]any, len(ds.Tables))
	for tname, ts := range ds.Tables {
		cols := make(map[string]any, len(ts.Columns))
		for cname, cs := range ts.Columns {
			cols[cname] = map[string]any{"type": columnTypeToJSON(&cs.Type)}
		}
		tj := map[string]any{"columns": cols}
		if ts.MaxRows > 0 {
			tj["maxRows"] = ts.MaxRows
		}
		if ts.IsRoot {
			tj["isRoot"] = true
		}
		if len(ts.Indexes) > 0 {
			tj["indexes"] = ts.Indexes
		}
		tables[tname] = tj
	}
	return map[string]any{"name": ds.Name, "version": ds.Version, "tables": tables}
}

func columnTypeToJSON(ct *ColumnType) any {
	if ct.IsScalar() && ct.Key.Enum == nil {
		return ct.Key.Type
	}
	out := map[string]any{"key": baseTypeToJSON(&ct.Key)}
	if ct.Value != nil {
		out["value"] = baseTypeToJSON(ct.Value)
	}
	if ct.Min != 1 {
		out["min"] = ct.Min
	}
	if ct.Max == Unlimited {
		out["max"] = "unlimited"
	} else if ct.Max != 1 {
		out["max"] = ct.Max
	}
	return out
}

func baseTypeToJSON(bt *BaseType) any {
	if bt.Enum == nil {
		return bt.Type
	}
	return map[string]any{"type": bt.Type, "enum": ValueToJSON(bt.Enum)}
}
