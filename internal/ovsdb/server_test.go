package ovsdb

import (
	"encoding/json"
	"net"
	"sync"
	"testing"
	"time"
)

// startServer runs a Server on an ephemeral port and returns a connected
// client.
func startServer(t *testing.T) (*Server, *Client, *Database) {
	t.Helper()
	schema, err := ParseSchema([]byte(testSchema))
	if err != nil {
		t.Fatalf("ParseSchema: %v", err)
	}
	db := NewDatabase(schema)
	srv := NewServer(db)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	t.Cleanup(srv.Close)
	client, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { client.Close() })
	testAddrs.Store(client, ln.Addr().String())
	return srv, client, db
}

func TestClientListDbsAndSchema(t *testing.T) {
	_, client, _ := startServer(t)
	dbs, err := client.ListDbs()
	if err != nil || len(dbs) != 1 || dbs[0] != "TestDB" {
		t.Fatalf("ListDbs = %v, %v", dbs, err)
	}
	schema, err := client.GetSchema("TestDB")
	if err != nil {
		t.Fatalf("GetSchema: %v", err)
	}
	if schema.Name != "TestDB" || schema.Tables["Port"] == nil {
		t.Fatalf("schema round trip broken: %+v", schema)
	}
	if !schema.Tables["Port"].Columns["trunks"].Type.IsScalar() == false {
		t.Fatalf("trunks type lost in round trip")
	}
	if _, err := client.GetSchema("Nope"); err == nil {
		t.Fatalf("GetSchema(Nope) succeeded")
	}
}

func TestClientEcho(t *testing.T) {
	_, client, _ := startServer(t)
	if err := client.Echo(); err != nil {
		t.Fatalf("Echo: %v", err)
	}
}

func TestClientTransactRoundTrip(t *testing.T) {
	_, client, db := startServer(t)
	results, err := client.TransactErr("TestDB",
		OpInsert("Port", map[string]Value{"name": "eth0", "number": int64(4)}),
		OpSelect("Port", Cond("name", "==", "eth0")),
	)
	if err != nil {
		t.Fatalf("Transact: %v", err)
	}
	id, ok := results[0].UUID.(UUID)
	if !ok || id == "" {
		t.Fatalf("insert uuid = %v", results[0].UUID)
	}
	if len(results[1].Rows) != 1 {
		t.Fatalf("select rows = %v", results[1].Rows)
	}
	// Parse the row back into typed values.
	ts := db.Schema().Tables["Port"]
	row, err := RowFromJSON(ts, results[1].Rows[0])
	if err != nil {
		t.Fatalf("RowFromJSON: %v", err)
	}
	if row["number"] != int64(4) {
		t.Fatalf("number = %v (%T)", row["number"], row["number"])
	}
	if db.RowCount("Port") != 1 {
		t.Fatalf("server row count = %d", db.RowCount("Port"))
	}
}

func TestClientTransactError(t *testing.T) {
	_, client, _ := startServer(t)
	_, err := client.TransactErr("TestDB", Operation{Op: "insert", Table: "Nope"})
	if err == nil {
		t.Fatalf("bad transact succeeded")
	}
	if _, err := client.Transact("NoDB", OpSelect("Port")); err == nil {
		t.Fatalf("unknown database accepted")
	}
}

// collector gathers monitor updates safely.
type collector struct {
	mu      sync.Mutex
	updates []TableUpdates
}

func (c *collector) add(tu TableUpdates) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.updates = append(c.updates, tu)
}

func (c *collector) waitFor(t *testing.T, n int) []TableUpdates {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		if len(c.updates) >= n {
			out := append([]TableUpdates{}, c.updates...)
			c.mu.Unlock()
			return out
		}
		c.mu.Unlock()
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d updates", n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestMonitorInitialAndUpdates(t *testing.T) {
	_, client, _ := startServer(t)
	// Pre-populate one row for the initial dump.
	if _, err := client.TransactErr("TestDB",
		OpInsert("Port", map[string]Value{"name": "pre", "number": int64(1)})); err != nil {
		t.Fatal(err)
	}
	col := &collector{}
	initial, err := client.Monitor("TestDB", "mon1", map[string]*MonitorRequest{
		"Port": {Columns: []string{"name", "number"}},
	}, col.add)
	if err != nil {
		t.Fatalf("Monitor: %v", err)
	}
	if len(initial["Port"]) != 1 {
		t.Fatalf("initial = %v", initial)
	}
	for _, ru := range initial["Port"] {
		if ru.New["name"] != "pre" {
			t.Fatalf("initial row = %v", ru)
		}
		if ru.Old != nil {
			t.Fatalf("initial row has old: %v", ru)
		}
	}
	// Insert, modify, delete -> three ordered notifications.
	if _, err := client.TransactErr("TestDB",
		OpInsert("Port", map[string]Value{"name": "live", "number": int64(2)})); err != nil {
		t.Fatal(err)
	}
	if _, err := client.TransactErr("TestDB",
		OpUpdate("Port", map[string]Value{"number": int64(3)}, Cond("name", "==", "live"))); err != nil {
		t.Fatal(err)
	}
	if _, err := client.TransactErr("TestDB",
		OpDelete("Port", Cond("name", "==", "live"))); err != nil {
		t.Fatal(err)
	}
	ups := col.waitFor(t, 3)
	// 1: insert (new only)
	for _, ru := range ups[0]["Port"] {
		if ru.Old != nil || ru.New["name"] != "live" {
			t.Fatalf("insert update = %+v", ru)
		}
	}
	// 2: modify (old has only the changed column)
	for _, ru := range ups[1]["Port"] {
		if ru.New == nil || ru.Old == nil {
			t.Fatalf("modify update = %+v", ru)
		}
		if _, hasName := ru.Old["name"]; hasName {
			t.Fatalf("modify old contains unchanged column: %+v", ru.Old)
		}
		if _, hasNum := ru.Old["number"]; !hasNum {
			t.Fatalf("modify old lacks changed column: %+v", ru.Old)
		}
	}
	// 3: delete (old only)
	for _, ru := range ups[2]["Port"] {
		if ru.New != nil || ru.Old["name"] != "live" {
			t.Fatalf("delete update = %+v", ru)
		}
	}
}

func TestMonitorUnselectedTableSilent(t *testing.T) {
	_, client, _ := startServer(t)
	col := &collector{}
	if _, err := client.Monitor("TestDB", 7, map[string]*MonitorRequest{
		"Bridge": {},
	}, col.add); err != nil {
		t.Fatalf("Monitor: %v", err)
	}
	if _, err := client.TransactErr("TestDB",
		OpInsert("Port", map[string]Value{"name": "x"})); err != nil {
		t.Fatal(err)
	}
	if _, err := client.TransactErr("TestDB",
		OpInsert("Bridge", map[string]Value{"name": "br"})); err != nil {
		t.Fatal(err)
	}
	ups := col.waitFor(t, 1)
	if _, hasPort := ups[0]["Port"]; hasPort {
		t.Fatalf("monitor leaked unselected table: %v", ups[0])
	}
	if _, hasBridge := ups[0]["Bridge"]; !hasBridge {
		t.Fatalf("monitor missed selected table")
	}
}

func TestMonitorCancel(t *testing.T) {
	_, client, _ := startServer(t)
	col := &collector{}
	if _, err := client.Monitor("TestDB", "c1", map[string]*MonitorRequest{
		"Port": {},
	}, col.add); err != nil {
		t.Fatal(err)
	}
	if err := client.MonitorCancel("c1"); err != nil {
		t.Fatalf("MonitorCancel: %v", err)
	}
	if _, err := client.TransactErr("TestDB",
		OpInsert("Port", map[string]Value{"name": "after"})); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	col.mu.Lock()
	n := len(col.updates)
	col.mu.Unlock()
	if n != 0 {
		t.Fatalf("cancelled monitor still received %d updates", n)
	}
	if err := client.MonitorCancel("c1"); err == nil {
		t.Fatalf("double cancel succeeded")
	}
}

func TestMonitorErrors(t *testing.T) {
	_, client, _ := startServer(t)
	if _, err := client.Monitor("TestDB", "bad", map[string]*MonitorRequest{
		"Nope": {},
	}, func(TableUpdates) {}); err == nil {
		t.Fatalf("monitor on unknown table succeeded")
	}
	if _, err := client.Monitor("TestDB", "bad2", map[string]*MonitorRequest{
		"Port": {Columns: []string{"nope"}},
	}, func(TableUpdates) {}); err == nil {
		t.Fatalf("monitor on unknown column succeeded")
	}
}

func TestServerSurvivesMalformedClient(t *testing.T) {
	srv, client, _ := startServer(t)
	_ = srv
	// A raw connection that sends garbage must not take the server down.
	nc, err := net.Dial("tcp", clientAddr(t, client))
	if err != nil {
		t.Fatalf("re-dial failed: %v", err)
	}
	nc.Write([]byte("garbage not json"))
	nc.Close()
	time.Sleep(20 * time.Millisecond)
	// The original client still works.
	if _, err := client.ListDbs(); err != nil {
		t.Fatalf("server broke after malformed client: %v", err)
	}
}

// testAddrs records each test client's server address, letting tests dial
// additional raw connections to the same server.
var testAddrs sync.Map

func clientAddr(t *testing.T, c *Client) string {
	t.Helper()
	v, ok := testAddrs.Load(c)
	if !ok {
		t.Fatal("no recorded address for client")
	}
	return v.(string)
}

func TestConcurrentTransactions(t *testing.T) {
	_, client, db := startServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 50)
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := client.TransactErr("TestDB", OpInsert("Port", map[string]Value{
				"name": "p" + string(rune('A'+i%26)) + string(rune('0'+i/26)),
			}))
			errs <- err
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("concurrent transact: %v", err)
		}
	}
	if db.RowCount("Port") != 50 {
		t.Fatalf("row count = %d, want 50", db.RowCount("Port"))
	}
}

func TestMonitorOrderingUnderLoad(t *testing.T) {
	_, client, _ := startServer(t)
	type numbered struct {
		n  int64
		op string
	}
	var mu sync.Mutex
	var seen []numbered
	_, err := client.Monitor("TestDB", "ord", map[string]*MonitorRequest{
		"Port": {Columns: []string{"number"}},
	}, func(tu TableUpdates) {
		mu.Lock()
		defer mu.Unlock()
		for _, ru := range tu["Port"] {
			if ru.New != nil {
				num, _ := ru.New["number"].(json.Number)
				v, _ := num.Int64()
				seen = append(seen, numbered{n: v, op: "ins"})
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		if _, err := client.TransactErr("TestDB", OpInsert("Port", map[string]Value{
			"name":   "ord" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+i/676)),
			"number": int64(i),
		})); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		count := len(seen)
		mu.Unlock()
		if count >= n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("saw %d/%d updates", count, n)
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < n; i++ {
		if seen[i].n != int64(i) {
			t.Fatalf("update %d out of order: got number %d", i, seen[i].n)
		}
	}
}
