package jsonrpc

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"
)

// hungHandler accepts requests but never answers: the peer stays alive
// on the wire while every call it issued hangs.
func hungHandler(block chan struct{}) Handler {
	return HandlerFunc(func(_ *Conn, method string, params json.RawMessage) (any, *RPCError) {
		<-block
		return "late", nil
	})
}

func (c *Conn) pendingCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

func TestCallTimeoutAgainstHungPeer(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	ca, _ := pipePair(t, nil, hungHandler(block))
	start := time.Now()
	err := ca.CallTimeout("slow", nil, nil, 50*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("CallTimeout = %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
	if n := ca.pendingCount(); n != 0 {
		t.Fatalf("pending map holds %d entries after timeout, want 0", n)
	}
}

func TestCallTimeoutPendingMapDoesNotGrow(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	ca, _ := pipePair(t, nil, hungHandler(block))
	for i := 0; i < 20; i++ {
		if err := ca.CallTimeout("slow", nil, nil, time.Millisecond); !errors.Is(err, ErrTimeout) {
			t.Fatalf("call %d: %v, want ErrTimeout", i, err)
		}
	}
	if n := ca.pendingCount(); n != 0 {
		t.Fatalf("pending map grew to %d entries across timed-out calls", n)
	}
}

func TestSetCallTimeoutAppliesToCall(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	ca, _ := pipePair(t, nil, hungHandler(block))
	ca.SetCallTimeout(20 * time.Millisecond)
	if err := ca.Call("slow", nil, nil); !errors.Is(err, ErrTimeout) {
		t.Fatalf("Call with default timeout = %v, want ErrTimeout", err)
	}
}

func TestConnUsableAfterTimeout(t *testing.T) {
	block := make(chan struct{})
	h := HandlerFunc(func(_ *Conn, method string, params json.RawMessage) (any, *RPCError) {
		if method == "slow" {
			<-block
		}
		return "ok", nil
	})
	ca, _ := pipePair(t, nil, h)
	if err := ca.CallTimeout("slow", nil, nil, 10*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("slow call = %v, want ErrTimeout", err)
	}
	// Release the peer: its late reply to "slow" must be discarded (the
	// pending entry is gone) and the connection must keep working.
	close(block)
	var out string
	if err := ca.CallTimeout("fast", nil, &out, 2*time.Second); err != nil || out != "ok" {
		t.Fatalf("call after timeout = %q, %v", out, err)
	}
}

func TestKeepaliveFailsUnresponsiveConn(t *testing.T) {
	// The peer's read side stalls (nothing consumes our echo requests'
	// replies because the handler never answers): heartbeats miss and the
	// connection must fail within a few intervals.
	block := make(chan struct{})
	defer close(block)
	ca, _ := pipePair(t, nil, hungHandler(block))
	ca.StartKeepalive(20*time.Millisecond, 2)
	select {
	case <-ca.Done():
		if !errors.Is(ca.Err(), ErrKeepalive) {
			t.Fatalf("Err() = %v, want ErrKeepalive", ca.Err())
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("keepalive never failed the hung connection")
	}
}

func TestKeepaliveKeepsHealthyConnAlive(t *testing.T) {
	ca, _ := pipePair(t, nil, echoHandler())
	ca.StartKeepalive(10*time.Millisecond, 2)
	select {
	case <-ca.Done():
		t.Fatalf("healthy connection failed: %v", ca.Err())
	case <-time.After(150 * time.Millisecond):
	}
	ca.StopKeepalive()
}

// blockableRWC is a stream whose Read blocks until eof is signalled
// (then returns io.EOF) and whose writes land in a buffer.
type blockableRWC struct {
	mu  sync.Mutex
	buf bytes.Buffer
	eof chan struct{}
}

func (b *blockableRWC) Read(p []byte) (int, error) {
	<-b.eof
	return 0, io.EOF
}

func (b *blockableRWC) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *blockableRWC) Close() error { return nil }

func (b *blockableRWC) contents() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestWriteLoopDrainsAcceptedOnDone pins the interleaving behind the
// historical silent-drop bug: a send whose accept check passed races
// read-side EOF, and the writer wakes on done with the acknowledged
// message still queued. Holding writeMu from the test stalls the sender
// between its accept check and its enqueue, making the interleaving
// deterministic: pre-fix the writer exited on done and the accepted
// notification vanished; post-fix the accept check and enqueue are
// atomic against fail(), so the drain pass always sees the message.
func TestWriteLoopDrainsAcceptedOnDone(t *testing.T) {
	rwc := &blockableRWC{eof: make(chan struct{})}
	c := NewConn(rwc, nil)
	time.Sleep(2 * time.Millisecond) // let the writer park in its select

	c.writeMu.Lock()
	errCh := make(chan error, 1)
	go func() { errCh <- c.Notify("probe", nil) }()
	time.Sleep(2 * time.Millisecond) // sender now blocked on writeMu
	go close(rwc.eof)                // read loop fails with EOF → fail() runs
	time.Sleep(2 * time.Millisecond)
	c.writeMu.Unlock()

	err := <-errCh
	<-c.Done()
	if err != nil {
		t.Skip("send observed the failure; nothing was acknowledged")
	}
	// Accepted ⇒ must reach the stream, even though done closed during
	// the race. The writer drains asynchronously; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for !bytes.Contains([]byte(rwc.contents()), []byte(`"probe"`)) {
		if time.Now().After(deadline) {
			t.Fatalf("accepted notification never written; wire=%q", rwc.contents())
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// waitGoroutines polls until the goroutine count drops back to within
// slack of base, tolerating runtime background churn.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > base %d\n%s", runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestConnGoroutinesTerminateOnClose(t *testing.T) {
	base := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		a, b := net.Pipe()
		ca := NewConn(a, echoHandler())
		cb := NewConn(b, echoHandler())
		ca.StartKeepalive(time.Millisecond, 3)
		var out string
		if err := ca.CallTimeout("echo", "x", &out, time.Second); err != nil {
			t.Fatalf("call: %v", err)
		}
		ca.Close()
		cb.Close()
	}
	waitGoroutines(t, base)
}

func TestConnGoroutinesTerminateOnPeerFailure(t *testing.T) {
	base := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		a, b := net.Pipe()
		ca := NewConn(a, nil)
		ca.StartKeepalive(time.Millisecond, 1)
		b.Close() // remote failure, not local Close
		<-ca.Done()
	}
	waitGoroutines(t, base)
}
