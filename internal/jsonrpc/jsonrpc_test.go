package jsonrpc

import (
	"encoding/json"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// pipePair returns two connected Conns over an in-memory duplex pipe.
func pipePair(t *testing.T, hA, hB Handler) (*Conn, *Conn) {
	t.Helper()
	a, b := net.Pipe()
	ca := NewConn(a, hA)
	cb := NewConn(b, hB)
	t.Cleanup(func() {
		ca.Close()
		cb.Close()
	})
	return ca, cb
}

func echoHandler() Handler {
	return HandlerFunc(func(_ *Conn, method string, params json.RawMessage) (any, *RPCError) {
		switch method {
		case "echo":
			var v any
			if err := json.Unmarshal(params, &v); err != nil {
				return nil, &RPCError{Code: "bad params"}
			}
			return v, nil
		case "fail":
			return nil, &RPCError{Code: "boom", Details: "requested failure"}
		default:
			return nil, &RPCError{Code: "unknown method", Details: method}
		}
	})
}

func TestCallRoundTrip(t *testing.T) {
	ca, _ := pipePair(t, nil, echoHandler())
	var got []string
	if err := ca.Call("echo", []string{"hello", "world"}, &got); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if len(got) != 2 || got[0] != "hello" {
		t.Errorf("echo result = %v", got)
	}
}

func TestCallError(t *testing.T) {
	ca, _ := pipePair(t, nil, echoHandler())
	err := ca.Call("fail", nil, nil)
	rpcErr, ok := err.(*RPCError)
	if !ok || rpcErr.Code != "boom" {
		t.Fatalf("Call error = %v, want RPCError boom", err)
	}
	if !strings.Contains(rpcErr.Error(), "requested failure") {
		t.Errorf("error text = %q", rpcErr.Error())
	}
}

func TestUnknownMethod(t *testing.T) {
	ca, _ := pipePair(t, nil, echoHandler())
	if err := ca.Call("nope", nil, nil); err == nil {
		t.Fatalf("unknown method succeeded")
	}
}

func TestNotify(t *testing.T) {
	var mu sync.Mutex
	var seen []string
	h := HandlerFunc(func(_ *Conn, method string, params json.RawMessage) (any, *RPCError) {
		mu.Lock()
		seen = append(seen, method)
		mu.Unlock()
		return nil, nil
	})
	ca, _ := pipePair(t, nil, h)
	if err := ca.Notify("update", map[string]int{"x": 1}); err != nil {
		t.Fatalf("Notify: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(seen)
		mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("notification never arrived")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBidirectionalCalls(t *testing.T) {
	ca, cb := pipePair(t, echoHandler(), echoHandler())
	var wg sync.WaitGroup
	errs := make(chan error, 40)
	for i := 0; i < 20; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			var out string
			errs <- ca.Call("echo", "ping", &out)
		}()
		go func() {
			defer wg.Done()
			var out string
			errs <- cb.Call("echo", "pong", &out)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("concurrent call failed: %v", err)
		}
	}
}

func TestCloseFailsPending(t *testing.T) {
	block := make(chan struct{})
	h := HandlerFunc(func(_ *Conn, method string, params json.RawMessage) (any, *RPCError) {
		<-block
		return nil, nil
	})
	ca, _ := pipePair(t, nil, h)
	done := make(chan error, 1)
	go func() { done <- ca.Call("slow", nil, nil) }()
	time.Sleep(10 * time.Millisecond)
	ca.Close()
	close(block)
	select {
	case err := <-done:
		if err == nil {
			t.Fatalf("pending call survived Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("pending call hung after Close")
	}
}

func TestMalformedStreamFailsConn(t *testing.T) {
	a, b := net.Pipe()
	ca := NewConn(a, nil)
	defer ca.Close()
	go b.Write([]byte("this is not json"))
	select {
	case <-ca.Done():
		if ca.Err() == nil {
			t.Fatalf("Err() nil after malformed input")
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("connection did not fail on malformed input")
	}
}

func TestWriteLimitFailsSlowPeer(t *testing.T) {
	// A peer that never reads must not grow the write queue without
	// bound: once the cap is hit, the connection fails (FailConn).
	a, b := net.Pipe()
	defer b.Close()
	ca := NewConn(a, nil)
	defer ca.Close()
	ca.SetWriteLimit(8, FailConn)
	var overflow error
	for i := 0; i < 100; i++ {
		if err := ca.Notify("update", []int{i}); err != nil {
			overflow = err
			break
		}
	}
	if !errors.Is(overflow, ErrWriteOverflow) {
		t.Fatalf("send against a stalled peer returned %v, want ErrWriteOverflow", overflow)
	}
	select {
	case <-ca.Done():
	case <-time.After(2 * time.Second):
		t.Fatalf("connection did not fail after write-queue overflow")
	}
	if err := ca.Err(); !errors.Is(err, ErrWriteOverflow) {
		t.Errorf("Err() = %v, want ErrWriteOverflow", err)
	}
	if got := ca.WriteOverflows(); got == 0 {
		t.Errorf("WriteOverflows() = 0, want > 0")
	}
}

func TestWriteLimitDropNewest(t *testing.T) {
	// DropNewest keeps the connection alive: overflowing sends are
	// rejected with ErrWriteOverflow, and once the peer drains, sends
	// succeed again.
	a, b := net.Pipe()
	ca := NewConn(a, nil)
	defer ca.Close()
	ca.SetWriteLimit(4, DropNewest)
	var dropped int
	for i := 0; i < 50; i++ {
		if err := ca.Notify("update", []int{i}); err != nil {
			if !errors.Is(err, ErrWriteOverflow) {
				t.Fatalf("send returned %v, want ErrWriteOverflow", err)
			}
			dropped++
		}
	}
	if dropped == 0 {
		t.Fatalf("no sends rejected against a stalled peer with a 4-message cap")
	}
	if uint64(dropped) != ca.WriteOverflows() {
		t.Errorf("WriteOverflows() = %d, want %d", ca.WriteOverflows(), dropped)
	}
	select {
	case <-ca.Done():
		t.Fatalf("DropNewest failed the connection: %v", ca.Err())
	default:
	}
	// Drain the peer; the queue empties and the connection serves again.
	go func() {
		dec := json.NewDecoder(b)
		for {
			var v any
			if dec.Decode(&v) != nil {
				return
			}
		}
	}()
	deadline := time.Now().Add(2 * time.Second)
	for ca.WriteQueueLen() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("write queue never drained: %d pending", ca.WriteQueueLen())
		}
		time.Sleep(time.Millisecond)
	}
	if err := ca.Notify("update", []string{"after-drain"}); err != nil {
		t.Fatalf("send after drain: %v", err)
	}
	b.Close()
}

func TestCloseFlushesAcceptedMessages(t *testing.T) {
	// Every message accepted by send before Close must reach the peer:
	// Close may not race the write loop's drain pass by closing the
	// stream under it.
	const n = 50
	for round := 0; round < 20; round++ {
		a, b := net.Pipe()
		ca := NewConn(a, nil)
		got := make(chan int, 1)
		go func() {
			dec := json.NewDecoder(b)
			count := 0
			for {
				var v any
				if dec.Decode(&v) != nil {
					got <- count
					return
				}
				count++
			}
		}()
		for i := 0; i < n; i++ {
			if err := ca.Notify("update", []int{i}); err != nil {
				t.Fatalf("round %d: send %d: %v", round, i, err)
			}
		}
		ca.Close()
		select {
		case count := <-got:
			if count != n {
				t.Fatalf("round %d: peer received %d of %d accepted messages", round, count, n)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("round %d: peer never saw the stream close", round)
		}
		b.Close()
	}
}

func TestConcatenatedMessages(t *testing.T) {
	// Two notifications in one write must both be dispatched (the OVSDB
	// wire format is concatenated JSON values, not newline-delimited).
	var mu sync.Mutex
	count := 0
	h := HandlerFunc(func(_ *Conn, method string, params json.RawMessage) (any, *RPCError) {
		mu.Lock()
		count++
		mu.Unlock()
		return nil, nil
	})
	a, b := net.Pipe()
	ca := NewConn(a, h)
	defer ca.Close()
	go b.Write([]byte(`{"method":"m","params":[],"id":null}{"method":"m","params":[],"id":null}`))
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := count
		mu.Unlock()
		if n == 2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("got %d messages, want 2", n)
		}
		time.Sleep(time.Millisecond)
	}
}
