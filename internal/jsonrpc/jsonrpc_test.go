package jsonrpc

import (
	"encoding/json"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// pipePair returns two connected Conns over an in-memory duplex pipe.
func pipePair(t *testing.T, hA, hB Handler) (*Conn, *Conn) {
	t.Helper()
	a, b := net.Pipe()
	ca := NewConn(a, hA)
	cb := NewConn(b, hB)
	t.Cleanup(func() {
		ca.Close()
		cb.Close()
	})
	return ca, cb
}

func echoHandler() Handler {
	return HandlerFunc(func(_ *Conn, method string, params json.RawMessage) (any, *RPCError) {
		switch method {
		case "echo":
			var v any
			if err := json.Unmarshal(params, &v); err != nil {
				return nil, &RPCError{Code: "bad params"}
			}
			return v, nil
		case "fail":
			return nil, &RPCError{Code: "boom", Details: "requested failure"}
		default:
			return nil, &RPCError{Code: "unknown method", Details: method}
		}
	})
}

func TestCallRoundTrip(t *testing.T) {
	ca, _ := pipePair(t, nil, echoHandler())
	var got []string
	if err := ca.Call("echo", []string{"hello", "world"}, &got); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if len(got) != 2 || got[0] != "hello" {
		t.Errorf("echo result = %v", got)
	}
}

func TestCallError(t *testing.T) {
	ca, _ := pipePair(t, nil, echoHandler())
	err := ca.Call("fail", nil, nil)
	rpcErr, ok := err.(*RPCError)
	if !ok || rpcErr.Code != "boom" {
		t.Fatalf("Call error = %v, want RPCError boom", err)
	}
	if !strings.Contains(rpcErr.Error(), "requested failure") {
		t.Errorf("error text = %q", rpcErr.Error())
	}
}

func TestUnknownMethod(t *testing.T) {
	ca, _ := pipePair(t, nil, echoHandler())
	if err := ca.Call("nope", nil, nil); err == nil {
		t.Fatalf("unknown method succeeded")
	}
}

func TestNotify(t *testing.T) {
	var mu sync.Mutex
	var seen []string
	h := HandlerFunc(func(_ *Conn, method string, params json.RawMessage) (any, *RPCError) {
		mu.Lock()
		seen = append(seen, method)
		mu.Unlock()
		return nil, nil
	})
	ca, _ := pipePair(t, nil, h)
	if err := ca.Notify("update", map[string]int{"x": 1}); err != nil {
		t.Fatalf("Notify: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(seen)
		mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("notification never arrived")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBidirectionalCalls(t *testing.T) {
	ca, cb := pipePair(t, echoHandler(), echoHandler())
	var wg sync.WaitGroup
	errs := make(chan error, 40)
	for i := 0; i < 20; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			var out string
			errs <- ca.Call("echo", "ping", &out)
		}()
		go func() {
			defer wg.Done()
			var out string
			errs <- cb.Call("echo", "pong", &out)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("concurrent call failed: %v", err)
		}
	}
}

func TestCloseFailsPending(t *testing.T) {
	block := make(chan struct{})
	h := HandlerFunc(func(_ *Conn, method string, params json.RawMessage) (any, *RPCError) {
		<-block
		return nil, nil
	})
	ca, _ := pipePair(t, nil, h)
	done := make(chan error, 1)
	go func() { done <- ca.Call("slow", nil, nil) }()
	time.Sleep(10 * time.Millisecond)
	ca.Close()
	close(block)
	select {
	case err := <-done:
		if err == nil {
			t.Fatalf("pending call survived Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("pending call hung after Close")
	}
}

func TestMalformedStreamFailsConn(t *testing.T) {
	a, b := net.Pipe()
	ca := NewConn(a, nil)
	defer ca.Close()
	go b.Write([]byte("this is not json"))
	select {
	case <-ca.Done():
		if ca.Err() == nil {
			t.Fatalf("Err() nil after malformed input")
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("connection did not fail on malformed input")
	}
}

func TestConcatenatedMessages(t *testing.T) {
	// Two notifications in one write must both be dispatched (the OVSDB
	// wire format is concatenated JSON values, not newline-delimited).
	var mu sync.Mutex
	count := 0
	h := HandlerFunc(func(_ *Conn, method string, params json.RawMessage) (any, *RPCError) {
		mu.Lock()
		count++
		mu.Unlock()
		return nil, nil
	})
	a, b := net.Pipe()
	ca := NewConn(a, h)
	defer ca.Close()
	go b.Write([]byte(`{"method":"m","params":[],"id":null}{"method":"m","params":[],"id":null}`))
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := count
		mu.Unlock()
		if n == 2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("got %d messages, want 2", n)
		}
		time.Sleep(time.Millisecond)
	}
}
