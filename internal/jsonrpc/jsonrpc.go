// Package jsonrpc implements the JSON-RPC 1.0 peer protocol as used by
// OVSDB (RFC 7047 §4): concatenated JSON messages over a reliable byte
// stream, with requests, notifications (id null), and responses flowing in
// both directions.
package jsonrpc

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// message is the wire form of all three message kinds.
type message struct {
	Method string          `json:"method,omitempty"`
	Params json.RawMessage `json:"params,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  json.RawMessage `json:"error,omitempty"`
	// ID is present (possibly null) on requests and responses. A pointer
	// distinguishes "absent" from "null".
	ID *json.RawMessage `json:"id,omitempty"`
}

func (m *message) isRequest() bool  { return m.Method != "" && m.ID != nil && !isNull(*m.ID) }
func (m *message) isNotify() bool   { return m.Method != "" && (m.ID == nil || isNull(*m.ID)) }
func (m *message) isResponse() bool { return m.Method == "" && m.ID != nil }

func isNull(raw json.RawMessage) bool { return string(raw) == "null" }

// RPCError is a protocol-level error returned by a peer.
type RPCError struct {
	Code    string `json:"error"`
	Details string `json:"details,omitempty"`
}

func (e *RPCError) Error() string {
	if e.Details != "" {
		return fmt.Sprintf("jsonrpc: %s: %s", e.Code, e.Details)
	}
	return "jsonrpc: " + e.Code
}

// Handler serves incoming requests and notifications on a connection.
// Handle runs on the connection's read loop: implementations must not
// block indefinitely. For a notification the result is discarded.
type Handler interface {
	Handle(c *Conn, method string, params json.RawMessage) (result any, err *RPCError)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(c *Conn, method string, params json.RawMessage) (any, *RPCError)

// Handle calls f.
func (f HandlerFunc) Handle(c *Conn, method string, params json.RawMessage) (any, *RPCError) {
	return f(c, method, params)
}

// Conn is a JSON-RPC peer connection. Both sides may issue calls and
// notifications concurrently.
type Conn struct {
	rwc     io.ReadWriteCloser
	handler Handler

	// Writes are decoupled from callers (and from the read loop, which
	// serves handlers) through a queue drained by a writer goroutine, so a
	// slow or synchronous peer never deadlocks request handling.
	writeMu     sync.Mutex
	writeQueue  [][]byte
	writeWake   chan struct{}
	writeLimit  int
	writePolicy OverflowPolicy
	// writeDone is closed when the write loop exits, so Close can wait
	// for accepted messages to reach the stream before tearing it down.
	writeDone chan struct{}
	started   atomic.Bool
	// queued counts messages accepted by send but not yet handed to the
	// stream (the write-queue depth, including the batch in flight).
	queued atomic.Int64
	// overflowed counts messages rejected by the write-queue cap.
	overflowed atomic.Uint64

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *message
	closed  bool
	readErr error
	done    chan struct{}

	// callTimeout bounds every Call issued without an explicit deadline
	// (0 = wait forever, the historical behavior).
	callTimeout time.Duration
	// kaStop terminates a running keepalive goroutine (nil when off).
	kaStop chan struct{}
	kaOnce sync.Once
}

// ErrTimeout marks a call that exceeded its deadline while the
// connection stayed open. The pending entry is removed, so a late reply
// is discarded rather than leaked.
var ErrTimeout = errors.New("jsonrpc: call timed out")

// ErrKeepalive marks a connection failed by the echo keepalive after
// missing too many consecutive heartbeats.
var ErrKeepalive = errors.New("jsonrpc: keepalive failed")

// ErrWriteOverflow marks a send rejected because the connection's write
// queue reached its configured cap: the peer is not draining its read
// side fast enough. Test with errors.Is.
var ErrWriteOverflow = errors.New("jsonrpc: write queue overflow")

// OverflowPolicy selects what happens to a send that would push the
// write queue past its cap.
type OverflowPolicy int

const (
	// FailConn fails the whole connection on overflow (the default): a
	// peer too slow to drain its socket is treated like a dead one, so
	// the server's memory stays bounded and the client's reconnect
	// machinery takes over. Right for streams whose messages must not be
	// silently skipped (monitor updates, responses).
	FailConn OverflowPolicy = iota
	// DropNewest rejects just the overflowing message: send returns
	// ErrWriteOverflow, the counter behind WriteOverflows increments,
	// and the connection stays up. Right for streams with downstream
	// resync semantics where losing one notification is recoverable.
	DropNewest
)

// closeFlushTimeout bounds how long Close waits for the write loop to
// flush accepted messages before closing the stream regardless. A peer
// that has stopped reading would otherwise hang a graceful close
// forever.
const closeFlushTimeout = 2 * time.Second

// NewConn starts a connection over rwc. handler may be nil if the peer
// never sends requests. The read loop runs until the stream fails or the
// connection is closed.
func NewConn(rwc io.ReadWriteCloser, handler Handler) *Conn {
	c := NewConnPending(rwc)
	c.Start(handler)
	return c
}

// NewConnPending creates a connection without starting its loops, letting
// the caller publish the *Conn (e.g. into a handler's state) before any
// request can be dispatched. Call Start to begin processing.
func NewConnPending(rwc io.ReadWriteCloser) *Conn {
	return &Conn{
		rwc:       rwc,
		writeWake: make(chan struct{}, 1),
		writeDone: make(chan struct{}),
		pending:   make(map[uint64]chan *message),
		done:      make(chan struct{}),
	}
}

// Start installs the handler and launches the read and write loops. It
// must be called exactly once on a pending connection.
func (c *Conn) Start(handler Handler) {
	c.handler = handler
	c.started.Store(true)
	go c.readLoop()
	go c.writeLoop()
}

// SetWriteLimit caps the write queue at limit pending messages; an
// overflowing send is handled per policy (fail the connection, or drop
// the message with ErrWriteOverflow). 0 restores the unbounded
// historical behavior. Call before the peer can stall; safe to call
// concurrently with sends.
func (c *Conn) SetWriteLimit(limit int, policy OverflowPolicy) {
	c.writeMu.Lock()
	c.writeLimit = limit
	c.writePolicy = policy
	c.writeMu.Unlock()
}

// WriteQueueLen reports the messages accepted by send but not yet
// written to the stream (the write-queue depth, including the batch the
// writer currently holds).
func (c *Conn) WriteQueueLen() int { return int(c.queued.Load()) }

// WriteOverflows reports how many messages the write-queue cap has
// rejected on this connection.
func (c *Conn) WriteOverflows() uint64 { return c.overflowed.Load() }

// Close tears down the connection and fails all pending calls. Messages
// already accepted by send are flushed to the stream first (bounded by
// closeFlushTimeout, so a peer that stopped reading cannot hang the
// close), preserving send's acceptance guarantee on a graceful close.
func (c *Conn) Close() error {
	c.StopKeepalive()
	c.fail(errors.New("jsonrpc: connection closed"))
	if c.started.Load() {
		// fail() closed done, so the write loop is in (or headed for)
		// its drain-on-done pass; wait for it to hand the queue to the
		// stream before pulling the stream out from under it.
		select {
		case <-c.writeDone:
		case <-time.After(closeFlushTimeout):
		}
	}
	return c.rwc.Close()
}

// SetCallTimeout installs a default deadline applied to every Call that
// does not use CallTimeout explicitly. Zero restores unbounded waits.
// Safe to call concurrently with calls in flight.
func (c *Conn) SetCallTimeout(d time.Duration) {
	c.mu.Lock()
	c.callTimeout = d
	c.mu.Unlock()
}

// StartKeepalive begins an echo-based heartbeat: every interval the
// connection issues an "echo" call bounded by the same interval, and
// after misses consecutive failures the connection is failed (Done
// closes, pending calls error). It must be called at most once; the
// goroutine stops on StopKeepalive, Close, or connection failure.
func (c *Conn) StartKeepalive(interval time.Duration, misses int) {
	if interval <= 0 {
		return
	}
	if misses < 1 {
		misses = 1
	}
	c.mu.Lock()
	if c.kaStop != nil || c.closed {
		c.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	c.kaStop = stop
	c.mu.Unlock()
	go c.keepalive(interval, misses, stop)
}

// StopKeepalive terminates the heartbeat goroutine, if running.
func (c *Conn) StopKeepalive() {
	c.mu.Lock()
	stop := c.kaStop
	c.mu.Unlock()
	if stop != nil {
		c.kaOnce.Do(func() { close(stop) })
	}
}

func (c *Conn) keepalive(interval time.Duration, misses int, stop chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	missed := 0
	for {
		select {
		case <-stop:
			return
		case <-c.done:
			return
		case <-t.C:
		}
		var out any
		if err := c.CallTimeout("echo", []any{"keepalive"}, &out, interval); err != nil {
			missed++
			if missed >= misses {
				c.fail(fmt.Errorf("%w: %d heartbeats missed: %v", ErrKeepalive, missed, err))
				c.rwc.Close()
				return
			}
			continue
		}
		missed = 0
	}
}

// Done is closed when the read loop exits.
func (c *Conn) Done() <-chan struct{} { return c.done }

// Err returns the error that terminated the read loop (nil while running).
func (c *Conn) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.readErr
}

func (c *Conn) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	c.readErr = err
	for id, ch := range c.pending {
		close(ch)
		delete(c.pending, id)
	}
	close(c.done)
}

func (c *Conn) readLoop() {
	dec := json.NewDecoder(c.rwc)
	for {
		var m message
		if err := dec.Decode(&m); err != nil {
			c.fail(err)
			c.rwc.Close()
			return
		}
		switch {
		case m.isResponse():
			var id uint64
			if err := json.Unmarshal(*m.ID, &id); err != nil {
				continue // response to an id we never issued
			}
			c.mu.Lock()
			ch := c.pending[id]
			delete(c.pending, id)
			c.mu.Unlock()
			if ch != nil {
				ch <- &m
			}
		case m.isRequest():
			c.serve(&m, true)
		case m.isNotify():
			c.serve(&m, false)
		}
	}
}

func (c *Conn) serve(m *message, wantReply bool) {
	var result any
	var rpcErr *RPCError
	if c.handler == nil {
		rpcErr = &RPCError{Code: "unknown method", Details: m.Method}
	} else {
		result, rpcErr = c.handler.Handle(c, m.Method, m.Params)
	}
	if !wantReply {
		return
	}
	reply := map[string]any{"id": m.ID, "result": result, "error": nil}
	if rpcErr != nil {
		reply["result"] = nil
		reply["error"] = rpcErr
	}
	c.send(reply)
}

func (c *Conn) send(v any) error {
	buf, err := json.Marshal(v)
	if err != nil {
		return err
	}
	// The closed check and the enqueue happen under c.mu together: once a
	// message is accepted here, it was queued strictly before fail() could
	// set closed and signal done, so the writeLoop's drain-on-done pass is
	// guaranteed to see it.
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return errors.New("jsonrpc: connection closed")
	}
	c.writeMu.Lock()
	if c.writeLimit > 0 && int(c.queued.Load()) >= c.writeLimit {
		limit, policy := c.writeLimit, c.writePolicy
		c.writeMu.Unlock()
		c.mu.Unlock()
		c.overflowed.Add(1)
		if policy == DropNewest {
			return fmt.Errorf("%w: %d messages pending, message dropped", ErrWriteOverflow, limit)
		}
		c.fail(fmt.Errorf("%w: peer left %d messages pending", ErrWriteOverflow, limit))
		c.rwc.Close()
		return fmt.Errorf("%w: %d messages pending, connection failed", ErrWriteOverflow, limit)
	}
	c.writeQueue = append(c.writeQueue, buf)
	c.queued.Add(1)
	c.writeMu.Unlock()
	c.mu.Unlock()
	select {
	case c.writeWake <- struct{}{}:
	default:
	}
	return nil
}

func (c *Conn) writeLoop() {
	defer close(c.writeDone)
	for {
		c.writeMu.Lock()
		batch := c.writeQueue
		c.writeQueue = nil
		c.writeMu.Unlock()
		if len(batch) == 0 {
			select {
			case <-c.writeWake:
				continue
			case <-c.done:
				// done may win the select while writeWake is also ready:
				// messages already acknowledged to send() callers can still
				// be sitting in the queue. Drain them before exiting — the
				// stream may be perfectly healthy (e.g. the read side hit
				// EOF first, or Close is flushing), and accepted messages
				// must not vanish.
				c.writeMu.Lock()
				batch = c.writeQueue
				c.writeQueue = nil
				c.writeMu.Unlock()
				c.writeBatch(batch, false)
				return
			}
		}
		if !c.writeBatch(batch, true) {
			return
		}
	}
}

// writeBatch hands one drained batch to the stream, keeping the queue
// depth current. failConn selects whether a stream error fails the
// connection (the live path) or merely abandons the flush (the
// drain-on-done pass, where the connection is already failed). Reports
// whether the loop should keep running.
func (c *Conn) writeBatch(batch [][]byte, failConn bool) bool {
	for i, buf := range batch {
		if _, err := c.rwc.Write(buf); err != nil {
			c.queued.Add(-int64(len(batch) - i))
			if failConn {
				c.fail(err)
				c.rwc.Close()
			}
			return false
		}
		c.queued.Add(-1)
	}
	return true
}

// Call issues a request and waits for the matching response, decoding its
// result into result (unless nil). When a default call timeout is set
// (SetCallTimeout), the wait is bounded by it.
func (c *Conn) Call(method string, params any, result any) error {
	c.mu.Lock()
	d := c.callTimeout
	c.mu.Unlock()
	return c.CallTimeout(method, params, result, d)
}

// CallTimeout is Call with an explicit deadline for this request only
// (0 = wait forever). On timeout the pending entry is removed — the map
// does not grow across timed-out calls — and ErrTimeout is returned
// (test with errors.Is) while the connection itself stays usable.
func (c *Conn) CallTimeout(method string, params any, result any, timeout time.Duration) error {
	c.mu.Lock()
	if c.closed {
		err := c.readErr
		c.mu.Unlock()
		return fmt.Errorf("jsonrpc: connection closed: %w", err)
	}
	id := c.nextID
	c.nextID++
	ch := make(chan *message, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	req := map[string]any{"method": method, "params": params, "id": id}
	if params == nil {
		req["params"] = []any{}
	}
	if err := c.send(req); err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return err
	}
	var m *message
	var ok bool
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		select {
		case m, ok = <-ch:
		case <-t.C:
			c.mu.Lock()
			_, still := c.pending[id]
			delete(c.pending, id)
			c.mu.Unlock()
			if !still {
				// The entry was already removed by the read loop (response
				// in flight into ch) or by fail() (ch closed): a receive
				// completes promptly either way. Prefer the real outcome
				// over the timeout.
				m, ok = <-ch
			} else {
				return fmt.Errorf("%w: %s after %v", ErrTimeout, method, timeout)
			}
		}
	} else {
		m, ok = <-ch
	}
	if !ok {
		return fmt.Errorf("jsonrpc: connection closed while waiting for %s reply", method)
	}
	if m.Error != nil && !isNull(m.Error) {
		var rpcErr RPCError
		if err := json.Unmarshal(m.Error, &rpcErr); err != nil {
			return fmt.Errorf("jsonrpc: %s failed: %s", method, string(m.Error))
		}
		return &rpcErr
	}
	if result != nil && m.Result != nil {
		return json.Unmarshal(m.Result, result)
	}
	return nil
}

// Notify sends a notification (no reply expected).
func (c *Conn) Notify(method string, params any) error {
	req := map[string]any{"method": method, "params": params, "id": nil}
	if params == nil {
		req["params"] = []any{}
	}
	return c.send(req)
}
