package bench

import (
	"strings"
	"testing"
)

func TestRunReconnectSmall(t *testing.T) {
	res, err := RunReconnect([]int{15}, 2)
	if err != nil {
		t.Fatalf("RunReconnect: %v", err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("result = %+v", res)
	}
	row := res.Rows[0]
	if row.Ports != 15 || row.Restarts != 2 || row.P50 <= 0 || row.Max < row.P50 {
		t.Fatalf("row = %+v", row)
	}
	if !strings.Contains(res.String(), "reconverge") {
		t.Errorf("report missing header: %s", res)
	}
	t.Logf("\n%s", res)
}
