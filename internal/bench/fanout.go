package bench

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/ovsdb"
	"repro/internal/subscribe"
)

// fanoutRelations are the derived relations every access-port commit
// touches (snvs.Rules: InVlan, VlanOk and StripTag key on the port,
// MulticastGroup on the port's multicast membership), so spreading
// subscribers across them guarantees one update per subscriber per
// churn transaction — which is what makes the pacing and convergence
// accounting below exact. Flood is excluded: it only changes when a
// VLAN appears or disappears.
var fanoutRelations = []string{"InVlan", "VlanOk", "StripTag", "MulticastGroup"}

// FanoutConfig sizes the pub/sub fan-out experiment.
type FanoutConfig struct {
	// Subscribers is the healthy subscription count (default 10000),
	// spread over Conns client connections (default 200).
	Subscribers int
	Conns       int
	// ChurnTxns is how many port insert/delete commits drive the fan-out
	// (default 256; the slow-consumer eviction demo needs ~140 so the
	// stalled connection's write queue and subscriber queue both fill).
	ChurnTxns int
}

// FanoutResult is the machine-readable report (BENCH_fanout.json).
type FanoutResult struct {
	Subscribers int      `json:"subscribers"`
	Conns       int      `json:"conns"`
	Relations   []string `json:"relations"`
	// SnapshotSecs is the time to open every subscription (each gets a
	// consistent initial snapshot).
	SnapshotSecs float64 `json:"snapshot_secs"`
	ChurnTxns    int     `json:"churn_txns"`
	ChurnSecs    float64 `json:"churn_secs"`
	// DeliveredUpdates counts updates received by healthy subscribers
	// during churn; UpdatesPerSec is the sustained fan-out rate.
	DeliveredUpdates uint64  `json:"delivered_updates"`
	UpdatesPerSec    float64 `json:"updates_per_sec"`
	// Converged counts subscribers whose cursor reached the sentinel
	// transaction with a state fingerprint matching the reference
	// snapshot — it must equal Subscribers.
	Converged    int     `json:"converged"`
	ConvergeSecs float64 `json:"converge_secs"`
	// Evictions is sub_evictions_total after the run; the experiment
	// stalls one extra connection so this is at least 1, and
	// EvictedRecovered reports that it resubscribed into a complete
	// fresh snapshot afterwards.
	Evictions        float64 `json:"evictions"`
	EvictedRecovered bool    `json:"evicted_recovered"`
	// HeapBytes is live heap with every subscription still open.
	HeapBytes uint64 `json:"heap_bytes"`
}

func (r *FanoutResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fanout: %d subscribers on %d conns over %v\n",
		r.Subscribers, r.Conns, r.Relations)
	fmt.Fprintf(&b, "  snapshots: %d in %.2fs\n", r.Subscribers, r.SnapshotSecs)
	fmt.Fprintf(&b, "  churn: %d txns in %.2fs -> %d updates (%.0f updates/s)\n",
		r.ChurnTxns, r.ChurnSecs, r.DeliveredUpdates, r.UpdatesPerSec)
	fmt.Fprintf(&b, "  converged: %d/%d in %.2fs after sentinel\n",
		r.Converged, r.Subscribers, r.ConvergeSecs)
	fmt.Fprintf(&b, "  evictions: %.0f (recovered: %v), heap %.1f MiB\n",
		r.Evictions, r.EvictedRecovered, float64(r.HeapBytes)/(1<<20))
	return b.String()
}

// fanSub is one healthy subscription plus the state its drainer
// maintains: an order-independent XOR fingerprint of the row set and
// the last transaction seen. XOR of a per-row hash is a valid set
// fingerprint here because output deltas are set-level (weights ±1):
// an insert toggles the row's bit pattern in, the matching delete
// toggles it back out.
type fanSub struct {
	rel    string
	sub    *subscribe.Subscription
	fp     atomic.Uint64
	cursor atomic.Uint64
}

func hashRow(row []any) uint64 {
	b, _ := json.Marshal(row)
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// foldChanges XORs a batch of weighted rows into a fingerprint.
func foldChanges(fp uint64, changes []subscribe.Change) uint64 {
	for _, ch := range changes {
		if ch.W%2 != 0 {
			fp ^= hashRow(ch.Row)
		}
	}
	return fp
}

// stallReader wraps a stream so its reads can be parked and resumed —
// the stand-in for a subscriber process that stops draining its socket.
type stallReader struct {
	rwc  io.ReadWriteCloser
	dead chan struct{}
	once sync.Once

	mu   sync.Mutex
	gate chan struct{}
}

func newStallReader(rwc io.ReadWriteCloser) *stallReader {
	return &stallReader{rwc: rwc, dead: make(chan struct{})}
}

func (s *stallReader) stall() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gate == nil {
		s.gate = make(chan struct{})
	}
}

func (s *stallReader) resume() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gate != nil {
		close(s.gate)
		s.gate = nil
	}
}

func (s *stallReader) Read(p []byte) (int, error) {
	s.mu.Lock()
	gate := s.gate
	s.mu.Unlock()
	if gate != nil {
		select {
		case <-gate:
		case <-s.dead:
			return 0, io.ErrClosedPipe
		}
	}
	return s.rwc.Read(p)
}

func (s *stallReader) Write(p []byte) (int, error) { return s.rwc.Write(p) }

func (s *stallReader) Close() error {
	s.once.Do(func() { close(s.dead) })
	return s.rwc.Close()
}

// RunFanout measures the derived-relation pub/sub fan-out end to end:
// the full snvs stack runs with the subscription service tapped into
// core.Config.OnDelta, cfg.Subscribers clients subscribe over real TCP,
// and port churn drives one update per subscriber per commit. Every
// subscriber must converge — cursor at the final (sentinel) transaction
// and XOR state fingerprint equal to a reference snapshot taken after
// the churn. One extra connection stops reading mid-churn to exercise
// the slow-consumer eviction and resubscribe-with-fresh-snapshot path.
func RunFanout(cfg FanoutConfig) (*FanoutResult, error) {
	if cfg.Subscribers <= 0 {
		cfg.Subscribers = 10000
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 200
	}
	if cfg.Conns > cfg.Subscribers {
		cfg.Conns = cfg.Subscribers
	}
	if cfg.ChurnTxns <= 0 {
		cfg.ChurnTxns = 256
	}

	// The service gets its own observer so sub_* counters reflect only
	// this experiment; the stack itself runs uninstrumented.
	o := obs.NewObserver()
	svc := subscribe.New(subscribe.Config{QueueLen: 64, Obs: o})
	defer svc.Close()
	s, err := StartStackConfig(StackConfig{OnDelta: svc.Publish})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	svc.SetCatalog(s.Ctrl.OutputRelations())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	go svc.Serve(ln)

	if err := s.Transact(ovsdb.OpInsert("SwitchCfg", map[string]ovsdb.Value{
		"name": "snvs0", "flood_unknown": true,
	}), ovsdb.OpInsert("Port", map[string]ovsdb.Value{
		"name": "warm", "port_num": int64(9999), "vlan_mode": "access", "tag": int64(10),
	})); err != nil {
		return nil, err
	}
	if err := s.WaitEntries("in_vlan", 1, 10*time.Second); err != nil {
		return nil, err
	}

	res := &FanoutResult{
		Subscribers: cfg.Subscribers,
		Conns:       cfg.Conns,
		Relations:   fanoutRelations,
		ChurnTxns:   cfg.ChurnTxns,
	}

	// Phase 1: open every subscription. Clients shrink their per-sub
	// buffers (the server's 64-slot queue is the backpressure budget);
	// subscribers round-robin over the four always-touched relations.
	subs := make([]*fanSub, cfg.Subscribers)
	clients := make([]*subscribe.Client, cfg.Conns)
	defer func() {
		for _, cl := range clients {
			if cl != nil {
				cl.Close()
			}
		}
	}()
	perConn := (cfg.Subscribers + cfg.Conns - 1) / cfg.Conns
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, cfg.Conns)
	for c := 0; c < cfg.Conns; c++ {
		lo := c * perConn
		hi := lo + perConn
		if hi > cfg.Subscribers {
			hi = cfg.Subscribers
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			cl, err := subscribe.Dial(ln.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			cl.SetUpdatesBuffer(16)
			clients[c] = cl
			for i := lo; i < hi; i++ {
				fs := &fanSub{rel: fanoutRelations[i%len(fanoutRelations)]}
				sub, err := cl.Subscribe(fs.rel, nil)
				if err != nil {
					errs <- fmt.Errorf("subscribe %d (%s): %w", i, fs.rel, err)
					return
				}
				fs.sub = sub
				fs.fp.Store(foldChanges(0, sub.Rows))
				fs.cursor.Store(sub.Txn)
				subs[i] = fs
			}
		}(c, lo, hi)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	res.SnapshotSecs = time.Since(start).Seconds()

	// Drainers fold every update into the fingerprint and advance the
	// cursor; delivered is the global pacing/throughput counter.
	var delivered atomic.Uint64
	var drainers sync.WaitGroup
	for _, fs := range subs {
		drainers.Add(1)
		go func(fs *fanSub) {
			defer drainers.Done()
			fp := fs.fp.Load()
			for u := range fs.sub.Updates {
				fp = foldChanges(fp, u.Changes)
				fs.fp.Store(fp)
				fs.cursor.Store(u.Txn)
				delivered.Add(1)
			}
		}(fs)
	}

	// The eviction victim: a pipe-backed connection (unbuffered, so a
	// stalled reader immediately parks the server's write loop) that
	// subscribes and then stops reading.
	pa, pb := net.Pipe()
	sr := newStallReader(pa)
	svc.ServeConn(pb)
	victim := subscribe.NewClient(sr)
	defer victim.Close()
	vsub, err := victim.Subscribe("InVlan", nil)
	if err != nil {
		return nil, fmt.Errorf("victim subscribe: %w", err)
	}
	sr.stall()

	// Phase 2: churn. Each commit inserts or deletes one access port,
	// touching all four relations by exactly one row. Commits are paced
	// against delivery — the publisher stays at most lag transactions
	// ahead of the slowest healthy subscriber, which keeps honest
	// consumers inside the server's 64-slot queues (only the stalled
	// victim falls out).
	const lag = 32
	n := uint64(cfg.Subscribers)
	base := delivered.Load()
	waitDelivered := func(min uint64) error {
		deadline := time.Now().Add(120 * time.Second)
		for delivered.Load() < min {
			if err := s.Ctrl.Err(); err != nil {
				return err
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("fanout stalled: delivered %d, want >= %d",
					delivered.Load()-base, min-base)
			}
			time.Sleep(200 * time.Microsecond)
		}
		return nil
	}
	const slots = 8
	present := [slots]bool{}
	churnStart := time.Now()
	for i := 1; i <= cfg.ChurnTxns; i++ {
		slot := i % slots
		name := fmt.Sprintf("churn%d", slot)
		var op ovsdb.Operation
		if present[slot] {
			op = ovsdb.OpDelete("Port", ovsdb.Cond("name", "==", name))
		} else {
			op = ovsdb.OpInsert("Port", map[string]ovsdb.Value{
				"name": name, "port_num": int64(100 + slot),
				"vlan_mode": "access", "tag": int64(10 + slot),
			})
		}
		present[slot] = !present[slot]
		if err := s.Transact(op); err != nil {
			return nil, err
		}
		if i > lag {
			if err := waitDelivered(base + n*uint64(i-lag)); err != nil {
				return nil, err
			}
		}
	}
	if err := waitDelivered(base + n*uint64(cfg.ChurnTxns)); err != nil {
		return nil, err
	}
	res.ChurnSecs = time.Since(churnStart).Seconds()
	res.DeliveredUpdates = delivered.Load() - base
	res.UpdatesPerSec = float64(res.DeliveredUpdates) / res.ChurnSecs

	// Sentinel: one more commit that touches all four relations. Once
	// every healthy subscriber's cursor reaches it with the reference
	// fingerprint, the stream delivered exactly the churn — nothing
	// lost, duplicated, or reordered.
	preTxn := svc.LastTxn()
	convergeStart := time.Now()
	if err := s.Transact(ovsdb.OpInsert("Port", map[string]ovsdb.Value{
		"name": "sentinel", "port_num": int64(99), "vlan_mode": "access", "tag": int64(9),
	})); err != nil {
		return nil, err
	}
	sentinelDeadline := time.Now().Add(30 * time.Second)
	for svc.LastTxn() == preTxn {
		if err := s.Ctrl.Err(); err != nil {
			return nil, err
		}
		if time.Now().After(sentinelDeadline) {
			return nil, fmt.Errorf("sentinel commit never published")
		}
		time.Sleep(time.Millisecond)
	}
	sentinelTxn := svc.LastTxn()
	if err := waitDelivered(base + n*uint64(cfg.ChurnTxns+1)); err != nil {
		return nil, err
	}

	// Reference fingerprints: a fresh subscriber's snapshot after the
	// sentinel IS the converged state.
	ref, err := subscribe.Dial(ln.Addr().String())
	if err != nil {
		return nil, err
	}
	defer ref.Close()
	expected := make(map[string]uint64, len(fanoutRelations))
	refRows := make(map[string]int, len(fanoutRelations))
	for _, rel := range fanoutRelations {
		rsub, err := ref.Subscribe(rel, nil)
		if err != nil {
			return nil, fmt.Errorf("reference subscribe %s: %w", rel, err)
		}
		if rsub.Txn != sentinelTxn {
			return nil, fmt.Errorf("reference snapshot of %s at txn %d, want %d",
				rel, rsub.Txn, sentinelTxn)
		}
		expected[rel] = foldChanges(0, rsub.Rows)
		refRows[rel] = len(rsub.Rows)
		rsub.Unsubscribe()
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		converged := 0
		for _, fs := range subs {
			if fs.cursor.Load() == sentinelTxn && fs.fp.Load() == expected[fs.rel] {
				converged++
			}
		}
		res.Converged = converged
		if converged == cfg.Subscribers || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	res.ConvergeSecs = time.Since(convergeStart).Seconds()
	res.HeapBytes = heapAlloc()

	// Phase 3: the victim. The stall must have evicted it (not its
	// connection); resuming the reader drains the eviction notice, and
	// a resubscribe lands on a complete fresh snapshot.
	sr.resume()
	for range vsub.Updates {
	}
	evicted, _ := vsub.Evicted()
	if evicted {
		select {
		case <-victim.Done():
			// Eviction must not take the connection down.
		default:
			if re, err := victim.Subscribe("InVlan", nil); err == nil {
				res.EvictedRecovered = re.Txn == sentinelTxn && len(re.Rows) == refRows["InVlan"]
				re.Unsubscribe()
			}
		}
	}
	res.Evictions = o.Reg().Snapshot()["sub_evictions_total"]

	for _, cl := range clients {
		if cl != nil {
			cl.Close()
		}
	}
	drainers.Wait()
	return res, nil
}
