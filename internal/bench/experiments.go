package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/codegen"
	"repro/internal/dl"
	"repro/internal/dl/engine"
	"repro/internal/dl/value"
	"repro/internal/ovsdb"
	"repro/internal/p4"
	"repro/internal/snvs"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------
// T1 — §4.3 scalability: add N ports through the full stack, measuring
// per-port latency from the management-plane write to the data-plane
// table entry. The paper reports 13 ms first, 18 ms last at N = 2000 —
// the point is the flat shape (incrementality), not the absolute values.
// ---------------------------------------------------------------------

// PortScaleResult is the T1 report.
type PortScaleResult struct {
	N                     int
	First, Last           time.Duration
	P50, P95, Max         time.Duration
	LastOverFirst         float64 // flatness: ≈1 means incremental
	FirstTenth, LastTenth time.Duration
}

// RunPortScale runs T1 with n ports over the full TCP stack.
func RunPortScale(n int) (*PortScaleResult, error) {
	s, err := StartStack()
	if err != nil {
		return nil, err
	}
	defer s.Close()
	if err := s.Transact(ovsdb.OpInsert("SwitchCfg", map[string]ovsdb.Value{
		"name": "snvs0", "flood_unknown": true,
	})); err != nil {
		return nil, err
	}
	const nVlans = 10
	lats := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		t0 := time.Now()
		if err := s.Transact(ovsdb.OpInsert("Port", workloadPortRow(i, nVlans))); err != nil {
			return nil, err
		}
		if err := s.WaitEntries("in_vlan", i+1, 10*time.Second); err != nil {
			return nil, err
		}
		lats = append(lats, time.Since(t0))
	}
	res := &PortScaleResult{N: n, First: lats[0], Last: lats[n-1]}
	tenth := n / 10
	if tenth == 0 {
		tenth = 1
	}
	res.FirstTenth = avg(lats[:tenth])
	res.LastTenth = avg(lats[n-tenth:])
	res.LastOverFirst = float64(res.LastTenth) / float64(res.FirstTenth)
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	res.P50 = sorted[n/2]
	res.P95 = sorted[n*95/100]
	res.Max = sorted[n-1]
	return res, nil
}

func workloadPortRow(i, nVlans int) map[string]ovsdb.Value {
	return workload.AccessPortRow(i, nVlans)
}

func avg(d []time.Duration) time.Duration {
	if len(d) == 0 {
		return 0
	}
	var sum time.Duration
	for _, x := range d {
		sum += x
	}
	return sum / time.Duration(len(d))
}

// String renders the report.
func (r *PortScaleResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "T1 (§4.3): %d ports through the full stack\n", r.N)
	fmt.Fprintf(&sb, "  paper:    first 13ms, last 18ms (flat => incremental)\n")
	fmt.Fprintf(&sb, "  measured: first %v, last %v\n", r.First, r.Last)
	fmt.Fprintf(&sb, "  avg first tenth %v, avg last tenth %v (ratio %.2fx)\n",
		r.FirstTenth, r.LastTenth, r.LastOverFirst)
	fmt.Fprintf(&sb, "  p50 %v  p95 %v  max %v\n", r.P50, r.P95, r.Max)
	return sb.String()
}

// ---------------------------------------------------------------------
// T3 — §2.2 load-balancer worst case: cold-start with large LBs, then
// delete each. The paper: automatic incrementality cost ~2x CPU and ~5x
// RAM versus the hand-written C implementation.
// ---------------------------------------------------------------------

// LBResult is the T3 report.
type LBResult struct {
	VIPs, Backends      int
	IncrCPU, BaseCPU    time.Duration
	IncrHeap, BaseHeap  uint64
	CPURatio, HeapRatio float64
}

// RunLoadBalancer runs T3 with v VIPs of b backends each.
func RunLoadBalancer(v, b int) (*LBResult, error) {
	lbs := workload.LBs(v, b)
	res := &LBResult{VIPs: v, Backends: b}

	// Incremental engine: cold start (one transaction per LB, as OVN's
	// benchmark loads them), then delete each.
	prog, err := dl.Compile(baseline.LBRules)
	if err != nil {
		return nil, err
	}
	before := heapAlloc()
	start := time.Now()
	rt, err := prog.NewRuntime(engine.Options{})
	if err != nil {
		return nil, err
	}
	for _, lb := range lbs {
		if _, err := rt.Apply(workload.LBInsertUpdates(lb)); err != nil {
			return nil, err
		}
	}
	res.IncrHeap = heapAlloc() - before
	for _, lb := range lbs {
		if _, err := rt.Apply(workload.LBDeleteUpdates(lb)); err != nil {
			return nil, err
		}
	}
	res.IncrCPU = time.Since(start)
	rt = nil //nolint:ineffassign // release before measuring the baseline

	// Hand-written incremental controller (the C implementation's role):
	// entries computed directly per LB, deletions remove exactly that
	// LB's entries.
	before = heapAlloc()
	start = time.Now()
	installed := baseline.NewEntrySet()
	for _, lb := range lbs {
		for id, e := range baseline.LBEntries([]baseline.LB{lb}).Entries {
			installed.Entries[id] = e
		}
	}
	res.BaseHeap = heapAlloc() - before
	for _, lb := range lbs {
		for id := range baseline.LBEntries([]baseline.LB{lb}).Entries {
			delete(installed.Entries, id)
		}
	}
	if len(installed.Entries) != 0 {
		return nil, fmt.Errorf("bench: baseline teardown left %d entries", len(installed.Entries))
	}
	res.BaseCPU = time.Since(start)

	res.CPURatio = float64(res.IncrCPU) / float64(res.BaseCPU)
	res.HeapRatio = float64(res.IncrHeap) / float64(max64(res.BaseHeap, 1))
	return res, nil
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// String renders the report.
func (r *LBResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "T3 (§2.2): load-balancer cold start + teardown, %d VIPs x %d backends\n",
		r.VIPs, r.Backends)
	fmt.Fprintf(&sb, "  paper:    automatic incrementality ~2x CPU, ~5x RAM vs hand-written C\n")
	fmt.Fprintf(&sb, "  measured: engine %v / baseline %v = %.1fx CPU\n",
		r.IncrCPU, r.BaseCPU, r.CPURatio)
	fmt.Fprintf(&sb, "            engine %.1f MiB / baseline %.1f MiB = %.1fx heap\n",
		float64(r.IncrHeap)/(1<<20), float64(r.BaseHeap)/(1<<20), r.HeapRatio)
	return sb.String()
}

// ---------------------------------------------------------------------
// T4 — §2.2 steady state: single-row changes on a populated network.
// The eBay hand-incremental ovn-controller gained 3x latency and 20x CPU
// over full recomputation; here the automatic incremental engine plays
// the incremental side and the imperative recompute-and-diff controller
// the conventional side.
// ---------------------------------------------------------------------

// IncrRow is one network size's measurements.
type IncrRow struct {
	Ports          int
	IncrPerChange  time.Duration
	RecomputePerCh time.Duration
	Speedup        float64
}

// IncrResult is the T4 report.
type IncrResult struct {
	Changes int
	Rows    []IncrRow
}

// SnvsEngine compiles the generated snvs control-plane program and
// returns a fresh runtime (record layouts match the workload helpers).
func SnvsEngine() (*engine.Runtime, error) {
	return SnvsEngineOpts(engine.Options{})
}

// SnvsEngineOpts is SnvsEngine with explicit engine options (worker
// count, derivation budget, ...).
func SnvsEngineOpts(opts engine.Options) (*engine.Runtime, error) {
	schema, err := snvs.Schema()
	if err != nil {
		return nil, err
	}
	info, err := p4.BuildP4Info(snvs.Pipeline())
	if err != nil {
		return nil, err
	}
	gen, err := codegen.Generate(schema, info, codegen.Options{WithMulticast: true})
	if err != nil {
		return nil, err
	}
	prog, err := gen.CompileWith(snvs.Rules)
	if err != nil {
		return nil, err
	}
	return prog.NewRuntime(opts)
}

// RunIncrVsRecompute runs T4 across network sizes.
func RunIncrVsRecompute(sizes []int, changes int) (*IncrResult, error) {
	const nVlans = 10
	res := &IncrResult{Changes: changes}
	for _, n := range sizes {
		// Incremental side: engine loaded with n ports + learned MACs.
		rt, err := SnvsEngine()
		if err != nil {
			return nil, err
		}
		var load []engine.Update
		load = append(load, engine.Insert("SwitchCfg", value.Record{
			value.String("u-cfg"), value.Bool(true), value.String("snvs0"),
		}))
		for i := 0; i < n; i++ {
			load = append(load, engine.Insert("Port", workload.PortRecord(i, nVlans)))
			load = append(load, engine.Insert("Learn", workload.LearnedRecord(i, i, nVlans)))
		}
		if _, err := rt.Apply(load); err != nil {
			return nil, err
		}
		start := time.Now()
		for c := 0; c < changes; c++ {
			i := n + c
			if _, err := rt.Apply([]engine.Update{
				engine.Insert("Port", workload.PortRecord(i, nVlans)),
			}); err != nil {
				return nil, err
			}
			if _, err := rt.Apply([]engine.Update{
				engine.Delete("Port", workload.PortRecord(i, nVlans)),
			}); err != nil {
				return nil, err
			}
		}
		incrPer := time.Since(start) / time.Duration(2*changes)

		// Conventional side: recompute-everything-and-diff per change.
		state := baseline.NewSNVSState()
		state.FloodUnknown = true
		for i := 0; i < n; i++ {
			p := workload.PortCfg(i, nVlans)
			state.Ports[p.Name] = p
			state.Learned = append(state.Learned, baseline.LearnedMac{
				Mac: uint64(0xaa0000000000 + i), Vlan: p.Tag, Port: p.Num,
			})
		}
		installed := state.DesiredEntries()
		start = time.Now()
		for c := 0; c < changes; c++ {
			p := workload.PortCfg(n+c, nVlans)
			state.Ports[p.Name] = p
			next := state.DesiredEntries()
			baseline.Diff(installed, next)
			installed = next
			delete(state.Ports, p.Name)
			next = state.DesiredEntries()
			baseline.Diff(installed, next)
			installed = next
		}
		recomputePer := time.Since(start) / time.Duration(2*changes)

		res.Rows = append(res.Rows, IncrRow{
			Ports:          n,
			IncrPerChange:  incrPer,
			RecomputePerCh: recomputePer,
			Speedup:        float64(recomputePer) / float64(incrPer),
		})
	}
	return res, nil
}

// String renders the report.
func (r *IncrResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "T4 (§2.2): steady-state single changes, incremental vs recompute+diff (%d changes)\n", r.Changes)
	fmt.Fprintf(&sb, "  paper:    incremental processing gained 3x latency / 20x CPU in production\n")
	fmt.Fprintf(&sb, "  %8s  %14s  %16s  %8s\n", "ports", "incr/change", "recomp/change", "speedup")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %8d  %14v  %16v  %7.1fx\n",
			row.Ports, row.IncrPerChange, row.RecomputePerCh, row.Speedup)
	}
	return sb.String()
}

// ---------------------------------------------------------------------
// T5 — §1 labeling: the two-rule reachability program under link churn
// versus full recomputation, plus the code-size comparison the paper
// motivates with.
// ---------------------------------------------------------------------

// LabelResult is the T5 report.
type LabelResult struct {
	Topology                   string
	Nodes, Edges, Churn        int
	IncrTotal, RecomputeTotal  time.Duration
	IncrPerChange, RecomputePC time.Duration
	Speedup                    float64
	RuleLines, GoLines         int
	FinalLabels                int
	// FallbackPC is the per-change cost with the engine's
	// RecursiveDeleteFallback enabled (dense runs only).
	FallbackPC time.Duration
}

// RunLabeling runs T5 on a sparse tree topology (the realistic network
// case, where a link event affects a small subtree). edges is ignored for
// trees (n-1 edges).
func RunLabeling(nodes, edges, churn int) (*LabelResult, error) {
	g := workload.RandomTree(nodes, 42)
	res, err := runLabelingOn(g, churn)
	if err != nil {
		return nil, err
	}
	res.Topology = "tree"
	return res, nil
}

// RunLabelingDense runs T5's documented adversarial case: a dense cyclic
// graph where DRed's overdeletion cascades across the whole reachable set
// on every link removal (the analogue of the paper's own LB worst case).
func RunLabelingDense(nodes, edges, churn int) (*LabelResult, error) {
	g := workload.RandomGraph(nodes, edges, 42)
	res, err := runLabelingOn(g, churn)
	if err != nil {
		return nil, err
	}
	res.Topology = "dense-cyclic"
	// Measure the mitigation: the same churn with the recompute fallback.
	fb, err := runLabelingEngine(g, churn, engine.Options{RecursiveDeleteFallback: 0.25})
	if err != nil {
		return nil, err
	}
	res.FallbackPC = fb / time.Duration(churn)
	return res, nil
}

// runLabelingEngine times just the engine side of the labeling churn.
func runLabelingEngine(g workload.Graph, churn int, opts engine.Options) (time.Duration, error) {
	prog, err := dl.Compile(workload.ReachabilityRules)
	if err != nil {
		return 0, err
	}
	rt, err := prog.NewRuntime(opts)
	if err != nil {
		return 0, err
	}
	var load []engine.Update
	seeds := len(g.Nodes) / 20
	if seeds == 0 {
		seeds = 1
	}
	for i := 0; i < seeds; i++ {
		load = append(load, engine.Insert("GivenLabel", value.Record{
			value.String(g.Nodes[i]), value.String(fmt.Sprintf("L%d", i%4)),
		}))
	}
	for _, e := range g.Edges {
		load = append(load, engine.Insert("Edge", value.Record{
			value.String(e[0]), value.String(e[1]),
		}))
	}
	if _, err := rt.Apply(load); err != nil {
		return 0, err
	}
	changes := g.EdgeChurn(churn, 43)
	start := time.Now()
	for _, c := range changes {
		if _, err := rt.Apply([]engine.Update{workload.EdgeUpdate(c)}); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

func runLabelingOn(g workload.Graph, churn int) (*LabelResult, error) {
	nodes, edges := len(g.Nodes), len(g.Edges)
	changes := g.EdgeChurn(churn, 43)

	prog, err := dl.Compile(workload.ReachabilityRules)
	if err != nil {
		return nil, err
	}
	rt, err := prog.NewRuntime(engine.Options{})
	if err != nil {
		return nil, err
	}
	var load []engine.Update
	seeds := nodes / 20
	if seeds == 0 {
		seeds = 1
	}
	for i := 0; i < seeds; i++ {
		load = append(load, engine.Insert("GivenLabel", value.Record{
			value.String(g.Nodes[i]), value.String(fmt.Sprintf("L%d", i%4)),
		}))
	}
	for _, e := range g.Edges {
		load = append(load, engine.Insert("Edge", value.Record{
			value.String(e[0]), value.String(e[1]),
		}))
	}
	if _, err := rt.Apply(load); err != nil {
		return nil, err
	}
	start := time.Now()
	for _, c := range changes {
		if _, err := rt.Apply([]engine.Update{workload.EdgeUpdate(c)}); err != nil {
			return nil, err
		}
	}
	incrTotal := time.Since(start)

	// Full recomputation side.
	given := make(map[string][]string)
	for i := 0; i < seeds; i++ {
		given[g.Nodes[i]] = append(given[g.Nodes[i]], fmt.Sprintf("L%d", i%4))
	}
	live := make(map[[2]string]bool, len(g.Edges))
	for _, e := range g.Edges {
		live[e] = true
	}
	edgeList := func() [][2]string {
		out := make([][2]string, 0, len(live))
		for e := range live {
			out = append(out, e)
		}
		return out
	}
	start = time.Now()
	var labels map[string]map[string]bool
	for _, c := range changes {
		live[c.Edge] = c.Add
		if !c.Add {
			delete(live, c.Edge)
		}
		labels = baseline.ComputeLabels(given, edgeList())
	}
	recomputeTotal := time.Since(start)

	// Cross-check the final states agree.
	recs, err := rt.Contents("Label")
	if err != nil {
		return nil, err
	}
	if len(recs) != baseline.CountLabels(labels) {
		return nil, fmt.Errorf("bench: incremental %d labels, recompute %d",
			len(recs), baseline.CountLabels(labels))
	}

	res := &LabelResult{
		Nodes: nodes, Edges: edges, Churn: churn,
		IncrTotal: incrTotal, RecomputeTotal: recomputeTotal,
		IncrPerChange: incrTotal / time.Duration(churn),
		RecomputePC:   recomputeTotal / time.Duration(churn),
		Speedup:       float64(recomputeTotal) / float64(incrTotal),
		RuleLines:     countNonEmpty(workload.ReachabilityRules),
		GoLines:       baseline.LabelsLoC(),
		FinalLabels:   len(recs),
	}
	return res, nil
}

func countNonEmpty(s string) int {
	n := 0
	for _, line := range strings.Split(s, "\n") {
		t := strings.TrimSpace(line)
		if t != "" && !strings.HasPrefix(t, "//") {
			n++
		}
	}
	return n
}

// String renders the report.
func (r *LabelResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "T5 (§1): reachability labeling (%s), %d nodes / %d edges / %d link events\n",
		r.Topology, r.Nodes, r.Edges, r.Churn)
	fmt.Fprintf(&sb, "  paper:    2-rule program vs tens of lines (full recompute) vs thousands (hand-incremental)\n")
	fmt.Fprintf(&sb, "  measured: %d program lines vs %d Go lines (full recompute)\n",
		r.RuleLines, r.GoLines)
	fmt.Fprintf(&sb, "            incremental %v/change vs recompute %v/change (%.1fx), %d labels\n",
		r.IncrPerChange, r.RecomputePC, r.Speedup, r.FinalLabels)
	if r.FallbackPC > 0 {
		fmt.Fprintf(&sb, "            with RecursiveDeleteFallback: %v/change (worst case capped at ~1 recompute)\n",
			r.FallbackPC)
	}
	return sb.String()
}

// ---------------------------------------------------------------------
// F3 — Fig. 3: controller code size and flow-fragment count grow
// together as features accumulate; the declarative equivalent stays an
// order of magnitude smaller.
// ---------------------------------------------------------------------

// Fig3Row is one point of the growth curves.
type Fig3Row struct {
	Features       int
	ImperativeLoC  int
	FragmentSites  int
	DeclarativeLoC int
	Flows          int
}

// Fig3Result is the F3 report.
type Fig3Result struct {
	Rows []Fig3Row
}

// RunFig3 computes the growth curves over the feature catalog.
func RunFig3() *Fig3Result {
	st := sampleFlowState()
	res := &Fig3Result{}
	for n := 1; n <= len(baseline.Catalog()); n++ {
		fc := baseline.NewFragmentController(n)
		res.Rows = append(res.Rows, Fig3Row{
			Features:       n,
			ImperativeLoC:  baseline.FeatureLoC(n),
			FragmentSites:  baseline.FragmentSites(n),
			DeclarativeLoC: baseline.DeclarativeLoC(n),
			Flows:          len(fc.Flows(st)),
		})
	}
	return res
}

func sampleFlowState() *baseline.FlowState {
	s := baseline.NewSNVSState()
	s.FloodUnknown = true
	for i := 0; i < 16; i++ {
		p := workload.PortCfg(i, 4)
		s.Ports[p.Name] = p
		s.Learned = append(s.Learned, baseline.LearnedMac{
			Mac: uint64(0xaa00 + i), Vlan: p.Tag, Port: p.Num,
		})
	}
	s.Mirrors = []baseline.MirrorCfg{{SrcPort: 1, DstPort: 16}}
	s.Acls = []baseline.AclCfg{{SrcMac: 0xdead, Deny: true}}
	s.StaticMacs = []baseline.StaticMacCfg{{Mac: 0xcc, Vlan: 10, Port: 2}}
	st := baseline.NewFlowState(s)
	st.ArpProxy[0x0a000001] = 0xbeef
	st.QosDSCP[1] = 46
	st.RateLimited[2] = true
	return st
}

// String renders the report.
func (r *Fig3Result) String() string {
	var sb strings.Builder
	sb.WriteString("F3 (Fig. 3): feature sprawl — controller LoC and fragment count grow together\n")
	fmt.Fprintf(&sb, "  %9s  %15s  %15s  %16s  %8s\n",
		"features", "imperative LoC", "fragment sites", "declarative LoC", "flows")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %9d  %15d  %15d  %16d  %8d\n",
			row.Features, row.ImperativeLoC, row.FragmentSites, row.DeclarativeLoC, row.Flows)
	}
	return sb.String()
}
