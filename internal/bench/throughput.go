package bench

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/ovsdb"
)

// ---------------------------------------------------------------------
// Sustained throughput — many concurrent management-plane clients
// committing small transactions as fast as the stack absorbs them,
// through ovsdb commit → monitor delivery → coalesced engine applies →
// P4Runtime pushes into the behavioral switch. Two rows:
//
//   wire    every hop over real TCP JSON-RPC. Bounded by the socket
//           codec (JSON encode/decode plus syscalls per commit), so it
//           measures the deployment ceiling of one boxed controller.
//   direct  commits and monitor delivery in-process against the same
//           real ovsdb.Database; engine, P4Runtime client, and switch
//           unchanged (pushes still cross TCP). Measures what the
//           control-plane core sustains once the wire codec is off the
//           critical path — the row the >=100k txn/s target applies
//           to, and the one that shows what monitor coalescing buys.
//
// The headline number is end-to-end transactions per second: committed,
// applied, and pushed. Commit latency percentiles and process-wide
// allocations per transaction ride along, and the coalescing columns
// show how many engine applies the input stream collapsed into.
// ---------------------------------------------------------------------

// ThroughputRow is one transport mode's measurement.
type ThroughputRow struct {
	Mode string `json:"mode"` // "wire" or "direct"
	// Txns is the measured transaction count (excludes warmup).
	Txns int `json:"txns"`
	// Seconds spans first commit to last data-plane push.
	Seconds    float64 `json:"seconds"`
	TxnsPerSec float64 `json:"txns_per_sec"`
	// CommitP50/P99 are client-observed commit round-trip latencies.
	CommitP50 time.Duration `json:"commit_p50_ns"`
	CommitP99 time.Duration `json:"commit_p99_ns"`
	// AllocsPerTxn is process-wide heap allocations per measured
	// transaction (all planes: server, controller, switch, clients).
	AllocsPerTxn float64 `json:"allocs_per_txn"`
	// EngineApplies is how many engine transactions absorbed the
	// measured commits; AvgBatch = merged commits / applies.
	EngineApplies int     `json:"engine_applies"`
	AvgBatch      float64 `json:"avg_coalesce_batch"`
}

// ThroughputResult is the sustained-throughput report.
type ThroughputResult struct {
	Workers       int             `json:"workers"`
	TxnsPerWorker int             `json:"txns_per_worker"`
	Rows          []ThroughputRow `json:"rows"`
}

// throughputStats counts applies and merged commits from the
// controller's OnTxn hook (runs on the event-loop goroutine).
type throughputStats struct {
	applies atomic.Int64
	merged  atomic.Int64
}

func (t *throughputStats) onTxn(ts core.TxnStats) {
	if ts.Source != "ovsdb" || ts.InputUpdates == 0 {
		return
	}
	t.applies.Add(1)
	t.merged.Add(int64(ts.CoalescedTxns))
}

// RunThroughput drives workers*txnsPerWorker transactions through the
// full stack with monitor coalescing enabled, once per transport mode,
// and reports aggregate throughput. Each worker owns one commit path
// and one port name, alternating insert/delete so table sizes stay
// constant.
func RunThroughput(workers, txnsPerWorker int) (*ThroughputResult, error) {
	if workers <= 0 {
		workers = 16
	}
	if txnsPerWorker <= 0 {
		txnsPerWorker = 2000
	}
	res := &ThroughputResult{Workers: workers, TxnsPerWorker: txnsPerWorker}
	for _, mode := range []string{"wire", "direct"} {
		row, err := runThroughputMode(mode, workers, txnsPerWorker)
		if err != nil {
			return nil, fmt.Errorf("throughput %s: %w", mode, err)
		}
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}

func runThroughputMode(mode string, workers, txnsPerWorker int) (*ThroughputRow, error) {
	stats := &throughputStats{}
	s, err := StartStackConfig(StackConfig{
		OnTxn:    stats.onTxn,
		DirectMP: mode == "direct",
		// Large merge budget, zero window: drain whatever is queued
		// without ever delaying a lone commit.
		CoalesceMaxTxns:    4096,
		CoalesceMaxUpdates: 8192,
	})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	if err := s.Transact(ovsdb.OpInsert("SwitchCfg", map[string]ovsdb.Value{
		"name": "snvs0", "flood_unknown": true,
	}), ovsdb.OpInsert("Port", map[string]ovsdb.Value{
		"name": "warm", "port_num": int64(9999), "vlan_mode": "access", "tag": int64(10),
	})); err != nil {
		return nil, err
	}
	if err := s.WaitEntries("in_vlan", 1, 10*time.Second); err != nil {
		return nil, err
	}

	// commit is the per-worker transaction path under test.
	var commits []func(ops ...ovsdb.Operation) error
	if mode == "wire" {
		for w := 0; w < workers; w++ {
			c, err := ovsdb.Dial(s.OVSDBAddr)
			if err != nil {
				return nil, err
			}
			defer c.Close()
			commits = append(commits, func(ops ...ovsdb.Operation) error {
				_, err := c.TransactErr("snvs", ops...)
				return err
			})
		}
	} else {
		direct := func(ops ...ovsdb.Operation) error {
			for _, r := range s.DB.Transact(ops) {
				if r.Error != "" {
					return fmt.Errorf("ovsdb: %s: %s", r.Error, r.Details)
				}
			}
			return nil
		}
		for w := 0; w < workers; w++ {
			commits = append(commits, direct)
		}
	}

	var sent atomic.Int64
	// drive runs n alternating insert/delete commits on worker w's own
	// port, recording commit round-trip latencies when lats != nil.
	drive := func(w, n int, lats *[]time.Duration) error {
		commit := commits[w]
		name := fmt.Sprintf("tp-%d", w)
		ins := ovsdb.OpInsert("Port", map[string]ovsdb.Value{
			"name": name, "port_num": int64(1000 + w), "vlan_mode": "access", "tag": int64(10),
		})
		del := ovsdb.OpDelete("Port", ovsdb.Cond("name", "==", name))
		for i := 0; i < n; i++ {
			op := ins
			if i%2 == 1 {
				op = del
			}
			start := time.Now()
			if err := commit(op); err != nil {
				return err
			}
			if lats != nil {
				*lats = append(*lats, time.Since(start))
			}
			sent.Add(1)
		}
		return nil
	}
	// drain waits until every commit so far (plus the one setup commit
	// above, which the monitor also delivers) has been applied and
	// pushed.
	drain := func(pass string) error {
		deadline := time.Now().Add(60 * time.Second)
		for stats.merged.Load() < sent.Load()+1 {
			if err := s.Ctrl.Err(); err != nil {
				return err
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("%s pass: %d/%d commits applied",
					pass, stats.merged.Load(), sent.Load()+1)
			}
			time.Sleep(time.Millisecond)
		}
		return nil
	}
	runAll := func(n int, lats [][]time.Duration) error {
		var wg sync.WaitGroup
		errs := make([]error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var lp *[]time.Duration
				if lats != nil {
					lp = &lats[w]
				}
				errs[w] = drive(w, n, lp)
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}

	// Warmup: a fraction of the measured load, discarded. Even count
	// keeps the insert/delete parity aligned for the measured pass.
	warm := txnsPerWorker / 10
	if warm%2 == 1 {
		warm++
	}
	if warm < 10 {
		warm = 10
	}
	if err := runAll(warm, nil); err != nil {
		return nil, err
	}
	if err := drain("warmup"); err != nil {
		return nil, err
	}

	// Median of three measured rounds: a GC cycle or scheduling stall
	// landing inside one ~sub-second round moves its txn/s by ±15% on a
	// single-core box, so one draw is not a sustained number. Each round
	// is a full load of txnsPerWorker per worker; the reported row is the
	// round with the median aggregate txn/s.
	const measuredRounds = 3
	var best *ThroughputRow
	rows := make([]*ThroughputRow, 0, measuredRounds)
	for r := 0; r < measuredRounds; r++ {
		appliesBefore := stats.applies.Load()
		mergedBefore := stats.merged.Load()
		runtime.GC()
		var msBefore runtime.MemStats
		runtime.ReadMemStats(&msBefore)

		lats := make([][]time.Duration, workers)
		start := time.Now()
		if err := runAll(txnsPerWorker, lats); err != nil {
			return nil, err
		}
		if err := drain("measure"); err != nil {
			return nil, err
		}
		elapsed := time.Since(start)

		var msAfter runtime.MemStats
		runtime.ReadMemStats(&msAfter)

		all := make([]time.Duration, 0, workers*txnsPerWorker)
		for _, l := range lats {
			all = append(all, l...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		total := len(all)
		applies := int(stats.applies.Load() - appliesBefore)
		merged := stats.merged.Load() - mergedBefore
		row := &ThroughputRow{
			Mode:          mode,
			Txns:          total,
			Seconds:       elapsed.Seconds(),
			TxnsPerSec:    float64(total) / elapsed.Seconds(),
			CommitP50:     percentileDur(all, 50),
			CommitP99:     percentileDur(all, 99),
			AllocsPerTxn:  float64(msAfter.Mallocs-msBefore.Mallocs) / float64(total),
			EngineApplies: applies,
		}
		if applies > 0 {
			row.AvgBatch = float64(merged) / float64(applies)
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].TxnsPerSec < rows[j].TxnsPerSec })
	best = rows[len(rows)/2]
	return best, nil
}

// String renders the report.
func (r *ThroughputResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Sustained throughput: %d workers × %d txns end-to-end (ovsdb→engine→p4rt→switch)\n",
		r.Workers, r.TxnsPerWorker)
	fmt.Fprintf(&sb, "  %-7s  %12s  %12s  %12s  %10s  %9s  %9s\n",
		"mode", "txn/s", "commit p50", "commit p99", "allocs/txn", "applies", "avg batch")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %-7s  %12.0f  %12v  %12v  %10.1f  %9d  %9.1f\n",
			row.Mode, row.TxnsPerSec, row.CommitP50, row.CommitP99, row.AllocsPerTxn,
			row.EngineApplies, row.AvgBatch)
	}
	return sb.String()
}
