// Package bench is the evaluation harness: one runner per table/figure of
// the paper, each returning a report whose rows mirror what the paper
// published. cmd/nerpa-bench prints them; bench_test.go wraps them as
// testing.B benchmarks.
package bench

import (
	"fmt"
	"net"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/dl/engine"
	"repro/internal/obs"
	"repro/internal/ovsdb"
	"repro/internal/p4rt"
	"repro/internal/snvs"
	"repro/internal/switchsim"
)

// Stack is a complete in-process deployment of the snvs system over real
// TCP sockets: OVSDB server, behavioral switch with p4rt, and the Nerpa
// controller.
type Stack struct {
	DB     *ovsdb.Database
	DBC    *ovsdb.Client
	Switch *switchsim.Switch
	Fabric *switchsim.Fabric
	Ctrl   *core.Controller
	// OVSDBAddr is the management-plane server's listen address, for
	// experiments that drive load over additional client connections.
	OVSDBAddr string

	ovsdbSrv *ovsdb.Server
	closers  []func()
}

// StartStack boots the full snvs deployment, uninstrumented.
func StartStack() (*Stack, error) { return StartStackObs(nil) }

// StartStackObs boots the full snvs deployment with every plane wired to
// the observer's registry and tracer (nil behaves like StartStack).
func StartStackObs(o *obs.Observer) (*Stack, error) { return StartStackWith(o, nil) }

// StartStackWith is StartStackObs plus a per-transaction stats hook
// passed through to the controller (used by latency experiments).
func StartStackWith(o *obs.Observer, onTxn func(core.TxnStats)) (*Stack, error) {
	return StartStackConfig(StackConfig{Obs: o, OnTxn: onTxn})
}

// StackConfig selects optional stack features beyond the defaults.
type StackConfig struct {
	Obs   *obs.Observer
	OnTxn func(core.TxnStats)
	// Coalesce* pass through to core.Config (zero values keep
	// coalescing off).
	CoalesceMaxTxns    int
	CoalesceMaxUpdates int
	CoalesceWindow     time.Duration
	// DirectMP attaches the controller's monitor straight to the
	// in-process database instead of over a JSON-RPC connection. The
	// OVSDB server still runs (commits through it notify the same
	// monitor), but monitor delivery skips the wire codec — used to
	// measure the stack's absorption rate without the socket hop.
	DirectMP bool
	// DisableTxnWrites passes through to core.Config: with an observer
	// attached the controller normally propagates txn IDs into its
	// device writes (WriteTxn); this turns that off so benchmarks can
	// isolate the propagation cost.
	DisableTxnWrites bool
	// Profile passes through to core.Config: the continuous workload
	// profiler (per-rule stats, memory accounting). Needs Obs.
	Profile bool
	// Rules overrides the control-plane program (default snvs.Rules) —
	// profiler experiments append deliberately expensive rules to it.
	Rules string
	// OnDelta passes through to core.Config: the post-push output-delta
	// tap the subscription fan-out attaches to.
	OnDelta func(txn uint64, delta engine.Delta)
}

// directMP is the in-process management plane: the real ovsdb.Database
// fronted without the wire protocol.
type directMP struct{ db *ovsdb.Database }

func (d directMP) GetSchema(string) (*ovsdb.DatabaseSchema, error) { return d.db.Schema(), nil }

func (d directMP) Monitor(_ string, _ any, requests map[string]*ovsdb.MonitorRequest, cb func(ovsdb.TableUpdates)) (ovsdb.TableUpdates, error) {
	_, initial, err := d.db.AddMonitor(requests, func(_ uint64, tu ovsdb.TableUpdates) { cb(tu) })
	return initial, err
}

func (d directMP) MonitorTxn(_ string, _ any, requests map[string]*ovsdb.MonitorRequest, cb func(uint64, ovsdb.TableUpdates)) (ovsdb.TableUpdates, error) {
	_, initial, err := d.db.AddMonitor(requests, cb)
	return initial, err
}

// StartStackConfig boots the full snvs deployment with the given
// feature selection.
func StartStackConfig(cfg StackConfig) (*Stack, error) {
	o, onTxn := cfg.Obs, cfg.OnTxn
	schema, err := snvs.Schema()
	if err != nil {
		return nil, err
	}
	s := &Stack{DB: ovsdb.NewDatabase(schema)}
	s.DB.SetObs(o)
	fail := func(err error) (*Stack, error) {
		s.Close()
		return nil, err
	}
	s.ovsdbSrv = ovsdb.NewServer(s.DB)
	ovsdbLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	go s.ovsdbSrv.Serve(ovsdbLn)
	s.OVSDBAddr = ovsdbLn.Addr().String()
	s.closers = append(s.closers, s.ovsdbSrv.Close)

	s.Switch, err = switchsim.New("snvs0", switchsim.Config{Program: snvs.Pipeline()})
	if err != nil {
		return fail(err)
	}
	s.Switch.SetObs(o)
	p4Ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	go s.Switch.Serve(p4Ln)
	s.closers = append(s.closers, s.Switch.Close)

	s.Fabric = switchsim.NewFabric()
	if err := s.Fabric.AddSwitch(s.Switch); err != nil {
		return fail(err)
	}

	s.DBC, err = ovsdb.Dial(ovsdbLn.Addr().String())
	if err != nil {
		return fail(err)
	}
	s.closers = append(s.closers, func() { s.DBC.Close() })
	p4c, err := p4rt.Dial(p4Ln.Addr().String())
	if err != nil {
		return fail(err)
	}
	s.closers = append(s.closers, func() { p4c.Close() })
	p4c.SetObs(o, "snvs0")

	var mp core.ManagementPlane = s.DBC
	if cfg.DirectMP {
		mp = directMP{s.DB}
	}
	rules := cfg.Rules
	if rules == "" {
		rules = snvs.Rules
	}
	s.Ctrl, err = core.New(core.Config{
		Rules: rules, Database: "snvs", Obs: o, OnTxn: onTxn,
		OnDelta:            cfg.OnDelta,
		CoalesceMaxTxns:    cfg.CoalesceMaxTxns,
		CoalesceMaxUpdates: cfg.CoalesceMaxUpdates,
		CoalesceWindow:     cfg.CoalesceWindow,
		DisableTxnWrites:   cfg.DisableTxnWrites,
		Profile:            cfg.Profile,
	}, mp, p4c)
	if err != nil {
		return fail(err)
	}
	s.closers = append(s.closers, s.Ctrl.Stop)
	return s, nil
}

// Close tears the deployment down.
func (s *Stack) Close() {
	for i := len(s.closers) - 1; i >= 0; i-- {
		s.closers[i]()
	}
	s.closers = nil
}

// Transact runs OVSDB operations, failing on per-op errors.
func (s *Stack) Transact(ops ...ovsdb.Operation) error {
	_, err := s.DBC.TransactErr("snvs", ops...)
	return err
}

// WaitEntries polls until the data-plane table holds want entries.
func (s *Stack) WaitEntries(table string, want int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if err := s.Ctrl.Err(); err != nil {
			return err
		}
		if s.Switch.Runtime().EntryCount(table) == want {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("bench: table %s has %d entries, want %d",
				table, s.Switch.Runtime().EntryCount(table), want)
		}
		time.Sleep(20 * time.Microsecond)
	}
}

// heapAlloc returns live heap bytes after a forced GC.
func heapAlloc() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}
