package bench

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/ovsdb"
)

// ---------------------------------------------------------------------
// Flight-recorder overhead — the same full-stack insert/delete workload
// with no observer at all, with the observer but the event ring
// disabled, with events on, with events plus txn-ID propagation into
// the data plane (WriteTxn wire metadata and the switch-applied trace
// stage), with events plus the metrics-history sampler, and with the
// workload profiler (per-rule stats collection in the engine plus the
// EWMA aggregation and memory accounting). Overhead is computed
// against the "metrics" row (observer minus recorder), which isolates
// what each layer adds on top of the pre-existing metrics/tracing
// instrumentation: the events-only delta is the always-on acceptance
// budget, events+dataplane prices the end-to-end tracing extension,
// and profiler prices the per-rule attribution path.
// ---------------------------------------------------------------------

// obsOverheadBaseMode is the row overheads are computed against.
const obsOverheadBaseMode = "metrics"

// ObsOverheadRow is one recorder configuration's measurement.
type ObsOverheadRow struct {
	Mode string `json:"mode"` // "off", "metrics", "events", "events+dataplane", "events+history", "profiler"
	Txns int    `json:"txns"`
	// P50/P99 are apply+push latency percentiles (engine evaluation plus
	// data-plane push, per transaction, as measured by the controller).
	P50 time.Duration `json:"p50_ns"`
	P99 time.Duration `json:"p99_ns"`
	// P50OverheadPct is this row's p50 relative to the "metrics"
	// baseline (observer on, event ring disabled), as a percentage
	// increase.
	P50OverheadPct float64 `json:"p50_overhead_pct"`
	// Events is the flight recorder's total appended-event count at the
	// end of the run (0 when the ring is off).
	Events uint64 `json:"events"`
}

// ObsOverheadResult is the recorder-overhead report.
type ObsOverheadResult struct {
	Txns int              `json:"txns"`
	Rows []ObsOverheadRow `json:"rows"`
}

// obsOverheadSamples collects per-transaction apply+push latencies from
// the controller's OnTxn hook. The hook runs on the event-loop
// goroutine while the driver reads counts concurrently, hence the lock.
type obsOverheadSamples struct {
	mu        sync.Mutex
	armed     bool
	latencies []time.Duration
}

func (c *obsOverheadSamples) onTxn(ts core.TxnStats) {
	if ts.Source != "ovsdb" || ts.InputUpdates == 0 {
		return
	}
	c.mu.Lock()
	if c.armed {
		c.latencies = append(c.latencies, ts.EngineTime+ts.PushTime)
	}
	c.mu.Unlock()
}

func (c *obsOverheadSamples) arm() {
	c.mu.Lock()
	c.armed = true
	c.latencies = c.latencies[:0]
	c.mu.Unlock()
}

func (c *obsOverheadSamples) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.latencies)
}

func (c *obsOverheadSamples) snapshot() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.latencies...)
}

// obsOverheadRounds is how many interleaved chunks the measured pass is
// split into per mode.
const obsOverheadRounds = 10

// obsModeRun is one recorder configuration's live stack during the
// interleaved run.
type obsModeRun struct {
	mode string
	o    *obs.Observer
	s    *Stack
	coll *obsOverheadSamples
	sent int
}

// RunObsOverhead boots the full stack for every recorder mode up front,
// runs one discarded warmup pass per mode, then interleaves the measured
// transactions round-robin across the modes in small chunks. The
// interleaving is the noise-floor fix: a sequential mode-after-mode run
// lets clock, thermal, and allocator drift show up as phantom overhead
// (the off row previously measured a few tenths of a percent against
// itself); round-robin chunks spread that drift evenly across all modes.
// The insert/delete alternation keeps table sizes constant, so every
// mode measures the same steady state.
func RunObsOverhead(txns int) (*ObsOverheadResult, error) {
	if txns <= 0 {
		txns = 300
	}
	// Per-mode chunk: even (to keep the alternation balanced) and at
	// least 2, so txns rounds up to chunk*obsOverheadRounds.
	chunk := txns / obsOverheadRounds
	if chunk%2 != 0 {
		chunk++
	}
	if chunk < 2 {
		chunk = 2
	}
	txns = chunk * obsOverheadRounds
	res := &ObsOverheadResult{Txns: txns}
	var runs []*obsModeRun
	defer func() {
		for _, m := range runs {
			if m.o != nil {
				m.o.StopHistory()
			}
			m.s.Close()
		}
	}()
	for _, mode := range []string{"off", obsOverheadBaseMode, "events", "events+dataplane", "events+history", "profiler"} {
		var o *obs.Observer
		switch mode {
		case "off":
		case obsOverheadBaseMode, "profiler":
			// profiler uses the metrics baseline (event ring disabled) plus
			// the workload profiler, so its delta prices exactly the
			// per-rule attribution path.
			o = obs.NewObserverWith(obs.ObserverConfig{EventCapacity: -1})
		default:
			o = obs.NewObserver()
		}
		coll := &obsOverheadSamples{}
		// Txn-ID propagation into the data plane is priced as its own
		// mode: every row but events+dataplane and events+history pins it
		// off so the recorder deltas stay comparable to prior baselines.
		s, err := StartStackConfig(StackConfig{
			Obs: o, OnTxn: coll.onTxn,
			DisableTxnWrites: mode != "events+dataplane" && mode != "events+history",
			Profile:          mode == "profiler",
		})
		if err != nil {
			return nil, err
		}
		m := &obsModeRun{mode: mode, o: o, s: s, coll: coll}
		runs = append(runs, m)
		if mode == "events+history" {
			o.StartHistory(10 * time.Millisecond)
		}
		if err := s.Transact(ovsdb.OpInsert("SwitchCfg", map[string]ovsdb.Value{
			"name": "snvs0", "flood_unknown": true,
		}), ovsdb.OpInsert("Port", map[string]ovsdb.Value{
			"name": "warm", "port_num": int64(999), "vlan_mode": "access", "tag": int64(10),
		})); err != nil {
			return nil, err
		}
		if err := s.WaitEntries("in_vlan", 1, 10*time.Second); err != nil {
			return nil, err
		}
	}
	// Warmup pass: full per-mode transaction count, discarded by the
	// re-arm below. Warms the allocator, connection buffers, table state,
	// and the pools the measured pass exercises.
	for _, m := range runs {
		m.coll.arm()
		m.sent = 0
		if err := driveObsChunk(m, txns); err != nil {
			return nil, err
		}
		if err := drainObsMode(m, "warmup"); err != nil {
			return nil, err
		}
	}
	// Measured pass: interleaved chunks, with the within-round order
	// rotated each round so any process-wide disturbance that recurs at
	// the round period (GC cycles chief among them) is spread across all
	// modes instead of always billing the same one. The explicit GC
	// before each chunk keeps one mode's garbage from triggering a
	// collection pause inside the next mode's measurement window.
	for _, m := range runs {
		m.coll.arm()
		m.sent = 0
	}
	for r := 0; r < obsOverheadRounds; r++ {
		for i := range runs {
			m := runs[(r+i)%len(runs)]
			runtime.GC()
			if err := driveObsChunk(m, chunk); err != nil {
				return nil, err
			}
			if err := drainObsMode(m, "measure"); err != nil {
				return nil, err
			}
		}
	}
	for _, m := range runs {
		lats := m.coll.snapshot()
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		row := ObsOverheadRow{
			Mode: m.mode,
			Txns: len(lats),
			P50:  percentileDur(lats, 50),
			P99:  percentileDur(lats, 99),
		}
		if m.o != nil {
			row.Events = m.o.Rec().Total()
		}
		res.Rows = append(res.Rows, row)
	}
	var base float64
	for _, row := range res.Rows {
		if row.Mode == obsOverheadBaseMode {
			base = float64(row.P50)
		}
	}
	if base > 0 {
		for i := range res.Rows {
			res.Rows[i].P50OverheadPct = (float64(res.Rows[i].P50)/base - 1) * 100
		}
	}
	return res, nil
}

// driveObsChunk submits n alternating insert/delete transactions to one
// mode's stack, continuing the mode's alternation parity.
func driveObsChunk(m *obsModeRun, n int) error {
	for i := 0; i < n; i++ {
		var err error
		if m.sent%2 == 0 {
			err = m.s.Transact(ovsdb.OpInsert("Port", map[string]ovsdb.Value{
				"name": "bench-p", "port_num": int64(7), "vlan_mode": "access", "tag": int64(10),
			}))
		} else {
			err = m.s.Transact(ovsdb.OpDelete("Port", ovsdb.Cond("name", "==", "bench-p")))
		}
		if err != nil {
			return err
		}
		m.sent++
	}
	return nil
}

// drainObsMode waits until every transaction submitted to the mode so
// far has been applied and pushed, so chunk latencies never bleed into
// the next mode's measurement window.
func drainObsMode(m *obsModeRun, pass string) error {
	deadline := time.Now().Add(30 * time.Second)
	for m.coll.count() < m.sent {
		if err := m.s.Ctrl.Err(); err != nil {
			return err
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("bench: obs-overhead %s/%s: %d/%d transactions applied",
				m.mode, pass, m.coll.count(), m.sent)
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}

// percentileDur returns the p-th percentile of sorted latencies.
func percentileDur(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := (len(sorted) - 1) * p / 100
	return sorted[i]
}

// String renders the report.
func (r *ObsOverheadResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Flight-recorder overhead: %d txns per mode (apply+push latency, vs %s)\n",
		r.Txns, obsOverheadBaseMode)
	fmt.Fprintf(&sb, "  %-14s  %12s  %12s  %9s  %8s\n", "mode", "p50", "p99", "overhead", "events")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %-14s  %12v  %12v  %8.1f%%  %8d\n",
			row.Mode, row.P50, row.P99, row.P50OverheadPct, row.Events)
	}
	return sb.String()
}
