package bench

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/ovsdb"
)

// ---------------------------------------------------------------------
// Flight-recorder overhead — the same full-stack insert/delete workload
// with no observer at all, with the observer but the event ring
// disabled, with events on, and with events plus the metrics-history
// sampler. Overhead is computed against the "metrics" row (observer
// minus recorder), which isolates what the flight recorder itself adds
// on top of the pre-existing metrics/tracing instrumentation: that
// events-only delta is the PR's acceptance budget (p50 within 5%),
// since the recorder is meant to be always-on in production.
// ---------------------------------------------------------------------

// obsOverheadBaseMode is the row overheads are computed against.
const obsOverheadBaseMode = "metrics"

// ObsOverheadRow is one recorder configuration's measurement.
type ObsOverheadRow struct {
	Mode string `json:"mode"` // "off", "metrics", "events", "events+history"
	Txns int    `json:"txns"`
	// P50/P99 are apply+push latency percentiles (engine evaluation plus
	// data-plane push, per transaction, as measured by the controller).
	P50 time.Duration `json:"p50_ns"`
	P99 time.Duration `json:"p99_ns"`
	// P50OverheadPct is this row's p50 relative to the "metrics"
	// baseline (observer on, event ring disabled), as a percentage
	// increase.
	P50OverheadPct float64 `json:"p50_overhead_pct"`
	// Events is the flight recorder's total appended-event count at the
	// end of the run (0 when the ring is off).
	Events uint64 `json:"events"`
}

// ObsOverheadResult is the recorder-overhead report.
type ObsOverheadResult struct {
	Txns int              `json:"txns"`
	Rows []ObsOverheadRow `json:"rows"`
}

// obsOverheadSamples collects per-transaction apply+push latencies from
// the controller's OnTxn hook. The hook runs on the event-loop
// goroutine while the driver reads counts concurrently, hence the lock.
type obsOverheadSamples struct {
	mu        sync.Mutex
	armed     bool
	latencies []time.Duration
}

func (c *obsOverheadSamples) onTxn(ts core.TxnStats) {
	if ts.Source != "ovsdb" || ts.InputUpdates == 0 {
		return
	}
	c.mu.Lock()
	if c.armed {
		c.latencies = append(c.latencies, ts.EngineTime+ts.PushTime)
	}
	c.mu.Unlock()
}

func (c *obsOverheadSamples) arm() {
	c.mu.Lock()
	c.armed = true
	c.latencies = c.latencies[:0]
	c.mu.Unlock()
}

func (c *obsOverheadSamples) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.latencies)
}

func (c *obsOverheadSamples) snapshot() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.latencies...)
}

// RunObsOverhead boots the full stack once per mode and drives `txns`
// alternating Port insert and delete transactions through each — twice:
// one discarded warmup pass, one measured pass — reporting p50/p99
// apply+push latency. The alternation keeps table sizes constant, so
// every mode measures the same steady state.
func RunObsOverhead(txns int) (*ObsOverheadResult, error) {
	if txns <= 0 {
		txns = 300
	}
	res := &ObsOverheadResult{Txns: txns}
	for _, mode := range []string{"off", obsOverheadBaseMode, "events", "events+history"} {
		var o *obs.Observer
		switch mode {
		case "off":
		case obsOverheadBaseMode:
			o = obs.NewObserverWith(obs.ObserverConfig{EventCapacity: -1})
		default:
			o = obs.NewObserver()
		}
		coll := &obsOverheadSamples{}
		s, err := StartStackWith(o, coll.onTxn)
		if err != nil {
			return nil, err
		}
		if mode == "events+history" {
			o.StartHistory(10 * time.Millisecond)
		}
		row, err := runObsOverheadMode(s, coll, mode, txns)
		if o != nil {
			row.Events = o.Reg().Counter("obs_events_total", "").Value()
			o.StopHistory()
		}
		s.Close()
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, *row)
	}
	var base float64
	for _, row := range res.Rows {
		if row.Mode == obsOverheadBaseMode {
			base = float64(row.P50)
		}
	}
	if base > 0 {
		for i := range res.Rows {
			res.Rows[i].P50OverheadPct = (float64(res.Rows[i].P50)/base - 1) * 100
		}
	}
	return res, nil
}

func runObsOverheadMode(s *Stack, coll *obsOverheadSamples, mode string, txns int) (*ObsOverheadRow, error) {
	if err := s.Transact(ovsdb.OpInsert("SwitchCfg", map[string]ovsdb.Value{
		"name": "snvs0", "flood_unknown": true,
	}), ovsdb.OpInsert("Port", map[string]ovsdb.Value{
		"name": "warm", "port_num": int64(999), "vlan_mode": "access", "tag": int64(10),
	})); err != nil {
		return nil, err
	}
	if err := s.WaitEntries("in_vlan", 1, 10*time.Second); err != nil {
		return nil, err
	}
	// Pass 1 warms the whole path (allocator, connection buffers, table
	// state); only pass 2 is measured.
	for _, pass := range []string{"warmup", "measure"} {
		coll.arm()
		for i := 0; i < txns; i++ {
			var err error
			if i%2 == 0 {
				err = s.Transact(ovsdb.OpInsert("Port", map[string]ovsdb.Value{
					"name": "bench-p", "port_num": int64(7), "vlan_mode": "access", "tag": int64(10),
				}))
			} else {
				err = s.Transact(ovsdb.OpDelete("Port", ovsdb.Cond("name", "==", "bench-p")))
			}
			if err != nil {
				return nil, err
			}
		}
		// Drain: every committed transaction must have been applied and
		// pushed before the next pass (or the percentile read) starts.
		deadline := time.Now().Add(30 * time.Second)
		for coll.count() < txns {
			if err := s.Ctrl.Err(); err != nil {
				return nil, err
			}
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("bench: obs-overhead %s/%s: %d/%d transactions applied",
					mode, pass, coll.count(), txns)
			}
			time.Sleep(time.Millisecond)
		}
	}
	lats := coll.snapshot()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return &ObsOverheadRow{
		Mode: mode,
		Txns: len(lats),
		P50:  percentileDur(lats, 50),
		P99:  percentileDur(lats, 99),
	}, nil
}

// percentileDur returns the p-th percentile of sorted latencies.
func percentileDur(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := (len(sorted) - 1) * p / 100
	return sorted[i]
}

// String renders the report.
func (r *ObsOverheadResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Flight-recorder overhead: %d txns per mode (apply+push latency, vs %s)\n",
		r.Txns, obsOverheadBaseMode)
	fmt.Fprintf(&sb, "  %-14s  %12s  %12s  %9s  %8s\n", "mode", "p50", "p99", "overhead", "events")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %-14s  %12v  %12v  %8.1f%%  %8d\n",
			row.Mode, row.P50, row.P99, row.P50OverheadPct, row.Events)
	}
	return sb.String()
}
