package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/dl/engine"
	"repro/internal/dl/value"
	"repro/internal/obs"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------
// Parallel scaling — Options.Workers across the snvs control-plane
// program. Steady state with batched changes (a batch fans out into one
// evaluation job per affected rule/plan, which is what the worker pool
// distributes; single-row changes stay below the pool's job threshold
// by design).
// ---------------------------------------------------------------------

// ParallelRow is one worker count's measurement.
type ParallelRow struct {
	Workers  int           `json:"workers"`
	PerBatch time.Duration `json:"per_batch_ns"`
	Speedup  float64       `json:"speedup_vs_1"`
}

// ParallelResult is the parallel-scaling report.
type ParallelResult struct {
	Ports     int           `json:"ports"`
	Batch     int           `json:"batch"`
	Rounds    int           `json:"rounds"`
	GoMaxProc int           `json:"gomaxprocs"`
	Rows      []ParallelRow `json:"rows"`
	// Metrics is the obs registry snapshot taken after the run when the
	// caller passed a registry (nerpa-bench embeds it in BENCH_*.json).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// RunParallelScaling loads the snvs engine with `ports` ports and learned
// MACs, then times `rounds` insert+delete batches of `batch` ports at each
// worker count. workers[0] is the baseline the speedup column is relative
// to (pass 1 first). A non-nil reg enables engine stats and records
// per-batch latency, delta sizes and derivation counts into it; the
// snapshot lands in the result's Metrics map. Pass nil for pure timing.
func RunParallelScaling(ports, batch, rounds int, workers []int, reg *obs.Registry) (*ParallelResult, error) {
	const nVlans = 10
	res := &ParallelResult{
		Ports: ports, Batch: batch, Rounds: rounds, GoMaxProc: runtime.GOMAXPROCS(0),
	}
	var mBatch, mDelta *obs.Histogram
	var mDeriv *obs.Counter
	if reg != nil {
		mDelta = reg.Histogram("dl_delta_size", "Output delta size per batch.", obs.SizeBuckets)
		mDeriv = reg.Counter("dl_derivations_total", "Facts derived across the run.")
	}
	for _, w := range workers {
		opts := engine.Options{Workers: w, CollectStats: reg != nil}
		if reg != nil {
			mBatch = reg.Histogram("bench_batch_seconds",
				"Per-batch apply latency.", nil, obs.L("workers", fmt.Sprint(w)))
		}
		rt, err := SnvsEngineOpts(opts)
		if err != nil {
			return nil, err
		}
		var load []engine.Update
		load = append(load, engine.Insert("SwitchCfg", value.Record{
			value.String("u-cfg"), value.Bool(true), value.String("snvs0"),
		}))
		for i := 0; i < ports; i++ {
			load = append(load, engine.Insert("Port", workload.PortRecord(i, nVlans)))
			load = append(load, engine.Insert("Learn", workload.LearnedRecord(i, i, nVlans)))
		}
		if _, err := rt.Apply(load); err != nil {
			return nil, err
		}
		observe := func(t0 time.Time) {
			if reg == nil {
				return
			}
			mBatch.ObserveDuration(time.Since(t0))
			if st := rt.LastApplyStats(); st != nil {
				mDelta.Observe(float64(st.DeltaSize))
				mDeriv.Add(uint64(st.Derivations))
			}
		}
		start := time.Now()
		for r := 0; r < rounds; r++ {
			ups := make([]engine.Update, 0, batch)
			for j := 0; j < batch; j++ {
				ups = append(ups, engine.Insert("Port", workload.PortRecord(ports+j, nVlans)))
			}
			t0 := time.Now()
			if _, err := rt.Apply(ups); err != nil {
				return nil, err
			}
			observe(t0)
			for j := range ups {
				ups[j].Insert = false
			}
			t0 = time.Now()
			if _, err := rt.Apply(ups); err != nil {
				return nil, err
			}
			observe(t0)
		}
		per := time.Since(start) / time.Duration(2*rounds)
		res.Rows = append(res.Rows, ParallelRow{Workers: w, PerBatch: per})
	}
	if len(res.Rows) > 0 && res.Rows[0].PerBatch > 0 {
		base := float64(res.Rows[0].PerBatch)
		for i := range res.Rows {
			res.Rows[i].Speedup = base / float64(res.Rows[i].PerBatch)
		}
	}
	if reg != nil {
		res.Metrics = reg.Snapshot()
	}
	return res, nil
}

// String renders the report.
func (r *ParallelResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Parallel scaling: %d ports loaded, %d-port batches x %d rounds (GOMAXPROCS=%d)\n",
		r.Ports, r.Batch, r.Rounds, r.GoMaxProc)
	if r.GoMaxProc == 1 {
		sb.WriteString("  note: single-CPU machine — speedups are not observable here\n")
	}
	fmt.Fprintf(&sb, "  %8s  %14s  %8s\n", "workers", "per batch", "speedup")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %8d  %14v  %7.2fx\n", row.Workers, row.PerBatch, row.Speedup)
	}
	return sb.String()
}
