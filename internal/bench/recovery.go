package bench

import (
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/faultnet"
	"repro/internal/ovsdb"
	"repro/internal/ovsdb/wal"
	"repro/internal/snvs"
)

// ---------------------------------------------------------------------
// Durability recovery — what restart-heavy operation costs with the
// management plane's WAL. Two measurements:
//
//  1. Cold recovery: commit a workload through the WAL, close it, and
//     time Open (snapshot load + tail replay + torn-tail scan) plus
//     Database.Restore into a fresh database.
//
//  2. Gap replay vs full resync: a resilient monitor client loses its
//     connection while the database keeps committing. With the cursor
//     inside the server's gap window, reconnection replays only the
//     missed commits; with the window disabled, it falls back to the
//     full-snapshot diff. The row counts delivered and the wire cost
//     (missed rows vs whole table) are the comparison the paper's
//     restart story depends on.
// ---------------------------------------------------------------------

// recoveryRows is the table size both measurements run against.
const recoveryRows = 500

// RecoveryResult is the machine-readable durability report.
type RecoveryResult struct {
	// Cold recovery.
	Txns          int           `json:"txns"`
	Rows          int           `json:"rows"`
	WalBytes      int64         `json:"wal_bytes"`
	TailRecords   int           `json:"tail_records"`
	ColdRecovery  time.Duration `json:"cold_recovery_ns"`
	ColdRecovered uint64        `json:"cold_recovered_txn"`
	// Outage resumption: GapTxns commits happen while the client is
	// disconnected. The gap path delivers GapRowsDelivered rows (the
	// drift); the fallback path ships the full FullSnapshotRows-row
	// snapshot over the wire before its diff delivers the same drift.
	GapTxns           int           `json:"gap_txns"`
	GapRowsDelivered  int           `json:"gap_rows_delivered"`
	GapResync         time.Duration `json:"gap_resync_ns"`
	FullSnapshotRows  int           `json:"full_snapshot_rows"`
	FullRowsDelivered int           `json:"full_rows_delivered"`
	FullResync        time.Duration `json:"full_resync_ns"`
}

// RunRecovery measures cold-recovery time for a txns-commit WAL and the
// gap-replay vs full-resync cost for a gapTxns-commit outage.
func RunRecovery(txns, gapTxns int) (*RecoveryResult, error) {
	if txns <= 0 {
		txns = 4000
	}
	if gapTxns <= 0 {
		gapTxns = 50
	}
	if gapTxns > recoveryRows {
		gapTxns = recoveryRows
	}
	res := &RecoveryResult{Txns: txns, Rows: recoveryRows, GapTxns: gapTxns}
	if err := runColdRecovery(txns, res); err != nil {
		return nil, err
	}
	gapRows, gapDur, err := runOutageResync(gapTxns, true)
	if err != nil {
		return nil, err
	}
	res.GapRowsDelivered, res.GapResync = gapRows, gapDur
	fullRows, fullDur, err := runOutageResync(gapTxns, false)
	if err != nil {
		return nil, err
	}
	res.FullRowsDelivered, res.FullResync = fullRows, fullDur
	res.FullSnapshotRows = recoveryRows
	return res, nil
}

// runColdRecovery writes txns commits through a WAL (fsync off: the
// measurement is replay, not disk sync latency), then times recovering
// them into a fresh database.
func runColdRecovery(txns int, res *RecoveryResult) error {
	schema, err := snvs.Schema()
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "nerpa-recovery-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	db := ovsdb.NewDatabase(schema)
	// Snapshot partway through so recovery exercises the real path:
	// snapshot load plus tail replay, not just one or the other.
	log, recovered, err := wal.Open(wal.Options{Dir: dir, Fsync: wal.FsyncOff, SnapshotEvery: txns / 2})
	if err != nil {
		return err
	}
	if err := db.Restore(recovered); err != nil {
		return err
	}
	db.AttachWAL(log)

	for i := 0; i < txns; i++ {
		var op ovsdb.Operation
		if i < recoveryRows {
			op = ovsdb.OpInsert("Port", map[string]ovsdb.Value{
				"name":      fmt.Sprintf("p%d", i),
				"port_num":  int64(i + 1),
				"vlan_mode": "access",
				"tag":       int64(10),
			})
		} else {
			op = ovsdb.OpUpdate("Port",
				map[string]ovsdb.Value{"tag": int64(10 + i%90)},
				ovsdb.Cond("name", "==", fmt.Sprintf("p%d", i%recoveryRows)))
		}
		for _, r := range db.Transact([]ovsdb.Operation{op}) {
			if r.Error != "" {
				return fmt.Errorf("bench: recovery workload txn %d: %s (%s)", i, r.Error, r.Details)
			}
		}
	}
	if err := log.Close(); err != nil {
		return fmt.Errorf("bench: closing workload wal: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if info, err := e.Info(); err == nil {
			res.WalBytes += info.Size()
		}
	}

	start := time.Now()
	log2, recovered2, err := wal.Open(wal.Options{Dir: dir, Fsync: wal.FsyncOff})
	if err != nil {
		return fmt.Errorf("bench: reopening wal: %w", err)
	}
	db2 := ovsdb.NewDatabase(schema)
	if err := db2.Restore(recovered2); err != nil {
		return fmt.Errorf("bench: restoring: %w", err)
	}
	res.ColdRecovery = time.Since(start)
	res.TailRecords = len(recovered2.Tail)
	res.ColdRecovered = recovered2.LastTxn
	log2.Close()
	if got := db2.RowCount("Port"); got != recoveryRows {
		return fmt.Errorf("bench: recovered %d Port rows, want %d", got, recoveryRows)
	}
	if recovered2.LastTxn != uint64(txns) {
		return fmt.Errorf("bench: recovered txn %d, want %d", recovered2.LastTxn, txns)
	}
	return nil
}

// runOutageResync seeds a server with recoveryRows rows, registers a
// resilient monitor through a killable connection, commits gapTxns
// single-row updates during an outage, and measures the rows delivered
// and the wall time from the kill until the subscriber has converged.
// withWindow selects the gap-replay path; disabling the server's window
// forces the full snapshot-diff fallback on the same drift.
func runOutageResync(gapTxns int, withWindow bool) (rowsDelivered int, elapsed time.Duration, err error) {
	schema, err := snvs.Schema()
	if err != nil {
		return 0, 0, err
	}
	db := ovsdb.NewDatabase(schema)
	if !withWindow {
		db.SetGapWindow(-1)
	}
	srv := ovsdb.NewServer(db)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, 0, err
	}
	go srv.Serve(ln)
	defer srv.Close()

	ops := make([]ovsdb.Operation, 0, recoveryRows)
	for i := 0; i < recoveryRows; i++ {
		ops = append(ops, ovsdb.OpInsert("Port", map[string]ovsdb.Value{
			"name":      fmt.Sprintf("p%d", i),
			"port_num":  int64(i + 1),
			"vlan_mode": "access",
			"tag":       int64(10),
		}))
	}
	for i, r := range db.Transact(ops) {
		if r.Error != "" {
			return 0, 0, fmt.Errorf("bench: resync seed op %d: %s (%s)", i, r.Error, r.Details)
		}
	}

	dialer := faultnet.NewDialer()
	cli, err := ovsdb.DialResilient(ovsdb.ResilientConfig{
		Addr:       ln.Addr().String(),
		Dial:       func(addr string) (io.ReadWriteCloser, error) { return dialer.Dial(addr) },
		BackoffMin: time.Millisecond,
		BackoffMax: 2 * time.Millisecond,
	})
	if err != nil {
		return 0, 0, err
	}
	defer cli.Close()

	var mu sync.Mutex
	var outage bool
	var delivered int
	converged := make(chan struct{})
	_, err = cli.MonitorTxn("snvs", "bench", map[string]*ovsdb.MonitorRequest{
		"Port": {},
	}, func(txn uint64, tu ovsdb.TableUpdates) {
		mu.Lock()
		defer mu.Unlock()
		if !outage {
			return
		}
		for _, rows := range tu {
			delivered += len(rows)
		}
		if delivered >= gapTxns {
			select {
			case <-converged:
			default:
				close(converged)
			}
		}
	})
	if err != nil {
		return 0, 0, err
	}

	mu.Lock()
	outage = true
	mu.Unlock()
	start := time.Now()
	dialer.KillAll()
	for i := 0; i < gapTxns; i++ {
		res := db.Transact([]ovsdb.Operation{ovsdb.OpUpdate("Port",
			map[string]ovsdb.Value{"tag": int64(20 + i)},
			ovsdb.Cond("name", "==", fmt.Sprintf("p%d", i)))})
		if terr := firstOpError(res, nil); terr != nil {
			return 0, 0, fmt.Errorf("bench: outage txn %d: %w", i, terr)
		}
	}
	select {
	case <-converged:
	case <-time.After(30 * time.Second):
		return 0, 0, fmt.Errorf("bench: resync did not converge (delivered %d of %d)", delivered, gapTxns)
	}
	elapsed = time.Since(start)
	gap, snap := cli.ResyncStats()
	if withWindow && (gap != 1 || snap != 0) {
		return 0, 0, fmt.Errorf("bench: expected gap replay, got gap=%d snapshot=%d", gap, snap)
	}
	if !withWindow && snap != 1 {
		return 0, 0, fmt.Errorf("bench: expected snapshot fallback, got gap=%d snapshot=%d", gap, snap)
	}
	mu.Lock()
	rowsDelivered = delivered
	mu.Unlock()
	return rowsDelivered, elapsed, nil
}

func firstOpError(res []ovsdb.OpResult, err error) error {
	if err != nil {
		return err
	}
	for i, r := range res {
		if r.Error != "" {
			return fmt.Errorf("op %d: %s (%s)", i, r.Error, r.Details)
		}
	}
	return nil
}

// String renders the report.
func (r *RecoveryResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Durability recovery: WAL cold restart and outage resumption\n")
	fmt.Fprintf(&sb, "  cold recovery: %v for %d txns (%d rows, %d tail records, %d wal bytes)\n",
		r.ColdRecovery, r.Txns, r.Rows, r.TailRecords, r.WalBytes)
	fmt.Fprintf(&sb, "  gap replay:    %d rows delivered in %v (%d missed txns)\n",
		r.GapRowsDelivered, r.GapResync, r.GapTxns)
	fmt.Fprintf(&sb, "  full resync:   %d rows delivered in %v (snapshot of %d rows shipped)\n",
		r.FullRowsDelivered, r.FullResync, r.FullSnapshotRows)
	return sb.String()
}
