package bench

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/dl/engine"
	"repro/internal/dl/value"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------
// Provenance overhead — Options.CollectProvenance off vs on across the
// snvs control-plane program. The off row is the PR's overhead budget
// baseline (the hot path must stay allocation-free; see
// TestProvenanceOffZeroAlloc); the on row prices what /debug/explain
// costs when enabled.
// ---------------------------------------------------------------------

// ProvenanceRow is one configuration's measurement.
type ProvenanceRow struct {
	Provenance bool          `json:"provenance"`
	PerBatch   time.Duration `json:"per_batch_ns"`
	// OverheadPct is this row's per-batch latency relative to the off
	// baseline, as a percentage increase.
	OverheadPct float64 `json:"overhead_pct"`
	// Facts/Evictions are the engine store's final statistics (zero when
	// provenance is off).
	Facts     int    `json:"facts"`
	Evictions uint64 `json:"evictions"`
}

// ProvenanceResult is the provenance-overhead report.
type ProvenanceResult struct {
	Ports  int             `json:"ports"`
	Batch  int             `json:"batch"`
	Rounds int             `json:"rounds"`
	Rows   []ProvenanceRow `json:"rows"`
}

// provWarmupRounds are discarded insert+delete rounds run against each
// runtime before measurement starts, so pool and allocator warmup never
// lands in a measured round.
const provWarmupRounds = 3

// RunProvenance loads two snvs engines with `ports` ports and learned
// MACs — provenance collection off and on — then times `rounds`
// insert+delete batches of `batch` ports against each. Rounds are
// interleaved between the two runtimes (off, on, off, on, ...) after a
// shared warmup: a sequential off-then-on run lets clock and allocator
// drift masquerade as overhead, which is exactly what the off row
// measured against itself showed before interleaving.
func RunProvenance(ports, batch, rounds int) (*ProvenanceResult, error) {
	const nVlans = 10
	res := &ProvenanceResult{Ports: ports, Batch: batch, Rounds: rounds}
	type modeRun struct {
		collect bool
		rt      *engine.Runtime
		rounds  []time.Duration
	}
	modes := []*modeRun{{collect: false}, {collect: true}}
	for _, m := range modes {
		rt, err := SnvsEngineOpts(engine.Options{CollectProvenance: m.collect})
		if err != nil {
			return nil, err
		}
		var load []engine.Update
		load = append(load, engine.Insert("SwitchCfg", value.Record{
			value.String("u-cfg"), value.Bool(true), value.String("snvs0"),
		}))
		for i := 0; i < ports; i++ {
			load = append(load, engine.Insert("Port", workload.PortRecord(i, nVlans)))
			load = append(load, engine.Insert("Learn", workload.LearnedRecord(i, i, nVlans)))
		}
		if _, err := rt.Apply(load); err != nil {
			return nil, err
		}
		m.rt = rt
	}
	oneRound := func(m *modeRun, measured bool) error {
		ups := make([]engine.Update, 0, batch)
		for j := 0; j < batch; j++ {
			ups = append(ups, engine.Insert("Port", workload.PortRecord(ports+j, nVlans)))
		}
		start := time.Now()
		if _, err := m.rt.Apply(ups); err != nil {
			return err
		}
		for j := range ups {
			ups[j].Insert = false
		}
		if _, err := m.rt.Apply(ups); err != nil {
			return err
		}
		if measured {
			m.rounds = append(m.rounds, time.Since(start))
		}
		return nil
	}
	runtime.GC()
	for r := 0; r < provWarmupRounds+rounds; r++ {
		for _, m := range modes {
			if err := oneRound(m, r >= provWarmupRounds); err != nil {
				return nil, err
			}
		}
	}
	for _, m := range modes {
		st := m.rt.ProvenanceStats()
		// Median round: a GC cycle landing inside one mode's round would
		// dominate a mean at these microsecond scales; the median prices
		// the steady-state round both modes actually run.
		sort.Slice(m.rounds, func(i, j int) bool { return m.rounds[i] < m.rounds[j] })
		res.Rows = append(res.Rows, ProvenanceRow{
			Provenance: m.collect,
			PerBatch:   m.rounds[len(m.rounds)/2] / 2,
			Facts:      st.Facts,
			Evictions:  st.Evictions,
		})
	}
	if base := float64(res.Rows[0].PerBatch); base > 0 {
		for i := range res.Rows {
			res.Rows[i].OverheadPct = (float64(res.Rows[i].PerBatch)/base - 1) * 100
		}
	}
	return res, nil
}

// String renders the report.
func (r *ProvenanceResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Provenance overhead: %d ports loaded, %d-port batches x %d rounds\n",
		r.Ports, r.Batch, r.Rounds)
	fmt.Fprintf(&sb, "  %10s  %14s  %9s  %8s  %9s\n", "provenance", "per batch", "overhead", "facts", "evictions")
	for _, row := range r.Rows {
		state := "off"
		if row.Provenance {
			state = "on"
		}
		fmt.Fprintf(&sb, "  %10s  %14v  %8.1f%%  %8d  %9d\n",
			state, row.PerBatch, row.OverheadPct, row.Facts, row.Evictions)
	}
	return sb.String()
}
