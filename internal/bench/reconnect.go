package bench

import (
	"fmt"
	"net"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/ovsdb"
	"repro/internal/p4rt"
	"repro/internal/snvs"
	"repro/internal/switchsim"
)

// ---------------------------------------------------------------------
// Reconnect recovery — time to reconverge after a switch restart. The
// stack runs with resilient clients; the switch is killed and restarted
// with empty tables (as a rebooted device would be), and the row records
// how long until the controller's resync has repopulated every entry.
// The clock starts when the restarted switch is listening again, so a
// row measures detection + redial + diff + re-push, not the outage.
// ---------------------------------------------------------------------

// reconnectBackoffMin/Max bound the redial backoff during the runs: tight,
// so the measurement is dominated by the resync itself.
const (
	reconnectBackoffMin = time.Millisecond
	reconnectBackoffMax = 20 * time.Millisecond
)

// ReconnectRow is the recovery measurement at one device-state size.
type ReconnectRow struct {
	// Ports is the configured access-port count; the device carries one
	// in_vlan entry per port plus the VLAN's flood groups.
	Ports    int `json:"ports"`
	Restarts int `json:"restarts"`
	// P50/Max are time-to-reconverge percentiles over the restarts: from
	// the restarted (empty) switch accepting connections until its
	// in_vlan table again holds every desired entry.
	P50 time.Duration `json:"reconverge_p50_ns"`
	Max time.Duration `json:"reconverge_max_ns"`
}

// ReconnectResult is the recovery report.
type ReconnectResult struct {
	Restarts int            `json:"restarts"`
	Rows     []ReconnectRow `json:"rows"`
}

// RunReconnect boots the resilient stack once per port count, seeds the
// database, then kills and restarts the switch `restarts` times,
// measuring time-to-reconverge for each restart.
func RunReconnect(portCounts []int, restarts int) (*ReconnectResult, error) {
	if len(portCounts) == 0 {
		portCounts = []int{50, 250, 1000}
	}
	if restarts <= 0 {
		restarts = 5
	}
	res := &ReconnectResult{Restarts: restarts}
	for _, ports := range portCounts {
		row, err := runReconnectSize(ports, restarts)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}

func runReconnectSize(ports, restarts int) (*ReconnectRow, error) {
	schema, err := snvs.Schema()
	if err != nil {
		return nil, err
	}
	db := ovsdb.NewDatabase(schema)
	dbSrv := ovsdb.NewServer(db)
	dbLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go dbSrv.Serve(dbLn)
	defer dbSrv.Close()

	newSwitch := func() (*switchsim.Switch, error) {
		return switchsim.New("snvs0", switchsim.Config{Program: snvs.Pipeline()})
	}
	sw, err := newSwitch()
	if err != nil {
		return nil, err
	}
	swLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p4rtAddr := swLn.Addr().String()
	go sw.Serve(swLn)

	o := obs.NewObserverWith(obs.ObserverConfig{EventCapacity: -1})
	mp, err := ovsdb.DialResilient(ovsdb.ResilientConfig{
		Addr:       dbLn.Addr().String(),
		BackoffMin: reconnectBackoffMin,
		BackoffMax: reconnectBackoffMax,
		Obs:        o,
	})
	if err != nil {
		return nil, err
	}
	defer mp.Close()
	dp, err := p4rt.DialResilient(p4rt.ResilientConfig{
		Addr:       p4rtAddr,
		Target:     "dev0",
		BackoffMin: reconnectBackoffMin,
		BackoffMax: reconnectBackoffMax,
		Obs:        o,
	})
	if err != nil {
		return nil, err
	}
	defer dp.Close()
	ctrl, err := core.New(core.Config{Rules: snvs.Rules, Database: "snvs", Obs: o}, mp, dp)
	if err != nil {
		return nil, err
	}
	defer ctrl.Stop()
	dp.OnReconnect(func(cl *p4rt.Client) error { return ctrl.Resync("dev0", cl) })

	ops := []ovsdb.Operation{ovsdb.OpInsert("SwitchCfg", map[string]ovsdb.Value{
		"name": "snvs0", "flood_unknown": true,
	})}
	for i := 0; i < ports; i++ {
		ops = append(ops, ovsdb.OpInsert("Port", map[string]ovsdb.Value{
			"name":      fmt.Sprintf("p%d", i),
			"port_num":  int64(i + 1),
			"vlan_mode": "access",
			"tag":       int64(10),
		}))
	}
	for i, r := range db.Transact(ops) {
		if r.Error != "" {
			return nil, fmt.Errorf("bench: reconnect seed op %d: %s (%s)", i, r.Error, r.Details)
		}
	}
	if err := waitEntryCount(ctrl, sw, "in_vlan", ports); err != nil {
		return nil, err
	}

	var lats []time.Duration
	for i := 0; i < restarts; i++ {
		sw.Close()
		swLn, err := relisten(p4rtAddr, 5*time.Second)
		if err != nil {
			return nil, err
		}
		sw, err = newSwitch()
		if err != nil {
			return nil, err
		}
		start := time.Now()
		go sw.Serve(swLn)
		if err := waitEntryCount(ctrl, sw, "in_vlan", ports); err != nil {
			return nil, fmt.Errorf("bench: reconnect restart %d: %w", i, err)
		}
		lats = append(lats, time.Since(start))
	}
	sw.Close()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return &ReconnectRow{
		Ports:    ports,
		Restarts: restarts,
		P50:      percentileDur(lats, 50),
		Max:      lats[len(lats)-1],
	}, nil
}

// waitEntryCount polls the switch's runtime until the table holds want
// entries (or the controller fails, or 30s pass).
func waitEntryCount(ctrl *core.Controller, sw *switchsim.Switch, table string, want int) error {
	deadline := time.Now().Add(30 * time.Second)
	for {
		if err := ctrl.Err(); err != nil {
			return err
		}
		if sw.Runtime().EntryCount(table) == want {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("bench: table %s has %d entries, want %d",
				table, sw.Runtime().EntryCount(table), want)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// relisten rebinds addr, retrying while the old listener's port frees up.
func relisten(addr string, timeout time.Duration) (net.Listener, error) {
	deadline := time.Now().Add(timeout)
	for {
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			return ln, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("bench: rebinding %s: %w", addr, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// String renders the report.
func (r *ReconnectResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Reconnect recovery: time to reconverge after a switch restart (%d restarts per size)\n", r.Restarts)
	fmt.Fprintf(&sb, "  %-8s  %12s  %12s\n", "ports", "p50", "max")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %-8d  %12v  %12v\n", row.Ports, row.P50, row.Max)
	}
	return sb.String()
}
