package bench

import "testing"

func TestRunLabelingDenseSmall(t *testing.T) {
	res, err := RunLabelingDense(40, 100, 8)
	if err != nil {
		t.Fatalf("RunLabelingDense: %v", err)
	}
	if res.Topology != "dense-cyclic" {
		t.Errorf("topology = %q", res.Topology)
	}
	if res.IncrPerChange <= 0 || res.RecomputePC <= 0 {
		t.Errorf("non-positive timings: %+v", res)
	}
	if res.FallbackPC <= 0 {
		t.Errorf("fallback not measured: %+v", res)
	}
	if res.String() == "" {
		t.Error("empty render")
	}
}
