package bench

import (
	"strings"
	"testing"
)

func TestRunPortScaleSmall(t *testing.T) {
	res, err := RunPortScale(40)
	if err != nil {
		t.Fatalf("RunPortScale: %v", err)
	}
	if res.N != 40 || res.First <= 0 || res.Last <= 0 {
		t.Fatalf("result = %+v", res)
	}
	// Incrementality: per-port latency must not grow with table size.
	// Generous bound to keep CI noise out; the real check is the printed
	// ratio (paper: 18ms/13ms ≈ 1.4x at 2000 ports).
	if res.LastOverFirst > 8 {
		t.Errorf("per-port latency grew %.1fx from first to last tenth", res.LastOverFirst)
	}
	if !strings.Contains(res.String(), "T1") {
		t.Errorf("report missing header: %s", res)
	}
}

func TestRunLoadBalancerSmall(t *testing.T) {
	res, err := RunLoadBalancer(10, 50)
	if err != nil {
		t.Fatalf("RunLoadBalancer: %v", err)
	}
	if res.IncrCPU <= 0 || res.BaseCPU <= 0 {
		t.Fatalf("result = %+v", res)
	}
	// The paper's point: the automatic engine pays overhead on this
	// adversarial workload.
	if res.CPURatio < 1 {
		t.Errorf("engine unexpectedly faster than direct translation: %.2fx", res.CPURatio)
	}
	t.Logf("\n%s", res)
}

func TestRunIncrVsRecomputeSmall(t *testing.T) {
	res, err := RunIncrVsRecompute([]int{50, 200}, 10)
	if err != nil {
		t.Fatalf("RunIncrVsRecompute: %v", err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Incremental must win, and the win must grow with network size.
	if res.Rows[0].Speedup < 1 {
		t.Errorf("incremental slower at %d ports: %+v", res.Rows[0].Ports, res.Rows[0])
	}
	if res.Rows[1].Speedup <= res.Rows[0].Speedup {
		t.Errorf("speedup did not grow with size: %v", res.Rows)
	}
	t.Logf("\n%s", res)
}

func TestRunLabelingSmall(t *testing.T) {
	res, err := RunLabeling(60, 150, 30)
	if err != nil {
		t.Fatalf("RunLabeling: %v", err)
	}
	if res.RuleLines > 10 {
		t.Errorf("the labeling program should be a handful of lines, got %d", res.RuleLines)
	}
	if res.GoLines <= res.RuleLines {
		t.Errorf("Go recompute (%d lines) should exceed the rules (%d lines)",
			res.GoLines, res.RuleLines)
	}
	if res.FinalLabels == 0 {
		t.Errorf("no labels computed")
	}
	t.Logf("\n%s", res)
}

func TestRunFig3(t *testing.T) {
	res := RunFig3()
	if len(res.Rows) < 10 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	last := res.Rows[len(res.Rows)-1]
	if last.ImperativeLoC < 5*last.DeclarativeLoC {
		t.Errorf("imperative LoC %d not >> declarative %d",
			last.ImperativeLoC, last.DeclarativeLoC)
	}
	// Both curves grow together (Fig 3's observation).
	first := res.Rows[0]
	locGrowth := float64(last.ImperativeLoC) / float64(first.ImperativeLoC)
	fragGrowth := float64(last.FragmentSites) / float64(first.FragmentSites)
	if locGrowth < 2 || fragGrowth < 2 {
		t.Errorf("curves did not grow: loc %.1fx frag %.1fx", locGrowth, fragGrowth)
	}
	t.Logf("\n%s", res)
}

func TestRunLOC(t *testing.T) {
	res, err := RunLOC()
	if err != nil {
		t.Fatalf("RunLOC: %v", err)
	}
	if res.SchemaTables != 5 {
		t.Errorf("schema tables = %d, want 5", res.SchemaTables)
	}
	if res.RulesLoC == 0 || res.PipelineLoC == 0 || res.GeneratedLoC == 0 {
		t.Errorf("zero LoC measured: %+v", res)
	}
	// The paper's order-of-magnitude claim against hand-incremental code.
	if res.ProjectedIncremental < 5*res.HandTotal {
		t.Errorf("projected incremental %d not >> hand-written %d",
			res.ProjectedIncremental, res.HandTotal)
	}
	t.Logf("\n%s", res)
}
