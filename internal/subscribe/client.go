package subscribe

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/jsonrpc"
)

// Client is the subscriber side of the wire protocol: it demultiplexes
// "sub_update"/"sub_evicted" notifications onto per-subscription
// channels. One Client may hold many subscriptions on one connection.
type Client struct {
	conn *jsonrpc.Conn

	mu   sync.Mutex
	subs map[uint64]*Subscription
	// pending buffers updates for subscription ids whose "subscribe"
	// reply has not been processed yet: delivery goroutines and RPC
	// replies share the connection, so an update can precede the reply
	// that names its id. The window is one write-queue reordering, so
	// the buffer is small and capped.
	pending map[uint64]*pendingUpdates
	bufLen  int
	closed  bool
}

// pendingUpdates is the pre-reply buffer for one subscription id.
type pendingUpdates struct {
	ups      []Update
	overflow bool
}

// Update is one delta on a subscription stream, attributed with the
// transaction that produced it.
type Update struct {
	Txn     uint64
	Changes []Change
}

// Subscription is one live relation subscription.
type Subscription struct {
	ID       uint64
	Relation string
	// Txn is the snapshot cursor: every update on Updates carries a
	// transaction at or after it.
	Txn uint64
	// Rows is the initial snapshot (weights all positive).
	Rows []Change
	// Updates delivers deltas in publish order. It closes when the
	// subscription ends — server eviction (check Evicted), explicit
	// Unsubscribe, or connection teardown.
	Updates <-chan Update

	c    *Client
	ch   chan Update
	done chan struct{}

	mu      sync.Mutex
	closed  bool
	evicted bool
	reason  string
	senders sync.WaitGroup
}

// updatesBuffer is the default per-subscription channel capacity. A
// consumer that falls further behind than this blocks the connection's
// read loop — which stalls TCP and eventually triggers the server-side
// eviction path, exactly the backpressure story the service documents.
const updatesBuffer = 1024

// Dial connects to a subscription service address.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(nc), nil
}

// NewClient wraps an established stream (tests use net.Pipe).
func NewClient(rwc io.ReadWriteCloser) *Client {
	c := &Client{
		subs:    make(map[uint64]*Subscription),
		pending: make(map[uint64]*pendingUpdates),
	}
	conn := jsonrpc.NewConnPending(rwc)
	conn.Start(jsonrpc.HandlerFunc(c.handle))
	c.conn = conn
	go func() {
		<-conn.Done()
		c.teardown()
	}()
	return c
}

// SetUpdatesBuffer overrides the per-subscription Updates channel
// capacity (and the matching pre-reply pending cap) for subscriptions
// opened after the call; n <= 0 restores the default. Large fan-out
// harnesses shrink it to keep 10k+ subscriptions memory-light.
func (c *Client) SetUpdatesBuffer(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bufLen = n
}

// buffer returns the effective Updates channel capacity.
func (c *Client) buffer() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.bufLen > 0 {
		return c.bufLen
	}
	return updatesBuffer
}

// Conn exposes the underlying JSON-RPC connection (keepalive, Err).
func (c *Client) Conn() *jsonrpc.Conn { return c.conn }

// Done closes when the connection fails or is closed.
func (c *Client) Done() <-chan struct{} { return c.conn.Done() }

// Close tears the connection down; all subscription channels close.
func (c *Client) Close() error { return c.conn.Close() }

// Subscribe opens a subscription. filter optionally restricts the
// stream to rows whose column (by index) equals the given scalar.
func (c *Client) Subscribe(relation string, filter map[int]any) (*Subscription, error) {
	params := []any{relation}
	if len(filter) > 0 {
		wire := make(map[string]any, len(filter))
		for idx, v := range filter {
			wire[fmt.Sprintf("%d", idx)] = v
		}
		params = append(params, map[string]any{"filter": wire})
	}
	var res subscribeResult
	if err := c.conn.Call("subscribe", params, &res); err != nil {
		return nil, err
	}
	sub := &Subscription{
		ID:       res.Sub,
		Relation: res.Relation,
		Txn:      res.Txn,
		Rows:     res.Rows,
		c:        c,
		ch:       make(chan Update, c.buffer()),
		done:     make(chan struct{}),
	}
	sub.Updates = sub.ch
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		close(sub.ch)
		return nil, errors.New("subscribe: connection closed")
	}
	c.subs[sub.ID] = sub
	p := c.pending[sub.ID]
	delete(c.pending, sub.ID)
	if p != nil {
		if len(p.ups) > cap(sub.ch) {
			p.overflow = true
		} else {
			// Replay buffered updates under c.mu so they precede
			// anything the read loop dispatches next; they fit the
			// fresh channel, so the replay cannot block.
			for _, u := range p.ups {
				sub.ch <- u
			}
		}
	}
	c.mu.Unlock()
	if p != nil && p.overflow {
		// Pathological: more updates raced the reply than we buffer.
		// The stream has a gap, so the subscription is unusable —
		// surface it as an eviction and let the caller resubscribe.
		go c.conn.Call("unsubscribe", []uint64{sub.ID}, nil)
		c.dropSub(sub.ID)
		sub.close(true, "client replay buffer overflow; resubscribe")
	}
	return sub, nil
}

// Relations asks the server for its subscribable relation names.
func (c *Client) Relations() ([]string, error) {
	var res struct {
		Relations []string `json:"relations"`
	}
	if err := c.conn.Call("relations", []any{}, &res); err != nil {
		return nil, err
	}
	return res.Relations, nil
}

// Unsubscribe ends the subscription; its Updates channel closes. Local
// teardown happens first so a read loop blocked on this subscription's
// backpressure cannot deadlock the server round trip.
func (s *Subscription) Unsubscribe() error {
	s.c.dropSub(s.ID)
	s.close(false, "")
	return s.c.conn.Call("unsubscribe", []uint64{s.ID}, nil)
}

// Evicted reports whether the subscription ended with a server-side
// eviction (slow consumer), and why. Meaningful once Updates closes;
// the recovery path is a fresh Subscribe.
func (s *Subscription) Evicted() (bool, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evicted, s.reason
}

// send delivers one update, blocking for backpressure but yielding if
// the subscription closes underneath.
func (s *Subscription) send(u Update) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.senders.Add(1)
	s.mu.Unlock()
	select {
	case s.ch <- u:
	case <-s.done:
	}
	s.senders.Done()
}

// close ends the subscription: in-flight sends are released, then the
// Updates channel closes (from a helper goroutine, after the last
// sender leaves — nobody ever sends on a closed channel).
func (s *Subscription) close(evicted bool, reason string) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.evicted = evicted
	s.reason = reason
	s.mu.Unlock()
	close(s.done)
	go func() {
		s.senders.Wait()
		close(s.ch)
	}()
}

// dropSub unregisters a subscription id (id reuse is impossible: the
// server allocates them monotonically per service).
func (c *Client) dropSub(id uint64) *Subscription {
	c.mu.Lock()
	defer c.mu.Unlock()
	sub := c.subs[id]
	delete(c.subs, id)
	delete(c.pending, id)
	return sub
}

// handle dispatches server notifications.
func (c *Client) handle(_ *jsonrpc.Conn, method string, params json.RawMessage) (any, *jsonrpc.RPCError) {
	switch method {
	case "sub_update":
		var msgs []updateMsg
		if err := json.Unmarshal(params, &msgs); err != nil || len(msgs) != 1 {
			return nil, &jsonrpc.RPCError{Code: "bad update"}
		}
		c.dispatch(msgs[0].Sub, Update{Txn: msgs[0].Txn, Changes: msgs[0].Changes})
		return nil, nil
	case "sub_evicted":
		var msgs []evictMsg
		if err := json.Unmarshal(params, &msgs); err != nil || len(msgs) != 1 {
			return nil, &jsonrpc.RPCError{Code: "bad eviction"}
		}
		if sub := c.dropSub(msgs[0].Sub); sub != nil {
			sub.close(true, msgs[0].Reason)
		}
		return nil, nil
	case "echo":
		var v any
		json.Unmarshal(params, &v)
		return v, nil
	default:
		return nil, &jsonrpc.RPCError{Code: "unknown method", Details: method}
	}
}

// dispatch routes one update to its subscription, buffering it when
// the subscribe reply has not resolved the id yet. The send may block
// on a full channel: that stalls the read loop and lets server-side
// eviction handle the truly slow consumer.
func (c *Client) dispatch(id uint64, u Update) {
	c.mu.Lock()
	sub := c.subs[id]
	if sub == nil {
		if !c.closed {
			p := c.pending[id]
			if p == nil {
				p = &pendingUpdates{}
				c.pending[id] = p
			}
			limit := c.bufLen
			if limit <= 0 {
				limit = updatesBuffer
			}
			if len(p.ups) < limit {
				p.ups = append(p.ups, u)
			} else {
				p.overflow = true
			}
		}
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	sub.send(u)
}

// teardown closes every subscription after connection failure.
func (c *Client) teardown() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	subs := c.subs
	c.subs = make(map[uint64]*Subscription)
	c.pending = nil
	c.mu.Unlock()
	for _, sub := range subs {
		sub.close(false, "")
	}
}
