package subscribe

import (
	"encoding/json"
	"io"
	"net"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/dl/engine"
	"repro/internal/dl/value"
	"repro/internal/dl/zset"
	"repro/internal/obs"
)

// d builds a single-relation delta.
func d(rel string, entries ...zset.Entry) engine.Delta {
	return engine.Delta{rel: zset.FromEntries(entries...)}
}

func row(i int64) value.Record { return value.Record{value.Int(i)} }

// pair wires a client to a service over an in-memory pipe.
func pair(t *testing.T, svc *Service) *Client {
	t.Helper()
	a, b := net.Pipe()
	svc.ServeConn(b)
	cl := NewClient(a)
	t.Cleanup(func() { cl.Close() })
	return cl
}

// recv waits for one update with a deadline.
func recv(t *testing.T, sub *Subscription) Update {
	t.Helper()
	select {
	case u, ok := <-sub.Updates:
		if !ok {
			t.Fatalf("Updates closed while waiting for an update")
		}
		return u
	case <-time.After(5 * time.Second):
		t.Fatalf("no update within deadline")
	}
	panic("unreachable")
}

// applyChanges folds weighted rows into a row-key → weight map.
func applyChanges(state map[string]int64, changes []Change) {
	for _, ch := range changes {
		key, _ := json.Marshal(ch.Row)
		state[string(key)] += ch.W
		if state[string(key)] == 0 {
			delete(state, string(key))
		}
	}
}

func TestSnapshotThenDelta(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	svc.Publish(1, d("R",
		zset.Entry{Rec: row(1), Weight: 1},
		zset.Entry{Rec: row(2), Weight: 1}))

	cl := pair(t, svc)
	sub, err := cl.Subscribe("R", nil)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	if sub.Txn != 1 || len(sub.Rows) != 2 {
		t.Fatalf("snapshot txn=%d rows=%d, want txn=1 rows=2", sub.Txn, len(sub.Rows))
	}
	state := map[string]int64{}
	applyChanges(state, sub.Rows)

	svc.Publish(2, d("R",
		zset.Entry{Rec: row(1), Weight: -1},
		zset.Entry{Rec: row(3), Weight: 1}))
	u := recv(t, sub)
	if u.Txn != 2 {
		t.Errorf("update txn = %d, want 2", u.Txn)
	}
	if len(u.Changes) != 2 {
		t.Fatalf("update carries %d changes, want 2", len(u.Changes))
	}
	applyChanges(state, u.Changes)
	if len(state) != 2 || state[`[2]`] != 1 || state[`[3]`] != 1 {
		t.Errorf("converged state = %v, want rows [2] and [3]", state)
	}
}

func TestFilteredSubscription(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	mk := func(port, vlan int64) zset.Entry {
		return zset.Entry{Rec: value.Record{value.Int(port), value.Int(vlan)}, Weight: 1}
	}
	svc.Publish(1, d("InVlan", mk(1, 10), mk(2, 10), mk(3, 20)))

	cl := pair(t, svc)
	sub, err := cl.Subscribe("InVlan", map[int]any{1: 10})
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	if len(sub.Rows) != 2 {
		t.Fatalf("filtered snapshot has %d rows, want 2 (vlan 10 only)", len(sub.Rows))
	}
	// A delta touching only vlan 20 must not reach this subscriber;
	// the next vlan-10 change must.
	svc.Publish(2, d("InVlan", mk(4, 20)))
	svc.Publish(3, d("InVlan", mk(5, 10)))
	u := recv(t, sub)
	if u.Txn != 3 || len(u.Changes) != 1 {
		t.Fatalf("filtered update txn=%d changes=%d, want txn=3 with 1 change", u.Txn, len(u.Changes))
	}
}

func TestUnsubscribe(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	cl := pair(t, svc)
	sub, err := cl.Subscribe("R", nil)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	if err := sub.Unsubscribe(); err != nil {
		t.Fatalf("Unsubscribe: %v", err)
	}
	select {
	case _, ok := <-sub.Updates:
		if ok {
			t.Fatalf("update delivered after unsubscribe")
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("Updates not closed after unsubscribe")
	}
	if evicted, _ := sub.Evicted(); evicted {
		t.Errorf("clean unsubscribe reported as eviction")
	}
	if n := svc.Subscribers(); n != 0 {
		t.Errorf("Subscribers() = %d after unsubscribe, want 0", n)
	}
}

func TestCatalogRejectsUnknownRelation(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	svc.SetCatalog([]string{"Flood", "Dmac"})
	cl := pair(t, svc)
	if _, err := cl.Subscribe("NoSuchRel", nil); err == nil {
		t.Fatalf("subscribe to uncataloged relation succeeded")
	}
	rels, err := cl.Relations()
	if err != nil {
		t.Fatalf("Relations: %v", err)
	}
	if len(rels) != 2 || rels[0] != "Dmac" || rels[1] != "Flood" {
		t.Errorf("Relations() = %v, want [Dmac Flood]", rels)
	}
}

// throttle wraps a stream so its reads can be stalled and resumed —
// the in-memory stand-in for a consumer that stops draining TCP.
type throttle struct {
	rwc  io.ReadWriteCloser
	dead chan struct{}
	once sync.Once

	mu   sync.Mutex
	gate chan struct{}
}

func newThrottle(rwc io.ReadWriteCloser) *throttle {
	return &throttle{rwc: rwc, dead: make(chan struct{})}
}

func (t *throttle) stall() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.gate == nil {
		t.gate = make(chan struct{})
	}
}

func (t *throttle) resume() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.gate != nil {
		close(t.gate)
		t.gate = nil
	}
}

func (t *throttle) Read(p []byte) (int, error) {
	t.mu.Lock()
	gate := t.gate
	t.mu.Unlock()
	if gate != nil {
		select {
		case <-gate:
		case <-t.dead:
			return 0, io.ErrClosedPipe
		}
	}
	return t.rwc.Read(p)
}

func (t *throttle) Write(p []byte) (int, error) { return t.rwc.Write(p) }

func (t *throttle) Close() error {
	t.once.Do(func() { close(t.dead) })
	return t.rwc.Close()
}

// TestSlowConsumerEviction is the e2e for the eviction contract: a
// subscriber that stops reading is evicted while a healthy subscriber
// on another connection keeps converging; after the stall clears, the
// evicted client sees the sub_evicted notice and resubscribes into a
// fresh, complete snapshot.
func TestSlowConsumerEviction(t *testing.T) {
	svc := New(Config{QueueLen: 4, WriteLimit: 1024})
	defer svc.Close()

	healthy := pair(t, svc)
	hsub, err := healthy.Subscribe("R", nil)
	if err != nil {
		t.Fatalf("healthy Subscribe: %v", err)
	}

	a, b := net.Pipe()
	th := newThrottle(a)
	svc.ServeConn(b)
	slow := NewClient(th)
	defer slow.Close()
	ssub, err := slow.Subscribe("R", nil)
	if err != nil {
		t.Fatalf("slow Subscribe: %v", err)
	}
	th.stall()

	// Publish at the healthy subscriber's consumption pace (recv acks
	// each txn). The stalled connection's delivery parks once its write
	// queue congests, so its 4-slot queue fills and evicts regardless.
	const K = 100
	state := map[string]int64{}
	applyChanges(state, hsub.Rows)
	lastTxn := uint64(0)
	for i := 1; i <= K; i++ {
		svc.Publish(uint64(i), d("R", zset.Entry{Rec: row(int64(i)), Weight: 1}))
		u := recv(t, hsub)
		if u.Txn <= lastTxn {
			t.Fatalf("updates out of order: txn %d after %d", u.Txn, lastTxn)
		}
		lastTxn = u.Txn
		applyChanges(state, u.Changes)
	}
	if len(state) != K {
		t.Fatalf("healthy subscriber converged on %d rows, want %d", len(state), K)
	}

	// The stalled subscriber is evicted (its queue filled) without
	// taking its connection — or the healthy stream — down.
	deadline := time.Now().Add(10 * time.Second)
	for svc.Subscribers() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("stalled subscriber never evicted: %d active", svc.Subscribers())
		}
		time.Sleep(time.Millisecond)
	}

	// Stall lifted: the client drains what was in flight, then sees
	// the eviction close its stream.
	th.resume()
	for range ssub.Updates {
	}
	if evicted, reason := ssub.Evicted(); !evicted || reason == "" {
		t.Fatalf("Evicted() = %v %q, want eviction with reason", evicted, reason)
	}
	select {
	case <-slow.Done():
		t.Fatalf("eviction killed the connection: %v", slow.Conn().Err())
	default:
	}

	// Resubscribe-with-fresh-snapshot: the new subscription starts
	// from the complete current state.
	re, err := slow.Subscribe("R", nil)
	if err != nil {
		t.Fatalf("resubscribe after eviction: %v", err)
	}
	if len(re.Rows) != K || re.Txn != K {
		t.Fatalf("fresh snapshot rows=%d txn=%d, want rows=%d txn=%d",
			len(re.Rows), re.Txn, K, K)
	}
}

func TestDebugEndpointAndMetrics(t *testing.T) {
	o := obs.NewObserver()
	svc := New(Config{Obs: o})
	defer svc.Close()
	svc.Publish(7, d("R", zset.Entry{Rec: row(1), Weight: 1}))
	cl := pair(t, svc)
	if _, err := cl.Subscribe("R", nil); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}

	ts := httptest.NewServer(o.Handler())
	defer ts.Close()
	res, err := ts.Client().Get(ts.URL + "/debug/subscribers")
	if err != nil {
		t.Fatalf("GET /debug/subscribers: %v", err)
	}
	defer res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("/debug/subscribers status = %d", res.StatusCode)
	}
	var out struct {
		Txn         uint64 `json:"txn"`
		Connections int    `json:"connections"`
		Subscribers []struct {
			Relation string `json:"relation"`
		} `json:"subscribers"`
	}
	if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.Txn != 7 || out.Connections != 1 || len(out.Subscribers) != 1 {
		t.Fatalf("debug view = %+v, want txn=7, 1 conn, 1 subscriber", out)
	}
	if snap := o.Reg().Snapshot(); snap["sub_subscribers"] != 1 {
		t.Errorf("sub_subscribers = %v, want 1", snap["sub_subscribers"])
	}
}
