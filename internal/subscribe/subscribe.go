// Package subscribe turns the controller's derived relations into a
// queryable network-state service: many JSON-RPC clients subscribe to
// output relations (optionally with field filters) and receive an
// initial snapshot followed by incremental deltas attributed with the
// originating transaction ID.
//
// The service materializes each published relation as a Z-set of its
// own (fed by the controller's OnDelta tap), so a subscriber's snapshot
// and its subsequent delta stream are cut under one lock: every delta
// published after the snapshot is delivered exactly once, and none that
// the snapshot already contains. Fan-out is a tree keyed by relation;
// each subscriber owns a bounded queue drained by a dedicated delivery
// goroutine. A subscriber whose queue is full when a delta arrives is
// evicted — the service never blocks the controller's event loop on a
// slow reader — and told so with a final "sub_evicted" notification;
// the recovery path is to resubscribe, which yields a fresh snapshot.
//
// Wire protocol (JSON-RPC 1.0, same framing as the OVSDB plane):
//
//	request  "subscribe"   params [relation, {"filter": {"<col>": v}}?]
//	         → {"sub": id, "relation": r, "txn": t, "rows": [{"row": [...], "w": 1}, ...]}
//	request  "unsubscribe" params [id]          → {}
//	request  "relations"   params []            → {"relations": [...]}
//	request  "echo"        params any           → params (keepalive)
//	notify   "sub_update"  params [{"sub": id, "txn": t, "changes": [{"row": [...], "w": ±n}, ...]}]
//	notify   "sub_evicted" params [{"sub": id, "reason": r, "pending": n}]
//
// Rows render records as JSON arrays (bool, number, string, or nested
// array for tuples); "w" is the Z-set weight (+ inserts, − deletes).
// Because delivery goroutines and RPC replies share one connection, a
// "sub_update" may reach the wire before the "subscribe" result that
// names its id — clients buffer updates for ids they have not yet
// resolved (the Client helper does).
package subscribe

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dl/engine"
	"repro/internal/dl/value"
	"repro/internal/dl/zset"
	"repro/internal/jsonrpc"
	"repro/internal/obs"
)

// defaultQueueLen bounds a subscriber's pending-update queue when
// Config.QueueLen is zero.
const defaultQueueLen = 256

// defaultWriteLimit caps a connection's JSON-RPC write queue when
// Config.WriteLimit is zero.
const defaultWriteLimit = 4096

// defaultSoftLimit is where delivery goroutines stop feeding a
// congested connection's write queue and instead let the subscriber
// queue fill (and evict). It sits well below the hard write limit so
// slowness surfaces as subscriber eviction — which the client can
// recover from with a resubscribe — rather than connection failure.
const defaultSoftLimit = 64

// Config tunes one Service.
type Config struct {
	// QueueLen bounds each subscriber's pending-update queue; a delta
	// arriving at a full queue evicts the subscriber. 0 selects the
	// default (256).
	QueueLen int
	// WriteLimit caps each connection's JSON-RPC write queue (the layer
	// below the per-subscriber queues; it backstops replies and eviction
	// notices too). 0 selects the default (4096); negative disables the
	// cap. Overflow fails the connection.
	WriteLimit int
	// Obs receives sub_* metrics, subscriber.evict events, and the
	// /debug/subscribers endpoint. nil disables instrumentation.
	Obs *obs.Observer
}

// relState is one relation's fan-out node: the materialized contents
// plus the subscribers watching it.
type relState struct {
	z    *zset.ZSet
	subs map[uint64]*subscriber
}

// connState is the service's view of one client connection; it is also
// the connection's JSON-RPC handler.
type connState struct {
	svc    *Service
	conn   *jsonrpc.Conn
	remote string
	subs   map[uint64]*subscriber // guarded by svc.mu
}

// queuedUpdate is one delta pending delivery to one subscriber.
type queuedUpdate struct {
	txn     uint64
	changes []Change
}

// subscriber is one (connection, relation, filter) subscription.
type subscriber struct {
	id       uint64
	relation string
	filter   []fieldFilter
	cs       *connState
	queue    chan queuedUpdate
	since    time.Time

	// sent counts delivered update notifications (debug surface).
	sent atomic.Uint64

	// evicted/reason/pending are set under svc.mu before queue close;
	// the delivery goroutine reads them after the queue closes (the
	// close is the synchronization edge).
	evicted bool
	reason  string
	pending int
}

// Change is one weighted row on the wire: a record rendered as a JSON
// array plus its Z-set weight (positive inserts, negative deletes).
type Change struct {
	Row []any `json:"row"`
	W   int64 `json:"w"`
}

// updateMsg is the "sub_update" notification payload.
type updateMsg struct {
	Sub     uint64   `json:"sub"`
	Txn     uint64   `json:"txn"`
	Changes []Change `json:"changes"`
}

// evictMsg is the "sub_evicted" notification payload.
type evictMsg struct {
	Sub     uint64 `json:"sub"`
	Reason  string `json:"reason"`
	Pending int    `json:"pending"`
}

// subscribeResult is the "subscribe" reply.
type subscribeResult struct {
	Sub      uint64   `json:"sub"`
	Relation string   `json:"relation"`
	Txn      uint64   `json:"txn"`
	Rows     []Change `json:"rows"`
}

// Service is the derived-relation pub/sub fan-out. Create with New,
// feed with Publish (normally via core.Config.OnDelta), serve clients
// with Serve/ServeConn.
type Service struct {
	cfg Config
	rec *obs.Recorder
	// softLimit is the write-queue depth at which delivery goroutines
	// pause (see defaultSoftLimit; derived from cfg.WriteLimit).
	softLimit int

	mu      sync.Mutex
	rels    map[string]*relState
	catalog map[string]bool // nil = accept any relation name
	conns   map[*connState]bool
	lastTxn uint64
	nextSub uint64
	nSubs   int
	closed  bool
	// overflowBase accumulates WriteOverflows of departed connections so
	// the jsonrpc overflow counter stays monotonic.
	overflowBase uint64

	m struct {
		subscribers  *obs.Gauge
		subsTotal    *obs.Counter
		unsubsTotal  *obs.Counter
		evictions    *obs.Counter
		updates      *obs.Counter
		updateRows   *obs.Counter
		snapshotRows *obs.Counter
		dropped      *obs.Counter
	}
}

// New builds a Service and, when cfg.Obs is set, registers its metrics
// and the /debug/subscribers endpoint.
func New(cfg Config) *Service {
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = defaultQueueLen
	}
	s := &Service{
		cfg:       cfg,
		rec:       cfg.Obs.Rec(),
		softLimit: defaultSoftLimit,
		rels:      make(map[string]*relState),
		conns:     make(map[*connState]bool),
	}
	if limit := cfg.WriteLimit; limit > 0 && s.softLimit > limit/2 {
		s.softLimit = limit / 2
		if s.softLimit < 1 {
			s.softLimit = 1
		}
	}
	reg := cfg.Obs.Reg()
	s.m.subscribers = reg.Gauge("sub_subscribers",
		"Active subscriptions across all connections.")
	s.m.subsTotal = reg.Counter("sub_subscriptions_total",
		"Subscriptions accepted since start.")
	s.m.unsubsTotal = reg.Counter("sub_unsubscribes_total",
		"Explicit unsubscribes honored.")
	s.m.evictions = reg.Counter("sub_evictions_total",
		"Subscribers evicted for not draining their queue.")
	s.m.updates = reg.Counter("sub_updates_total",
		"Delta notifications enqueued to subscribers.")
	s.m.updateRows = reg.Counter("sub_update_rows_total",
		"Weighted rows carried by enqueued delta notifications.")
	s.m.snapshotRows = reg.Counter("sub_snapshot_rows_total",
		"Rows served in initial snapshots.")
	s.m.dropped = reg.Counter("sub_dropped_updates_total",
		"Updates discarded with their evicted subscriber's queue.")
	reg.GaugeFunc("sub_connections",
		"Open subscriber connections.", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.conns))
		})
	reg.GaugeFunc("sub_pending_updates",
		"Updates queued across all subscribers, awaiting delivery.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			n := 0
			for _, rs := range s.rels {
				for _, sub := range rs.subs {
					n += len(sub.queue)
				}
			}
			return float64(n)
		})
	reg.GaugeFunc("jsonrpc_write_queue_depth",
		"Messages queued in JSON-RPC write queues.", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			n := 0
			for cs := range s.conns {
				n += cs.conn.WriteQueueLen()
			}
			return float64(n)
		}, obs.L("server", "subscribe"))
	reg.CounterFunc("jsonrpc_write_overflows_total",
		"Sends rejected by the JSON-RPC write-queue cap.", func() uint64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			n := s.overflowBase
			for cs := range s.conns {
				n += cs.conn.WriteOverflows()
			}
			return n
		}, obs.L("server", "subscribe"))
	cfg.Obs.RegisterDebug("/debug/subscribers", http.HandlerFunc(s.handleDebug))
	return s
}

// SetCatalog restricts subscribe to the given relation names (normally
// the controller's OutputRelations). Without a catalog any name is
// accepted; unknown relations simply start empty and never change.
func (s *Service) SetCatalog(names []string) {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	s.mu.Lock()
	s.catalog = m
	s.mu.Unlock()
}

// Publish feeds one transaction's output delta into the fan-out. It is
// the core.Config.OnDelta shape: called post-push on the controller's
// event loop, so it must not block — enqueue or evict, never wait.
func (s *Service) Publish(txn uint64, delta engine.Delta) {
	if s == nil || len(delta) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.lastTxn = txn
	for rel, dz := range delta {
		if dz.IsEmpty() {
			continue
		}
		rs := s.rels[rel]
		if rs == nil {
			rs = &relState{z: zset.New(), subs: make(map[uint64]*subscriber)}
			s.rels[rel] = rs
		}
		rs.z.AddAll(dz)
		if len(rs.subs) == 0 {
			continue
		}
		var shared []Change // unfiltered rendering, built once per relation
		var evict []*subscriber
		for _, sub := range rs.subs {
			var changes []Change
			if sub.filter == nil {
				if shared == nil {
					shared = renderDelta(dz, nil)
				}
				changes = shared
			} else {
				changes = renderDelta(dz, sub.filter)
			}
			if len(changes) == 0 {
				continue
			}
			select {
			case sub.queue <- queuedUpdate{txn: txn, changes: changes}:
				s.m.updates.Inc()
				s.m.updateRows.Add(uint64(len(changes)))
			default:
				evict = append(evict, sub)
			}
		}
		for _, sub := range evict {
			s.evictLocked(sub, "slow consumer: queue full")
		}
	}
}

// evictLocked removes a subscriber that failed to drain its queue. The
// delivery goroutine flushes what it can, then sends the terminal
// "sub_evicted" notice; the client's recovery is a fresh subscribe.
func (s *Service) evictLocked(sub *subscriber, reason string) {
	sub.evicted = true
	sub.reason = reason
	sub.pending = len(sub.queue)
	s.removeLocked(sub)
	s.m.evictions.Inc()
	s.m.dropped.Add(uint64(sub.pending))
	s.rec.Append(obs.Ev("sub", "subscriber.evict").WithTxn(s.lastTxn).
		F("sub", int64(sub.id)).F("pending", int64(sub.pending)))
}

// removeLocked unregisters a subscriber and closes its queue (ending
// the delivery goroutine). Idempotence: only the caller that still
// finds the subscriber registered may close the queue.
func (s *Service) removeLocked(sub *subscriber) {
	rs := s.rels[sub.relation]
	if rs == nil || rs.subs[sub.id] == nil {
		return
	}
	delete(rs.subs, sub.id)
	delete(sub.cs.subs, sub.id)
	s.nSubs--
	s.m.subscribers.Add(-1)
	close(sub.queue)
}

// waitWritable holds a delivery goroutine back while the connection's
// write queue sits above the soft limit. This is what converts a slow
// TCP reader into subscriber-queue pressure (and hence eviction)
// instead of unbounded jsonrpc queue growth or connection failure.
// Returns false once the connection is dead.
func (cs *connState) waitWritable(soft int) bool {
	for {
		select {
		case <-cs.conn.Done():
			return false
		default:
		}
		if cs.conn.WriteQueueLen() < soft {
			return true
		}
		select {
		case <-cs.conn.Done():
			return false
		case <-time.After(time.Millisecond):
		}
	}
}

// deliver drains one subscriber's queue onto its connection. Runs on a
// dedicated goroutine; exits when the queue closes (unsubscribe,
// eviction, connection teardown, service close).
func (sub *subscriber) deliver() {
	soft := sub.cs.svc.softLimit
	for u := range sub.queue {
		if !sub.cs.waitWritable(soft) {
			// Connection failed: keep draining so the publisher's
			// sends stay non-blocking until teardown closes the queue.
			continue
		}
		if err := sub.cs.conn.Notify("sub_update", []any{updateMsg{
			Sub: sub.id, Txn: u.txn, Changes: u.changes,
		}}); err != nil {
			continue
		}
		sub.sent.Add(1)
	}
	if sub.evicted {
		// Best-effort: the conn is usually still healthy (the queue
		// that overflowed was ours, not jsonrpc's).
		sub.cs.conn.Notify("sub_evicted", []any{evictMsg{
			Sub: sub.id, Reason: sub.reason, Pending: sub.pending,
		}})
	}
}

// Serve accepts subscriber connections until the listener closes.
func (s *Service) Serve(ln net.Listener) error {
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.ServeConn(nc)
	}
}

// ServeConn attaches one client stream to the service and returns its
// JSON-RPC connection (tests drive in-memory pipes through this).
func (s *Service) ServeConn(rwc io.ReadWriteCloser) *jsonrpc.Conn {
	conn := jsonrpc.NewConnPending(rwc)
	limit := s.cfg.WriteLimit
	if limit == 0 {
		limit = defaultWriteLimit
	}
	if limit > 0 {
		conn.SetWriteLimit(limit, jsonrpc.FailConn)
	}
	cs := &connState{svc: s, conn: conn, subs: make(map[uint64]*subscriber)}
	if nc, ok := rwc.(net.Conn); ok {
		cs.remote = nc.RemoteAddr().String()
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		rwc.Close()
		conn.Start(nil)
		conn.Close()
		return conn
	}
	s.conns[cs] = true
	s.mu.Unlock()
	conn.Start(cs)
	go func() {
		<-conn.Done()
		s.dropConn(cs)
	}()
	return conn
}

// dropConn tears down a departed connection's subscriptions.
func (s *Service) dropConn(cs *connState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.conns[cs] {
		return
	}
	delete(s.conns, cs)
	s.overflowBase += cs.conn.WriteOverflows()
	for _, sub := range cs.subs {
		s.removeLocked(sub)
	}
}

// Close shuts the service down: every subscriber queue closes, every
// connection flushes and closes. The Serve loop (if any) returns once
// its listener is closed by the caller.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	var conns []*connState
	for cs := range s.conns {
		conns = append(conns, cs)
		for _, sub := range cs.subs {
			s.removeLocked(sub)
		}
	}
	s.mu.Unlock()
	for _, cs := range conns {
		cs.conn.Close()
	}
}

// Subscribers reports the number of active subscriptions.
func (s *Service) Subscribers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nSubs
}

// LastTxn reports the last published transaction ID.
func (s *Service) LastTxn() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastTxn
}

// Handle implements jsonrpc.Handler for one client connection.
func (cs *connState) Handle(c *jsonrpc.Conn, method string, params json.RawMessage) (any, *jsonrpc.RPCError) {
	switch method {
	case "echo":
		var v any
		if len(params) > 0 {
			json.Unmarshal(params, &v)
		}
		return v, nil
	case "subscribe":
		return cs.handleSubscribe(params)
	case "unsubscribe":
		return cs.handleUnsubscribe(params)
	case "relations":
		return cs.svc.handleRelations(), nil
	default:
		return nil, &jsonrpc.RPCError{Code: "unknown method", Details: method}
	}
}

// subscribeOpts is the optional second "subscribe" parameter.
type subscribeOpts struct {
	// Filter maps column index (JSON object keys are strings) to the
	// scalar the column must equal.
	Filter map[string]any `json:"filter"`
}

func (cs *connState) handleSubscribe(params json.RawMessage) (any, *jsonrpc.RPCError) {
	var raw []json.RawMessage
	if err := json.Unmarshal(params, &raw); err != nil || len(raw) < 1 || len(raw) > 2 {
		return nil, &jsonrpc.RPCError{Code: "bad params",
			Details: "want [relation] or [relation, opts]"}
	}
	var rel string
	if err := json.Unmarshal(raw[0], &rel); err != nil {
		return nil, &jsonrpc.RPCError{Code: "bad params", Details: "relation must be a string"}
	}
	var opts subscribeOpts
	if len(raw) == 2 {
		if err := json.Unmarshal(raw[1], &opts); err != nil {
			return nil, &jsonrpc.RPCError{Code: "bad params", Details: err.Error()}
		}
	}
	filter, err := parseFilter(opts.Filter)
	if err != nil {
		return nil, &jsonrpc.RPCError{Code: "bad filter", Details: err.Error()}
	}

	s := cs.svc
	s.mu.Lock()
	if s.closed || !s.conns[cs] {
		s.mu.Unlock()
		return nil, &jsonrpc.RPCError{Code: "shutting down"}
	}
	if s.catalog != nil && !s.catalog[rel] {
		s.mu.Unlock()
		return nil, &jsonrpc.RPCError{Code: "unknown relation", Details: rel}
	}
	rs := s.rels[rel]
	if rs == nil {
		rs = &relState{z: zset.New(), subs: make(map[uint64]*subscriber)}
		s.rels[rel] = rs
	}
	s.nextSub++
	sub := &subscriber{
		id:       s.nextSub,
		relation: rel,
		filter:   filter,
		cs:       cs,
		queue:    make(chan queuedUpdate, s.cfg.QueueLen),
		since:    time.Now(),
	}
	rs.subs[sub.id] = sub
	cs.subs[sub.id] = sub
	s.nSubs++
	rows := renderDelta(rs.z, filter)
	txn := s.lastTxn
	s.m.subscribers.Add(1)
	s.m.subsTotal.Inc()
	s.m.snapshotRows.Add(uint64(len(rows)))
	s.mu.Unlock()

	go sub.deliver()
	return subscribeResult{Sub: sub.id, Relation: rel, Txn: txn, Rows: rows}, nil
}

func (cs *connState) handleUnsubscribe(params json.RawMessage) (any, *jsonrpc.RPCError) {
	var ids []uint64
	if err := json.Unmarshal(params, &ids); err != nil || len(ids) != 1 {
		return nil, &jsonrpc.RPCError{Code: "bad params", Details: "want [sub-id]"}
	}
	s := cs.svc
	s.mu.Lock()
	defer s.mu.Unlock()
	sub := cs.subs[ids[0]]
	if sub == nil {
		return nil, &jsonrpc.RPCError{Code: "unknown subscription",
			Details: fmt.Sprintf("%d", ids[0])}
	}
	s.removeLocked(sub)
	s.m.unsubsTotal.Inc()
	return map[string]any{}, nil
}

func (s *Service) handleRelations() any {
	s.mu.Lock()
	names := make([]string, 0, len(s.catalog))
	if s.catalog != nil {
		for n := range s.catalog {
			names = append(names, n)
		}
	} else {
		for n := range s.rels {
			names = append(names, n)
		}
	}
	s.mu.Unlock()
	sort.Strings(names)
	return map[string]any{"relations": names}
}

// handleDebug serves /debug/subscribers: the live fan-out tree.
func (s *Service) handleDebug(w http.ResponseWriter, r *http.Request) {
	type subInfo struct {
		Sub      uint64 `json:"sub"`
		Relation string `json:"relation"`
		Remote   string `json:"remote,omitempty"`
		Filtered bool   `json:"filtered,omitempty"`
		Queue    int    `json:"queue"`
		QueueCap int    `json:"queue_cap"`
		Sent     uint64 `json:"sent"`
		AgeSecs  int64  `json:"age_secs"`
	}
	type relInfo struct {
		Rows        int `json:"rows"`
		Subscribers int `json:"subscribers"`
	}
	s.mu.Lock()
	out := struct {
		Txn         uint64             `json:"txn"`
		Connections int                `json:"connections"`
		Subscribers []subInfo          `json:"subscribers"`
		Relations   map[string]relInfo `json:"relations"`
	}{
		Txn:         s.lastTxn,
		Connections: len(s.conns),
		Relations:   make(map[string]relInfo, len(s.rels)),
	}
	now := time.Now()
	for name, rs := range s.rels {
		out.Relations[name] = relInfo{Rows: rs.z.Len(), Subscribers: len(rs.subs)}
		for _, sub := range rs.subs {
			out.Subscribers = append(out.Subscribers, subInfo{
				Sub: sub.id, Relation: sub.relation, Remote: sub.cs.remote,
				Filtered: sub.filter != nil,
				Queue:    len(sub.queue), QueueCap: cap(sub.queue),
				Sent:    sub.sent.Load(),
				AgeSecs: int64(now.Sub(sub.since).Seconds()),
			})
		}
	}
	s.mu.Unlock()
	sort.Slice(out.Subscribers, func(i, j int) bool {
		return out.Subscribers[i].Sub < out.Subscribers[j].Sub
	})
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}

// fieldFilter requires one record column to equal a scalar.
type fieldFilter struct {
	idx  int
	want any // bool, float64, or string (JSON scalar)
}

// parseFilter validates the wire filter map into match predicates.
func parseFilter(m map[string]any) ([]fieldFilter, error) {
	if len(m) == 0 {
		return nil, nil
	}
	fs := make([]fieldFilter, 0, len(m))
	for k, v := range m {
		var idx int
		if _, err := fmt.Sscanf(k, "%d", &idx); err != nil || idx < 0 {
			return nil, fmt.Errorf("filter key %q: want a non-negative column index", k)
		}
		switch v.(type) {
		case bool, float64, string:
		default:
			return nil, fmt.Errorf("filter %q: want a scalar (bool, number, string)", k)
		}
		fs = append(fs, fieldFilter{idx: idx, want: v})
	}
	sort.Slice(fs, func(i, j int) bool { return fs[i].idx < fs[j].idx })
	return fs, nil
}

// match reports whether a record passes every filter predicate.
func match(rec value.Record, filter []fieldFilter) bool {
	for _, f := range filter {
		if f.idx >= len(rec) || !matchValue(rec[f.idx], f.want) {
			return false
		}
	}
	return true
}

// matchValue compares one engine value against a JSON scalar.
func matchValue(v value.Value, want any) bool {
	switch w := want.(type) {
	case bool:
		return v.Kind() == value.KindBool && v.Bool() == w
	case float64:
		switch v.Kind() {
		case value.KindInt:
			return float64(v.Int()) == w
		case value.KindBit:
			return float64(v.Bit()) == w
		}
		return false
	case string:
		return v.Kind() == value.KindString && v.Str() == w
	}
	return false
}

// renderDelta renders a Z-set as wire changes in the deterministic
// Entries() order, keeping only records that pass the filter.
func renderDelta(z *zset.ZSet, filter []fieldFilter) []Change {
	entries := z.Entries()
	out := make([]Change, 0, len(entries))
	for _, e := range entries {
		if filter != nil && !match(e.Rec, filter) {
			continue
		}
		out = append(out, Change{Row: renderRecord(e.Rec), W: e.Weight})
	}
	return out
}

// renderRecord renders a record as a JSON array value.
func renderRecord(r value.Record) []any {
	out := make([]any, len(r))
	for i, v := range r {
		out[i] = renderValue(v)
	}
	return out
}

func renderValue(v value.Value) any {
	switch v.Kind() {
	case value.KindBool:
		return v.Bool()
	case value.KindInt:
		return v.Int()
	case value.KindBit:
		return v.Bit()
	case value.KindString:
		return v.Str()
	case value.KindTuple:
		fields := v.Tuple()
		out := make([]any, len(fields))
		for i, f := range fields {
			out[i] = renderValue(f)
		}
		return out
	}
	return nil
}
