package p4

import (
	"fmt"
	"strconv"
	"strings"
)

// This file implements a parser for a P4-16 subset sufficient for
// Nerpa-style data planes. The subset (see the README's language
// reference):
//
//	header NAME { bit<N> field; ... }          // declares type and instance
//	metadata { bit<N> field; ... }             // user metadata fields
//	digest NAME { bit<N> field; ... }          // digest message layout
//	parser { state NAME { extract(h); transition select(f){...} } ... }
//	control NAME {                              // Ingress / Egress
//	  action a(bit<N> p, ...) { stmt; ... }
//	  table t { key = {...} actions = {...} default_action = a(args); size = N; }
//	  apply { t.apply(); if (cond) {...} else {...} }
//	}
//	deparser { emit(h); ... }
//
// Action statements: field = expr; output(e); multicast(e); clone(e);
// drop(); digest(name, {e, ...}); h.setValid(); h.setInvalid().

// ParseProgram parses P4 subset source into a validated Program.
func ParseProgram(name, src string) (*Program, error) {
	p := &p4Parser{lex: newP4Lexer(src), prog: &Program{Name: name}}
	if err := p.parse(); err != nil {
		return nil, err
	}
	if err := p.prog.Validate(); err != nil {
		return nil, err
	}
	return p.prog, nil
}

// --- lexer ---

type p4Token struct {
	kind string // "ident", "num", "punct", "eof"
	text string
	num  uint64
	line int
}

type p4Lexer struct {
	src  string
	pos  int
	line int
}

func newP4Lexer(src string) *p4Lexer { return &p4Lexer{src: src, line: 1} }

func (lx *p4Lexer) next() (p4Token, error) {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\n':
			lx.line++
			lx.pos++
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '*':
			for lx.pos+1 < len(lx.src) && !(lx.src[lx.pos] == '*' && lx.src[lx.pos+1] == '/') {
				if lx.src[lx.pos] == '\n' {
					lx.line++
				}
				lx.pos++
			}
			lx.pos += 2
		default:
			goto tokenStart
		}
	}
	return p4Token{kind: "eof", line: lx.line}, nil

tokenStart:
	c := lx.src[lx.pos]
	line := lx.line
	if isP4IdentStart(c) {
		start := lx.pos
		for lx.pos < len(lx.src) && isP4IdentCont(lx.src[lx.pos]) {
			lx.pos++
		}
		return p4Token{kind: "ident", text: lx.src[start:lx.pos], line: line}, nil
	}
	if c >= '0' && c <= '9' {
		start := lx.pos
		base := 10
		if c == '0' && lx.pos+1 < len(lx.src) && (lx.src[lx.pos+1] == 'x' || lx.src[lx.pos+1] == 'X') {
			base = 16
			lx.pos += 2
		} else if c == '0' && lx.pos+1 < len(lx.src) && (lx.src[lx.pos+1] == 'b' || lx.src[lx.pos+1] == 'B') {
			base = 2
			lx.pos += 2
		}
		digits := lx.pos
		for lx.pos < len(lx.src) && isP4Digit(lx.src[lx.pos], base) {
			lx.pos++
		}
		text := strings.ReplaceAll(lx.src[digits:lx.pos], "_", "")
		n, err := strconv.ParseUint(text, base, 64)
		if err != nil {
			return p4Token{}, fmt.Errorf("p4: line %d: bad number %q", line, lx.src[start:lx.pos])
		}
		return p4Token{kind: "num", num: n, line: line}, nil
	}
	// Two-character operators.
	if lx.pos+1 < len(lx.src) {
		two := lx.src[lx.pos : lx.pos+2]
		switch two {
		case "==", "!=", "&&", "||":
			lx.pos += 2
			return p4Token{kind: "punct", text: two, line: line}, nil
		}
	}
	lx.pos++
	switch c {
	case '{', '}', '(', ')', '<', '>', ';', ':', ',', '=', '.', '!':
		return p4Token{kind: "punct", text: string(c), line: line}, nil
	}
	return p4Token{}, fmt.Errorf("p4: line %d: unexpected character %q", line, c)
}

func isP4IdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}
func isP4IdentCont(c byte) bool { return isP4IdentStart(c) || c >= '0' && c <= '9' }
func isP4Digit(c byte, base int) bool {
	if c == '_' {
		return true
	}
	switch base {
	case 16:
		return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
	case 2:
		return c == '0' || c == '1'
	default:
		return c >= '0' && c <= '9'
	}
}

// --- parser ---

type p4Parser struct {
	lex    *p4Lexer
	tok    p4Token
	peeked *p4Token
	prog   *Program
}

func (p *p4Parser) advance() error {
	if p.peeked != nil {
		p.tok = *p.peeked
		p.peeked = nil
		return nil
	}
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *p4Parser) peek() (p4Token, error) {
	if p.peeked == nil {
		t, err := p.lex.next()
		if err != nil {
			return p4Token{}, err
		}
		p.peeked = &t
	}
	return *p.peeked, nil
}

func (p *p4Parser) errorf(format string, args ...any) error {
	return fmt.Errorf("p4: line %d: %s", p.tok.line, fmt.Sprintf(format, args...))
}

func (p *p4Parser) expectPunct(s string) error {
	if err := p.advance(); err != nil {
		return err
	}
	if p.tok.kind != "punct" || p.tok.text != s {
		return p.errorf("expected %q, found %q", s, p.tok.text)
	}
	return nil
}

func (p *p4Parser) expectIdent() (string, error) {
	if err := p.advance(); err != nil {
		return "", err
	}
	if p.tok.kind != "ident" {
		return "", p.errorf("expected an identifier, found %q", p.tok.text)
	}
	return p.tok.text, nil
}

func (p *p4Parser) acceptPunct(s string) (bool, error) {
	t, err := p.peek()
	if err != nil {
		return false, err
	}
	if t.kind == "punct" && t.text == s {
		return true, p.advance()
	}
	return false, nil
}

func (p *p4Parser) parse() error {
	for {
		t, err := p.peek()
		if err != nil {
			return err
		}
		if t.kind == "eof" {
			return nil
		}
		kw, err := p.expectIdent()
		if err != nil {
			return err
		}
		switch kw {
		case "header":
			if err := p.parseHeader(); err != nil {
				return err
			}
		case "metadata":
			if err := p.parseMetadata(); err != nil {
				return err
			}
		case "digest":
			if err := p.parseDigest(); err != nil {
				return err
			}
		case "parser":
			if err := p.parseParser(); err != nil {
				return err
			}
		case "control":
			if err := p.parseControl(); err != nil {
				return err
			}
		case "deparser":
			if err := p.parseDeparser(); err != nil {
				return err
			}
		default:
			return p.errorf("unexpected top-level declaration %q", kw)
		}
	}
}

// parseBitType parses bit<N>.
func (p *p4Parser) parseBitType() (int, error) {
	name, err := p.expectIdent()
	if err != nil {
		return 0, err
	}
	if name != "bit" {
		return 0, p.errorf("expected bit<N>, found %q", name)
	}
	if err := p.expectPunct("<"); err != nil {
		return 0, err
	}
	if err := p.advance(); err != nil {
		return 0, err
	}
	if p.tok.kind != "num" || p.tok.num < 1 || p.tok.num > 64 {
		return 0, p.errorf("bad bit width")
	}
	width := int(p.tok.num)
	if err := p.expectPunct(">"); err != nil {
		return 0, err
	}
	return width, nil
}

// parseFieldList parses { bit<N> name; ... }.
func (p *p4Parser) parseFieldList() ([]HeaderField, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var fields []HeaderField
	for {
		if ok, err := p.acceptPunct("}"); err != nil {
			return nil, err
		} else if ok {
			return fields, nil
		}
		bits, err := p.parseBitType()
		if err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		fields = append(fields, HeaderField{Name: name, Bits: bits})
	}
}

func (p *p4Parser) parseHeader() error {
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	fields, err := p.parseFieldList()
	if err != nil {
		return err
	}
	p.prog.Headers = append(p.prog.Headers, &HeaderType{Name: name, Fields: fields})
	return nil
}

func (p *p4Parser) parseMetadata() error {
	fields, err := p.parseFieldList()
	if err != nil {
		return err
	}
	for _, f := range fields {
		p.prog.Metadata = append(p.prog.Metadata, MetaField{Name: f.Name, Bits: f.Bits})
	}
	return nil
}

func (p *p4Parser) parseDigest() error {
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	fields, err := p.parseFieldList()
	if err != nil {
		return err
	}
	d := &Digest{Name: name}
	for _, f := range fields {
		d.Fields = append(d.Fields, DigestField{Name: f.Name, Bits: f.Bits})
	}
	p.prog.Digests = append(p.prog.Digests, d)
	return nil
}

// parseFieldRef parses ident or ident.ident.
func (p *p4Parser) parseFieldRef() (FieldRef, error) {
	a, err := p.expectIdent()
	if err != nil {
		return FieldRef{}, err
	}
	if err := p.expectPunct("."); err != nil {
		return FieldRef{}, err
	}
	b, err := p.expectIdent()
	if err != nil {
		return FieldRef{}, err
	}
	return FieldRef{Header: a, Field: b}, nil
}

func (p *p4Parser) parseParser() error {
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	for {
		if ok, err := p.acceptPunct("}"); err != nil {
			return err
		} else if ok {
			return nil
		}
		kw, err := p.expectIdent()
		if err != nil {
			return err
		}
		if kw != "state" {
			return p.errorf("expected state, found %q", kw)
		}
		st := &ParserState{}
		st.Name, err = p.expectIdent()
		if err != nil {
			return err
		}
		if err := p.expectPunct("{"); err != nil {
			return err
		}
		for {
			if ok, err := p.acceptPunct("}"); err != nil {
				return err
			} else if ok {
				break
			}
			stmt, err := p.expectIdent()
			if err != nil {
				return err
			}
			switch stmt {
			case "extract":
				if err := p.expectPunct("("); err != nil {
					return err
				}
				st.Extract, err = p.expectIdent()
				if err != nil {
					return err
				}
				if err := p.expectPunct(")"); err != nil {
					return err
				}
				if err := p.expectPunct(";"); err != nil {
					return err
				}
			case "transition":
				if err := p.parseTransition(st); err != nil {
					return err
				}
			default:
				return p.errorf("unexpected parser statement %q", stmt)
			}
		}
		p.prog.Parser = append(p.prog.Parser, st)
	}
}

func (p *p4Parser) parseTransition(st *ParserState) error {
	next, err := p.expectIdent()
	if err != nil {
		return err
	}
	if next != "select" {
		st.Next = next
		return p.expectPunct(";")
	}
	if err := p.expectPunct("("); err != nil {
		return err
	}
	field, err := p.parseFieldRef()
	if err != nil {
		return err
	}
	if err := p.expectPunct(")"); err != nil {
		return err
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	sel := &Select{Field: field, Default: "reject"}
	for {
		if ok, err := p.acceptPunct("}"); err != nil {
			return err
		} else if ok {
			break
		}
		if err := p.advance(); err != nil {
			return err
		}
		switch {
		case p.tok.kind == "num":
			c := SelectCase{Value: p.tok.num}
			if err := p.expectPunct(":"); err != nil {
				return err
			}
			c.Next, err = p.expectIdent()
			if err != nil {
				return err
			}
			if err := p.expectPunct(";"); err != nil {
				return err
			}
			sel.Cases = append(sel.Cases, c)
		case p.tok.kind == "ident" && p.tok.text == "default":
			if err := p.expectPunct(":"); err != nil {
				return err
			}
			sel.Default, err = p.expectIdent()
			if err != nil {
				return err
			}
			if err := p.expectPunct(";"); err != nil {
				return err
			}
		default:
			return p.errorf("bad select case %q", p.tok.text)
		}
	}
	st.Select = sel
	return nil
}

func (p *p4Parser) parseDeparser() error {
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	for {
		if ok, err := p.acceptPunct("}"); err != nil {
			return err
		} else if ok {
			return nil
		}
		kw, err := p.expectIdent()
		if err != nil {
			return err
		}
		if kw != "emit" {
			return p.errorf("expected emit, found %q", kw)
		}
		if err := p.expectPunct("("); err != nil {
			return err
		}
		h, err := p.expectIdent()
		if err != nil {
			return err
		}
		if err := p.expectPunct(")"); err != nil {
			return err
		}
		if err := p.expectPunct(";"); err != nil {
			return err
		}
		p.prog.Deparser = append(p.prog.Deparser, h)
	}
}

// --- control blocks ---

func (p *p4Parser) parseControl() error {
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	ctl := &Control{Name: name}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	for {
		if ok, err := p.acceptPunct("}"); err != nil {
			return err
		} else if ok {
			break
		}
		kw, err := p.expectIdent()
		if err != nil {
			return err
		}
		switch kw {
		case "action":
			if err := p.parseAction(); err != nil {
				return err
			}
		case "table":
			if err := p.parseTable(); err != nil {
				return err
			}
		case "apply":
			body, err := p.parseControlBlock()
			if err != nil {
				return err
			}
			ctl.Apply = body
		default:
			return p.errorf("unexpected control member %q", kw)
		}
	}
	switch strings.ToLower(name) {
	case "ingress":
		p.prog.Ingress = ctl
	case "egress":
		p.prog.Egress = ctl
	default:
		return fmt.Errorf("p4: control %q must be Ingress or Egress", name)
	}
	return nil
}

// actionCtx resolves parameter names while parsing an action body.
type actionCtx struct {
	params []ActionParam
}

func (ac *actionCtx) paramIndex(name string) int {
	for i, p := range ac.params {
		if p.Name == name {
			return i
		}
	}
	return -1
}

func (p *p4Parser) parseAction() error {
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	act := &Action{Name: name}
	ctx := &actionCtx{}
	if err := p.expectPunct("("); err != nil {
		return err
	}
	for {
		if ok, err := p.acceptPunct(")"); err != nil {
			return err
		} else if ok {
			break
		}
		if len(act.Params) > 0 {
			if err := p.expectPunct(","); err != nil {
				return err
			}
		}
		bits, err := p.parseBitType()
		if err != nil {
			return err
		}
		pname, err := p.expectIdent()
		if err != nil {
			return err
		}
		act.Params = append(act.Params, ActionParam{Name: pname, Bits: bits})
	}
	ctx.params = act.Params
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	for {
		if ok, err := p.acceptPunct("}"); err != nil {
			return err
		} else if ok {
			break
		}
		stmt, err := p.parseActionStmt(ctx)
		if err != nil {
			return err
		}
		act.Body = append(act.Body, stmt)
	}
	p.prog.Actions = append(p.prog.Actions, act)
	return nil
}

// parseExpr parses a constant, parameter reference, or field reference.
func (p *p4Parser) parseExpr(ctx *actionCtx) (Expr, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.tok.kind == "num" {
		return &ConstExpr{Value: p.tok.num}, nil
	}
	if p.tok.kind != "ident" {
		return nil, p.errorf("expected an expression, found %q", p.tok.text)
	}
	first := p.tok.text
	if dot, err := p.acceptPunct("."); err != nil {
		return nil, err
	} else if dot {
		f, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &FieldExpr{Ref: FieldRef{Header: first, Field: f}}, nil
	}
	if ctx != nil {
		if idx := ctx.paramIndex(first); idx >= 0 {
			return &ParamExpr{Index: idx}, nil
		}
	}
	return nil, p.errorf("unknown identifier %q in expression", first)
}

func (p *p4Parser) parseActionStmt(ctx *actionCtx) (Stmt, error) {
	first, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	switch first {
	case "output", "multicast", "clone":
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		e, err := p.parseExpr(ctx)
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		switch first {
		case "output":
			return &Output{Port: e}, nil
		case "multicast":
			return &Multicast{Group: e}, nil
		default:
			return &Clone{Port: e}, nil
		}
	case "drop":
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &Drop{}, nil
	case "digest":
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		if err := p.expectPunct("{"); err != nil {
			return nil, err
		}
		d := &EmitDigest{Digest: name}
		for {
			if ok, err := p.acceptPunct("}"); err != nil {
				return nil, err
			} else if ok {
				break
			}
			if len(d.Fields) > 0 {
				if err := p.expectPunct(","); err != nil {
					return nil, err
				}
			}
			e, err := p.parseExpr(ctx)
			if err != nil {
				return nil, err
			}
			d.Fields = append(d.Fields, e)
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return d, nil
	}
	// field assignment or header method: first is a header/meta name.
	if err := p.expectPunct("."); err != nil {
		return nil, err
	}
	second, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	switch second {
	case "setValid", "setInvalid":
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &SetValid{Header: first, Valid: second == "setValid"}, nil
	default:
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr(ctx)
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &SetField{Ref: FieldRef{Header: first, Field: second}, Expr: e}, nil
	}
}

func (p *p4Parser) parseTable() error {
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	t := &Table{Name: name}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	for {
		if ok, err := p.acceptPunct("}"); err != nil {
			return err
		} else if ok {
			break
		}
		prop, err := p.expectIdent()
		if err != nil {
			return err
		}
		if err := p.expectPunct("="); err != nil {
			return err
		}
		switch prop {
		case "key":
			if err := p.expectPunct("{"); err != nil {
				return err
			}
			for {
				if ok, err := p.acceptPunct("}"); err != nil {
					return err
				} else if ok {
					break
				}
				ref, err := p.parseFieldRef()
				if err != nil {
					return err
				}
				if err := p.expectPunct(":"); err != nil {
					return err
				}
				kindName, err := p.expectIdent()
				if err != nil {
					return err
				}
				var kind MatchKind
				switch kindName {
				case "exact":
					kind = MatchExact
				case "lpm":
					kind = MatchLPM
				case "ternary":
					kind = MatchTernary
				case "optional":
					kind = MatchOptional
				default:
					return p.errorf("unknown match kind %q", kindName)
				}
				if err := p.expectPunct(";"); err != nil {
					return err
				}
				t.Keys = append(t.Keys, TableKey{Ref: ref, Match: kind})
			}
		case "actions":
			if err := p.expectPunct("{"); err != nil {
				return err
			}
			for {
				if ok, err := p.acceptPunct("}"); err != nil {
					return err
				} else if ok {
					break
				}
				a, err := p.expectIdent()
				if err != nil {
					return err
				}
				if err := p.expectPunct(";"); err != nil {
					return err
				}
				t.Actions = append(t.Actions, a)
			}
		case "default_action":
			a, err := p.expectIdent()
			if err != nil {
				return err
			}
			call := ActionCall{Action: a}
			if open, err := p.acceptPunct("("); err != nil {
				return err
			} else if open {
				for {
					if ok, err := p.acceptPunct(")"); err != nil {
						return err
					} else if ok {
						break
					}
					if len(call.Params) > 0 {
						if err := p.expectPunct(","); err != nil {
							return err
						}
					}
					if err := p.advance(); err != nil {
						return err
					}
					if p.tok.kind != "num" {
						return p.errorf("default_action arguments must be literals")
					}
					call.Params = append(call.Params, p.tok.num)
				}
			}
			if err := p.expectPunct(";"); err != nil {
				return err
			}
			t.DefaultAction = call
		case "size":
			if err := p.advance(); err != nil {
				return err
			}
			if p.tok.kind != "num" {
				return p.errorf("size must be a literal")
			}
			t.Size = int(p.tok.num)
			if err := p.expectPunct(";"); err != nil {
				return err
			}
		default:
			return p.errorf("unknown table property %q", prop)
		}
	}
	p.prog.Tables = append(p.prog.Tables, t)
	return nil
}

// parseControlBlock parses { stmt; ... } in an apply section.
func (p *p4Parser) parseControlBlock() ([]ControlStmt, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var out []ControlStmt
	for {
		if ok, err := p.acceptPunct("}"); err != nil {
			return nil, err
		} else if ok {
			return out, nil
		}
		stmt, err := p.parseControlStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, stmt)
	}
}

func (p *p4Parser) parseControlStmt() (ControlStmt, error) {
	first, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if first == "if" {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		node := &If{Cond: cond}
		node.Then, err = p.parseControlBlock()
		if err != nil {
			return nil, err
		}
		if t, err := p.peek(); err != nil {
			return nil, err
		} else if t.kind == "ident" && t.text == "else" {
			if err := p.advance(); err != nil {
				return nil, err
			}
			node.Else, err = p.parseControlBlock()
			if err != nil {
				return nil, err
			}
		}
		return node, nil
	}
	// table.apply();
	if err := p.expectPunct("."); err != nil {
		return nil, err
	}
	m, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if m != "apply" {
		return nil, p.errorf("expected apply, found %q", m)
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return &ApplyTable{Table: first}, nil
}

// parseCond parses a condition: comparisons, h.isValid(), !cond, &&, ||.
func (p *p4Parser) parseCond() (BoolExpr, error) {
	l, err := p.parseCondAtom()
	if err != nil {
		return nil, err
	}
	for {
		t, err := p.peek()
		if err != nil {
			return nil, err
		}
		if t.kind == "punct" && (t.text == "&&" || t.text == "||") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			op := "and"
			if t.text == "||" {
				op = "or"
			}
			r, err := p.parseCondAtom()
			if err != nil {
				return nil, err
			}
			l = &BoolOp{Op: op, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *p4Parser) parseCondAtom() (BoolExpr, error) {
	if ok, err := p.acceptPunct("!"); err != nil {
		return nil, err
	} else if ok {
		inner, err := p.parseCondAtom()
		if err != nil {
			return nil, err
		}
		return &BoolOp{Op: "not", L: inner}, nil
	}
	if ok, err := p.acceptPunct("("); err != nil {
		return nil, err
	} else if ok {
		inner, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	// field == expr | field != expr | header.isValid()
	l, err := p.parseExpr(nil)
	if err != nil {
		return nil, err
	}
	if fe, ok := l.(*FieldExpr); ok && fe.Ref.Field == "isValid" {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &IsValid{Header: fe.Ref.Header}, nil
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.tok.kind != "punct" || p.tok.text != "==" && p.tok.text != "!=" {
		return nil, p.errorf("expected a comparison, found %q", p.tok.text)
	}
	op := p.tok.text
	r, err := p.parseExpr(nil)
	if err != nil {
		return nil, err
	}
	return &Compare{Op: op, L: l, R: r}, nil
}
