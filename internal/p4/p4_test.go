package p4

import (
	"strings"
	"testing"

	"repro/internal/packet"
)

// testProgram builds a small L2/L3 pipeline exercising every IR feature:
// Ethernet/VLAN parsing, exact and LPM and ternary tables, digests,
// multicast flooding, VLAN push/pop.
func testProgram() *Program {
	return &Program{
		Name: "test_switch",
		Headers: []*HeaderType{
			{Name: "ethernet", Fields: []HeaderField{
				{Name: "dst", Bits: 48}, {Name: "src", Bits: 48}, {Name: "etype", Bits: 16},
			}},
			{Name: "vlan", Fields: []HeaderField{
				{Name: "pcp", Bits: 3}, {Name: "dei", Bits: 1},
				{Name: "vid", Bits: 12}, {Name: "etype", Bits: 16},
			}},
			{Name: "ipv4", Fields: []HeaderField{
				{Name: "version", Bits: 4}, {Name: "ihl", Bits: 4}, {Name: "tos", Bits: 8},
				{Name: "len", Bits: 16}, {Name: "id", Bits: 16}, {Name: "flags", Bits: 3},
				{Name: "frag", Bits: 13}, {Name: "ttl", Bits: 8}, {Name: "proto", Bits: 8},
				{Name: "csum", Bits: 16}, {Name: "src", Bits: 32}, {Name: "dst", Bits: 32},
			}},
		},
		Metadata: []MetaField{{Name: "vlan_id", Bits: 12}},
		Parser: []*ParserState{
			{Name: "start", Extract: "ethernet", Select: &Select{
				Field: FieldRef{"ethernet", "etype"},
				Cases: []SelectCase{
					{Value: 0x8100, Next: "parse_vlan"},
					{Value: 0x0800, Next: "parse_ipv4"},
				},
				Default: "accept",
			}},
			{Name: "parse_vlan", Extract: "vlan", Select: &Select{
				Field:   FieldRef{"vlan", "etype"},
				Cases:   []SelectCase{{Value: 0x0800, Next: "parse_ipv4"}},
				Default: "accept",
			}},
			{Name: "parse_ipv4", Extract: "ipv4", Next: "accept"},
		},
		Actions: []*Action{
			{Name: "set_vlan", Params: []ActionParam{{Name: "vid", Bits: 12}}, Body: []Stmt{
				&SetField{Ref: FieldRef{MetaHeader, "vlan_id"}, Expr: &ParamExpr{Index: 0}},
			}},
			{Name: "use_tag_vlan", Body: []Stmt{
				&SetField{Ref: FieldRef{MetaHeader, "vlan_id"}, Expr: &FieldExpr{Ref: FieldRef{"vlan", "vid"}}},
			}},
			{Name: "forward", Params: []ActionParam{{Name: "port", Bits: 9}}, Body: []Stmt{
				&Output{Port: &ParamExpr{Index: 0}},
			}},
			{Name: "flood", Params: []ActionParam{{Name: "grp", Bits: 16}}, Body: []Stmt{
				&Multicast{Group: &ParamExpr{Index: 0}},
			}},
			{Name: "learn", Body: []Stmt{
				&EmitDigest{Digest: "mac_learn", Fields: []Expr{
					&FieldExpr{Ref: FieldRef{"ethernet", "src"}},
					&FieldExpr{Ref: FieldRef{MetaHeader, "vlan_id"}},
					&FieldExpr{Ref: FieldRef{StdMetaHeader, FieldIngress}},
				}},
			}},
			{Name: "drop_pkt", Body: []Stmt{&Drop{}}},
			{Name: "pop_vlan", Body: []Stmt{
				&SetField{Ref: FieldRef{"ethernet", "etype"}, Expr: &FieldExpr{Ref: FieldRef{"vlan", "etype"}}},
				&SetValid{Header: "vlan", Valid: false},
			}},
			{Name: "route", Params: []ActionParam{{Name: "port", Bits: 9}}, Body: []Stmt{
				&Output{Port: &ParamExpr{Index: 0}},
			}},
			{Name: "acl_drop", Body: []Stmt{&Drop{}}},
			{Name: "nop", Body: nil},
		},
		Tables: []*Table{
			{Name: "vlan_assign",
				Keys:          []TableKey{{Ref: FieldRef{StdMetaHeader, FieldIngress}, Match: MatchExact}},
				Actions:       []string{"set_vlan", "use_tag_vlan"},
				DefaultAction: ActionCall{Action: "set_vlan", Params: []uint64{1}},
			},
			{Name: "learned_src",
				Keys: []TableKey{
					{Ref: FieldRef{MetaHeader, "vlan_id"}, Match: MatchExact},
					{Ref: FieldRef{"ethernet", "src"}, Match: MatchExact},
				},
				Actions:       []string{"nop", "learn"},
				DefaultAction: ActionCall{Action: "learn"},
			},
			{Name: "fwd",
				Keys: []TableKey{
					{Ref: FieldRef{MetaHeader, "vlan_id"}, Match: MatchExact},
					{Ref: FieldRef{"ethernet", "dst"}, Match: MatchExact},
				},
				Actions:       []string{"forward", "flood"},
				DefaultAction: ActionCall{Action: "flood", Params: []uint64{1}},
			},
			{Name: "routes",
				Keys:    []TableKey{{Ref: FieldRef{"ipv4", "dst"}, Match: MatchLPM}},
				Actions: []string{"route", "drop_pkt"},
			},
			{Name: "acl",
				Keys: []TableKey{
					{Ref: FieldRef{"ipv4", "src"}, Match: MatchTernary},
					{Ref: FieldRef{"ipv4", "proto"}, Match: MatchOptional},
				},
				Actions: []string{"acl_drop", "nop"},
			},
		},
		Digests: []*Digest{
			{Name: "mac_learn", Fields: []DigestField{
				{Name: "mac", Bits: 48}, {Name: "vlan", Bits: 12}, {Name: "port", Bits: 9},
			}},
		},
		Ingress: &Control{Name: "ingress", Apply: []ControlStmt{
			&If{
				Cond: &IsValid{Header: "vlan"},
				Then: []ControlStmt{&ApplyTable{Table: "vlan_assign"}},
				Else: []ControlStmt{&ApplyTable{Table: "vlan_assign"}},
			},
			&ApplyTable{Table: "learned_src"},
			&If{
				Cond: &IsValid{Header: "ipv4"},
				// The ACL applies after routing: in BMv2-style semantics a
				// later Output overrides an earlier drop, so deny rules
				// must come last.
				Then: []ControlStmt{&ApplyTable{Table: "routes"}, &ApplyTable{Table: "acl"}},
				Else: []ControlStmt{&ApplyTable{Table: "fwd"}},
			},
		}},
		Deparser: []string{"ethernet", "vlan", "ipv4"},
	}
}

func newTestRuntime(t *testing.T) *Runtime {
	t.Helper()
	rt, err := NewRuntime(testProgram())
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	return rt
}

func ethFrame(dst, src packet.MAC, etype uint16, payload []byte) []byte {
	e := packet.Ethernet{Dst: dst, Src: src, EtherType: etype}
	return append(e.Append(nil), payload...)
}

func TestValidateOK(t *testing.T) {
	if err := testProgram().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := map[string]func(p *Program){
		"unaligned header": func(p *Program) {
			p.Headers[0].Fields[0].Bits = 47
		},
		"unknown extract": func(p *Program) {
			p.Parser[0].Extract = "nope"
		},
		"unknown transition": func(p *Program) {
			p.Parser[2].Next = "nowhere"
		},
		"table unknown action": func(p *Program) {
			p.Tables[0].Actions = []string{"nope"}
		},
		"table no keys": func(p *Program) {
			p.Tables[0].Keys = nil
		},
		"bad digest ref": func(p *Program) {
			p.Actions[4].Body = []Stmt{&EmitDigest{Digest: "nope"}}
		},
		"bad param index": func(p *Program) {
			p.Actions[0].Body = []Stmt{&SetField{
				Ref: FieldRef{MetaHeader, "vlan_id"}, Expr: &ParamExpr{Index: 5}}}
		},
		"unknown control table": func(p *Program) {
			p.Ingress.Apply = []ControlStmt{&ApplyTable{Table: "nope"}}
		},
	}
	for name, mutate := range cases {
		p := testProgram()
		mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate succeeded", name)
		}
	}
}

func TestUntaggedPacketFloodsByDefault(t *testing.T) {
	rt := newTestRuntime(t)
	rt.SetMulticastGroup(1, []uint16{1, 2, 3})
	frame := ethFrame(0xffffffffffff, 0x0000000000aa, 0x1234, []byte("hi"))
	res, err := rt.Process(2, frame)
	if err != nil {
		t.Fatalf("Process: %v", err)
	}
	if res.Dropped || len(res.Outputs) != 2 {
		t.Fatalf("flood outputs = %+v", res)
	}
	for _, out := range res.Outputs {
		if out.Port == 2 {
			t.Errorf("flooded back to ingress port")
		}
		if string(out.Data) != string(frame) {
			t.Errorf("flooded frame mutated")
		}
	}
	// Digest for the unknown source MAC with the default VLAN.
	if len(res.Digests) != 1 || res.Digests[0].Digest != "mac_learn" {
		t.Fatalf("digests = %+v", res.Digests)
	}
	d := res.Digests[0]
	if d.Fields[0] != 0xaa || d.Fields[1] != 1 || d.Fields[2] != 2 {
		t.Fatalf("digest fields = %v", d.Fields)
	}
}

func TestExactForwarding(t *testing.T) {
	rt := newTestRuntime(t)
	// Learned: no digest for known macs.
	if err := rt.InsertEntry("learned_src", Entry{
		Matches: []FieldMatch{{Value: 1}, {Value: 0xaa}},
		Action:  "nop",
	}); err != nil {
		t.Fatal(err)
	}
	if err := rt.InsertEntry("fwd", Entry{
		Matches: []FieldMatch{{Value: 1}, {Value: 0xbb}},
		Action:  "forward", Params: []uint64{7},
	}); err != nil {
		t.Fatal(err)
	}
	frame := ethFrame(0xbb, 0xaa, 0x1234, nil)
	res, err := rt.Process(2, frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 1 || res.Outputs[0].Port != 7 {
		t.Fatalf("outputs = %+v", res.Outputs)
	}
	if len(res.Digests) != 0 {
		t.Fatalf("unexpected digest: %+v", res.Digests)
	}
}

func TestVLANTaggedPath(t *testing.T) {
	rt := newTestRuntime(t)
	if err := rt.InsertEntry("vlan_assign", Entry{
		Matches: []FieldMatch{{Value: 5}},
		Action:  "use_tag_vlan",
	}); err != nil {
		t.Fatal(err)
	}
	if err := rt.InsertEntry("fwd", Entry{
		Matches: []FieldMatch{{Value: 42}, {Value: 0xbb}},
		Action:  "forward", Params: []uint64{9},
	}); err != nil {
		t.Fatal(err)
	}
	eth := packet.Ethernet{Dst: 0xbb, Src: 0xaa, EtherType: packet.EtherTypeVLAN}
	vlan := packet.VLAN{VID: 42, EtherType: 0x1234}
	frame := vlan.Append(eth.Append(nil))
	res, err := rt.Process(5, frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 1 || res.Outputs[0].Port != 9 {
		t.Fatalf("outputs = %+v", res.Outputs)
	}
	// The tag is preserved on output (no pop action configured).
	var gotEth packet.Ethernet
	rest, err := gotEth.Decode(res.Outputs[0].Data)
	if err != nil || gotEth.EtherType != packet.EtherTypeVLAN {
		t.Fatalf("output frame: %+v, %v", gotEth, err)
	}
	var gotVlan packet.VLAN
	if _, err := gotVlan.Decode(rest); err != nil || gotVlan.VID != 42 {
		t.Fatalf("output vlan: %+v, %v", gotVlan, err)
	}
}

func TestLPMLongestPrefixWins(t *testing.T) {
	rt := newTestRuntime(t)
	ip1, _ := packet.ParseIPv4("10.0.0.0")
	ip2, _ := packet.ParseIPv4("10.0.1.0")
	if err := rt.InsertEntry("routes", Entry{
		Matches: []FieldMatch{{Value: uint64(ip1), PrefixLen: 8}},
		Action:  "route", Params: []uint64{1},
	}); err != nil {
		t.Fatal(err)
	}
	if err := rt.InsertEntry("routes", Entry{
		Matches: []FieldMatch{{Value: uint64(ip2), PrefixLen: 24}},
		Action:  "route", Params: []uint64{2},
	}); err != nil {
		t.Fatal(err)
	}
	mk := func(dst string) []byte {
		d, _ := packet.ParseIPv4(dst)
		ip := packet.IP{TTL: 64, Protocol: packet.ProtoUDP, Src: 0x0a000001, Dst: d}
		return append(ethFrame(0xbb, 0xaa, packet.EtherTypeIPv4, nil), ip.Append(nil, 0)...)
	}
	res, _ := rt.Process(3, mk("10.0.1.9"))
	if len(res.Outputs) != 1 || res.Outputs[0].Port != 2 {
		t.Fatalf("/24 not preferred: %+v", res.Outputs)
	}
	res, _ = rt.Process(3, mk("10.9.9.9"))
	if len(res.Outputs) != 1 || res.Outputs[0].Port != 1 {
		t.Fatalf("/8 fallback failed: %+v", res.Outputs)
	}
	res, _ = rt.Process(3, mk("192.168.0.1"))
	if !res.Dropped {
		t.Fatalf("no-route packet not dropped: %+v", res)
	}
}

func TestTernaryPriorityAndOptional(t *testing.T) {
	rt := newTestRuntime(t)
	srcNet, _ := packet.ParseIPv4("10.0.0.0")
	// Low priority: drop everything from 10/8.
	if err := rt.InsertEntry("acl", Entry{
		Matches:  []FieldMatch{{Value: uint64(srcNet), Mask: 0xff000000}, {Wildcard: true}},
		Priority: 1,
		Action:   "acl_drop",
	}); err != nil {
		t.Fatal(err)
	}
	// Higher priority: allow UDP from 10/8.
	if err := rt.InsertEntry("acl", Entry{
		Matches:  []FieldMatch{{Value: uint64(srcNet), Mask: 0xff000000}, {Value: uint64(packet.ProtoUDP)}},
		Priority: 10,
		Action:   "nop",
	}); err != nil {
		t.Fatal(err)
	}
	routeDst, _ := packet.ParseIPv4("0.0.0.0")
	if err := rt.InsertEntry("routes", Entry{
		Matches: []FieldMatch{{Value: uint64(routeDst), PrefixLen: 0}},
		Action:  "route", Params: []uint64{4},
	}); err != nil {
		t.Fatal(err)
	}
	mk := func(proto byte) []byte {
		src, _ := packet.ParseIPv4("10.1.1.1")
		dst, _ := packet.ParseIPv4("20.0.0.1")
		ip := packet.IP{TTL: 64, Protocol: proto, Src: src, Dst: dst}
		return append(ethFrame(0xbb, 0xaa, packet.EtherTypeIPv4, nil), ip.Append(nil, 0)...)
	}
	res, _ := rt.Process(3, mk(packet.ProtoUDP))
	if res.Dropped || len(res.Outputs) != 1 {
		t.Fatalf("UDP exemption failed: %+v", res)
	}
	res, _ = rt.Process(3, mk(packet.ProtoTCP))
	if !res.Dropped {
		t.Fatalf("TCP from 10/8 not dropped: %+v", res)
	}
}

func TestVLANPopRewritesFrame(t *testing.T) {
	prog := testProgram()
	// Route all IPv4 out port 1 after popping the VLAN tag.
	prog.Ingress.Apply = []ControlStmt{
		&If{Cond: &IsValid{Header: "vlan"}, Then: []ControlStmt{&ApplyTable{Table: "pop"}}},
		&ApplyTable{Table: "fwd"},
	}
	prog.Tables = append(prog.Tables, &Table{
		Name:          "pop",
		Keys:          []TableKey{{Ref: FieldRef{"vlan", "vid"}, Match: MatchExact}},
		Actions:       []string{"pop_vlan", "nop"},
		DefaultAction: ActionCall{Action: "nop"},
	})
	rt, err := NewRuntime(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.InsertEntry("pop", Entry{
		Matches: []FieldMatch{{Value: 7}}, Action: "pop_vlan",
	}); err != nil {
		t.Fatal(err)
	}
	if err := rt.InsertEntry("fwd", Entry{
		Matches: []FieldMatch{{Value: 0}, {Value: 0xbb}},
		Action:  "forward", Params: []uint64{1},
	}); err != nil {
		t.Fatal(err)
	}
	eth := packet.Ethernet{Dst: 0xbb, Src: 0xaa, EtherType: packet.EtherTypeVLAN}
	vlan := packet.VLAN{VID: 7, EtherType: 0x1234}
	frame := append(vlan.Append(eth.Append(nil)), 0xde, 0xad)
	res, err := rt.Process(2, frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 1 {
		t.Fatalf("outputs = %+v", res)
	}
	var gotEth packet.Ethernet
	rest, err := gotEth.Decode(res.Outputs[0].Data)
	if err != nil {
		t.Fatal(err)
	}
	if gotEth.EtherType != 0x1234 {
		t.Fatalf("etype after pop = %#x", gotEth.EtherType)
	}
	if len(rest) != 2 || rest[0] != 0xde {
		t.Fatalf("payload after pop = %v", rest)
	}
}

func TestEntryLifecycleAndErrors(t *testing.T) {
	rt := newTestRuntime(t)
	e := Entry{Matches: []FieldMatch{{Value: 1}, {Value: 0xcc}}, Action: "forward", Params: []uint64{3}}
	if err := rt.InsertEntry("fwd", e); err != nil {
		t.Fatal(err)
	}
	if rt.EntryCount("fwd") != 1 {
		t.Fatalf("EntryCount = %d", rt.EntryCount("fwd"))
	}
	// Replacement with same matches.
	e.Params = []uint64{4}
	if err := rt.InsertEntry("fwd", e); err != nil {
		t.Fatal(err)
	}
	entries, _ := rt.Entries("fwd")
	if len(entries) != 1 || entries[0].Params[0] != 4 {
		t.Fatalf("entries = %+v", entries)
	}
	if err := rt.DeleteEntry("fwd", e.Matches); err != nil {
		t.Fatal(err)
	}
	if err := rt.DeleteEntry("fwd", e.Matches); err == nil {
		t.Fatalf("double delete succeeded")
	}
	bad := []struct {
		name  string
		table string
		e     Entry
	}{
		{"unknown table", "nope", e},
		{"wrong arity", "fwd", Entry{Matches: []FieldMatch{{Value: 1}}, Action: "forward", Params: []uint64{1}}},
		{"overflow key", "fwd", Entry{Matches: []FieldMatch{{Value: 1 << 13}, {Value: 1}}, Action: "forward", Params: []uint64{1}}},
		{"bad action", "fwd", Entry{Matches: []FieldMatch{{Value: 1}, {Value: 2}}, Action: "route", Params: []uint64{1}}},
		{"bad params", "fwd", Entry{Matches: []FieldMatch{{Value: 1}, {Value: 2}}, Action: "forward"}},
		{"param overflow", "fwd", Entry{Matches: []FieldMatch{{Value: 1}, {Value: 2}}, Action: "forward", Params: []uint64{1 << 10}}},
	}
	for _, c := range bad {
		if err := rt.InsertEntry(c.table, c.e); err == nil {
			t.Errorf("%s: insert succeeded", c.name)
		}
	}
}

func TestParserRejectsTruncated(t *testing.T) {
	rt := newTestRuntime(t)
	res, err := rt.Process(1, []byte{1, 2, 3})
	if err != nil || !res.Dropped {
		t.Fatalf("truncated packet result = %+v, %v", res, err)
	}
}

func TestP4InfoAndEntryCheck(t *testing.T) {
	info, err := BuildP4Info(testProgram())
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Tables) != 5 || len(info.Actions) != 10 || len(info.Digests) != 1 {
		t.Fatalf("info shape: %d tables, %d actions, %d digests",
			len(info.Tables), len(info.Actions), len(info.Digests))
	}
	fwd := info.Table("fwd")
	if fwd == nil || len(fwd.MatchFields) != 2 || fwd.MatchFields[1].Bits != 48 {
		t.Fatalf("fwd info = %+v", fwd)
	}
	if fwd.MatchFields[0].Match != "exact" {
		t.Fatalf("match kind = %s", fwd.MatchFields[0].Match)
	}
	ok := Entry{Matches: []FieldMatch{{Value: 1}, {Value: 2}}, Action: "forward", Params: []uint64{1}}
	if err := CheckEntryAgainstInfo(info, "fwd", &ok); err != nil {
		t.Fatalf("CheckEntryAgainstInfo(ok) = %v", err)
	}
	badAction := ok
	badAction.Action = "route"
	if err := CheckEntryAgainstInfo(info, "fwd", &badAction); err == nil ||
		!strings.Contains(err.Error(), "does not allow") {
		t.Fatalf("bad action accepted: %v", err)
	}
	// IDs are deterministic.
	info2, _ := BuildP4Info(testProgram())
	if info2.Table("fwd").ID != fwd.ID {
		t.Fatalf("table IDs not stable")
	}
}

func TestBitReaderWriter(t *testing.T) {
	w := &bitWriter{}
	w.write(0b101, 3)
	w.write(1, 1)
	w.write(0xabc, 12)
	w.write(0xffff, 16)
	r := &bitReader{data: w.data}
	if v, ok := r.read(3); !ok || v != 0b101 {
		t.Fatalf("read 3 = %v", v)
	}
	if v, ok := r.read(1); !ok || v != 1 {
		t.Fatalf("read 1 = %v", v)
	}
	if v, ok := r.read(12); !ok || v != 0xabc {
		t.Fatalf("read 12 = %#x", v)
	}
	if v, ok := r.read(16); !ok || v != 0xffff {
		t.Fatalf("read 16 = %#x", v)
	}
	if _, ok := r.read(1); ok {
		t.Fatalf("read past end succeeded")
	}
}
