package p4

import "testing"

func TestParseControlConditions(t *testing.T) {
	prog, err := ParseProgram("c", `
		header h { bit<8> f; }
		metadata { bit<4> m; }
		parser { state start { extract(h); transition accept; } }
		control Ingress {
			action a() { }
			table t {
				key = { h.f: exact; }
				actions = { a; }
			}
			apply {
				if (h.f == 1 || meta.m != 0) { t.apply(); } else { t.apply(); }
				if (!(h.isValid())) { t.apply(); }
			}
		}
		deparser { emit(h); }
	`)
	if err != nil {
		t.Fatal(err)
	}
	iff := prog.Ingress.Apply[0].(*If)
	or, ok := iff.Cond.(*BoolOp)
	if !ok || or.Op != "or" {
		t.Fatalf("cond = %+v", iff.Cond)
	}
	if len(iff.Else) != 1 {
		t.Fatalf("else branch missing")
	}
	neg := prog.Ingress.Apply[1].(*If).Cond.(*BoolOp)
	if neg.Op != "not" {
		t.Fatalf("negated cond = %+v", neg)
	}
}

func TestParseSelectDefaultsToReject(t *testing.T) {
	prog, err := ParseProgram("r", `
		header h { bit<16> f; }
		parser {
			state start {
				extract(h);
				transition select(h.f) { 1: accept; }
			}
		}
		control Ingress { apply { } }
		deparser { emit(h); }
	`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Parser[0].Select.Default != "reject" {
		t.Fatalf("default = %q, want reject", prog.Parser[0].Select.Default)
	}
	// A rejected packet is dropped.
	rt, err := NewRuntime(prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Process(1, []byte{0, 2})
	if err != nil || !res.Dropped {
		t.Fatalf("rejected packet: %+v, %v", res, err)
	}
}

func TestParseMoreErrors(t *testing.T) {
	bad := map[string]string{
		"select non-ident case": `header h { bit<8> f; } parser { state start { extract(h); transition select(h.f) { {}: accept; } } } control Ingress { apply { } } deparser { }`,
		"deparser non-emit":     `header h { bit<8> f; } parser { state start { transition accept; } } control Ingress { apply { } } deparser { drop(h); }`,
		"bad field ref":         `header h { bit<8> f; } parser { state start { transition select(h) { } } } control Ingress { apply { } } deparser { }`,
		"table missing eq":      `header h { bit<8> f; } parser { state start { transition accept; } } control Ingress { action a() {} table t { key { h.f: exact; } actions = { a; } } apply { } } deparser { }`,
		"apply non-method":      `header h { bit<8> f; } parser { state start { transition accept; } } control Ingress { action a() {} table t { key = { h.f: exact; } actions = { a; } } apply { t.frob(); } } deparser { }`,
		"digest bad braces":     `header h { bit<8> f; } digest d { bit<8> x; } parser { state start { transition accept; } } control Ingress { action a() { digest(d, h.f); } apply { } } deparser { }`,
		"unknown expr ident":    `header h { bit<8> f; } parser { state start { transition accept; } } control Ingress { action a() { output(zzz); } apply { } } deparser { }`,
		"default action expr":   `header h { bit<8> f; } parser { state start { transition accept; } } control Ingress { action a(bit<8> v) { h.f = v; } table t { key = { h.f: exact; } actions = { a; } default_action = a(h); } apply { } } deparser { }`,
	}
	for name, src := range bad {
		if _, err := ParseProgram("bad", src); err == nil {
			t.Errorf("%s: parse succeeded", name)
		}
	}
}

func TestRuntimeAccessors(t *testing.T) {
	prog, err := ParseProgram("acc", miniP4)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(prog)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Program() != prog {
		t.Errorf("Program() mismatch")
	}
	e := Entry{Matches: []FieldMatch{{Value: 5}, {Mask: 0xff, Value: 1}},
		Action: "fwd", Params: []uint64{2}, Priority: 3}
	if err := rt.InsertEntry("t", e); err != nil {
		t.Fatal(err)
	}
	got, ok := rt.GetEntry("t", e.Matches)
	if !ok || got.Action != "fwd" || got.Priority != 3 {
		t.Fatalf("GetEntry = %+v, %v", got, ok)
	}
	if _, ok := rt.GetEntry("t", []FieldMatch{{Value: 99}, {}}); ok {
		t.Errorf("GetEntry found a missing entry")
	}
	if _, ok := rt.GetEntry("nope", e.Matches); ok {
		t.Errorf("GetEntry on unknown table succeeded")
	}
	info, err := BuildP4Info(prog)
	if err != nil {
		t.Fatal(err)
	}
	if info.Digest("seen") == nil || info.Digest("nope") != nil {
		t.Errorf("Digest lookup wrong")
	}
}

func TestMaskedSelectCase(t *testing.T) {
	// The IR supports masked select cases (built programmatically).
	prog := &Program{
		Name:    "m",
		Headers: []*HeaderType{{Name: "h", Fields: []HeaderField{{Name: "f", Bits: 8}}}},
		Parser: []*ParserState{
			{Name: "start", Extract: "h", Select: &Select{
				Field:   FieldRef{"h", "f"},
				Cases:   []SelectCase{{Value: 0x80, Mask: 0x80, Next: "accept"}},
				Default: "reject",
			}},
		},
		Actions: []*Action{{Name: "out", Body: []Stmt{&Output{Port: &ConstExpr{Value: 2}}}}},
		Tables: []*Table{{Name: "t",
			Keys:          []TableKey{{Ref: FieldRef{"h", "f"}, Match: MatchExact}},
			Actions:       []string{"out"},
			DefaultAction: ActionCall{Action: "out"}}},
		Ingress:  &Control{Name: "Ingress", Apply: []ControlStmt{&ApplyTable{Table: "t"}}},
		Deparser: []string{"h"},
	}
	rt, err := NewRuntime(prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Process(1, []byte{0x90}) // high bit set: accepted
	if err != nil || res.Dropped {
		t.Fatalf("masked case did not match: %+v, %v", res, err)
	}
	res, err = rt.Process(1, []byte{0x10}) // high bit clear: rejected
	if err != nil || !res.Dropped {
		t.Fatalf("masked case matched wrongly: %+v, %v", res, err)
	}
}

func TestTableCounters(t *testing.T) {
	prog, err := ParseProgram("cnt", miniP4)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.InsertEntry("t", Entry{
		Matches: []FieldMatch{{Value: 0xbb}, {Wildcard: true}},
		Action:  "fwd", Params: []uint64{4},
	}); err != nil {
		t.Fatal(err)
	}
	// The mini program applies t only when eth is valid and meta != 0;
	// meta is always 0, so the table never applies: counters stay zero.
	frame := make([]byte, 14)
	frame[5] = 0xbb
	if _, err := rt.Process(1, frame); err != nil {
		t.Fatal(err)
	}
	c, ok := rt.Counters("t")
	if !ok || c.Hits != 0 || c.Misses != 0 {
		t.Fatalf("counters = %+v", c)
	}
	if _, ok := rt.Counters("nope"); ok {
		t.Fatalf("unknown table counters")
	}
	// A program that always applies: count hit and miss.
	prog2, err := ParseProgram("cnt2", `
		header h { bit<8> f; }
		parser { state start { extract(h); transition accept; } }
		control Ingress {
			action out() { output(2); }
			table t { key = { h.f: exact; } actions = { out; } }
			apply { t.apply(); }
		}
		deparser { emit(h); }
	`)
	if err != nil {
		t.Fatal(err)
	}
	rt2, err := NewRuntime(prog2)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt2.InsertEntry("t", Entry{
		Matches: []FieldMatch{{Value: 7}}, Action: "out",
	}); err != nil {
		t.Fatal(err)
	}
	rt2.Process(1, []byte{7}) // hit
	rt2.Process(1, []byte{9}) // miss
	c, _ = rt2.Counters("t")
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("counters = %+v", c)
	}
}
