package p4

import "testing"

// FuzzParseProgram asserts the P4 parser never panics.
func FuzzParseProgram(f *testing.F) {
	f.Add(miniP4)
	f.Add("header h { bit<8> f; }")
	f.Add("control Ingress { apply { } }")
	f.Add("parser { state start { transition select(h.f) { 1: accept; } } }")
	f.Add("}{}{}{")
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = ParseProgram("fuzz", src)
	})
}

// FuzzProcess asserts the interpreter never panics on arbitrary frames.
func FuzzProcess(f *testing.F) {
	prog, err := ParseProgram("fuzz", miniP4)
	if err != nil {
		f.Fatal(err)
	}
	rt, err := NewRuntime(prog)
	if err != nil {
		f.Fatal(err)
	}
	if err := rt.InsertEntry("t", Entry{
		Matches: []FieldMatch{{Value: 0xbb}, {Mask: 0xfff, Value: 0}},
		Action:  "fwd", Params: []uint64{4},
	}); err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	frame := make([]byte, 18)
	frame[12] = 0x81
	f.Add(frame)
	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := rt.Process(1, data)
		if err != nil {
			t.Fatalf("Process returned an error: %v", err)
		}
		for _, out := range res.Outputs {
			if len(out.Data) == 0 {
				t.Fatalf("empty output frame")
			}
		}
	})
}
