package p4

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// FieldMatch is the runtime value of one table key in an entry. Which
// members are meaningful depends on the key's match kind:
//
//	exact:    Value
//	lpm:      Value, PrefixLen
//	ternary:  Value, Mask
//	optional: Value, Wildcard
type FieldMatch struct {
	Value     uint64
	Mask      uint64
	PrefixLen int
	Wildcard  bool
}

// Entry is one installed table entry.
type Entry struct {
	Matches  []FieldMatch
	Priority int // higher wins (ternary/optional tables)
	Action   string
	Params   []uint64
}

// entryKey canonically encodes an entry's match for identity.
func entryKey(matches []FieldMatch) string {
	buf := make([]byte, 0, len(matches)*18)
	for _, m := range matches {
		for i := 56; i >= 0; i -= 8 {
			buf = append(buf, byte(m.Value>>uint(i)))
		}
		for i := 56; i >= 0; i -= 8 {
			buf = append(buf, byte(m.Mask>>uint(i)))
		}
		buf = append(buf, byte(m.PrefixLen))
		if m.Wildcard {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return string(buf)
}

// maskGroup is one tuple-space class: every entry whose matches reduce to
// the same effective-mask vector lives in one group, indexed by the masked
// key-field values. Entries sharing a slot match exactly the same packets,
// so slots keep entries sorted by descending priority and only the head is
// ever a lookup candidate.
type maskGroup struct {
	sig         string   // encoded mask vector (group identity)
	masks       []uint64 // effective mask per key field
	totalPrefix int      // summed LPM prefix bits (tie-break rank)
	maxPriority int      // max entry priority across the group
	byKey       map[string][]*Entry
}

// tableState holds installed entries for one table.
type tableState struct {
	table *Table
	// exactIdx accelerates all-exact tables.
	exactIdx map[string]*Entry
	allExact bool
	entries  map[string]*Entry
	// groups/ordered implement tuple-space search for tables with
	// lpm/ternary/optional keys: one hash probe per distinct mask vector
	// instead of a scan over all entries. ordered is sorted by
	// (maxPriority desc, totalPrefix desc) so lookups can stop early.
	groups  map[string]*maskGroup
	ordered []*maskGroup
	defact  ActionCall
	// hits/misses are atomic: lookups run under the runtime's read lock.
	hits   atomic.Uint64
	misses atomic.Uint64
}

func newTableState(t *Table) *tableState {
	allExact := true
	for _, k := range t.Keys {
		if k.Match != MatchExact {
			allExact = false
		}
	}
	return &tableState{
		table:    t,
		allExact: allExact,
		exactIdx: make(map[string]*Entry),
		entries:  make(map[string]*Entry),
		groups:   make(map[string]*maskGroup),
		defact:   t.DefaultAction,
	}
}

// effectiveMasks reduces an entry's matches to the per-field bit masks a
// packet value is compared under. The masks reproduce the per-kind
// semantics of matches() exactly: exact and concrete-optional compare the
// full value, lpm compares the bits at and above the prefix shift (with a
// zero-length prefix matching everything), ternary compares under the
// entry's mask verbatim, and wildcard-optional compares nothing.
func (ts *tableState) effectiveMasks(e *Entry, masks []uint64) []uint64 {
	for i, k := range ts.table.Keys {
		m := e.Matches[i]
		switch k.Match {
		case MatchLPM:
			if m.PrefixLen == 0 {
				masks = append(masks, 0)
			} else {
				masks = append(masks, ^uint64(0)<<uint(k.Bits-m.PrefixLen))
			}
		case MatchTernary:
			masks = append(masks, m.Mask)
		case MatchOptional:
			if m.Wildcard {
				masks = append(masks, 0)
			} else {
				masks = append(masks, ^uint64(0))
			}
		default: // exact
			masks = append(masks, ^uint64(0))
		}
	}
	return masks
}

// appendMaskedKey encodes vals&masks into buf, the group's slot key.
func appendMaskedKey(buf []byte, vals, masks []uint64) []byte {
	for i, v := range vals {
		v &= masks[i]
		for s := 56; s >= 0; s -= 8 {
			buf = append(buf, byte(v>>uint(s)))
		}
	}
	return buf
}

// groupInsert adds e to its tuple-space group, creating the group on
// first use, and keeps ordered sorted. Caller holds the write lock.
func (ts *tableState) groupInsert(e *Entry) {
	var mbuf [16]uint64
	masks := ts.effectiveMasks(e, mbuf[:0])
	var kbuf [128]byte
	sig := appendMaskedKey(kbuf[:0], masks, allOnes(len(masks)))
	g := ts.groups[string(sig)]
	if g == nil {
		g = &maskGroup{
			sig:         string(sig),
			masks:       append([]uint64(nil), masks...),
			totalPrefix: ts.totalPrefix(e),
			maxPriority: e.Priority,
			byKey:       make(map[string][]*Entry),
		}
		ts.groups[g.sig] = g
		ts.ordered = append(ts.ordered, g)
	} else if e.Priority > g.maxPriority {
		g.maxPriority = e.Priority
	}
	vals := make([]uint64, len(e.Matches))
	for i, m := range e.Matches {
		vals[i] = m.Value
	}
	key := string(appendMaskedKey(kbuf[:0], vals, g.masks))
	slot := append(g.byKey[key], e)
	sort.SliceStable(slot, func(i, j int) bool { return slot[i].Priority > slot[j].Priority })
	g.byKey[key] = slot
	ts.sortGroups()
}

// groupDelete removes the entry (by pointer identity) from its group,
// dropping the group when it empties. Caller holds the write lock.
func (ts *tableState) groupDelete(e *Entry) {
	var mbuf [16]uint64
	masks := ts.effectiveMasks(e, mbuf[:0])
	var kbuf [128]byte
	sig := appendMaskedKey(kbuf[:0], masks, allOnes(len(masks)))
	g := ts.groups[string(sig)]
	if g == nil {
		return
	}
	vals := make([]uint64, len(e.Matches))
	for i, m := range e.Matches {
		vals[i] = m.Value
	}
	key := string(appendMaskedKey(kbuf[:0], vals, g.masks))
	slot := g.byKey[key]
	for i, se := range slot {
		if se == e {
			slot = append(slot[:i], slot[i+1:]...)
			break
		}
	}
	if len(slot) == 0 {
		delete(g.byKey, key)
	} else {
		g.byKey[key] = slot
	}
	if len(g.byKey) == 0 {
		delete(ts.groups, g.sig)
		for i, og := range ts.ordered {
			if og == g {
				ts.ordered = append(ts.ordered[:i], ts.ordered[i+1:]...)
				break
			}
		}
	} else if e.Priority == g.maxPriority {
		g.maxPriority = 0
		first := true
		for _, s := range g.byKey {
			if first || s[0].Priority > g.maxPriority {
				g.maxPriority = s[0].Priority
				first = false
			}
		}
	}
	ts.sortGroups()
}

func (ts *tableState) sortGroups() {
	sort.SliceStable(ts.ordered, func(i, j int) bool {
		a, b := ts.ordered[i], ts.ordered[j]
		if a.maxPriority != b.maxPriority {
			return a.maxPriority > b.maxPriority
		}
		return a.totalPrefix > b.totalPrefix
	})
}

var onesBuf = func() []uint64 {
	b := make([]uint64, 16)
	for i := range b {
		b[i] = ^uint64(0)
	}
	return b
}()

func allOnes(n int) []uint64 {
	if n <= len(onesBuf) {
		return onesBuf[:n]
	}
	b := make([]uint64, n)
	for i := range b {
		b[i] = ^uint64(0)
	}
	return b
}

func exactKey(matches []FieldMatch) string {
	buf := make([]byte, 0, len(matches)*8)
	for _, m := range matches {
		for i := 56; i >= 0; i -= 8 {
			buf = append(buf, byte(m.Value>>uint(i)))
		}
	}
	return string(buf)
}

func exactKeyVals(vals []uint64) string {
	buf := make([]byte, 0, len(vals)*8)
	for _, v := range vals {
		for i := 56; i >= 0; i -= 8 {
			buf = append(buf, byte(v>>uint(i)))
		}
	}
	return string(buf)
}

// lookup finds the best matching entry for the key field values.
//
// Tables with lpm/ternary/optional keys use tuple-space search (the Open
// vSwitch classifier idiom): one exact-hash probe per distinct mask
// vector, walking groups in (maxPriority, totalPrefix) order so the scan
// stops as soon as no remaining group can beat the current best. Cost is
// O(#mask vectors), not O(#entries) — a 10k-route LPM table with 24
// distinct prefix lengths costs at most 24 probes.
func (ts *tableState) lookup(vals []uint64) *Entry {
	if ts.allExact {
		return ts.exactIdx[exactKeyVals(vals)]
	}
	var best *Entry
	bestPrefix := -1
	var kbuf [128]byte
	for _, g := range ts.ordered {
		if best != nil {
			if g.maxPriority < best.Priority ||
				g.maxPriority == best.Priority && g.totalPrefix <= bestPrefix {
				break
			}
		}
		key := appendMaskedKey(kbuf[:0], vals, g.masks)
		slot := g.byKey[string(key)]
		if len(slot) == 0 {
			continue
		}
		// Entries in one slot match identical packets; the head has the
		// highest priority among them.
		e := slot[0]
		if best == nil || e.Priority > best.Priority ||
			e.Priority == best.Priority && g.totalPrefix > bestPrefix {
			best = e
			bestPrefix = g.totalPrefix
		}
	}
	return best
}

// lookupLinear is the reference O(entries) scan, kept for the
// naive-equivalence property test.
func (ts *tableState) lookupLinear(vals []uint64) *Entry {
	if ts.allExact {
		return ts.exactIdx[exactKeyVals(vals)]
	}
	var best *Entry
	bestPrefix := -1
	for _, e := range ts.entries {
		if !ts.matches(e, vals) {
			continue
		}
		if best == nil {
			best = e
			bestPrefix = ts.totalPrefix(e)
			continue
		}
		// Priority first, then total LPM prefix length.
		if e.Priority > best.Priority ||
			e.Priority == best.Priority && ts.totalPrefix(e) > bestPrefix {
			best = e
			bestPrefix = ts.totalPrefix(e)
		}
	}
	return best
}

func (ts *tableState) totalPrefix(e *Entry) int {
	total := 0
	for i, k := range ts.table.Keys {
		if k.Match == MatchLPM {
			total += e.Matches[i].PrefixLen
		}
	}
	return total
}

func (ts *tableState) matches(e *Entry, vals []uint64) bool {
	for i, k := range ts.table.Keys {
		m := e.Matches[i]
		v := vals[i]
		switch k.Match {
		case MatchExact:
			if v != m.Value {
				return false
			}
		case MatchLPM:
			shift := uint(k.Bits - m.PrefixLen)
			if m.PrefixLen == 0 {
				continue
			}
			if v>>shift != m.Value>>shift {
				return false
			}
		case MatchTernary:
			if v&m.Mask != m.Value&m.Mask {
				return false
			}
		case MatchOptional:
			if !m.Wildcard && v != m.Value {
				return false
			}
		}
	}
	return true
}

// DigestMessage is one emitted digest record.
type DigestMessage struct {
	Digest string
	Fields []uint64
}

// PortOut is one packet emission produced by Process.
type PortOut struct {
	Port uint16
	Data []byte
}

// Result is the outcome of processing one packet.
type Result struct {
	Outputs []PortOut
	Digests []DigestMessage
	Dropped bool
}

// Runtime executes a validated program against installed table entries.
// It is safe for concurrent use: table writes take the write lock, packet
// processing the read lock.
type Runtime struct {
	prog *Program

	mu     sync.RWMutex
	tables map[string]*tableState
	mcast  map[uint16][]uint16 // multicast group → ports

	headerIdx map[string]*HeaderType
	metaIdx   map[string]int
	stateIdx  map[string]*ParserState
}

// NewRuntime validates the program and prepares an empty runtime.
func NewRuntime(prog *Program) (*Runtime, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	rt := &Runtime{
		prog:      prog,
		tables:    make(map[string]*tableState),
		mcast:     make(map[uint16][]uint16),
		headerIdx: make(map[string]*HeaderType),
		metaIdx:   make(map[string]int),
		stateIdx:  make(map[string]*ParserState),
	}
	for _, t := range prog.Tables {
		rt.tables[t.Name] = newTableState(t)
	}
	for _, h := range prog.Headers {
		rt.headerIdx[h.Name] = h
	}
	for i, m := range prog.Metadata {
		rt.metaIdx[m.Name] = i
	}
	for _, st := range prog.Parser {
		rt.stateIdx[st.Name] = st
	}
	return rt, nil
}

// Program returns the program the runtime executes.
func (rt *Runtime) Program() *Program { return rt.prog }

// InsertEntry installs a table entry, replacing any entry with identical
// matches.
func (rt *Runtime) InsertEntry(table string, e Entry) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	ts := rt.tables[table]
	if ts == nil {
		return fmt.Errorf("p4: unknown table %q", table)
	}
	if err := rt.checkEntry(ts, &e); err != nil {
		return err
	}
	key := entryKey(e.Matches)
	if old := ts.entries[key]; old != nil && !ts.allExact {
		ts.groupDelete(old)
	}
	ts.entries[key] = &e
	if ts.allExact {
		ts.exactIdx[exactKey(e.Matches)] = &e
	} else {
		ts.groupInsert(&e)
	}
	return nil
}

// DeleteEntry removes the entry with identical matches.
func (rt *Runtime) DeleteEntry(table string, matches []FieldMatch) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	ts := rt.tables[table]
	if ts == nil {
		return fmt.Errorf("p4: unknown table %q", table)
	}
	key := entryKey(matches)
	old, ok := ts.entries[key]
	if !ok {
		return fmt.Errorf("p4: table %q: no such entry", table)
	}
	delete(ts.entries, key)
	if ts.allExact {
		delete(ts.exactIdx, exactKey(matches))
	} else {
		ts.groupDelete(old)
	}
	return nil
}

// Entries returns a deterministic snapshot of a table's entries.
func (rt *Runtime) Entries(table string) ([]Entry, error) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	ts := rt.tables[table]
	if ts == nil {
		return nil, fmt.Errorf("p4: unknown table %q", table)
	}
	keys := make([]string, 0, len(ts.entries))
	for k := range ts.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Entry, 0, len(keys))
	for _, k := range keys {
		out = append(out, *ts.entries[k])
	}
	return out, nil
}

// TableCounters are per-table hit/miss counts (the analogue of
// P4Runtime's direct counters).
type TableCounters struct {
	Hits   uint64
	Misses uint64
}

// Counters returns a table's hit/miss counters.
func (rt *Runtime) Counters(table string) (TableCounters, bool) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	ts := rt.tables[table]
	if ts == nil {
		return TableCounters{}, false
	}
	return TableCounters{Hits: ts.hits.Load(), Misses: ts.misses.Load()}, true
}

// GetEntry returns a copy of the entry with exactly the given matches.
func (rt *Runtime) GetEntry(table string, matches []FieldMatch) (Entry, bool) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	ts := rt.tables[table]
	if ts == nil {
		return Entry{}, false
	}
	e, ok := ts.entries[entryKey(matches)]
	if !ok {
		return Entry{}, false
	}
	return *e, true
}

// EntryCount returns the number of installed entries in a table.
func (rt *Runtime) EntryCount(table string) int {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	if ts := rt.tables[table]; ts != nil {
		return len(ts.entries)
	}
	return 0
}

// SetMulticastGroup installs the port list for a multicast group.
func (rt *Runtime) SetMulticastGroup(group uint16, ports []uint16) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if len(ports) == 0 {
		delete(rt.mcast, group)
		return
	}
	rt.mcast[group] = append([]uint16(nil), ports...)
}

// MulticastGroup returns the ports of a group.
func (rt *Runtime) MulticastGroup(group uint16) []uint16 {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return append([]uint16(nil), rt.mcast[group]...)
}

func (rt *Runtime) checkEntry(ts *tableState, e *Entry) error {
	t := ts.table
	if len(e.Matches) != len(t.Keys) {
		return fmt.Errorf("p4: table %q takes %d keys, got %d", t.Name, len(t.Keys), len(e.Matches))
	}
	for i, k := range t.Keys {
		m := &e.Matches[i]
		if m.Value&^maskBits(k.Bits) != 0 {
			return fmt.Errorf("p4: table %q key %s: value %#x overflows %d bits",
				t.Name, k.Name, m.Value, k.Bits)
		}
		if k.Match == MatchLPM && (m.PrefixLen < 0 || m.PrefixLen > k.Bits) {
			return fmt.Errorf("p4: table %q key %s: prefix length %d out of range",
				t.Name, k.Name, m.PrefixLen)
		}
	}
	act := rt.prog.ActionByName(e.Action)
	if act == nil {
		return fmt.Errorf("p4: unknown action %q", e.Action)
	}
	allowed := false
	for _, a := range t.Actions {
		if a == e.Action {
			allowed = true
		}
	}
	if !allowed {
		return fmt.Errorf("p4: table %q does not allow action %q", t.Name, e.Action)
	}
	if len(e.Params) != len(act.Params) {
		return fmt.Errorf("p4: action %q takes %d params, got %d", e.Action, len(act.Params), len(e.Params))
	}
	for i, p := range act.Params {
		if e.Params[i]&^maskBits(p.Bits) != 0 {
			return fmt.Errorf("p4: action %q param %s: value %#x overflows %d bits",
				e.Action, p.Name, e.Params[i], p.Bits)
		}
	}
	if t.Size > 0 && len(ts.entries) >= t.Size {
		if _, replacing := ts.entries[entryKey(e.Matches)]; !replacing {
			return fmt.Errorf("p4: table %q is full (%d entries)", t.Name, t.Size)
		}
	}
	return nil
}

// pktState is the per-packet execution state.
type pktState struct {
	rt          *Runtime
	headerVals  map[string][]uint64
	headerValid map[string]bool
	meta        []uint64
	std         map[string]uint64
	payload     []byte
	dropped     bool
	mcastGroup  uint16
	digests     []DigestMessage
	clones      []uint16
}

// Process runs one packet received on ingressPort through the pipeline.
func (rt *Runtime) Process(ingressPort uint16, data []byte) (Result, error) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()

	st := &pktState{
		rt:          rt,
		headerVals:  make(map[string][]uint64, len(rt.prog.Headers)),
		headerValid: make(map[string]bool, len(rt.prog.Headers)),
		meta:        make([]uint64, len(rt.prog.Metadata)),
		std:         map[string]uint64{FieldIngress: uint64(ingressPort)},
	}
	if err := st.parse(data); err != nil {
		// Parse errors drop the packet, as BMv2 does by default.
		return Result{Dropped: true}, nil
	}
	if err := st.runControl(rt.prog.Ingress.Apply); err != nil {
		return Result{}, err
	}

	var res Result
	// Clone-session copies are emitted even for dropped originals
	// (mirroring must see denied traffic too).
	for _, port := range st.clones {
		out, err := st.egressAndDeparse(port)
		if err != nil {
			return Result{}, err
		}
		if out != nil {
			res.Outputs = append(res.Outputs, PortOut{Port: port, Data: out})
		}
	}
	if st.dropped {
		res.Dropped = true
		res.Digests = st.digests
		return res, nil
	}
	// Replication: multicast beats unicast, matching v1model semantics
	// when mcast_grp is set.
	if st.mcastGroup != 0 {
		ports := rt.mcast[st.mcastGroup]
		for _, port := range ports {
			if port == ingressPort {
				continue // no reflection back to the source port
			}
			out, err := st.egressAndDeparse(port)
			if err != nil {
				return Result{}, err
			}
			if out != nil {
				res.Outputs = append(res.Outputs, PortOut{Port: port, Data: out})
			}
		}
		res.Digests = st.digests
		return res, nil
	}
	if egress, ok := st.std[FieldEgress]; ok {
		port := uint16(egress)
		out, err := st.egressAndDeparse(port)
		if err != nil {
			return Result{}, err
		}
		if out != nil {
			res.Outputs = append(res.Outputs, PortOut{Port: port, Data: out})
		}
		res.Digests = st.digests
		return res, nil
	}
	// No egress decision: drop.
	res.Dropped = true
	res.Digests = st.digests
	return res, nil
}

// egressAndDeparse runs the egress control (on a copy of the packet state
// for multicast replicas) and deparses. A nil return means the replica was
// dropped.
func (st *pktState) egressAndDeparse(port uint16) ([]byte, error) {
	repl := st.cloneForReplica()
	repl.std[FieldEgress] = uint64(port)
	if eg := st.rt.prog.Egress; eg != nil {
		if err := repl.runControl(eg.Apply); err != nil {
			return nil, err
		}
		if repl.dropped {
			return nil, nil
		}
	}
	st.digests = append(st.digests, repl.digests...)
	return repl.deparse(), nil
}

func (st *pktState) cloneForReplica() *pktState {
	c := &pktState{
		rt:          st.rt,
		headerVals:  make(map[string][]uint64, len(st.headerVals)),
		headerValid: make(map[string]bool, len(st.headerValid)),
		meta:        append([]uint64(nil), st.meta...),
		std:         make(map[string]uint64, len(st.std)),
		payload:     st.payload,
	}
	for k, v := range st.headerVals {
		c.headerVals[k] = append([]uint64(nil), v...)
	}
	for k, v := range st.headerValid {
		c.headerValid[k] = v
	}
	for k, v := range st.std {
		c.std[k] = v
	}
	return c
}

func (st *pktState) parse(data []byte) error {
	r := &bitReader{data: data}
	state := st.rt.prog.Parser[0]
	for steps := 0; ; steps++ {
		if steps > 1000 {
			return fmt.Errorf("p4: parser did not terminate")
		}
		if state.Extract != "" {
			h := st.rt.headerIdx[state.Extract]
			vals := make([]uint64, len(h.Fields))
			for i, f := range h.Fields {
				v, ok := r.read(f.Bits)
				if !ok {
					return fmt.Errorf("p4: packet too short extracting %s", h.Name)
				}
				vals[i] = v
			}
			st.headerVals[h.Name] = vals
			st.headerValid[h.Name] = true
		}
		next := state.Next
		if state.Select != nil {
			v, err := st.readField(state.Select.Field)
			if err != nil {
				return err
			}
			next = state.Select.Default
			for _, c := range state.Select.Cases {
				mask := c.Mask
				if mask == 0 {
					mask = ^uint64(0)
				}
				if v&mask == c.Value&mask {
					next = c.Next
					break
				}
			}
		}
		switch next {
		case "accept":
			st.payload = data[r.bytesConsumed():]
			return nil
		case "reject":
			return fmt.Errorf("p4: parser rejected packet")
		default:
			state = st.rt.stateIdx[next]
		}
	}
}

func (st *pktState) readField(ref FieldRef) (uint64, error) {
	switch ref.Header {
	case StdMetaHeader:
		return st.std[ref.Field], nil
	case MetaHeader:
		idx, ok := st.rt.metaIdx[ref.Field]
		if !ok {
			return 0, fmt.Errorf("p4: unknown metadata field %q", ref.Field)
		}
		return st.meta[idx], nil
	default:
		h := st.rt.headerIdx[ref.Header]
		if h == nil {
			return 0, fmt.Errorf("p4: unknown header %q", ref.Header)
		}
		if !st.headerValid[ref.Header] {
			return 0, nil // reading an invalid header yields zero
		}
		i := h.FieldIndex(ref.Field)
		if i < 0 {
			return 0, fmt.Errorf("p4: header %s has no field %q", ref.Header, ref.Field)
		}
		return st.headerVals[ref.Header][i], nil
	}
}

func (st *pktState) writeField(ref FieldRef, v uint64) error {
	switch ref.Header {
	case StdMetaHeader:
		switch ref.Field {
		case FieldMcastGrp:
			st.mcastGroup = uint16(v)
		default:
			st.std[ref.Field] = v
		}
		return nil
	case MetaHeader:
		idx, ok := st.rt.metaIdx[ref.Field]
		if !ok {
			return fmt.Errorf("p4: unknown metadata field %q", ref.Field)
		}
		st.meta[idx] = v
		return nil
	default:
		h := st.rt.headerIdx[ref.Header]
		if h == nil {
			return fmt.Errorf("p4: unknown header %q", ref.Header)
		}
		i := h.FieldIndex(ref.Field)
		if i < 0 {
			return fmt.Errorf("p4: header %s has no field %q", ref.Header, ref.Field)
		}
		if !st.headerValid[ref.Header] {
			return nil // writing an invalid header is a no-op
		}
		st.headerVals[ref.Header][i] = v & maskBits(h.Fields[i].Bits)
		return nil
	}
}

func (st *pktState) evalExpr(e Expr, params []uint64) (uint64, error) {
	switch e := e.(type) {
	case *ConstExpr:
		return e.Value, nil
	case *ParamExpr:
		return params[e.Index], nil
	case *FieldExpr:
		return st.readField(e.Ref)
	default:
		return 0, fmt.Errorf("p4: unknown expression %T", e)
	}
}

func (st *pktState) evalBool(b BoolExpr) (bool, error) {
	switch b := b.(type) {
	case *Compare:
		l, err := st.evalExpr(b.L, nil)
		if err != nil {
			return false, err
		}
		r, err := st.evalExpr(b.R, nil)
		if err != nil {
			return false, err
		}
		if b.Op == "!=" {
			return l != r, nil
		}
		return l == r, nil
	case *IsValid:
		return st.headerValid[b.Header], nil
	case *BoolOp:
		l, err := st.evalBool(b.L)
		if err != nil {
			return false, err
		}
		switch b.Op {
		case "not":
			return !l, nil
		case "and":
			if !l {
				return false, nil
			}
			return st.evalBool(b.R)
		case "or":
			if l {
				return true, nil
			}
			return st.evalBool(b.R)
		}
		return false, fmt.Errorf("p4: unknown boolean operator %q", b.Op)
	default:
		return false, fmt.Errorf("p4: unknown condition %T", b)
	}
}

func (st *pktState) runControl(stmts []ControlStmt) error {
	for _, cs := range stmts {
		switch cs := cs.(type) {
		case *ApplyTable:
			if err := st.applyTable(cs.Table); err != nil {
				return err
			}
		case *If:
			cond, err := st.evalBool(cs.Cond)
			if err != nil {
				return err
			}
			branch := cs.Then
			if !cond {
				branch = cs.Else
			}
			if err := st.runControl(branch); err != nil {
				return err
			}
		}
	}
	return nil
}

func (st *pktState) applyTable(name string) error {
	ts := st.rt.tables[name]
	vals := make([]uint64, len(ts.table.Keys))
	for i, k := range ts.table.Keys {
		v, err := st.readField(k.Ref)
		if err != nil {
			return err
		}
		vals[i] = v
	}
	var call ActionCall
	if e := ts.lookup(vals); e != nil {
		ts.hits.Add(1)
		call = ActionCall{Action: e.Action, Params: e.Params}
	} else {
		ts.misses.Add(1)
		call = ts.defact
		if call.Action == "" {
			return nil // no default action: miss is a no-op
		}
	}
	act := st.rt.prog.ActionByName(call.Action)
	return st.runAction(act, call.Params)
}

func (st *pktState) runAction(act *Action, params []uint64) error {
	for _, stmt := range act.Body {
		switch s := stmt.(type) {
		case *SetField:
			v, err := st.evalExpr(s.Expr, params)
			if err != nil {
				return err
			}
			if err := st.writeField(s.Ref, v); err != nil {
				return err
			}
		case *Output:
			v, err := st.evalExpr(s.Port, params)
			if err != nil {
				return err
			}
			st.std[FieldEgress] = v
			st.dropped = false
		case *Multicast:
			v, err := st.evalExpr(s.Group, params)
			if err != nil {
				return err
			}
			st.mcastGroup = uint16(v)
		case *Clone:
			v, err := st.evalExpr(s.Port, params)
			if err != nil {
				return err
			}
			st.clones = append(st.clones, uint16(v))
		case *Drop:
			st.dropped = true
		case *EmitDigest:
			d := st.rt.prog.DigestByName(s.Digest)
			fields := make([]uint64, len(s.Fields))
			for i, fe := range s.Fields {
				v, err := st.evalExpr(fe, params)
				if err != nil {
					return err
				}
				fields[i] = v & maskBits(d.Fields[i].Bits)
			}
			st.digests = append(st.digests, DigestMessage{Digest: s.Digest, Fields: fields})
		case *SetValid:
			if s.Valid && !st.headerValid[s.Header] {
				h := st.rt.headerIdx[s.Header]
				st.headerVals[s.Header] = make([]uint64, len(h.Fields))
			}
			st.headerValid[s.Header] = s.Valid
		}
	}
	return nil
}

// deparse emits valid headers in deparser order followed by the payload.
func (st *pktState) deparse() []byte {
	w := &bitWriter{}
	for _, hn := range st.rt.prog.Deparser {
		if !st.headerValid[hn] {
			continue
		}
		h := st.rt.headerIdx[hn]
		vals := st.headerVals[hn]
		for i, f := range h.Fields {
			w.write(vals[i], f.Bits)
		}
	}
	return append(w.data, st.payload...)
}
