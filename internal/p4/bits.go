package p4

// bitReader extracts big-endian bit-packed fields from a byte slice.
type bitReader struct {
	data []byte
	pos  int // bit offset
}

// read extracts the next n bits (n <= 64) as a big-endian unsigned value.
// ok is false when the data is exhausted.
func (r *bitReader) read(n int) (v uint64, ok bool) {
	if r.pos+n > len(r.data)*8 {
		return 0, false
	}
	for i := 0; i < n; i++ {
		byteIdx := r.pos >> 3
		bitIdx := 7 - r.pos&7
		v = v<<1 | uint64(r.data[byteIdx]>>bitIdx&1)
		r.pos++
	}
	return v, true
}

// bytesConsumed returns how many whole bytes have been consumed; the
// parser only extracts byte-aligned headers so this is exact at header
// boundaries.
func (r *bitReader) bytesConsumed() int { return (r.pos + 7) / 8 }

// bitWriter packs big-endian bit fields into a byte slice.
type bitWriter struct {
	data []byte
	pos  int
}

// write appends the low n bits of v.
func (w *bitWriter) write(v uint64, n int) {
	for i := n - 1; i >= 0; i-- {
		if w.pos&7 == 0 {
			w.data = append(w.data, 0)
		}
		bit := byte(v >> uint(i) & 1)
		w.data[w.pos>>3] |= bit << (7 - w.pos&7)
		w.pos++
	}
}

// maskBits returns a mask of the low n bits.
func maskBits(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(n) - 1
}
