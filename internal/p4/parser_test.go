package p4

import (
	"strings"
	"testing"
)

const miniP4 = `
header eth { bit<48> dst; bit<48> src; bit<16> etype; }
metadata { bit<12> vlan; }
digest seen { bit<48> mac; }
parser {
  state start {
    extract(eth);
    transition select(eth.etype) {
      0x8100: more;
      default: accept;
    }
  }
  state more { transition accept; }
}
control Ingress {
  action fwd(bit<9> port) { output(port); }
  action note() { digest(seen, {eth.src}); }
  action nothing() { }
  table t {
    key = { eth.dst: exact; meta.vlan: ternary; }
    actions = { fwd; }
    default_action = note;
    size = 128;
  }
  apply {
    if (eth.isValid() && !(meta.vlan == 0)) { t.apply(); }
  }
}
deparser { emit(eth); }
`

func TestParseProgramMini(t *testing.T) {
	prog, err := ParseProgram("mini", miniP4)
	if err != nil {
		t.Fatalf("ParseProgram: %v", err)
	}
	if len(prog.Headers) != 1 || prog.Headers[0].Bits() != 112 {
		t.Errorf("headers = %+v", prog.Headers)
	}
	if len(prog.Metadata) != 1 || prog.Metadata[0].Bits != 12 {
		t.Errorf("metadata = %+v", prog.Metadata)
	}
	if len(prog.Parser) != 2 || prog.Parser[0].Select == nil ||
		prog.Parser[0].Select.Cases[0].Value != 0x8100 {
		t.Errorf("parser = %+v", prog.Parser[0])
	}
	tbl := prog.TableByName("t")
	if tbl == nil || tbl.Size != 128 || len(tbl.Keys) != 2 {
		t.Fatalf("table = %+v", tbl)
	}
	if tbl.Keys[1].Match != MatchTernary || tbl.Keys[1].Bits != 12 {
		t.Errorf("ternary key = %+v", tbl.Keys[1])
	}
	if tbl.DefaultAction.Action != "note" {
		t.Errorf("default action = %+v", tbl.DefaultAction)
	}
	fwd := prog.ActionByName("fwd")
	if fwd == nil || len(fwd.Params) != 1 || fwd.Params[0].Bits != 9 {
		t.Fatalf("fwd = %+v", fwd)
	}
	if _, ok := fwd.Body[0].(*Output); !ok {
		t.Errorf("fwd body = %T", fwd.Body[0])
	}
	note := prog.ActionByName("note")
	dig := note.Body[0].(*EmitDigest)
	if dig.Digest != "seen" || len(dig.Fields) != 1 {
		t.Errorf("digest stmt = %+v", dig)
	}
	iff, ok := prog.Ingress.Apply[0].(*If)
	if !ok {
		t.Fatalf("control stmt = %T", prog.Ingress.Apply[0])
	}
	bo, ok := iff.Cond.(*BoolOp)
	if !ok || bo.Op != "and" {
		t.Fatalf("cond = %+v", iff.Cond)
	}
	if _, ok := bo.L.(*IsValid); !ok {
		t.Errorf("left cond = %T", bo.L)
	}
	neg, ok := bo.R.(*BoolOp)
	if !ok || neg.Op != "not" {
		t.Fatalf("right cond = %+v", bo.R)
	}
}

func TestParseProgramRuns(t *testing.T) {
	prog, err := ParseProgram("mini", miniP4)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.InsertEntry("t", Entry{
		Matches: []FieldMatch{{Value: 0xbb}, {Wildcard: false, Value: 0, Mask: 0}},
		Action:  "fwd", Params: []uint64{4},
	}); err != nil {
		t.Fatal(err)
	}
	// eth frame dst=0xbb: vlan meta is 0 so !(vlan==0) is false -> no apply
	// -> miss -> drop.
	frame := make([]byte, 14)
	frame[5] = 0xbb
	res, err := rt.Process(1, frame)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Dropped {
		t.Errorf("expected drop when condition false, got %+v", res)
	}
}

func TestParseErrors(t *testing.T) {
	bad := map[string]string{
		"garbage":        `header x { bit<48> f; } @`,
		"bad width":      `header x { bit<99> f; }`,
		"no semicolon":   `header x { bit<8> f }`,
		"unknown stmt":   `control Ingress { action a() { frobnicate(); } apply { } }`,
		"bad match kind": `header h { bit<8> f; } parser { state start { transition accept; } } control Ingress { action a() {} table t { key = { h.f: fuzzy; } actions = { a; } } apply { } } deparser { }`,
		"bad control":    `control Sideways { apply { } }`,
		"unterminated":   `header x { bit<8> f; `,
		"bad number":     `header x { bit<8> f; } metadata { bit<0xzz> g; }`,
	}
	for name, src := range bad {
		if _, err := ParseProgram("bad", src); err == nil {
			t.Errorf("%s: parse succeeded", name)
		}
	}
	// Validation failures also surface through ParseProgram.
	if _, err := ParseProgram("bad", `
		header x { bit<7> f; }
		parser { state start { extract(x); transition accept; } }
		control Ingress { apply { } }
		deparser { emit(x); }
	`); err == nil || !strings.Contains(err.Error(), "byte-aligned") {
		t.Errorf("unaligned header accepted: %v", err)
	}
}

func TestParseDefaultActionArgs(t *testing.T) {
	prog, err := ParseProgram("d", `
		header h { bit<8> f; }
		parser { state start { extract(h); transition accept; } }
		control Ingress {
			action set(bit<8> v) { h.f = v; }
			table t {
				key = { h.f: exact; }
				actions = { set; }
				default_action = set(7);
			}
			apply { t.apply(); }
		}
		deparser { emit(h); }
	`)
	if err != nil {
		t.Fatal(err)
	}
	tbl := prog.TableByName("t")
	if tbl.DefaultAction.Action != "set" || len(tbl.DefaultAction.Params) != 1 ||
		tbl.DefaultAction.Params[0] != 7 {
		t.Fatalf("default action = %+v", tbl.DefaultAction)
	}
	// Behavior: a miss rewrites the field to 7.
	rt, err := NewRuntime(prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Process(1, []byte{0xaa})
	if err != nil {
		t.Fatal(err)
	}
	// No output action: dropped, but we can't see the field; add an entry
	// test instead.
	_ = res
}
