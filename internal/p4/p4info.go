package p4

import (
	"fmt"
	"sort"
)

// P4Info is the control-plane-visible description of a program, analogous
// to the P4Runtime p4info.proto artifact produced by p4c: tables with
// their match fields and allowed actions, action signatures, and digest
// layouts. IDs are assigned deterministically.
type P4Info struct {
	Program string       `json:"program"`
	Tables  []TableInfo  `json:"tables"`
	Actions []ActionInfo `json:"actions"`
	Digests []DigestInfo `json:"digests"`
}

// MatchFieldInfo describes one table key.
type MatchFieldInfo struct {
	ID    int    `json:"id"`
	Name  string `json:"name"`
	Bits  int    `json:"bitwidth"`
	Match string `json:"match_type"`
}

// TableInfo describes one table.
type TableInfo struct {
	ID          int              `json:"id"`
	Name        string           `json:"name"`
	MatchFields []MatchFieldInfo `json:"match_fields"`
	ActionRefs  []string         `json:"action_refs"`
	Size        int              `json:"size"`
}

// ActionParamInfo describes one action parameter.
type ActionParamInfo struct {
	ID   int    `json:"id"`
	Name string `json:"name"`
	Bits int    `json:"bitwidth"`
}

// ActionInfo describes one action.
type ActionInfo struct {
	ID     int               `json:"id"`
	Name   string            `json:"name"`
	Params []ActionParamInfo `json:"params"`
}

// DigestFieldInfo describes one digest field.
type DigestFieldInfo struct {
	Name string `json:"name"`
	Bits int    `json:"bitwidth"`
}

// DigestInfo describes one digest message type.
type DigestInfo struct {
	ID     int               `json:"id"`
	Name   string            `json:"name"`
	Fields []DigestFieldInfo `json:"fields"`
}

// BuildP4Info derives the P4Info from a validated program. Entities are
// sorted by name so IDs are stable across runs.
func BuildP4Info(prog *Program) (*P4Info, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	info := &P4Info{Program: prog.Name}

	actions := append([]*Action(nil), prog.Actions...)
	sort.Slice(actions, func(i, j int) bool { return actions[i].Name < actions[j].Name })
	for i, a := range actions {
		ai := ActionInfo{ID: 0x0100_0000 + i, Name: a.Name}
		for pi, p := range a.Params {
			ai.Params = append(ai.Params, ActionParamInfo{ID: pi + 1, Name: p.Name, Bits: p.Bits})
		}
		info.Actions = append(info.Actions, ai)
	}

	tables := append([]*Table(nil), prog.Tables...)
	sort.Slice(tables, func(i, j int) bool { return tables[i].Name < tables[j].Name })
	for i, t := range tables {
		ti := TableInfo{ID: 0x0200_0000 + i, Name: t.Name, Size: t.Size}
		for ki, k := range t.Keys {
			ti.MatchFields = append(ti.MatchFields, MatchFieldInfo{
				ID: ki + 1, Name: k.Name, Bits: k.Bits, Match: k.Match.String(),
			})
		}
		ti.ActionRefs = append(ti.ActionRefs, t.Actions...)
		info.Tables = append(info.Tables, ti)
	}

	digests := append([]*Digest(nil), prog.Digests...)
	sort.Slice(digests, func(i, j int) bool { return digests[i].Name < digests[j].Name })
	for i, d := range digests {
		di := DigestInfo{ID: 0x0300_0000 + i, Name: d.Name}
		for _, f := range d.Fields {
			di.Fields = append(di.Fields, DigestFieldInfo{Name: f.Name, Bits: f.Bits})
		}
		info.Digests = append(info.Digests, di)
	}
	return info, nil
}

// Table returns the named table's info, or nil.
func (pi *P4Info) Table(name string) *TableInfo {
	for i := range pi.Tables {
		if pi.Tables[i].Name == name {
			return &pi.Tables[i]
		}
	}
	return nil
}

// Action returns the named action's info, or nil.
func (pi *P4Info) Action(name string) *ActionInfo {
	for i := range pi.Actions {
		if pi.Actions[i].Name == name {
			return &pi.Actions[i]
		}
	}
	return nil
}

// Digest returns the named digest's info, or nil.
func (pi *P4Info) Digest(name string) *DigestInfo {
	for i := range pi.Digests {
		if pi.Digests[i].Name == name {
			return &pi.Digests[i]
		}
	}
	return nil
}

// CheckEntryAgainstInfo validates an entry shape against table metadata,
// the same check a P4Runtime server performs on Write.
func CheckEntryAgainstInfo(pi *P4Info, table string, e *Entry) error {
	ti := pi.Table(table)
	if ti == nil {
		return fmt.Errorf("p4: unknown table %q", table)
	}
	if len(e.Matches) != len(ti.MatchFields) {
		return fmt.Errorf("p4: table %q takes %d match fields, got %d",
			table, len(ti.MatchFields), len(e.Matches))
	}
	for i, mf := range ti.MatchFields {
		if e.Matches[i].Value&^maskBits(mf.Bits) != 0 {
			return fmt.Errorf("p4: table %q field %s: value overflows %d bits", table, mf.Name, mf.Bits)
		}
	}
	ai := pi.Action(e.Action)
	if ai == nil {
		return fmt.Errorf("p4: unknown action %q", e.Action)
	}
	allowed := false
	for _, ref := range ti.ActionRefs {
		if ref == e.Action {
			allowed = true
		}
	}
	if !allowed {
		return fmt.Errorf("p4: table %q does not allow action %q", table, e.Action)
	}
	if len(e.Params) != len(ai.Params) {
		return fmt.Errorf("p4: action %q takes %d params, got %d", e.Action, len(ai.Params), len(e.Params))
	}
	for i, p := range ai.Params {
		if e.Params[i]&^maskBits(p.Bits) != 0 {
			return fmt.Errorf("p4: action %q param %s overflows %d bits", e.Action, p.Name, p.Bits)
		}
	}
	return nil
}
