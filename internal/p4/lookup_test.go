package p4

import (
	"fmt"
	"math/rand"
	"testing"
)

// lookupProgram builds a one-table program whose key layout mixes every
// non-exact match kind, for exercising the tuple-space index.
func lookupProgram(keys []TableKey) *Program {
	return &Program{
		Name: "lookup_bench",
		Headers: []*HeaderType{
			{Name: "h", Fields: []HeaderField{
				{Name: "f32", Bits: 32}, {Name: "f16", Bits: 16},
				{Name: "f8", Bits: 8}, {Name: "f8b", Bits: 8},
			}},
		},
		Parser:  []*ParserState{{Name: "start", Extract: "h", Next: "accept"}},
		Actions: []*Action{{Name: "nop", Body: nil}},
		Tables: []*Table{
			{Name: "t", Keys: keys, Actions: []string{"nop"}},
		},
		Ingress:  &Control{Name: "ingress", Apply: []ControlStmt{&ApplyTable{Table: "t"}}},
		Deparser: []string{"h"},
	}
}

func mustRuntime(t testing.TB, p *Program) *Runtime {
	t.Helper()
	rt, err := NewRuntime(p)
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	return rt
}

// randomEntry draws one entry consistent with the key layout. Small value
// domains and few priorities force collisions, tie-breaks, and overlapping
// masks.
func randomEntry(rng *rand.Rand, keys []TableKey) Entry {
	e := Entry{Action: "nop", Priority: rng.Intn(4)}
	for _, k := range keys {
		var m FieldMatch
		switch k.Match {
		case MatchExact:
			m.Value = rng.Uint64() & maskBits(k.Bits) & 0xf
		case MatchLPM:
			m.PrefixLen = rng.Intn(k.Bits + 1)
			m.Value = rng.Uint64() & maskBits(k.Bits)
		case MatchTernary:
			m.Mask = rng.Uint64() & maskBits(k.Bits)
			if rng.Intn(4) == 0 {
				m.Mask = 0xff00 & maskBits(k.Bits) // recurring mask class
			}
			m.Value = rng.Uint64() & maskBits(k.Bits)
		case MatchOptional:
			m.Wildcard = rng.Intn(2) == 0
			m.Value = rng.Uint64() & maskBits(k.Bits) & 0x7
		}
		e.Matches = append(e.Matches, m)
	}
	return e
}

// TestLookupMatchesLinearScan is the naive-equivalence property test: over
// randomized table states (random inserts, deletes, and replacements), the
// tuple-space lookup must agree with the reference linear scan — same
// hit/miss outcome, and on hits the same (priority, total LPM prefix)
// rank, with the returned entry actually matching the probed values. Exact
// entry identity is not compared because the linear scan's tie-break among
// equally-ranked entries is map-iteration-order dependent.
func TestLookupMatchesLinearScan(t *testing.T) {
	layouts := [][]TableKey{
		{{Ref: FieldRef{"h", "f32"}, Match: MatchLPM, Bits: 32}},
		{{Ref: FieldRef{"h", "f16"}, Match: MatchTernary, Bits: 16},
			{Ref: FieldRef{"h", "f8"}, Match: MatchOptional, Bits: 8}},
		{{Ref: FieldRef{"h", "f8b"}, Match: MatchExact, Bits: 8},
			{Ref: FieldRef{"h", "f16"}, Match: MatchLPM, Bits: 16},
			{Ref: FieldRef{"h", "f8"}, Match: MatchTernary, Bits: 8}},
	}
	for li, keys := range layouts {
		keys := keys
		t.Run(fmt.Sprintf("layout%d", li), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(42 + li)))
			rt := mustRuntime(t, lookupProgram(keys))
			ts := rt.tables["t"]
			var installed []Entry
			for step := 0; step < 2000; step++ {
				switch {
				case len(installed) == 0 || rng.Intn(3) != 0:
					e := randomEntry(rng, keys)
					if err := rt.InsertEntry("t", e); err != nil {
						t.Fatalf("InsertEntry: %v", err)
					}
					// Inserting identical matches replaces: keep at most one
					// installed record per entry key.
					k := entryKey(e.Matches)
					kept := installed[:0]
					for _, old := range installed {
						if entryKey(old.Matches) != k {
							kept = append(kept, old)
						}
					}
					installed = append(kept, e)
				default:
					i := rng.Intn(len(installed))
					if err := rt.DeleteEntry("t", installed[i].Matches); err != nil {
						t.Fatalf("DeleteEntry: %v", err)
					}
					installed[i] = installed[len(installed)-1]
					installed = installed[:len(installed)-1]
				}
				// Probe with a mix of fresh random values and values taken
				// from installed entries (guaranteed-hit bias).
				for probe := 0; probe < 4; probe++ {
					vals := make([]uint64, len(keys))
					if probe%2 == 0 && len(installed) > 0 {
						src := installed[rng.Intn(len(installed))]
						for i := range vals {
							vals[i] = src.Matches[i].Value
						}
					} else {
						for i, k := range keys {
							vals[i] = rng.Uint64() & maskBits(k.Bits)
						}
					}
					got := ts.lookup(vals)
					want := ts.lookupLinear(vals)
					if (got == nil) != (want == nil) {
						t.Fatalf("step %d vals %x: lookup=%+v linear=%+v", step, vals, got, want)
					}
					if got == nil {
						continue
					}
					if !ts.matches(got, vals) {
						t.Fatalf("step %d vals %x: lookup returned non-matching entry %+v", step, vals, got)
					}
					if got.Priority != want.Priority || ts.totalPrefix(got) != ts.totalPrefix(want) {
						t.Fatalf("step %d vals %x: rank mismatch: lookup (pri=%d,prefix=%d) linear (pri=%d,prefix=%d)",
							step, vals, got.Priority, ts.totalPrefix(got), want.Priority, ts.totalPrefix(want))
					}
				}
			}
		})
	}
}

// TestLookupDeleteRecomputesGroupPriority pins the maxPriority-recompute
// path: deleting the highest-priority entry of a group must let a
// lower-priority group win again.
func TestLookupDeleteRecomputesGroupPriority(t *testing.T) {
	keys := []TableKey{{Ref: FieldRef{"h", "f16"}, Match: MatchTernary, Bits: 16}}
	rt := mustRuntime(t, lookupProgram(keys))
	ts := rt.tables["t"]
	hi := Entry{Matches: []FieldMatch{{Value: 0x1200, Mask: 0xff00}}, Priority: 10, Action: "nop"}
	lo := Entry{Matches: []FieldMatch{{Value: 0x0012, Mask: 0x00ff}}, Priority: 5, Action: "nop"}
	if err := rt.InsertEntry("t", hi); err != nil {
		t.Fatal(err)
	}
	if err := rt.InsertEntry("t", lo); err != nil {
		t.Fatal(err)
	}
	if e := ts.lookup([]uint64{0x1212}); e == nil || e.Priority != 10 {
		t.Fatalf("want hi-priority entry, got %+v", e)
	}
	if err := rt.DeleteEntry("t", hi.Matches); err != nil {
		t.Fatal(err)
	}
	if e := ts.lookup([]uint64{0x1212}); e == nil || e.Priority != 5 {
		t.Fatalf("after delete want lo-priority entry, got %+v", e)
	}
}

// benchTable installs n entries into a fresh runtime and returns the table
// state plus probe values drawn from the installed population.
func benchTable(b *testing.B, keys []TableKey, n int, gen func(rng *rand.Rand, i int) Entry) (*tableState, [][]uint64) {
	b.Helper()
	rt := mustRuntime(b, lookupProgram(keys))
	rng := rand.New(rand.NewSource(7))
	probes := make([][]uint64, 0, n)
	for i := 0; rt.EntryCount("t") < n; i++ {
		e := gen(rng, i)
		if err := rt.InsertEntry("t", e); err != nil {
			b.Fatalf("InsertEntry: %v", err)
		}
		vals := make([]uint64, len(keys))
		for j := range vals {
			vals[j] = e.Matches[j].Value
		}
		probes = append(probes, vals)
	}
	return rt.tables["t"], probes
}

// BenchmarkLPMLookup measures longest-prefix lookup cost at 100/1k/10k
// routes. Tuple-space search bounds the cost by the number of distinct
// prefix lengths (≤25 here), so ns/op should stay flat as the table grows.
func BenchmarkLPMLookup(b *testing.B) {
	keys := []TableKey{{Ref: FieldRef{"h", "f32"}, Match: MatchLPM, Bits: 32}}
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ts, probes := benchTable(b, keys, n, func(rng *rand.Rand, i int) Entry {
				plen := 8 + rng.Intn(25)
				return Entry{
					Matches: []FieldMatch{{Value: rng.Uint64() & maskBits(32), PrefixLen: plen}},
					Action:  "nop",
				}
			})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if ts.lookup(probes[i%len(probes)]) == nil {
					b.Fatal("expected hit")
				}
			}
		})
	}
}

// BenchmarkTernaryLookup measures ternary+optional lookup at 100/1k/10k
// entries across a bounded set of mask classes (the realistic ACL shape:
// many rules, few distinct masks).
func BenchmarkTernaryLookup(b *testing.B) {
	keys := []TableKey{
		{Ref: FieldRef{"h", "f32"}, Match: MatchTernary, Bits: 32},
		{Ref: FieldRef{"h", "f8"}, Match: MatchOptional, Bits: 8},
	}
	maskClasses := []uint64{0xffffffff, 0xffffff00, 0xffff0000, 0xff000000, 0xfffff000, 0xffffffc0, 0xfff00000, 0xffffcc00}
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ts, probes := benchTable(b, keys, n, func(rng *rand.Rand, i int) Entry {
				return Entry{
					Matches: []FieldMatch{
						{Value: rng.Uint64() & maskBits(32), Mask: maskClasses[rng.Intn(len(maskClasses))]},
						{Value: uint64(rng.Intn(256)), Wildcard: rng.Intn(2) == 0},
					},
					Priority: rng.Intn(8),
					Action:   "nop",
				}
			})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ts.lookup(probes[i%len(probes)])
			}
		})
	}
}

// BenchmarkLinearLookupBaseline is the pre-index reference scan at the
// same sizes, for before/after comparison in EXPERIMENTS.md.
func BenchmarkLinearLookupBaseline(b *testing.B) {
	keys := []TableKey{{Ref: FieldRef{"h", "f32"}, Match: MatchLPM, Bits: 32}}
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ts, probes := benchTable(b, keys, n, func(rng *rand.Rand, i int) Entry {
				plen := 8 + rng.Intn(25)
				return Entry{
					Matches: []FieldMatch{{Value: rng.Uint64() & maskBits(32), PrefixLen: plen}},
					Action:  "nop",
				}
			})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if ts.lookupLinear(probes[i%len(probes)]) == nil {
					b.Fatal("expected hit")
				}
			}
		})
	}
}
