// Package p4 models programmable data planes: a P4-16-subset program IR
// (headers, a parser state machine, match-action tables, actions, digests),
// a behavioral interpreter executing the IR on real packet bytes (the
// BMv2 stand-in), and P4Info-style metadata consumed by the control plane
// for code generation and cross-plane type checking.
package p4

import (
	"fmt"
)

// HeaderField is one field of a header type. Fields are bit-packed in
// declaration order; a header's total width must be a whole number of
// bytes.
type HeaderField struct {
	Name string
	Bits int // 1..64
}

// HeaderType declares a packet header.
type HeaderType struct {
	Name   string
	Fields []HeaderField
}

// Bits returns the total header width in bits.
func (h *HeaderType) Bits() int {
	total := 0
	for _, f := range h.Fields {
		total += f.Bits
	}
	return total
}

// FieldIndex returns the index of the named field, or -1.
func (h *HeaderType) FieldIndex(name string) int {
	for i, f := range h.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// MetaField is one user metadata field.
type MetaField struct {
	Name string
	Bits int
}

// Standard metadata fields (v1model-inspired), addressed with header name
// "standard_metadata".
const (
	StdMetaHeader = "standard_metadata"
	MetaHeader    = "meta"
	FieldIngress  = "ingress_port"
	FieldEgress   = "egress_spec"
	FieldMcastGrp = "mcast_grp"
	FieldInstance = "instance_type" // 0 normal, 1 replica
	// StdIngressBits is the width of port ids. v1model uses 9 bits; this
	// model uses PSA-style 16-bit ports so deployments can exceed 511
	// ports (the paper's scalability experiment adds 2,000).
	StdIngressBits = 16
	StdMcastBits   = 16
)

// FieldRef names a field: a header field, user metadata (Header ==
// "meta"), or standard metadata (Header == "standard_metadata").
type FieldRef struct {
	Header string
	Field  string
}

func (r FieldRef) String() string { return r.Header + "." + r.Field }

// ParserState is one state of the parser FSM. On entry it extracts
// Extract (if non-empty), then either selects on a field or transitions
// unconditionally to Next. The states "accept" and "reject" are terminal.
type ParserState struct {
	Name    string
	Extract string // header name, or ""
	Select  *Select
	Next    string
}

// Select is a parser select statement over one field.
type Select struct {
	Field   FieldRef
	Cases   []SelectCase
	Default string
}

// SelectCase maps a (masked) value to the next state.
type SelectCase struct {
	Value uint64
	Mask  uint64 // 0 means exact (full mask)
	Next  string
}

// MatchKind is a table key's match semantics.
type MatchKind int

// Match kinds.
const (
	MatchExact MatchKind = iota
	MatchLPM
	MatchTernary
	MatchOptional
)

func (k MatchKind) String() string {
	switch k {
	case MatchExact:
		return "exact"
	case MatchLPM:
		return "lpm"
	case MatchTernary:
		return "ternary"
	case MatchOptional:
		return "optional"
	default:
		return "?"
	}
}

// TableKey is one match key of a table.
type TableKey struct {
	Name  string // control-plane-visible name
	Ref   FieldRef
	Match MatchKind
	Bits  int // resolved field width
}

// ActionParam is one runtime parameter of an action.
type ActionParam struct {
	Name string
	Bits int
}

// Action is a named action with a body of primitive statements.
type Action struct {
	Name   string
	Params []ActionParam
	Body   []Stmt
}

// ActionCall is an action with bound parameter values (for defaults).
type ActionCall struct {
	Action string
	Params []uint64
}

// Table is a match-action table.
type Table struct {
	Name          string
	Keys          []TableKey
	Actions       []string
	DefaultAction ActionCall
	Size          int
}

// DigestField is one field of a digest message.
type DigestField struct {
	Name string
	Bits int
}

// Digest declares a message type streamed from the data plane to the
// control plane (e.g. MAC learning events).
type Digest struct {
	Name   string
	Fields []DigestField
}

// Expr is a value expression inside an action body or control condition:
// *ConstExpr, *ParamExpr, or *FieldExpr.
type Expr interface{ exprNode() }

// ConstExpr is a literal.
type ConstExpr struct{ Value uint64 }

// ParamExpr reads an action parameter by index.
type ParamExpr struct{ Index int }

// FieldExpr reads a header or metadata field.
type FieldExpr struct{ Ref FieldRef }

func (*ConstExpr) exprNode() {}
func (*ParamExpr) exprNode() {}
func (*FieldExpr) exprNode() {}

// Stmt is a primitive action statement: *SetField, *Output, *Multicast,
// *Drop, *EmitDigest, *SetValid.
type Stmt interface{ stmtNode() }

// SetField assigns an expression to a field.
type SetField struct {
	Ref  FieldRef
	Expr Expr
}

// Output unicasts the packet to a port.
type Output struct{ Port Expr }

// Multicast replicates the packet to a multicast group.
type Multicast struct{ Group Expr }

// Drop marks the packet dropped.
type Drop struct{}

// EmitDigest sends a digest message built from field expressions.
type EmitDigest struct {
	Digest string
	Fields []Expr
}

// SetValid adds or removes a header.
type SetValid struct {
	Header string
	Valid  bool
}

// Clone emits an additional copy of the packet to a port at the end of
// ingress (BMv2 clone-session semantics, used for port mirroring). Clones
// are emitted even when the original packet is dropped.
type Clone struct{ Port Expr }

func (*SetField) stmtNode()   {}
func (*Output) stmtNode()     {}
func (*Multicast) stmtNode()  {}
func (*Drop) stmtNode()       {}
func (*EmitDigest) stmtNode() {}
func (*SetValid) stmtNode()   {}
func (*Clone) stmtNode()      {}

// BoolExpr is a control-flow condition: *Compare, *IsValid, *BoolOp.
type BoolExpr interface{ boolNode() }

// Compare compares two expressions ("==" or "!=").
type Compare struct {
	Op   string
	L, R Expr
}

// IsValid tests header validity.
type IsValid struct{ Header string }

// BoolOp combines conditions: "and", "or", "not" (R nil for not).
type BoolOp struct {
	Op   string
	L, R BoolExpr
}

func (*Compare) boolNode() {}
func (*IsValid) boolNode() {}
func (*BoolOp) boolNode()  {}

// ControlStmt is a statement in a control block: *ApplyTable or *If.
type ControlStmt interface{ ctrlNode() }

// ApplyTable applies a match-action table.
type ApplyTable struct{ Table string }

// If branches on a condition.
type If struct {
	Cond BoolExpr
	Then []ControlStmt
	Else []ControlStmt
}

func (*ApplyTable) ctrlNode() {}
func (*If) ctrlNode()         {}

// Control is a named control block (ingress or egress).
type Control struct {
	Name  string
	Apply []ControlStmt
}

// Program is a complete data-plane program.
type Program struct {
	Name     string
	Headers  []*HeaderType
	Metadata []MetaField
	// Parser starts at Parser[0]; terminal states are "accept"/"reject".
	Parser   []*ParserState
	Ingress  *Control
	Egress   *Control // may be nil
	Deparser []string // header emission order
	Tables   []*Table
	Actions  []*Action
	Digests  []*Digest
}

// Header returns the named header type, or nil.
func (p *Program) Header(name string) *HeaderType {
	for _, h := range p.Headers {
		if h.Name == name {
			return h
		}
	}
	return nil
}

// TableByName returns the named table, or nil.
func (p *Program) TableByName(name string) *Table {
	for _, t := range p.Tables {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// ActionByName returns the named action, or nil.
func (p *Program) ActionByName(name string) *Action {
	for _, a := range p.Actions {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// DigestByName returns the named digest, or nil.
func (p *Program) DigestByName(name string) *Digest {
	for _, d := range p.Digests {
		if d.Name == name {
			return d
		}
	}
	return nil
}

// fieldBits resolves the width of a field reference.
func (p *Program) fieldBits(ref FieldRef) (int, error) {
	switch ref.Header {
	case StdMetaHeader:
		switch ref.Field {
		case FieldIngress, FieldEgress:
			return StdIngressBits, nil
		case FieldMcastGrp:
			return StdMcastBits, nil
		case FieldInstance:
			return 8, nil
		}
		return 0, fmt.Errorf("p4: unknown standard metadata field %q", ref.Field)
	case MetaHeader:
		for _, m := range p.Metadata {
			if m.Name == ref.Field {
				return m.Bits, nil
			}
		}
		return 0, fmt.Errorf("p4: unknown metadata field %q", ref.Field)
	default:
		h := p.Header(ref.Header)
		if h == nil {
			return 0, fmt.Errorf("p4: unknown header %q", ref.Header)
		}
		i := h.FieldIndex(ref.Field)
		if i < 0 {
			return 0, fmt.Errorf("p4: header %s has no field %q", ref.Header, ref.Field)
		}
		return h.Fields[i].Bits, nil
	}
}

// Validate checks structural well-formedness: header widths byte-aligned,
// parser states resolvable, table keys/actions resolvable, digest and
// action references valid. It also resolves TableKey.Bits.
func (p *Program) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("p4: program has no name")
	}
	headerNames := make(map[string]bool)
	for _, h := range p.Headers {
		if headerNames[h.Name] {
			return fmt.Errorf("p4: header %q redeclared", h.Name)
		}
		headerNames[h.Name] = true
		if h.Bits()%8 != 0 {
			return fmt.Errorf("p4: header %q is %d bits, not byte-aligned", h.Name, h.Bits())
		}
		for _, f := range h.Fields {
			if f.Bits < 1 || f.Bits > 64 {
				return fmt.Errorf("p4: header %s field %s: width %d out of range", h.Name, f.Name, f.Bits)
			}
		}
	}
	if len(p.Parser) == 0 {
		return fmt.Errorf("p4: program has no parser states")
	}
	states := map[string]bool{"accept": true, "reject": true}
	for _, st := range p.Parser {
		if states[st.Name] {
			return fmt.Errorf("p4: parser state %q redeclared", st.Name)
		}
		states[st.Name] = true
	}
	for _, st := range p.Parser {
		if st.Extract != "" && !headerNames[st.Extract] {
			return fmt.Errorf("p4: parser state %s extracts unknown header %q", st.Name, st.Extract)
		}
		if st.Select != nil {
			if _, err := p.fieldBits(st.Select.Field); err != nil {
				return fmt.Errorf("p4: parser state %s: %w", st.Name, err)
			}
			for _, c := range st.Select.Cases {
				if !states[c.Next] {
					return fmt.Errorf("p4: parser state %s selects unknown state %q", st.Name, c.Next)
				}
			}
			if !states[st.Select.Default] {
				return fmt.Errorf("p4: parser state %s: unknown default state %q", st.Name, st.Select.Default)
			}
		} else if !states[st.Next] {
			return fmt.Errorf("p4: parser state %s transitions to unknown state %q", st.Name, st.Next)
		}
	}
	actionNames := make(map[string]*Action)
	for _, a := range p.Actions {
		if actionNames[a.Name] != nil {
			return fmt.Errorf("p4: action %q redeclared", a.Name)
		}
		actionNames[a.Name] = a
		for _, stmt := range a.Body {
			if err := p.validateStmt(a, stmt); err != nil {
				return err
			}
		}
	}
	tableNames := make(map[string]bool)
	for _, t := range p.Tables {
		if tableNames[t.Name] {
			return fmt.Errorf("p4: table %q redeclared", t.Name)
		}
		tableNames[t.Name] = true
		if len(t.Keys) == 0 {
			return fmt.Errorf("p4: table %q has no keys", t.Name)
		}
		keyNames := make(map[string]bool)
		for i := range t.Keys {
			k := &t.Keys[i]
			if k.Name == "" {
				k.Name = k.Ref.String()
			}
			if keyNames[k.Name] {
				return fmt.Errorf("p4: table %q key %q duplicated", t.Name, k.Name)
			}
			keyNames[k.Name] = true
			bits, err := p.fieldBits(k.Ref)
			if err != nil {
				return fmt.Errorf("p4: table %q: %w", t.Name, err)
			}
			k.Bits = bits
		}
		if len(t.Actions) == 0 {
			return fmt.Errorf("p4: table %q allows no actions", t.Name)
		}
		for _, an := range t.Actions {
			if actionNames[an] == nil {
				return fmt.Errorf("p4: table %q references unknown action %q", t.Name, an)
			}
		}
		if t.DefaultAction.Action != "" {
			da := actionNames[t.DefaultAction.Action]
			if da == nil {
				return fmt.Errorf("p4: table %q default action %q unknown", t.Name, t.DefaultAction.Action)
			}
			if len(t.DefaultAction.Params) != len(da.Params) {
				return fmt.Errorf("p4: table %q default action %q takes %d params, got %d",
					t.Name, da.Name, len(da.Params), len(t.DefaultAction.Params))
			}
		}
	}
	digestNames := make(map[string]bool)
	for _, d := range p.Digests {
		if digestNames[d.Name] {
			return fmt.Errorf("p4: digest %q redeclared", d.Name)
		}
		digestNames[d.Name] = true
	}
	if p.Ingress == nil {
		return fmt.Errorf("p4: program has no ingress control")
	}
	for _, ctl := range []*Control{p.Ingress, p.Egress} {
		if ctl == nil {
			continue
		}
		if err := p.validateControl(ctl.Apply, tableNames); err != nil {
			return fmt.Errorf("p4: control %s: %w", ctl.Name, err)
		}
	}
	for _, h := range p.Deparser {
		if !headerNames[h] {
			return fmt.Errorf("p4: deparser emits unknown header %q", h)
		}
	}
	return nil
}

func (p *Program) validateStmt(a *Action, stmt Stmt) error {
	checkExpr := func(e Expr) error {
		switch e := e.(type) {
		case *ParamExpr:
			if e.Index < 0 || e.Index >= len(a.Params) {
				return fmt.Errorf("p4: action %s: parameter index %d out of range", a.Name, e.Index)
			}
		case *FieldExpr:
			if _, err := p.fieldBits(e.Ref); err != nil {
				return fmt.Errorf("p4: action %s: %w", a.Name, err)
			}
		}
		return nil
	}
	switch s := stmt.(type) {
	case *SetField:
		if _, err := p.fieldBits(s.Ref); err != nil {
			return fmt.Errorf("p4: action %s: %w", a.Name, err)
		}
		return checkExpr(s.Expr)
	case *Output:
		return checkExpr(s.Port)
	case *Multicast:
		return checkExpr(s.Group)
	case *Clone:
		return checkExpr(s.Port)
	case *EmitDigest:
		d := p.DigestByName(s.Digest)
		if d == nil {
			return fmt.Errorf("p4: action %s: unknown digest %q", a.Name, s.Digest)
		}
		if len(s.Fields) != len(d.Fields) {
			return fmt.Errorf("p4: action %s: digest %s has %d fields, got %d",
				a.Name, s.Digest, len(d.Fields), len(s.Fields))
		}
		for _, f := range s.Fields {
			if err := checkExpr(f); err != nil {
				return err
			}
		}
		return nil
	case *SetValid:
		if p.Header(s.Header) == nil {
			return fmt.Errorf("p4: action %s: unknown header %q", a.Name, s.Header)
		}
		return nil
	case *Drop:
		return nil
	default:
		return fmt.Errorf("p4: action %s: unknown statement %T", a.Name, stmt)
	}
}

func (p *Program) validateControl(stmts []ControlStmt, tables map[string]bool) error {
	for _, cs := range stmts {
		switch cs := cs.(type) {
		case *ApplyTable:
			if !tables[cs.Table] {
				return fmt.Errorf("applies unknown table %q", cs.Table)
			}
		case *If:
			if err := p.validateBool(cs.Cond); err != nil {
				return err
			}
			if err := p.validateControl(cs.Then, tables); err != nil {
				return err
			}
			if err := p.validateControl(cs.Else, tables); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown control statement %T", cs)
		}
	}
	return nil
}

func (p *Program) validateBool(b BoolExpr) error {
	switch b := b.(type) {
	case *Compare:
		for _, e := range []Expr{b.L, b.R} {
			if fe, ok := e.(*FieldExpr); ok {
				if _, err := p.fieldBits(fe.Ref); err != nil {
					return err
				}
			}
			if _, ok := e.(*ParamExpr); ok {
				return fmt.Errorf("parameter reference outside an action")
			}
		}
		return nil
	case *IsValid:
		if p.Header(b.Header) == nil {
			return fmt.Errorf("isValid on unknown header %q", b.Header)
		}
		return nil
	case *BoolOp:
		if err := p.validateBool(b.L); err != nil {
			return err
		}
		if b.R != nil {
			return p.validateBool(b.R)
		}
		return nil
	default:
		return fmt.Errorf("unknown condition %T", b)
	}
}
