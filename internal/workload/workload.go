// Package workload generates the synthetic inputs driving the evaluation:
// port-churn configuration (the §4.3 scalability experiment), load-balancer
// cold-start/teardown sequences (the §2.2 worst case), steady-state
// small-change streams (the §2.2 incremental-processing comparison), and
// random graphs with edge churn (the §1 labeling example). These stand in
// for the production traces (Robotron, OVN deployments) the paper cites,
// preserving the change-pattern shapes that drive the claimed behaviours.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/baseline"
	"repro/internal/dl/engine"
	"repro/internal/dl/value"
	"repro/internal/ovsdb"
)

// AccessPortRow builds the OVSDB row for access port i (VLAN spread over
// nVlans).
func AccessPortRow(i, nVlans int) map[string]ovsdb.Value {
	return map[string]ovsdb.Value{
		"name":      fmt.Sprintf("port%d", i),
		"port_num":  int64(i + 1),
		"vlan_mode": "access",
		"tag":       int64(10 + i%nVlans),
	}
}

// PortCfg builds the equivalent baseline configuration for port i.
func PortCfg(i, nVlans int) baseline.PortCfg {
	return baseline.PortCfg{
		Name: fmt.Sprintf("port%d", i),
		Num:  uint16(i + 1),
		Tag:  uint16(10 + i%nVlans),
	}
}

// PortRecord builds the engine input record for port i, matching the
// generated Port relation layout (_uuid, name, port_num, tag, vlan_mode).
func PortRecord(i, nVlans int) value.Record {
	return value.Record{
		value.String(fmt.Sprintf("uuid-port-%d", i)),
		value.String(fmt.Sprintf("port%d", i)),
		value.Int(int64(i + 1)),
		value.Int(int64(10 + i%nVlans)),
		value.String("access"),
	}
}

// LearnedRecord builds a Learn digest record (mac, vlan, port) for host h
// on port i.
func LearnedRecord(h, i, nVlans int) value.Record {
	return value.Record{
		value.BitW(uint64(0xaa0000000000+h), 48),
		value.BitW(uint64(10+i%nVlans), 12),
		value.BitW(uint64(i+1), 16),
	}
}

// LBs builds v load balancers with b backends each.
func LBs(v, b int) []baseline.LB {
	lbs := make([]baseline.LB, v)
	for i := range lbs {
		lb := baseline.LB{ID: i + 1, VIP: uint32(0x0a000000 + i + 1)}
		for j := 0; j < b; j++ {
			lb.Backends = append(lb.Backends, baseline.LBBackend{
				IP:   uint32(0x0b000000 + i*b + j),
				Port: uint16(8000 + j%1000),
			})
		}
		lbs[i] = lb
	}
	return lbs
}

// LBInsertUpdates builds the engine updates loading one load balancer
// (for the LBRules program).
func LBInsertUpdates(lb baseline.LB) []engine.Update {
	ups := make([]engine.Update, 0, 1+len(lb.Backends))
	ups = append(ups, engine.Insert("Vip", value.Record{
		value.Int(int64(lb.ID)), value.BitW(uint64(lb.VIP), 32),
	}))
	for j, b := range lb.Backends {
		ups = append(ups, engine.Insert("Backend", value.Record{
			value.Int(int64(lb.ID)), value.Int(int64(j)),
			value.BitW(uint64(b.IP), 32), value.BitW(uint64(b.Port), 16),
		}))
	}
	return ups
}

// LBDeleteUpdates builds the engine updates removing one load balancer.
func LBDeleteUpdates(lb baseline.LB) []engine.Update {
	ups := LBInsertUpdates(lb)
	for i := range ups {
		ups[i].Insert = false
	}
	return ups
}

// Graph is a random directed graph over string node names.
type Graph struct {
	Nodes []string
	Edges [][2]string
}

// RandomTree builds a random recursive tree: node i > 0 gets a uniformly
// random parent among 0..i-1, edges directed parent → child. This is the
// sparse, hierarchy-shaped topology typical of real networks, where a link
// failure affects a small subtree.
func RandomTree(n int, seed int64) Graph {
	r := rand.New(rand.NewSource(seed))
	g := Graph{Nodes: make([]string, n)}
	for i := range g.Nodes {
		g.Nodes[i] = fmt.Sprintf("n%d", i)
	}
	for i := 1; i < n; i++ {
		g.Edges = append(g.Edges, [2]string{g.Nodes[r.Intn(i)], g.Nodes[i]})
	}
	return g
}

// RandomGraph builds a graph with n nodes and m distinct random edges.
func RandomGraph(n, m int, seed int64) Graph {
	r := rand.New(rand.NewSource(seed))
	g := Graph{Nodes: make([]string, n)}
	for i := range g.Nodes {
		g.Nodes[i] = fmt.Sprintf("n%d", i)
	}
	seen := make(map[[2]string]bool, m)
	for len(g.Edges) < m && len(seen) < n*(n-1) {
		a, b := r.Intn(n), r.Intn(n)
		if a == b {
			continue
		}
		e := [2]string{g.Nodes[a], g.Nodes[b]}
		if seen[e] {
			continue
		}
		seen[e] = true
		g.Edges = append(g.Edges, e)
	}
	return g
}

// EdgeChange is one link up/down event.
type EdgeChange struct {
	Add  bool
	Edge [2]string
}

// EdgeChurn produces steps alternating deletions and re-insertions of
// random existing edges (link flaps).
func (g Graph) EdgeChurn(steps int, seed int64) []EdgeChange {
	r := rand.New(rand.NewSource(seed))
	out := make([]EdgeChange, 0, steps)
	removed := make(map[int]bool)
	for len(out) < steps {
		i := r.Intn(len(g.Edges))
		if removed[i] {
			removed[i] = false
			out = append(out, EdgeChange{Add: true, Edge: g.Edges[i]})
		} else {
			removed[i] = true
			out = append(out, EdgeChange{Add: false, Edge: g.Edges[i]})
		}
	}
	return out
}

// EdgeUpdate converts an edge change to an engine update on Edge(a, b).
func EdgeUpdate(c EdgeChange) engine.Update {
	rec := value.Record{value.String(c.Edge[0]), value.String(c.Edge[1])}
	if c.Add {
		return engine.Insert("Edge", rec)
	}
	return engine.Delete("Edge", rec)
}

// ReachabilityRules is the two-rule labeling program of the paper's §1.
const ReachabilityRules = `
input relation GivenLabel(n: string, label: string)
input relation Edge(a: string, b: string)
output relation Label(n: string, label: string)
Label(n, l) :- GivenLabel(n, l).
Label(n2, l) :- Label(n1, l), Edge(n1, n2).
`
