package workload

import (
	"testing"

	"repro/internal/dl"
	"repro/internal/dl/engine"
)

func TestRandomTreeShape(t *testing.T) {
	g := RandomTree(100, 1)
	if len(g.Nodes) != 100 || len(g.Edges) != 99 {
		t.Fatalf("tree shape: %d nodes, %d edges", len(g.Nodes), len(g.Edges))
	}
	// Every node except the root has exactly one incoming edge.
	indeg := make(map[string]int)
	for _, e := range g.Edges {
		indeg[e[1]]++
	}
	if indeg["n0"] != 0 {
		t.Errorf("root has incoming edges")
	}
	for i := 1; i < 100; i++ {
		if indeg[g.Nodes[i]] != 1 {
			t.Errorf("node %d indegree = %d", i, indeg[g.Nodes[i]])
		}
	}
	// Determinism by seed.
	g2 := RandomTree(100, 1)
	for i := range g.Edges {
		if g.Edges[i] != g2.Edges[i] {
			t.Fatalf("tree not deterministic")
		}
	}
}

func TestRandomGraphDistinctEdges(t *testing.T) {
	g := RandomGraph(20, 50, 2)
	if len(g.Edges) != 50 {
		t.Fatalf("edges = %d", len(g.Edges))
	}
	seen := make(map[[2]string]bool)
	for _, e := range g.Edges {
		if e[0] == e[1] {
			t.Errorf("self loop %v", e)
		}
		if seen[e] {
			t.Errorf("duplicate edge %v", e)
		}
		seen[e] = true
	}
}

func TestEdgeChurnAlternates(t *testing.T) {
	g := RandomTree(50, 3)
	churn := g.EdgeChurn(40, 4)
	if len(churn) != 40 {
		t.Fatalf("churn length = %d", len(churn))
	}
	// Per edge, deletions and insertions must alternate starting with a
	// deletion (the edge begins present).
	state := make(map[[2]string]bool) // true = currently removed
	for i, c := range churn {
		if c.Add == !state[c.Edge] {
			t.Fatalf("event %d: %v of edge %v in wrong state", i, c.Add, c.Edge)
		}
		state[c.Edge] = !c.Add
	}
}

func TestPortAndLearnRecordsTypeCheck(t *testing.T) {
	// The record layouts must match the generated snvs relations; the
	// bench harness relies on it. Compile a skeleton with the same shapes.
	prog, err := dl.Compile(`
		input relation Port(_uuid: string, name: string, port_num: int, tag: int, vlan_mode: string)
		input relation Learn(mac: bit<48>, vlan: bit<12>, port: bit<16>)
		output relation O(p: int)
		O(p) :- Port(_, _, p, _, _).
	`)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := prog.NewRuntime(engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Apply([]engine.Update{
		engine.Insert("Port", PortRecord(3, 10)),
		engine.Insert("Learn", LearnedRecord(1, 3, 10)),
	}); err != nil {
		t.Fatalf("records do not type-check: %v", err)
	}
}

func TestLBUpdates(t *testing.T) {
	lbs := LBs(2, 3)
	if len(lbs) != 2 || len(lbs[0].Backends) != 3 {
		t.Fatalf("lbs shape: %+v", lbs)
	}
	ins := LBInsertUpdates(lbs[0])
	if len(ins) != 4 {
		t.Fatalf("insert updates = %d", len(ins))
	}
	dels := LBDeleteUpdates(lbs[0])
	for _, d := range dels {
		if d.Insert {
			t.Fatalf("delete updates contain an insert")
		}
	}
}
