package p4of

import (
	"strings"
	"testing"

	"repro/internal/p4"
	"repro/internal/p4rt"
	"repro/internal/snvs"
)

func compileSnvs(t *testing.T) *Pipeline {
	t.Helper()
	pl, err := Compile(snvs.Pipeline())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return pl
}

func TestCompileSnvsPipeline(t *testing.T) {
	pl := compileSnvs(t)
	// Ten applied tables in control-flow order.
	wantOrder := []string{"tag_vlan", "in_vlan", "vlan_ok", "smac", "dmac",
		"flood", "acl_src", "mirror_ingress", "strip_tag", "add_tag"}
	if len(pl.Tables) != len(wantOrder) {
		t.Fatalf("tables = %d, want %d", len(pl.Tables), len(wantOrder))
	}
	for i, name := range wantOrder {
		if pl.Tables[i].Name != name || pl.Tables[i].ID != i {
			t.Errorf("table %d = %s/%d, want %s/%d",
				i, pl.Tables[i].Name, pl.Tables[i].ID, name, i)
		}
	}
	// Guards: tag_vlan requires the VLAN header, in_vlan its absence,
	// flood requires egress_spec==0.
	if g := pl.Table("tag_vlan").Guard; len(g) != 1 || g[0] != "vlan_present=1" {
		t.Errorf("tag_vlan guard = %v", g)
	}
	if g := pl.Table("in_vlan").Guard; len(g) != 1 || g[0] != "vlan_present=0" {
		t.Errorf("in_vlan guard = %v", g)
	}
	if g := pl.Table("flood").Guard; len(g) != 1 ||
		g[0] != "standard_metadata_egress_spec=0x0" {
		t.Errorf("flood guard = %v", g)
	}
	// Chaining: every non-final table gotos its successor.
	for i, ct := range pl.Tables {
		wantNext := -1
		if i+1 < len(pl.Tables) {
			wantNext = i + 1
		}
		if ct.Next != wantNext {
			t.Errorf("table %s next = %d, want %d", ct.Name, ct.Next, wantNext)
		}
	}
}

func TestFlowForEntry(t *testing.T) {
	pl := compileSnvs(t)
	fl, err := pl.FlowForEntry(&p4rt.TableEntry{
		Table:   "in_vlan",
		Matches: []p4.FieldMatch{{Value: 3}},
		Action:  "set_vlan", Params: []uint64{10},
	})
	if err != nil {
		t.Fatalf("FlowForEntry: %v", err)
	}
	if fl.Table != pl.Table("in_vlan").ID {
		t.Errorf("flow table = %d", fl.Table)
	}
	if !strings.Contains(fl.Match, "vlan_present=0") ||
		!strings.Contains(fl.Match, "standard_metadata_ingress_port=0x3") {
		t.Errorf("flow match = %q", fl.Match)
	}
	if !strings.Contains(fl.Actions, "set_field:0xa->meta_vlan") ||
		!strings.Contains(fl.Actions, "goto_table:") {
		t.Errorf("flow actions = %q", fl.Actions)
	}
	// dmac forward entry outputs and still gotos (flood is skipped by its
	// own egress_spec guard).
	fl, err = pl.FlowForEntry(&p4rt.TableEntry{
		Table:   "dmac",
		Matches: []p4.FieldMatch{{Value: 10}, {Value: 0xaa}},
		Action:  "forward", Params: []uint64{7},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fl.Actions, "output:0x7") {
		t.Errorf("dmac actions = %q", fl.Actions)
	}
	// Unknown tables are rejected.
	if _, err := pl.FlowForEntry(&p4rt.TableEntry{Table: "nope"}); err == nil {
		t.Errorf("unknown table accepted")
	}
}

func TestMissFlows(t *testing.T) {
	pl := compileSnvs(t)
	// vlan_ok's miss drops.
	miss, err := pl.MissFlow("vlan_ok")
	if err != nil || miss == nil {
		t.Fatalf("MissFlow: %v, %v", miss, err)
	}
	if miss.Priority != 0 || !strings.Contains(miss.Actions, "drop") {
		t.Errorf("vlan_ok miss = %+v", miss)
	}
	// smac's miss sends a digest to the controller and continues.
	miss, err = pl.MissFlow("smac")
	if err != nil || miss == nil {
		t.Fatal(err)
	}
	if !strings.Contains(miss.Actions, "controller(digest=learn)") ||
		!strings.Contains(miss.Actions, "goto_table:") {
		t.Errorf("smac miss = %+v", miss)
	}
}

func TestFlowsDumpAndRender(t *testing.T) {
	pl := compileSnvs(t)
	rt, err := p4.NewRuntime(snvs.Pipeline())
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.InsertEntry("in_vlan", p4.Entry{
		Matches: []p4.FieldMatch{{Value: 1}},
		Action:  "set_vlan", Params: []uint64{10},
	}); err != nil {
		t.Fatal(err)
	}
	if err := rt.InsertEntry("dmac", p4.Entry{
		Matches: []p4.FieldMatch{{Value: 10}, {Value: 0xaa}},
		Action:  "forward", Params: []uint64{2},
	}); err != nil {
		t.Fatal(err)
	}
	flows, err := pl.Flows(rt)
	if err != nil {
		t.Fatalf("Flows: %v", err)
	}
	// 2 installed entries + one miss flow per table with a default.
	misses := 0
	for _, ct := range pl.Tables {
		if ct.table.DefaultAction.Action != "" {
			misses++
		}
	}
	if len(flows) != 2+misses {
		t.Fatalf("flows = %d, want %d", len(flows), 2+misses)
	}
	// Sorted by table then priority descending.
	for i := 1; i < len(flows); i++ {
		if flows[i-1].Table > flows[i].Table {
			t.Fatalf("flows not sorted by table")
		}
		if flows[i-1].Table == flows[i].Table && flows[i-1].Priority < flows[i].Priority {
			t.Fatalf("flows not sorted by priority")
		}
	}
	text := Render(flows)
	if !strings.Contains(text, "table=1, priority=100") ||
		!strings.Contains(text, "actions=") {
		t.Errorf("render output:\n%s", text)
	}
}

func TestCompileErrors(t *testing.T) {
	// A table applied twice is out of scope.
	prog, err := p4.ParseProgram("dup", `
		header h { bit<8> f; }
		parser { state start { extract(h); transition accept; } }
		control Ingress {
			action a() { }
			table t { key = { h.f: exact; } actions = { a; } }
			apply { t.apply(); t.apply(); }
		}
		deparser { emit(h); }
	`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(prog); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Errorf("double apply accepted: %v", err)
	}
	// An else branch of an inequality guard cannot compile.
	prog, err = p4.ParseProgram("neq", `
		header h { bit<8> f; }
		parser { state start { extract(h); transition accept; } }
		control Ingress {
			action a() { }
			table t { key = { h.f: exact; } actions = { a; } }
			apply { if (h.f == 1) { } else { t.apply(); } }
		}
		deparser { emit(h); }
	`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(prog); err == nil || !strings.Contains(err.Error(), "negation") {
		t.Errorf("uncompilable else accepted: %v", err)
	}
}

func TestCompileActionEdgeCases(t *testing.T) {
	pl := compileSnvs(t)
	// Default action of tag_vlan uses a field expression source.
	miss, err := pl.MissFlow("tag_vlan")
	if err != nil || miss == nil {
		t.Fatal(err)
	}
	if !strings.Contains(miss.Actions, "set_field:vlan_vid->meta_vlan") {
		t.Errorf("tag_vlan miss = %+v", miss)
	}
	// push_tag compiles header validity manipulation.
	fl, err := pl.FlowForEntry(&p4rt.TableEntry{
		Table:   "add_tag",
		Matches: []p4.FieldMatch{{Value: 3}},
		Action:  "push_tag",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fl.Actions, "push_vlan:0x8100") {
		t.Errorf("push_tag actions = %q", fl.Actions)
	}
	// pop_tag strips.
	fl, err = pl.FlowForEntry(&p4rt.TableEntry{
		Table:   "strip_tag",
		Matches: []p4.FieldMatch{{Value: 3}},
		Action:  "pop_tag",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fl.Actions, "strip_vlan") {
		t.Errorf("pop_tag actions = %q", fl.Actions)
	}
	// clone compiles.
	fl, err = pl.FlowForEntry(&p4rt.TableEntry{
		Table:   "mirror_ingress",
		Matches: []p4.FieldMatch{{Value: 1}},
		Action:  "clone_to", Params: []uint64{4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fl.Actions, "clone(output:0x4)") {
		t.Errorf("clone actions = %q", fl.Actions)
	}
	// Unknown action is rejected; wrong match arity is rejected.
	if _, err := pl.FlowForEntry(&p4rt.TableEntry{
		Table: "dmac", Matches: []p4.FieldMatch{{Value: 1}, {Value: 2}},
		Action: "frobnicate",
	}); err == nil {
		t.Errorf("unknown action accepted")
	}
	if _, err := pl.FlowForEntry(&p4rt.TableEntry{
		Table: "dmac", Matches: []p4.FieldMatch{{Value: 1}},
		Action: "forward", Params: []uint64{1},
	}); err == nil {
		t.Errorf("short match list accepted")
	}
	if _, err := pl.MissFlow("nope"); err == nil {
		t.Errorf("unknown table MissFlow accepted")
	}
	// A table with no default action has no miss flow: none in snvs, so
	// construct one.
	prog, err := p4.ParseProgram("nd", `
		header h { bit<8> f; }
		parser { state start { extract(h); transition accept; } }
		control Ingress {
			action a() { }
			table t { key = { h.f: exact; } actions = { a; } }
			apply { t.apply(); }
		}
		deparser { emit(h); }
	`)
	if err != nil {
		t.Fatal(err)
	}
	pl2, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	miss, err = pl2.MissFlow("t")
	if err != nil || miss != nil {
		t.Errorf("no-default miss = %+v, %v", miss, err)
	}
}

func TestFlowForOptionalAndTernary(t *testing.T) {
	prog, err := p4.ParseProgram("mix", `
		header h { bit<8> a; bit<8> b; bit<16> c; }
		parser { state start { extract(h); transition accept; } }
		control Ingress {
			action ok() { }
			table t {
				key = { h.a: ternary; h.b: optional; h.c: lpm; }
				actions = { ok; }
			}
			apply { t.apply(); }
		}
		deparser { emit(h); }
	`)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := pl.FlowForEntry(&p4rt.TableEntry{
		Table: "t",
		Matches: []p4.FieldMatch{
			{Value: 0x10, Mask: 0xf0},
			{Wildcard: true},
			{Value: 0x1200, PrefixLen: 8},
		},
		Priority: 5,
		Action:   "ok",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fl.Match, "h_a=0x10/0xf0") ||
		strings.Contains(fl.Match, "h_b") ||
		!strings.Contains(fl.Match, "h_c=0x1200/8") {
		t.Errorf("match = %q", fl.Match)
	}
	if fl.Priority != 105 {
		t.Errorf("priority = %d", fl.Priority)
	}
}
