// Package p4of compiles P4 subset programs onto an OpenFlow-style
// pipeline — the "p4c-of" component the paper's repository includes so
// that Nerpa programs can run on high-performance flow-programmable
// software switches.
//
// The compilation is structural:
//
//   - every applied P4 table becomes an OpenFlow table id, numbered in
//     control-flow order (ingress first, then egress);
//   - the conditions guarding a table's application compile into match
//     guards on its flows (header validity → a presence match, field
//     equality → a field match);
//   - a control-plane table entry becomes one flow: the guard plus the
//     entry's key matches, with the action body compiled to an OpenFlow
//     action list and a goto to the next table in sequence;
//   - a table's default action becomes its priority-0 miss flow.
//
// Conditions outside this subset (disjunctions, negated comparisons over
// unsupported shapes) are rejected at compile time rather than compiled
// incorrectly.
package p4of

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/baseline"
	"repro/internal/p4"
	"repro/internal/p4rt"
)

// Flow is an OpenFlow-style rule (shared with the Fig. 3 baseline model).
type Flow = baseline.Flow

// CompiledTable is one P4 table placed in the OpenFlow pipeline.
type CompiledTable struct {
	Name  string
	ID    int
	Guard []string // match conjuncts from enclosing conditions
	Next  int      // goto target after a hit (-1: end of pipeline)
	table *p4.Table
}

// Pipeline is a compiled program.
type Pipeline struct {
	Program string
	Tables  []*CompiledTable
	byName  map[string]*CompiledTable
	prog    *p4.Program
}

// Compile lowers a validated P4 program onto the OpenFlow pipeline.
func Compile(prog *p4.Program) (*Pipeline, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	pl := &Pipeline{Program: prog.Name, byName: make(map[string]*CompiledTable), prog: prog}
	collect := func(ctl *p4.Control) error {
		if ctl == nil {
			return nil
		}
		return pl.collect(ctl.Apply, nil)
	}
	if err := collect(prog.Ingress); err != nil {
		return nil, err
	}
	if err := collect(prog.Egress); err != nil {
		return nil, err
	}
	// Chain each table to the next applied table.
	for i, ct := range pl.Tables {
		if i+1 < len(pl.Tables) {
			ct.Next = pl.Tables[i+1].ID
		} else {
			ct.Next = -1
		}
	}
	return pl, nil
}

func (pl *Pipeline) collect(stmts []p4.ControlStmt, guard []string) error {
	for _, cs := range stmts {
		switch cs := cs.(type) {
		case *p4.ApplyTable:
			if _, dup := pl.byName[cs.Table]; dup {
				return fmt.Errorf("p4of: table %q applied twice (unsupported)", cs.Table)
			}
			ct := &CompiledTable{
				Name:  cs.Table,
				ID:    len(pl.Tables),
				Guard: append([]string(nil), guard...),
				table: pl.prog.TableByName(cs.Table),
			}
			pl.Tables = append(pl.Tables, ct)
			pl.byName[cs.Table] = ct
		case *p4.If:
			thenGuard, elseGuard, err := compileCond(cs.Cond)
			if err != nil {
				return err
			}
			if err := pl.collect(cs.Then, append(append([]string(nil), guard...), thenGuard...)); err != nil {
				return err
			}
			if len(cs.Else) > 0 {
				if elseGuard == nil {
					return fmt.Errorf("p4of: condition has no compilable negation for its else branch")
				}
				if err := pl.collect(cs.Else, append(append([]string(nil), guard...), elseGuard...)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// compileCond lowers a condition to match conjuncts for the then branch
// and (when expressible) for the else branch.
func compileCond(cond p4.BoolExpr) (then, els []string, err error) {
	switch c := cond.(type) {
	case *p4.IsValid:
		return []string{c.Header + "_present=1"}, []string{c.Header + "_present=0"}, nil
	case *p4.Compare:
		l, lok := c.L.(*p4.FieldExpr)
		r, rok := c.R.(*p4.ConstExpr)
		if !lok || !rok {
			return nil, nil, fmt.Errorf("p4of: only field-to-constant comparisons compile to matches")
		}
		if c.Op != "==" {
			return nil, nil, fmt.Errorf("p4of: only == comparisons compile to matches")
		}
		// Equality has no single-flow negation in OpenFlow: no else guard.
		return []string{fmt.Sprintf("%s=%#x", fieldName(l.Ref), r.Value)}, nil, nil
	case *p4.BoolOp:
		switch c.Op {
		case "and":
			lt, _, err := compileCond(c.L)
			if err != nil {
				return nil, nil, err
			}
			rt, _, err := compileCond(c.R)
			if err != nil {
				return nil, nil, err
			}
			return append(lt, rt...), nil, nil
		case "not":
			lt, le, err := compileCond(c.L)
			if err != nil {
				return nil, nil, err
			}
			if le == nil {
				return nil, nil, fmt.Errorf("p4of: condition has no compilable negation")
			}
			return le, lt, nil
		default:
			return nil, nil, fmt.Errorf("p4of: %q conditions do not compile to OpenFlow matches", c.Op)
		}
	default:
		return nil, nil, fmt.Errorf("p4of: unsupported condition %T", cond)
	}
}

func fieldName(ref p4.FieldRef) string {
	return strings.ReplaceAll(ref.String(), ".", "_")
}

// Table returns the compiled placement of a P4 table, or nil.
func (pl *Pipeline) Table(name string) *CompiledTable { return pl.byName[name] }

// FlowForEntry compiles one installed entry into its flow.
func (pl *Pipeline) FlowForEntry(e *p4rt.TableEntry) (Flow, error) {
	ct := pl.byName[e.Table]
	if ct == nil {
		return Flow{}, fmt.Errorf("p4of: table %q is not applied by the program", e.Table)
	}
	match := append([]string(nil), ct.Guard...)
	for i, k := range ct.table.Keys {
		if i >= len(e.Matches) {
			return Flow{}, fmt.Errorf("p4of: entry for %s has %d matches, table has %d keys",
				e.Table, len(e.Matches), len(ct.table.Keys))
		}
		m := e.Matches[i]
		name := fieldName(k.Ref)
		switch k.Match {
		case p4.MatchExact:
			match = append(match, fmt.Sprintf("%s=%#x", name, m.Value))
		case p4.MatchLPM:
			match = append(match, fmt.Sprintf("%s=%#x/%d", name, m.Value, m.PrefixLen))
		case p4.MatchTernary:
			match = append(match, fmt.Sprintf("%s=%#x/%#x", name, m.Value, m.Mask))
		case p4.MatchOptional:
			if !m.Wildcard {
				match = append(match, fmt.Sprintf("%s=%#x", name, m.Value))
			}
		}
	}
	priority := 100 + e.Priority
	actions, err := pl.compileActionCall(ct, p4.ActionCall{Action: e.Action, Params: e.Params})
	if err != nil {
		return Flow{}, err
	}
	return Flow{Table: ct.ID, Priority: priority, Match: strings.Join(match, ","), Actions: actions}, nil
}

// MissFlow compiles a table's default action into its priority-0 flow
// (nil when the table has no default action).
func (pl *Pipeline) MissFlow(name string) (*Flow, error) {
	ct := pl.byName[name]
	if ct == nil {
		return nil, fmt.Errorf("p4of: table %q is not applied by the program", name)
	}
	if ct.table.DefaultAction.Action == "" {
		return nil, nil
	}
	actions, err := pl.compileActionCall(ct, ct.table.DefaultAction)
	if err != nil {
		return nil, err
	}
	return &Flow{Table: ct.ID, Priority: 0,
		Match: strings.Join(ct.Guard, ","), Actions: actions}, nil
}

// compileActionCall lowers an action body to an OpenFlow action list,
// appending the goto to the next pipeline table.
func (pl *Pipeline) compileActionCall(ct *CompiledTable, call p4.ActionCall) (string, error) {
	act := pl.prog.ActionByName(call.Action)
	if act == nil {
		return "", fmt.Errorf("p4of: unknown action %q", call.Action)
	}
	var parts []string
	terminal := false
	evalConst := func(e p4.Expr) (string, error) {
		switch e := e.(type) {
		case *p4.ConstExpr:
			return fmt.Sprintf("%#x", e.Value), nil
		case *p4.ParamExpr:
			if e.Index < len(call.Params) {
				return fmt.Sprintf("%#x", call.Params[e.Index]), nil
			}
			return fmt.Sprintf("$%s", act.Params[e.Index].Name), nil
		case *p4.FieldExpr:
			return fieldName(e.Ref), nil
		default:
			return "", fmt.Errorf("p4of: unsupported expression %T", e)
		}
	}
	for _, stmt := range act.Body {
		switch s := stmt.(type) {
		case *p4.SetField:
			v, err := evalConst(s.Expr)
			if err != nil {
				return "", err
			}
			parts = append(parts, fmt.Sprintf("set_field:%s->%s", v, fieldName(s.Ref)))
		case *p4.Output:
			v, err := evalConst(s.Port)
			if err != nil {
				return "", err
			}
			parts = append(parts, "output:"+v)
		case *p4.Multicast:
			v, err := evalConst(s.Group)
			if err != nil {
				return "", err
			}
			parts = append(parts, "group:"+v)
		case *p4.Clone:
			v, err := evalConst(s.Port)
			if err != nil {
				return "", err
			}
			parts = append(parts, fmt.Sprintf("clone(output:%s)", v))
		case *p4.Drop:
			parts = append(parts, "drop")
			terminal = true
		case *p4.EmitDigest:
			parts = append(parts, fmt.Sprintf("controller(digest=%s)", s.Digest))
		case *p4.SetValid:
			if s.Valid {
				parts = append(parts, "push_vlan:0x8100")
			} else {
				parts = append(parts, "strip_vlan")
			}
		default:
			return "", fmt.Errorf("p4of: unsupported statement %T", stmt)
		}
	}
	if !terminal && ct.Next >= 0 {
		parts = append(parts, fmt.Sprintf("goto_table:%d", ct.Next))
	}
	if len(parts) == 0 {
		parts = append(parts, "drop")
	}
	return strings.Join(parts, ","), nil
}

// Flows dumps the complete flow table for the program given the entries
// installed in a runtime, miss flows included, sorted by (table,
// -priority, match).
func (pl *Pipeline) Flows(rt *p4.Runtime) ([]Flow, error) {
	var out []Flow
	for _, ct := range pl.Tables {
		entries, err := rt.Entries(ct.Name)
		if err != nil {
			return nil, err
		}
		for i := range entries {
			e := p4rt.TableEntry{
				Table: ct.Name, Matches: entries[i].Matches,
				Priority: entries[i].Priority,
				Action:   entries[i].Action, Params: entries[i].Params,
			}
			fl, err := pl.FlowForEntry(&e)
			if err != nil {
				return nil, err
			}
			out = append(out, fl)
		}
		miss, err := pl.MissFlow(ct.Name)
		if err != nil {
			return nil, err
		}
		if miss != nil {
			out = append(out, *miss)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Table != out[j].Table {
			return out[i].Table < out[j].Table
		}
		if out[i].Priority != out[j].Priority {
			return out[i].Priority > out[j].Priority
		}
		return out[i].Match < out[j].Match
	})
	return out, nil
}

// Render prints flows in an ovs-ofctl-like format.
func Render(flows []Flow) string {
	var sb strings.Builder
	for _, f := range flows {
		match := f.Match
		if match == "" {
			match = "*"
		}
		fmt.Fprintf(&sb, "table=%d, priority=%d, %s actions=%s\n",
			f.Table, f.Priority, match, f.Actions)
	}
	return sb.String()
}
