package p4of

import (
	"strings"
	"testing"

	"repro/internal/p4"
	"repro/internal/p4rt"
)

// mustParse compiles a small one-off program for condition tests.
func mustCompile(t *testing.T, src string) *Pipeline {
	t.Helper()
	prog, err := p4.ParseProgram("cond", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pl, err := Compile(prog)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return pl
}

func wantCompileError(t *testing.T, src, substr string) {
	t.Helper()
	prog, err := p4.ParseProgram("cond", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := Compile(prog); err == nil || !strings.Contains(err.Error(), substr) {
		t.Fatalf("Compile err = %v, want substring %q", err, substr)
	}
}

const condHdr = `
header eth { bit<48> dst; bit<16> etype; }
parser { state start { extract(eth); transition accept; } }
`

func TestCondConjunction(t *testing.T) {
	pl := mustCompile(t, condHdr+`
control Ingress {
    action fwd(bit<16> p) { output(p); }
    table t { key = { eth.dst: exact; } actions = { fwd; } }
    apply {
        if (eth.isValid() && eth.etype == 0x800) { t.apply(); }
    }
}
deparser { emit(eth); }`)
	g := pl.Table("t").Guard
	if len(g) != 2 || g[0] != "eth_present=1" || g[1] != "eth_etype=0x800" {
		t.Fatalf("guard = %v", g)
	}
}

func TestCondNegatedValidity(t *testing.T) {
	// not(isValid) has a compilable negation, so both branches work.
	pl := mustCompile(t, condHdr+`
control Ingress {
    action fwd(bit<16> p) { output(p); }
    table a { key = { eth.dst: exact; } actions = { fwd; } }
    table b { key = { eth.dst: exact; } actions = { fwd; } }
    apply {
        if (!eth.isValid()) { a.apply(); } else { b.apply(); }
    }
}
deparser { emit(eth); }`)
	if g := pl.Table("a").Guard; len(g) != 1 || g[0] != "eth_present=0" {
		t.Errorf("a guard = %v", g)
	}
	if g := pl.Table("b").Guard; len(g) != 1 || g[0] != "eth_present=1" {
		t.Errorf("b guard = %v", g)
	}
}

func TestCondRejectsElseOnEquality(t *testing.T) {
	// Field equality has no single-flow negation: an else branch under it
	// must be rejected, not silently compiled wrong.
	wantCompileError(t, condHdr+`
control Ingress {
    action fwd(bit<16> p) { output(p); }
    table a { key = { eth.dst: exact; } actions = { fwd; } }
    table b { key = { eth.dst: exact; } actions = { fwd; } }
    apply {
        if (eth.etype == 0x800) { a.apply(); } else { b.apply(); }
    }
}
deparser { emit(eth); }`, "no compilable negation")
}

func TestCondRejectsDisjunction(t *testing.T) {
	wantCompileError(t, condHdr+`
control Ingress {
    action fwd(bit<16> p) { output(p); }
    table a { key = { eth.dst: exact; } actions = { fwd; } }
    apply {
        if (eth.etype == 0x800 || eth.etype == 0x806) { a.apply(); }
    }
}
deparser { emit(eth); }`, `"or" conditions`)
}

func TestCondRejectsInequalityMatch(t *testing.T) {
	wantCompileError(t, condHdr+`
control Ingress {
    action fwd(bit<16> p) { output(p); }
    table a { key = { eth.dst: exact; } actions = { fwd; } }
    apply {
        if (eth.etype != 0x800) { a.apply(); }
    }
}
deparser { emit(eth); }`, "only ==")
}

func TestCondRejectsFieldToField(t *testing.T) {
	wantCompileError(t, condHdr+`
control Ingress {
    action fwd(bit<16> p) { output(p); }
    table a { key = { eth.dst: exact; } actions = { fwd; } }
    apply {
        if (eth.etype == eth.etype) { a.apply(); }
    }
}
deparser { emit(eth); }`, "field-to-constant")
}

func TestCompileRejectsDoubleApply(t *testing.T) {
	wantCompileError(t, condHdr+`
control Ingress {
    action fwd(bit<16> p) { output(p); }
    table a { key = { eth.dst: exact; } actions = { fwd; } }
    apply { a.apply(); a.apply(); }
}
deparser { emit(eth); }`, "applied twice")
}

func TestFlowForEntryErrors(t *testing.T) {
	pl := mustCompile(t, condHdr+`
control Ingress {
    action fwd(bit<16> p) { output(p); }
    table a { key = { eth.dst: exact; } actions = { fwd; } }
    apply { a.apply(); }
}
deparser { emit(eth); }`)
	if _, err := pl.FlowForEntry(&p4rt.TableEntry{Table: "nope"}); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := pl.FlowForEntry(&p4rt.TableEntry{Table: "a", Action: "fwd"}); err == nil {
		t.Error("short match list accepted")
	}
	if _, err := pl.FlowForEntry(&p4rt.TableEntry{
		Table: "a", Action: "ghost",
		Matches: []p4.FieldMatch{{Value: 1}},
	}); err == nil {
		t.Error("unknown action accepted")
	}
	if _, err := pl.MissFlow("nope"); err == nil {
		t.Error("MissFlow on unknown table accepted")
	}
}

func TestMissFlowAbsentDefault(t *testing.T) {
	pl := mustCompile(t, condHdr+`
control Ingress {
    action fwd(bit<16> p) { output(p); }
    table a { key = { eth.dst: exact; } actions = { fwd; } }
    apply { a.apply(); }
}
deparser { emit(eth); }`)
	miss, err := pl.MissFlow("a")
	if err != nil {
		t.Fatal(err)
	}
	if miss != nil {
		t.Fatalf("table without default_action produced miss flow %+v", miss)
	}
}

func TestRenderEmptyMatch(t *testing.T) {
	out := Render([]Flow{{Table: 0, Priority: 0, Actions: "drop"}})
	if !strings.Contains(out, "table=0, priority=0, * actions=drop") {
		t.Fatalf("Render = %q", out)
	}
}
