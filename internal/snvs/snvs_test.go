package snvs

import (
	"encoding/json"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ovsdb"
	"repro/internal/p4rt"
	"repro/internal/packet"
	"repro/internal/switchsim"
)

func TestPipelineValidates(t *testing.T) {
	if err := Pipeline().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestSchemaParses(t *testing.T) {
	schema, err := Schema()
	if err != nil {
		t.Fatalf("Schema: %v", err)
	}
	if len(schema.Tables) != 5 {
		t.Fatalf("tables = %d, want 5 (the paper's snvs has 5 OVSDB tables)", len(schema.Tables))
	}
}

// stack is a fully wired in-process deployment over real TCP sockets.
type stack struct {
	t      *testing.T
	db     *ovsdb.Database
	dbc    *ovsdb.Client
	sw     *switchsim.Switch
	fabric *switchsim.Fabric
	ctrl   *core.Controller
	hosts  map[string]*switchsim.Host
}

func startStack(t *testing.T) *stack {
	t.Helper()
	schema, err := Schema()
	if err != nil {
		t.Fatal(err)
	}
	db := ovsdb.NewDatabase(schema)
	ovsdbSrv := ovsdb.NewServer(db)
	ovsdbLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ovsdbSrv.Serve(ovsdbLn)
	t.Cleanup(ovsdbSrv.Close)

	sw, err := switchsim.New("snvs0", switchsim.Config{Program: Pipeline()})
	if err != nil {
		t.Fatal(err)
	}
	p4Ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go sw.Serve(p4Ln)
	t.Cleanup(sw.Close)

	fabric := switchsim.NewFabric()
	if err := fabric.AddSwitch(sw); err != nil {
		t.Fatal(err)
	}

	dbc, err := ovsdb.Dial(ovsdbLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dbc.Close() })
	p4c, err := p4rt.Dial(p4Ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p4c.Close() })

	ctrl, err := core.New(core.Config{
		Rules:    Rules,
		Database: "snvs",
	}, dbc, p4c)
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	t.Cleanup(ctrl.Stop)

	s := &stack{t: t, db: db, dbc: dbc, sw: sw, fabric: fabric, ctrl: ctrl,
		hosts: make(map[string]*switchsim.Host)}
	return s
}

func (s *stack) host(name string, port uint16) *switchsim.Host {
	s.t.Helper()
	h, err := s.fabric.AttachHost(name, "snvs0", port)
	if err != nil {
		s.t.Fatal(err)
	}
	s.hosts[name] = h
	return h
}

func (s *stack) transact(ops ...ovsdb.Operation) {
	s.t.Helper()
	if _, err := s.dbc.TransactErr("snvs", ops...); err != nil {
		s.t.Fatalf("transact: %v", err)
	}
}

// waitEntries polls until the table holds want entries.
func (s *stack) waitEntries(table string, want int) {
	s.t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := s.ctrl.Err(); err != nil {
			s.t.Fatalf("controller failed: %v", err)
		}
		if s.sw.Runtime().EntryCount(table) == want {
			return
		}
		if time.Now().After(deadline) {
			s.t.Fatalf("table %s has %d entries, want %d",
				table, s.sw.Runtime().EntryCount(table), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func (s *stack) waitMulticast(group uint16, want int) {
	s.t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got := len(s.sw.Runtime().MulticastGroup(group)); got == want {
			return
		}
		if time.Now().After(deadline) {
			s.t.Fatalf("group %d has %d ports, want %d",
				group, len(s.sw.Runtime().MulticastGroup(group)), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func (s *stack) addAccessPort(name string, num, vlan int64) {
	s.transact(ovsdb.OpInsert("Port", map[string]ovsdb.Value{
		"name": name, "port_num": num, "vlan_mode": "access", "tag": vlan,
	}))
}

func (s *stack) addTrunkPort(name string, num int64, trunks ...int64) {
	atoms := make([]ovsdb.Atom, len(trunks))
	for i, v := range trunks {
		atoms[i] = v
	}
	s.transact(ovsdb.OpInsert("Port", map[string]ovsdb.Value{
		"name": name, "port_num": num, "vlan_mode": "trunk",
		"trunks": ovsdb.NewSet(atoms...),
	}))
}

func frame(dst, src packet.MAC) []byte {
	e := packet.Ethernet{Dst: dst, Src: src, EtherType: 0x1234}
	return append(e.Append(nil), 0xbe, 0xef)
}

func taggedFrame(dst, src packet.MAC, vid uint16) []byte {
	e := packet.Ethernet{Dst: dst, Src: src, EtherType: packet.EtherTypeVLAN}
	v := packet.VLAN{VID: vid, EtherType: 0x1234}
	return append(v.Append(e.Append(nil)), 0xbe, 0xef)
}

func TestFullStackSNVS(t *testing.T) {
	s := startStack(t)
	h1 := s.host("h1", 1)
	h2 := s.host("h2", 2)
	h3 := s.host("h3", 3) // trunk side
	h4 := s.host("h4", 4) // mirror target

	// Configure: flooding on, two access ports in VLAN 10, a trunk port
	// carrying VLANs 10 and 20.
	s.transact(ovsdb.OpInsert("SwitchCfg", map[string]ovsdb.Value{
		"name": "snvs0", "flood_unknown": true,
	}))
	s.addAccessPort("p1", 1, 10)
	s.addAccessPort("p2", 2, 10)
	s.addTrunkPort("p3", 3, 10, 20)

	// The controller computes and installs: 2 in_vlan entries, 4 vlan_ok
	// entries, flood entries for VLANs 10 and 20, tag manipulation, and
	// multicast groups.
	s.waitEntries("in_vlan", 2)
	s.waitEntries("vlan_ok", 4)
	s.waitEntries("flood", 2)
	s.waitEntries("strip_tag", 2)
	s.waitEntries("add_tag", 1)
	s.waitMulticast(4096+10, 3)
	s.waitMulticast(4096+20, 1)

	// --- Flooding + MAC learning ---
	macH1 := packet.MAC(0x00000000aa01)
	macH2 := packet.MAC(0x00000000aa02)
	if err := h1.Send(frame(0xffffffffffff, macH1)); err != nil {
		t.Fatal(err)
	}
	// Flooded to the other VLAN-10 ports: h2 untagged, h3 tagged.
	if h2.ReceivedCount() != 1 {
		t.Fatalf("h2 received %d frames", h2.ReceivedCount())
	}
	got := h3.Received()
	if len(got) != 1 {
		t.Fatalf("h3 received %d frames", len(got))
	}
	var eth packet.Ethernet
	rest, err := eth.Decode(got[0])
	if err != nil || eth.EtherType != packet.EtherTypeVLAN {
		t.Fatalf("trunk frame not tagged: %+v, %v", eth, err)
	}
	var vl packet.VLAN
	if _, err := vl.Decode(rest); err != nil || vl.VID != 10 {
		t.Fatalf("trunk tag = %+v, %v", vl, err)
	}
	h2.Received()

	// The digest taught the controller h1's MAC: smac + dmac entries.
	s.waitEntries("dmac", 1)
	s.waitEntries("smac", 1)

	// Now h2 unicasts to h1: only port 1 receives.
	if err := h2.Send(frame(macH1, macH2)); err != nil {
		t.Fatal(err)
	}
	if h1.ReceivedCount() != 1 || h3.ReceivedCount() != 0 {
		t.Fatalf("unicast: h1=%d h3=%d", h1.ReceivedCount(), h3.ReceivedCount())
	}
	h1.Received()
	s.waitEntries("dmac", 2) // h2's MAC learned too

	// --- Trunk ingress: tagged frame on VLAN 20 floods only VLAN 20 ---
	if err := h3.Send(taggedFrame(0xffffffffffff, 0xbb03, 20)); err != nil {
		t.Fatal(err)
	}
	if h1.ReceivedCount() != 0 && h2.ReceivedCount() != 0 {
		t.Fatalf("VLAN 20 leaked into VLAN 10")
	}
	// Disallowed VLAN on trunk: dropped.
	dropsBefore := s.sw.Dropped()
	if err := h3.Send(taggedFrame(0xffffffffffff, 0xbb03, 30)); err != nil {
		t.Fatal(err)
	}
	if s.sw.Dropped() != dropsBefore+1 {
		t.Fatalf("VLAN 30 not dropped")
	}

	// --- Static MACs ---
	// dmac so far: h1 and h2 learned in VLAN 10, h3's source learned in
	// VLAN 20; the static MAC makes four.
	s.transact(ovsdb.OpInsert("StaticMac", map[string]ovsdb.Value{
		"mac": int64(0xcc04), "vlan": int64(10), "port": int64(2),
	}))
	s.waitEntries("dmac", 4)

	// --- Port mirroring ---
	s.transact(ovsdb.OpInsert("Mirror", map[string]ovsdb.Value{
		"src_port": int64(1), "dst_port": int64(4),
	}))
	s.waitEntries("mirror_ingress", 1)
	if err := h1.Send(frame(macH2, macH1)); err != nil {
		t.Fatal(err)
	}
	if h4.ReceivedCount() != 1 {
		t.Fatalf("mirror target received %d frames", h4.ReceivedCount())
	}
	if h2.ReceivedCount() != 1 {
		t.Fatalf("mirrored unicast lost: h2=%d", h2.ReceivedCount())
	}
	h2.Received()
	h4.Received()

	// --- ACL: denied source is dropped but still mirrored ---
	s.transact(ovsdb.OpInsert("Acl", map[string]ovsdb.Value{
		"src_mac": int64(macH1), "deny": true,
	}))
	s.waitEntries("acl_src", 1)
	if err := h1.Send(frame(macH2, macH1)); err != nil {
		t.Fatal(err)
	}
	if h2.ReceivedCount() != 0 {
		t.Fatalf("ACL-denied frame delivered")
	}
	if h4.ReceivedCount() != 1 {
		t.Fatalf("ACL-denied frame not mirrored")
	}

	// --- Incremental retraction: deleting a port unwinds its state ---
	s.transact(ovsdb.OpDelete("Port", ovsdb.Cond("name", "==", "p2")))
	s.waitEntries("in_vlan", 1)
	s.waitEntries("vlan_ok", 3)
	s.waitMulticast(4096+10, 2)

	if err := s.ctrl.Err(); err != nil {
		t.Fatalf("controller error: %v", err)
	}
}

func TestFullStackModifyPort(t *testing.T) {
	s := startStack(t)
	s.transact(ovsdb.OpInsert("SwitchCfg", map[string]ovsdb.Value{
		"name": "snvs0", "flood_unknown": true,
	}))
	s.addAccessPort("p1", 1, 10)
	s.waitEntries("in_vlan", 1)
	s.waitMulticast(4096+10, 1)

	// Moving the port to VLAN 20 retracts VLAN 10 state and installs
	// VLAN 20 state (a monitor "modify" update).
	s.transact(ovsdb.OpUpdate("Port",
		map[string]ovsdb.Value{"tag": int64(20)},
		ovsdb.Cond("name", "==", "p1")))
	s.waitMulticast(4096+20, 1)
	s.waitMulticast(4096+10, 0)

	entries, err := s.sw.Runtime().Entries("in_vlan")
	if err != nil || len(entries) != 1 {
		t.Fatalf("in_vlan = %v, %v", entries, err)
	}
	if entries[0].Params[0] != 20 {
		t.Fatalf("in_vlan vid = %d, want 20", entries[0].Params[0])
	}
}

func TestTrunkSetModification(t *testing.T) {
	// Changing a trunk port's VLAN set is a monitor "modify" on a
	// set-valued column: the auxiliary element relation must diff
	// correctly through the whole stack.
	s := startStack(t)
	s.transact(ovsdb.OpInsert("SwitchCfg", map[string]ovsdb.Value{
		"name": "snvs0", "flood_unknown": true,
	}))
	s.addTrunkPort("p3", 3, 10, 20)
	s.waitEntries("vlan_ok", 2)

	// Replace {10,20} with {20,30,40}.
	s.transact(ovsdb.OpUpdate("Port",
		map[string]ovsdb.Value{"trunks": ovsdb.NewSet(int64(20), int64(30), int64(40))},
		ovsdb.Cond("name", "==", "p3")))
	s.waitEntries("vlan_ok", 3)
	entries, err := s.sw.Runtime().Entries("vlan_ok")
	if err != nil {
		t.Fatal(err)
	}
	got := map[uint64]bool{}
	for _, e := range entries {
		got[e.Matches[1].Value] = true
	}
	for _, want := range []uint64{20, 30, 40} {
		if !got[want] {
			t.Errorf("vlan %d missing after trunk update: %v", want, got)
		}
	}
	if got[10] {
		t.Errorf("vlan 10 not retracted")
	}
	// Mutate: add one VLAN via the OVSDB mutate op.
	s.transact(ovsdb.OpMutate("Port",
		[][3]json.RawMessage{ovsdb.Mutation("trunks", "insert", ovsdb.NewSet(int64(50)))},
		ovsdb.Cond("name", "==", "p3")))
	s.waitEntries("vlan_ok", 4)
}

func TestControllerSurfacesDataPlaneDeath(t *testing.T) {
	// Killing the switch's P4Runtime server mid-run must surface as a
	// controller error on the next push, not hang or panic.
	s := startStack(t)
	s.transact(ovsdb.OpInsert("SwitchCfg", map[string]ovsdb.Value{
		"name": "snvs0", "flood_unknown": true,
	}))
	s.addAccessPort("p1", 1, 10)
	s.waitEntries("in_vlan", 1)

	s.sw.Close()
	// The next management-plane change forces a push onto the dead
	// connection.
	s.addAccessPort("p2", 2, 10)
	deadline := time.Now().Add(5 * time.Second)
	for s.ctrl.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("controller never noticed the dead data plane")
		}
		time.Sleep(time.Millisecond)
	}
	// Stop after failure is safe and idempotent.
	s.ctrl.Stop()
	s.ctrl.Stop()
}

func TestControllerSurfacesManagementPlaneDeath(t *testing.T) {
	// Killing the OVSDB connection must likewise surface via Err().
	s := startStack(t)
	s.transact(ovsdb.OpInsert("SwitchCfg", map[string]ovsdb.Value{
		"name": "snvs0", "flood_unknown": true,
	}))
	s.addAccessPort("p1", 1, 10)
	s.waitEntries("in_vlan", 1)

	s.dbc.Close()
	deadline := time.Now().Add(5 * time.Second)
	for s.ctrl.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("controller never noticed the dead management plane")
		}
		time.Sleep(time.Millisecond)
	}
}
