package snvs

import "repro/internal/p4"

// PipelineSource is the data-plane program in P4 subset source form — the
// artifact a network programmer writes (and the "300 lines of P4" the
// paper's LoC table counts). Pipeline() parses it; a test asserts it is
// equivalent to the programmatic specification.
const PipelineSource = `
// snvs.p4 — the simple network virtual switch data plane.

header ethernet {
    bit<48> dst;
    bit<48> src;
    bit<16> etype;
}

header vlan {
    bit<3>  pcp;
    bit<1>  dei;
    bit<12> vid;
    bit<16> etype;
}

metadata {
    bit<12> vlan;
}

// MAC learning events streamed to the controller.
digest learn {
    bit<48> mac;
    bit<12> vlan;
    bit<16>  port;
}

parser {
    state start {
        extract(ethernet);
        transition select(ethernet.etype) {
            0x8100: parse_vlan;
            default: accept;
        }
    }
    state parse_vlan {
        extract(vlan);
        transition accept;
    }
}

control Ingress {
    action set_vlan(bit<12> vid) {
        meta.vlan = vid;
    }
    action use_tag() {
        meta.vlan = vlan.vid;
    }
    action vlan_allow() {
    }
    action known() {
    }
    action learn() {
        digest(learn, {ethernet.src, meta.vlan, standard_metadata.ingress_port});
    }
    action forward(bit<16> port) {
        output(port);
    }
    action set_mcast(bit<16> grp) {
        multicast(grp);
    }
    action acl_deny() {
        drop();
    }
    action clone_to(bit<16> port) {
        clone(port);
    }
    action drop_pkt() {
        drop();
    }
    action nop() {
    }

    // Untagged packets on access ports join the port's VLAN.
    table in_vlan {
        key = { standard_metadata.ingress_port: exact; }
        actions = { set_vlan; }
        default_action = drop_pkt;
    }
    // Tagged packets carry their own VLAN id.
    table tag_vlan {
        key = { standard_metadata.ingress_port: exact; }
        actions = { use_tag; }
        default_action = use_tag;
    }
    // Admission: is this VLAN allowed on this port?
    table vlan_ok {
        key = {
            standard_metadata.ingress_port: exact;
            meta.vlan: exact;
        }
        actions = { vlan_allow; }
        default_action = drop_pkt;
    }
    // Known source MACs; misses emit a learning digest.
    table smac {
        key = {
            meta.vlan: exact;
            ethernet.src: exact;
        }
        actions = { known; }
        default_action = learn;
    }
    // Unicast forwarding.
    table dmac {
        key = {
            meta.vlan: exact;
            ethernet.dst: exact;
        }
        actions = { forward; }
        default_action = nop;
    }
    // Per-VLAN flooding for unknown destinations.
    table flood {
        key = { meta.vlan: exact; }
        actions = { set_mcast; }
        default_action = nop;
    }
    // Source-MAC ACL (applies after forwarding so denies win).
    table acl_src {
        key = { ethernet.src: exact; }
        actions = { acl_deny; }
        default_action = nop;
    }
    // Ingress port mirroring via clone sessions.
    table mirror_ingress {
        key = { standard_metadata.ingress_port: exact; }
        actions = { clone_to; }
        default_action = nop;
    }

    apply {
        if (vlan.isValid()) {
            tag_vlan.apply();
        } else {
            in_vlan.apply();
        }
        vlan_ok.apply();
        smac.apply();
        dmac.apply();
        if (standard_metadata.egress_spec == 0) {
            flood.apply();
        }
        acl_src.apply();
        mirror_ingress.apply();
    }
}

control Egress {
    action push_tag() {
        vlan.setValid();
        vlan.etype = ethernet.etype;
        vlan.vid = meta.vlan;
        ethernet.etype = 0x8100;
    }
    action pop_tag() {
        ethernet.etype = vlan.etype;
        vlan.setInvalid();
    }
    // Access ports emit untagged frames.
    table strip_tag {
        key = { standard_metadata.egress_spec: exact; }
        actions = { pop_tag; }
        default_action = nop;
    }
    // Trunk ports tag frames that arrived untagged.
    table add_tag {
        key = { standard_metadata.egress_spec: exact; }
        actions = { push_tag; }
        default_action = nop;
    }

    apply {
        if (vlan.isValid()) {
            strip_tag.apply();
        } else {
            add_tag.apply();
        }
    }
}

deparser {
    emit(ethernet);
    emit(vlan);
}
`

// Pipeline parses the data-plane program from its P4 source.
func Pipeline() *p4.Program {
	prog, err := p4.ParseProgram("snvs", PipelineSource)
	if err != nil {
		// The source is a compile-time constant; failing to parse it is a
		// programming error.
		panic(err)
	}
	return prog
}
