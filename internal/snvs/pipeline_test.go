package snvs

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/p4"
)

// TestParsedEqualsSpec asserts the textual snvs.p4 and the programmatic
// specification describe the same pipeline.
func TestParsedEqualsSpec(t *testing.T) {
	parsed := Pipeline()
	spec := pipelineSpec()
	if err := parsed.Validate(); err != nil {
		t.Fatalf("parsed: %v", err)
	}
	if err := spec.Validate(); err != nil {
		t.Fatalf("spec: %v", err)
	}

	// P4Info equality covers tables, actions, and digests (sorted by name,
	// so declaration order differences don't matter).
	pi1, err := p4.BuildP4Info(parsed)
	if err != nil {
		t.Fatal(err)
	}
	pi2, err := p4.BuildP4Info(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pi1, pi2) {
		t.Errorf("P4Info differs:\nparsed: %+v\nspec:   %+v", pi1, pi2)
	}

	// Structural equality for the rest.
	if !reflect.DeepEqual(parsed.Headers, spec.Headers) {
		t.Errorf("headers differ")
	}
	if !reflect.DeepEqual(parsed.Metadata, spec.Metadata) {
		t.Errorf("metadata differs")
	}
	if !reflect.DeepEqual(parsed.Parser, spec.Parser) {
		t.Errorf("parser FSM differs:\nparsed: %+v\nspec:   %+v", parsed.Parser[0], spec.Parser[0])
	}
	if !reflect.DeepEqual(parsed.Ingress, spec.Ingress) {
		t.Errorf("ingress control differs")
	}
	if !reflect.DeepEqual(parsed.Egress, spec.Egress) {
		t.Errorf("egress control differs")
	}
	if !reflect.DeepEqual(parsed.Deparser, spec.Deparser) {
		t.Errorf("deparser differs")
	}
	// Actions compare after sorting by name (declaration order differs).
	sortActions := func(as []*p4.Action) []*p4.Action {
		out := append([]*p4.Action(nil), as...)
		sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
		return out
	}
	pa, sa := sortActions(parsed.Actions), sortActions(spec.Actions)
	if !reflect.DeepEqual(pa, sa) {
		t.Errorf("actions differ")
		for i := range pa {
			if i < len(sa) && !reflect.DeepEqual(pa[i], sa[i]) {
				t.Errorf("  first difference: parsed %+v vs spec %+v", pa[i], sa[i])
				break
			}
		}
	}
	if !reflect.DeepEqual(parsed.Tables, spec.Tables) {
		t.Errorf("tables differ")
	}
}
