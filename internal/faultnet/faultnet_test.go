package faultnet

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// tcpPair returns two ends of a real TCP connection.
func tcpPair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ch := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			ch <- c
		}
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	server := <-ch
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

func TestWriteFuseTripsAndCloses(t *testing.T) {
	client, server := tcpPair(t)
	fc := Wrap(client)
	fc.DropAfterWrite(10)
	if _, err := fc.Write([]byte("12345")); err != nil {
		t.Fatalf("first write under fuse: %v", err)
	}
	if _, err := fc.Write([]byte("67890ABCDEF")); !errors.Is(err, ErrInjected) {
		t.Fatalf("fuse write error = %v, want ErrInjected", err)
	}
	if _, err := fc.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-trip write error = %v, want ErrInjected", err)
	}
	// The inner conn closed: the peer's read must fail.
	server.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 64)
	server.Read(buf) // drain the 5+ bytes that got through
	if _, err := server.Read(buf); err == nil {
		t.Fatalf("peer read succeeded after fuse trip")
	}
}

func TestReadFuseTrips(t *testing.T) {
	client, server := tcpPair(t)
	fc := Wrap(client)
	fc.DropAfterRead(4)
	go server.Write([]byte("abcdefgh"))
	buf := make([]byte, 64)
	if _, err := io.ReadFull(fc, buf[:16]); !errors.Is(err, ErrInjected) {
		t.Fatalf("read past fuse = %v, want ErrInjected", err)
	}
}

func TestDelay(t *testing.T) {
	client, server := tcpPair(t)
	fc := Wrap(client)
	fc.SetDelay(30 * time.Millisecond)
	start := time.Now()
	if _, err := fc.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("delayed write took only %v", elapsed)
	}
	_ = server
}

func TestKillUnblocksPeerAndOnCloseFiresOnce(t *testing.T) {
	client, server := tcpPair(t)
	fc := Wrap(client)
	fires := 0
	fc.OnClose(func() { fires++ })
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 1)
		_, err := server.Read(buf)
		done <- err
	}()
	fc.Kill()
	fc.Close() // second close must not re-fire the hook
	select {
	case err := <-done:
		if err == nil {
			t.Fatalf("peer read returned nil after Kill")
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("peer read never unblocked after Kill")
	}
	if fires != 1 {
		t.Fatalf("OnClose fired %d times, want 1", fires)
	}
}

func TestDialerTracksAndKills(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, c)
		}
	}()
	d := NewDialer()
	for i := 0; i < 3; i++ {
		if _, err := d.Dial(ln.Addr().String()); err != nil {
			t.Fatal(err)
		}
	}
	if d.Live() != 3 || d.Dials() != 3 {
		t.Fatalf("live=%d dials=%d, want 3/3", d.Live(), d.Dials())
	}
	d.KillAll()
	if d.Live() != 0 {
		t.Fatalf("live=%d after KillAll, want 0", d.Live())
	}
	d.SetFail(errors.New("partition"))
	if _, err := d.Dial(ln.Addr().String()); err == nil {
		t.Fatalf("Dial succeeded under SetFail")
	}
	d.SetFail(nil)
	if _, err := d.Dial(ln.Addr().String()); err != nil {
		t.Fatalf("Dial after clearing SetFail: %v", err)
	}
}
