// Package faultnet wraps net.Conn with injectable failures — byte-count
// fuses, per-operation delay, and hard remote-style closes — so tests
// can exercise reconnect and resync paths deterministically without
// real network flakiness. A Dialer tracks every live connection it
// created, letting a test sever "the network" mid-workload with one
// call and then observe the stack heal.
package faultnet

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the error surfaced by tripped read/write fuses.
var ErrInjected = errors.New("faultnet: injected failure")

// Conn wraps an inner net.Conn with fault hooks. All knobs are safe to
// adjust concurrently with traffic.
type Conn struct {
	inner net.Conn

	// readFuse/writeFuse fail the respective direction (and close the
	// inner conn) once that many more bytes have passed; 0 = disarmed.
	readFuse  atomic.Int64
	writeFuse atomic.Int64
	// delay is added before every read and write when set.
	delay atomic.Int64 // time.Duration

	closeOnce sync.Once
	onClose   atomic.Value // func()
}

// Wrap returns a fault-injectable view of inner.
func Wrap(inner net.Conn) *Conn {
	return &Conn{inner: inner}
}

// DropAfterRead arms the read fuse: after n more bytes have been read,
// reads fail with ErrInjected and the connection closes.
func (c *Conn) DropAfterRead(n int) { c.readFuse.Store(int64(n)) }

// DropAfterWrite arms the write fuse: after n more bytes have been
// written, writes fail with ErrInjected and the connection closes.
func (c *Conn) DropAfterWrite(n int) { c.writeFuse.Store(int64(n)) }

// SetDelay adds a fixed delay before every subsequent read and write
// (0 clears it).
func (c *Conn) SetDelay(d time.Duration) { c.delay.Store(int64(d)) }

// OnClose registers a hook invoked once when the connection closes
// (whether by Kill, Close, or a tripped fuse).
func (c *Conn) OnClose(f func()) { c.onClose.Store(f) }

// Kill hard-closes the connection, as if the remote end vanished.
func (c *Conn) Kill() { c.shutdown() }

func (c *Conn) shutdown() {
	c.closeOnce.Do(func() {
		c.inner.Close()
		if f, ok := c.onClose.Load().(func()); ok && f != nil {
			f()
		}
	})
}

func (c *Conn) sleep() {
	if d := time.Duration(c.delay.Load()); d > 0 {
		time.Sleep(d)
	}
}

// burn consumes n bytes from a fuse; it reports false when the fuse
// trips (n exceeds what remains).
func burn(fuse *atomic.Int64, n int) bool {
	for {
		cur := fuse.Load()
		if cur == 0 {
			return true // disarmed
		}
		if int64(n) >= cur {
			fuse.Store(-1) // tripped; stay tripped
			return false
		}
		if cur < 0 {
			return false
		}
		if fuse.CompareAndSwap(cur, cur-int64(n)) {
			return true
		}
	}
}

func (c *Conn) Read(p []byte) (int, error) {
	c.sleep()
	if c.readFuse.Load() < 0 {
		return 0, ErrInjected
	}
	n, err := c.inner.Read(p)
	if n > 0 && !burn(&c.readFuse, n) {
		c.shutdown()
		return n, ErrInjected
	}
	return n, err
}

func (c *Conn) Write(p []byte) (int, error) {
	c.sleep()
	if c.writeFuse.Load() < 0 {
		return 0, ErrInjected
	}
	n, err := c.inner.Write(p)
	if n > 0 && !burn(&c.writeFuse, n) {
		c.shutdown()
		return n, ErrInjected
	}
	return n, err
}

func (c *Conn) Close() error {
	c.shutdown()
	return nil
}

func (c *Conn) LocalAddr() net.Addr                { return c.inner.LocalAddr() }
func (c *Conn) RemoteAddr() net.Addr               { return c.inner.RemoteAddr() }
func (c *Conn) SetDeadline(t time.Time) error      { return c.inner.SetDeadline(t) }
func (c *Conn) SetReadDeadline(t time.Time) error  { return c.inner.SetReadDeadline(t) }
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.inner.SetWriteDeadline(t) }

// Dialer dials TCP connections wrapped in fault-injectable Conns and
// tracks the live ones.
type Dialer struct {
	mu    sync.Mutex
	live  map[*Conn]bool
	dials int
	// Fail, when set, makes Dial return this error instead of connecting
	// (simulates an unreachable peer during backoff tests).
	fail error
}

// NewDialer returns an empty tracking dialer.
func NewDialer() *Dialer {
	return &Dialer{live: make(map[*Conn]bool)}
}

// SetFail forces subsequent Dials to fail with err (nil re-enables).
func (d *Dialer) SetFail(err error) {
	d.mu.Lock()
	d.fail = err
	d.mu.Unlock()
}

// Dial connects to addr over TCP and returns the wrapped connection.
func (d *Dialer) Dial(addr string) (net.Conn, error) {
	d.mu.Lock()
	failErr := d.fail
	d.dials++
	d.mu.Unlock()
	if failErr != nil {
		return nil, failErr
	}
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := Wrap(nc)
	d.mu.Lock()
	d.live[c] = true
	d.mu.Unlock()
	c.OnClose(func() {
		d.mu.Lock()
		delete(d.live, c)
		d.mu.Unlock()
	})
	return c, nil
}

// Dials reports how many Dial attempts were made (including failed
// ones).
func (d *Dialer) Dials() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dials
}

// Live reports how many tracked connections are open.
func (d *Dialer) Live() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.live)
}

// KillAll hard-closes every live tracked connection — the test's "pull
// the cable" switch.
func (d *Dialer) KillAll() {
	d.mu.Lock()
	conns := make([]*Conn, 0, len(d.live))
	for c := range d.live {
		conns = append(conns, c)
	}
	d.mu.Unlock()
	for _, c := range conns {
		c.Kill()
	}
}
