package switchsim

import (
	"net"
	"testing"
	"time"

	"repro/internal/p4"
	"repro/internal/p4rt"
	"repro/internal/packet"
)

// l2Program is a minimal learning L2 switch: flood unknown destinations,
// forward known ones, emit a digest for unknown sources.
func l2Program() *p4.Program {
	return &p4.Program{
		Name: "l2",
		Headers: []*p4.HeaderType{
			{Name: "ethernet", Fields: []p4.HeaderField{
				{Name: "dst", Bits: 48}, {Name: "src", Bits: 48}, {Name: "etype", Bits: 16},
			}},
		},
		Parser: []*p4.ParserState{
			{Name: "start", Extract: "ethernet", Next: "accept"},
		},
		Actions: []*p4.Action{
			{Name: "forward", Params: []p4.ActionParam{{Name: "port", Bits: 9}}, Body: []p4.Stmt{
				&p4.Output{Port: &p4.ParamExpr{Index: 0}},
			}},
			{Name: "flood", Body: []p4.Stmt{
				&p4.Multicast{Group: &p4.ConstExpr{Value: 1}},
			}},
			{Name: "learn", Body: []p4.Stmt{
				&p4.EmitDigest{Digest: "mac_learn", Fields: []p4.Expr{
					&p4.FieldExpr{Ref: p4.FieldRef{Header: "ethernet", Field: "src"}},
					&p4.FieldExpr{Ref: p4.FieldRef{Header: p4.StdMetaHeader, Field: p4.FieldIngress}},
				}},
			}},
			{Name: "nop"},
		},
		Tables: []*p4.Table{
			{Name: "smac",
				Keys:          []p4.TableKey{{Ref: p4.FieldRef{Header: "ethernet", Field: "src"}, Match: p4.MatchExact}},
				Actions:       []string{"nop", "learn"},
				DefaultAction: p4.ActionCall{Action: "learn"},
			},
			{Name: "dmac",
				Keys:          []p4.TableKey{{Ref: p4.FieldRef{Header: "ethernet", Field: "dst"}, Match: p4.MatchExact}},
				Actions:       []string{"forward", "flood"},
				DefaultAction: p4.ActionCall{Action: "flood"},
			},
		},
		Digests: []*p4.Digest{
			{Name: "mac_learn", Fields: []p4.DigestField{
				{Name: "mac", Bits: 48}, {Name: "port", Bits: 9},
			}},
		},
		Ingress: &p4.Control{Name: "ingress", Apply: []p4.ControlStmt{
			&p4.ApplyTable{Table: "smac"},
			&p4.ApplyTable{Table: "dmac"},
		}},
		Deparser: []string{"ethernet"},
	}
}

func frame(dst, src packet.MAC) []byte {
	e := packet.Ethernet{Dst: dst, Src: src, EtherType: 0x1234}
	return append(e.Append(nil), 0xca, 0xfe)
}

func TestFabricFloodAndForward(t *testing.T) {
	sw, err := New("s1", Config{Program: l2Program()})
	if err != nil {
		t.Fatal(err)
	}
	sw.Runtime().SetMulticastGroup(1, []uint16{1, 2, 3})
	f := NewFabric()
	if err := f.AddSwitch(sw); err != nil {
		t.Fatal(err)
	}
	h1, err := f.AttachHost("h1", "s1", 1)
	if err != nil {
		t.Fatal(err)
	}
	h2, _ := f.AttachHost("h2", "s1", 2)
	h3, _ := f.AttachHost("h3", "s1", 3)

	// Unknown destination: flood to all other ports.
	if err := h1.Send(frame(0xbb, 0xaa)); err != nil {
		t.Fatal(err)
	}
	if h1.ReceivedCount() != 0 {
		t.Errorf("sender received its own flood")
	}
	if h2.ReceivedCount() != 1 || h3.ReceivedCount() != 1 {
		t.Fatalf("flood counts: h2=%d h3=%d", h2.ReceivedCount(), h3.ReceivedCount())
	}
	h2.Received()
	h3.Received()

	// Install forwarding: dst 0xaa -> port 1; then h2 can unicast to h1.
	if err := sw.Write([]p4rt.Update{p4rt.InsertEntry(p4rt.TableEntry{
		Table: "dmac", Matches: []p4.FieldMatch{{Value: 0xaa}},
		Action: "forward", Params: []uint64{1},
	})}); err != nil {
		t.Fatal(err)
	}
	if err := h2.Send(frame(0xaa, 0xbb)); err != nil {
		t.Fatal(err)
	}
	if h1.ReceivedCount() != 1 || h3.ReceivedCount() != 0 {
		t.Fatalf("unicast counts: h1=%d h3=%d", h1.ReceivedCount(), h3.ReceivedCount())
	}
	st := sw.Stats(1)
	if st.RxPackets != 1 || st.TxPackets == 0 {
		t.Errorf("port 1 stats = %+v", st)
	}
}

func TestTwoSwitchTopology(t *testing.T) {
	s1, _ := New("s1", Config{Program: l2Program()})
	s2, _ := New("s2", Config{Program: l2Program()})
	s1.Runtime().SetMulticastGroup(1, []uint16{1, 2})
	s2.Runtime().SetMulticastGroup(1, []uint16{1, 2})
	f := NewFabric()
	f.AddSwitch(s1)
	f.AddSwitch(s2)
	// h1 -- s1:p1, s1:p2 -- s2:p1, s2:p2 -- h2
	h1, err := f.AttachHost("h1", "s1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.LinkSwitches("s1", 2, "s2", 1); err != nil {
		t.Fatal(err)
	}
	h2, err := f.AttachHost("h2", "s2", 2)
	if err != nil {
		t.Fatal(err)
	}
	// Flood crosses the inter-switch link.
	if err := h1.Send(frame(0xbb, 0xaa)); err != nil {
		t.Fatal(err)
	}
	if h2.ReceivedCount() != 1 {
		t.Fatalf("h2 received %d frames", h2.ReceivedCount())
	}
	// Link failure: traffic stops.
	f.Unlink("s1", 2)
	h2.Received()
	h1.Send(frame(0xbb, 0xaa))
	if h2.ReceivedCount() != 0 {
		t.Fatalf("frame crossed a failed link")
	}
}

func TestWriteAtomicRollback(t *testing.T) {
	sw, _ := New("s1", Config{Program: l2Program()})
	err := sw.Write([]p4rt.Update{
		p4rt.InsertEntry(p4rt.TableEntry{
			Table: "dmac", Matches: []p4.FieldMatch{{Value: 0xaa}},
			Action: "forward", Params: []uint64{1},
		}),
		p4rt.InsertEntry(p4rt.TableEntry{
			Table: "nope", Matches: []p4.FieldMatch{{Value: 1}},
			Action: "forward", Params: []uint64{1},
		}),
	})
	if err == nil {
		t.Fatalf("bad batch succeeded")
	}
	if sw.Runtime().EntryCount("dmac") != 0 {
		t.Fatalf("failed batch left %d entries", sw.Runtime().EntryCount("dmac"))
	}
	// Insert of an existing entry fails; modify succeeds.
	e := p4rt.TableEntry{Table: "dmac", Matches: []p4.FieldMatch{{Value: 0xaa}},
		Action: "forward", Params: []uint64{1}}
	if err := sw.Write([]p4rt.Update{p4rt.InsertEntry(e)}); err != nil {
		t.Fatal(err)
	}
	if err := sw.Write([]p4rt.Update{p4rt.InsertEntry(e)}); err == nil {
		t.Fatalf("duplicate insert succeeded")
	}
	e.Params = []uint64{2}
	if err := sw.Write([]p4rt.Update{p4rt.ModifyEntry(e)}); err != nil {
		t.Fatalf("modify failed: %v", err)
	}
	entries, _ := sw.ReadTable("dmac")
	if len(entries) != 1 || entries[0].Params[0] != 2 {
		t.Fatalf("entries after modify = %+v", entries)
	}
	if err := sw.Write([]p4rt.Update{p4rt.DeleteEntry(e)}); err != nil {
		t.Fatalf("delete failed: %v", err)
	}
	if err := sw.Write([]p4rt.Update{p4rt.ModifyEntry(e)}); err == nil {
		t.Fatalf("modify of missing entry succeeded")
	}
}

// startP4RT serves a switch over TCP and returns a connected client.
func startP4RT(t *testing.T, sw *Switch) *p4rt.Client {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go sw.Serve(ln)
	t.Cleanup(sw.Close)
	client, err := p4rt.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client
}

func TestP4RTEndToEnd(t *testing.T) {
	sw, _ := New("s1", Config{Program: l2Program()})
	f := NewFabric()
	f.AddSwitch(sw)
	h1, _ := f.AttachHost("h1", "s1", 1)
	h2, _ := f.AttachHost("h2", "s1", 2)
	_ = h2
	client := startP4RT(t, sw)

	info, err := client.GetP4Info()
	if err != nil {
		t.Fatalf("GetP4Info: %v", err)
	}
	if info.Program != "l2" || info.Table("dmac") == nil {
		t.Fatalf("p4info = %+v", info)
	}
	// Program the pipeline over the wire: multicast group + an entry.
	if err := client.Write(
		p4rt.SetMulticast(1, []uint16{1, 2}),
		p4rt.InsertEntry(p4rt.TableEntry{
			Table: "dmac", Matches: []p4.FieldMatch{{Value: 0xaa}},
			Action: "forward", Params: []uint64{1},
		}),
	); err != nil {
		t.Fatalf("Write: %v", err)
	}
	entries, err := client.ReadTable("dmac")
	if err != nil || len(entries) != 1 {
		t.Fatalf("ReadTable = %v, %v", entries, err)
	}
	// Digest stream: unknown source triggers mac_learn.
	digests := make(chan p4rt.DigestList, 4)
	client.OnDigest(func(dl p4rt.DigestList) { digests <- dl })
	if err := h1.Send(frame(0xaa, 0xcc)); err != nil {
		t.Fatal(err)
	}
	select {
	case dl := <-digests:
		if dl.Digest != "mac_learn" || len(dl.Messages) != 1 {
			t.Fatalf("digest = %+v", dl)
		}
		if dl.Messages[0][0] != 0xcc || dl.Messages[0][1] != 1 {
			t.Fatalf("digest fields = %v", dl.Messages[0])
		}
		// Auto-ack must reach the switch.
		deadline := time.Now().Add(2 * time.Second)
		for !sw.DigestAcked(dl.ListID) {
			if time.Now().After(deadline) {
				t.Fatalf("digest never acked")
			}
			time.Sleep(time.Millisecond)
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("no digest received")
	}
	// PacketOut reaches the host directly.
	if err := client.PacketOut(1, frame(0x1, 0x2)); err != nil {
		t.Fatalf("PacketOut: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for h1.ReceivedCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("packet-out never arrived")
		}
		time.Sleep(time.Millisecond)
	}
	// Write errors surface as RPC errors.
	if err := client.Write(p4rt.InsertEntry(p4rt.TableEntry{
		Table: "nope", Action: "forward",
	})); err == nil {
		t.Fatalf("bad write succeeded")
	}
}

func TestDigestBatching(t *testing.T) {
	sw, _ := New("s1", Config{
		Program:        l2Program(),
		DigestMaxBatch: 3,
		DigestMaxDelay: 50 * time.Millisecond,
	})
	f := NewFabric()
	f.AddSwitch(sw)
	h1, _ := f.AttachHost("h1", "s1", 1)
	client := startP4RT(t, sw)
	digests := make(chan p4rt.DigestList, 8)
	client.OnDigest(func(dl p4rt.DigestList) { digests <- dl })

	// Three unknown sources fill one batch.
	for i := 0; i < 3; i++ {
		h1.Send(frame(0xbb, packet.MAC(0x100+i)))
	}
	select {
	case dl := <-digests:
		if len(dl.Messages) != 3 {
			t.Fatalf("batch size = %d, want 3", len(dl.Messages))
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("batched digest never flushed")
	}
	// A single message flushes on the timer.
	h1.Send(frame(0xbb, 0x999))
	select {
	case dl := <-digests:
		if len(dl.Messages) != 1 {
			t.Fatalf("timer flush size = %d", len(dl.Messages))
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("timer flush never happened")
	}
}

func TestFabricErrors(t *testing.T) {
	f := NewFabric()
	sw, _ := New("s1", Config{Program: l2Program()})
	if err := f.AddSwitch(sw); err != nil {
		t.Fatal(err)
	}
	if err := f.AddSwitch(sw); err == nil {
		t.Errorf("duplicate switch accepted")
	}
	if _, err := f.AttachHost("h", "nope", 1); err == nil {
		t.Errorf("host on unknown switch accepted")
	}
	if _, err := f.AttachHost("h", "s1", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := f.AttachHost("h", "s1", 2); err == nil {
		t.Errorf("duplicate host name accepted")
	}
	if _, err := f.AttachHost("h2", "s1", 1); err == nil {
		t.Errorf("port reuse accepted")
	}
	if err := f.LinkSwitches("s1", 1, "nope", 1); err == nil {
		t.Errorf("link to unknown switch accepted")
	}
}

func TestCountersOverP4RT(t *testing.T) {
	sw, _ := New("s1", Config{Program: l2Program()})
	f := NewFabric()
	f.AddSwitch(sw)
	h1, _ := f.AttachHost("h1", "s1", 1)
	client := startP4RT(t, sw)
	if err := client.Write(p4rt.SetMulticast(1, []uint16{1, 2})); err != nil {
		t.Fatal(err)
	}
	// One flood: dmac misses, smac misses (learn digest).
	if err := h1.Send(frame(0xbb, 0xaa)); err != nil {
		t.Fatal(err)
	}
	c, err := client.ReadCounters("dmac")
	if err != nil {
		t.Fatalf("ReadCounters: %v", err)
	}
	if c.Misses != 1 || c.Hits != 0 {
		t.Fatalf("dmac counters = %+v", c)
	}
	if _, err := client.ReadCounters("nope"); err == nil {
		t.Fatalf("unknown table counters succeeded")
	}
}
