// Package switchsim is the behavioral software switch: it executes a p4
// pipeline on injected packets (the BMv2 stand-in), exposes the p4rt
// control API, batches digests toward the controller, and keeps per-port
// counters. A Fabric wires multiple switches and hosts into a topology.
package switchsim

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/p4"
	"repro/internal/p4rt"
)

// Config configures a Switch.
type Config struct {
	// Program is the pipeline to execute (required).
	Program *p4.Program
	// DigestMaxBatch flushes a digest list when it reaches this many
	// messages (default 1: immediate delivery).
	DigestMaxBatch int
	// DigestMaxDelay flushes a non-empty batch after this delay
	// (default: immediate).
	DigestMaxDelay time.Duration
}

// PortStats counts packets per port.
type PortStats struct {
	RxPackets uint64
	TxPackets uint64
}

// Switch is one simulated network device.
type Switch struct {
	name string
	rt   *p4.Runtime
	info *p4.P4Info
	srv  *p4rt.Server
	cfg  Config

	outMu  sync.RWMutex
	output func(port uint16, data []byte)

	statsMu sync.Mutex
	stats   map[uint16]*PortStats
	dropped uint64

	digestMu   sync.Mutex
	digestBuf  map[string][][]uint64
	nextListID uint64
	acked      map[uint64]bool
	flushTimer *time.Timer

	// Data-plane instruments (nil-safe; zero overhead when unset).
	mRx      *obs.Counter
	mTx      *obs.Counter
	mDropped *obs.Counter
	mDigests *obs.Counter
	mWrites  *obs.Counter
	mUpdates *obs.Counter
	rec      *obs.Recorder
	tracer   *obs.Tracer

	// lastTxn is the newest management-plane transaction applied through
	// WriteTxn; digests emitted afterwards are attributed to it (the
	// configuration generation the pipeline ran under).
	lastTxn atomic.Uint64

	// writeFault, when set, runs at the start of every Write (fault
	// injection for tests: delays, forced errors).
	writeFault atomic.Value // func([]p4rt.Update) error
}

// SetWriteFault installs a hook invoked at the start of every Write with
// the incoming updates. A non-nil return aborts the write with that
// error; the hook may also just sleep to simulate a slow device. Pass
// nil to clear. Safe to call concurrently with writes.
func (sw *Switch) SetWriteFault(f func([]p4rt.Update) error) {
	sw.writeFault.Store(&f)
}

// SetObs registers the switch's packet and control-plane counters in o's
// registry, labelled with the switch name, and attaches the flight
// recorder. A nil observer is a no-op.
func (sw *Switch) SetObs(o *obs.Observer) {
	reg := o.Reg()
	sw.rec = o.Rec()
	sw.tracer = o.Tr()
	lbl := obs.L("switch", sw.name)
	sw.mRx = reg.Counter("switchsim_rx_packets_total", "Frames injected.", lbl)
	sw.mTx = reg.Counter("switchsim_tx_packets_total", "Frames emitted.", lbl)
	sw.mDropped = reg.Counter("switchsim_dropped_packets_total", "Frames dropped by the pipeline.", lbl)
	sw.mDigests = reg.Counter("switchsim_digest_lists_total", "Digest lists sent to the controller.", lbl)
	sw.mWrites = reg.Counter("switchsim_writes_total", "Write batches applied.", lbl)
	sw.mUpdates = reg.Counter("switchsim_write_updates_total", "Individual updates applied.", lbl)
}

// New builds a switch running the program.
func New(name string, cfg Config) (*Switch, error) {
	if cfg.Program == nil {
		return nil, fmt.Errorf("switchsim: no program")
	}
	rt, err := p4.NewRuntime(cfg.Program)
	if err != nil {
		return nil, err
	}
	info, err := p4.BuildP4Info(cfg.Program)
	if err != nil {
		return nil, err
	}
	if cfg.DigestMaxBatch <= 0 {
		cfg.DigestMaxBatch = 1
	}
	sw := &Switch{
		name:      name,
		rt:        rt,
		info:      info,
		cfg:       cfg,
		stats:     make(map[uint16]*PortStats),
		digestBuf: make(map[string][][]uint64),
		acked:     make(map[uint64]bool),
	}
	sw.srv = p4rt.NewServer(sw)
	return sw, nil
}

// Name returns the switch name.
func (sw *Switch) Name() string { return sw.name }

// Runtime exposes the underlying pipeline runtime (tests, benchmarks).
func (sw *Switch) Runtime() *p4.Runtime { return sw.rt }

// SetKeepalive makes the p4rt server probe every subsequently accepted
// controller connection with echo heartbeats: misses consecutive
// failures fail the connection (half-open controllers are reaped).
func (sw *Switch) SetKeepalive(interval time.Duration, misses int) {
	sw.srv.SetKeepalive(interval, misses)
}

// Serve accepts p4rt controller connections on ln.
func (sw *Switch) Serve(ln net.Listener) error { return sw.srv.Serve(ln) }

// ListenAndServe listens on addr and serves p4rt.
func (sw *Switch) ListenAndServe(addr string) error { return sw.srv.ListenAndServe(addr) }

// Close stops the p4rt server.
func (sw *Switch) Close() { sw.srv.Close() }

// SetOutputHandler installs the function receiving every emitted frame.
func (sw *Switch) SetOutputHandler(f func(port uint16, data []byte)) {
	sw.outMu.Lock()
	defer sw.outMu.Unlock()
	sw.output = f
}

// Inject delivers a frame arriving on the given port and runs the
// pipeline; outputs are passed to the output handler.
func (sw *Switch) Inject(port uint16, data []byte) error {
	sw.statsMu.Lock()
	sw.portStats(port).RxPackets++
	sw.statsMu.Unlock()
	sw.mRx.Inc()

	res, err := sw.rt.Process(port, data)
	if err != nil {
		return fmt.Errorf("switchsim %s: %w", sw.name, err)
	}
	if res.Dropped && len(res.Outputs) == 0 {
		sw.statsMu.Lock()
		sw.dropped++
		sw.statsMu.Unlock()
		sw.mDropped.Inc()
	}
	for _, d := range res.Digests {
		sw.queueDigest(d)
	}
	sw.outMu.RLock()
	out := sw.output
	sw.outMu.RUnlock()
	for _, o := range res.Outputs {
		sw.statsMu.Lock()
		sw.portStats(o.Port).TxPackets++
		sw.statsMu.Unlock()
		sw.mTx.Inc()
		if out != nil {
			out(o.Port, o.Data)
		}
	}
	return nil
}

func (sw *Switch) portStats(port uint16) *PortStats {
	ps := sw.stats[port]
	if ps == nil {
		ps = &PortStats{}
		sw.stats[port] = ps
	}
	return ps
}

// Stats returns a copy of a port's counters.
func (sw *Switch) Stats(port uint16) PortStats {
	sw.statsMu.Lock()
	defer sw.statsMu.Unlock()
	return *sw.portStats(port)
}

// Dropped returns the number of dropped packets.
func (sw *Switch) Dropped() uint64 {
	sw.statsMu.Lock()
	defer sw.statsMu.Unlock()
	return sw.dropped
}

// --- digest batching ---

func (sw *Switch) queueDigest(d p4.DigestMessage) {
	sw.digestMu.Lock()
	sw.digestBuf[d.Digest] = append(sw.digestBuf[d.Digest], d.Fields)
	full := len(sw.digestBuf[d.Digest]) >= sw.cfg.DigestMaxBatch
	if full {
		sw.flushDigestLocked(d.Digest)
		sw.digestMu.Unlock()
		return
	}
	if sw.cfg.DigestMaxDelay > 0 {
		if sw.flushTimer == nil {
			sw.flushTimer = time.AfterFunc(sw.cfg.DigestMaxDelay, sw.FlushDigests)
		}
		sw.digestMu.Unlock()
		return
	}
	// No delay configured: flush immediately.
	sw.flushDigestLocked(d.Digest)
	sw.digestMu.Unlock()
}

// FlushDigests sends all buffered digest lists immediately.
func (sw *Switch) FlushDigests() {
	sw.digestMu.Lock()
	for name := range sw.digestBuf {
		sw.flushDigestLocked(name)
	}
	sw.digestMu.Unlock()
}

// flushDigestLocked sends one digest's buffer; digestMu must be held.
func (sw *Switch) flushDigestLocked(name string) {
	msgs := sw.digestBuf[name]
	if len(msgs) == 0 {
		return
	}
	delete(sw.digestBuf, name)
	if sw.flushTimer != nil {
		sw.flushTimer.Stop()
		sw.flushTimer = nil
	}
	sw.nextListID++
	sw.mDigests.Inc()
	txn := sw.lastTxn.Load()
	sw.rec.Append(obs.Ev("switchsim", "digest.send").WithTxn(txn).WithDevice(sw.name).
		F("list_id", int64(sw.nextListID)).
		F("messages", int64(len(msgs))))
	dl := p4rt.DigestList{Digest: name, ListID: sw.nextListID, Messages: msgs, Txn: txn}
	// Notify without holding digestMu against reentrant acks: the server
	// send path is asynchronous, so holding it is safe, but release anyway.
	go sw.srv.NotifyDigest(dl)
}

// --- p4rt.Device implementation ---

// P4Info describes the running pipeline.
func (sw *Switch) P4Info() *p4.P4Info { return sw.info }

// Write applies updates atomically: all validations run against the
// current state and applied changes are rolled back if a later update
// fails.
func (sw *Switch) Write(updates []p4rt.Update) error { return sw.WriteTxn(0, updates) }

// WriteTxn is Write attributed to the management-plane transaction that
// produced the updates (p4rt.TxnDevice). The apply is stamped into the
// flight recorder with the txn, and — when a tracer is attached — closes
// the transaction's timeline with a switch-applied stage, the trace's
// data-plane terminus.
func (sw *Switch) WriteTxn(txn uint64, updates []p4rt.Update) error {
	start := time.Now()
	err := sw.applyWrite(txn, updates)
	if err == nil && txn != 0 {
		sw.lastTxn.Store(txn)
		if sw.tracer != nil {
			attrs := obs.NewAttrs()
			attrs["updates"] = int64(len(updates))
			sw.tracer.Record(txn, "switchsim", obs.Stage{
				Name: "switch-applied", Start: start, End: time.Now(), Attrs: attrs,
			})
		}
	}
	return err
}

func (sw *Switch) applyWrite(txn uint64, updates []p4rt.Update) error {
	if fp, _ := sw.writeFault.Load().(*func([]p4rt.Update) error); fp != nil && *fp != nil {
		if err := (*fp)(updates); err != nil {
			sw.rec.Append(obs.Ev("switchsim", "write.apply").WithTxn(txn).WithDevice(sw.name).
				F("updates", int64(len(updates))).F("failed", 1))
			return fmt.Errorf("switchsim %s: injected fault: %w", sw.name, err)
		}
	}
	sw.mWrites.Inc()
	sw.mUpdates.Add(uint64(len(updates)))
	sw.rec.Append(obs.Ev("switchsim", "write.apply").WithTxn(txn).WithDevice(sw.name).
		F("updates", int64(len(updates))))
	type undo func()
	var undos []undo
	rollback := func() {
		for i := len(undos) - 1; i >= 0; i-- {
			undos[i]()
		}
	}
	for i := range updates {
		u := &updates[i]
		switch {
		case u.Entry != nil:
			e := u.Entry
			prev := sw.findEntry(e.Table, e.Matches)
			switch u.Type {
			case p4rt.UpdateInsert, p4rt.UpdateModify:
				if u.Type == p4rt.UpdateInsert && prev != nil {
					rollback()
					return fmt.Errorf("switchsim %s: table %s: entry already exists", sw.name, e.Table)
				}
				if u.Type == p4rt.UpdateModify && prev == nil {
					rollback()
					return fmt.Errorf("switchsim %s: table %s: no entry to modify", sw.name, e.Table)
				}
				if err := sw.rt.InsertEntry(e.Table, p4.Entry{
					Matches: e.Matches, Priority: e.Priority,
					Action: e.Action, Params: e.Params,
				}); err != nil {
					rollback()
					return err
				}
				table, matches, old := e.Table, e.Matches, prev
				undos = append(undos, func() {
					if old != nil {
						sw.rt.InsertEntry(table, *old)
					} else {
						sw.rt.DeleteEntry(table, matches)
					}
				})
			case p4rt.UpdateDelete:
				if err := sw.rt.DeleteEntry(e.Table, e.Matches); err != nil {
					rollback()
					return err
				}
				table, old := e.Table, prev
				undos = append(undos, func() { sw.rt.InsertEntry(table, *old) })
			default:
				rollback()
				return fmt.Errorf("switchsim %s: unknown update type %q", sw.name, u.Type)
			}
		case u.Multicast != nil:
			group := u.Multicast.Group
			old := sw.rt.MulticastGroup(group)
			sw.rt.SetMulticastGroup(group, u.Multicast.Ports)
			undos = append(undos, func() { sw.rt.SetMulticastGroup(group, old) })
		default:
			rollback()
			return fmt.Errorf("switchsim %s: empty update", sw.name)
		}
	}
	return nil
}

// findEntry returns a copy of the entry with the given matches, or nil.
func (sw *Switch) findEntry(table string, matches []p4.FieldMatch) *p4.Entry {
	e, ok := sw.rt.GetEntry(table, matches)
	if !ok {
		return nil
	}
	return &e
}

// ReadTable snapshots a table.
func (sw *Switch) ReadTable(table string) ([]p4rt.TableEntry, error) {
	entries, err := sw.rt.Entries(table)
	if err != nil {
		return nil, err
	}
	out := make([]p4rt.TableEntry, len(entries))
	for i, e := range entries {
		out[i] = p4rt.TableEntry{
			Table: table, Matches: e.Matches, Priority: e.Priority,
			Action: e.Action, Params: e.Params,
		}
	}
	return out, nil
}

// PacketOut emits a frame directly on a port, bypassing the pipeline.
func (sw *Switch) PacketOut(port uint16, data []byte) error {
	sw.statsMu.Lock()
	sw.portStats(port).TxPackets++
	sw.statsMu.Unlock()
	sw.mTx.Inc()
	sw.outMu.RLock()
	out := sw.output
	sw.outMu.RUnlock()
	if out != nil {
		out(port, data)
	}
	return nil
}

// AckDigest records a digest acknowledgement.
func (sw *Switch) AckDigest(listID uint64) {
	sw.digestMu.Lock()
	sw.acked[listID] = true
	sw.digestMu.Unlock()
}

// DigestAcked reports whether a list has been acknowledged (tests).
func (sw *Switch) DigestAcked(listID uint64) bool {
	sw.digestMu.Lock()
	defer sw.digestMu.Unlock()
	return sw.acked[listID]
}

// Counters exposes a table's hit/miss counters (p4rt.CounterReader).
func (sw *Switch) Counters(table string) (p4.TableCounters, bool) {
	return sw.rt.Counters(table)
}
