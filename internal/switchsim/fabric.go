package switchsim

import (
	"fmt"
	"sync"
)

// Fabric wires switches and hosts into a topology. A link connects a
// switch port either to another switch's port or to a host endpoint;
// frames emitted on a linked port are delivered synchronously to the peer.
type Fabric struct {
	mu       sync.Mutex
	switches map[string]*Switch
	// links maps (switch, port) → peer.
	links map[endpoint]peer
	hosts map[string]*Host
}

type endpoint struct {
	sw   string
	port uint16
}

type peer struct {
	sw   *Switch
	port uint16
	host *Host
}

// Host is a simple traffic endpoint: it records received frames and can
// send into its attached switch port.
type Host struct {
	Name string

	fabric *Fabric
	sw     *Switch
	port   uint16

	mu       sync.Mutex
	received [][]byte
}

// NewFabric creates an empty topology.
func NewFabric() *Fabric {
	return &Fabric{
		switches: make(map[string]*Switch),
		links:    make(map[endpoint]peer),
		hosts:    make(map[string]*Host),
	}
}

// AddSwitch registers a switch and installs its output handler.
func (f *Fabric) AddSwitch(sw *Switch) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.switches[sw.Name()]; dup {
		return fmt.Errorf("switchsim: switch %q already in fabric", sw.Name())
	}
	f.switches[sw.Name()] = sw
	sw.SetOutputHandler(func(port uint16, data []byte) { f.deliver(sw.Name(), port, data) })
	return nil
}

// LinkSwitches connects two switch ports.
func (f *Fabric) LinkSwitches(a string, aPort uint16, b string, bPort uint16) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	swA, swB := f.switches[a], f.switches[b]
	if swA == nil || swB == nil {
		return fmt.Errorf("switchsim: unknown switch in link %s-%s", a, b)
	}
	if err := f.checkFree(endpoint{a, aPort}); err != nil {
		return err
	}
	if err := f.checkFree(endpoint{b, bPort}); err != nil {
		return err
	}
	f.links[endpoint{a, aPort}] = peer{sw: swB, port: bPort}
	f.links[endpoint{b, bPort}] = peer{sw: swA, port: aPort}
	return nil
}

// AttachHost connects a named host to a switch port and returns it.
func (f *Fabric) AttachHost(name, sw string, port uint16) (*Host, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.switches[sw]
	if s == nil {
		return nil, fmt.Errorf("switchsim: unknown switch %q", sw)
	}
	if _, dup := f.hosts[name]; dup {
		return nil, fmt.Errorf("switchsim: host %q already attached", name)
	}
	if err := f.checkFree(endpoint{sw, port}); err != nil {
		return nil, err
	}
	h := &Host{Name: name, fabric: f, sw: s, port: port}
	f.hosts[name] = h
	f.links[endpoint{sw, port}] = peer{host: h}
	return h, nil
}

// Unlink removes the link on a switch port (link failure injection).
func (f *Fabric) Unlink(sw string, port uint16) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if p, ok := f.links[endpoint{sw, port}]; ok {
		delete(f.links, endpoint{sw, port})
		if p.sw != nil {
			delete(f.links, endpoint{p.sw.Name(), p.port})
		}
	}
}

func (f *Fabric) checkFree(e endpoint) error {
	if _, used := f.links[e]; used {
		return fmt.Errorf("switchsim: port %d of %s already linked", e.port, e.sw)
	}
	return nil
}

// deliver routes a frame emitted by a switch port to its peer. Unlinked
// ports blackhole.
func (f *Fabric) deliver(sw string, port uint16, data []byte) {
	f.mu.Lock()
	p, ok := f.links[endpoint{sw, port}]
	f.mu.Unlock()
	if !ok {
		return
	}
	if p.host != nil {
		p.host.mu.Lock()
		p.host.received = append(p.host.received, append([]byte(nil), data...))
		p.host.mu.Unlock()
		return
	}
	// Frame copies cross links so switches never share buffers.
	p.sw.Inject(p.port, append([]byte(nil), data...))
}

// Send injects a frame from the host into its switch port.
func (h *Host) Send(data []byte) error { return h.sw.Inject(h.port, data) }

// Received drains and returns the frames the host has received.
func (h *Host) Received() [][]byte {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := h.received
	h.received = nil
	return out
}

// ReceivedCount returns the number of pending received frames without
// draining them.
func (h *Host) ReceivedCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.received)
}
