// Package overlay is a tunnel-overlay network program — the OVN-style
// feature set the paper cites ("tunnel overlays, and logical-physical
// gateways"). Tenant traffic entering a leaf is encapsulated in a tunnel
// header carrying the destination leaf id and a tenant VNI; the spine
// routes on the tunnel header alone; the destination leaf decapsulates
// and delivers. Tenants are isolated end to end: forwarding tables key on
// (VNI, MAC), so identical MACs in different tenants never collide and
// cross-tenant delivery is impossible.
//
// The whole overlay — tenant assignment, encap/decap, spine routing — is
// computed by eleven rules from two management-plane tables.
package overlay

import (
	"repro/internal/ovsdb"
	"repro/internal/p4"
)

// UplinkPort is the leaf port wired to the spine.
const UplinkPort = 10

// TunnelEtherType marks encapsulated frames.
const TunnelEtherType = 0x88B5

// SchemaJSON is the management plane: tenants' hosts and the leaf fabric.
const SchemaJSON = `{
  "name": "overlay",
  "version": "1.0.0",
  "tables": {
    "Host": {
      "columns": {
        "mac": {"type": "integer"},
        "leaf": {"type": "string"},
        "port": {"type": "integer"},
        "tenant": {"type": "integer"}
      },
      "isRoot": true
    },
    "Leaf": {
      "columns": {
        "name": {"type": "string"},
        "id": {"type": "integer"},
        "spine_port": {"type": "integer"}
      },
      "indexes": [["name"], ["id"]],
      "isRoot": true
    }
  }
}`

// Schema parses the management-plane schema.
func Schema() (*ovsdb.DatabaseSchema, error) {
	return ovsdb.ParseSchema([]byte(SchemaJSON))
}

// LeafP4 is the leaf data plane: tenant classification, local delivery,
// encapsulation toward remote leaves, and decapsulation of fabric
// traffic.
const LeafP4 = `
// leaf_overlay.p4
header ethernet { bit<48> dst; bit<48> src; bit<16> etype; }
// The tunnel sits between ethernet and the payload, like a VLAN tag:
// destination leaf id, tenant VNI, and the encapsulated ethertype.
header tunnel { bit<16> dst_leaf; bit<24> vni; bit<16> next_type; }
metadata { bit<24> tenant; }

parser {
    state start {
        extract(ethernet);
        transition select(ethernet.etype) {
            0x88B5: parse_tunnel;
            default: accept;
        }
    }
    state parse_tunnel { extract(tunnel); transition accept; }
}

control Ingress {
    action set_tenant(bit<24> vni) { meta.tenant = vni; }
    action deliver(bit<16> port) { output(port); }
    action encap(bit<16> dst_leaf, bit<16> uplink) {
        tunnel.setValid();
        tunnel.dst_leaf = dst_leaf;
        tunnel.vni = meta.tenant;
        tunnel.next_type = ethernet.etype;
        ethernet.etype = 0x88B5;
        output(uplink);
    }
    action decap() {
        meta.tenant = tunnel.vni;
        ethernet.etype = tunnel.next_type;
        tunnel.setInvalid();
    }
    action drop_pkt() { drop(); }

    // Which tenant does this access port belong to?
    table tenant_tbl {
        key = { standard_metadata.ingress_port: exact; }
        actions = { set_tenant; }
        default_action = drop_pkt;
    }
    // Fabric traffic addressed to this leaf is decapsulated.
    table decap_tbl {
        key = { tunnel.dst_leaf: exact; }
        actions = { decap; }
        default_action = drop_pkt;
    }
    // Tenant-scoped delivery to a local host port.
    table dmac_local {
        key = { meta.tenant: exact; ethernet.dst: exact; }
        actions = { deliver; }
        default_action = drop_pkt;
    }
    // Tenant-scoped encapsulation toward the owning leaf.
    table dmac_remote {
        key = { meta.tenant: exact; ethernet.dst: exact; }
        actions = { encap; }
        default_action = drop_pkt;
    }

    apply {
        if (tunnel.isValid()) {
            decap_tbl.apply();
            dmac_local.apply();
        } else {
            tenant_tbl.apply();
            if (standard_metadata.egress_spec == 0) {
                dmac_local.apply();
            }
            if (standard_metadata.egress_spec == 0) {
                dmac_remote.apply();
            }
        }
    }
}
deparser { emit(ethernet); emit(tunnel); }
`

// SpineP4 is the spine data plane: it routes on the tunnel header only
// and never inspects tenant traffic.
const SpineP4 = `
// spine_overlay.p4
header ethernet { bit<48> dst; bit<48> src; bit<16> etype; }
header tunnel { bit<16> dst_leaf; bit<24> vni; bit<16> next_type; }

parser {
    state start {
        extract(ethernet);
        transition select(ethernet.etype) {
            0x88B5: parse_tunnel;
            default: reject;
        }
    }
    state parse_tunnel { extract(tunnel); transition accept; }
}

control Ingress {
    action steer(bit<16> port) { output(port); }
    action drop_pkt() { drop(); }
    table route {
        key = { tunnel.dst_leaf: exact; }
        actions = { steer; }
        default_action = drop_pkt;
    }
    apply { route.apply(); }
}
deparser { emit(ethernet); emit(tunnel); }
`

// LeafPipeline parses the leaf program.
func LeafPipeline() *p4.Program {
	prog, err := p4.ParseProgram("leaf_overlay", LeafP4)
	if err != nil {
		panic(err)
	}
	return prog
}

// SpinePipeline parses the spine program.
func SpinePipeline() *p4.Program {
	prog, err := p4.ParseProgram("spine_overlay", SpineP4)
	if err != nil {
		panic(err)
	}
	return prog
}

// Rules computes the overlay from Host and Leaf rows. Generated relation
// layouts: Host(_uuid, leaf, mac, port, tenant), Leaf(_uuid, id, name,
// spine_port); leaf relations are per-device and prefixed "Leaf", the
// spine's "Spine".
const Rules = `
// A dmac_local key pair (tenant, mac) exists on the host's own leaf...
LeafTenantTbl(l, p as bit<16>, t as bit<24>) :- Host(_, l, _, p, t).
LeafDmacLocal(l, t as bit<24>, m as bit<48>, p as bit<16>) :-
    Host(_, l, m, p, t).

// ...and every other leaf encapsulates toward the owning leaf's id.
LeafDmacRemote(l2, t as bit<24>, m as bit<48>, lid as bit<16>, 10) :-
    Host(_, l, m, _, t), Leaf(_, lid, l, _), Leaf(_, _, l2, _), l2 != l.

// Each leaf decapsulates traffic addressed to its own id.
LeafDecapTbl(l, lid as bit<16>) :- Leaf(_, lid, l, _).

// The spine steers tunnel frames by destination leaf id.
SpineRoute(lid as bit<16>, sp as bit<16>) :- Leaf(_, lid, _, sp).
`
