package overlay

import (
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ovsdb"
	"repro/internal/p4"
	"repro/internal/p4rt"
	"repro/internal/packet"
	"repro/internal/switchsim"
)

func TestPipelinesValidate(t *testing.T) {
	if err := LeafPipeline().Validate(); err != nil {
		t.Fatalf("leaf: %v", err)
	}
	if err := SpinePipeline().Validate(); err != nil {
		t.Fatalf("spine: %v", err)
	}
}

type overlayTopo struct {
	t     *testing.T
	db    *ovsdb.Client
	leaf1 *switchsim.Switch
	leaf2 *switchsim.Switch
	spine *switchsim.Switch
	ctrl  *core.Controller
	hosts map[string]*switchsim.Host
}

func startOverlay(t *testing.T) *overlayTopo {
	t.Helper()
	schema, err := Schema()
	if err != nil {
		t.Fatal(err)
	}
	db := ovsdb.NewDatabase(schema)
	srv := ovsdb.NewServer(db)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(srv.Close)

	mk := func(name string, prog *p4.Program) (*switchsim.Switch, *p4rt.Client) {
		sw, err := switchsim.New(name, switchsim.Config{Program: prog})
		if err != nil {
			t.Fatal(err)
		}
		swLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go sw.Serve(swLn)
		t.Cleanup(sw.Close)
		c, err := p4rt.Dial(swLn.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return sw, c
	}
	leaf1, c1 := mk("leaf1", LeafPipeline())
	leaf2, c2 := mk("leaf2", LeafPipeline())
	spine, cs := mk("spine", SpinePipeline())

	fabric := switchsim.NewFabric()
	for _, sw := range []*switchsim.Switch{leaf1, leaf2, spine} {
		if err := fabric.AddSwitch(sw); err != nil {
			t.Fatal(err)
		}
	}
	tp := &overlayTopo{t: t, leaf1: leaf1, leaf2: leaf2, spine: spine,
		hosts: make(map[string]*switchsim.Host)}
	for name, loc := range map[string]struct {
		sw   string
		port uint16
	}{
		"h1": {"leaf1", 1}, "h3": {"leaf1", 2}, "h5": {"leaf1", 3},
		"h2": {"leaf2", 1}, "h4": {"leaf2", 2},
	} {
		h, err := fabric.AttachHost(name, loc.sw, loc.port)
		if err != nil {
			t.Fatal(err)
		}
		tp.hosts[name] = h
	}
	if err := fabric.LinkSwitches("leaf1", UplinkPort, "spine", 1); err != nil {
		t.Fatal(err)
	}
	if err := fabric.LinkSwitches("leaf2", UplinkPort, "spine", 2); err != nil {
		t.Fatal(err)
	}

	tp.db, err = ovsdb.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tp.db.Close() })
	tp.ctrl, err = core.NewWithClasses(core.Config{
		Rules: Rules, Database: "overlay",
	}, tp.db, []core.DeviceClass{
		{Name: "Leaf", PerDevice: true, Devices: []core.Device{
			{ID: "leaf1", DP: c1}, {ID: "leaf2", DP: c2},
		}},
		{Name: "Spine", Devices: []core.Device{{ID: "spine", DP: cs}}},
	})
	if err != nil {
		t.Fatalf("controller: %v", err)
	}
	t.Cleanup(tp.ctrl.Stop)
	return tp
}

func (tp *overlayTopo) wait(sw *switchsim.Switch, table string, want int) {
	tp.t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for sw.Runtime().EntryCount(table) != want {
		if err := tp.ctrl.Err(); err != nil {
			tp.t.Fatalf("controller: %v", err)
		}
		if time.Now().After(deadline) {
			tp.t.Fatalf("%s.%s = %d entries, want %d",
				sw.Name(), table, sw.Runtime().EntryCount(table), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func ofFrame(dst, src packet.MAC) []byte {
	e := packet.Ethernet{Dst: dst, Src: src, EtherType: 0x1234}
	return append(e.Append(nil), 0xfe, 0xed)
}

func TestOverlayTenantFabric(t *testing.T) {
	tp := startOverlay(t)
	// Two tenants; tenant 200 reuses tenant 100's h1 MAC on purpose.
	const (
		macA1 = packet.MAC(0xA1) // h1 (tenant 100) AND h3 (tenant 200)
		macA2 = packet.MAC(0xA2) // h2 (tenant 100)
		macB4 = packet.MAC(0xB4) // h4 (tenant 200)
		macA5 = packet.MAC(0xA5) // h5 (tenant 100)
	)
	if _, err := tp.db.TransactErr("overlay",
		ovsdb.OpInsert("Leaf", map[string]ovsdb.Value{"name": "leaf1", "id": int64(1), "spine_port": int64(1)}),
		ovsdb.OpInsert("Leaf", map[string]ovsdb.Value{"name": "leaf2", "id": int64(2), "spine_port": int64(2)}),
		ovsdb.OpInsert("Host", map[string]ovsdb.Value{"mac": int64(macA1), "leaf": "leaf1", "port": int64(1), "tenant": int64(100)}),
		ovsdb.OpInsert("Host", map[string]ovsdb.Value{"mac": int64(macA2), "leaf": "leaf2", "port": int64(1), "tenant": int64(100)}),
		ovsdb.OpInsert("Host", map[string]ovsdb.Value{"mac": int64(macA1), "leaf": "leaf1", "port": int64(2), "tenant": int64(200)}),
		ovsdb.OpInsert("Host", map[string]ovsdb.Value{"mac": int64(macB4), "leaf": "leaf2", "port": int64(2), "tenant": int64(200)}),
		ovsdb.OpInsert("Host", map[string]ovsdb.Value{"mac": int64(macA5), "leaf": "leaf1", "port": int64(3), "tenant": int64(100)}),
	); err != nil {
		t.Fatal(err)
	}
	// leaf1 hosts: h1, h3, h5 -> 3 tenant/dmac_local entries; remote MACs
	// (h2, h4) -> 2 dmac_remote entries. Decap: own id.
	tp.wait(tp.leaf1, "tenant_tbl", 3)
	tp.wait(tp.leaf1, "dmac_local", 3)
	tp.wait(tp.leaf1, "dmac_remote", 2)
	tp.wait(tp.leaf1, "decap_tbl", 1)
	tp.wait(tp.leaf2, "dmac_remote", 3)
	tp.wait(tp.spine, "route", 2)

	h1, h2 := tp.hosts["h1"], tp.hosts["h2"]
	h3, h4, h5 := tp.hosts["h3"], tp.hosts["h4"], tp.hosts["h5"]

	// --- Cross-leaf delivery within tenant 100, via the tunnel. ---
	if err := h1.Send(ofFrame(macA2, macA1)); err != nil {
		t.Fatal(err)
	}
	got := h2.Received()
	if len(got) != 1 {
		t.Fatalf("h2 received %d frames", len(got))
	}
	// The delivered frame is the original (decapsulated).
	var eth packet.Ethernet
	rest, err := eth.Decode(got[0])
	if err != nil || eth.EtherType != 0x1234 || len(rest) != 2 {
		t.Fatalf("delivered frame not restored: %+v, %v", eth, err)
	}
	// The spine routed exactly one tunnel frame.
	if c, _ := tp.spine.Runtime().Counters("route"); c.Hits != 1 {
		t.Fatalf("spine route hits = %d", c.Hits)
	}

	// --- Same MAC, different tenants: h4 (tenant 200) reaches h3, not h1.
	if err := h4.Send(ofFrame(macA1, macB4)); err != nil {
		t.Fatal(err)
	}
	if h3.ReceivedCount() != 1 || h1.ReceivedCount() != 0 {
		t.Fatalf("tenant isolation by MAC failed: h3=%d h1=%d",
			h3.ReceivedCount(), h1.ReceivedCount())
	}
	h3.Received()

	// --- Cross-tenant traffic is dropped. ---
	drops := tp.leaf1.Dropped()
	if err := h1.Send(ofFrame(macB4, macA1)); err != nil {
		t.Fatal(err)
	}
	if tp.leaf1.Dropped() != drops+1 {
		t.Fatalf("cross-tenant frame not dropped")
	}
	if h4.ReceivedCount() != 0 {
		t.Fatalf("cross-tenant frame delivered")
	}

	// --- Same-leaf delivery does not touch the fabric. ---
	spineHits, _ := tp.spine.Runtime().Counters("route")
	if err := h1.Send(ofFrame(macA5, macA1)); err != nil {
		t.Fatal(err)
	}
	if h5.ReceivedCount() != 1 {
		t.Fatalf("local delivery failed")
	}
	if after, _ := tp.spine.Runtime().Counters("route"); after.Hits != spineHits.Hits {
		t.Fatalf("local traffic crossed the spine")
	}

	// --- Moving a host between leaves re-plumbs the overlay. ---
	if _, err := tp.db.TransactErr("overlay",
		ovsdb.OpUpdate("Host",
			map[string]ovsdb.Value{"leaf": "leaf1", "port": int64(4)},
			ovsdb.Cond("mac", "==", int64(macA2)),
			ovsdb.Cond("tenant", "==", int64(100)))); err != nil {
		t.Fatal(err)
	}
	tp.wait(tp.leaf1, "dmac_local", 4)
	tp.wait(tp.leaf1, "dmac_remote", 1)
	if err := tp.ctrl.Err(); err != nil {
		t.Fatal(err)
	}
}
