package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ovsdb"
	"repro/internal/p4"
	"repro/internal/p4rt"
	"repro/internal/snvs"
)

// fakeMP is an in-process management plane: a real ovsdb.Database fronted
// without the wire protocol.
type fakeMP struct {
	db *ovsdb.Database
}

func (f *fakeMP) GetSchema(string) (*ovsdb.DatabaseSchema, error) { return f.db.Schema(), nil }

func (f *fakeMP) Monitor(_ string, _ any, requests map[string]*ovsdb.MonitorRequest, cb func(ovsdb.TableUpdates)) (ovsdb.TableUpdates, error) {
	_, initial, err := f.db.AddMonitor(requests, func(_ uint64, tu ovsdb.TableUpdates) { cb(tu) })
	return initial, err
}

func (f *fakeMP) MonitorTxn(_ string, _ any, requests map[string]*ovsdb.MonitorRequest, cb func(uint64, ovsdb.TableUpdates)) (ovsdb.TableUpdates, error) {
	_, initial, err := f.db.AddMonitor(requests, cb)
	return initial, err
}

// fakeDP records Write calls.
type fakeDP struct {
	info *p4.P4Info

	mu       sync.Mutex
	writes   [][]p4rt.Update
	onDigest func(p4rt.DigestList)
	failNext bool
	unavail  bool
}

func (f *fakeDP) GetP4Info() (*p4.P4Info, error) { return f.info, nil }

func (f *fakeDP) Write(updates ...p4rt.Update) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.unavail {
		return fmt.Errorf("fake device down: %w", p4rt.ErrUnavailable)
	}
	if f.failNext {
		f.failNext = false
		return &failErr{}
	}
	f.writes = append(f.writes, updates)
	return nil
}

// setUnavailable simulates a transport outage: writes fail with
// p4rt.ErrUnavailable (which the controller tolerates) until cleared.
func (f *fakeDP) setUnavailable(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.unavail = on
}

type failErr struct{}

func (*failErr) Error() string { return "injected write failure" }

func (f *fakeDP) OnDigest(cb func(p4rt.DigestList)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.onDigest = cb
}

func (f *fakeDP) allUpdates() []p4rt.Update {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []p4rt.Update
	for _, w := range f.writes {
		out = append(out, w...)
	}
	return out
}

func newFakes(t *testing.T) (*fakeMP, *fakeDP) {
	t.Helper()
	schema, err := snvs.Schema()
	if err != nil {
		t.Fatal(err)
	}
	info, err := p4.BuildP4Info(snvs.Pipeline())
	if err != nil {
		t.Fatal(err)
	}
	return &fakeMP{db: ovsdb.NewDatabase(schema)}, &fakeDP{info: info}
}

func startCtrl(t *testing.T, mp *fakeMP, dp *fakeDP) *Controller {
	t.Helper()
	ctrl, err := New(Config{Rules: snvs.Rules, Database: "snvs"}, mp, dp)
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	t.Cleanup(ctrl.Stop)
	return ctrl
}

func transact(t *testing.T, mp *fakeMP, ops ...ovsdb.Operation) {
	t.Helper()
	for i, r := range mp.db.Transact(ops) {
		if r.Error != "" {
			t.Fatalf("op %d: %s (%s)", i, r.Error, r.Details)
		}
	}
}

// waitUpdates waits until the device has received at least n updates.
func waitUpdates(t *testing.T, dp *fakeDP, n int) []p4rt.Update {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		ups := dp.allUpdates()
		if len(ups) >= n {
			return ups
		}
		if time.Now().After(deadline) {
			t.Fatalf("device has %d updates, want >= %d", len(ups), n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestControllerRequiresDevices(t *testing.T) {
	mp, _ := newFakes(t)
	if _, err := New(Config{Rules: snvs.Rules, Database: "snvs"}, mp); err == nil {
		t.Fatalf("New without devices succeeded")
	}
}

func TestControllerRejectsBadRules(t *testing.T) {
	mp, dp := newFakes(t)
	_, err := New(Config{Rules: `InVlan(p) :- Port(p).`, Database: "snvs"}, mp, dp)
	if err == nil || !strings.Contains(err.Error(), "columns") {
		t.Fatalf("bad rules accepted: %v", err)
	}
}

func TestControllerInitialSnapshot(t *testing.T) {
	mp, dp := newFakes(t)
	// Rows inserted before the controller starts arrive via the initial
	// monitor dump.
	transact(t, mp,
		ovsdb.OpInsert("SwitchCfg", map[string]ovsdb.Value{"name": "s", "flood_unknown": true}),
		ovsdb.OpInsert("Port", map[string]ovsdb.Value{
			"name": "p1", "port_num": int64(1), "vlan_mode": "access", "tag": int64(10),
		}),
	)
	ctrl := startCtrl(t, mp, dp)
	if err := ctrl.Barrier(); err != nil {
		t.Fatal(err)
	}
	ups := dp.allUpdates()
	var sawInVlan, sawMcast bool
	for _, u := range ups {
		if u.Entry != nil && u.Entry.Table == "in_vlan" {
			sawInVlan = true
		}
		if u.Multicast != nil && u.Multicast.Group == 4096+10 {
			sawMcast = true
		}
	}
	if !sawInVlan || !sawMcast {
		t.Fatalf("initial push missing entries: %+v", ups)
	}
}

func TestControllerModifyProducesDeleteBeforeInsert(t *testing.T) {
	mp, dp := newFakes(t)
	transact(t, mp, ovsdb.OpInsert("Port", map[string]ovsdb.Value{
		"name": "p1", "port_num": int64(1), "vlan_mode": "access", "tag": int64(10),
	}))
	ctrl := startCtrl(t, mp, dp)
	if err := ctrl.Barrier(); err != nil {
		t.Fatal(err)
	}
	before := len(dp.allUpdates())
	transact(t, mp, ovsdb.OpUpdate("Port",
		map[string]ovsdb.Value{"tag": int64(20)}, ovsdb.Cond("name", "==", "p1")))
	ups := waitUpdates(t, dp, before+1)[before:]
	// The in_vlan change is a modify of the same match key: the delete of
	// the old entry must precede the insert of the new one.
	delIdx, insIdx := -1, -1
	for i, u := range ups {
		if u.Entry == nil || u.Entry.Table != "in_vlan" {
			continue
		}
		switch u.Type {
		case p4rt.UpdateDelete:
			delIdx = i
		case p4rt.UpdateInsert:
			insIdx = i
		}
	}
	if delIdx == -1 || insIdx == -1 || delIdx > insIdx {
		t.Fatalf("modify ordering wrong: del=%d ins=%d in %+v", delIdx, insIdx, ups)
	}
}

func TestControllerDigestFeedback(t *testing.T) {
	mp, dp := newFakes(t)
	transact(t, mp,
		ovsdb.OpInsert("Port", map[string]ovsdb.Value{
			"name": "p1", "port_num": int64(1), "vlan_mode": "access", "tag": int64(10),
		}),
	)
	ctrl := startCtrl(t, mp, dp)
	if err := ctrl.Barrier(); err != nil {
		t.Fatal(err)
	}
	before := len(dp.allUpdates())
	dp.onDigest(p4rt.DigestList{Digest: "learn", ListID: 1, Messages: [][]uint64{
		{0xaa, 10, 1},
	}})
	ups := waitUpdates(t, dp, before+1)[before:]
	var sawDmac, sawSmac bool
	for _, u := range ups {
		if u.Entry != nil && u.Entry.Table == "dmac" && u.Entry.Params[0] == 1 {
			sawDmac = true
		}
		if u.Entry != nil && u.Entry.Table == "smac" {
			sawSmac = true
		}
	}
	if !sawDmac || !sawSmac {
		t.Fatalf("digest did not produce learning entries: %+v", ups)
	}
	// A duplicate digest is idempotent: no further writes.
	if err := ctrl.Barrier(); err != nil {
		t.Fatal(err)
	}
	count := len(dp.allUpdates())
	dp.onDigest(p4rt.DigestList{Digest: "learn", ListID: 2, Messages: [][]uint64{
		{0xaa, 10, 1},
	}})
	if err := ctrl.Barrier(); err != nil {
		t.Fatal(err)
	}
	if len(dp.allUpdates()) != count {
		t.Fatalf("duplicate digest produced writes")
	}
	// Malformed digests (overflowing fields) poison the controller.
	dp.onDigest(p4rt.DigestList{Digest: "learn", ListID: 3, Messages: [][]uint64{
		{0xaa, 1 << 13, 1},
	}})
	deadline := time.Now().Add(2 * time.Second)
	for ctrl.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatalf("bad digest did not surface an error")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestControllerWriteFailureStops(t *testing.T) {
	mp, dp := newFakes(t)
	ctrl := startCtrl(t, mp, dp)
	if err := ctrl.Barrier(); err != nil {
		t.Fatal(err)
	}
	dp.mu.Lock()
	dp.failNext = true
	dp.mu.Unlock()
	transact(t, mp, ovsdb.OpInsert("Port", map[string]ovsdb.Value{
		"name": "p1", "port_num": int64(1), "vlan_mode": "access", "tag": int64(10),
	}))
	deadline := time.Now().Add(5 * time.Second)
	for ctrl.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatalf("write failure did not stop the controller")
		}
		time.Sleep(time.Millisecond)
	}
	if !strings.Contains(ctrl.Err().Error(), "injected") {
		t.Fatalf("unexpected error: %v", ctrl.Err())
	}
}

func TestControllerTxnStats(t *testing.T) {
	mp, dp := newFakes(t)
	var mu sync.Mutex
	var stats []TxnStats
	cfg := Config{Rules: snvs.Rules, Database: "snvs", OnTxn: func(s TxnStats) {
		mu.Lock()
		stats = append(stats, s)
		mu.Unlock()
	}}
	ctrl, err := New(cfg, mp, dp)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Stop()
	transact(t, mp, ovsdb.OpInsert("Port", map[string]ovsdb.Value{
		"name": "p1", "port_num": int64(1), "vlan_mode": "access", "tag": int64(10),
	}))
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		var ovsdbSeen bool
		for _, s := range stats {
			if s.Source == "ovsdb" && s.InputUpdates > 0 {
				ovsdbSeen = true
			}
		}
		mu.Unlock()
		if ovsdbSeen {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no ovsdb TxnStats observed: %+v", stats)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestControllerContentsAndProgram(t *testing.T) {
	mp, dp := newFakes(t)
	ctrl := startCtrl(t, mp, dp)
	if ctrl.Program() == nil || ctrl.Generated() == nil {
		t.Fatalf("accessors returned nil")
	}
	if _, err := ctrl.Contents("InVlan"); err != nil {
		t.Fatalf("Contents: %v", err)
	}
	if _, err := ctrl.Contents("Nope"); err == nil {
		t.Fatalf("Contents(Nope) succeeded")
	}
}
