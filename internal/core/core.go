package core
