package core

import (
	"net"
	"testing"
	"time"

	"repro/internal/ovsdb"
	"repro/internal/p4"
	"repro/internal/p4rt"
	"repro/internal/packet"
	"repro/internal/switchsim"
)

// The L3 router scenario drives the LPM and ternary codegen paths through
// the full stack: routes with prefix lengths and ACLs with masks and
// priorities flow from OVSDB rows to installed entries to packet
// behaviour.

const routerSchema = `{
  "name": "router",
  "tables": {
    "Route": {
      "columns": {
        "prefix": {"type": "integer"},
        "plen": {"type": "integer"},
        "port": {"type": "integer"}
      },
      "isRoot": true
    },
    "AclRule": {
      "columns": {
        "src": {"type": "integer"},
        "mask": {"type": "integer"},
        "prio": {"type": "integer"}
      },
      "isRoot": true
    }
  }
}`

const routerP4 = `
header ethernet { bit<48> dst; bit<48> src; bit<16> etype; }
header ipv4 {
    bit<4> version; bit<4> ihl; bit<8> tos; bit<16> len;
    bit<16> id; bit<3> flags; bit<13> frag; bit<8> ttl;
    bit<8> proto; bit<16> csum; bit<32> src; bit<32> dst;
}
parser {
    state start {
        extract(ethernet);
        transition select(ethernet.etype) {
            0x0800: parse_ip;
            default: reject;
        }
    }
    state parse_ip { extract(ipv4); transition accept; }
}
control Ingress {
    action route(bit<16> port) { output(port); }
    action deny() { drop(); }
    action nop() { }
    table routes {
        key = { ipv4.dst: lpm; }
        actions = { route; }
    }
    table acl {
        key = { ipv4.src: ternary; }
        actions = { deny; }
        default_action = nop;
    }
    apply {
        routes.apply();
        acl.apply();
    }
}
deparser { emit(ethernet); emit(ipv4); }
`

// Generated input relations order columns alphabetically:
// Route(_uuid, plen, port, prefix) and AclRule(_uuid, mask, prio, src).
const routerRules = `
Routes(p as bit<32>, plen, port as bit<16>) :- Route(_, plen, port, p).
Acl(s as bit<32>, m as bit<32>, prio) :- AclRule(_, m, prio, s).
`

func startRouterStack(t *testing.T) (*ovsdb.Client, *switchsim.Switch, *switchsim.Fabric, *Controller) {
	t.Helper()
	schema, err := ovsdb.ParseSchema([]byte(routerSchema))
	if err != nil {
		t.Fatal(err)
	}
	db := ovsdb.NewDatabase(schema)
	srv := ovsdb.NewServer(db)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(srv.Close)

	prog, err := p4.ParseProgram("router", routerP4)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := switchsim.New("r0", switchsim.Config{Program: prog})
	if err != nil {
		t.Fatal(err)
	}
	swLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go sw.Serve(swLn)
	t.Cleanup(sw.Close)
	fabric := switchsim.NewFabric()
	if err := fabric.AddSwitch(sw); err != nil {
		t.Fatal(err)
	}

	dbc, err := ovsdb.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dbc.Close() })
	p4c, err := p4rt.Dial(swLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p4c.Close() })
	ctrl, err := New(Config{Rules: routerRules, Database: "router"}, dbc, p4c)
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	t.Cleanup(ctrl.Stop)
	return dbc, sw, fabric, ctrl
}

func ipFrame(src, dst packet.IPv4) []byte {
	e := packet.Ethernet{Dst: 0x1, Src: 0x2, EtherType: packet.EtherTypeIPv4}
	ip := packet.IP{TTL: 64, Protocol: packet.ProtoUDP, Src: src, Dst: dst}
	return append(e.Append(nil), ip.Append(nil, 0)...)
}

func TestControllerLPMAndTernary(t *testing.T) {
	dbc, sw, fabric, ctrl := startRouterStack(t)
	h1, err := fabric.AttachHost("h1", "r0", 1)
	if err != nil {
		t.Fatal(err)
	}
	h2, _ := fabric.AttachHost("h2", "r0", 2)
	h3, _ := fabric.AttachHost("h3", "r0", 3)

	net10, _ := packet.ParseIPv4("10.0.0.0")
	net10_1, _ := packet.ParseIPv4("10.1.0.0")
	blockNet, _ := packet.ParseIPv4("192.168.0.0")
	if _, err := dbc.TransactErr("router",
		ovsdb.OpInsert("Route", map[string]ovsdb.Value{
			"prefix": int64(net10), "plen": int64(8), "port": int64(2),
		}),
		ovsdb.OpInsert("Route", map[string]ovsdb.Value{
			"prefix": int64(net10_1), "plen": int64(16), "port": int64(3),
		}),
		ovsdb.OpInsert("AclRule", map[string]ovsdb.Value{
			"src": int64(blockNet), "mask": int64(0xffff0000), "prio": int64(10),
		}),
	); err != nil {
		t.Fatal(err)
	}
	waitCount := func(table string, want int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for sw.Runtime().EntryCount(table) != want {
			if err := ctrl.Err(); err != nil {
				t.Fatalf("controller: %v", err)
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s has %d entries, want %d", table, sw.Runtime().EntryCount(table), want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitCount("routes", 2)
	waitCount("acl", 1)

	// Verify the installed LPM entry carries the prefix length and the
	// ternary entry its mask and priority.
	routes, _ := sw.Runtime().Entries("routes")
	plens := map[int]bool{}
	for _, e := range routes {
		plens[e.Matches[0].PrefixLen] = true
	}
	if !plens[8] || !plens[16] {
		t.Fatalf("prefix lengths = %v", routes)
	}
	acls, _ := sw.Runtime().Entries("acl")
	if acls[0].Matches[0].Mask != 0xffff0000 || acls[0].Priority != 10 {
		t.Fatalf("acl entry = %+v", acls[0])
	}

	// Longest prefix wins: 10.1.x.x → port 3, other 10.x → port 2.
	src, _ := packet.ParseIPv4("172.16.0.1")
	dst1, _ := packet.ParseIPv4("10.1.2.3")
	dst2, _ := packet.ParseIPv4("10.9.9.9")
	if err := h1.Send(ipFrame(src, dst1)); err != nil {
		t.Fatal(err)
	}
	if h3.ReceivedCount() != 1 || h2.ReceivedCount() != 0 {
		t.Fatalf("LPM /16: h2=%d h3=%d", h2.ReceivedCount(), h3.ReceivedCount())
	}
	h3.Received()
	if err := h1.Send(ipFrame(src, dst2)); err != nil {
		t.Fatal(err)
	}
	if h2.ReceivedCount() != 1 {
		t.Fatalf("LPM /8 fallback: h2=%d", h2.ReceivedCount())
	}
	h2.Received()

	// The ACL drops sources in 192.168/16 even though a route matches.
	blocked, _ := packet.ParseIPv4("192.168.5.5")
	if err := h1.Send(ipFrame(blocked, dst2)); err != nil {
		t.Fatal(err)
	}
	if h2.ReceivedCount() != 0 {
		t.Fatalf("ACL did not drop: h2=%d", h2.ReceivedCount())
	}

	// Withdrawing the /16 shifts traffic to the /8.
	if _, err := dbc.TransactErr("router",
		ovsdb.OpDelete("Route", ovsdb.Cond("plen", "==", int64(16)))); err != nil {
		t.Fatal(err)
	}
	waitCount("routes", 1)
	if err := h1.Send(ipFrame(src, dst1)); err != nil {
		t.Fatal(err)
	}
	if h2.ReceivedCount() != 1 || h3.ReceivedCount() != 0 {
		t.Fatalf("after withdraw: h2=%d h3=%d", h2.ReceivedCount(), h3.ReceivedCount())
	}
}
