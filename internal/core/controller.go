// Package core implements the Nerpa controller: the state-synchronization
// loop at the center of the paper's architecture (Fig. 4).
//
// The controller compiles the generated relation declarations together
// with the hand-written control-plane rules (type-checking all three
// planes against each other), subscribes to management-plane changes via
// an OVSDB monitor, converts each committed transaction into an
// incremental engine transaction, and pushes the resulting output-relation
// deltas to the data plane as P4Runtime writes. Data-plane digests flow
// back into input relations, closing the feedback loop (e.g. MAC
// learning).
//
// Devices are organized into classes, each running its own P4 program
// (the paper's §4.1 generalization: spine and leaf switches, say). A
// class's relations are name-prefixed with the class name, and a class
// may be per-device: its output relations then carry a leading device
// column so rules compute different entries for different switches.
//
// All events are serialized through one loop goroutine, so the engine sees
// a single totally-ordered stream of transactions.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codegen"
	"repro/internal/dl"
	"repro/internal/dl/ast"
	"repro/internal/dl/engine"
	"repro/internal/dl/value"
	"repro/internal/obs"
	"repro/internal/ovsdb"
	"repro/internal/p4"
	"repro/internal/p4rt"
)

// DataPlane is the controller's view of one managed device (implemented
// by *p4rt.Client and by in-process fakes in tests/benchmarks).
type DataPlane interface {
	GetP4Info() (*p4.P4Info, error)
	Write(updates ...p4rt.Update) error
	OnDigest(func(p4rt.DigestList))
}

// TxnWriter is optionally implemented by data planes that can attach the
// originating management-plane transaction to a write (*p4rt.Client and
// *p4rt.ResilientClient do). Observed controllers use it to extend each
// transaction's trace across the process boundary into the switch, which
// stamps its apply events and records the switch-applied stage. Detected
// by interface assertion, like the management plane's MonitorTxn.
type TxnWriter interface {
	WriteTxn(txn uint64, updates ...p4rt.Update) error
}

// ManagementPlane is the controller's view of the configuration database
// (implemented by *ovsdb.Client).
type ManagementPlane interface {
	GetSchema(db string) (*ovsdb.DatabaseSchema, error)
	Monitor(db string, id any, requests map[string]*ovsdb.MonitorRequest, cb func(ovsdb.TableUpdates)) (ovsdb.TableUpdates, error)
}

// Device is one managed switch: an id (usable in per-device relations)
// plus its control connection.
type Device struct {
	ID string
	DP DataPlane
}

// DeviceClass groups devices running the same P4 program.
type DeviceClass struct {
	// Name prefixes the class's generated relations (empty for the
	// single-class case: relations keep their plain names).
	Name string
	// PerDevice adds a leading device column to the class's relations, so
	// rules target individual switches by id.
	PerDevice bool
	Devices   []Device
}

// Config configures a Controller.
type Config struct {
	// Rules is the hand-written control-plane program (rules only; the
	// relation declarations are generated).
	Rules string
	// ExtraDecls holds additional hand-written declarations (typedefs,
	// intermediate relations) prepended with the generated ones.
	ExtraDecls string
	// Database is the OVSDB database name.
	Database string
	// EngineOptions tune the incremental engine.
	EngineOptions engine.Options
	// PushWorkers bounds how many devices receive their P4Runtime writes
	// concurrently when a delta touches several switches. 0 selects the
	// default (8); 1 serializes all writes. Updates destined for the same
	// device are always issued in order on one goroutine, and the push
	// reports success only after every device's writes complete (barrier
	// before ack).
	PushWorkers int
	// CoalesceMaxTxns bounds how many adjacent OVSDB-delivered commits the
	// event loop merges into a single engine transaction before applying.
	// 0 or 1 disables coalescing (every commit applies individually).
	// Merging amortizes the fixed per-apply cost (evaluation setup, delta
	// collection, data-plane push barrier) across a burst of small
	// commits; per-commit trace and provenance attribution is preserved
	// via per-segment accounting.
	CoalesceMaxTxns int
	// CoalesceMaxUpdates flushes a merged batch once it carries at least
	// this many input updates, regardless of how many commits merged so
	// far. 0 selects the default (1024). Only meaningful when
	// CoalesceMaxTxns > 1.
	CoalesceMaxUpdates int
	// CoalesceWindow is how long the loop waits for further commits to
	// arrive after the first before applying a not-yet-full batch. 0
	// merges only commits already queued (no added latency).
	CoalesceWindow time.Duration
	// OnTxn, when set, is called after every applied transaction with
	// processing statistics (used by the evaluation harness). The same
	// numbers also feed the Obs registry, so the two always agree.
	OnTxn func(TxnStats)
	// OnDelta, when set, receives every non-empty output delta right
	// after the data-plane push, on the event-loop goroutine, attributed
	// with the transaction that produced it (0 for the initial sync; a
	// coalesced batch reports the last merged commit's ID). The callee
	// must treat the delta as read-only and return quickly — it runs
	// inside the serialization point of the controller. This is the tap
	// the pub/sub fan-out (internal/subscribe) attaches to.
	OnDelta func(txn uint64, delta engine.Delta)
	// Obs, when set, receives controller metrics (registry) and per-txn
	// commit→delta→push timelines (tracer). Setting it also enables
	// engine statistics collection so per-stratum and per-worker timings
	// are exposed. nil disables all instrumentation at zero cost.
	Obs *obs.Observer
	// DisableTxnWrites keeps device writes in the legacy wire form even
	// when the controller is observed and the data plane implements
	// TxnWriter: no transaction metadata crosses the P4RT boundary.
	// Useful against pre-txn switches and for isolating the propagation's
	// cost in benchmarks. The default (false) propagates txn IDs whenever
	// the controller is observed.
	DisableTxnWrites bool
	// Profile enables the continuous workload profiler: per-rule
	// cost/cardinality attribution (dl_rule_* metrics, /debug/rules,
	// incident rule breakdowns) and periodic memory accounting snapshots
	// (dl_mem_*, /debug/memory). Requires Obs. The attribution adds
	// bookkeeping to the engine's evaluation paths, so it is opt-in; the
	// obs-overhead benchmark's "profiler" mode prices it.
	Profile bool
}

// defaultPushWorkers is the device-write concurrency used when
// Config.PushWorkers is zero.
const defaultPushWorkers = 8

// defaultCoalesceMaxUpdates is the merged-batch size bound used when
// Config.CoalesceMaxUpdates is zero.
const defaultCoalesceMaxUpdates = 1024

// TxnStats describes one applied transaction.
type TxnStats struct {
	Source        string // "ovsdb", "digest", or "initial"
	TxnID         uint64 // OVSDB-minted transaction ID (0 when unknown)
	InputUpdates  int
	OutputChanges int
	EngineTime    time.Duration
	PushTime      time.Duration
	// CoalescedTxns is how many monitor-delivered commits this apply
	// merged (1 when coalescing is off or nothing was queued).
	CoalescedTxns int
}

// mcastKey identifies one multicast group on one device ("" = whole
// class).
type mcastKey struct {
	device string
	group  uint16
}

// classState is the runtime state of one device class.
type classState struct {
	cls     DeviceClass
	gen     *codegen.Generated
	devByID map[string]DataPlane
	mcast   map[mcastKey]map[uint16]bool
}

// outputRoute resolves an output relation to its class and binding.
type outputRoute struct {
	class   *classState
	binding *codegen.OutputTableBinding
}

// Controller is a running full-stack controller instance.
type Controller struct {
	cfg      Config
	inputGen *codegen.Generated
	classes  []*classState
	outputs  map[string]*outputRoute
	p4Tables map[string]bool
	mcastRel map[string]*classState
	prov     *provState
	prog     *dl.Program
	rt       *engine.Runtime
	mp       ManagementPlane
	schema   *ovsdb.DatabaseSchema
	events   chan event
	done     chan struct{}
	stopOnce sync.Once
	evMu     sync.RWMutex
	evClosed bool

	// desired tracks each device's intended data-plane state (event-loop
	// goroutine only); devClass resolves a device ID to its class for
	// Resync. See resilience.go.
	desired  map[string]*deviceDesired
	devClass map[string]*classState

	tracer *obs.Tracer
	rec    *obs.Recorder
	m      ctrlMetrics

	mu  sync.Mutex
	err error
}

// ctrlMetrics holds the controller's pre-registered instruments. With no
// registry every field is a nil instrument (and map lookups on nil maps
// return nil), so the instrumented paths need no enable checks.
type ctrlMetrics struct {
	txnTotal   map[string]*obs.Counter // by event source
	engineSecs *obs.Histogram
	pushSecs   *obs.Histogram
	inputSize  *obs.Histogram
	outputSize *obs.Histogram
	pushErrors *obs.Counter
	resyncs    *obs.Counter
	// coalesceBatches counts applies that merged more than one commit;
	// coalescedTxns counts the commits that rode in them.
	coalesceBatches *obs.Counter
	coalescedTxns   *obs.Counter
	devPush         map[string]*obs.Histogram // by device id
	devBatch        *obs.Histogram
	evalStratum     []*obs.Histogram
	deltaSize       *obs.Histogram
	derivations     *obs.Counter
	rounds          *obs.Counter
	workerBusy      []*obs.Counter

	provFacts     *obs.Gauge
	provEvictions *obs.Gauge
	provEntries   *obs.Gauge
	provInputs    *obs.Gauge
}

// initObs pre-registers every controller series. Called once the runtime
// (stratum count) and device classes are known, so the per-txn paths only
// ever touch existing instruments.
func (c *Controller) initObs() {
	reg := c.cfg.Obs.Reg()
	c.tracer = c.cfg.Obs.Tr()
	c.rec = c.cfg.Obs.Rec()
	c.m.txnTotal = map[string]*obs.Counter{}
	for _, src := range []string{"ovsdb", "digest", "initial"} {
		c.m.txnTotal[src] = reg.Counter("core_txn_total",
			"Transactions applied by the controller.", obs.L("source", src))
	}
	c.m.engineSecs = reg.Histogram("core_engine_seconds",
		"Incremental evaluation latency per transaction.", nil)
	c.m.pushSecs = reg.Histogram("core_push_seconds",
		"Data-plane push latency per transaction (all devices, barrier).", nil)
	c.m.inputSize = reg.Histogram("core_input_updates",
		"Input updates per transaction.", obs.SizeBuckets)
	c.m.outputSize = reg.Histogram("core_output_changes",
		"Data-plane changes produced per transaction.", obs.SizeBuckets)
	c.m.pushErrors = reg.Counter("core_push_errors_total",
		"Transactions whose data-plane push failed.")
	c.m.resyncs = reg.Counter("core_resyncs_total",
		"Device reconciliations completed after a reconnect.")
	c.m.coalesceBatches = reg.Counter("core_coalesce_batches_total",
		"Engine applies that merged more than one monitor-delivered commit.")
	c.m.coalescedTxns = reg.Counter("core_coalesced_txns_total",
		"Monitor-delivered commits merged into coalesced applies.")
	c.m.devPush = map[string]*obs.Histogram{}
	for _, cs := range c.classes {
		for _, dev := range cs.cls.Devices {
			c.m.devPush[dev.ID] = reg.Histogram("core_device_push_seconds",
				"Per-device write-stream latency within a push.", nil, obs.L("device", dev.ID))
		}
	}
	c.m.devBatch = reg.Histogram("core_device_push_updates",
		"Updates written to one device within a push.", obs.SizeBuckets)
	for s := 0; s < c.rt.NumStrata(); s++ {
		c.m.evalStratum = append(c.m.evalStratum, reg.Histogram("dl_eval_seconds",
			"Evaluation latency per stratum per transaction.", nil,
			obs.L("stratum", fmt.Sprintf("%d", s))))
	}
	c.m.deltaSize = reg.Histogram("dl_delta_size",
		"Output delta tuples per transaction.", obs.SizeBuckets)
	c.m.derivations = reg.Counter("dl_derivations_total",
		"Tuple derivation operations performed.")
	c.m.rounds = reg.Counter("dl_rounds_total",
		"Breadth-first propagation rounds in recursive strata.")
	workers := c.cfg.EngineOptions.Workers
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		c.m.workerBusy = append(c.m.workerBusy, reg.Counter("dl_worker_busy_nanoseconds_total",
			"Plan-evaluation time accumulated by each pool worker.",
			obs.L("worker", fmt.Sprintf("%d", w))))
	}
	c.m.provFacts = reg.Gauge("obs_provenance_facts",
		"Derived facts with recorded provenance in the engine store.")
	c.m.provEvictions = reg.Gauge("obs_provenance_evictions",
		"Provenance records discarded by the capacity bounds (engine store + controller origin maps).")
	c.m.provEntries = reg.Gauge("obs_provenance_entries",
		"Pushed P4 table entries with a recorded origin.")
	c.m.provInputs = reg.Gauge("obs_provenance_inputs",
		"Input-relation records with a recorded originating transaction.")

	// History series the stall watchdog consumes (see obs.Series*):
	// applied-transaction rate (summed across sources), event-queue depth,
	// and the latency averages behind "what did push latency look like".
	o := c.cfg.Obs
	srcCounters := make([]*obs.Counter, 0, len(c.m.txnTotal))
	for _, ctr := range c.m.txnTotal {
		srcCounters = append(srcCounters, ctr)
	}
	o.TrackRate(obs.SeriesApplies, func() float64 {
		var sum uint64
		for _, ctr := range srcCounters {
			sum += ctr.Value()
		}
		return float64(sum)
	})
	o.TrackValue(obs.SeriesQueueDepth, func() float64 { return float64(len(c.events)) })
	o.TrackHistogramAvg(obs.SeriesPushLatency, c.m.pushSecs)
	o.TrackHistogramAvg(obs.SeriesEngineLatency, c.m.engineSecs)

	// Workload-profiler series. The rule set is static per program, so
	// every dl_rule_* series is registered up front from the engine's
	// RuleInfos (the short "Head#ordinal" rule ID as the label value) and
	// read at scrape time from the profiler's aggregation — the per-txn
	// path only feeds the profiler once, under its lock. Memory totals
	// are scrape-time callbacks over the latest published snapshot;
	// per-relation detail stays on /debug/memory where cardinality is
	// bounded by the response, not the registry.
	if infos := c.rt.RuleInfos(); len(infos) > 0 {
		prof := o.Prof()
		for _, in := range infos {
			id := in.ID
			prof.EnsureRule(in.ID, in.Label, in.Stratum, in.Recursive)
			reg.CounterFunc("dl_rule_eval_ns_total",
				"Evaluation time attributed to each rule, nanoseconds.",
				func() uint64 { ev, _, _ := prof.RuleTotals(id); return ev },
				obs.L("rule", id))
			reg.CounterFunc("dl_rule_derivations_total",
				"Tuple derivations attributed to each rule.",
				func() uint64 { _, d, _ := prof.RuleTotals(id); return d },
				obs.L("rule", id))
			reg.CounterFunc("dl_rule_delta_tuples_total",
				"Net tuple presence transitions attributed to each rule.",
				func() uint64 { _, _, dt := prof.RuleTotals(id); return dt },
				obs.L("rule", id))
			reg.GaugeFunc("dl_rule_cost_ewma_seconds",
				"EWMA of each rule's per-transaction evaluation time (the hot-rule ranking signal).",
				func() float64 { return prof.RuleEwmaSeconds(id) },
				obs.L("rule", id))
		}
		reg.GaugeFunc("dl_mem_bytes",
			"Estimated engine memory footprint: arrangements, indexes, and provenance.",
			func() float64 { m, _ := prof.Memory(); return float64(m.Bytes + m.Provenance.Bytes) })
		reg.GaugeFunc("dl_mem_tuples",
			"Tuples resident across all relations.",
			func() float64 { m, _ := prof.Memory(); return float64(m.Tuples) })
		reg.GaugeFunc("dl_mem_index_entries",
			"Secondary-index entries resident across all relations.",
			func() float64 { m, _ := prof.Memory(); return float64(m.IndexEntries) })
		reg.GaugeFunc("dl_mem_provenance_bytes",
			"Estimated provenance-store share of the engine footprint.",
			func() float64 { m, _ := prof.Memory(); return float64(m.Provenance.Bytes) })
	}
}

// publishMemory snapshots the engine's memory accounting into the
// profiler after every transaction, so /debug/memory is always current
// as of the last apply (a burst's final state, not its first).
// MemoryStats runs off maintained counters in O(#relations), so the
// per-txn cost is a short walk, priced by the obs-overhead "profiler"
// row. Event-loop goroutine only: Runtime.MemoryStats reads state that
// Apply mutates.
func (c *Controller) publishMemory() {
	ms := c.rt.MemoryStats()
	snap := obs.MemSnapshot{
		Relations:    make([]obs.RelMem, len(ms.Relations)),
		Tuples:       int64(ms.Tuples),
		IndexEntries: int64(ms.IndexEntries),
		Bytes:        ms.Bytes,
		Provenance:   obs.ProvMem{Facts: int64(ms.Provenance.Facts), Bytes: ms.Provenance.Bytes},
	}
	for i, rm := range ms.Relations {
		snap.Relations[i] = obs.RelMem{
			Name: rm.Name, Hidden: rm.Hidden, Stratum: rm.Stratum,
			Recursive: rm.Recursive, Tuples: int64(rm.Tuples), Indexes: int64(rm.Indexes),
			IndexEntries: int64(rm.IndexEntries), Bytes: rm.Bytes,
		}
	}
	c.cfg.Obs.Prof().SetMemory(snap)
}

// txnSeg attributes one contiguous slice of a merged event's updates to
// its originating commit: after coalescing, updates[start:start+n] of
// segment k came from txnID, where start is the sum of the preceding
// segments' n. A nil segs slice means the event is a single commit
// (txnID covers every update).
type txnSeg struct {
	txnID uint64
	n     int
}

type event struct {
	source  string
	txnID   uint64
	updates []engine.Update
	segs    []txnSeg
	barrier chan struct{}
	resync  *resyncReq
}

// eachSeg visits the event's per-commit segments in order: the commit's
// txn ID and its slice of the event's updates.
func (ev *event) eachSeg(f func(txnID uint64, ups []engine.Update)) {
	if ev.segs == nil {
		f(ev.txnID, ev.updates)
		return
	}
	i := 0
	for _, seg := range ev.segs {
		f(seg.txnID, ev.updates[i:i+seg.n])
		i += seg.n
	}
}

// coalesced is how many commits the event carries (1 when unmerged).
func (ev *event) coalesced() int {
	if ev.segs == nil {
		return 1
	}
	return len(ev.segs)
}

// New builds and starts a controller managing a single class of devices
// (plain relation names, no device column) — the paper's prototype shape.
func New(cfg Config, mp ManagementPlane, devices ...DataPlane) (*Controller, error) {
	cls := DeviceClass{}
	for i, dp := range devices {
		cls.Devices = append(cls.Devices, Device{ID: fmt.Sprintf("dev%d", i), DP: dp})
	}
	return NewWithClasses(cfg, mp, []DeviceClass{cls})
}

// NewWithClasses builds and starts a controller managing several device
// classes, each running its own P4 program. It fetches each class's
// pipeline description, generates declarations from all planes, compiles
// and cross-checks the combined program, loads the initial database
// snapshot, and begins processing changes.
func NewWithClasses(cfg Config, mp ManagementPlane, classes []DeviceClass) (*Controller, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("core: no device classes")
	}
	if cfg.Obs.Reg() != nil {
		// Per-stratum and per-worker metrics need the engine's statistics,
		// and /debug/explain needs the engine's provenance store.
		cfg.EngineOptions.CollectStats = true
		cfg.EngineOptions.CollectProvenance = true
		// The engine shares the process flight recorder, so apply/stratum
		// events interleave with the controller's own on one timeline.
		cfg.EngineOptions.Events = cfg.Obs.Rec()
		if cfg.Profile {
			cfg.EngineOptions.CollectRuleStats = true
		}
	}
	schema, err := mp.GetSchema(cfg.Database)
	if err != nil {
		return nil, fmt.Errorf("core: fetching schema: %w", err)
	}
	inputGen, err := codegen.Generate(schema, nil, codegen.Options{})
	if err != nil {
		return nil, err
	}
	c := &Controller{
		cfg:      cfg,
		inputGen: inputGen,
		outputs:  make(map[string]*outputRoute),
		p4Tables: make(map[string]bool),
		mcastRel: make(map[string]*classState),
		mp:       mp,
		schema:   schema,
		events:   make(chan event, 1024),
		done:     make(chan struct{}),
		desired:  make(map[string]*deviceDesired),
		devClass: make(map[string]*classState),
	}
	decls := inputGen.Decls
	seen := make(map[string]bool)
	for _, cls := range classes {
		if len(cls.Devices) == 0 {
			return nil, fmt.Errorf("core: class %q has no devices", cls.Name)
		}
		if seen[cls.Name] {
			return nil, fmt.Errorf("core: duplicate device class %q", cls.Name)
		}
		seen[cls.Name] = true
		info, err := cls.Devices[0].DP.GetP4Info()
		if err != nil {
			return nil, fmt.Errorf("core: class %q: fetching p4info: %w", cls.Name, err)
		}
		for _, dev := range cls.Devices[1:] {
			other, err := dev.DP.GetP4Info()
			if err != nil {
				return nil, fmt.Errorf("core: class %q: fetching p4info: %w", cls.Name, err)
			}
			if other.Program != info.Program {
				return nil, fmt.Errorf("core: class %q: device %s runs %q, class runs %q",
					cls.Name, dev.ID, other.Program, info.Program)
			}
		}
		gen, err := codegen.Generate(nil, info, codegen.Options{
			WithMulticast: true, Prefix: cls.Name, PerDevice: cls.PerDevice,
		})
		if err != nil {
			return nil, err
		}
		cs := &classState{
			cls:     cls,
			gen:     gen,
			devByID: make(map[string]DataPlane, len(cls.Devices)),
			mcast:   make(map[mcastKey]map[uint16]bool),
		}
		for _, dev := range cls.Devices {
			if _, dup := cs.devByID[dev.ID]; dup {
				return nil, fmt.Errorf("core: class %q: duplicate device id %q", cls.Name, dev.ID)
			}
			cs.devByID[dev.ID] = dev.DP
			// First registration wins on a cross-class ID collision; Resync
			// addresses devices by ID, so collide at your own risk.
			if _, dup := c.devClass[dev.ID]; !dup {
				c.devClass[dev.ID] = cs
			}
		}
		for rel, b := range gen.Outputs {
			if _, dup := c.outputs[rel]; dup {
				return nil, fmt.Errorf("core: output relation %q generated by two classes", rel)
			}
			c.outputs[rel] = &outputRoute{class: cs, binding: b}
			c.p4Tables[b.Table] = true
		}
		c.mcastRel[gen.MulticastName] = cs
		c.classes = append(c.classes, cs)
		decls += gen.Decls
	}

	prog, err := dl.Compile(decls + "\n" + cfg.ExtraDecls + "\n" + cfg.Rules)
	if err != nil {
		return nil, fmt.Errorf("core: compiling control plane: %w", err)
	}
	if err := inputGen.Verify(prog); err != nil {
		return nil, err
	}
	for _, cs := range c.classes {
		if err := cs.gen.Verify(prog); err != nil {
			return nil, err
		}
	}
	c.prog = prog
	c.rt, err = prog.NewRuntime(cfg.EngineOptions)
	if err != nil {
		return nil, err
	}
	if cfg.EngineOptions.CollectProvenance {
		c.prov = newProvState(cfg.EngineOptions.ProvenanceCapacity)
	}
	c.initObs()
	if c.prov != nil {
		c.cfg.Obs.SetExplainer(c)
	}
	go c.loop()

	// Digest subscriptions feed the event queue, tagged with the
	// originating device.
	for _, cs := range c.classes {
		for _, dev := range cs.cls.Devices {
			cs := cs
			id := dev.ID
			dev.DP.OnDigest(func(dl p4rt.DigestList) { c.handleDigest(cs, id, dl) })
		}
	}
	// Monitor every bound table with exactly the bound columns. When the
	// management plane can correlate updates to the transaction that
	// produced them (as *ovsdb.Client can), use the txn-aware variant so
	// traces carry a complete commit→delta→push timeline.
	var initial ovsdb.TableUpdates
	if tm, ok := mp.(interface {
		MonitorTxn(db string, id any, requests map[string]*ovsdb.MonitorRequest, cb func(uint64, ovsdb.TableUpdates)) (ovsdb.TableUpdates, error)
	}); ok {
		initial, err = tm.MonitorTxn(cfg.Database, "nerpa", c.monitorRequests(), c.handleOVSDBTxn)
	} else {
		initial, err = mp.Monitor(cfg.Database, "nerpa", c.monitorRequests(), c.handleOVSDB)
	}
	if err != nil {
		c.Stop()
		return nil, fmt.Errorf("core: monitor: %w", err)
	}
	ups, err := c.ovsdbUpdates(initial)
	if err != nil {
		c.Stop()
		return nil, err
	}
	c.events <- event{source: "initial", updates: ups}
	// When the management plane exposes connection liveness (as
	// *ovsdb.Client does), surface a dropped session through Err() rather
	// than silently receiving no further updates.
	if lp, ok := mp.(interface{ Done() <-chan struct{} }); ok {
		go func() {
			select {
			case <-lp.Done():
				c.fail(errors.New("core: management-plane connection closed"))
			case <-c.done:
			}
		}()
	}
	return c, nil
}

// Program returns the compiled control-plane program.
func (c *Controller) Program() *dl.Program { return c.prog }

// Generated returns the management-plane bindings (the schema side).
// Class bindings are internal; tests reach them through the program.
func (c *Controller) Generated() *codegen.Generated { return c.inputGen }

// Contents exposes a relation snapshot (diagnostics and tests).
func (c *Controller) Contents(rel string) ([]value.Record, error) { return c.rt.Contents(rel) }

// OutputRelations returns the names of the program's derived (output-
// role) relations, sorted — the set a subscription service may offer,
// and exactly the keys that can appear in an OnDelta delta.
func (c *Controller) OutputRelations() []string {
	var names []string
	for _, name := range c.rt.Relations() {
		if role, ok := c.rt.RelationRole(name); ok && role == ast.RoleOutput {
			names = append(names, name)
		}
	}
	return names
}

// Err returns the error that stopped the controller, if any.
func (c *Controller) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Done is closed when the controller stops.
func (c *Controller) Done() <-chan struct{} { return c.done }

// Stop terminates the event loop.
func (c *Controller) Stop() {
	c.stopOnce.Do(func() {
		c.evMu.Lock()
		c.evClosed = true
		c.evMu.Unlock()
		close(c.events)
	})
	<-c.done
}

// Barrier blocks until every event enqueued before it has been fully
// processed (including data-plane pushes).
func (c *Controller) Barrier() error {
	ch := make(chan struct{})
	if !c.enqueue(event{barrier: ch}) {
		return c.Err()
	}
	select {
	case <-ch:
		return nil
	case <-c.done:
		return c.Err()
	}
}

func (c *Controller) fail(err error) {
	c.mu.Lock()
	first := c.err == nil
	if first {
		c.err = err
	}
	c.mu.Unlock()
	if first {
		c.rec.Append(obs.Ev("core", "ctrl.error"))
	}
	c.cfg.Obs.SetReady(false)
}

func (c *Controller) loop() {
	defer close(c.done)
	for ev := range c.events {
		// A dispatched event may have pulled the next event off the queue
		// while coalescing; keep dispatching until none is carried over.
		for {
			var deferred *event
			if ev.source == "ovsdb" && c.cfg.CoalesceMaxTxns > 1 {
				deferred = c.coalesce(&ev)
			}
			c.dispatch(&ev)
			if deferred == nil {
				break
			}
			ev = *deferred
		}
	}
}

// coalesce merges queued (and, within CoalesceWindow, soon-arriving)
// OVSDB commits into ev, bounded by CoalesceMaxTxns commits and
// CoalesceMaxUpdates input updates. The merged event's txnID is the last
// merged non-zero commit ID; per-commit attribution is preserved in
// ev.segs. Returns the first non-mergeable event popped off the queue
// (a barrier, resync, or digest that must run after the merged batch),
// or nil.
func (c *Controller) coalesce(ev *event) *event {
	maxUpdates := c.cfg.CoalesceMaxUpdates
	if maxUpdates <= 0 {
		maxUpdates = defaultCoalesceMaxUpdates
	}
	var window <-chan time.Time
	if c.cfg.CoalesceWindow > 0 {
		timer := time.NewTimer(c.cfg.CoalesceWindow)
		defer timer.Stop()
		window = timer.C
	}
	for ev.coalesced() < c.cfg.CoalesceMaxTxns && len(ev.updates) < maxUpdates {
		var next event
		var ok bool
		if window != nil {
			select {
			case next, ok = <-c.events:
			case <-window:
				return nil
			}
		} else {
			select {
			case next, ok = <-c.events:
			default:
				return nil
			}
		}
		if !ok {
			// Channel closed mid-drain; dispatch what we merged, the
			// outer range loop terminates right after.
			return nil
		}
		if next.source != "ovsdb" {
			return &next
		}
		if ev.segs == nil {
			ev.segs = append(ev.segs, txnSeg{txnID: ev.txnID, n: len(ev.updates)})
		}
		ev.segs = append(ev.segs, txnSeg{txnID: next.txnID, n: len(next.updates)})
		ev.updates = append(ev.updates, next.updates...)
		if next.txnID != 0 {
			ev.txnID = next.txnID
		}
	}
	return nil
}

// dispatch processes one event: control events (barrier, resync)
// immediately, transaction events through the apply→observe→push
// sequence.
func (c *Controller) dispatch(ev *event) {
	if ev.barrier != nil {
		close(ev.barrier)
		return
	}
	if ev.resync != nil {
		// Reconciliation runs even though it interleaves with normal
		// transactions: the event loop serializes it against pushes, so
		// it sees a consistent desired state.
		if err := c.Err(); err != nil {
			ev.resync.done <- fmt.Errorf("core: resync %s: controller failed: %w",
				ev.resync.device, err)
		} else {
			ev.resync.done <- c.doResync(ev.resync.device, ev.resync.dp)
		}
		return
	}
	if c.Err() != nil {
		return // drain after failure
	}
	c.rt.SetEventTxn(ev.txnID)
	start := time.Now()
	delta, err := c.rt.Apply(ev.updates)
	engineTime := time.Since(start)
	if err != nil {
		c.fail(fmt.Errorf("core: engine: %w", err))
		return
	}
	ruleSamples := c.observeEngine(ev, start, engineTime)
	c.noteInputs(ev)
	if k := ev.coalesced(); k > 1 {
		c.m.coalesceBatches.Inc()
		c.m.coalescedTxns.Add(uint64(k))
		c.rec.Append(obs.Ev("core", "txn.coalesce").WithTxn(ev.txnID).
			F("txns", int64(k)).F("updates", int64(len(ev.updates))))
	}
	c.rec.Append(obs.Ev("core", "delta.done").WithTxn(ev.txnID).
		F("input_updates", int64(len(ev.updates))).
		F("changed_rels", int64(len(delta))).
		F("eval_us", engineTime.Microseconds()))
	pushStart := time.Now()
	c.rec.Append(obs.Ev("core", "push.start").WithTxn(ev.txnID).At(pushStart))
	n, err := c.push(ev, delta)
	pushTime := time.Since(pushStart)
	if err != nil {
		c.m.pushErrors.Inc()
		c.rec.Append(obs.Ev("core", "push.error").WithTxn(ev.txnID).
			F("updates", int64(n)))
		// A device that is merely unreachable does not poison the
		// controller: its desired state kept advancing, and the resync
		// that runs when its connection heals closes the gap. Anything
		// else (e.g. the switch rejected a write) is a real failure.
		if !errors.Is(err, p4rt.ErrUnavailable) {
			c.fail(fmt.Errorf("core: push: %w", err))
			return
		}
	}
	if c.cfg.OnDelta != nil && len(delta) > 0 {
		// Subscribers observe the delta only once the data plane accepted
		// it (or the device was merely unreachable and will resync): the
		// published stream never runs ahead of a delta the push rejected.
		c.cfg.OnDelta(ev.txnID, delta)
	}
	if c.tracer != nil {
		// Each merged commit gets its own push stage (with its own attrs
		// map: pooled maps must not be shared across traces).
		ev.eachSeg(func(txn uint64, _ []engine.Update) {
			c.tracer.Record(txn, "core", obs.Stage{
				Name:  "push",
				Start: pushStart,
				End:   pushStart.Add(pushTime),
				Attrs: pushAttrs(n),
			})
		})
	}
	// Budget checks run only after the push completed, so an incident
	// pinned for a slow delta still captures the full commit→push
	// timeline (and slow pushes pin the provenance of what they wrote).
	if o := c.cfg.Obs; o != nil {
		if o.BudgetExceeded("delta", engineTime) {
			// With profiling on, the incident carries the pinned
			// transaction's own per-rule breakdown, so it answers *which*
			// rule made the delta slow, not just that it was slow.
			var detail any
			if len(ruleSamples) > 0 {
				detail = map[string]any{"rules": ruleSamples}
			}
			o.PinIncident("delta", ev.txnID, ev.source, engineTime, detail)
		}
		if o.BudgetExceeded("push", pushTime) {
			o.PinIncident("push", ev.txnID, ev.source, pushTime,
				c.prov.originsForTxn(ev.txnID, incidentOriginLimit))
		}
	}
	c.record(TxnStats{
		Source:        ev.source,
		TxnID:         ev.txnID,
		InputUpdates:  len(ev.updates),
		OutputChanges: n,
		EngineTime:    engineTime,
		PushTime:      pushTime,
		CoalescedTxns: ev.coalesced(),
	})
	if ev.source == "initial" {
		// Monitor established and initial sync pushed: the controller
		// is serving the database's current state.
		c.cfg.Obs.SetReady(true)
	}
}

// pushAttrs builds the pooled attr map for the push trace stage.
func pushAttrs(n int) map[string]int64 {
	a := obs.NewAttrs()
	a["updates"] = int64(n)
	return a
}

// observeEngine translates the engine's per-transaction statistics into
// dl_* metrics and the "delta" trace stage. When profiling is on, it
// also feeds the workload profiler and returns the transaction's
// per-rule breakdown for incident enrichment (nil otherwise).
func (c *Controller) observeEngine(ev *event, start time.Time, engineTime time.Duration) []obs.RuleSample {
	st := c.rt.LastApplyStats()
	if st != nil {
		for _, ss := range st.Strata {
			if ss.Stratum < len(c.m.evalStratum) {
				c.m.evalStratum[ss.Stratum].ObserveDuration(ss.Duration)
			}
			c.m.rounds.Add(uint64(ss.Rounds))
		}
		c.m.deltaSize.Observe(float64(st.DeltaSize))
		c.m.derivations.Add(uint64(st.Derivations))
		for wi, d := range st.WorkerBusy {
			if wi < len(c.m.workerBusy) {
				c.m.workerBusy[wi].Add(uint64(d))
			}
		}
	}
	var ruleSamples []obs.RuleSample
	if c.cfg.EngineOptions.CollectRuleStats {
		if st != nil && len(st.Rules) > 0 {
			ruleSamples = make([]obs.RuleSample, len(st.Rules))
			for i, r := range st.Rules {
				ruleSamples[i] = obs.RuleSample{
					ID: r.ID, Label: r.Label, Stratum: r.Stratum, Recursive: r.Recursive,
					Seedings: r.Seedings, Derivations: r.Derivations,
					DeltaTuples: r.DeltaTuples, Rounds: r.Rounds,
					EvalNs: int64(r.Duration),
				}
			}
		}
		// Observe even an empty transaction: idle rules' EWMA costs decay
		// so stale hot spots sink out of the top-K.
		c.cfg.Obs.Prof().ObserveTxn(ruleSamples)
		c.publishMemory()
	}
	if c.tracer != nil {
		// Each merged commit gets its own delta stage carrying its own
		// update count, so /debug/traces stays per-commit even when the
		// engine applied several commits at once. Attrs maps are pooled
		// and per-trace, hence built per segment.
		coalesced := int64(ev.coalesced())
		ev.eachSeg(func(txn uint64, ups []engine.Update) {
			attrs := obs.NewAttrs()
			attrs["input_updates"] = int64(len(ups))
			if st != nil {
				attrs["delta_size"] = int64(st.DeltaSize)
				attrs["derivations"] = st.Derivations
			}
			if coalesced > 1 {
				attrs["coalesced_txns"] = coalesced
			}
			c.tracer.Record(txn, "core", obs.Stage{
				Name:  "delta",
				Start: start,
				End:   start.Add(engineTime),
				Attrs: attrs,
			})
		})
	}
	return ruleSamples
}

// record is the single accounting site for per-transaction statistics:
// the obs registry and the OnTxn hook both see exactly these numbers.
func (c *Controller) record(ts TxnStats) {
	c.m.txnTotal[ts.Source].Inc()
	c.m.engineSecs.ObserveDuration(ts.EngineTime)
	c.m.pushSecs.ObserveDuration(ts.PushTime)
	c.m.inputSize.Observe(float64(ts.InputUpdates))
	c.m.outputSize.Observe(float64(ts.OutputChanges))
	c.observeProvenance()
	if c.cfg.OnTxn != nil {
		c.cfg.OnTxn(ts)
	}
}

// target identifies one write destination: a device of a class, or the
// whole class (device "").
type target struct {
	class  *classState
	device string
}

// push converts output deltas to data-plane writes, grouped per target.
// Deletes are issued before inserts so match-key replacements land
// correctly. Relations are visited in sorted name order and Z-set entries
// in sorted record order, so the write stream is deterministic regardless
// of map iteration or engine worker interleaving. Entry-origin records
// are staged during conversion and applied only once every device
// acknowledged its writes, so the origin maps never describe entries the
// switches rejected.
func (c *Controller) push(ev *event, delta engine.Delta) (int, error) {
	dels := make(map[target][]p4rt.Update)
	ins := make(map[target][]p4rt.Update)
	mcastDirty := make(map[target]map[uint16]bool)
	var origins []pendingOrigin
	var order []target
	seen := make(map[target]bool)
	touch := func(tg target) {
		if !seen[tg] {
			seen[tg] = true
			order = append(order, tg)
		}
	}

	rels := make([]string, 0, len(delta))
	for rel := range delta {
		rels = append(rels, rel)
	}
	sortStrings(rels)
	for _, rel := range rels {
		z := delta[rel]
		if cs, ok := c.mcastRel[rel]; ok {
			for _, e := range z.Entries() {
				var device string
				var group, port uint16
				var err error
				if cs.cls.PerDevice {
					device, group, port, err = codegen.MulticastDeviceFromRecord(e.Rec)
				} else {
					group, port, err = codegen.MulticastFromRecord(e.Rec)
				}
				if err != nil {
					return 0, err
				}
				key := mcastKey{device: device, group: group}
				members := cs.mcast[key]
				if members == nil {
					members = make(map[uint16]bool)
					cs.mcast[key] = members
				}
				if e.Weight > 0 {
					members[port] = true
				} else {
					delete(members, port)
				}
				tg := target{class: cs, device: device}
				touch(tg)
				if mcastDirty[tg] == nil {
					mcastDirty[tg] = make(map[uint16]bool)
				}
				mcastDirty[tg][group] = true
			}
			continue
		}
		route := c.outputs[rel]
		if route == nil {
			continue // internal or unbound output relation
		}
		for _, e := range z.Entries() {
			entry, err := route.binding.EntryFromRecord(e.Rec)
			if err != nil {
				return 0, err
			}
			tg := target{class: route.class, device: route.binding.Device(e.Rec)}
			touch(tg)
			if e.Weight > 0 {
				ins[tg] = append(ins[tg], p4rt.InsertEntry(entry))
			} else {
				dels[tg] = append(dels[tg], p4rt.DeleteEntry(entry))
			}
			if c.prov != nil {
				match := renderMatches(route.binding, entry)
				ek := entryKey{device: tg.device, table: entry.Table, match: match}
				if e.Weight > 0 {
					origins = append(origins, pendingOrigin{key: ek, origin: &EntryOrigin{
						Table: entry.Table, Device: tg.device, Matches: match,
						Action: entry.Action, Relation: rel, Record: e.Rec.String(),
						TxnID: ev.txnID, Source: ev.source, rec: e.Rec,
					}})
				} else {
					origins = append(origins, pendingOrigin{key: ek})
				}
			}
		}
	}

	// Flatten targets into per-device batch lists: class-wide targets
	// expand to every device of the class, and a device touched by several
	// targets keeps its batches in target order. Devices are then mutually
	// independent and their writes can proceed concurrently.
	total := 0
	var writes []*devWrite
	byDev := make(map[target]*devWrite)
	addBatch := func(cs *classState, id string, dp DataPlane, updates []p4rt.Update) {
		// Fold into the desired state before the write is attempted, so an
		// unreachable device's intent keeps advancing and a later Resync
		// can replay exactly the difference.
		c.noteDesired(id, updates)
		key := target{class: cs, device: id}
		dw := byDev[key]
		if dw == nil {
			dw = &devWrite{id: id, dp: dp, txn: ev.txnID,
				txnWrite: c.cfg.Obs != nil && !c.cfg.DisableTxnWrites}
			byDev[key] = dw
			writes = append(writes, dw)
		}
		dw.batches = append(dw.batches, updates)
	}
	for _, tg := range order {
		var updates []p4rt.Update
		updates = append(updates, dels[tg]...)
		updates = append(updates, ins[tg]...)
		groups := make([]uint16, 0, len(mcastDirty[tg]))
		for g := range mcastDirty[tg] {
			groups = append(groups, g)
		}
		sortU16(groups)
		for _, g := range groups {
			members := tg.class.mcast[mcastKey{device: tg.device, group: g}]
			ports := make([]uint16, 0, len(members))
			for p := range members {
				ports = append(ports, p)
			}
			sortU16(ports)
			updates = append(updates, p4rt.SetMulticast(g, ports))
		}
		if len(updates) == 0 {
			continue
		}
		total += len(updates)
		if tg.device == "" {
			for _, dev := range tg.class.cls.Devices {
				addBatch(tg.class, dev.ID, dev.DP, updates)
			}
			continue
		}
		dp := tg.class.devByID[tg.device]
		if dp == nil {
			return 0, fmt.Errorf("core: rules target unknown device %q of class %q",
				tg.device, tg.class.cls.Name)
		}
		addBatch(tg.class, tg.device, dp, updates)
	}
	if err := c.writeDevices(writes); err != nil {
		return total, err
	}
	c.rec.Append(obs.Ev("core", "push.barrier").WithTxn(ev.txnID).
		F("devices", int64(len(writes))).
		F("updates", int64(total)))
	// Drops first: a same-match replacement (delete old + insert new in
	// one delta) must end with the new origin regardless of record order.
	for _, po := range origins {
		if po.origin == nil {
			c.prov.dropEntry(po.key)
		}
	}
	for _, po := range origins {
		if po.origin != nil {
			c.prov.noteEntry(po.key, po.origin)
		}
	}
	return total, nil
}

// devWrite is the ordered write stream destined for one device within one
// push.
type devWrite struct {
	id      string
	dp      DataPlane
	txn     uint64
	batches [][]p4rt.Update
	// txnWrite selects the txn-carrying wire form (TxnWriter) so the
	// device can extend the transaction's trace with its apply.
	txnWrite bool
}

func (dw *devWrite) flush() error {
	tw, ok := dw.dp.(TxnWriter)
	useTxn := ok && dw.txnWrite && dw.txn != 0
	for _, b := range dw.batches {
		var err error
		if useTxn {
			err = tw.WriteTxn(dw.txn, b...)
		} else {
			err = dw.dp.Write(b...)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// flushObserved is flush plus per-device latency and batch-size metrics
// and the device.write flight-recorder event.
func (c *Controller) flushObserved(dw *devWrite) error {
	t0 := time.Now()
	err := dw.flush()
	elapsed := time.Since(t0)
	c.m.devPush[dw.id].ObserveDuration(elapsed)
	n := 0
	for _, b := range dw.batches {
		n += len(b)
	}
	c.m.devBatch.Observe(float64(n))
	failed := int64(0)
	if err != nil {
		failed = 1
	}
	c.rec.Append(obs.Ev("core", "device.write").WithTxn(dw.txn).WithDevice(dw.id).
		F("updates", int64(n)).
		F("write_us", elapsed.Microseconds()).
		F("failed", failed))
	return err
}

// writeDevices issues each device's write stream, fanning out across up to
// Config.PushWorkers goroutines. Per-device ordering is preserved (one
// goroutine owns a device's whole stream), all writes complete before the
// push returns (barrier), and on failure the error of the first device in
// delta order is reported.
func (c *Controller) writeDevices(writes []*devWrite) error {
	nw := c.cfg.PushWorkers
	if nw <= 0 {
		nw = defaultPushWorkers
	}
	if nw > len(writes) {
		nw = len(writes)
	}
	if nw <= 1 {
		errs := make([]error, len(writes))
		for i, dw := range writes {
			errs[i] = c.flushObserved(dw)
		}
		return pickPushErr(errs)
	}
	errs := make([]error, len(writes))
	var next int64
	var wg sync.WaitGroup
	for wi := 0; wi < nw; wi++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(writes) {
					return
				}
				errs[i] = c.flushObserved(writes[i])
			}
		}()
	}
	wg.Wait()
	return pickPushErr(errs)
}

// pickPushErr reduces per-device push errors to the one the transaction
// reports: any fatal error outranks device-unavailable ones (which the
// loop tolerates), and within a rank the first device in delta order
// wins. Every device got its write attempt either way — one unreachable
// device must not starve the others.
func pickPushErr(errs []error) error {
	var unavail error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, p4rt.ErrUnavailable) {
			if unavail == nil {
				unavail = err
			}
			continue
		}
		return err
	}
	return unavail
}

func sortU16(s []uint16) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}

// monitorRequests builds the per-table monitor covering every bound
// column.
func (c *Controller) monitorRequests() map[string]*ovsdb.MonitorRequest {
	cols := make(map[string]map[string]bool)
	add := func(table, col string) {
		m := cols[table]
		if m == nil {
			m = make(map[string]bool)
			cols[table] = m
		}
		m[col] = true
	}
	for _, b := range c.inputGen.Inputs {
		for _, col := range b.Columns {
			add(b.Table, col)
		}
		if _, ok := cols[b.Table]; !ok {
			cols[b.Table] = make(map[string]bool)
		}
	}
	for _, b := range c.inputGen.Aux {
		add(b.Table, b.Column)
	}
	out := make(map[string]*ovsdb.MonitorRequest, len(cols))
	for table, set := range cols {
		req := &ovsdb.MonitorRequest{}
		for col := range set {
			req.Columns = append(req.Columns, col)
		}
		sortStrings(req.Columns)
		out[table] = req
	}
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}

// handleOVSDB runs on the OVSDB client's delivery goroutine.
func (c *Controller) handleOVSDB(tu ovsdb.TableUpdates) {
	c.handleOVSDBTxn(0, tu)
}

// handleOVSDBTxn is handleOVSDB with the originating transaction ID, used
// when the management plane supports txn-aware monitors.
func (c *Controller) handleOVSDBTxn(txn uint64, tu ovsdb.TableUpdates) {
	ups, err := c.ovsdbUpdates(tu)
	if err != nil {
		c.fail(err)
		return
	}
	c.enqueue(event{source: "ovsdb", txnID: txn, updates: ups})
}

// enqueue submits an event unless the controller has stopped, reporting
// whether it was accepted. The evClosed flag is flipped under the write
// lock before Stop closes the channel, so a send can never race the
// close: in-flight senders hold the read lock, which Stop waits out
// (the loop keeps draining, so those sends cannot block forever).
func (c *Controller) enqueue(ev event) bool {
	c.evMu.RLock()
	defer c.evMu.RUnlock()
	if c.evClosed {
		return false
	}
	c.events <- ev
	return true
}

// ovsdbUpdates converts a monitor notification into engine updates.
func (c *Controller) ovsdbUpdates(tu ovsdb.TableUpdates) ([]engine.Update, error) {
	var ups []engine.Update
	for _, b := range c.inputGen.Inputs {
		table, ok := tu[b.Table]
		if !ok {
			continue
		}
		ts := c.schema.Tables[b.Table]
		for uuid, ru := range table {
			oldRow, newRow, err := rowsOf(ts, ru)
			if err != nil {
				return nil, err
			}
			if oldRow != nil {
				rec, err := b.RowRecord(uuid, oldRow)
				if err != nil {
					return nil, err
				}
				ups = append(ups, engine.Delete(b.Relation, rec))
			}
			if newRow != nil {
				rec, err := b.RowRecord(uuid, newRow)
				if err != nil {
					return nil, err
				}
				ups = append(ups, engine.Insert(b.Relation, rec))
			}
		}
	}
	for _, b := range c.inputGen.Aux {
		table, ok := tu[b.Table]
		if !ok {
			continue
		}
		ts := c.schema.Tables[b.Table]
		for uuid, ru := range table {
			oldRow, newRow, err := rowsOf(ts, ru)
			if err != nil {
				return nil, err
			}
			if oldRow != nil {
				recs, err := b.ElementRecords(uuid, oldRow)
				if err != nil {
					return nil, err
				}
				for _, rec := range recs {
					ups = append(ups, engine.Delete(b.Relation, rec))
				}
			}
			if newRow != nil {
				recs, err := b.ElementRecords(uuid, newRow)
				if err != nil {
					return nil, err
				}
				for _, rec := range recs {
					ups = append(ups, engine.Insert(b.Relation, rec))
				}
			}
		}
	}
	return ups, nil
}

// rowsOf reconstructs the full old and new rows of a RowUpdate. For a
// modify, Old carries only the changed columns, so the full old row is New
// overlaid with Old.
func rowsOf(ts *ovsdb.TableSchema, ru ovsdb.RowUpdate) (oldRow, newRow ovsdb.Row, err error) {
	if ru.New != nil {
		newRow, err = ovsdb.RowFromJSON(ts, ru.New)
		if err != nil {
			return nil, nil, err
		}
	}
	if ru.Old != nil {
		oldRow, err = ovsdb.RowFromJSON(ts, ru.Old)
		if err != nil {
			return nil, nil, err
		}
		if ru.New != nil {
			merged := make(ovsdb.Row, len(newRow))
			for k, v := range newRow {
				merged[k] = v
			}
			for k, v := range oldRow {
				merged[k] = v
			}
			oldRow = merged
		}
	}
	return oldRow, newRow, nil
}

// handleDigest runs on a p4rt client's delivery goroutine.
func (c *Controller) handleDigest(cs *classState, deviceID string, dl p4rt.DigestList) {
	var ups []engine.Update
	for _, b := range cs.gen.Digests {
		if b.Digest != dl.Digest {
			continue
		}
		for _, msg := range dl.Messages {
			rec, err := b.DigestRecordFrom(deviceID, msg)
			if err != nil {
				c.fail(err)
				return
			}
			ups = append(ups, engine.Insert(b.Relation, rec))
		}
	}
	if len(ups) > 0 {
		c.enqueue(event{source: "digest", updates: ups})
	}
}
