package core

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/codegen"
	"repro/internal/dl/ast"
	"repro/internal/dl/engine"
	"repro/internal/dl/value"
	"repro/internal/obs"
	"repro/internal/p4"
	"repro/internal/p4rt"
)

// This file is the controller half of cross-plane provenance: while the
// engine's store answers "which rule and which facts derived this
// tuple?", the maps here link the two ends of the stack to the engine's
// view — each pushed P4 table entry to the output-relation record that
// produced it, and each input-relation record to the OVSDB transaction
// (and event source) that inserted it. Together they answer the
// operator's question "why is this entry in the switch?" end to end.

// entryKey identifies one installed table entry on one device.
type entryKey struct {
	device string
	table  string
	match  string // rendered match fields (+ priority)
}

// EntryOrigin records where one pushed table entry came from.
type EntryOrigin struct {
	Table    string `json:"table"`
	Device   string `json:"device,omitempty"`
	Matches  string `json:"matches"`
	Action   string `json:"action"`
	Relation string `json:"relation"`
	Record   string `json:"record"`
	// TxnID/Source identify the transaction whose delta pushed the entry
	// (which may differ from the transactions that inserted the input
	// facts in its derivation tree).
	TxnID  uint64 `json:"txn_id,omitempty"`
	Source string `json:"source,omitempty"`

	rec value.Record
}

// inputOrigin records which transaction inserted one input-relation
// record.
type inputOrigin struct {
	txnID  uint64
	source string
}

// provState holds the controller's bounded origin maps. Writes happen
// only on the event-loop goroutine; reads come from /debug/explain
// handlers, so every access takes the mutex.
type provState struct {
	mu      sync.Mutex
	cap     int
	entries map[entryKey]*EntryOrigin
	eorder  []entryKey // FIFO insertion order; may contain tombstones
	inputs  map[string]inputOrigin
	iorder  []string // FIFO insertion order; may contain tombstones
	evicted uint64
}

// defaultOriginCapacity bounds each origin map when the engine's
// provenance capacity is not configured.
const defaultOriginCapacity = 1 << 16

func newProvState(capacity int) *provState {
	if capacity <= 0 {
		capacity = defaultOriginCapacity
	}
	return &provState{
		cap:     capacity,
		entries: make(map[entryKey]*EntryOrigin),
		inputs:  make(map[string]inputOrigin),
	}
}

// inputKey keys an input-relation record.
func inputKey(rel, recKey string) string { return rel + "\x00" + recKey }

func (p *provState) noteEntry(k entryKey, o *EntryOrigin) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, exists := p.entries[k]; !exists {
		for len(p.entries) >= p.cap && len(p.eorder) > 0 {
			old := p.eorder[0]
			p.eorder = p.eorder[1:]
			if _, ok := p.entries[old]; ok {
				delete(p.entries, old)
				p.evicted++
			}
		}
		p.eorder = append(p.eorder, k)
	}
	p.entries[k] = o
	if len(p.eorder) > 2*p.cap {
		p.compactEntriesLocked()
	}
}

func (p *provState) dropEntry(k entryKey) {
	p.mu.Lock()
	delete(p.entries, k)
	p.mu.Unlock()
}

// incidentOriginLimit caps how many entry origins a pinned slow-push
// incident carries.
const incidentOriginLimit = 8

// originsForTxn returns up to max entry origins pushed by one
// transaction, newest first — the "relevant Explain output" pinned into
// a slow-push incident. Nil-safe (provenance may be disabled).
func (p *provState) originsForTxn(txn uint64, max int) []*EntryOrigin {
	if p == nil || txn == 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []*EntryOrigin
	for i := len(p.eorder) - 1; i >= 0 && len(out) < max; i-- {
		o := p.entries[p.eorder[i]]
		if o != nil && o.TxnID == txn {
			out = append(out, o)
		}
	}
	return out
}

func (p *provState) compactEntriesLocked() {
	live := p.eorder[:0]
	for _, k := range p.eorder {
		if _, ok := p.entries[k]; ok {
			live = append(live, k)
		}
	}
	p.eorder = live
}

func (p *provState) noteInput(rel, recKey string, o inputOrigin) {
	k := inputKey(rel, recKey)
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, exists := p.inputs[k]; !exists {
		for len(p.inputs) >= p.cap && len(p.iorder) > 0 {
			old := p.iorder[0]
			p.iorder = p.iorder[1:]
			if _, ok := p.inputs[old]; ok {
				delete(p.inputs, old)
				p.evicted++
			}
		}
		p.iorder = append(p.iorder, k)
	}
	p.inputs[k] = o
	if len(p.iorder) > 2*p.cap {
		live := p.iorder[:0]
		for _, k := range p.iorder {
			if _, ok := p.inputs[k]; ok {
				live = append(live, k)
			}
		}
		p.iorder = live
	}
}

func (p *provState) dropInput(rel, recKey string) {
	p.mu.Lock()
	delete(p.inputs, inputKey(rel, recKey))
	p.mu.Unlock()
}

func (p *provState) lookupInput(rel, recKey string) (inputOrigin, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	o, ok := p.inputs[inputKey(rel, recKey)]
	return o, ok
}

// sizes reports the live map sizes and the eviction count.
func (p *provState) sizes() (entries, inputs int, evicted uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.entries), len(p.inputs), p.evicted
}

// findEntry resolves a /debug/explain query against one P4 table: key ""
// is accepted when the table holds exactly one entry; otherwise the key
// must equal — or, failing that, be a substring of — the rendered match
// fields or the source record of exactly one entry.
func (p *provState) findEntry(table, key string) (*EntryOrigin, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var inTable, exact, fuzzy []*EntryOrigin
	for k, o := range p.entries {
		if k.table != table {
			continue
		}
		inTable = append(inTable, o)
		if key == "" {
			continue
		}
		if k.match == key {
			exact = append(exact, o)
		} else if strings.Contains(k.match, key) || strings.Contains(o.Record, key) {
			fuzzy = append(fuzzy, o)
		}
	}
	if len(inTable) == 0 {
		return nil, fmt.Errorf("%w: no entries recorded for table %q", obs.ErrNotFound, table)
	}
	cands := inTable
	if key != "" {
		cands = exact
		if len(cands) == 0 {
			cands = fuzzy
		}
		if len(cands) == 0 {
			return nil, fmt.Errorf("%w: no entry of table %q matches %q", obs.ErrNotFound, table, key)
		}
	}
	if len(cands) > 1 {
		return nil, fmt.Errorf("ambiguous: %d entries of table %q match %q (give the full match rendering)",
			len(cands), table, key)
	}
	cp := *cands[0]
	return &cp, nil
}

// renderMatches renders a table entry's match fields in the stable
// operator-facing form used as the entry key and echoed by
// /debug/explain: comma-separated name=value pairs (lpm as value/len,
// ternary as value&mask, wildcarded optional as *), with a ";prio=N"
// suffix on priority tables.
func renderMatches(b *codegen.OutputTableBinding, e p4rt.TableEntry) string {
	var sb strings.Builder
	for i, kb := range b.Keys {
		if i > 0 {
			sb.WriteString(", ")
		}
		if i >= len(e.Matches) {
			break
		}
		m := e.Matches[i]
		sb.WriteString(kb.Name)
		sb.WriteByte('=')
		switch kb.Match {
		case p4.MatchLPM:
			fmt.Fprintf(&sb, "%d/%d", m.Value, m.PrefixLen)
		case p4.MatchTernary:
			fmt.Fprintf(&sb, "%d&%#x", m.Value, m.Mask)
		case p4.MatchOptional:
			if m.Wildcard {
				sb.WriteByte('*')
			} else {
				fmt.Fprintf(&sb, "%d", m.Value)
			}
		default:
			fmt.Fprintf(&sb, "%d", m.Value)
		}
	}
	if b.HasPriority {
		fmt.Fprintf(&sb, ";prio=%d", e.Priority)
	}
	return sb.String()
}

// ExplainResult is the /debug/explain response envelope.
type ExplainResult struct {
	Relation string `json:"relation"`
	Key      string `json:"key,omitempty"`
	// Entry is present when the query named a P4 table: the pushed
	// entry's identity and the transaction that pushed it.
	Entry *EntryOrigin        `json:"entry,omitempty"`
	Tree  *engine.ExplainNode `json:"tree"`
}

// Explain implements obs.Explainer. relation may name a P4 table (the
// entry is resolved to its source record first), a derived Datalog
// relation (key is the record's rendering), or an input relation (the
// result is a single leaf carrying the inserting transaction).
func (c *Controller) Explain(relation, key string, maxDepth, maxNodes int) (any, error) {
	if c.prov == nil || !c.rt.ProvenanceEnabled() {
		return nil, fmt.Errorf("provenance collection disabled")
	}
	opt := engine.ExplainOptions{MaxDepth: maxDepth, MaxNodes: maxNodes}
	if c.p4Tables[relation] {
		origin, err := c.prov.findEntry(relation, key)
		if err != nil {
			return nil, err
		}
		tree, ok := c.rt.Explain(origin.Relation, origin.rec, opt)
		if !ok {
			return nil, fmt.Errorf("%w: entry's source fact %s%s has no recorded derivation (evicted?)",
				obs.ErrNotFound, origin.Relation, origin.Record)
		}
		c.annotate(tree)
		return &ExplainResult{Relation: relation, Key: origin.Matches, Entry: origin, Tree: tree}, nil
	}
	role, ok := c.rt.RelationRole(relation)
	if !ok {
		return nil, fmt.Errorf("%w: unknown relation or table %q", obs.ErrNotFound, relation)
	}
	if role == ast.RoleInput {
		return c.explainInput(relation, key)
	}
	if key == "" {
		return nil, fmt.Errorf("missing key parameter (the record rendering, e.g. %q)", `(1, 2)`)
	}
	tree, ok := c.rt.ExplainRendered(relation, key, opt)
	if !ok {
		return nil, fmt.Errorf("%w: no recorded derivation for %s%s", obs.ErrNotFound, relation, key)
	}
	c.annotate(tree)
	return &ExplainResult{Relation: relation, Key: key, Tree: tree}, nil
}

// explainInput answers an explain query on an input relation: a single
// leaf, annotated with the transaction that inserted the record.
func (c *Controller) explainInput(relation, key string) (any, error) {
	if key == "" {
		return nil, fmt.Errorf("missing key parameter (the record rendering)")
	}
	recs, err := c.rt.Contents(relation)
	if err != nil {
		return nil, err
	}
	for _, rec := range recs {
		if rec.String() != key {
			continue
		}
		leaf := &engine.ExplainNode{
			Relation: relation, Record: key, Kind: "input",
			Tuple: rec, RecordKey: rec.Key(),
		}
		if o, ok := c.prov.lookupInput(relation, rec.Key()); ok {
			leaf.TxnID = o.txnID
		}
		return &ExplainResult{Relation: relation, Key: key, Tree: leaf}, nil
	}
	return nil, fmt.Errorf("%w: no record %s in input relation %s", obs.ErrNotFound, key, relation)
}

// annotate walks a derivation tree filling TxnID on input leaves from
// the controller's input-origin map.
func (c *Controller) annotate(n *engine.ExplainNode) {
	if n == nil {
		return
	}
	if n.Kind == "input" && n.RecordKey != "" {
		if o, ok := c.prov.lookupInput(n.Relation, n.RecordKey); ok {
			n.TxnID = o.txnID
		}
	}
	for _, ch := range n.Children {
		c.annotate(ch)
	}
}

// noteInputs records (or drops) the origin of each input update of one
// applied transaction. Runs on the event-loop goroutine after a
// successful Apply. For a coalesced event, each update is attributed to
// the commit whose segment delivered it — not the merged event's txnID —
// so /debug/explain keeps naming the true originating transaction.
func (c *Controller) noteInputs(ev *event) {
	if c.prov == nil {
		return
	}
	ev.eachSeg(func(txnID uint64, ups []engine.Update) {
		for _, up := range ups {
			if up.Insert {
				c.prov.noteInput(up.Relation, up.Rec.Key(), inputOrigin{txnID: txnID, source: ev.source})
			} else {
				c.prov.dropInput(up.Relation, up.Rec.Key())
			}
		}
	})
}

// pendingOrigin is one entry-origin mutation staged during push and
// applied only once the data-plane writes succeed.
type pendingOrigin struct {
	key    entryKey
	origin *EntryOrigin // nil = delete
}

// observeProvenance refreshes the obs_provenance_* gauges. Called from
// record(), i.e. once per transaction on the event loop.
func (c *Controller) observeProvenance() {
	if c.prov == nil {
		return
	}
	es := c.rt.ProvenanceStats()
	entries, inputs, evicted := c.prov.sizes()
	c.m.provFacts.Set(float64(es.Facts))
	c.m.provEvictions.Set(float64(es.Evictions + evicted))
	c.m.provEntries.Set(float64(entries))
	c.m.provInputs.Set(float64(inputs))
}
