package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/ovsdb"
	"repro/internal/p4"
	"repro/internal/p4rt"
	"repro/internal/snvs"
)

// fakeTR is a fake reconnected device for Resync: it holds the device's
// "actual" tables and applies the reconciliation writes it receives.
type fakeTR struct {
	mu      sync.Mutex
	entries map[string]p4rt.TableEntry // keyed by entryIdent
	mcast   map[uint16][]uint16
	writes  [][]p4rt.Update
	reads   []string
	failRd  bool
}

func newFakeTR() *fakeTR {
	return &fakeTR{entries: map[string]p4rt.TableEntry{}, mcast: map[uint16][]uint16{}}
}

func (f *fakeTR) ReadTable(table string) ([]p4rt.TableEntry, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.reads = append(f.reads, table)
	if f.failRd {
		return nil, fmt.Errorf("fake: %w", p4rt.ErrUnavailable)
	}
	var out []p4rt.TableEntry
	for _, e := range f.entries {
		if e.Table == table {
			out = append(out, e)
		}
	}
	return out, nil
}

func (f *fakeTR) Write(updates ...p4rt.Update) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writes = append(f.writes, updates)
	for _, u := range updates {
		if u.Entry != nil {
			if u.Type == p4rt.UpdateDelete {
				delete(f.entries, entryIdent(u.Entry))
			} else {
				f.entries[entryIdent(u.Entry)] = *u.Entry
			}
		}
		if u.Multicast != nil {
			if len(u.Multicast.Ports) == 0 {
				delete(f.mcast, u.Multicast.Group)
			} else {
				f.mcast[u.Multicast.Group] = append([]uint16(nil), u.Multicast.Ports...)
			}
		}
	}
	return nil
}

// flat returns all applied updates in order.
func (f *fakeTR) flat() []p4rt.Update {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []p4rt.Update
	for _, w := range f.writes {
		out = append(out, w...)
	}
	return out
}

func insertPorts(t *testing.T, mp *fakeMP) {
	t.Helper()
	transact(t, mp,
		ovsdb.OpInsert("SwitchCfg", map[string]ovsdb.Value{"name": "s", "flood_unknown": true}),
		ovsdb.OpInsert("Port", map[string]ovsdb.Value{
			"name": "p1", "port_num": int64(1), "vlan_mode": "access", "tag": int64(10),
		}),
		ovsdb.OpInsert("Port", map[string]ovsdb.Value{
			"name": "p2", "port_num": int64(2), "vlan_mode": "access", "tag": int64(10),
		}),
	)
}

// TestResyncRestoresEmptyDevice: a device that restarted with empty
// tables gets the controller's full desired state, and a second resync
// against the now-converged device issues no table writes.
func TestResyncRestoresEmptyDevice(t *testing.T) {
	mp, dp := newFakes(t)
	insertPorts(t, mp)
	ctrl := startCtrl(t, mp, dp)
	if err := ctrl.Barrier(); err != nil {
		t.Fatal(err)
	}

	// The restarted device comes back blank.
	tr := newFakeTR()
	if err := ctrl.Resync("dev0", tr); err != nil {
		t.Fatalf("resync: %v", err)
	}
	ups := tr.flat()
	var inserts, mcasts int
	for _, u := range ups {
		if u.Entry != nil {
			if u.Type != p4rt.UpdateInsert {
				t.Fatalf("resync to empty device issued %s of %v", u.Type, u.Entry)
			}
			inserts++
		}
		if u.Multicast != nil {
			mcasts++
		}
	}
	if inserts == 0 || mcasts == 0 {
		t.Fatalf("resync wrote %d inserts, %d mcast groups; want both > 0", inserts, mcasts)
	}
	if len(tr.reads) == 0 {
		t.Fatalf("resync did not read any tables")
	}

	// The device must now exactly match what the live device received.
	live := newFakeTR()
	if err := live.Write(dp.allUpdates()...); err != nil {
		t.Fatal(err)
	}
	if len(live.entries) != len(tr.entries) {
		t.Fatalf("resynced device has %d entries, live device has %d", len(tr.entries), len(live.entries))
	}
	for k := range live.entries {
		if _, ok := tr.entries[k]; !ok {
			t.Fatalf("resynced device missing entry %s", k)
		}
	}

	// Converged: a second resync writes no table entries (multicast is
	// re-pushed unconditionally — it has no read-back API).
	before := len(tr.flat())
	if err := ctrl.Resync("dev0", tr); err != nil {
		t.Fatalf("second resync: %v", err)
	}
	for _, u := range tr.flat()[before:] {
		if u.Entry != nil {
			t.Fatalf("second resync issued table write %v", u)
		}
	}
}

// TestResyncDeletesStaleAndFixesDrift: entries the controller never
// asked for are deleted; entries whose action drifted are modified.
func TestResyncDeletesStaleAndFixesDrift(t *testing.T) {
	mp, dp := newFakes(t)
	insertPorts(t, mp)
	ctrl := startCtrl(t, mp, dp)
	if err := ctrl.Barrier(); err != nil {
		t.Fatal(err)
	}

	// Start from the converged state, then corrupt it: one stale extra
	// entry, and one desired entry with a drifted action parameter.
	tr := newFakeTR()
	if err := tr.Write(dp.allUpdates()...); err != nil {
		t.Fatal(err)
	}
	stale := p4rt.TableEntry{
		Table:   "in_vlan",
		Matches: []p4.FieldMatch{{Value: 99}},
		Action:  "drop",
	}
	tr.entries[entryIdent(&stale)] = stale
	var driftedKey string
	for k, e := range tr.entries {
		if e.Table == "in_vlan" && len(e.Params) > 0 {
			e.Params = append([]uint64(nil), e.Params...)
			e.Params[0]++
			tr.entries[k] = e
			driftedKey = k
			break
		}
	}
	if driftedKey == "" {
		t.Fatalf("no in_vlan entry with params to drift")
	}

	before := len(tr.flat())
	if err := ctrl.Resync("dev0", tr); err != nil {
		t.Fatalf("resync: %v", err)
	}
	var sawDelete, sawModify bool
	for _, u := range tr.flat()[before:] {
		if u.Entry == nil {
			continue
		}
		switch u.Type {
		case p4rt.UpdateDelete:
			if entryIdent(u.Entry) != entryIdent(&stale) {
				t.Fatalf("deleted unexpected entry %v", u.Entry)
			}
			sawDelete = true
		case p4rt.UpdateModify:
			if entryIdent(u.Entry) != driftedKey {
				t.Fatalf("modified unexpected entry %v", u.Entry)
			}
			sawModify = true
		case p4rt.UpdateInsert:
			t.Fatalf("unexpected insert %v", u.Entry)
		}
	}
	if !sawDelete || !sawModify {
		t.Fatalf("resync: sawDelete=%v sawModify=%v; want both", sawDelete, sawModify)
	}
	if _, ok := tr.entries[entryIdent(&stale)]; ok {
		t.Fatalf("stale entry survived resync")
	}
}

// TestResyncErrors: unknown devices and unreadable devices report
// errors (the caller's redial loop retries); a stopped controller
// refuses cleanly.
func TestResyncErrors(t *testing.T) {
	mp, dp := newFakes(t)
	ctrl := startCtrl(t, mp, dp)
	if err := ctrl.Barrier(); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Resync("nope", newFakeTR()); err == nil {
		t.Fatalf("resync of unknown device succeeded")
	}
	tr := newFakeTR()
	tr.failRd = true
	if err := ctrl.Resync("dev0", tr); !errors.Is(err, p4rt.ErrUnavailable) {
		t.Fatalf("resync with failing reads: %v, want ErrUnavailable", err)
	}
	ctrl.Stop()
	if err := ctrl.Resync("dev0", newFakeTR()); err == nil {
		t.Fatalf("resync after Stop succeeded")
	}
}

// TestPushToleratesUnavailableDevice: writes to a device that is merely
// unreachable must not poison the controller — the desired state keeps
// advancing and a resync heals the gap.
func TestPushToleratesUnavailableDevice(t *testing.T) {
	o := obs.NewObserver()
	mp, dp := newFakes(t)
	transact(t, mp,
		ovsdb.OpInsert("SwitchCfg", map[string]ovsdb.Value{"name": "s", "flood_unknown": true}),
	)
	ctrl, err := New(Config{Rules: snvs.Rules, Database: "snvs", Obs: o}, mp, dp)
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	t.Cleanup(ctrl.Stop)
	if err := ctrl.Barrier(); err != nil {
		t.Fatal(err)
	}

	// Device goes dark; the management plane keeps changing. Monitor
	// delivery is asynchronous, so wait for the failed push itself
	// rather than a barrier (which can outrun the delivery goroutine).
	dp.setUnavailable(true)
	transact(t, mp, ovsdb.OpInsert("Port", map[string]ovsdb.Value{
		"name": "p1", "port_num": int64(1), "vlan_mode": "access", "tag": int64(10),
	}))
	waitCounter(t, o, "core_push_errors_total", 1)
	if err := ctrl.Err(); err != nil {
		t.Fatalf("controller failed on unavailable device: %v", err)
	}

	// A write the switch actively rejects is still fatal.
	// (Separate sub-check below via failNext in other tests; here we heal.)
	dp.setUnavailable(false)
	transact(t, mp, ovsdb.OpInsert("Port", map[string]ovsdb.Value{
		"name": "p2", "port_num": int64(2), "vlan_mode": "access", "tag": int64(10),
	}))
	if err := ctrl.Barrier(); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Err(); err != nil {
		t.Fatalf("controller failed after device healed: %v", err)
	}

	// The resync includes the updates missed during the outage: p1's
	// entry was never written to the device, but it is in desired state.
	tr := newFakeTR()
	if err := ctrl.Resync("dev0", tr); err != nil {
		t.Fatalf("resync: %v", err)
	}
	var sawP1 bool
	for _, e := range tr.entries {
		if e.Table == "in_vlan" {
			for _, m := range e.Matches {
				if m.Value == 1 {
					sawP1 = true
				}
			}
		}
	}
	if !sawP1 {
		t.Fatalf("resync missing entry for port written during outage")
	}
	if got := counterValue(t, o, "core_resyncs_total"); got != 1 {
		t.Fatalf("core_resyncs_total = %d, want 1", got)
	}
	if got := counterValue(t, o, "core_push_errors_total"); got == 0 {
		t.Fatalf("core_push_errors_total = 0, want > 0")
	}
}

// TestPushStillFailsOnRejectedWrite: a non-unavailable write error (the
// switch rejected the update) still stops the controller.
func TestPushStillFailsOnRejectedWrite(t *testing.T) {
	mp, dp := newFakes(t)
	ctrl := startCtrl(t, mp, dp)
	if err := ctrl.Barrier(); err != nil {
		t.Fatal(err)
	}
	dp.mu.Lock()
	dp.failNext = true
	dp.mu.Unlock()
	transact(t, mp,
		ovsdb.OpInsert("SwitchCfg", map[string]ovsdb.Value{"name": "s", "flood_unknown": true}),
		ovsdb.OpInsert("Port", map[string]ovsdb.Value{
			"name": "p1", "port_num": int64(1), "vlan_mode": "access", "tag": int64(10),
		}),
	)
	deadlineErr := waitErr(t, ctrl)
	var fe *failErr
	if !errors.As(deadlineErr, &fe) {
		t.Fatalf("controller error = %v, want injected write failure", deadlineErr)
	}
}

// counterValue reads a registered counter's current value (duplicate
// registration returns the existing series).
func counterValue(t *testing.T, o *obs.Observer, name string) uint64 {
	t.Helper()
	return o.Reg().Counter(name, "").Value()
}

// waitCounter polls until the counter reaches at least want.
func waitCounter(t *testing.T, o *obs.Observer, name string, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if counterValue(t, o, name) >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s = %d, want >= %d", name, counterValue(t, o, name), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// waitErr polls until the controller records a failure.
func waitErr(t *testing.T, ctrl *Controller) error {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := ctrl.Err(); err != nil {
			return err
		}
		if time.Now().After(deadline) {
			t.Fatalf("controller never failed")
		}
		time.Sleep(time.Millisecond)
	}
}
