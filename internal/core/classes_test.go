package core

import (
	"strings"
	"testing"

	"repro/internal/p4"
	"repro/internal/snvs"
)

func leafInfo(t *testing.T) *p4.P4Info {
	t.Helper()
	info, err := p4.BuildP4Info(snvs.Pipeline())
	if err != nil {
		t.Fatal(err)
	}
	return info
}

func TestNewWithClassesValidation(t *testing.T) {
	mp, dp := newFakes(t)
	dp2 := &fakeDP{info: dp.info}

	cases := map[string]struct {
		classes []DeviceClass
		want    string
	}{
		"no classes": {nil, "no device classes"},
		"empty class": {
			[]DeviceClass{{Name: "Leaf"}}, "has no devices"},
		"duplicate class": {
			[]DeviceClass{
				{Name: "A", Devices: []Device{{ID: "d1", DP: dp}}},
				{Name: "A", Devices: []Device{{ID: "d2", DP: dp2}}},
			}, "duplicate device class"},
		"duplicate device id": {
			[]DeviceClass{{Name: "A", Devices: []Device{
				{ID: "d1", DP: dp}, {ID: "d1", DP: dp2},
			}}}, "duplicate device id"},
	}
	for name, c := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := NewWithClasses(Config{Rules: snvs.Rules, Database: "snvs"}, mp, c.classes)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error = %v, want %q", err, c.want)
			}
		})
	}
}

func TestNewWithClassesProgramMismatch(t *testing.T) {
	mp, dp := newFakes(t)
	other := *dp.info
	other.Program = "different"
	dp2 := &fakeDP{info: &other}
	_, err := NewWithClasses(Config{Rules: snvs.Rules, Database: "snvs"}, mp,
		[]DeviceClass{{Devices: []Device{{ID: "a", DP: dp}, {ID: "b", DP: dp2}}}})
	if err == nil || !strings.Contains(err.Error(), "runs") {
		t.Fatalf("program mismatch accepted: %v", err)
	}
}

func TestClassPrefixedRulesCompile(t *testing.T) {
	// Two classes of the same program under different prefixes: rules must
	// reference the prefixed relations.
	mp, dp := newFakes(t)
	dp2 := &fakeDP{info: leafInfo(t)}
	rules := strings.NewReplacer(
		"InVlan(", "AInVlan(",
		"VlanOk(", "AVlanOk(",
		"Flood(", "AFlood(",
		"MulticastGroup(", "AMulticastGroup(",
		"Dmac(", "ADmac(",
		"Smac(", "ASmac(",
		"MirrorIngress(", "AMirrorIngress(",
		"AclSrc(", "AAclSrc(",
		"StripTag(", "AStripTag(",
		"AddTag(", "AAddTag(",
		"Learn(", "ALearn(",
	).Replace(snvs.Rules)
	ctrl, err := NewWithClasses(Config{Rules: rules, Database: "snvs"}, mp,
		[]DeviceClass{
			{Name: "A", Devices: []Device{{ID: "a0", DP: dp}}},
			{Name: "B", Devices: []Device{{ID: "b0", DP: dp2}}},
		})
	if err != nil {
		t.Fatalf("NewWithClasses: %v", err)
	}
	defer ctrl.Stop()
	if ctrl.Program().Relation("AInVlan") == nil || ctrl.Program().Relation("BInVlan") == nil {
		t.Fatalf("prefixed relations missing")
	}
	// Class B has no rules: its relations stay empty, which is legal.
	if err := ctrl.Barrier(); err != nil {
		t.Fatal(err)
	}
}

func TestStopIdempotentAndBarrierAfterStop(t *testing.T) {
	mp, dp := newFakes(t)
	ctrl := startCtrl(t, mp, dp)
	ctrl.Stop()
	ctrl.Stop() // second stop must not panic
	if err := ctrl.Barrier(); err != nil {
		// Barrier after stop returns the recorded error (nil here) or
		// simply unblocks; either way it must not hang or panic.
		t.Logf("barrier after stop: %v", err)
	}
}
