// Resilience: the controller's side of surviving connection loss.
//
// The controller tracks, per device, the exact table entries and
// multicast groups it wants installed (the "desired state"), updated
// unconditionally as the engine emits deltas — including while a device
// is unreachable. When a device's connection heals, Resync diffs the
// device's actual tables (ReadTable) against the desired state and
// writes only the difference, so reconvergence costs one snapshot plus
// the drift, not a full replay.
package core

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/p4rt"
)

// TableReader is the device surface Resync needs: implemented by
// *p4rt.Client (and *p4rt.ResilientClient). Data planes that cannot
// snapshot their tables simply never get resynced.
type TableReader interface {
	ReadTable(table string) ([]p4rt.TableEntry, error)
	Write(updates ...p4rt.Update) error
}

// deviceDesired is the controller's desired data-plane state for one
// device. Mutated only on the event-loop goroutine.
type deviceDesired struct {
	// entries maps the canonical (table, matches, priority) key to the
	// full desired entry.
	entries map[string]p4rt.TableEntry
	// mcast maps group id to desired ports.
	mcast map[uint16][]uint16
}

// entryIdent canonically identifies an entry slot: same table, matches
// and priority → same slot (action and params are the slot's value).
func entryIdent(e *p4rt.TableEntry) string {
	b, _ := json.Marshal(struct {
		T string          `json:"t"`
		M json.RawMessage `json:"m"`
		P int             `json:"p"`
	}{T: e.Table, M: mustJSON(e.Matches), P: e.Priority})
	return string(b)
}

func mustJSON(v any) json.RawMessage {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}

// sameValue reports whether two entries program the same action.
func sameValue(a, b *p4rt.TableEntry) bool {
	if a.Action != b.Action || len(a.Params) != len(b.Params) {
		return false
	}
	for i := range a.Params {
		if a.Params[i] != b.Params[i] {
			return false
		}
	}
	return true
}

// noteDesired folds one device's write stream into its desired state.
// Called from push (event-loop goroutine) before the write is issued, so
// the desired state advances even when the device is down.
func (c *Controller) noteDesired(device string, updates []p4rt.Update) {
	d := c.desired[device]
	if d == nil {
		d = &deviceDesired{
			entries: make(map[string]p4rt.TableEntry),
			mcast:   make(map[uint16][]uint16),
		}
		c.desired[device] = d
	}
	for _, u := range updates {
		if u.Entry != nil {
			key := entryIdent(u.Entry)
			if u.Type == p4rt.UpdateDelete {
				delete(d.entries, key)
			} else {
				d.entries[key] = *u.Entry
			}
		}
		if u.Multicast != nil {
			if len(u.Multicast.Ports) == 0 {
				delete(d.mcast, u.Multicast.Group)
			} else {
				d.mcast[u.Multicast.Group] = append([]uint16(nil), u.Multicast.Ports...)
			}
		}
	}
}

// resyncReq asks the event loop to reconcile one device against its
// desired state using the given (freshly reconnected) connection.
type resyncReq struct {
	device string
	dp     TableReader
	done   chan error
}

// Resync reconciles device's actual tables against the controller's
// desired state, writing only the difference through dp. It is safe to
// call from any goroutine — the reconciliation itself runs serialized on
// the controller's event loop, so it observes a consistent desired
// state. Intended as the body of a p4rt ResilientClient OnReconnect
// hook, where dp is the fresh not-yet-published client.
func (c *Controller) Resync(device string, dp TableReader) error {
	req := &resyncReq{device: device, dp: dp, done: make(chan error, 1)}
	if !c.enqueue(event{source: "resync", resync: req}) {
		return fmt.Errorf("core: resync %s: controller stopped", device)
	}
	select {
	case err := <-req.done:
		return err
	case <-c.done:
		return fmt.Errorf("core: resync %s: controller stopped", device)
	}
}

// classTables returns the sorted table names a device's class binds.
func (c *Controller) classTables(cs *classState) []string {
	seen := make(map[string]bool)
	for _, b := range cs.gen.Outputs {
		seen[b.Table] = true
	}
	tables := make([]string, 0, len(seen))
	for t := range seen {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	return tables
}

// doResync runs on the event loop. It reads every bound table of the
// device's class, diffs against desired, and writes deletes for stale
// entries, inserts for missing ones, and modifies for entries whose
// action drifted. Multicast groups cannot be read back, so all desired
// groups are re-pushed — SetMulticast is absolute, making that
// idempotent. Returns the first error (the caller's redial loop retries).
func (c *Controller) doResync(device string, dp TableReader) error {
	start := time.Now()
	cs := c.devClass[device]
	if cs == nil {
		return fmt.Errorf("core: resync: unknown device %q", device)
	}
	d := c.desired[device]
	if d == nil {
		d = &deviceDesired{entries: map[string]p4rt.TableEntry{}, mcast: map[uint16][]uint16{}}
	}

	actual := make(map[string]p4rt.TableEntry)
	for _, table := range c.classTables(cs) {
		entries, err := dp.ReadTable(table)
		if err != nil {
			return fmt.Errorf("core: resync %s: reading %s: %w", device, table, err)
		}
		for i := range entries {
			e := entries[i]
			if e.Table == "" {
				e.Table = table
			}
			actual[entryIdent(&e)] = e
		}
	}

	var dels, rest []p4rt.Update
	for key, e := range actual {
		if _, ok := d.entries[key]; !ok {
			dels = append(dels, p4rt.DeleteEntry(e))
		}
	}
	for key, want := range d.entries {
		got, ok := actual[key]
		switch {
		case !ok:
			rest = append(rest, p4rt.InsertEntry(want))
		case !sameValue(&got, &want):
			rest = append(rest, p4rt.ModifyEntry(want))
		}
	}
	sortUpdates(dels)
	sortUpdates(rest)
	groups := make([]uint16, 0, len(d.mcast))
	for g := range d.mcast {
		groups = append(groups, g)
	}
	sortU16(groups)
	for _, g := range groups {
		rest = append(rest, p4rt.SetMulticast(g, d.mcast[g]))
	}

	updates := append(dels, rest...)
	if len(updates) > 0 {
		if err := dp.Write(updates...); err != nil {
			return fmt.Errorf("core: resync %s: %w", device, err)
		}
	}
	c.m.resyncs.Inc()
	c.rec.Append(obs.Ev("core", "conn.resync").WithDevice(device).
		F("deleted", int64(len(dels))).
		F("written", int64(len(updates)-len(dels))).
		F("resync_us", time.Since(start).Microseconds()))
	return nil
}

// sortUpdates orders updates deterministically by their entry identity.
func sortUpdates(ups []p4rt.Update) {
	sort.Slice(ups, func(i, j int) bool {
		var a, b string
		if ups[i].Entry != nil {
			a = entryIdent(ups[i].Entry)
		}
		if ups[j].Entry != nil {
			b = entryIdent(ups[j].Entry)
		}
		return a < b
	})
}
