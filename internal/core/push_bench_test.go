package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/p4"
	"repro/internal/p4rt"
)

// slowDP models a device whose Write has wire latency, so the benefit of
// fanning writes out across devices is visible as wall-clock time.
type slowDP struct {
	latency time.Duration
	fail    error

	mu     sync.Mutex
	writes [][]p4rt.Update
}

func (d *slowDP) GetP4Info() (*p4.P4Info, error) { return nil, nil }
func (d *slowDP) OnDigest(func(p4rt.DigestList)) {}

func (d *slowDP) Write(updates ...p4rt.Update) error {
	if d.latency > 0 {
		time.Sleep(d.latency)
	}
	if d.fail != nil {
		return d.fail
	}
	d.mu.Lock()
	d.writes = append(d.writes, updates)
	d.mu.Unlock()
	return nil
}

func deviceWrites(n, batches int, fail map[int]error) ([]*devWrite, []*slowDP) {
	writes := make([]*devWrite, n)
	dps := make([]*slowDP, n)
	for i := range writes {
		dps[i] = &slowDP{latency: 50 * time.Microsecond, fail: fail[i]}
		dw := &devWrite{dp: dps[i]}
		for b := 0; b < batches; b++ {
			dw.batches = append(dw.batches, []p4rt.Update{
				p4rt.InsertEntry(p4rt.TableEntry{Table: fmt.Sprintf("t%d", b)}),
			})
		}
		writes[i] = dw
	}
	return writes, dps
}

// TestWriteDevicesOrderingAndBarrier: every device must receive its whole
// batch stream, in order, before writeDevices returns, at any worker
// count (run under -race this also exercises the fan-out for data races).
func TestWriteDevicesOrderingAndBarrier(t *testing.T) {
	for _, pw := range []int{1, 4, 64} {
		c := &Controller{cfg: Config{PushWorkers: pw}}
		writes, dps := deviceWrites(16, 5, nil)
		if err := c.writeDevices(writes); err != nil {
			t.Fatalf("PushWorkers=%d: %v", pw, err)
		}
		for i, dp := range dps {
			if len(dp.writes) != 5 {
				t.Fatalf("PushWorkers=%d: device %d got %d batches, want 5", pw, i, len(dp.writes))
			}
			for b, w := range dp.writes {
				if want := fmt.Sprintf("t%d", b); w[0].Entry.Table != want {
					t.Fatalf("PushWorkers=%d: device %d batch %d hit table %s, want %s",
						pw, i, b, w[0].Entry.Table, want)
				}
			}
		}
	}
}

// TestWriteDevicesFirstError: with several failing devices the reported
// error must deterministically be the first failing device's in delta
// order, regardless of which goroutine hit its error first.
func TestWriteDevicesFirstError(t *testing.T) {
	errA, errB := errors.New("dev3"), errors.New("dev11")
	for _, pw := range []int{1, 8} {
		c := &Controller{cfg: Config{PushWorkers: pw}}
		writes, _ := deviceWrites(16, 3, map[int]error{3: errA, 11: errB})
		if err := c.writeDevices(writes); !errors.Is(err, errA) {
			t.Fatalf("PushWorkers=%d: got error %v, want %v", pw, err, errA)
		}
	}
}

// BenchmarkConcurrentDeviceWrite measures a push touching many devices at
// several fan-out widths. Each device write carries simulated wire
// latency, so unlike the CPU-bound engine benchmarks the speedup here is
// observable even with GOMAXPROCS=1 (goroutines overlap sleeps).
func BenchmarkConcurrentDeviceWrite(b *testing.B) {
	const devices, batches = 32, 4
	for _, pw := range []int{1, 4, 16, 32} {
		b.Run(fmt.Sprintf("pushworkers-%d", pw), func(b *testing.B) {
			c := &Controller{cfg: Config{PushWorkers: pw}}
			writes, dps := deviceWrites(devices, batches, nil)
			var total atomic.Int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.writeDevices(writes); err != nil {
					b.Fatal(err)
				}
				total.Add(int64(devices))
			}
			b.StopTimer()
			for _, dp := range dps {
				dp.writes = nil
			}
			_ = total.Load()
		})
	}
}
