package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/dl/engine"
	"repro/internal/obs"
	"repro/internal/ovsdb"
	"repro/internal/snvs"
)

// startCoalescingCtrl boots a controller with monitor-delivery coalescing
// enabled and observability on (so provenance attribution is collected).
func startCoalescingCtrl(t *testing.T, mp *fakeMP, dp *fakeDP, window time.Duration) (*Controller, *obs.Observer) {
	t.Helper()
	o := obs.NewObserver()
	ctrl, err := New(Config{
		Rules: snvs.Rules, Database: "snvs", Obs: o,
		CoalesceMaxTxns: 8, CoalesceWindow: window,
	}, mp, dp)
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	t.Cleanup(ctrl.Stop)
	return ctrl, o
}

// findInputLeaf walks an explain tree for the input leaf whose record
// rendering contains the needle.
func findInputLeaf(n *engine.ExplainNode, needle string) *engine.ExplainNode {
	if n == nil {
		return nil
	}
	if n.Kind == "input" && strings.Contains(n.Record, needle) {
		return n
	}
	for _, ch := range n.Children {
		if leaf := findInputLeaf(ch, needle); leaf != nil {
			return leaf
		}
	}
	return nil
}

// portOrigins polls until every named port has a recorded input origin,
// returning each port's originating txn ID. It reads only the
// mutex-guarded provenance maps (input keys embed the record's string
// fields verbatim), never engine state, so it is safe to call while the
// event loop is mid-apply.
func portOrigins(t *testing.T, ctrl *Controller, names ...string) map[string]uint64 {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		txns := map[string]uint64{}
		ctrl.prov.mu.Lock()
		for k, origin := range ctrl.prov.inputs {
			if !strings.HasPrefix(k, "Port\x00") {
				continue
			}
			for _, name := range names {
				if strings.Contains(k, name) {
					txns[name] = origin.txnID
				}
			}
		}
		ctrl.prov.mu.Unlock()
		if len(txns) == len(names) {
			return txns
		}
		if time.Now().After(deadline) {
			t.Fatalf("input origins recorded for %v, want %v", txns, names)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCoalescingPreservesAttribution is the regression test for per-txn
// attribution under merged monitor batches: when two separately-committed
// ports arrive in one coalesced apply, /debug/explain must map each
// pushed entry back to the commit that inserted its port — not to the
// merged batch's (last) transaction ID.
func TestCoalescingPreservesAttribution(t *testing.T) {
	mp, dp := newFakes(t)
	ctrl, o := startCoalescingCtrl(t, mp, dp, 500*time.Millisecond)

	// Three separate commits, delivered asynchronously by the monitor.
	// The coalesce window all but guarantees the port commits land in one
	// merged apply.
	transact(t, mp, ovsdb.OpInsert("SwitchCfg", map[string]ovsdb.Value{"name": "s", "flood_unknown": true}))
	transact(t, mp, ovsdb.OpInsert("Port", map[string]ovsdb.Value{
		"name": "p1", "port_num": int64(1), "vlan_mode": "access", "tag": int64(10),
	}))
	transact(t, mp, ovsdb.OpInsert("Port", map[string]ovsdb.Value{
		"name": "p2", "port_num": int64(2), "vlan_mode": "access", "tag": int64(20),
	}))

	txnByPort := portOrigins(t, ctrl, "p1", "p2")
	if err := ctrl.Barrier(); err != nil {
		t.Fatalf("barrier: %v", err)
	}

	if merged := o.Reg().Counter("core_coalesced_txns_total", "").Value(); merged < 2 {
		t.Fatalf("core_coalesced_txns_total = %d, want >= 2 (no batch merged; coalescing inactive?)", merged)
	}
	if txnByPort["p1"] == 0 || txnByPort["p2"] == 0 {
		t.Fatalf("zero txn in input origins: %v", txnByPort)
	}
	if txnByPort["p1"] == txnByPort["p2"] {
		t.Fatalf("both ports attributed to txn %d: merged batch collapsed per-commit attribution", txnByPort["p1"])
	}

	// Full /debug/explain path: some pushed entry must reach an input
	// leaf for p1 annotated with p1's commit — not the merged apply's
	// txn ID (that is the last commit's, p2's at the earliest). The
	// entry's own source record is an output tuple (it never mentions
	// "p1"), so search by explain tree.
	ctrl.prov.mu.Lock()
	keys := make([]entryKey, 0, len(ctrl.prov.entries))
	for k := range ctrl.prov.entries {
		keys = append(keys, k)
	}
	ctrl.prov.mu.Unlock()
	if len(keys) == 0 {
		t.Fatal("no pushed entries recorded")
	}
	found := false
	for _, k := range keys {
		res, err := ctrl.Explain(k.table, k.match, 0, 0)
		if err != nil {
			continue // ambiguous or evicted; try the next entry
		}
		leaf := findInputLeaf(res.(*ExplainResult).Tree, "p1")
		if leaf == nil {
			continue
		}
		found = true
		if leaf.TxnID != txnByPort["p1"] {
			t.Fatalf("explain leaf for p1 carries txn %d, want p1's commit %d (merged batch misattributed)",
				leaf.TxnID, txnByPort["p1"])
		}
	}
	if !found {
		t.Fatal("no pushed entry's explain tree reaches a p1 input leaf")
	}
}

// TestCoalesceBarrierFlushes pins the control-event interaction: a
// barrier enqueued behind a partially-filled batch cuts the coalesce
// window short instead of waiting it out.
func TestCoalesceBarrierFlushes(t *testing.T) {
	mp, dp := newFakes(t)
	// A window far longer than the test's budget: if a barrier did not
	// cut it short, the poll below would take > 30s and time out.
	ctrl, _ := startCoalescingCtrl(t, mp, dp, 30*time.Second)

	transact(t, mp, ovsdb.OpInsert("SwitchCfg", map[string]ovsdb.Value{"name": "s", "flood_unknown": true}))
	transact(t, mp, ovsdb.OpInsert("Port", map[string]ovsdb.Value{
		"name": "p1", "port_num": int64(1), "vlan_mode": "access", "tag": int64(10),
	}))
	// Monitor delivery is asynchronous, so a single barrier could sneak
	// in ahead of the commits; barriers are issued repeatedly until the
	// port's entries reach the device. Each one must return promptly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		bStart := time.Now()
		if err := ctrl.Barrier(); err != nil {
			t.Fatalf("barrier: %v", err)
		}
		if d := time.Since(bStart); d > 2*time.Second {
			t.Fatalf("barrier took %v; coalesce window not cut short", d)
		}
		if len(dp.allUpdates()) >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("port never applied; coalesced batch stuck behind its window")
		}
		time.Sleep(time.Millisecond)
	}
}
