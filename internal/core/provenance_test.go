package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/codegen"
	"repro/internal/obs"
	"repro/internal/p4"
	"repro/internal/p4rt"
)

func TestRenderMatches(t *testing.T) {
	b := &codegen.OutputTableBinding{
		Keys: []codegen.KeyBinding{
			{Name: "port", Match: p4.MatchExact},
			{Name: "dst", Match: p4.MatchLPM},
			{Name: "mac", Match: p4.MatchTernary},
			{Name: "vlan", Match: p4.MatchOptional},
		},
		HasPriority: true,
	}
	e := p4rt.TableEntry{
		Matches: []p4.FieldMatch{
			{Value: 7},
			{Value: 0x0a000000, PrefixLen: 8},
			{Value: 0xff, Mask: 0xfff},
			{Wildcard: true},
		},
		Priority: 5,
	}
	got := renderMatches(b, e)
	want := "port=7, dst=167772160/8, mac=255&0xfff, vlan=*;prio=5"
	if got != want {
		t.Fatalf("renderMatches = %q, want %q", got, want)
	}

	e.Matches[3] = p4.FieldMatch{Value: 10}
	if got := renderMatches(b, e); !strings.Contains(got, "vlan=10") {
		t.Fatalf("non-wildcard optional renders as %q", got)
	}
}

func TestProvStateEviction(t *testing.T) {
	p := newProvState(4)
	for i := 0; i < 10; i++ {
		p.noteEntry(entryKey{table: "t", match: fmt.Sprintf("k=%d", i)},
			&EntryOrigin{Table: "t", Matches: fmt.Sprintf("k=%d", i)})
	}
	entries, _, evicted := p.sizes()
	if entries != 4 {
		t.Fatalf("entries = %d, want capacity 4", entries)
	}
	if evicted != 6 {
		t.Fatalf("evicted = %d, want 6", evicted)
	}
	// The newest survive, the oldest are gone.
	if _, err := p.findEntry("t", "k=9"); err != nil {
		t.Fatalf("newest entry evicted: %v", err)
	}
	if _, err := p.findEntry("t", "k=0"); !errors.Is(err, obs.ErrNotFound) {
		t.Fatalf("oldest entry still found (err=%v)", err)
	}
}

func TestProvStateFindEntry(t *testing.T) {
	p := newProvState(0)
	p.noteEntry(entryKey{device: "sw0", table: "fwd", match: "dst=1"},
		&EntryOrigin{Table: "fwd", Device: "sw0", Matches: "dst=1", Record: "(1, 2)"})
	p.noteEntry(entryKey{device: "sw0", table: "fwd", match: "dst=2"},
		&EntryOrigin{Table: "fwd", Device: "sw0", Matches: "dst=2", Record: "(2, 3)"})
	p.noteEntry(entryKey{device: "sw0", table: "acl", match: "src=9"},
		&EntryOrigin{Table: "acl", Device: "sw0", Matches: "src=9", Record: "(9)"})

	// Unique table needs no key.
	if o, err := p.findEntry("acl", ""); err != nil || o.Matches != "src=9" {
		t.Fatalf("findEntry(acl, \"\") = %v, %v", o, err)
	}
	// Ambiguous table without key is an error (but not a 404).
	if _, err := p.findEntry("fwd", ""); err == nil || errors.Is(err, obs.ErrNotFound) {
		t.Fatalf("ambiguous lookup err = %v, want non-404 error", err)
	}
	// Exact match wins.
	if o, err := p.findEntry("fwd", "dst=1"); err != nil || o.Record != "(1, 2)" {
		t.Fatalf("exact lookup = %v, %v", o, err)
	}
	// Substring on the source record resolves too.
	if o, err := p.findEntry("fwd", "(2, 3)"); err != nil || o.Matches != "dst=2" {
		t.Fatalf("record lookup = %v, %v", o, err)
	}
	// Unknown table and unknown key are 404s.
	if _, err := p.findEntry("nope", ""); !errors.Is(err, obs.ErrNotFound) {
		t.Fatalf("unknown table err = %v", err)
	}
	if _, err := p.findEntry("fwd", "dst=42"); !errors.Is(err, obs.ErrNotFound) {
		t.Fatalf("unknown key err = %v", err)
	}

	// Dropping an entry makes it unfindable and re-noting replaces it.
	p.dropEntry(entryKey{device: "sw0", table: "acl", match: "src=9"})
	if _, err := p.findEntry("acl", ""); !errors.Is(err, obs.ErrNotFound) {
		t.Fatalf("dropped entry still found (err=%v)", err)
	}
}

func TestProvStateInputOrigins(t *testing.T) {
	p := newProvState(2)
	p.noteInput("Port", "k1", inputOrigin{txnID: 7, source: "ovsdb"})
	if o, ok := p.lookupInput("Port", "k1"); !ok || o.txnID != 7 {
		t.Fatalf("lookupInput = %+v, %v", o, ok)
	}
	// Re-noting the same record updates in place without eviction.
	p.noteInput("Port", "k1", inputOrigin{txnID: 8, source: "ovsdb"})
	p.noteInput("Port", "k2", inputOrigin{txnID: 9, source: "ovsdb"})
	if o, _ := p.lookupInput("Port", "k1"); o.txnID != 8 {
		t.Fatalf("re-note did not update: %+v", o)
	}
	// Third distinct record evicts the oldest.
	p.noteInput("Port", "k3", inputOrigin{txnID: 10, source: "ovsdb"})
	if _, ok := p.lookupInput("Port", "k1"); ok {
		t.Fatal("oldest input origin not evicted")
	}
	p.dropInput("Port", "k2")
	if _, ok := p.lookupInput("Port", "k2"); ok {
		t.Fatal("dropped input origin still present")
	}
}
