package packet

import "testing"

// FuzzDecodeChain asserts the decoders never panic on arbitrary bytes and
// never claim success on inputs shorter than the header they parsed.
func FuzzDecodeChain(f *testing.F) {
	e := Ethernet{Dst: 0xffffffffffff, Src: 0x1, EtherType: EtherTypeVLAN}
	v := VLAN{VID: 10, EtherType: EtherTypeIPv4}
	ip := IP{TTL: 64, Protocol: ProtoUDP, Src: 1, Dst: 2}
	u := UDP{SrcPort: 1, DstPort: 2}
	full := u.Append(ip.Append(v.Append(e.Append(nil)), 8), 0)
	f.Add(full)
	f.Add([]byte{})
	f.Add(full[:10])
	arp := ARP{Op: ARPRequest, SenderHA: 1, SenderIP: 2, TargetIP: 3}
	ethArp := Ethernet{EtherType: EtherTypeARP}
	f.Add(arp.Append(ethArp.Append(nil)))

	f.Fuzz(func(t *testing.T, data []byte) {
		var eth Ethernet
		rest, err := eth.Decode(data)
		if err != nil {
			return
		}
		if len(data)-len(rest) != 14 {
			t.Fatalf("ethernet consumed %d bytes", len(data)-len(rest))
		}
		switch eth.EtherType {
		case EtherTypeVLAN:
			var vl VLAN
			if rest, err = vl.Decode(rest); err != nil {
				return
			}
			if vl.VID > 0xfff {
				t.Fatalf("vid out of range: %d", vl.VID)
			}
		case EtherTypeARP:
			var a ARP
			if _, err = a.Decode(rest); err != nil {
				return
			}
		case EtherTypeIPv4:
			var p IP
			if rest, err = p.Decode(rest); err != nil {
				return
			}
			if p.Protocol == ProtoUDP {
				var uh UDP
				_, _ = uh.Decode(rest)
			}
		}
	})
}
