package packet

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMACParseFormat(t *testing.T) {
	m, err := ParseMAC("00:11:22:aa:bb:cc")
	if err != nil {
		t.Fatalf("ParseMAC: %v", err)
	}
	if m != 0x001122aabbcc {
		t.Fatalf("MAC value = %#x", uint64(m))
	}
	if m.String() != "00:11:22:aa:bb:cc" {
		t.Fatalf("MAC string = %s", m)
	}
	if _, err := ParseMAC("nonsense"); err == nil {
		t.Fatalf("bad MAC accepted")
	}
	if !MAC(0xffffffffffff).IsBroadcast() || MAC(1).IsBroadcast() {
		t.Errorf("IsBroadcast wrong")
	}
	if !MAC(0x010000000000).IsMulticast() || MAC(0x001122334455).IsMulticast() {
		t.Errorf("IsMulticast wrong")
	}
}

func TestIPv4ParseFormat(t *testing.T) {
	ip, err := ParseIPv4("10.1.2.3")
	if err != nil || ip != 0x0a010203 {
		t.Fatalf("ParseIPv4 = %#x, %v", uint32(ip), err)
	}
	if ip.String() != "10.1.2.3" {
		t.Fatalf("IPv4 string = %s", ip)
	}
	if _, err := ParseIPv4("300.1.1.1"); err == nil {
		t.Fatalf("out-of-range octet accepted")
	}
}

func TestEthernetRoundTrip(t *testing.T) {
	e := Ethernet{Dst: 0xffffffffffff, Src: 0x001122334455, EtherType: EtherTypeIPv4}
	buf := e.Append(nil)
	buf = append(buf, 0xde, 0xad)
	var got Ethernet
	rest, err := got.Decode(buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got != e {
		t.Fatalf("round trip: %+v != %+v", got, e)
	}
	if len(rest) != 2 || rest[0] != 0xde {
		t.Fatalf("payload = %v", rest)
	}
}

func TestVLANRoundTrip(t *testing.T) {
	v := VLAN{PCP: 5, DEI: true, VID: 1234, EtherType: EtherTypeARP}
	var got VLAN
	rest, err := got.Decode(v.Append(nil))
	if err != nil || len(rest) != 0 {
		t.Fatalf("Decode: %v, rest %v", err, rest)
	}
	if got != v {
		t.Fatalf("round trip: %+v != %+v", got, v)
	}
}

func TestARPRoundTrip(t *testing.T) {
	a := ARP{Op: ARPRequest, SenderHA: 0x0a0b0c0d0e0f, SenderIP: 0x0a000001,
		TargetHA: 0, TargetIP: 0x0a000002}
	var got ARP
	rest, err := got.Decode(a.Append(nil))
	if err != nil || len(rest) != 0 {
		t.Fatalf("Decode: %v", err)
	}
	if got != a {
		t.Fatalf("round trip: %+v != %+v", got, a)
	}
}

func TestIPRoundTripAndChecksum(t *testing.T) {
	ip := IP{TOS: 0, ID: 7, TTL: 64, Protocol: ProtoUDP,
		Src: 0x0a000001, Dst: 0x0a000002}
	payload := []byte{1, 2, 3, 4}
	buf := ip.Append(nil, len(payload))
	buf = append(buf, payload...)
	var got IP
	rest, err := got.Decode(buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Src != ip.Src || got.Dst != ip.Dst || got.TTL != 64 ||
		got.Protocol != ProtoUDP || int(got.Length) != 20+len(payload) {
		t.Fatalf("round trip: %+v", got)
	}
	if len(rest) != 4 {
		t.Fatalf("payload = %v", rest)
	}
	// A correct header checksums to zero over the full header.
	if Checksum(buf[:20]) != 0 {
		t.Fatalf("header checksum does not verify")
	}
}

func TestUDPRoundTrip(t *testing.T) {
	u := UDP{SrcPort: 5353, DstPort: 53}
	var got UDP
	rest, err := got.Decode(u.Append(nil, 3))
	if err != nil || len(rest) != 0 {
		t.Fatalf("Decode: %v", err)
	}
	if got.SrcPort != 5353 || got.DstPort != 53 || got.Length != 11 {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestDecodeTruncated(t *testing.T) {
	var e Ethernet
	if _, err := e.Decode(make([]byte, 5)); err == nil {
		t.Errorf("truncated Ethernet accepted")
	}
	var v VLAN
	if _, err := v.Decode(make([]byte, 2)); err == nil {
		t.Errorf("truncated VLAN accepted")
	}
	var a ARP
	if _, err := a.Decode(make([]byte, 10)); err == nil {
		t.Errorf("truncated ARP accepted")
	}
	var ip IP
	if _, err := ip.Decode(make([]byte, 10)); err == nil {
		t.Errorf("truncated IP accepted")
	}
	bad := make([]byte, 20)
	bad[0] = 6 << 4 // IPv6 version
	if _, err := ip.Decode(bad); err == nil {
		t.Errorf("wrong IP version accepted")
	}
	var u UDP
	if _, err := u.Decode(make([]byte, 4)); err == nil {
		t.Errorf("truncated UDP accepted")
	}
}

func TestPropEthernetVLANRoundTrip(t *testing.T) {
	f := func(dst, src uint64, et uint16, pcp byte, vid uint16) bool {
		e := Ethernet{Dst: MAC(dst & 0xffffffffffff), Src: MAC(src & 0xffffffffffff), EtherType: EtherTypeVLAN}
		v := VLAN{PCP: pcp & 7, VID: vid & 0xfff, EtherType: et}
		buf := e.Append(nil)
		buf = v.Append(buf)
		var ge Ethernet
		var gv VLAN
		rest, err := ge.Decode(buf)
		if err != nil {
			return false
		}
		if _, err := gv.Decode(rest); err != nil {
			return false
		}
		return ge == e && gv == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropChecksumVerifies(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		ip := IP{
			TOS: byte(r.Intn(256)), ID: uint16(r.Intn(65536)),
			TTL: byte(r.Intn(256)), Protocol: byte(r.Intn(256)),
			Src: IPv4(r.Uint32()), Dst: IPv4(r.Uint32()),
			Flags: byte(r.Intn(8)), FragOff: uint16(r.Intn(1 << 13)),
		}
		buf := ip.Append(nil, r.Intn(100))
		if Checksum(buf) != 0 {
			t.Fatalf("checksum does not verify for %+v", ip)
		}
	}
}
