// Package packet provides Ethernet-family packet encoding and decoding for
// the behavioral switch. In the style of gopacket's DecodingLayerParser,
// layers decode into preallocated structs without copying or allocating,
// and serialization prepends layers onto a buffer.
package packet

import (
	"encoding/binary"
	"fmt"
)

// MAC is a 48-bit Ethernet address held in a uint64 (upper 16 bits zero),
// the same representation the data plane's bit<48> fields use.
type MAC uint64

// ParseMAC parses the colon-separated hexadecimal form.
func ParseMAC(s string) (MAC, error) {
	var b [6]uint64
	if _, err := fmt.Sscanf(s, "%02x:%02x:%02x:%02x:%02x:%02x",
		&b[0], &b[1], &b[2], &b[3], &b[4], &b[5]); err != nil {
		return 0, fmt.Errorf("packet: bad MAC %q: %w", s, err)
	}
	var m MAC
	for _, x := range b {
		m = m<<8 | MAC(x)
	}
	return m, nil
}

func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x",
		byte(m>>40), byte(m>>32), byte(m>>24), byte(m>>16), byte(m>>8), byte(m))
}

// IsBroadcast reports whether the address is ff:ff:ff:ff:ff:ff.
func (m MAC) IsBroadcast() bool { return m == 0xffffffffffff }

// IsMulticast reports whether the group bit is set.
func (m MAC) IsMulticast() bool { return m>>40&1 == 1 }

// IPv4 is an IPv4 address in host byte order.
type IPv4 uint32

// ParseIPv4 parses dotted-quad notation.
func ParseIPv4(s string) (IPv4, error) {
	var a, b, c, d uint32
	if _, err := fmt.Sscanf(s, "%d.%d.%d.%d", &a, &b, &c, &d); err != nil {
		return 0, fmt.Errorf("packet: bad IPv4 %q: %w", s, err)
	}
	if a > 255 || b > 255 || c > 255 || d > 255 {
		return 0, fmt.Errorf("packet: bad IPv4 %q: octet out of range", s)
	}
	return IPv4(a<<24 | b<<16 | c<<8 | d), nil
}

func (ip IPv4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// EtherTypes.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeARP  uint16 = 0x0806
	EtherTypeVLAN uint16 = 0x8100
	EtherTypeIPv6 uint16 = 0x86dd
)

// IP protocol numbers.
const (
	ProtoICMP byte = 1
	ProtoTCP  byte = 6
	ProtoUDP  byte = 17
)

// Ethernet is an Ethernet II header.
type Ethernet struct {
	Dst, Src  MAC
	EtherType uint16
}

const ethernetLen = 14

// Decode parses the header, returning the remaining payload without
// copying.
func (e *Ethernet) Decode(b []byte) ([]byte, error) {
	if len(b) < ethernetLen {
		return nil, fmt.Errorf("packet: truncated Ethernet header (%d bytes)", len(b))
	}
	e.Dst = decodeMAC(b[0:6])
	e.Src = decodeMAC(b[6:12])
	e.EtherType = binary.BigEndian.Uint16(b[12:14])
	return b[ethernetLen:], nil
}

// decodeMAC reads 6 bytes big-endian without allocating.
func decodeMAC(b []byte) MAC {
	return MAC(b[0])<<40 | MAC(b[1])<<32 | MAC(b[2])<<24 |
		MAC(b[3])<<16 | MAC(b[4])<<8 | MAC(b[5])
}

func putMAC(b []byte, m MAC) {
	b[0], b[1], b[2], b[3], b[4], b[5] =
		byte(m>>40), byte(m>>32), byte(m>>24), byte(m>>16), byte(m>>8), byte(m)
}

// Append serializes the header onto buf.
func (e *Ethernet) Append(buf []byte) []byte {
	var h [ethernetLen]byte
	putMAC(h[0:6], e.Dst)
	putMAC(h[6:12], e.Src)
	binary.BigEndian.PutUint16(h[12:14], e.EtherType)
	return append(buf, h[:]...)
}

// VLAN is an 802.1Q tag.
type VLAN struct {
	PCP       byte   // priority code point (3 bits)
	DEI       bool   // drop eligible indicator
	VID       uint16 // VLAN identifier (12 bits)
	EtherType uint16 // encapsulated ethertype
}

const vlanLen = 4

// Decode parses the tag, returning the remaining payload.
func (v *VLAN) Decode(b []byte) ([]byte, error) {
	if len(b) < vlanLen {
		return nil, fmt.Errorf("packet: truncated VLAN tag (%d bytes)", len(b))
	}
	tci := binary.BigEndian.Uint16(b[0:2])
	v.PCP = byte(tci >> 13)
	v.DEI = tci>>12&1 == 1
	v.VID = tci & 0x0fff
	v.EtherType = binary.BigEndian.Uint16(b[2:4])
	return b[vlanLen:], nil
}

// Append serializes the tag onto buf.
func (v *VLAN) Append(buf []byte) []byte {
	tci := uint16(v.PCP)<<13 | v.VID&0x0fff
	if v.DEI {
		tci |= 1 << 12
	}
	var h [vlanLen]byte
	binary.BigEndian.PutUint16(h[0:2], tci)
	binary.BigEndian.PutUint16(h[2:4], v.EtherType)
	return append(buf, h[:]...)
}

// ARP is an IPv4-over-Ethernet ARP message.
type ARP struct {
	Op                 uint16 // 1 request, 2 reply
	SenderHA, TargetHA MAC
	SenderIP, TargetIP IPv4
}

const arpLen = 28

// ARP operation codes.
const (
	ARPRequest uint16 = 1
	ARPReply   uint16 = 2
)

// Decode parses the message, returning any trailing bytes.
func (a *ARP) Decode(b []byte) ([]byte, error) {
	if len(b) < arpLen {
		return nil, fmt.Errorf("packet: truncated ARP (%d bytes)", len(b))
	}
	if htype := binary.BigEndian.Uint16(b[0:2]); htype != 1 {
		return nil, fmt.Errorf("packet: ARP hardware type %d unsupported", htype)
	}
	if ptype := binary.BigEndian.Uint16(b[2:4]); ptype != EtherTypeIPv4 {
		return nil, fmt.Errorf("packet: ARP protocol type %#04x unsupported", ptype)
	}
	if b[4] != 6 || b[5] != 4 {
		return nil, fmt.Errorf("packet: ARP address lengths %d/%d unsupported", b[4], b[5])
	}
	a.Op = binary.BigEndian.Uint16(b[6:8])
	a.SenderHA = decodeMAC(b[8:14])
	a.SenderIP = IPv4(binary.BigEndian.Uint32(b[14:18]))
	a.TargetHA = decodeMAC(b[18:24])
	a.TargetIP = IPv4(binary.BigEndian.Uint32(b[24:28]))
	return b[arpLen:], nil
}

// Append serializes the message onto buf.
func (a *ARP) Append(buf []byte) []byte {
	var h [arpLen]byte
	binary.BigEndian.PutUint16(h[0:2], 1)
	binary.BigEndian.PutUint16(h[2:4], EtherTypeIPv4)
	h[4], h[5] = 6, 4
	binary.BigEndian.PutUint16(h[6:8], a.Op)
	putMAC(h[8:14], a.SenderHA)
	binary.BigEndian.PutUint32(h[14:18], uint32(a.SenderIP))
	putMAC(h[18:24], a.TargetHA)
	binary.BigEndian.PutUint32(h[24:28], uint32(a.TargetIP))
	return append(buf, h[:]...)
}

// IP is an IPv4 header (options unsupported: IHL always 5 on output,
// options skipped on input).
type IP struct {
	TOS      byte
	Length   uint16
	ID       uint16
	Flags    byte // 3 bits
	FragOff  uint16
	TTL      byte
	Protocol byte
	Checksum uint16
	Src, Dst IPv4
}

const ipv4MinLen = 20

// Decode parses the header, returning the payload (options are skipped).
func (ip *IP) Decode(b []byte) ([]byte, error) {
	if len(b) < ipv4MinLen {
		return nil, fmt.Errorf("packet: truncated IPv4 header (%d bytes)", len(b))
	}
	if v := b[0] >> 4; v != 4 {
		return nil, fmt.Errorf("packet: IP version %d, want 4", v)
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < ipv4MinLen || len(b) < ihl {
		return nil, fmt.Errorf("packet: bad IHL %d", ihl)
	}
	ip.TOS = b[1]
	ip.Length = binary.BigEndian.Uint16(b[2:4])
	ip.ID = binary.BigEndian.Uint16(b[4:6])
	ff := binary.BigEndian.Uint16(b[6:8])
	ip.Flags = byte(ff >> 13)
	ip.FragOff = ff & 0x1fff
	ip.TTL = b[8]
	ip.Protocol = b[9]
	ip.Checksum = binary.BigEndian.Uint16(b[10:12])
	ip.Src = IPv4(binary.BigEndian.Uint32(b[12:16]))
	ip.Dst = IPv4(binary.BigEndian.Uint32(b[16:20]))
	return b[ihl:], nil
}

// Append serializes the header onto buf, computing length (from
// payloadLen) and checksum.
func (ip *IP) Append(buf []byte, payloadLen int) []byte {
	var h [ipv4MinLen]byte
	h[0] = 4<<4 | 5
	h[1] = ip.TOS
	binary.BigEndian.PutUint16(h[2:4], uint16(ipv4MinLen+payloadLen))
	binary.BigEndian.PutUint16(h[4:6], ip.ID)
	binary.BigEndian.PutUint16(h[6:8], uint16(ip.Flags)<<13|ip.FragOff&0x1fff)
	h[8] = ip.TTL
	h[9] = ip.Protocol
	binary.BigEndian.PutUint32(h[12:16], uint32(ip.Src))
	binary.BigEndian.PutUint32(h[16:20], uint32(ip.Dst))
	binary.BigEndian.PutUint16(h[10:12], Checksum(h[:]))
	return append(buf, h[:]...)
}

// Checksum computes the Internet checksum (RFC 1071).
func Checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// UDP is a UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16
}

const udpLen = 8

// Decode parses the header, returning the payload.
func (u *UDP) Decode(b []byte) ([]byte, error) {
	if len(b) < udpLen {
		return nil, fmt.Errorf("packet: truncated UDP header (%d bytes)", len(b))
	}
	u.SrcPort = binary.BigEndian.Uint16(b[0:2])
	u.DstPort = binary.BigEndian.Uint16(b[2:4])
	u.Length = binary.BigEndian.Uint16(b[4:6])
	u.Checksum = binary.BigEndian.Uint16(b[6:8])
	return b[udpLen:], nil
}

// Append serializes the header onto buf (checksum left zero: optional in
// IPv4).
func (u *UDP) Append(buf []byte, payloadLen int) []byte {
	var h [udpLen]byte
	binary.BigEndian.PutUint16(h[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(h[2:4], u.DstPort)
	binary.BigEndian.PutUint16(h[4:6], uint16(udpLen+payloadLen))
	return append(buf, h[:]...)
}
