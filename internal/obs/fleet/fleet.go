// Package fleet aggregates the observability surfaces of a running
// Nerpa deployment. Each process (ovsdb-server, nerpa-controller,
// snvs-switch) exposes its own /metrics, /debug/traces and /readyz;
// this package polls those endpoints, attributes what it reads via the
// X-Obs-* identity headers, corrects for wall-clock skew between hosts,
// and stitches the per-process trace fragments back into end-to-end
// transaction timelines — the cross-process form of the in-process
// commit→switch-applied convergence measurement.
//
// The Aggregator is the library core; cmd/nerpa-top is the CLI around
// it, serving /fleet, /fleet/traces and /fleet/metrics.
package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Health classifies one member on the last completed poll.
const (
	HealthUp       = "up"        // /readyz answered 200
	HealthNotReady = "not-ready" // 503 before initial sync
	HealthDegraded = "degraded"  // 503: a connection is down, self-healing
	HealthStalled  = "stalled"   // 503: the stall watchdog fired
	HealthDraining = "draining"  // 503: shutdown drain in progress
	HealthStale    = "stale"     // scrape failed or no fresh scrape within StaleAfter
)

// Config parameterizes an Aggregator.
type Config struct {
	// Targets lists the obs endpoints to poll, each "host:port" or
	// "name=host:port" (the name labels the member until its identity
	// headers supply an instance ID).
	Targets []string
	// Interval is the poll period (default 2s).
	Interval time.Duration
	// StaleAfter marks a member stale when its last successful scrape is
	// older than this (default 3×Interval).
	StaleAfter time.Duration
	// TraceLimit caps the traces fetched per member per poll (default
	// 128).
	TraceLimit int
	// TraceCapacity bounds the stitched-trace store (default 512).
	TraceCapacity int
	// ScrapeTimeout bounds each HTTP scrape (default 2s).
	ScrapeTimeout time.Duration
	// RuleLimit caps the fleet-wide hot-rule table merged from the
	// members' /debug/rules reports (default 16).
	RuleLimit int
}

func (c *Config) withDefaults() {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.StaleAfter <= 0 {
		c.StaleAfter = 3 * c.Interval
	}
	if c.TraceLimit <= 0 {
		c.TraceLimit = 128
	}
	if c.TraceCapacity <= 0 {
		c.TraceCapacity = 512
	}
	if c.ScrapeTimeout <= 0 {
		c.ScrapeTimeout = 2 * time.Second
	}
	if c.RuleLimit <= 0 {
		c.RuleLimit = 16
	}
}

// member is the aggregator's view of one polled process.
type member struct {
	name string // configured label (may be overridden by identity)
	addr string

	mu       sync.Mutex
	identity obs.Identity
	skew     time.Duration // member wall clock minus aggregator wall clock
	health   string
	detail   string // stall/degraded reason or extra ready lines
	lastOK   time.Time
	lastErr  string
	traces   []obs.Trace // last successful /debug/traces fetch
	// rules is the member's last /debug/rules report; hasRules marks
	// that the member serves the profiler surface at all (members
	// running without profiling simply contribute nothing to the
	// fleet-wide hot-rule table).
	rules    obs.RuleReport
	hasRules bool
}

// MemberStatus is the JSON rendering of one member on /fleet.
type MemberStatus struct {
	Name     string `json:"name"`
	Addr     string `json:"addr"`
	Plane    string `json:"plane,omitempty"`
	Instance string `json:"instance,omitempty"`
	Health   string `json:"health"`
	Detail   string `json:"detail,omitempty"`
	// SkewNs is the member's estimated wall-clock offset from the
	// aggregator (member minus local), NTP-style from the request
	// midpoint.
	SkewNs int64 `json:"skew_ns"`
	// StartUnixNano is the member process's start time on its own clock.
	StartUnixNano int64 `json:"start_unix_nano,omitempty"`
	// ScrapeAgeSeconds is how old the last successful scrape is.
	ScrapeAgeSeconds float64 `json:"scrape_age_seconds"`
	LastError        string  `json:"last_error,omitempty"`
}

// Aggregator polls a set of obs endpoints and maintains the fused
// fleet view: member health, clock-skew estimates, stitched
// cross-process transaction timelines, and fleet-level convergence
// percentiles.
type Aggregator struct {
	cfg     Config
	members []*member
	client  *http.Client

	mu       sync.Mutex
	stitched map[uint64]*StitchedTrace
	order    []uint64 // stitched insertion order for FIFO eviction
	convSeen map[uint64]bool
	convObs  []float64 // bounded convergence samples (seconds)
	convCnt  uint64
	convSum  float64
	polls    uint64

	stop chan struct{}
	done chan struct{}

	reg        *obs.Registry
	mScrapes   *obs.Counter
	mScrapeErr map[string]*obs.Counter
}

// New creates an aggregator from cfg (it does not start polling; call
// Start, or PollOnce for one-shot use).
func New(cfg Config) (*Aggregator, error) {
	cfg.withDefaults()
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("fleet: no targets")
	}
	a := &Aggregator{
		cfg:        cfg,
		client:     &http.Client{Timeout: cfg.ScrapeTimeout},
		stitched:   make(map[uint64]*StitchedTrace),
		convSeen:   make(map[uint64]bool),
		reg:        obs.NewRegistry(),
		mScrapeErr: make(map[string]*obs.Counter),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	for _, t := range cfg.Targets {
		name, addr := t, t
		if i := strings.IndexByte(t, '='); i >= 0 {
			name, addr = t[:i], t[i+1:]
		}
		if name == "" || addr == "" {
			return nil, fmt.Errorf("fleet: bad target %q (want addr or name=addr)", t)
		}
		a.members = append(a.members, &member{name: name, addr: addr, health: HealthStale, detail: "never scraped"})
	}
	a.mScrapes = a.reg.Counter("fleet_scrapes_total", "Member scrape attempts (successful or not).")
	for _, m := range a.members {
		a.mScrapeErr[m.name] = a.reg.Counter("fleet_scrape_errors_total",
			"Failed member scrapes.", obs.L("member", m.name))
	}
	return a, nil
}

// Start launches the background poll loop.
func (a *Aggregator) Start() {
	go func() {
		defer close(a.done)
		ticker := time.NewTicker(a.cfg.Interval)
		defer ticker.Stop()
		a.PollOnce()
		for {
			select {
			case <-a.stop:
				return
			case <-ticker.C:
				a.PollOnce()
			}
		}
	}()
}

// Close stops the poll loop (idempotent per aggregator; only call
// after Start).
func (a *Aggregator) Close() {
	close(a.stop)
	<-a.done
}

// PollOnce scrapes every member concurrently and refreshes the fused
// view. Safe to call concurrently with the HTTP handlers.
func (a *Aggregator) PollOnce() {
	var wg sync.WaitGroup
	for _, m := range a.members {
		wg.Add(1)
		go func(m *member) {
			defer wg.Done()
			a.scrape(m)
		}(m)
	}
	wg.Wait()
	a.restitch()
	a.mu.Lock()
	a.polls++
	a.mu.Unlock()
}

// Polls reports how many poll rounds have completed.
func (a *Aggregator) Polls() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.polls
}

// scrape refreshes one member: /readyz for health, /debug/traces for
// trace fragments, both responses' X-Obs-* headers for identity and
// clock skew.
func (a *Aggregator) scrape(m *member) {
	a.mScrapes.Inc()
	base := m.addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}

	health, detail, hdr, err := a.scrapeReadyz(base)
	if err != nil {
		a.mScrapeErr[m.name].Inc()
		m.mu.Lock()
		m.health = HealthStale
		m.lastErr = err.Error()
		m.mu.Unlock()
		return
	}
	traces, thdr, skew, err := a.scrapeTraces(base)
	if err != nil {
		a.mScrapeErr[m.name].Inc()
		m.mu.Lock()
		m.health = HealthStale
		m.lastErr = err.Error()
		m.mu.Unlock()
		return
	}
	id := identityFrom(thdr)
	if id.Plane == "" {
		id = identityFrom(hdr)
	}
	// Hot-rule reports are best-effort: a member without the profiler
	// (older build, profiling off) stays healthy and merely contributes
	// nothing to the fleet-wide table.
	rules, hasRules := a.scrapeRules(base)
	m.mu.Lock()
	m.identity = id
	m.skew = skew
	m.health = health
	m.detail = detail
	m.lastOK = time.Now()
	m.lastErr = ""
	m.traces = traces
	m.rules, m.hasRules = rules, hasRules
	m.mu.Unlock()
}

// scrapeRules fetches the member's /debug/rules hot-rule report.
// Any failure (endpoint absent, decode error) reports ok=false.
func (a *Aggregator) scrapeRules(base string) (obs.RuleReport, bool) {
	resp, err := a.client.Get(base + "/debug/rules?limit=" + strconv.Itoa(a.cfg.RuleLimit))
	if err != nil {
		return obs.RuleReport{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return obs.RuleReport{}, false
	}
	var rep obs.RuleReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return obs.RuleReport{}, false
	}
	return rep, len(rep.Rules) > 0 || rep.Txns > 0
}

// scrapeReadyz classifies the member's readiness answer.
func (a *Aggregator) scrapeReadyz(base string) (health, detail string, hdr http.Header, err error) {
	resp, err := a.client.Get(base + "/readyz")
	if err != nil {
		return "", "", nil, err
	}
	defer resp.Body.Close()
	body := make([]byte, 4096)
	n, _ := resp.Body.Read(body)
	text := strings.TrimSpace(string(body[:n]))
	switch {
	case resp.StatusCode == http.StatusOK:
		health = HealthUp
		// Extra ready-detail lines after "ready" surface as detail.
		if i := strings.IndexByte(text, '\n'); i >= 0 {
			detail = strings.ReplaceAll(text[i+1:], "\n", "; ")
		}
	case strings.HasPrefix(text, "stalled"):
		health, detail = HealthStalled, text
	case strings.HasPrefix(text, "degraded"):
		health, detail = HealthDegraded, text
	case strings.HasPrefix(text, "draining"):
		health, detail = HealthDraining, text
	default:
		health, detail = HealthNotReady, text
	}
	return health, detail, resp.Header, nil
}

// scrapeTraces fetches the member's trace ring and estimates its
// wall-clock skew from the response's X-Obs-Now-Unix-Nano header,
// NTP-style: the member's "now" is compared against the midpoint of
// the request interval on the local clock.
func (a *Aggregator) scrapeTraces(base string) ([]obs.Trace, http.Header, time.Duration, error) {
	reqStart := time.Now()
	resp, err := a.client.Get(base + "/debug/traces?limit=" + strconv.Itoa(a.cfg.TraceLimit))
	if err != nil {
		return nil, nil, 0, err
	}
	defer resp.Body.Close()
	reqEnd := time.Now()
	if resp.StatusCode != http.StatusOK {
		return nil, nil, 0, fmt.Errorf("GET /debug/traces: %s", resp.Status)
	}
	var dump struct {
		Traces []obs.Trace `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		return nil, nil, 0, fmt.Errorf("decoding /debug/traces: %w", err)
	}
	var skew time.Duration
	if s := resp.Header.Get("X-Obs-Now-Unix-Nano"); s != "" {
		if ns, err := strconv.ParseInt(s, 10, 64); err == nil {
			mid := reqStart.Add(reqEnd.Sub(reqStart) / 2)
			skew = time.Duration(ns - mid.UnixNano())
		}
	}
	return dump.Traces, resp.Header, skew, nil
}

// identityFrom reads the X-Obs-* identity headers.
func identityFrom(h http.Header) obs.Identity {
	if h == nil {
		return obs.Identity{}
	}
	id := obs.Identity{Plane: h.Get("X-Obs-Plane"), Instance: h.Get("X-Obs-Instance")}
	if s := h.Get("X-Obs-Start-Unix-Nano"); s != "" {
		if ns, err := strconv.ParseInt(s, 10, 64); err == nil {
			id.Start = time.Unix(0, ns)
		}
	}
	return id
}

// statuses snapshots every member for rendering. Staleness is derived
// at read time so a hung member flips without waiting for its scrape
// to fail.
func (a *Aggregator) statuses() []MemberStatus {
	now := time.Now()
	out := make([]MemberStatus, 0, len(a.members))
	for _, m := range a.members {
		m.mu.Lock()
		st := MemberStatus{
			Name:     m.name,
			Addr:     m.addr,
			Plane:    m.identity.Plane,
			Instance: m.identity.Instance,
			Health:   m.health,
			Detail:   m.detail,
			SkewNs:   int64(m.skew),
		}
		if m.identity.Instance != "" {
			st.Name = m.identity.Instance
		}
		if !m.identity.Start.IsZero() {
			st.StartUnixNano = m.identity.Start.UnixNano()
		}
		if m.lastOK.IsZero() {
			st.ScrapeAgeSeconds = -1
		} else {
			st.ScrapeAgeSeconds = now.Sub(m.lastOK).Seconds()
			if st.Health != HealthStale && now.Sub(m.lastOK) > a.cfg.StaleAfter {
				st.Health = HealthStale
				st.Detail = "no successful scrape in " + a.cfg.StaleAfter.String()
			}
		}
		st.LastError = m.lastErr
		m.mu.Unlock()
		out = append(out, st)
	}
	return out
}

// quantile returns the q-quantile (0..1) of sorted samples.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// ConvergenceStats summarizes the fleet's commit→switch-applied
// latencies over the retained sample window.
type ConvergenceStats struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum_seconds"`
	P50   float64 `json:"p50_seconds"`
	P90   float64 `json:"p90_seconds"`
	P99   float64 `json:"p99_seconds"`
}

// convergence computes the stats under a.mu.
func (a *Aggregator) convergenceLocked() ConvergenceStats {
	st := ConvergenceStats{Count: a.convCnt, Sum: a.convSum}
	if len(a.convObs) > 0 {
		sorted := append([]float64(nil), a.convObs...)
		sort.Float64s(sorted)
		st.P50 = quantile(sorted, 0.50)
		st.P90 = quantile(sorted, 0.90)
		st.P99 = quantile(sorted, 0.99)
	}
	return st
}
