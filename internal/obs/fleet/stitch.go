package fleet

import (
	"sort"
	"time"

	"repro/internal/obs"
)

// expectedStages is the canonical full-stack timeline. A stitched
// trace missing any of them is flagged incomplete with the gaps named,
// which is how a partially-propagated transaction (e.g. one whose push
// never reached the switch) shows up on /fleet/traces.
var expectedStages = []string{
	obs.StageCommit, "monitor", "delta", "push", obs.StageSwitchApplied,
}

// StitchedStage is one stage of a cross-process timeline, attributed
// to the member that recorded it. Start/End are skew-corrected onto
// the aggregator's clock so stages from different hosts order
// correctly.
type StitchedStage struct {
	Name   string           `json:"name"`
	Member string           `json:"member"`
	Plane  string           `json:"plane,omitempty"`
	Start  time.Time        `json:"start"`
	End    time.Time        `json:"end"`
	Attrs  map[string]int64 `json:"attrs,omitempty"`
}

// StitchedTrace is one transaction's fleet-wide timeline, fused from
// the trace fragments each member holds for the same txn ID.
type StitchedTrace struct {
	TxnID  uint64          `json:"txn_id"`
	Stages []StitchedStage `json:"stages"`
	// Missing names the expected stages absent from the fused timeline
	// (empty when complete). A missing tail means the transaction has
	// not yet — or never — converged onto the data plane.
	Missing []string `json:"missing,omitempty"`
	// Complete is true when every expected stage is present.
	Complete bool `json:"complete"`
	// ConvergenceNs is the skew-corrected commit→switch-applied
	// latency, present once both bounding stages are (0 otherwise).
	ConvergenceNs int64 `json:"convergence_ns,omitempty"`
	// Members lists the instances that contributed stages.
	Members []string `json:"members"`
}

// restitch rebuilds the stitched-trace store from every member's
// current trace ring. Transactions evicted from member rings keep
// their last stitched form until the store's own FIFO bound evicts
// them.
func (a *Aggregator) restitch() {
	type fragment struct {
		member, plane string
		skew          time.Duration
		tr            obs.Trace
	}
	byTxn := make(map[uint64][]fragment)
	for _, m := range a.members {
		m.mu.Lock()
		name := m.name
		if m.identity.Instance != "" {
			name = m.identity.Instance
		}
		plane, skew := m.identity.Plane, m.skew
		traces := m.traces
		m.mu.Unlock()
		for _, tr := range traces {
			byTxn[tr.TxnID] = append(byTxn[tr.TxnID], fragment{member: name, plane: plane, skew: skew, tr: tr})
		}
	}

	a.mu.Lock()
	defer a.mu.Unlock()
	for txn, frags := range byTxn {
		st := &StitchedTrace{TxnID: txn}
		seen := map[string]bool{}
		memberSet := map[string]bool{}
		for _, f := range frags {
			if !memberSet[f.member] {
				memberSet[f.member] = true
				st.Members = append(st.Members, f.member)
			}
			for _, sg := range f.tr.Stages {
				seen[sg.Name] = true
				st.Stages = append(st.Stages, StitchedStage{
					Name:   sg.Name,
					Member: f.member,
					Plane:  f.plane,
					// Subtracting the member's skew maps its wall clock onto
					// the aggregator's, so cross-host stage ordering holds.
					Start: sg.Start.Add(-f.skew),
					End:   sg.End.Add(-f.skew),
					Attrs: sg.Attrs,
				})
			}
		}
		sort.SliceStable(st.Stages, func(i, j int) bool { return st.Stages[i].Start.Before(st.Stages[j].Start) })
		sort.Strings(st.Members)
		for _, name := range expectedStages {
			if !seen[name] {
				st.Missing = append(st.Missing, name)
			}
		}
		st.Complete = len(st.Missing) == 0

		// Convergence: first commit start to last switch-applied end.
		var commitStart, appliedEnd time.Time
		for i := range st.Stages {
			switch st.Stages[i].Name {
			case obs.StageCommit:
				if commitStart.IsZero() || st.Stages[i].Start.Before(commitStart) {
					commitStart = st.Stages[i].Start
				}
			case obs.StageSwitchApplied:
				if st.Stages[i].End.After(appliedEnd) {
					appliedEnd = st.Stages[i].End
				}
			}
		}
		if !commitStart.IsZero() && !appliedEnd.IsZero() {
			st.ConvergenceNs = appliedEnd.Sub(commitStart).Nanoseconds()
			if !a.convSeen[txn] {
				a.convSeen[txn] = true
				a.observeConvergenceLocked(float64(st.ConvergenceNs) / 1e9)
			}
		}

		if _, ok := a.stitched[txn]; !ok {
			a.order = append(a.order, txn)
		}
		a.stitched[txn] = st
	}
	// FIFO-evict beyond capacity.
	for len(a.order) > a.cfg.TraceCapacity {
		old := a.order[0]
		a.order = a.order[1:]
		delete(a.stitched, old)
		delete(a.convSeen, old)
	}
}

// observeConvergenceLocked records one convergence sample (bounded
// window for percentiles, unbounded count/sum).
func (a *Aggregator) observeConvergenceLocked(seconds float64) {
	a.convCnt++
	a.convSum += seconds
	const window = 1024
	if len(a.convObs) >= window {
		copy(a.convObs, a.convObs[1:])
		a.convObs = a.convObs[:window-1]
	}
	a.convObs = append(a.convObs, seconds)
}

// Trace returns the stitched timeline for one transaction.
func (a *Aggregator) Trace(txn uint64) (StitchedTrace, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st, ok := a.stitched[txn]
	if !ok {
		return StitchedTrace{}, false
	}
	return *st, true
}

// Traces returns up to n stitched timelines, oldest first (n <= 0
// means all retained).
func (a *Aggregator) Traces(n int) []StitchedTrace {
	a.mu.Lock()
	defer a.mu.Unlock()
	ids := a.order
	if n > 0 && len(ids) > n {
		ids = ids[len(ids)-n:]
	}
	out := make([]StitchedTrace, 0, len(ids))
	for _, id := range ids {
		out = append(out, *a.stitched[id])
	}
	return out
}
