package fleet

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

// Fleet-wide hot-rule reporting: each member's /debug/rules report is
// merged by rule ID into one table ranked by summed EWMA cost, so an
// operator sees which control-plane rules are expensive across the
// whole deployment, not just on one process. Members run the same
// compiled program, so rule IDs ("Head#ordinal") line up; a member that
// happens to run a different program merely contributes disjoint rows.

// FleetRuleRow is one rule aggregated across members.
type FleetRuleRow struct {
	ID    string `json:"id"`
	Label string `json:"label,omitempty"`
	// Members counts members whose report included this rule.
	Members     int   `json:"members"`
	Seedings    int64 `json:"seedings"`
	Derivations int64 `json:"derivations"`
	DeltaTuples int64 `json:"delta_tuples"`
	EvalNs      int64 `json:"eval_ns"`
	// EwmaNs sums the members' EWMA per-transaction costs — the
	// fleet-wide hotness signal.
	EwmaNs float64 `json:"ewma_ns"`
	Share  float64 `json:"share"`
	// TopMember names the member where this rule is most expensive.
	TopMember string `json:"top_member,omitempty"`
}

// FleetRules is the merged hot-rule view on /fleet.
type FleetRules struct {
	// Members counts the members that reported a profiler surface.
	Members int            `json:"members"`
	Rules   []FleetRuleRow `json:"rules"`
	// Other aggregates rules beyond the fleet-wide top-K cut, plus the
	// members' own "other" rollups.
	Other *obs.OtherRow `json:"other,omitempty"`
}

// hotRules merges every member's last rule report into the bounded
// fleet-wide table.
func (a *Aggregator) hotRules() FleetRules {
	out := FleetRules{Rules: []FleetRuleRow{}}
	byID := make(map[string]*FleetRuleRow)
	topEwma := make(map[string]float64) // rule ID -> max single-member EWMA
	var order []string
	var other obs.OtherRow
	for _, m := range a.members {
		m.mu.Lock()
		name := m.name
		if m.identity.Instance != "" {
			name = m.identity.Instance
		}
		hasRules, rep := m.hasRules, m.rules
		m.mu.Unlock()
		if !hasRules {
			continue
		}
		out.Members++
		for _, r := range rep.Rules {
			row := byID[r.ID]
			if row == nil {
				row = &FleetRuleRow{ID: r.ID, Label: r.Label}
				byID[r.ID] = row
				order = append(order, r.ID)
			}
			if row.Label == "" {
				row.Label = r.Label
			}
			row.Members++
			row.Seedings += r.Seedings
			row.Derivations += r.Derivations
			row.DeltaTuples += r.DeltaTuples
			row.EvalNs += r.EvalNs
			row.EwmaNs += r.EwmaNs
			if r.EwmaNs > topEwma[r.ID] {
				topEwma[r.ID], row.TopMember = r.EwmaNs, name
			}
		}
		if o := rep.Other; o != nil {
			other.Count += o.Count
			other.Seedings += o.Seedings
			other.Derivations += o.Derivations
			other.DeltaTuples += o.DeltaTuples
			other.EvalNs += o.EvalNs
			other.EwmaNs += o.EwmaNs
		}
	}
	if len(order) == 0 {
		if other.Count > 0 {
			out.Other = &other
		}
		return out
	}
	rows := make([]*FleetRuleRow, 0, len(order))
	for _, id := range order {
		rows = append(rows, byID[id])
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].EwmaNs > rows[j].EwmaNs })
	var totalEwma float64
	for _, r := range rows {
		totalEwma += r.EwmaNs
	}
	totalEwma += other.EwmaNs
	for i, r := range rows {
		if i < a.cfg.RuleLimit {
			if totalEwma > 0 {
				r.Share = r.EwmaNs / totalEwma
			}
			out.Rules = append(out.Rules, *r)
			continue
		}
		other.Count++
		other.Seedings += r.Seedings
		other.Derivations += r.Derivations
		other.DeltaTuples += r.DeltaTuples
		other.EvalNs += r.EvalNs
		other.EwmaNs += r.EwmaNs
	}
	if other.Count > 0 || other.EwmaNs > 0 {
		if totalEwma > 0 {
			other.Share = other.EwmaNs / totalEwma
		}
		out.Other = &other
	}
	return out
}

// rulesText renders the fleet hot-rule table for the nerpa-top
// one-shot view.
func rulesText(b *strings.Builder, fr FleetRules) {
	if fr.Members == 0 {
		return
	}
	fmt.Fprintf(b, "hot rules (by EWMA cost, %d profiled member(s)):\n", fr.Members)
	fmt.Fprintf(b, "  %-24s %6s %12s %12s %12s  %s\n",
		"RULE", "SHARE", "EWMA", "DERIVS", "DELTA", "TOP MEMBER")
	for _, r := range fr.Rules {
		fmt.Fprintf(b, "  %-24s %5.1f%% %12s %12d %12d  %s\n",
			r.ID, r.Share*100, time.Duration(r.EwmaNs).Round(time.Microsecond),
			r.Derivations, r.DeltaTuples, r.TopMember)
	}
	if o := fr.Other; o != nil {
		fmt.Fprintf(b, "  %-24s %5.1f%% %12s %12d %12d\n",
			fmt.Sprintf("(other: %d rules)", o.Count), o.Share*100,
			time.Duration(o.EwmaNs).Round(time.Microsecond), o.Derivations, o.DeltaTuples)
	}
}
