package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// Status is the /fleet JSON document: the member table plus the
// fleet-level trace and convergence summary.
type Status struct {
	Members []MemberStatus `json:"members"`
	Traces  int            `json:"traces"`
	// Incomplete counts retained stitched traces with missing stages.
	Incomplete  int              `json:"incomplete"`
	Convergence ConvergenceStats `json:"convergence"`
	// HotRules is the fleet-wide hot-rule table merged from the
	// members' /debug/rules reports.
	HotRules FleetRules `json:"hot_rules"`
	Polls    uint64     `json:"polls"`
}

// Status snapshots the fused fleet view.
func (a *Aggregator) Status() Status {
	st := Status{Members: a.statuses(), HotRules: a.hotRules()}
	a.mu.Lock()
	st.Traces = len(a.stitched)
	for _, tr := range a.stitched {
		if !tr.Complete {
			st.Incomplete++
		}
	}
	st.Convergence = a.convergenceLocked()
	st.Polls = a.polls
	a.mu.Unlock()
	return st
}

// Handler returns the aggregator's HTTP surface:
//
//	/fleet          fleet summary as JSON (?format=text for the
//	                one-shot table)
//	/fleet/traces   stitched cross-process timelines (?txn= one
//	                transaction, 404 if unknown; ?limit= caps the dump)
//	/fleet/metrics  fleet-level Prometheus exposition
func (a *Aggregator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/fleet", a.handleStatus)
	mux.HandleFunc("/fleet/traces", a.handleTraces)
	mux.HandleFunc("/fleet/metrics", a.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	return mux
}

func (a *Aggregator) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := a.Status()
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, st.Text())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(st)
}

func (a *Aggregator) handleTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if s := q.Get("txn"); s != "" {
		id, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			http.Error(w, "bad txn id: "+s, http.StatusBadRequest)
			return
		}
		tr, ok := a.Trace(id)
		if !ok {
			http.Error(w, "unknown txn "+s, http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(tr)
		return
	}
	n := 0
	if s := q.Get("limit"); s != "" {
		if v, err := strconv.Atoi(s); err == nil {
			n = v
		}
	}
	traces := a.Traces(n)
	if traces == nil {
		traces = []StitchedTrace{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		Traces []StitchedTrace `json:"traces"`
	}{traces})
}

// handleMetrics refreshes the derived gauges from the current fused
// view, then serves the registry in Prometheus text form.
func (a *Aggregator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	a.refreshMetrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	a.reg.WritePrometheus(w)
}

// refreshMetrics projects the fused view onto the fleet_* gauges.
func (a *Aggregator) refreshMetrics() {
	st := a.Status()
	a.reg.Gauge("fleet_members", "Configured fleet members.").Set(float64(len(st.Members)))
	up := 0
	for _, m := range st.Members {
		lbl := obs.L("member", m.Name)
		v := 0.0
		if m.Health == HealthUp {
			v = 1
			up++
		}
		a.reg.Gauge("fleet_member_up", "1 while the member's last scrape answered ready, else 0.", lbl).Set(v)
		a.reg.Gauge("fleet_member_scrape_age_seconds",
			"Seconds since the member's last successful scrape (-1 = never).", lbl).Set(m.ScrapeAgeSeconds)
		a.reg.Gauge("fleet_member_skew_seconds",
			"Estimated member wall-clock offset from the aggregator (member minus local).", lbl).
			Set(float64(m.SkewNs) / 1e9)
	}
	a.reg.Gauge("fleet_members_up", "Members whose last scrape answered ready.").Set(float64(up))
	a.reg.Gauge("fleet_traces_stitched", "Stitched cross-process traces currently retained.").Set(float64(st.Traces))
	a.reg.Gauge("fleet_traces_incomplete",
		"Retained stitched traces with missing pipeline stages.").Set(float64(st.Incomplete))
	c := st.Convergence
	a.reg.Gauge("fleet_convergence_count",
		"Transactions whose fleet-wide commit-to-switch-applied latency has been measured.").Set(float64(c.Count))
	a.reg.Gauge("fleet_convergence_sum_seconds",
		"Sum of measured fleet-wide convergence latencies.").Set(c.Sum)
	for _, q := range []struct {
		q string
		v float64
	}{{"0.5", c.P50}, {"0.9", c.P90}, {"0.99", c.P99}} {
		a.reg.Gauge("fleet_convergence_seconds",
			"Fleet-wide commit-to-switch-applied latency percentiles over the sample window.",
			obs.L("quantile", q.q)).Set(q.v)
	}
}

// Text renders the status as the aligned nerpa-top one-shot table.
func (s Status) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: %d member(s), %d stitched trace(s) (%d incomplete), %d poll(s)\n",
		len(s.Members), s.Traces, s.Incomplete, s.Polls)
	fmt.Fprintf(&b, "%-16s %-12s %-22s %-10s %12s %10s  %s\n",
		"MEMBER", "PLANE", "ADDR", "HEALTH", "SKEW", "SCRAPED", "DETAIL")
	for _, m := range s.Members {
		scraped := "never"
		if m.ScrapeAgeSeconds >= 0 {
			scraped = fmt.Sprintf("%.1fs ago", m.ScrapeAgeSeconds)
		}
		detail := m.Detail
		if detail == "" && m.LastError != "" {
			detail = m.LastError
		}
		fmt.Fprintf(&b, "%-16s %-12s %-22s %-10s %12s %10s  %s\n",
			m.Name, m.Plane, m.Addr, m.Health,
			time.Duration(m.SkewNs).Round(time.Microsecond), scraped, detail)
	}
	c := s.Convergence
	if c.Count > 0 {
		fmt.Fprintf(&b, "convergence (commit→switch-applied): n=%d p50=%s p90=%s p99=%s\n",
			c.Count, secs(c.P50), secs(c.P90), secs(c.P99))
	} else {
		b.WriteString("convergence (commit→switch-applied): no complete timelines yet\n")
	}
	rulesText(&b, s.HotRules)
	return b.String()
}

// TraceText renders one stitched timeline as aligned plain text, each
// stage offset from the timeline's start.
func TraceText(tr StitchedTrace) string {
	var b strings.Builder
	fmt.Fprintf(&b, "txn %d: %d stage(s) from %s", tr.TxnID, len(tr.Stages), strings.Join(tr.Members, ", "))
	if tr.Complete {
		fmt.Fprintf(&b, " — complete, convergence %s", time.Duration(tr.ConvergenceNs).Round(time.Microsecond))
	} else {
		fmt.Fprintf(&b, " — INCOMPLETE, missing: %s", strings.Join(tr.Missing, ", "))
	}
	b.WriteByte('\n')
	if len(tr.Stages) == 0 {
		return b.String()
	}
	t0 := tr.Stages[0].Start
	for _, sg := range tr.Stages {
		attrs := ""
		if len(sg.Attrs) > 0 {
			keys := make([]string, 0, len(sg.Attrs))
			for k := range sg.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			parts := make([]string, len(keys))
			for i, k := range keys {
				parts[i] = fmt.Sprintf("%s=%d", k, sg.Attrs[k])
			}
			attrs = " " + strings.Join(parts, " ")
		}
		fmt.Fprintf(&b, "  %+12s  %-16s %-12s %v%s\n",
			sg.Start.Sub(t0).Round(time.Microsecond), sg.Name, sg.Member,
			sg.End.Sub(sg.Start).Round(time.Microsecond), attrs)
	}
	return b.String()
}

func secs(v float64) string {
	return time.Duration(v * float64(time.Second)).Round(time.Microsecond).String()
}

// Serve serves the fleet endpoints on addr until the listener fails.
func (a *Aggregator) Serve(addr string) error {
	srv := &http.Server{Addr: addr, Handler: a.Handler(), ReadHeaderTimeout: 5 * time.Second}
	return srv.ListenAndServe()
}
