package fleet

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// memberServer boots an httptest server around a real Observer acting
// as one fleet member.
func memberServer(t *testing.T, plane, instance string) (*obs.Observer, *httptest.Server) {
	t.Helper()
	o := obs.NewObserver()
	o.SetIdentity(plane, instance)
	o.SetReady(true)
	srv := httptest.NewServer(o.Handler())
	t.Cleanup(srv.Close)
	return o, srv
}

// stage builds a trace stage spanning [start, start+d].
func stage(name string, start time.Time, d time.Duration) obs.Stage {
	return obs.Stage{Name: name, Start: start, End: start.Add(d)}
}

func TestAggregatorStitchesAcrossMembers(t *testing.T) {
	db, dbSrv := memberServer(t, "ovsdb", "db0")
	ctl, ctlSrv := memberServer(t, "controller", "ctl0")
	sw, swSrv := memberServer(t, "switchsim", "sw0")

	// One transaction whose stages are split across the three processes,
	// the multi-process deployment shape.
	t0 := time.Now().Add(-time.Second)
	db.Tr().Record(7, "ovsdb", stage(obs.StageCommit, t0, time.Millisecond))
	db.Tr().Record(7, "ovsdb", stage("monitor", t0.Add(2*time.Millisecond), time.Millisecond))
	ctl.Tr().Record(7, "ovsdb", stage("delta", t0.Add(4*time.Millisecond), time.Millisecond))
	ctl.Tr().Record(7, "ovsdb", stage("push", t0.Add(6*time.Millisecond), 2*time.Millisecond))
	sw.Tr().Record(7, "p4rt", stage(obs.StageSwitchApplied, t0.Add(7*time.Millisecond), time.Millisecond))
	// A second transaction that never reached the data plane.
	db.Tr().Record(9, "ovsdb", stage(obs.StageCommit, t0.Add(time.Millisecond), time.Millisecond))

	agg, err := New(Config{Targets: []string{
		"db=" + dbSrv.URL, "ctl=" + ctlSrv.URL, "sw=" + swSrv.URL,
	}})
	if err != nil {
		t.Fatal(err)
	}
	agg.PollOnce()

	st := agg.Status()
	if len(st.Members) != 3 {
		t.Fatalf("got %d members, want 3: %+v", len(st.Members), st.Members)
	}
	for _, m := range st.Members {
		if m.Health != HealthUp {
			t.Fatalf("member %s health = %s, want up (%+v)", m.Name, m.Health, m)
		}
	}
	planes := map[string]string{}
	for _, m := range st.Members {
		planes[m.Name] = m.Plane
	}
	if planes["db0"] != "ovsdb" || planes["ctl0"] != "controller" || planes["sw0"] != "switchsim" {
		t.Fatalf("identity attribution wrong: %v", planes)
	}

	tr, ok := agg.Trace(7)
	if !ok {
		t.Fatal("no stitched trace for txn 7")
	}
	if !tr.Complete || len(tr.Missing) != 0 {
		t.Fatalf("txn 7 should be complete: %+v", tr)
	}
	if len(tr.Stages) != 5 {
		t.Fatalf("txn 7 has %d stages, want 5: %+v", len(tr.Stages), tr)
	}
	if got := tr.Stages[len(tr.Stages)-1].Name; got != obs.StageSwitchApplied {
		t.Fatalf("timeline ends in %q, want switch-applied", got)
	}
	if tr.Stages[0].Member != "db0" || tr.Stages[len(tr.Stages)-1].Member != "sw0" {
		t.Fatalf("stage attribution wrong: %+v", tr.Stages)
	}
	// commit starts at t0, switch-applied ends at t0+8ms.
	if got := time.Duration(tr.ConvergenceNs); got < 7*time.Millisecond || got > 9*time.Millisecond {
		t.Fatalf("convergence = %v, want ~8ms", got)
	}

	partial, ok := agg.Trace(9)
	if !ok {
		t.Fatal("no stitched trace for txn 9")
	}
	if partial.Complete {
		t.Fatalf("txn 9 should be incomplete: %+v", partial)
	}
	want := []string{"monitor", "delta", "push", obs.StageSwitchApplied}
	if strings.Join(partial.Missing, ",") != strings.Join(want, ",") {
		t.Fatalf("txn 9 missing = %v, want %v", partial.Missing, want)
	}

	if st.Convergence.Count != 1 || st.Convergence.P50 <= 0 {
		t.Fatalf("convergence stats = %+v, want count 1 with positive p50", st.Convergence)
	}
}

func TestAggregatorMetricsAndStaleness(t *testing.T) {
	db, dbSrv := memberServer(t, "ovsdb", "db0")
	_, swSrv := memberServer(t, "switchsim", "sw0")

	t0 := time.Now().Add(-time.Second)
	db.Tr().Record(3, "ovsdb", stage(obs.StageCommit, t0, time.Millisecond))
	db.Tr().Record(3, "ovsdb", stage("monitor", t0.Add(time.Millisecond), time.Millisecond))
	db.Tr().Record(3, "ovsdb", stage("delta", t0.Add(2*time.Millisecond), time.Millisecond))
	db.Tr().Record(3, "ovsdb", stage("push", t0.Add(3*time.Millisecond), time.Millisecond))
	db.Tr().Record(3, "ovsdb", stage(obs.StageSwitchApplied, t0.Add(4*time.Millisecond), time.Millisecond))

	agg, err := New(Config{Targets: []string{"db=" + dbSrv.URL, "sw=" + swSrv.URL}})
	if err != nil {
		t.Fatal(err)
	}
	agg.PollOnce()

	fsrv := httptest.NewServer(agg.Handler())
	defer fsrv.Close()
	get := func(path string) string {
		resp, err := http.Get(fsrv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 64<<10)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return b.String()
	}

	metrics := get("/fleet/metrics")
	for _, series := range []string{
		`fleet_members 2`,
		`fleet_members_up 2`,
		`fleet_member_up{member="db0"} 1`,
		`fleet_convergence_count 1`,
		`fleet_convergence_seconds{quantile="0.5"}`,
	} {
		if !strings.Contains(metrics, series) {
			t.Fatalf("/fleet/metrics missing %q:\n%s", series, metrics)
		}
	}
	// The p50 must be nonzero: the sample is ~5ms.
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, `fleet_convergence_seconds{quantile="0.5"}`) {
			v, err := strconv.ParseFloat(strings.Fields(line)[1], 64)
			if err != nil || v <= 0 {
				t.Fatalf("p50 not positive: %q (%v)", line, err)
			}
		}
	}

	var status Status
	if err := json.Unmarshal([]byte(get("/fleet")), &status); err != nil {
		t.Fatal(err)
	}
	if status.Traces != 1 || status.Incomplete != 0 {
		t.Fatalf("status traces = %d incomplete = %d, want 1/0", status.Traces, status.Incomplete)
	}

	// Kill the switch member: the very next poll marks it stale.
	swSrv.Close()
	agg.PollOnce()
	var after Status
	if err := json.Unmarshal([]byte(get("/fleet")), &after); err != nil {
		t.Fatal(err)
	}
	for _, m := range after.Members {
		want := HealthUp
		if m.Name == "sw0" {
			want = HealthStale
		}
		if m.Health != want {
			t.Fatalf("member %s health = %s, want %s", m.Name, m.Health, want)
		}
	}
	metrics = get("/fleet/metrics")
	if !strings.Contains(metrics, `fleet_member_up{member="sw0"} 0`) {
		t.Fatalf("sw0 still up in metrics after kill:\n%s", metrics)
	}

	// The stitched trace survives member loss: it was captured earlier.
	if _, ok := agg.Trace(3); !ok {
		t.Fatal("stitched trace lost after member death")
	}

	// One-shot text rendering names the members and the health states.
	text := after.Text()
	for _, wantStr := range []string{"db0", "sw0", "stale", "convergence"} {
		if !strings.Contains(text, wantStr) {
			t.Fatalf("text rendering missing %q:\n%s", wantStr, text)
		}
	}
}

// TestAggregatorSkewCorrection fakes a member whose wall clock runs an
// hour ahead and checks that stitching maps its stages back onto the
// aggregator's clock.
func TestAggregatorSkewCorrection(t *testing.T) {
	const skew = time.Hour
	t0 := time.Now().Add(-time.Second)

	db, dbSrv := memberServer(t, "ovsdb", "db0")
	db.Tr().Record(5, "ovsdb", stage(obs.StageCommit, t0, time.Millisecond))
	db.Tr().Record(5, "ovsdb", stage("monitor", t0.Add(time.Millisecond), time.Millisecond))
	db.Tr().Record(5, "ovsdb", stage("delta", t0.Add(2*time.Millisecond), time.Millisecond))
	db.Tr().Record(5, "ovsdb", stage("push", t0.Add(3*time.Millisecond), time.Millisecond))

	// The skewed switch: every timestamp it reports — stage times and its
	// X-Obs-Now clock anchor — is one hour in the future.
	swMux := http.NewServeMux()
	swMux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Obs-Now-Unix-Nano", strconv.FormatInt(time.Now().Add(skew).UnixNano(), 10))
		w.Write([]byte("ready\n"))
	})
	swMux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Obs-Plane", "switchsim")
		w.Header().Set("X-Obs-Instance", "sw0")
		w.Header().Set("X-Obs-Now-Unix-Nano", strconv.FormatInt(time.Now().Add(skew).UnixNano(), 10))
		tr := obs.Trace{TxnID: 5, Source: "p4rt", Stages: []obs.Stage{
			stage(obs.StageSwitchApplied, t0.Add(skew).Add(4*time.Millisecond), time.Millisecond),
		}}
		json.NewEncoder(w).Encode(struct {
			Traces []obs.Trace `json:"traces"`
		}{[]obs.Trace{tr}})
	})
	swSrv := httptest.NewServer(swMux)
	defer swSrv.Close()

	agg, err := New(Config{Targets: []string{"db=" + dbSrv.URL, "sw=" + swSrv.URL}})
	if err != nil {
		t.Fatal(err)
	}
	agg.PollOnce()

	tr, ok := agg.Trace(5)
	if !ok {
		t.Fatal("no stitched trace for txn 5")
	}
	if !tr.Complete {
		t.Fatalf("trace should be complete after skew correction: %+v", tr)
	}
	// Without correction the convergence would read ~1h; corrected it is
	// ~5ms (plus the request round-trip error, well under a second).
	if got := time.Duration(tr.ConvergenceNs); got < 0 || got > time.Second {
		t.Fatalf("skew-corrected convergence = %v, want ~5ms", got)
	}
	if got := tr.Stages[len(tr.Stages)-1].Name; got != obs.StageSwitchApplied {
		t.Fatalf("timeline ends in %q after correction, want switch-applied", got)
	}
	st := agg.Status()
	for _, m := range st.Members {
		if m.Name == "sw0" {
			if got := time.Duration(m.SkewNs); got < 59*time.Minute || got > 61*time.Minute {
				t.Fatalf("estimated skew = %v, want ~1h", got)
			}
		}
	}
}

// TestAggregatorHotRules drives two profiled members and checks the
// fleet-wide merge: summed EWMA costs rank rules across the
// deployment, the per-member "other" rollups combine, and the one-shot
// text view renders the table.
func TestAggregatorHotRules(t *testing.T) {
	a, aSrv := memberServer(t, "controller", "ctl0")
	b, bSrv := memberServer(t, "controller", "ctl1")

	a.Prof().ObserveTxn([]obs.RuleSample{
		{ID: "Hot#0", Label: "Hot(a,c) :- In(a,b), In(c,b).", EvalNs: 8_000_000, Derivations: 1000, DeltaTuples: 400},
		{ID: "Cheap#0", EvalNs: 100_000, Derivations: 10, DeltaTuples: 10},
	})
	b.Prof().ObserveTxn([]obs.RuleSample{
		{ID: "Hot#0", EvalNs: 2_000_000, Derivations: 300, DeltaTuples: 100},
		{ID: "Cheap#0", EvalNs: 5_000_000, Derivations: 20, DeltaTuples: 20},
	})

	agg, err := New(Config{Targets: []string{"a=" + aSrv.URL, "b=" + bSrv.URL}})
	if err != nil {
		t.Fatal(err)
	}
	agg.PollOnce()

	hr := agg.Status().HotRules
	if hr.Members != 2 {
		t.Fatalf("hot rules from %d members, want 2: %+v", hr.Members, hr)
	}
	if len(hr.Rules) != 2 || hr.Rules[0].ID != "Hot#0" || hr.Rules[1].ID != "Cheap#0" {
		t.Fatalf("fleet ranking wrong: %+v", hr.Rules)
	}
	hot := hr.Rules[0]
	if hot.Members != 2 || hot.Derivations != 1300 || hot.DeltaTuples != 500 {
		t.Fatalf("merged Hot#0 = %+v", hot)
	}
	if hot.EwmaNs < 9_000_000 || hot.TopMember != "ctl0" {
		t.Fatalf("Hot#0 ewma/top member wrong: %+v", hot)
	}
	// Cheap#0 is hottest on ctl1 even though Hot#0 dominates fleet-wide.
	if hr.Rules[1].TopMember != "ctl1" {
		t.Fatalf("Cheap#0 top member = %q, want ctl1", hr.Rules[1].TopMember)
	}
	if hot.Share <= hr.Rules[1].Share || hot.Share <= 0 {
		t.Fatalf("shares wrong: %+v", hr.Rules)
	}
	if hot.Label == "" {
		t.Fatalf("label lost in merge: %+v", hot)
	}

	text := agg.Status().Text()
	for _, want := range []string{"hot rules", "Hot#0", "ctl0"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text rendering missing %q:\n%s", want, text)
		}
	}
}

// TestAggregatorRuleLimitRollsUp checks the fleet-level top-K cut: rules
// beyond the bound fold into the "other" bucket together with the
// members' own rollups.
func TestAggregatorRuleLimitRollsUp(t *testing.T) {
	m, mSrv := memberServer(t, "controller", "ctl0")
	var samples []obs.RuleSample
	for i := 0; i < 6; i++ {
		samples = append(samples, obs.RuleSample{
			ID:     "R" + strconv.Itoa(i) + "#0",
			EvalNs: int64((i + 1) * 1000),
		})
	}
	m.Prof().ObserveTxn(samples)

	agg, err := New(Config{Targets: []string{"m=" + mSrv.URL}, RuleLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	agg.PollOnce()
	hr := agg.Status().HotRules
	if len(hr.Rules) != 2 || hr.Rules[0].ID != "R5#0" {
		t.Fatalf("limited table = %+v", hr.Rules)
	}
	if hr.Other == nil || hr.Other.Count != 4 {
		t.Fatalf("other rollup = %+v, want 4 rules", hr.Other)
	}
}

// TestAggregatorMemberWithoutClockHeaders fakes a member that serves
// traces but stamps no X-Obs-* headers at all (no identity, no clock
// anchors). Skew estimation must degrade to uncorrected timestamps —
// zero offset, never NaN — and stitching must still fuse the member's
// stages into complete timelines.
func TestAggregatorMemberWithoutClockHeaders(t *testing.T) {
	t0 := time.Now().Add(-time.Second)

	db, dbSrv := memberServer(t, "ovsdb", "db0")
	db.Tr().Record(11, "ovsdb", stage(obs.StageCommit, t0, time.Millisecond))
	db.Tr().Record(11, "ovsdb", stage("monitor", t0.Add(time.Millisecond), time.Millisecond))
	db.Tr().Record(11, "ovsdb", stage("delta", t0.Add(2*time.Millisecond), time.Millisecond))
	db.Tr().Record(11, "ovsdb", stage("push", t0.Add(3*time.Millisecond), time.Millisecond))

	// A bare member: correct JSON bodies, no obs headers whatsoever.
	swMux := http.NewServeMux()
	swMux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ready\n"))
	})
	swMux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		tr := obs.Trace{TxnID: 11, Source: "p4rt", Stages: []obs.Stage{
			stage(obs.StageSwitchApplied, t0.Add(4*time.Millisecond), time.Millisecond),
		}}
		json.NewEncoder(w).Encode(struct {
			Traces []obs.Trace `json:"traces"`
		}{[]obs.Trace{tr}})
	})
	swSrv := httptest.NewServer(swMux)
	defer swSrv.Close()

	agg, err := New(Config{Targets: []string{"db=" + dbSrv.URL, "sw=" + swSrv.URL}})
	if err != nil {
		t.Fatal(err)
	}
	agg.PollOnce()

	st := agg.Status()
	for _, m := range st.Members {
		if m.Health != HealthUp {
			t.Fatalf("member %s health = %s, want up", m.Name, m.Health)
		}
		if m.SkewNs != m.SkewNs || float64(m.SkewNs) != float64(m.SkewNs) { // NaN guard
			t.Fatalf("member %s skew is NaN", m.Name)
		}
		if m.Name == "sw" && m.SkewNs != 0 {
			t.Fatalf("headerless member skew = %d, want 0 (uncorrected)", m.SkewNs)
		}
	}

	tr, ok := agg.Trace(11)
	if !ok {
		t.Fatal("no stitched trace for txn 11")
	}
	if !tr.Complete || len(tr.Stages) != 5 {
		t.Fatalf("stitching degraded: %+v", tr)
	}
	// Uncorrected timestamps: the stage times pass through unchanged, so
	// the convergence still reads ~5ms off the shared test clock.
	if got := time.Duration(tr.ConvergenceNs); got < 4*time.Millisecond || got > time.Second {
		t.Fatalf("uncorrected convergence = %v, want ~5ms", got)
	}
	// The headerless member keeps its configured label (no identity to
	// override it) and the trace attributes its stage to that label.
	if tr.Stages[len(tr.Stages)-1].Member != "sw" {
		t.Fatalf("stage attribution = %+v, want configured name sw", tr.Stages)
	}

	// The metrics view renders a finite skew for the headerless member.
	if text := get2f(t, agg, "/fleet/metrics"); !strings.Contains(text, `fleet_member_skew_seconds{member="sw"} 0`) {
		t.Fatalf("expected zero skew gauge for headerless member:\n%s", text)
	}
}

// get2f fetches one aggregator endpoint through a throwaway server.
func get2f(t *testing.T, a *Aggregator, path string) string {
	t.Helper()
	srv := httptest.NewServer(a.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, resp.Body); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}
