package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// The workload profiler: a continuous aggregation of the engine's
// per-rule cost/cardinality attribution and per-relation memory
// accounting. The controller feeds it one RuleSample set per
// transaction (converted from the engine's ApplyStats.Rules) plus
// periodic memory snapshots; the profiler maintains cumulative totals
// and an EWMA of per-transaction evaluation cost per rule, and serves
// bounded-cardinality reports: the top-K hot rules by EWMA cost, with
// the rest rolled into one "other" bucket so a program with thousands
// of rules cannot blow up /debug/rules responses or fleet merges.

// RuleSample is one rule's activity within one transaction. The
// controller converts the engine's per-rule stats into this obs-local
// form so the obs package stays independent of the engine.
type RuleSample struct {
	ID        string `json:"id"`
	Label     string `json:"label,omitempty"`
	Stratum   int    `json:"stratum"`
	Recursive bool   `json:"recursive,omitempty"`

	Seedings    int64 `json:"seedings"`
	Derivations int64 `json:"derivations"`
	DeltaTuples int64 `json:"delta_tuples"`
	Rounds      int64 `json:"rounds,omitempty"`
	EvalNs      int64 `json:"eval_ns"`
}

// RuleRow is one rule's aggregated state in a profiler report.
type RuleRow struct {
	ID        string `json:"id"`
	Label     string `json:"label,omitempty"`
	Stratum   int    `json:"stratum"`
	Recursive bool   `json:"recursive,omitempty"`
	// Txns counts transactions in which the rule did any work.
	Txns        int64 `json:"txns"`
	Seedings    int64 `json:"seedings"`
	Derivations int64 `json:"derivations"`
	DeltaTuples int64 `json:"delta_tuples"`
	Rounds      int64 `json:"rounds,omitempty"`
	EvalNs      int64 `json:"eval_ns"`
	// EwmaNs is the exponentially weighted moving average of the rule's
	// per-transaction evaluation time — the hot-rule ranking signal.
	EwmaNs float64 `json:"ewma_ns"`
	// Share is this rule's fraction of the summed EWMA cost across all
	// tracked rules (0..1).
	Share float64 `json:"share"`
}

// OtherRow aggregates the rules outside the top-K cut.
type OtherRow struct {
	// Count is how many rules were rolled into this bucket.
	Count       int     `json:"count"`
	Seedings    int64   `json:"seedings"`
	Derivations int64   `json:"derivations"`
	DeltaTuples int64   `json:"delta_tuples"`
	EvalNs      int64   `json:"eval_ns"`
	EwmaNs      float64 `json:"ewma_ns"`
	Share       float64 `json:"share"`
}

// RuleReport is the /debug/rules JSON document.
type RuleReport struct {
	// Txns counts transactions observed by the profiler.
	Txns uint64 `json:"txns"`
	// TopK echoes the cardinality bound applied to Rules.
	TopK  int       `json:"top_k"`
	Rules []RuleRow `json:"rules"`
	// Other is present when rules beyond the top-K cut were rolled up.
	Other *OtherRow `json:"other,omitempty"`
}

// RelMem is one relation's memory accounting in a MemSnapshot.
type RelMem struct {
	Name         string `json:"name"`
	Hidden       bool   `json:"hidden,omitempty"`
	Stratum      int    `json:"stratum"`
	Recursive    bool   `json:"recursive,omitempty"`
	Tuples       int64  `json:"tuples"`
	Indexes      int64  `json:"indexes"`
	IndexEntries int64  `json:"index_entries"`
	Bytes        int64  `json:"bytes"`
}

// ProvMem is the provenance store's share of a MemSnapshot.
type ProvMem struct {
	Facts int64 `json:"facts"`
	Bytes int64 `json:"bytes"`
}

// MemSnapshot is one point-in-time memory accounting of the engine
// (relations sorted hottest-first by bytes in reports).
type MemSnapshot struct {
	Relations    []RelMem `json:"relations"`
	Tuples       int64    `json:"tuples"`
	IndexEntries int64    `json:"index_entries"`
	Bytes        int64    `json:"bytes"`
	Provenance   ProvMem  `json:"provenance"`
}

// memReport is the /debug/memory JSON envelope.
type memReport struct {
	At time.Time `json:"at"`
	MemSnapshot
}

// DefaultProfileTopK bounds report cardinality when NewRuleProfiler is
// given k <= 0.
const DefaultProfileTopK = 16

// profileAlpha is the EWMA smoothing factor applied per observed
// transaction: new = alpha*sample + (1-alpha)*old. 0.2 weights the
// last ~10 transactions while still decaying stale hot spots.
const profileAlpha = 0.2

// ruleEntry is one rule's live aggregation state.
type ruleEntry struct {
	RuleRow
	seen bool // at least one observation (EWMA initialized)
}

// RuleProfiler aggregates per-rule samples and memory snapshots. A nil
// *RuleProfiler ignores observations and renders empty reports.
type RuleProfiler struct {
	mu   sync.Mutex
	topK int
	byID map[string]*ruleEntry
	// order preserves registration order for deterministic tie-breaks.
	order []*ruleEntry
	txns  uint64
	mem   MemSnapshot
	memAt time.Time
}

// NewRuleProfiler creates a profiler reporting the top k rules by EWMA
// cost (k <= 0 selects DefaultProfileTopK).
func NewRuleProfiler(k int) *RuleProfiler {
	if k <= 0 {
		k = DefaultProfileTopK
	}
	return &RuleProfiler{topK: k, byID: make(map[string]*ruleEntry)}
}

// entry finds or creates one rule's state. Caller holds p.mu.
func (p *RuleProfiler) entry(id string) *ruleEntry {
	e := p.byID[id]
	if e == nil {
		e = &ruleEntry{RuleRow: RuleRow{ID: id}}
		p.byID[id] = e
		p.order = append(p.order, e)
	}
	return e
}

// EnsureRule pre-registers one rule's identity so metrics callbacks and
// reports can render it before its first activity. Nil-safe.
func (p *RuleProfiler) EnsureRule(id, label string, stratum int, recursive bool) {
	if p == nil || id == "" {
		return
	}
	p.mu.Lock()
	e := p.entry(id)
	e.Label, e.Stratum, e.Recursive = label, stratum, recursive
	p.mu.Unlock()
}

// ObserveTxn folds one transaction's per-rule samples into the
// aggregation. Rules absent from samples did no work this transaction;
// their EWMA decays toward zero so stale hot spots sink. Nil-safe.
func (p *RuleProfiler) ObserveTxn(samples []RuleSample) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.txns++
	active := make(map[string]bool, len(samples))
	for i := range samples {
		s := &samples[i]
		e := p.entry(s.ID)
		if s.Label != "" {
			e.Label = s.Label
		}
		e.Stratum, e.Recursive = s.Stratum, s.Recursive
		e.Txns++
		e.Seedings += s.Seedings
		e.Derivations += s.Derivations
		e.DeltaTuples += s.DeltaTuples
		e.Rounds += s.Rounds
		e.EvalNs += s.EvalNs
		if !e.seen {
			e.EwmaNs, e.seen = float64(s.EvalNs), true
		} else {
			e.EwmaNs = profileAlpha*float64(s.EvalNs) + (1-profileAlpha)*e.EwmaNs
		}
		active[s.ID] = true
	}
	for _, e := range p.order {
		if e.seen && !active[e.ID] {
			e.EwmaNs *= 1 - profileAlpha
		}
	}
}

// SetMemory replaces the profiler's memory snapshot (the controller
// publishes one periodically from the engine's apply goroutine).
// Nil-safe.
func (p *RuleProfiler) SetMemory(m MemSnapshot) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.mem, p.memAt = m, time.Now()
	p.mu.Unlock()
}

// Memory returns the latest memory snapshot and its capture time (zero
// when none has been published).
func (p *RuleProfiler) Memory() (MemSnapshot, time.Time) {
	if p == nil {
		return MemSnapshot{}, time.Time{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.mem, p.memAt
}

// Txns reports how many transactions have been observed.
func (p *RuleProfiler) Txns() uint64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.txns
}

// RuleTotals returns one rule's cumulative counters (the dl_rule_*
// CounterFunc readings). Zero for unknown rules; nil-safe.
func (p *RuleProfiler) RuleTotals(id string) (evalNs, derivations, deltaTuples uint64) {
	if p == nil {
		return 0, 0, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if e := p.byID[id]; e != nil {
		return uint64(e.EvalNs), uint64(e.Derivations), uint64(e.DeltaTuples)
	}
	return 0, 0, 0
}

// RuleEwmaSeconds returns one rule's EWMA per-transaction cost in
// seconds (the dl_rule_cost_ewma_seconds GaugeFunc reading). Nil-safe.
func (p *RuleProfiler) RuleEwmaSeconds(id string) float64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if e := p.byID[id]; e != nil {
		return e.EwmaNs / 1e9
	}
	return 0
}

// Report renders the bounded-cardinality hot-rule view: up to k rules
// (k <= 0 selects the profiler's top-K) ranked by EWMA cost descending,
// the rest aggregated into Other. Nil-safe (empty report).
func (p *RuleProfiler) Report(k int) RuleReport {
	rep := RuleReport{Rules: []RuleRow{}}
	if p == nil {
		return rep
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if k <= 0 || k > p.topK {
		k = p.topK
	}
	rep.Txns, rep.TopK = p.txns, k
	rows := make([]*ruleEntry, len(p.order))
	copy(rows, p.order)
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].EwmaNs > rows[j].EwmaNs })
	var totalEwma float64
	for _, e := range rows {
		totalEwma += e.EwmaNs
	}
	share := func(v float64) float64 {
		if totalEwma <= 0 {
			return 0
		}
		return v / totalEwma
	}
	for i, e := range rows {
		if i < k {
			r := e.RuleRow
			r.Share = share(r.EwmaNs)
			rep.Rules = append(rep.Rules, r)
			continue
		}
		if rep.Other == nil {
			rep.Other = &OtherRow{}
		}
		rep.Other.Count++
		rep.Other.Seedings += e.Seedings
		rep.Other.Derivations += e.Derivations
		rep.Other.DeltaTuples += e.DeltaTuples
		rep.Other.EvalNs += e.EvalNs
		rep.Other.EwmaNs += e.EwmaNs
	}
	if rep.Other != nil {
		rep.Other.Share = share(rep.Other.EwmaNs)
	}
	return rep
}

// WriteJSON dumps the hot-rule report (the /debug/rules body).
func (p *RuleProfiler) WriteJSON(w io.Writer, k int) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p.Report(k))
}

// WriteMemoryJSON dumps the latest memory snapshot (the /debug/memory
// body), relations sorted by bytes descending.
func (p *RuleProfiler) WriteMemoryJSON(w io.Writer) error {
	m, at := p.Memory()
	if m.Relations == nil {
		m.Relations = []RelMem{}
	} else {
		rels := append([]RelMem(nil), m.Relations...)
		sort.SliceStable(rels, func(i, j int) bool { return rels[i].Bytes > rels[j].Bytes })
		m.Relations = rels
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(memReport{At: at, MemSnapshot: m})
}

// Prof returns the rule profiler (nil when the observer is disabled).
func (o *Observer) Prof() *RuleProfiler {
	if o == nil {
		return nil
	}
	return o.Profiler
}
