package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "help")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("g", "help")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "help", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	// Bucket occupancy: le=1 → {0.5, 1}, le=10 → {5}, le=100 → {50}, +Inf → {500}.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 5 || h.Sum() != 556.5 {
		t.Fatalf("count/sum = %d/%v, want 5/556.5", h.Count(), h.Sum())
	}
	h.ObserveDuration(2 * time.Second)
	if h.Count() != 6 {
		t.Fatalf("ObserveDuration not recorded")
	}
}

// TestReRegistrationReturnsSameSeries pins the pre-registration contract:
// the same (name, labels) identity maps to one instrument, so hot paths
// can hold the handle and later registrations see accumulated state.
func TestReRegistrationReturnsSameSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", L("p", "1"), L("q", "2"))
	b := r.Counter("x_total", "help", L("q", "2"), L("p", "1")) // label order irrelevant
	if a != b {
		t.Fatalf("re-registration returned a distinct counter")
	}
	if c := r.Counter("x_total", "help", L("p", "other")); c == a {
		t.Fatalf("different labels returned the same series")
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "help")
	defer func() {
		if recover() == nil {
			t.Fatalf("registering m as gauge after counter did not panic")
		}
	}()
	r.Gauge("m", "help")
}

// TestNilRegistryIsNoOp pins the disabled path: nil registry, nil
// instruments, every method a no-op. Instrumented code never branches.
func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "h")
	g := r.Gauge("g", "h")
	h := r.Histogram("h_seconds", "h", nil)
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry handed out non-nil instruments")
	}
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil instruments accumulated state")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if r.Snapshot() != nil {
		t.Fatalf("nil registry snapshot not nil")
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_txn_total", "transactions", L("source", "ovsdb")).Add(3)
	r.Counter("app_txn_total", "transactions", L("source", "digest")).Add(1)
	r.Gauge("app_inflight", "in-flight").Set(2)
	h := r.Histogram("app_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE app_inflight gauge\n",
		"# TYPE app_seconds histogram\n",
		"# TYPE app_txn_total counter\n",
		"# HELP app_txn_total transactions\n",
		`app_txn_total{source="ovsdb"} 3` + "\n",
		`app_txn_total{source="digest"} 1` + "\n",
		"app_inflight 2\n",
		`app_seconds_bucket{le="0.1"} 1` + "\n",
		`app_seconds_bucket{le="1"} 2` + "\n",
		`app_seconds_bucket{le="+Inf"} 3` + "\n",
		"app_seconds_sum 5.55\n",
		"app_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families sorted by name: inflight < seconds < txn_total.
	if !(strings.Index(out, "app_inflight") < strings.Index(out, "app_seconds") &&
		strings.Index(out, "app_seconds") < strings.Index(out, "app_txn_total")) {
		t.Fatalf("families not sorted:\n%s", out)
	}
	// Every non-comment line is "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, " ")
		if len(parts) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "h", L("k", "v")).Add(7)
	h := r.Histogram("h_seconds", "h", []float64{1})
	h.Observe(0.5)
	snap := r.Snapshot()
	if snap[`c_total{k="v"}`] != 7 {
		t.Fatalf("snapshot counter = %v", snap[`c_total{k="v"}`])
	}
	if snap["h_seconds_count"] != 1 || snap["h_seconds_sum"] != 0.5 {
		t.Fatalf("snapshot histogram: %v", snap)
	}
	if snap[`h_seconds_bucket{le="1"}`] != 1 || snap[`h_seconds_bucket{le="+Inf"}`] != 1 {
		t.Fatalf("snapshot buckets: %v", snap)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "h", L("k", "a\"b\\c\nd")).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `c_total{k="a\"b\\c\nd"} 1`) {
		t.Fatalf("label not escaped:\n%s", sb.String())
	}
}

// TestConcurrentUpdates hammers one counter, one gauge, and one
// histogram from many goroutines (run under -race via hack/check.sh) and
// checks the totals are exact — the lock-free paths lose no updates.
func TestConcurrentUpdates(t *testing.T) {
	const goroutines, perG = 16, 2000
	r := NewRegistry()
	c := r.Counter("c_total", "h")
	g := r.Gauge("g", "h")
	h := r.Histogram("h_seconds", "h", []float64{0.5})
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Add(1)
				g.Add(1)
				h.Observe(float64(j % 2)) // alternate buckets
				// Interleave reads with writes.
				if j%512 == 0 {
					_ = c.Value()
					_ = h.Count()
					var sb strings.Builder
					_ = r.WritePrometheus(&sb)
				}
			}
		}(i)
	}
	wg.Wait()
	const total = goroutines * perG
	if c.Value() != total {
		t.Fatalf("counter lost updates: %d != %d", c.Value(), total)
	}
	if g.Value() != total {
		t.Fatalf("gauge lost updates: %v != %d", g.Value(), total)
	}
	if h.Count() != total {
		t.Fatalf("histogram lost updates: %d != %d", h.Count(), total)
	}
	if lo, hi := h.counts[0].Load(), h.counts[1].Load(); lo != total/2 || hi != total/2 {
		t.Fatalf("bucket split %d/%d, want %d each", lo, hi, total/2)
	}
	if math.Abs(h.Sum()-total/2) > 1e-6 {
		t.Fatalf("histogram sum %v, want %d", h.Sum(), total/2)
	}
}
