package obs

import (
	"encoding/json"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

func stageAt(name string, t0 time.Time, d time.Duration) Stage {
	return Stage{Name: name, Start: t0, End: t0.Add(d)}
}

func TestTracerRecordAndGet(t *testing.T) {
	tr := NewTracer(4)
	t0 := time.Unix(1000, 0)
	tr.Record(7, "ovsdb", stageAt("commit", t0, time.Millisecond))
	tr.Record(7, "", stageAt("delta", t0.Add(2*time.Millisecond), time.Millisecond))
	got, ok := tr.Get(7)
	if !ok {
		t.Fatalf("trace 7 missing")
	}
	if got.Source != "ovsdb" || len(got.Stages) != 2 {
		t.Fatalf("trace = %+v", got)
	}
	if _, ok := tr.Get(99); ok {
		t.Fatalf("phantom trace")
	}
}

func TestTracerDropsZeroTxn(t *testing.T) {
	tr := NewTracer(4)
	tr.Record(0, "x", stageAt("commit", time.Unix(0, 0), 0))
	if got := tr.Recent(0); len(got) != 0 {
		t.Fatalf("txn 0 retained: %v", got)
	}
}

func TestTracerEviction(t *testing.T) {
	tr := NewTracer(3)
	t0 := time.Unix(1000, 0)
	for id := uint64(1); id <= 5; id++ {
		tr.Record(id, "s", stageAt("commit", t0, 0))
	}
	if tr.Evicted() != 2 {
		t.Fatalf("evicted = %d, want 2", tr.Evicted())
	}
	if _, ok := tr.Get(1); ok {
		t.Fatalf("oldest trace not evicted")
	}
	recent := tr.Recent(0)
	if len(recent) != 3 || recent[0].TxnID != 3 || recent[2].TxnID != 5 {
		t.Fatalf("recent = %+v", recent)
	}
	// Recent(n) limits to the newest n.
	if last := tr.Recent(1); len(last) != 1 || last[0].TxnID != 5 {
		t.Fatalf("recent(1) = %+v", last)
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	tr.Record(1, "s", Stage{})
	if _, ok := tr.Get(1); ok {
		t.Fatalf("nil tracer stored a trace")
	}
	if tr.Recent(0) != nil || tr.Evicted() != 0 {
		t.Fatalf("nil tracer leaked state")
	}
	var sb strings.Builder
	if err := tr.WriteJSON(&sb, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"traces":[]`) {
		t.Fatalf("nil tracer JSON = %q", sb.String())
	}
}

func TestWriteJSONSortsStages(t *testing.T) {
	tr := NewTracer(4)
	t0 := time.Unix(1000, 0).UTC()
	// Record out of order; JSON output must be sorted by start time.
	tr.Record(1, "ovsdb", Stage{Name: "push", Start: t0.Add(2 * time.Millisecond), End: t0.Add(3 * time.Millisecond)})
	tr.Record(1, "", Stage{Name: "commit", Start: t0, End: t0.Add(time.Millisecond), Attrs: map[string]int64{"updates": 4}})
	var sb strings.Builder
	if err := tr.WriteJSON(&sb, 0); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Evicted uint64  `json:"evicted"`
		Traces  []Trace `json:"traces"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &dump); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if len(dump.Traces) != 1 {
		t.Fatalf("traces = %+v", dump.Traces)
	}
	st := dump.Traces[0].Stages
	if len(st) != 2 || st[0].Name != "commit" || st[1].Name != "push" {
		t.Fatalf("stages not sorted: %+v", st)
	}
	if st[0].Attrs["updates"] != 4 {
		t.Fatalf("attrs lost: %+v", st[0])
	}
}

// TestTracerConcurrentHammer races writers against every reader; run with
// -race. Correctness here is "no data race and no lost own-stage": each
// writer's transactions are private to it, so unless evicted they must
// hold exactly the stages that writer recorded.
func TestTracerConcurrentHammer(t *testing.T) {
	const writers, txnsPerWriter, stages = 8, 50, 4
	tr := NewTracer(writers * txnsPerWriter) // no eviction: all survive
	t0 := time.Unix(2000, 0)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < txnsPerWriter; i++ {
				id := uint64(w*txnsPerWriter + i + 1)
				for s := 0; s < stages; s++ {
					tr.Record(id, "hammer", stageAt("s", t0.Add(time.Duration(s)), time.Millisecond))
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for loop := true; loop; {
		select {
		case <-done:
			loop = false
		default:
			tr.Recent(10)
			tr.Get(1)
			tr.Evicted()
			if err := tr.WriteJSON(io.Discard, 5); err != nil {
				t.Errorf("WriteJSON: %v", err)
				loop = false
			}
		}
	}
	if got := tr.Evicted(); got != 0 {
		t.Fatalf("evicted %d traces from an unfilled ring", got)
	}
	for id := uint64(1); id <= writers*txnsPerWriter; id++ {
		trace, ok := tr.Get(id)
		if !ok || len(trace.Stages) != stages {
			t.Fatalf("txn %d: ok=%v stages=%d, want %d", id, ok, len(trace.Stages), stages)
		}
	}
}
