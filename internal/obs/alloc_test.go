package obs

import (
	"testing"
	"time"
)

// TestObsHotPathZeroAlloc guards the acceptance criterion that counter
// increments and histogram observes allocate nothing for pre-registered
// series (mirroring engine's TestArrangementProbeZeroAlloc). Registration
// may allocate; the per-event hot path must not.
func TestObsHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot_total", "h", L("plane", "test"))
	g := r.Gauge("hot_gauge", "h")
	h := r.Histogram("hot_seconds", "h", nil)

	cases := []struct {
		name string
		run  func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Counter.Add", func() { c.Add(3) }},
		{"Gauge.Set", func() { g.Set(1.5) }},
		{"Gauge.Add", func() { g.Add(0.5) }},
		{"Histogram.Observe", func() { h.Observe(0.0042) }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(200, tc.run); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
		}
	}

	// The nil (disabled) instruments must be alloc-free too.
	var nc *Counter
	var nh *Histogram
	if allocs := testing.AllocsPerRun(200, func() { nc.Inc(); nh.Observe(1) }); allocs != 0 {
		t.Errorf("nil instruments: %v allocs/op, want 0", allocs)
	}
}

// TestEventPoolZeroAlloc guards the pooled event/trace hot paths: building
// and appending a flight-recorder event reuses a ring slot, and a
// stage-attribute map round-trip through the pool (acquire, fill,
// reclaim) allocates nothing once warm.
func TestEventPoolZeroAlloc(t *testing.T) {
	r := NewRecorder(64)
	now := time.Now()
	appendEv := func() {
		r.Append(Ev("core", "txn.apply").WithTxn(7).At(now).
			F("updates", 3).F("delta", 2))
	}
	appendEv()
	if allocs := testing.AllocsPerRun(200, appendEv); allocs != 0 {
		t.Errorf("Recorder.Append: %v allocs/op, want 0", allocs)
	}

	// Pooled stage-attr maps: acquire, fill, release (the per-txn cycle
	// the tracer performs on eviction).
	cycle := func() {
		m := NewAttrs()
		m["input_updates"] = 1
		m["delta_size"] = 2
		attrsPool.Put(m)
	}
	cycle()
	if allocs := testing.AllocsPerRun(200, cycle); allocs != 0 {
		t.Errorf("attrs pool cycle: %v allocs/op, want 0", allocs)
	}
}

// TestTraceEvictionReclaimsAttrs pins the reclamation path: a trace
// evicted from the ring returns its attr maps to the pool, and clones
// taken before eviction are unaffected (deep-copied).
func TestTraceEvictionReclaimsAttrs(t *testing.T) {
	tr := NewTracer(2)
	a := NewAttrs()
	a["updates"] = 41
	tr.Record(1, "core", Stage{Name: "delta", Attrs: a})
	snap, ok := tr.Get(1)
	if !ok || snap.Stages[0].Attrs["updates"] != 41 {
		t.Fatalf("snapshot before eviction: %+v ok=%v", snap, ok)
	}
	tr.Record(2, "core", Stage{Name: "delta"})
	tr.Record(3, "core", Stage{Name: "delta"}) // evicts txn 1, reclaims a
	if _, ok := tr.Get(1); ok {
		t.Fatal("txn 1 still retained after eviction")
	}
	// Reuse the pooled map for a different txn: the clone must not change.
	b := NewAttrs()
	b["updates"] = 99
	tr.Record(4, "core", Stage{Name: "delta", Attrs: b})
	if got := snap.Stages[0].Attrs["updates"]; got != 41 {
		t.Fatalf("pre-eviction clone mutated: updates=%d, want 41", got)
	}
}
