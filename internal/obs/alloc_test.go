package obs

import "testing"

// TestObsHotPathZeroAlloc guards the acceptance criterion that counter
// increments and histogram observes allocate nothing for pre-registered
// series (mirroring engine's TestArrangementProbeZeroAlloc). Registration
// may allocate; the per-event hot path must not.
func TestObsHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot_total", "h", L("plane", "test"))
	g := r.Gauge("hot_gauge", "h")
	h := r.Histogram("hot_seconds", "h", nil)

	cases := []struct {
		name string
		run  func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Counter.Add", func() { c.Add(3) }},
		{"Gauge.Set", func() { g.Set(1.5) }},
		{"Gauge.Add", func() { g.Add(0.5) }},
		{"Histogram.Observe", func() { h.Observe(0.0042) }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(200, tc.run); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
		}
	}

	// The nil (disabled) instruments must be alloc-free too.
	var nc *Counter
	var nh *Histogram
	if allocs := testing.AllocsPerRun(200, func() { nc.Inc(); nh.Observe(1) }); allocs != 0 {
		t.Errorf("nil instruments: %v allocs/op, want 0", allocs)
	}
}
