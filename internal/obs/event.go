package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// The flight recorder: a structured, leveled event log shared by all
// planes. Events have a fixed schema (time, plane, kind, txn, device,
// integer fields) and are appended to a bounded ring. Appending is
// lock-cheap (one mutex, one slot copy) and allocation-free; the
// disabled path (nil *Recorder, or an event below the minimum level) is
// a single branch. Unlike /metrics, which exposes what *is*, the event
// log records what *happened* — the evidence needed to reconstruct a
// slow or wedged transaction after the fact.

// Level classifies an event's verbosity. The zero value is LevelInfo,
// so events are info-level unless explicitly marked Debug.
type Level int32

const (
	// LevelDebug marks high-volume events (per-stratum timings) that
	// operators may filter out by raising the recorder's minimum level.
	LevelDebug Level = -1
	// LevelInfo is the default level: one event per pipeline stage.
	LevelInfo Level = 0
)

// String renders the level for JSON exposition.
func (l Level) String() string {
	if l < LevelInfo {
		return "debug"
	}
	return "info"
}

// Field is one integer measurement attached to an event.
type Field struct {
	Key string
	Val int64
}

// maxEventFields bounds the per-event field array; keeping it fixed is
// what keeps Append allocation-free.
const maxEventFields = 4

// Event is one fixed-schema flight-recorder entry. Build events with Ev
// and the chaining helpers (all value receivers: the event lives on the
// stack until Append copies it into the ring).
type Event struct {
	Seq    uint64
	Time   time.Time
	Plane  string
	Kind   string
	Level  Level
	Txn    uint64
	Device string

	fields [maxEventFields]Field
	nf     int32
}

// Ev starts an event for the given plane and kind. Kinds follow the
// <noun>.<verb> convention (txn.commit, monitor.deliver, device.write).
func Ev(plane, kind string) Event { return Event{Plane: plane, Kind: kind} }

// WithTxn tags the event with its originating transaction (0 = none).
func (e Event) WithTxn(txn uint64) Event { e.Txn = txn; return e }

// WithDevice tags the event with the device it concerns.
func (e Event) WithDevice(dev string) Event { e.Device = dev; return e }

// Debug lowers the event to debug level.
func (e Event) Debug() Event { e.Level = LevelDebug; return e }

// At stamps the event with an explicit time (Append otherwise uses the
// append instant — pass the measurement time when they differ).
func (e Event) At(t time.Time) Event { e.Time = t; return e }

// F attaches one integer field. Beyond maxEventFields the field is
// silently dropped (fixed schema beats unbounded growth on a hot path).
func (e Event) F(key string, v int64) Event {
	if int(e.nf) < maxEventFields {
		e.fields[e.nf] = Field{Key: key, Val: v}
		e.nf++
	}
	return e
}

// Field returns one field's value by key.
func (e *Event) Field(key string) (int64, bool) {
	for i := int32(0); i < e.nf; i++ {
		if e.fields[i].Key == key {
			return e.fields[i].Val, true
		}
	}
	return 0, false
}

// eventJSON is the wire form of an Event.
type eventJSON struct {
	Seq    uint64           `json:"seq"`
	Time   time.Time        `json:"time"`
	Plane  string           `json:"plane"`
	Kind   string           `json:"kind"`
	Level  string           `json:"level,omitempty"`
	Txn    uint64           `json:"txn,omitempty"`
	Device string           `json:"device,omitempty"`
	Fields map[string]int64 `json:"fields,omitempty"`
}

// MarshalJSON renders the event with its fields as a JSON object.
func (e Event) MarshalJSON() ([]byte, error) {
	j := eventJSON{
		Seq: e.Seq, Time: e.Time, Plane: e.Plane, Kind: e.Kind,
		Txn: e.Txn, Device: e.Device,
	}
	if e.Level != LevelInfo {
		j.Level = e.Level.String()
	}
	if e.nf > 0 {
		j.Fields = make(map[string]int64, e.nf)
		for i := int32(0); i < e.nf; i++ {
			j.Fields[e.fields[i].Key] = e.fields[i].Val
		}
	}
	return json.Marshal(j)
}

// UnmarshalJSON parses the wire form (tests and tooling; field order is
// not preserved).
func (e *Event) UnmarshalJSON(data []byte) error {
	var j eventJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*e = Event{Seq: j.Seq, Time: j.Time, Plane: j.Plane, Kind: j.Kind,
		Txn: j.Txn, Device: j.Device}
	if j.Level == "debug" {
		e.Level = LevelDebug
	}
	for k, v := range j.Fields {
		*e = e.F(k, v)
	}
	return nil
}

// DefaultEventCapacity bounds the ring when NewRecorder is given n <= 0.
const DefaultEventCapacity = 4096

// Recorder is the bounded flight-recorder ring. A nil *Recorder is the
// disabled state: Append is a no-op and dumps are empty.
type Recorder struct {
	minLevel atomic.Int32

	mu  sync.Mutex
	buf []Event // length is a power of two; slot = (seq-1) & mask
	// mask is len(buf)-1, turning the ring-index modulo into an AND on
	// the append hot path.
	mask uint64
	// next counts events ever appended. Writes happen under mu; it is
	// atomic so Total (the scrape-time obs_events_total callback) can
	// read it without taking the append lock.
	next atomic.Uint64
}

// NewRecorder creates a recorder retaining the last n events (rounded
// up to a power of two so the ring index is a mask, not a modulo).
func NewRecorder(n int) *Recorder {
	if n <= 0 {
		n = DefaultEventCapacity
	}
	capPow2 := 1
	for capPow2 < n {
		capPow2 <<= 1
	}
	r := &Recorder{buf: make([]Event, capPow2), mask: uint64(capPow2 - 1)}
	r.minLevel.Store(int32(LevelDebug))
	return r
}

// Total reports how many events have ever been appended (the
// obs_events_total reading). Nil-safe and lock-free.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.next.Load()
}

// SetMinLevel drops subsequent events below l (default LevelDebug:
// everything is recorded).
func (r *Recorder) SetMinLevel(l Level) {
	if r == nil {
		return
	}
	r.minLevel.Store(int32(l))
}

// Append stamps the event with a sequence number (and the current time,
// unless the caller already set one) and stores it, overwriting the
// oldest event when the ring is full. Nil-safe and allocation-free.
func (r *Recorder) Append(ev Event) {
	if r == nil || int32(ev.Level) < r.minLevel.Load() {
		return
	}
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	r.mu.Lock()
	seq := r.next.Add(1)
	ev.Seq = seq
	r.buf[(seq-1)&r.mask] = ev
	r.mu.Unlock()
}

// Len returns how many events the ring currently retains.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := r.next.Load(); n < uint64(len(r.buf)) {
		return int(n)
	}
	return len(r.buf)
}

// EventFilter selects events from a dump. Zero values match everything.
type EventFilter struct {
	Plane string
	Kind  string
	Txn   uint64 // 0 = any transaction (including none)
	// SinceSeq keeps events with Seq > SinceSeq (resume cursors).
	SinceSeq uint64
	// Since keeps events at or after this time.
	Since time.Time
	// Limit keeps only the newest n matching events (0 = all retained).
	Limit int
}

func (f *EventFilter) match(ev *Event) bool {
	if f.Plane != "" && ev.Plane != f.Plane {
		return false
	}
	if f.Kind != "" && ev.Kind != f.Kind {
		return false
	}
	if f.Txn != 0 && ev.Txn != f.Txn {
		return false
	}
	if ev.Seq <= f.SinceSeq {
		return false
	}
	if !f.Since.IsZero() && ev.Time.Before(f.Since) {
		return false
	}
	return true
}

// Snapshot copies the matching retained events, oldest first, and
// reports how many events the ring has discarded and appended in total.
func (r *Recorder) Snapshot(f EventFilter) (events []Event, evicted, total uint64) {
	if r == nil {
		return nil, 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	next := r.next.Load()
	start := uint64(0)
	if next > uint64(len(r.buf)) {
		start = next - uint64(len(r.buf))
	}
	for i := start; i < next; i++ {
		ev := r.buf[i&r.mask]
		if f.match(&ev) {
			events = append(events, ev)
		}
	}
	if f.Limit > 0 && len(events) > f.Limit {
		events = events[len(events)-f.Limit:]
	}
	return events, start, next
}

// EventsFor returns every retained event of one transaction, oldest
// first (the incident-pinning path).
func (r *Recorder) EventsFor(txn uint64) []Event {
	evs, _, _ := r.Snapshot(EventFilter{Txn: txn})
	return evs
}

// eventDump is the /debug/events JSON envelope.
type eventDump struct {
	Total   uint64  `json:"total"`
	Evicted uint64  `json:"evicted"`
	Events  []Event `json:"events"`
}

// WriteJSON dumps the matching events as one JSON document.
func (r *Recorder) WriteJSON(w io.Writer, f EventFilter) error {
	events, evicted, total := r.Snapshot(f)
	if events == nil {
		events = []Event{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(eventDump{Total: total, Evicted: evicted, Events: events})
}

// WriteNDJSON dumps the matching events as newline-delimited JSON, one
// event per line, flushing after each line when w supports it (so a
// streaming client sees events as they are written).
func (r *Recorder) WriteNDJSON(w io.Writer, f EventFilter) error {
	events, _, _ := r.Snapshot(f)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
		if fl != nil {
			fl.Flush()
		}
	}
	return nil
}
