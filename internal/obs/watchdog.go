package obs

import (
	"fmt"
	"time"
)

// Stall watchdog: derives plane health from the metrics history rather
// than from instantaneous state. A wedged stack rarely reports an
// error — it just stops making progress — so the watchdog looks for the
// shapes a wedge leaves in the history rings: commits arriving with no
// applies, a push queue pinned high, monitor lag growing tick over
// tick. When a rule trips, /readyz flips to 503 with the reason and the
// obs_watchdog_stalled gauge goes to 1; when the history recovers, both
// clear.

// Canonical history series names the watchdog consumes. Components
// track them under these names (when the corresponding plane runs in
// this process; absent series simply disable the rules that need them).
const (
	SeriesCommits       = "ovsdb_txn_total"           // rate: committed transactions/s
	SeriesApplies       = "core_txn_total"            // rate: controller-applied transactions/s
	SeriesQueueDepth    = "core_queue_depth"          // value: controller event-queue depth
	SeriesMonitorLag    = "ovsdb_monitor_lag_seconds" // avg: commit→monitor delivery lag
	SeriesPushLatency   = "core_push_seconds"         // avg: data-plane push latency
	SeriesEngineLatency = "core_engine_seconds"       // avg: incremental evaluation latency
)

// WatchdogConfig tunes the stall rules.
type WatchdogConfig struct {
	// Window is how many consecutive samples a condition must hold for
	// (default 5).
	Window int
	// QueueHighWater is the event-queue depth considered "high"
	// (default 256; the controller queue caps at 1024).
	QueueHighWater float64
	// LagFloor is the minimum monitor lag before growth counts as a
	// stall (default 250ms; filters out microsecond-scale jitter).
	LagFloor time.Duration
}

// Watchdog evaluates the stall rules against a History.
type Watchdog struct {
	cfg WatchdogConfig
}

// NewWatchdog builds a watchdog, filling config defaults.
func NewWatchdog(cfg WatchdogConfig) *Watchdog {
	if cfg.Window <= 0 {
		cfg.Window = 5
	}
	if cfg.QueueHighWater <= 0 {
		cfg.QueueHighWater = 256
	}
	if cfg.LagFloor <= 0 {
		cfg.LagFloor = 250 * time.Millisecond
	}
	return &Watchdog{cfg: cfg}
}

// Evaluate returns "" when healthy, or a human-readable stall reason.
// Each rule needs a full window of samples for every series it reads;
// series the process doesn't track leave their rules inert.
func (w *Watchdog) Evaluate(h *History) string {
	if w == nil || h == nil {
		return ""
	}
	win := w.cfg.Window

	// Rule 1: commits flowing, zero applies — the controller is wedged
	// between monitor delivery and the engine.
	commits := h.Last(SeriesCommits, win)
	applies := h.Last(SeriesApplies, win)
	if len(commits) == win && len(applies) == win {
		var cSum, aSum float64
		for _, s := range commits {
			cSum += s.Value
		}
		for _, s := range applies {
			aSum += s.Value
		}
		if cSum > 0 && aSum == 0 {
			return fmt.Sprintf("commits without applies: %.3g commits/s over the last %d samples, 0 applied", cSum/float64(win), win)
		}
	}

	// Rule 2: push queue depth flat-high — events are arriving faster
	// than pushes drain, and it is not recovering.
	queue := h.Last(SeriesQueueDepth, win)
	if len(queue) == win {
		high := true
		for _, s := range queue {
			if s.Value < w.cfg.QueueHighWater {
				high = false
				break
			}
		}
		if high && queue[win-1].Value >= queue[0].Value {
			return fmt.Sprintf("push queue depth flat-high: %d samples >= %g (now %g)", win, w.cfg.QueueHighWater, queue[win-1].Value)
		}
	}

	// Rule 3: monitor lag growing monotonically above the floor — the
	// monitor fan-out is falling behind commit order.
	lag := h.Last(SeriesMonitorLag, win)
	if len(lag) == win {
		growing := lag[win-1].Value > w.cfg.LagFloor.Seconds()
		for i := 1; i < win && growing; i++ {
			if lag[i].Value <= lag[i-1].Value || lag[i-1].Value == 0 {
				growing = false
			}
		}
		if growing {
			return fmt.Sprintf("monitor lag growing: %.3gs and rising over %d samples", lag[win-1].Value, win)
		}
	}
	return ""
}

// runWatchdog is the history tick hook: evaluate, then flip the stall
// state and gauge accordingly.
func (o *Observer) runWatchdog(h *History) {
	if o == nil || o.Watchdog == nil {
		return
	}
	reason := o.Watchdog.Evaluate(h)
	o.setStall(reason)
}

// setStall records the current stall reason ("" = healthy) and mirrors
// it into obs_watchdog_stalled.
func (o *Observer) setStall(reason string) {
	if o == nil {
		return
	}
	o.stall.Store(reason)
	if reason == "" {
		o.mStalled.Set(0)
	} else {
		o.mStalled.Set(1)
	}
}

// StallReason returns the watchdog's current verdict ("" = healthy).
func (o *Observer) StallReason() string {
	if o == nil {
		return ""
	}
	s, _ := o.stall.Load().(string)
	return s
}
