package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Slow-path auto-capture: each pipeline stage (commit→monitor delivery,
// delta evaluation, data-plane push) has a latency budget; when a
// transaction exceeds one, its full flight-recorder event set, trace and
// any caller-supplied detail (e.g. the pushed entries' provenance) are
// pinned into a small FIFO incident store. Pinned incidents survive
// ring eviction, so slow outliers remain inspectable at /debug/incidents
// long after their events have been overwritten.

// Budgets holds the per-stage latency budgets. A zero budget disables
// capture for that stage.
type Budgets struct {
	// Monitor bounds commit→monitor-delivery lag.
	Monitor time.Duration `json:"monitor"`
	// Delta bounds incremental evaluation per transaction.
	Delta time.Duration `json:"delta"`
	// Push bounds the data-plane push (all devices, barrier).
	Push time.Duration `json:"push"`
}

// AllBudget sets the same budget for every stage.
func AllBudget(d time.Duration) Budgets { return Budgets{Monitor: d, Delta: d, Push: d} }

// For returns the budget of one stage ("monitor", "delta", "push").
func (b Budgets) For(stage string) time.Duration {
	switch stage {
	case "monitor":
		return b.Monitor
	case "delta":
		return b.Delta
	case "push":
		return b.Push
	}
	return 0
}

// Incident is one pinned slow-transaction capture.
type Incident struct {
	// Seq numbers incidents in pinning order.
	Seq    uint64    `json:"seq"`
	Time   time.Time `json:"time"`
	Txn    uint64    `json:"txn"`
	Source string    `json:"source,omitempty"`
	// Stage names the exceeded budget ("monitor", "delta", "push").
	Stage  string        `json:"stage"`
	Budget time.Duration `json:"budget_ns"`
	Actual time.Duration `json:"actual_ns"`
	// Events is the transaction's flight-recorder timeline at pin time.
	Events []Event `json:"events"`
	// Trace is the transaction's stage timeline, if traced.
	Trace *Trace `json:"trace,omitempty"`
	// Detail carries stage-specific context: for pushes, the provenance
	// (Explain output) of the entries the transaction installed.
	Detail any `json:"detail,omitempty"`
}

// DefaultIncidentCapacity bounds the store when NewIncidentStore is
// given n <= 0.
const DefaultIncidentCapacity = 32

// IncidentStore retains the most recent incidents, FIFO. A nil store
// ignores pins.
type IncidentStore struct {
	mu      sync.Mutex
	cap     int
	items   []Incident
	seq     uint64
	evicted uint64
}

// NewIncidentStore creates a store retaining the last n incidents.
func NewIncidentStore(n int) *IncidentStore {
	if n <= 0 {
		n = DefaultIncidentCapacity
	}
	return &IncidentStore{cap: n}
}

// Add pins one incident, evicting the oldest beyond capacity.
func (s *IncidentStore) Add(inc Incident) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	inc.Seq = s.seq
	if inc.Time.IsZero() {
		inc.Time = time.Now()
	}
	s.items = append(s.items, inc)
	if len(s.items) > s.cap {
		n := len(s.items) - s.cap
		s.evicted += uint64(n)
		s.items = append([]Incident(nil), s.items[n:]...)
	}
}

// Snapshot returns the retained incidents, oldest first; txn 0 matches
// all transactions.
func (s *IncidentStore) Snapshot(txn uint64) (incidents []Incident, evicted uint64) {
	if s == nil {
		return nil, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, inc := range s.items {
		if txn == 0 || inc.Txn == txn {
			incidents = append(incidents, inc)
		}
	}
	return incidents, s.evicted
}

// Len returns how many incidents are retained.
func (s *IncidentStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}

// incidentDump is the /debug/incidents JSON envelope.
type incidentDump struct {
	Evicted   uint64     `json:"evicted"`
	Incidents []Incident `json:"incidents"`
}

// WriteJSON dumps retained incidents (txn 0 = all) as JSON.
func (s *IncidentStore) WriteJSON(w io.Writer, txn uint64) error {
	incidents, evicted := s.Snapshot(txn)
	if incidents == nil {
		incidents = []Incident{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(incidentDump{Evicted: evicted, Incidents: incidents})
}

// SetSlowBudget installs the per-stage latency budgets (typically once
// at startup from -obs-slow-budget). Nil-safe.
func (o *Observer) SetSlowBudget(b Budgets) {
	if o == nil {
		return
	}
	o.budgets.Store(b)
}

// SlowBudget returns the installed budgets (zero when unset/disabled).
func (o *Observer) SlowBudget() Budgets {
	if o == nil {
		return Budgets{}
	}
	b, _ := o.budgets.Load().(Budgets)
	return b
}

// BudgetExceeded reports whether a stage's measured latency blew its
// budget. Callers pair it with PinIncident so they can assemble
// stage-specific detail only on the (rare) slow path.
func (o *Observer) BudgetExceeded(stage string, actual time.Duration) bool {
	if o == nil {
		return false
	}
	b := o.SlowBudget().For(stage)
	return b > 0 && actual > b
}

// PinIncident captures the transaction's current event set and trace
// into the incident store. detail is stored verbatim (JSON-marshaled at
// dump time); pass nil when there is nothing stage-specific to pin.
func (o *Observer) PinIncident(stage string, txn uint64, source string, actual time.Duration, detail any) {
	if o == nil || o.Incidents == nil {
		return
	}
	inc := Incident{
		Txn:    txn,
		Source: source,
		Stage:  stage,
		Budget: o.SlowBudget().For(stage),
		Actual: actual,
		Detail: detail,
	}
	// Txn-less work (initial sync, digest-driven pushes) has no bounded
	// event set — EventsFor(0) matches every event and would pin the
	// whole ring per incident.
	if txn != 0 {
		inc.Events = o.Rec().EventsFor(txn)
	}
	if tr, ok := o.Tr().Get(txn); ok {
		inc.Trace = &tr
	}
	o.Incidents.Add(inc)
	o.mIncidents.Inc()
}
